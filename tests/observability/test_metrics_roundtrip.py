"""Satellite regressions: the EMPTY_QUANTILE sentinel, the
collect_to_dict / exposition_from_dict round-trip, and the
register_stats_store bridge."""

import math

import pytest

from repro.observability import (
    EMPTY_QUANTILE,
    EmptyQuantile,
    MetricsRegistry,
    exposition_from_dict,
    histogram_quantile,
    register_stats_store,
)
from repro.observability.metrics import Histogram, MetricsError
from repro.sparql.stats import StatsStore

pytestmark = pytest.mark.tier1


# -- EMPTY_QUANTILE ---------------------------------------------------------

def test_empty_histogram_reports_typed_sentinel():
    empty = Histogram({}, (0.1, 1.0))
    q = histogram_quantile(empty, 0.99)
    assert q is EMPTY_QUANTILE
    assert isinstance(q, EmptyQuantile)
    assert isinstance(q, float)


def test_sentinel_is_falsy_nan_with_stable_repr():
    assert not EMPTY_QUANTILE
    assert math.isnan(EMPTY_QUANTILE)
    assert EMPTY_QUANTILE != EMPTY_QUANTILE  # NaN semantics preserved
    assert repr(EMPTY_QUANTILE) == "EMPTY_QUANTILE"


def test_zero_total_histogram_also_reports_sentinel():
    # bucket structure present, but nothing ever observed
    hist = Histogram({}, (0.1, 1.0))
    assert hist.count == 0
    assert histogram_quantile(hist, 0.5) is EMPTY_QUANTILE
    # one observation flips it to a real bound
    hist.observe(0.05)
    assert histogram_quantile(hist, 0.5) == 0.1


def test_bucketless_histogram_reports_sentinel():
    hist = Histogram({}, (0.1,))
    hist.buckets = ()
    hist.bucket_counts = []
    hist.count = 5  # even with a count, no bounds means no answer
    assert histogram_quantile(hist, 0.5) is EMPTY_QUANTILE


def test_quantile_domain_still_validated():
    with pytest.raises(MetricsError):
        histogram_quantile(Histogram({}, (1.0,)), 0.0)


# -- collect_to_dict round-trip ---------------------------------------------

def build_registry():
    registry = MetricsRegistry()
    requests = registry.counter("rt_requests_total", "requests",
                                ("tenant",))
    requests.labels(tenant="a").inc(3)
    requests.labels(tenant="b").inc()
    registry.gauge("rt_depth", "queue depth").set(7)
    hist = registry.histogram("rt_latency_seconds", "latency",
                              buckets=(0.1, 1.0))
    hist.observe(0.05)
    hist.observe(0.5)
    return registry


def test_collect_to_dict_shape():
    data = build_registry().collect_to_dict()
    assert list(data) == ["rt_depth", "rt_latency_seconds",
                          "rt_requests_total"]
    block = data["rt_requests_total"]
    assert block["type"] == "counter"
    assert block["help"] == "requests"
    assert ["rt_requests_total", {"tenant": "a"}, 3.0] in block["samples"]
    hist_samples = {tuple(s[1].items()): s[2]
                    for s in data["rt_latency_seconds"]["samples"]
                    if s[0] == "rt_latency_seconds_bucket"}
    assert hist_samples[(("le", "0.1"),)] == 1.0
    assert hist_samples[(("le", "+Inf"),)] == 2.0


def test_round_trip_is_byte_identical():
    registry = build_registry()
    rebuilt = exposition_from_dict(registry.collect_to_dict())
    assert rebuilt.render() == registry.expose()


def test_round_trip_survives_json():
    import json
    registry = build_registry()
    data = json.loads(json.dumps(registry.collect_to_dict()))
    assert exposition_from_dict(data).render() == registry.expose()


def test_exposition_from_dict_validates():
    with pytest.raises(MetricsError):
        exposition_from_dict({"bad": {"type": "teapot", "samples": []}})
    with pytest.raises(MetricsError):
        exposition_from_dict({"1bad_name": {"type": "counter",
                                            "samples": []}})


# -- register_stats_store ---------------------------------------------------

def test_register_stats_store_scrapes_version_and_signatures():
    registry = MetricsRegistry()
    store = StatsStore()
    register_stats_store(registry, store)
    before = registry.expose()
    assert f"repro_stats_store_version {store.version}" in before
    assert "repro_stats_store_signatures 0" in before
    assert "repro_stats_store_frozen 0" in before
    # feedback moves the store; the collector reads fresh values
    store.record("sig-a", 10.0)
    after = registry.expose()
    assert f"repro_stats_store_version {store.version}" in after
    assert "repro_stats_store_signatures 1" in after


def test_register_stats_store_frozen_and_namespace():
    registry = MetricsRegistry()
    store = StatsStore()
    store.freeze()
    register_stats_store(registry, store, namespace="xyz_stats")
    text = registry.expose()
    assert "xyz_stats_frozen 1" in text
    assert "repro_stats_store_version" not in text
