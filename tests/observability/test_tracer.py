"""Span tracer semantics: nesting, activation accounting, counters."""

import pytest

from repro.observability import Span, Tracer, render_trace, top_spans

pytestmark = pytest.mark.tier1


def test_spans_nest_under_the_active_span(fake_clock):
    tracer = Tracer(clock=fake_clock)
    with tracer.span("root") as root:
        with tracer.span("child") as child:
            with tracer.span("grandchild") as grand:
                pass
        with tracer.span("sibling") as sib:
            pass
    assert tracer.roots == [root]
    assert root.children == [child, sib]
    assert child.children == [grand]
    assert tracer.current is None


def test_span_ids_are_sequential_in_creation_order(fake_clock):
    tracer = Tracer(clock=fake_clock)
    with tracer.span("a"):
        with tracer.span("b"):
            pass
        with tracer.span("c"):
            pass
    assert [s.span_id for s in tracer.spans] == [1, 2, 3]
    assert [s.name for s in tracer.spans] == ["a", "b", "c"]


def test_duration_accumulates_over_activations(fake_clock):
    tracer = Tracer(clock=fake_clock)
    span = tracer.start_span("op", parent=None)
    span.enter()
    fake_clock.advance(1.0)
    span.exit()
    fake_clock.advance(10.0)  # consumer time between rows: not charged
    span.enter()
    fake_clock.advance(2.0)
    span.exit()
    assert span.duration_s == pytest.approx(3.0)


def test_self_time_excludes_direct_children(fake_clock):
    tracer = Tracer(clock=fake_clock)
    with tracer.span("parent") as parent:
        fake_clock.advance(1.0)
        with tracer.span("child"):
            fake_clock.advance(2.0)
        fake_clock.advance(0.5)
    assert parent.duration_s == pytest.approx(3.5)
    assert parent.self_time_s == pytest.approx(1.5)


def test_self_times_telescope_to_root_duration(fake_clock):
    tracer = Tracer(clock=fake_clock)
    with tracer.span("root") as root:
        fake_clock.advance(0.25)
        for __ in range(3):
            with tracer.span("mid"):
                fake_clock.advance(0.5)
                with tracer.span("leaf"):
                    fake_clock.advance(0.125)
    total_self = sum(s.self_time_s for s in root.walk())
    assert total_self == pytest.approx(root.duration_s)


def test_counters_and_tracer_count(fake_clock):
    tracer = Tracer(clock=fake_clock)
    with tracer.span("fetch") as span:
        span.record("cache_hits")
        span.record("cache_hits")
        tracer.count("fetches", 3)
    assert span.counters == {"cache_hits": 2, "fetches": 3}
    tracer.count("ignored")  # no active span: silently dropped
    assert span.counters == {"cache_hits": 2, "fetches": 3}


def test_nested_reentry_charges_once(fake_clock):
    """Recursive activation of the same span must not double-charge."""
    tracer = Tracer(clock=fake_clock)
    span = tracer.start_span("op", parent=None)
    span.enter()
    span.enter()
    fake_clock.advance(1.0)
    span.exit()
    fake_clock.advance(1.0)
    span.exit()
    assert span.duration_s == pytest.approx(2.0)


def test_exception_inside_span_still_closes_it(fake_clock):
    tracer = Tracer(clock=fake_clock)
    with pytest.raises(RuntimeError):
        with tracer.span("boom"):
            fake_clock.advance(1.0)
            raise RuntimeError("x")
    assert tracer.current is None
    assert tracer.roots[0].duration_s == pytest.approx(1.0)


def test_render_trace_shows_tree_counters_and_timings(fake_clock):
    tracer = Tracer(clock=fake_clock)
    with tracer.span("root") as root:
        fake_clock.advance(0.002)
        with tracer.span("leaf") as leaf:
            fake_clock.advance(0.001)
            leaf.record("hits", 2)
    text = render_trace(root)
    lines = text.splitlines()
    assert lines[0].startswith("root  [3.000ms self=2.000ms]")
    assert lines[1].startswith("  leaf  [1.000ms self=1.000ms]")
    assert "hits=2" in lines[1]


def test_top_spans_ranks_by_self_time(fake_clock):
    tracer = Tracer(clock=fake_clock)
    with tracer.span("root") as root:
        with tracer.span("slow"):
            fake_clock.advance(5.0)
        with tracer.span("fast"):
            fake_clock.advance(1.0)
    ranked = top_spans(root, n=2)
    # root's self-time is ~0: all its time is inside the children
    assert [s.name for s in ranked] == ["slow", "fast"]


def test_start_span_explicit_parent_none_makes_new_root(fake_clock):
    tracer = Tracer(clock=fake_clock)
    with tracer.span("a"):
        detached = tracer.start_span("b", parent=None)
    assert detached in tracer.roots
    assert isinstance(detached, Span)
