"""Labeled counter trees: per-label attribution, no double counting."""

import pytest

from repro.governance import GovernanceStats
from repro.observability import LabeledCounters, MetricsRegistry
from repro.observability import parse_exposition, register_resilience
from repro.resilience import ResilienceStats, RetryPolicy

pytestmark = pytest.mark.tier1


class DemoStats(LabeledCounters):
    FIELDS = ("hits", "errors")


def test_plain_field_mutation_still_works():
    stats = DemoStats()
    stats.hits += 1
    stats.hits += 2
    assert stats.hits == 3
    assert stats.as_dict() == {"hits": 3, "errors": 0}


def test_child_counts_roll_up_into_parent_totals():
    stats = DemoStats()
    stats.hits += 1
    stats.labeled(endpoint="a").hits += 2
    stats.labeled(endpoint="b").hits += 4
    assert stats.hits == 7
    assert stats.labeled(endpoint="a").hits == 2
    assert stats.own_as_dict()["hits"] == 1


def test_labeled_returns_same_child_for_same_labels():
    stats = DemoStats()
    assert stats.labeled(endpoint="a") is stats.labeled(endpoint="a")
    assert stats.labeled() is stats


def test_self_merge_is_a_noop():
    stats = DemoStats()
    stats.hits += 5
    stats.merge(stats)
    assert stats.hits == 5  # the historical double-count bug


def test_merge_adds_other_totals_once():
    a = DemoStats()
    a.labeled(endpoint="x").hits += 3
    b = DemoStats()
    b.hits += 2
    b.merge(a)
    assert b.hits == 5
    assert a.hits == 3  # source untouched


def test_shared_retry_policy_attributes_per_endpoint():
    """One RetryPolicy instance, two endpoints: counters land on the
    per-endpoint labeled blocks, and the shared tree's totals are the
    sum — not double-counted per instance."""
    policy = RetryPolicy(max_attempts=2, base_delay_s=0.0, jitter=0.0,
                         sleep=lambda s: None)
    tree = ResilienceStats()

    calls = {"n": 0}

    def flaky():
        calls["n"] += 1
        if calls["n"] == 1:
            raise ConnectionError("first endpoint hiccup")
        return "ok"

    policy.run(flaky, stats=tree.labeled(endpoint="http://a/sparql"))
    policy.run(lambda: "ok", stats=tree.labeled(endpoint="http://b/sparql"))

    a = tree.labeled(endpoint="http://a/sparql")
    b = tree.labeled(endpoint="http://b/sparql")
    assert (a.attempts, a.retries, a.successes) == (2, 1, 1)
    assert (b.attempts, b.retries, b.successes) == (1, 0, 1)
    # totals are the per-endpoint sums
    assert tree.attempts == 3
    assert tree.successes == 2
    assert tree.logical_requests == 2


def test_resilience_stats_walk_carries_labels():
    tree = ResilienceStats()
    tree.labeled(endpoint="a").attempts += 1
    rows = list(tree.walk({"component": "federation"}))
    assert rows[0][0] == {"component": "federation"}
    assert rows[1][0] == {"component": "federation", "endpoint": "a"}


class _HeadroomBudget:
    """Just enough of a QueryBudget to feed record_headroom."""

    def __init__(self, headroom):
        self._headroom = headroom

    def headroom(self):
        return self._headroom


def test_governance_stats_headroom_combines_children():
    stats = GovernanceStats()
    stats.record_headroom(_HeadroomBudget(0.05))
    child = stats.labeled(component="sdl")
    child.record_headroom(_HeadroomBudget(0.95))
    combined = stats.combined_headroom_histogram()
    assert sum(combined) == 2
    assert combined[0] == 1 and combined[-1] == 1
    assert stats.combined_headroom_sum() == pytest.approx(1.0)


def test_bridge_sums_tree_without_double_count():
    tree = ResilienceStats()
    tree.attempts += 1  # own (unlabeled) work
    tree.labeled(endpoint="a").attempts += 2
    tree.labeled(endpoint="b").attempts += 3
    registry = MetricsRegistry()
    register_resilience(registry, tree, component="fed")
    parsed = parse_exposition(registry.expose())
    fam = parsed.family("repro_resilience_attempts_total")
    values = {labels["endpoint"]: value for __, labels, value in fam.samples}
    assert values == {"": 1.0, "a": 2.0, "b": 3.0}
    # a Prometheus-style sum() over the family equals the tree total
    assert sum(values.values()) == tree.attempts
