"""Flight recorder: ring bounds, byte-stable incident bundles,
suppression caps, primitives-only enforcement."""

import json

import pytest

from repro.observability import FlightRecorder

pytestmark = pytest.mark.tier1


def test_constructor_validation():
    with pytest.raises(ValueError):
        FlightRecorder(capacity=0)
    with pytest.raises(ValueError):
        FlightRecorder(max_incidents=0)


def test_record_requires_clock_or_at_s():
    recorder = FlightRecorder()
    with pytest.raises(ValueError):
        recorder.record("tick")
    entry = recorder.record("tick", at_s=1.25, n=1)
    assert entry == {"seq": 1, "at_s": 1.25, "kind": "tick", "n": 1}
    clocked = FlightRecorder(clock=lambda: 3.5)
    assert clocked.record("tick")["at_s"] == 3.5


def test_non_primitive_fields_rejected():
    recorder = FlightRecorder(clock=lambda: 0.0)
    with pytest.raises(TypeError):
        recorder.record("bad", payload={"nested": "dict"})
    with pytest.raises(TypeError):
        recorder.record("bad", items=[1, 2])
    # primitives of every kind are fine
    recorder.record("ok", s="x", i=1, f=0.5, b=True, none=None)


def test_seq_field_is_reserved():
    recorder = FlightRecorder(clock=lambda: 0.0)
    with pytest.raises(TypeError):
        recorder.record("request", seq=90)  # would shadow the ring seq
    recorder.record("request", request_seq=90)
    assert recorder.entries()[0]["seq"] == 1


def test_ring_is_bounded():
    recorder = FlightRecorder(clock=lambda: 0.0, capacity=8)
    for k in range(20):
        recorder.record("tick", n=k)
    assert len(recorder) == 8
    entries = recorder.entries()
    assert [e["n"] for e in entries] == list(range(12, 20))
    assert entries[0]["seq"] == 13  # seq keeps counting past evictions


def test_snapshot_freezes_the_ring():
    recorder = FlightRecorder(clock=lambda: 0.0, capacity=4)
    for k in range(6):
        recorder.record("tick", at_s=float(k), n=k)
    bundle = recorder.snapshot("unit-test", at_s=9.0)
    assert bundle["incident"] == 1
    assert bundle["reason"] == "unit-test"
    assert bundle["at_s"] == 9.0
    assert bundle["entries_recorded"] == 6
    assert [e["n"] for e in bundle["entries"]] == [2, 3, 4, 5]
    # the bundle is a copy: later records do not mutate it
    recorder.record("tick", at_s=10.0, n=99)
    assert [e["n"] for e in bundle["entries"]] == [2, 3, 4, 5]


def test_incident_json_is_byte_stable():
    def build():
        recorder = FlightRecorder(clock=lambda: 0.0, capacity=16)
        for k in range(10):
            recorder.record("tick", at_s=0.1 * k, n=k, z=(k % 2 == 0))
        recorder.snapshot("repeatable", at_s=2.0)
        return recorder
    a, b = build(), build()
    assert a.incident_json() == b.incident_json()
    assert a.incidents_sha256() == b.incidents_sha256()
    json.loads(a.incident_json())  # strict JSON
    # key order inside entries is deterministic (sorted data keys)
    entry = build().record("probe", at_s=0.0, zeta=1, alpha=2)
    assert list(entry) == ["seq", "at_s", "kind", "alpha", "zeta"]


def test_snapshot_cap_and_suppression():
    recorder = FlightRecorder(clock=lambda: 0.0, max_incidents=2)
    recorder.record("tick", at_s=0.0)
    assert recorder.snapshot("one", at_s=0.0) is not None
    assert recorder.snapshot("two", at_s=0.0) is not None
    assert recorder.snapshot("three", at_s=0.0) is None
    assert recorder.snapshot("four", at_s=0.0) is None
    summary = recorder.summary()
    assert summary["incidents"] == 2
    assert summary["suppressed"] == 2
    assert summary["reasons"] == ["one", "two"]
    assert summary["entries_recorded"] == 1
