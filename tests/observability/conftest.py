"""Fixtures for the observability suite: deterministic clocks."""

import pytest


class TickClock:
    """A clock that advances a fixed step on every read.

    Every read moves time forward deterministically, so span
    durations depend only on the *number and order* of clock reads —
    two identical runs produce byte-identical trace JSON.
    """

    def __init__(self, step: float = 0.001, start: float = 0.0):
        self.step = step
        self.now = start

    def __call__(self) -> float:
        self.now += self.step
        return self.now


class FakeClock:
    """A manually-advanced clock (reads do not move time)."""

    def __init__(self, start: float = 0.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds

    def sleep(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def tick_clock():
    return TickClock()


@pytest.fixture
def fake_clock():
    return FakeClock()
