"""Metrics registry semantics and exposition-format validation."""

import pytest

from repro.observability import (
    MetricsError,
    MetricsRegistry,
    parse_exposition,
)

pytestmark = pytest.mark.tier1


def test_counter_inc_and_value():
    reg = MetricsRegistry()
    c = reg.counter("repro_requests_total", help="requests served")
    c.inc()
    c.inc(4)
    assert c.value == 5
    with pytest.raises(MetricsError):
        c.inc(-1)


def test_gauge_set_inc_dec():
    reg = MetricsRegistry()
    g = reg.gauge("repro_active")
    g.set(3)
    g.inc()
    g.dec(2)
    assert g.value == 2


def test_labeled_family_children_are_independent():
    reg = MetricsRegistry()
    c = reg.counter("repro_fetches_total", labelnames=["endpoint"])
    c.labels(endpoint="a").inc(2)
    c.labels(endpoint="b").inc(5)
    assert c.labels(endpoint="a").value == 2
    assert c.labels(endpoint="b").value == 5
    with pytest.raises(MetricsError):
        c.labels(wrong="x")


def test_histogram_buckets_sum_count():
    reg = MetricsRegistry()
    h = reg.histogram("repro_latency_seconds", buckets=(0.1, 1.0, 10.0))
    for v in (0.05, 0.5, 0.5, 5.0, 50.0):
        h.observe(v)
    child = h.labels()
    assert child.bucket_counts == [1, 2, 1]  # non-cumulative storage
    assert child.count == 5  # includes the 50.0 beyond the last bound
    assert child.sum == pytest.approx(56.05)


def test_invalid_names_rejected():
    reg = MetricsRegistry()
    with pytest.raises(MetricsError):
        reg.counter("0bad")
    with pytest.raises(MetricsError):
        reg.counter("ok_total", labelnames=["le"])
    with pytest.raises(MetricsError):
        reg.histogram("h", buckets=(1.0, 1.0))


def test_reregistration_is_idempotent_but_kind_checked():
    reg = MetricsRegistry()
    a = reg.counter("repro_x_total")
    b = reg.counter("repro_x_total")
    assert a is b
    with pytest.raises(MetricsError):
        reg.gauge("repro_x_total")


def test_exposition_round_trips_through_the_parser():
    reg = MetricsRegistry()
    reg.counter("repro_requests_total", help="requests",
                labelnames=["endpoint"]).labels(
        endpoint="http://a.example/sparql").inc(3)
    reg.gauge("repro_active").set(2)
    h = reg.histogram("repro_latency_seconds", help="latency",
                      buckets=(0.1, 1.0))
    h.observe(0.05)
    h.observe(0.5)
    text = reg.expose()
    parsed = parse_exposition(text)
    assert parsed.render() == text


def test_exposition_histogram_shape():
    reg = MetricsRegistry()
    h = reg.histogram("repro_h", buckets=(0.5, 1.0))
    h.observe(0.2)
    h.observe(2.0)
    text = reg.expose()
    parsed = parse_exposition(text)
    fam = parsed.family("repro_h")
    names = [name for name, __, __ in fam.samples]
    assert names == ["repro_h_bucket", "repro_h_bucket",
                     "repro_h_bucket", "repro_h_sum", "repro_h_count"]
    values = {(name, labels.get("le")): value
              for name, labels, value in fam.samples}
    assert values[("repro_h_bucket", "0.5")] == 1
    assert values[("repro_h_bucket", "1")] == 1  # cumulative
    assert values[("repro_h_bucket", "+Inf")] == 2


def test_parser_rejects_nonmonotonic_buckets():
    bad = (
        "# TYPE h histogram\n"
        'h_bucket{le="0.5"} 3\n'
        'h_bucket{le="1"} 2\n'
        'h_bucket{le="+Inf"} 3\n'
        "h_sum 1\n"
        "h_count 3\n"
    )
    with pytest.raises(MetricsError):
        parse_exposition(bad)


def test_parser_rejects_missing_inf_bucket():
    bad = (
        "# TYPE h histogram\n"
        'h_bucket{le="0.5"} 1\n'
        "h_sum 1\n"
        "h_count 1\n"
    )
    with pytest.raises(MetricsError):
        parse_exposition(bad)


def test_parser_rejects_untyped_samples():
    with pytest.raises(MetricsError):
        parse_exposition("mystery_total 3\n")


def test_parser_handles_escaped_label_values():
    reg = MetricsRegistry()
    c = reg.counter("repro_x_total", labelnames=["q"])
    c.labels(q='say "hi"\nplease\\now').inc()
    text = reg.expose()
    parsed = parse_exposition(text)
    assert parsed.render() == text
    (_, labels, _), = parsed.family("repro_x_total").samples
    assert labels["q"] == 'say "hi"\nplease\\now'


def test_collectors_run_at_scrape_time():
    from repro.observability.metrics import MetricFamily

    reg = MetricsRegistry()
    state = {"n": 0}

    def collector():
        fam = MetricFamily("repro_live_total", "counter")
        fam.inc(state["n"])
        return [fam]

    reg.register_collector(collector)
    state["n"] = 7
    parsed = parse_exposition(reg.expose())
    (_, _, value), = parsed.family("repro_live_total").samples
    assert value == 7


def test_duplicate_collector_family_raises():
    from repro.observability.metrics import MetricFamily

    reg = MetricsRegistry()
    reg.counter("repro_dup_total")
    reg.register_collector(
        lambda: [MetricFamily("repro_dup_total", "counter")])
    with pytest.raises(MetricsError):
        reg.expose()


def test_json_export_matches_samples():
    reg = MetricsRegistry()
    reg.counter("repro_a_total").inc(2)
    data = reg.to_json()
    (fam,) = data["families"]
    assert fam["name"] == "repro_a_total"
    assert fam["samples"] == [
        {"name": "repro_a_total", "labels": {}, "value": 2.0}
    ]
