"""SLO engine: burn-rate math, multi-window gating, hysteresis.

The burn tables here are hand-computed: every expected value is the
window bad-ratio divided by the spec's error budget, so a failure
points at the arithmetic, not at a fixture.
"""

import json

import pytest

from repro.observability import (
    MetricsRegistry,
    SLOEngine,
    SLOSpec,
    SLOWindows,
    register_slo,
)

pytestmark = pytest.mark.tier1

#: Small virtual windows every test here shares: 1 s / 10 s / 100 s.
W = SLOWindows(fast_s=1.0, mid_s=10.0, slow_s=100.0)


def avail_spec(**overrides):
    kwargs = dict(name="t-availability", scope="tenant:t",
                  objective="availability", target=0.9, windows=W)
    kwargs.update(overrides)
    return SLOSpec(**kwargs)


def engine_with(spec):
    engine = SLOEngine()
    engine.register(spec)
    return engine


# -- spec validation --------------------------------------------------------

def test_windows_must_be_ordered():
    with pytest.raises(ValueError):
        SLOWindows(fast_s=10.0, mid_s=1.0, slow_s=100.0)
    with pytest.raises(ValueError):
        SLOWindows(fast_s=0.0, mid_s=1.0, slow_s=2.0)


def test_spec_validation():
    with pytest.raises(ValueError):
        avail_spec(objective="uptime")
    with pytest.raises(ValueError):
        avail_spec(target=1.0)
    with pytest.raises(ValueError):
        avail_spec(target=0.0)
    # threshold_s is latency-only, and latency requires it
    with pytest.raises(ValueError):
        avail_spec(threshold_s=0.5)
    with pytest.raises(ValueError):
        avail_spec(objective="latency", threshold_s=None)
    with pytest.raises(ValueError):
        avail_spec(clear_ratio=0.0)
    with pytest.raises(ValueError):
        avail_spec(page_burn=0.0)


def test_duplicate_spec_rejected():
    engine = engine_with(avail_spec())
    with pytest.raises(ValueError):
        engine.register(avail_spec())


def test_budget_per_objective():
    assert avail_spec().budget == pytest.approx(0.1)
    lat = avail_spec(objective="latency", threshold_s=0.25, target=0.95)
    assert lat.budget == pytest.approx(0.05)
    # ceiling-style objectives: the target IS the budget
    shed = avail_spec(objective="shed_rate", target=0.10)
    assert shed.budget == pytest.approx(0.10)
    stale = avail_spec(objective="staleness", target=0.05)
    assert stale.budget == pytest.approx(0.05)


# -- classification ---------------------------------------------------------

CLASSIFY_TABLE = [
    # (objective, threshold_s, outcome, latency, degraded, stale, expected)
    ("availability", None, "completed", 0.1, False, False, False),
    ("availability", None, "completed", 0.1, True, False, True),
    ("availability", None, "failed", None, False, False, True),
    ("availability", None, "shed_overload", None, False, False, True),
    ("shed_rate", None, "shed_quota", None, False, False, True),
    ("shed_rate", None, "shed_timeout", None, False, False, True),
    ("shed_rate", None, "completed", 0.1, False, False, False),
    ("shed_rate", None, "failed", None, False, False, False),
    ("staleness", None, "completed", 0.1, False, True, True),
    ("staleness", None, "completed", 0.1, False, False, False),
    ("staleness", None, "failed", None, False, True, None),
    ("latency", 0.5, "completed", 0.6, False, False, True),
    ("latency", 0.5, "completed", 0.4, False, False, False),
    ("latency", 0.5, "completed", None, False, False, None),
    ("latency", 0.5, "failed", 9.9, False, False, None),
]


@pytest.mark.parametrize(
    "objective,threshold,outcome,latency,degraded,stale,expected",
    CLASSIFY_TABLE)
def test_classify(objective, threshold, outcome, latency, degraded,
                  stale, expected):
    spec = avail_spec(objective=objective, threshold_s=threshold,
                      target=0.9 if objective in ("availability", "latency")
                      else 0.1)
    assert spec.classify(outcome, latency, degraded, stale) is expected


# -- burn-rate math ---------------------------------------------------------

def test_burn_is_window_ratio_over_budget():
    # 5 bad / 10 events, all inside every window -> ratio 0.5,
    # budget 0.1 -> burn 5.0 in fast, mid and slow alike.
    engine = engine_with(avail_spec(page_burn=100.0, ticket_burn=100.0))
    for k in range(10):
        outcome = "failed" if k % 2 else "completed"
        engine.observe("tenant:t", outcome=outcome, at_s=0.05 * (k + 1))
    block = engine.report()["specs"]["t-availability"]
    assert block["burn"] == {"fast": 5.0, "mid": 5.0, "slow": 5.0}
    assert block["events"] == {"good": 5, "bad": 5}


def test_windows_evict_as_time_advances():
    engine = engine_with(avail_spec(page_burn=100.0, ticket_burn=100.0))
    for k in range(4):
        engine.observe("tenant:t", outcome="failed", at_s=0.1 * (k + 1))
    # 5 s later: the bads left the 1 s fast window but sit in mid/slow
    engine.observe("tenant:t", outcome="completed", at_s=5.0)
    block = engine.report()["specs"]["t-availability"]
    assert block["burn"]["fast"] == 0.0
    assert block["burn"]["mid"] == pytest.approx(8.0)  # 4/5 over 0.1


def test_page_needs_both_fast_and_mid_windows():
    # 10 goods spread over the mid window keep its burn low; a hot fast
    # window alone (1 bad / 2 events -> burn 5.0) must not page.
    engine = engine_with(avail_spec(page_burn=5.0, ticket_burn=1000.0))
    for k in range(10):
        engine.observe("tenant:t", outcome="completed", at_s=float(k))
    engine.observe("tenant:t", outcome="failed", at_s=9.5)
    assert engine.alert_active("t-availability", "page") is False
    # burn check: fast (8.5, 9.5] holds good@9 + bad@9.5 -> 5.0
    block = engine.report()["specs"]["t-availability"]
    assert block["burn"]["fast"] == pytest.approx(5.0)
    assert block["burn"]["mid"] == pytest.approx(1.0 / 11 / 0.1)


def test_page_fires_when_both_windows_burn():
    engine = engine_with(avail_spec(page_burn=5.0, ticket_burn=1000.0))
    engine.observe("tenant:t", outcome="failed", at_s=0.1)
    assert engine.alert_active("t-availability", "page") is True
    assert engine.active_alerts() == ["t-availability:page"]
    edges = [(a.severity, a.edge) for a in engine.transitions]
    assert edges == [("page", "fire")]


def test_ticket_gates_on_mid_and_slow():
    # ticket_burn 2.0 with budget 0.1 -> needs ratio >= 0.2 in BOTH the
    # mid and slow windows.
    engine = engine_with(avail_spec(page_burn=1000.0, ticket_burn=2.0))
    # 40 goods far in the past: inside slow (span 100), outside mid.
    for k in range(40):
        engine.observe("tenant:t", outcome="completed",
                       at_s=20.0 + 0.1 * k)
    # 4 bads now: mid ratio 1.0, slow ratio 4/44 < 0.2 -> no ticket.
    for k in range(4):
        engine.observe("tenant:t", outcome="failed", at_s=90.0 + 0.1 * k)
    assert engine.alert_active("t-availability", "ticket") is False
    # 8 more bads: slow ratio 12/52 >= 0.2 -> ticket fires.
    for k in range(8):
        engine.observe("tenant:t", outcome="failed", at_s=91.0 + 0.1 * k)
    assert engine.alert_active("t-availability", "ticket") is True


# -- hysteresis -------------------------------------------------------------

def test_hysteresis_fire_clear_refire():
    # target 0.5 -> budget 0.5; page at ratio >= 0.8 (burn 1.6),
    # clear only when both windows drop below 0.72 (burn < 1.44).
    spec = avail_spec(target=0.5, page_burn=1.6, ticket_burn=1000.0,
                      clear_ratio=0.9)
    engine = engine_with(spec)
    for k in range(5):
        engine.observe("tenant:t", outcome="failed", at_s=0.1 * (k + 1))
    assert engine.alert_active("t-availability", "page") is True
    # two goods: ratio 5/7 = 0.714 < 0.72 in fast and mid -> clears
    engine.observe("tenant:t", outcome="completed", at_s=0.6)
    assert engine.alert_active("t-availability", "page") is True  # 5/6
    engine.observe("tenant:t", outcome="completed", at_s=0.7)
    assert engine.alert_active("t-availability", "page") is False
    # hot again at t~1.8: fast window holds only new bads, mid needs
    # (5+k)/(7+k) >= 0.8 -> k >= 3 bads to refire
    engine.observe("tenant:t", outcome="failed", at_s=1.8)
    engine.observe("tenant:t", outcome="failed", at_s=1.9)
    assert engine.alert_active("t-availability", "page") is False
    engine.observe("tenant:t", outcome="failed", at_s=2.0)
    assert engine.alert_active("t-availability", "page") is True
    block = engine.report()["specs"]["t-availability"]
    assert block["alerts"]["page"] == {
        "active": True, "fired": 2, "cleared": 1}
    edges = [(a.severity, a.edge) for a in engine.transitions]
    assert edges == [("page", "fire"), ("page", "clear"),
                     ("page", "fire")]


def test_evaluate_clears_in_quiet_periods():
    engine = engine_with(avail_spec(page_burn=5.0, ticket_burn=1000.0))
    engine.observe("tenant:t", outcome="failed", at_s=0.1)
    assert engine.alert_active("t-availability", "page") is True
    # no traffic; 200 s later every window has drained
    engine.evaluate(at_s=200.0)
    assert engine.alert_active("t-availability", "page") is False
    assert engine.active_alerts() == []


def test_on_alert_fanout_sees_every_edge():
    seen = []
    engine = engine_with(avail_spec(page_burn=5.0, ticket_burn=1000.0))
    engine.on_alert.append(lambda a: seen.append((a.spec, a.severity,
                                                  a.edge)))
    engine.observe("tenant:t", outcome="failed", at_s=0.1)
    engine.evaluate(at_s=200.0)
    assert seen == [("t-availability", "page", "fire"),
                    ("t-availability", "page", "clear")]


# -- engine plumbing --------------------------------------------------------

def test_observe_requires_clock_or_at_s():
    engine = engine_with(avail_spec())
    with pytest.raises(ValueError):
        engine.observe("tenant:t", outcome="completed")
    clocked = SLOEngine(clock=lambda: 42.0)
    clocked.register(avail_spec())
    clocked.observe("tenant:t", outcome="failed")
    assert clocked.report()["specs"]["t-availability"]["events"]["bad"] == 1


def test_unwatched_scope_is_a_noop():
    engine = engine_with(avail_spec())
    engine.observe("tenant:other", outcome="failed", at_s=1.0)
    assert engine.report()["specs"]["t-availability"]["events"] == {
        "good": 0, "bad": 0}


def test_latency_breach_checks_latency_specs_only():
    engine = SLOEngine()
    engine.register(avail_spec())
    engine.register(SLOSpec(name="t-latency", scope="tenant:t",
                            objective="latency", target=0.95,
                            threshold_s=0.5, windows=W))
    assert engine.latency_breach("tenant:t", 0.6) is True
    assert engine.latency_breach("tenant:t", 0.4) is False
    assert engine.latency_breach("tenant:none", 9.9) is False


# -- reporting and metrics --------------------------------------------------

def run_fixed_sequence(engine):
    for k in range(20):
        outcome = "failed" if k % 4 == 0 else "completed"
        engine.observe("tenant:t", outcome=outcome, at_s=0.05 * (k + 1))
    engine.evaluate(at_s=2.0)


def test_report_is_byte_stable():
    a, b = SLOEngine(), SLOEngine()
    for engine in (a, b):
        engine.register(avail_spec(page_burn=2.0, ticket_burn=1.5))
        run_fixed_sequence(engine)
    assert a.report().to_json() == b.report().to_json()
    json.loads(a.report().to_json())  # strict JSON, no NaN tokens


def test_summary_counts_pages_and_tickets():
    engine = engine_with(avail_spec(page_burn=5.0, ticket_burn=1000.0))
    engine.observe("tenant:t", outcome="failed", at_s=0.1)
    summary = engine.summary()
    assert summary["specs"] == 1
    assert summary["pages_fired"] == 1
    assert summary["tickets_fired"] == 0
    assert summary["active_alerts"] == ["t-availability:page"]
    assert summary["transitions"] == 1


def test_metric_families_scrape_through_registry():
    registry = MetricsRegistry()
    engine = engine_with(avail_spec(page_burn=5.0, ticket_burn=1000.0))
    register_slo(registry, engine)
    engine.observe("tenant:t", outcome="failed", at_s=0.1)
    engine.observe("tenant:t", outcome="completed", at_s=0.2)
    text = registry.expose()
    assert 'slo_events_total{kind="bad",spec="t-availability"} 1' in text
    assert 'slo_events_total{kind="good",spec="t-availability"} 1' in text
    assert 'slo_alert_active{severity="page",spec="t-availability"} 1' \
        in text
    assert ('slo_alerts_total{edge="fire",severity="page",'
            'spec="t-availability"} 1') in text
    assert "slo_burn_rate" in text
