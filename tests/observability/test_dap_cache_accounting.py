"""DapCache accounting: a stale-served request is a stale_hit, not a
miss — and never a plain hit (the satellite fix), surfaced through the
metrics registry."""

import pytest

from repro.observability import MetricsRegistry, parse_exposition
from repro.observability import register_dap_cache
from repro.opendap import DapCache

pytestmark = pytest.mark.tier1


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


def test_stale_serve_reclassifies_the_miss(clock):
    cache = DapCache(ttl_s=10, clock=clock, serve_stale=True)
    cache.put("u", "a", b"a")
    clock.advance(11)
    assert cache.get("u", "a") is None
    assert (cache.hits, cache.misses, cache.stale_hits) == (0, 1, 0)
    # the refetch failed; the caller falls back to the stale body:
    assert cache.get_stale("u", "a") == b"a"
    # one logical request, one counter — the miss became a stale_hit
    assert (cache.hits, cache.misses, cache.stale_hits) == (0, 0, 1)


def test_successful_refetch_confirms_the_miss(clock):
    cache = DapCache(ttl_s=10, clock=clock, serve_stale=True)
    cache.put("u", "a", b"old")
    clock.advance(11)
    assert cache.get("u", "a") is None
    cache.put("u", "a", b"new")  # refetch succeeded
    assert cache.get_stale("u", "a") == b"new"
    # the put cleared the reclassification window: the miss stands
    assert (cache.hits, cache.misses, cache.stale_hits) == (0, 1, 1)


def test_stale_hit_never_counts_as_plain_hit(clock):
    cache = DapCache(ttl_s=10, clock=clock, serve_stale=True)
    cache.put("u", "a", b"a")
    assert cache.get("u", "a") == b"a"  # fresh: a real hit
    clock.advance(11)
    cache.get("u", "a")
    cache.get_stale("u", "a")
    assert cache.hits == 1
    assert cache.stale_hits == 1


def test_hit_rate_counts_stale_serves_as_satisfied(clock):
    cache = DapCache(ttl_s=10, clock=clock, serve_stale=True)
    cache.put("u", "a", b"a")
    assert cache.get("u", "a") == b"a"  # hit
    clock.advance(11)
    cache.get("u", "a")  # provisional miss
    cache.get_stale("u", "a")  # ...reclassified stale_hit
    cache.get("u", "nope")  # true miss
    # 3 logical requests, 2 satisfied from cache
    assert cache.hit_rate == pytest.approx(2 / 3)


def test_clear_resets_pending_reclassification(clock):
    cache = DapCache(ttl_s=10, clock=clock, serve_stale=True)
    cache.put("u", "a", b"a")
    clock.advance(11)
    cache.get("u", "a")
    cache.clear()
    cache.put("u", "a", b"a")
    assert cache.get_stale("u", "a") == b"a"
    # no leftover pending entry: the miss count cannot go negative
    assert (cache.misses, cache.stale_hits) == (0, 1)


def test_cache_counters_exposed_via_registry(clock):
    cache = DapCache(ttl_s=10, clock=clock, serve_stale=True)
    registry = MetricsRegistry()
    register_dap_cache(registry, cache, component="sdl")
    cache.put("u", "a", b"a")
    cache.get("u", "a")
    clock.advance(11)
    cache.get("u", "a")
    cache.get_stale("u", "a")
    text = registry.expose()
    parsed = parse_exposition(text)
    assert parsed.render() == text

    def value(name):
        (__, __, v), = parsed.family(name).samples
        return v

    assert value("repro_dap_cache_hits_total") == 1
    assert value("repro_dap_cache_misses_total") == 0
    assert value("repro_dap_cache_stale_hits_total") == 1
    assert value("repro_dap_cache_entries") == 1
