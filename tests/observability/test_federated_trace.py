"""Acceptance: one federated query -> one trace tree matching EXPLAIN.

The paper's running example — greenness of Paris — needs the GADM
admin-unit endpoint and the OSM parks endpoint. A single query run
under a tracer must produce one trace tree whose span node ids are
exactly the EXPLAIN plan node ids, with per-operator self-times
summing to the root span's duration, and whose counters surface
through the metrics registry's Prometheus exposition.
"""

import re

import pytest

from repro.geometry import Point, Polygon, to_wkt_literal
from repro.observability import MetricsRegistry, Tracer, parse_exposition
from repro.rdf import GEO, GEO_WKT_LITERAL, Graph, IRI, Literal, RDF
from repro.sparql.federation import FederationEngine, SparqlEndpoint

pytestmark = pytest.mark.tier1

GADM_NS = "http://www.app-lab.eu/gadm/"
OSM_NS = "http://www.app-lab.eu/osm/"

PREFIX = """
PREFIX gadm: <http://www.app-lab.eu/gadm/>
PREFIX osm: <http://www.app-lab.eu/osm/>
PREFIX geo: <http://www.opengis.net/ont/geosparql#>
PREFIX geof: <http://www.opengis.net/def/function/geosparql/>
"""

GREENNESS_QUERY = PREFIX + """
SELECT ?park WHERE {
  ?unit gadm:hasName "Paris" ; geo:hasGeometry ?gu .
  ?gu geo:asWKT ?wu .
  ?park osm:poiType osm:park ; geo:hasGeometry ?gp .
  ?gp geo:asWKT ?wp .
  FILTER(geof:sfContains(?wu, ?wp))
}
"""


def wkt(geom):
    return Literal(to_wkt_literal(geom), datatype=GEO_WKT_LITERAL)


@pytest.fixture
def federation():
    gadm = Graph()
    gadm.bind("gadm", GADM_NS)
    paris = IRI(GADM_NS + "paris")
    gadm.add(paris, RDF.type, IRI(GADM_NS + "AdministrativeUnit"))
    gadm.add(paris, IRI(GADM_NS + "hasName"), Literal("Paris"))
    geom = IRI(GADM_NS + "paris_geom")
    gadm.add(paris, GEO.hasGeometry, geom)
    gadm.add(geom, GEO.asWKT, wkt(Polygon.box(2.2, 48.8, 2.5, 48.95)))

    osm = Graph()
    osm.bind("osm", OSM_NS)
    for name, lon, lat in [
        ("bois_de_boulogne", 2.25, 48.86),
        ("luxembourg", 2.34, 48.85),
        ("faraway_park", 5.0, 50.0),
    ]:
        park = IRI(OSM_NS + name)
        osm.add(park, IRI(OSM_NS + "poiType"), IRI(OSM_NS + "park"))
        osm.add(park, IRI(OSM_NS + "hasName"), Literal(name))
        pg = IRI(OSM_NS + name + "_geom")
        osm.add(park, GEO.hasGeometry, pg)
        osm.add(pg, GEO.asWKT, wkt(Point(lon, lat)))

    engine = FederationEngine()
    engine.register("http://gadm.example/sparql",
                    SparqlEndpoint(gadm, name="gadm"))
    engine.register("http://osm.example/sparql",
                    SparqlEndpoint(osm, name="osm"))
    return engine


def test_one_query_yields_one_trace_tree(federation, tick_clock):
    tracer = Tracer(clock=tick_clock)
    result = federation.query(GREENNESS_QUERY, tracer=tracer)
    names = {str(r["park"]).rsplit("/", 1)[1] for r in result}
    assert names == {"bois_de_boulogne", "luxembourg"}
    assert len(tracer.roots) == 1
    root = tracer.roots[0]
    assert result.trace is root
    assert root.name == "federation.query"


def test_trace_node_ids_match_explain_plan_ids(federation, tick_clock):
    explain_text = federation.explain(GREENNESS_QUERY).render()
    explain_ids = set(
        int(m) for m in re.findall(r"^\s*#(\d+) ", explain_text,
                                   re.MULTILINE)
    )
    tracer = Tracer(clock=tick_clock)
    result = federation.query(GREENNESS_QUERY, tracer=tracer)
    trace_ids = {
        s.attributes.get("node_id") for s in result.trace.walk()
        if s.attributes.get("node_id") is not None
    }
    executed_ids = {n.id for n in result.plan.walk()}
    assert trace_ids == executed_ids
    assert trace_ids == explain_ids


def test_self_times_sum_to_root_duration(federation, tick_clock):
    tracer = Tracer(clock=tick_clock)
    result = federation.query(GREENNESS_QUERY, tracer=tracer)
    root = result.trace
    total_self = sum(s.self_time_s for s in root.walk())
    assert root.duration_s > 0
    assert total_self == pytest.approx(root.duration_s)


def test_lower_layer_spans_nest_inside_the_query(federation, tick_clock):
    tracer = Tracer(clock=tick_clock)
    federation.query(GREENNESS_QUERY, tracer=tracer)
    root = tracer.roots[0]
    names = [s.name for s in root.walk()]
    assert any(n == "federation.dispatch" for n in names)
    assert any(n == "retry.attempt" for n in names)
    # plan-mirroring spans carry "<Label>#<id>" names
    assert any(re.match(r"^\w+#\d+$", n) for n in names)


def test_profile_attributes_counters_to_operators(federation, tick_clock):
    tracer = Tracer(clock=tick_clock)
    result = federation.query(GREENNESS_QUERY, tracer=tracer)
    profile = result.profile()
    assert len(profile) == len(list(result.plan.walk()))
    total_self = sum(row["self_time_s"] for row in profile)
    root_row = profile.rows[0]
    assert total_self == pytest.approx(root_row["time_s"])


def test_bound_metrics_expose_and_round_trip(federation, tick_clock):
    tracer = Tracer(clock=tick_clock)
    registry = MetricsRegistry()
    federation.bind_metrics(registry)
    federation.query(GREENNESS_QUERY, tracer=tracer)
    text = registry.expose()
    parsed = parse_exposition(text)
    assert parsed.render() == text
    fam = parsed.family("repro_resilience_attempts_total")
    per_endpoint = {
        labels.get("endpoint", ""): value
        for __, labels, value in fam.samples
    }
    # harvest + dispatch touched both endpoints; per-endpoint samples
    # sum to the engine total
    assert sum(per_endpoint.values()) == federation.stats.attempts
    assert any(value > 0 for value in per_endpoint.values())
