"""Query profiles: per-operator rows/timings keyed to EXPLAIN ids."""

import re

import pytest

from repro.observability import Tracer
from repro.rdf import Graph, IRI, Literal

pytestmark = pytest.mark.tier1

EX = "http://example.org/"

QUERY = f"""
SELECT ?s ?v WHERE {{
  ?s <{EX}value> ?v .
  FILTER(?v > 2)
}} ORDER BY ?v
"""


@pytest.fixture
def graph():
    g = Graph()
    for i in range(5):
        g.add(IRI(f"{EX}item{i}"), IRI(f"{EX}value"), Literal(i))
    return g


def test_profile_requires_a_plan():
    from repro.sparql.results import SPARQLResult

    with pytest.raises(ValueError):
        SPARQLResult("SELECT").profile()


def test_profile_without_tracer_has_rows_but_zero_times(graph):
    result = graph.query(QUERY)
    profile = result.profile()
    assert len(profile) == len(list(result.plan.walk()))
    for row in profile:
        assert row["time_s"] == 0.0
    out_row = profile.rows[0]
    assert out_row["rows_out"] == 2  # values 3 and 4 pass the filter


def test_profile_ids_match_explain_ids(graph, tick_clock):
    tracer = Tracer(clock=tick_clock)
    result = graph.query(QUERY, tracer=tracer)
    explain_ids = set(
        int(m) for m in re.findall(r"^\s*#(\d+) ", result.explain(),
                                   re.MULTILINE)
    )
    profile_ids = {row["id"] for row in result.profile()}
    assert profile_ids == explain_ids
    assert profile_ids == set(range(1, len(profile_ids) + 1))


def test_profile_times_sum_to_root_duration(graph, tick_clock):
    tracer = Tracer(clock=tick_clock)
    result = graph.query(QUERY, tracer=tracer)
    profile = result.profile()
    root_row = profile.rows[0]
    assert root_row["time_s"] > 0
    total_self = sum(row["self_time_s"] for row in profile)
    assert total_self == pytest.approx(root_row["time_s"])


def test_profile_rows_in_is_source_rows_out(graph, tick_clock):
    tracer = Tracer(clock=tick_clock)
    result = graph.query(QUERY, tracer=tracer)
    by_id = {row["id"]: row for row in result.profile()}
    for row in result.profile():
        if row["rows_in"] is None:
            continue
        # rows_in equals the first plan child's rows_out
        child_rows = [
            r for r in by_id.values()
            if r["depth"] == row["depth"] + 1
        ]
        assert any(r["rows_out"] == row["rows_in"] for r in child_rows)


def test_profile_render_is_a_table(graph, tick_clock):
    tracer = Tracer(clock=tick_clock)
    result = graph.query(QUERY, tracer=tracer)
    text = result.profile().render()
    lines = text.splitlines()
    assert lines[0].split()[:3] == ["#id", "operator", "rows_in"]
    assert len(lines) == len(result.profile()) + 1
    assert str(result.profile()) == text


def test_trace_attached_to_result(graph, tick_clock):
    tracer = Tracer(clock=tick_clock)
    result = graph.query(QUERY, tracer=tracer)
    assert result.trace is not None
    node_ids = {
        s.attributes.get("node_id") for s in result.trace.walk()
        if s.attributes.get("node_id") is not None
    }
    plan_ids = {n.id for n in result.plan.walk()}
    assert node_ids == plan_ids


def test_untraced_query_has_no_trace(graph):
    result = graph.query(QUERY)
    assert result.trace is None
