"""Determinism: identical runs yield byte-identical trace JSON."""

import pytest

from repro.observability import Tracer, dump_trace, render_trace
from repro.rdf import Graph, IRI, Literal

from conftest import TickClock

pytestmark = pytest.mark.tier1

EX = "http://example.org/"

QUERY = f"""
SELECT ?s ?v WHERE {{
  ?s <{EX}value> ?v .
  OPTIONAL {{ ?s <{EX}tag> ?t }}
  FILTER(?v >= 1)
}} ORDER BY DESC(?v) LIMIT 3
"""


def build_graph():
    g = Graph()
    for i in range(6):
        g.add(IRI(f"{EX}item{i}"), IRI(f"{EX}value"), Literal(i))
        if i % 2:
            g.add(IRI(f"{EX}item{i}"), IRI(f"{EX}tag"),
                  Literal(f"t{i}"))
    return g


def run_once():
    tracer = Tracer(clock=TickClock(step=0.001))
    result = build_graph().query(QUERY, tracer=tracer)
    return result, tracer


def test_two_runs_produce_byte_identical_trace_json():
    result_a, __ = run_once()
    result_b, __ = run_once()
    assert dump_trace(result_a.trace) == dump_trace(result_b.trace)


def test_two_runs_produce_identical_renderings():
    result_a, __ = run_once()
    result_b, __ = run_once()
    assert render_trace(result_a.trace) == render_trace(result_b.trace)
    assert result_a.profile().render() == result_b.profile().render()
    assert result_a.explain() == result_b.explain()


def test_span_ids_stable_across_runs():
    __, tracer_a = run_once()
    __, tracer_b = run_once()
    names_a = [(s.span_id, s.name) for s in tracer_a.spans]
    names_b = [(s.span_id, s.name) for s in tracer_b.spans]
    assert names_a == names_b


def test_trace_json_has_expected_envelope():
    import json

    result, __ = run_once()
    data = json.loads(dump_trace(result.trace))
    assert set(data) == {"span_id", "name", "attributes", "counters",
                         "start_s", "duration_s", "self_time_s",
                         "children"}
    assert data["children"]  # plan spans mirrored underneath
