"""Query log: keep-priority rules, deterministic tail sampling, ring
bounds, grep/dump ergonomics and the metrics mirror."""

import json
import zlib

import pytest

from repro.observability import MetricsRegistry, QueryLog, QueryLogRecord

pytestmark = pytest.mark.tier1


def record(seq, *, outcome="completed", latency=0.01, tenant="t",
           template="tmpl", **kwargs):
    return QueryLogRecord(seq=seq, tenant=tenant, template=template,
                          outcome=outcome, at_s=0.001 * seq,
                          latency_s=latency, **kwargs)


def test_constructor_validation():
    with pytest.raises(ValueError):
        QueryLog(capacity=0)
    with pytest.raises(ValueError):
        QueryLog(sample_ratio=1.5)


def test_errors_always_kept():
    log = QueryLog(seed=1, sample_ratio=0.0)
    assert log.offer(record(1, outcome="failed",
                            error_code="upstream_unavailable")) == "error"
    assert log.offer(record(2, outcome="shed_overload",
                            latency=None)) == "error"
    # a completed record carrying a typed error payload is still an error
    assert log.offer(record(3, error_code="worker_died")) == "error"
    assert log.kept["error"] == 3
    assert len(log) == 3


def test_degraded_and_slo_breach_always_kept():
    log = QueryLog(seed=1, sample_ratio=0.0)
    degraded = {"stale_serves": 1, "truncated": False}
    assert log.offer(record(1, degraded=degraded)) == "degraded"
    assert log.offer(record(2, slo_breach=True)) == "slo"
    # error outranks degraded outranks slo in the keep priority
    assert log.offer(record(3, outcome="failed", degraded=degraded,
                            slo_breach=True)) == "error"
    assert log.offer(record(4, degraded=degraded,
                            slo_breach=True)) == "degraded"


def test_slow_decile_judged_against_prior_distribution():
    log = QueryLog(seed=1, sample_ratio=0.0, min_latency_samples=16)
    # warm-up: below min_latency_samples nothing is "slow", however big
    assert log.offer(record(1, latency=99.0)) is None
    for seq in range(2, 18):
        log.offer(record(seq, latency=0.01))
    assert log._hist.count >= 16
    # now an outlier lands in the slowest decile of what came before
    assert log.offer(record(50, latency=5.0)) == "slow"
    # and a typical latency does not
    assert log.offer(record(51, latency=0.001)) is None


def test_hash_sampling_is_a_pure_function_of_identity():
    log = QueryLog(seed=7, sample_ratio=0.25)
    expected_keep = (
        zlib.crc32(b"7:5:t:tmpl") % 1_000_000 < 250_000)
    assert (log.offer(record(5)) == "hash") is expected_keep
    # two logs with the same seed make identical decisions
    a, b = QueryLog(seed=3, sample_ratio=0.2), QueryLog(seed=3,
                                                        sample_ratio=0.2)
    decisions_a = [a.offer(record(seq)) for seq in range(100)]
    decisions_b = [b.offer(record(seq)) for seq in range(100)]
    assert decisions_a == decisions_b
    assert "hash" in decisions_a  # the ratio actually keeps some
    assert None in decisions_a    # ...and drops some
    # a different seed decides differently somewhere
    c = QueryLog(seed=4, sample_ratio=0.2)
    decisions_c = [c.offer(record(seq)) for seq in range(100)]
    assert decisions_c != decisions_a


def test_ring_is_bounded_and_counts_evictions():
    log = QueryLog(capacity=4, seed=1, sample_ratio=0.0)
    for seq in range(10):
        log.offer(record(seq, outcome="failed", latency=None))
    assert len(log) == 4
    assert log.evicted == 6
    assert [r.seq for r in log.records()] == [6, 7, 8, 9]
    summary = log.summary()
    assert summary["offered"] == 10
    assert summary["size"] == 4
    assert summary["evicted"] == 6


def test_grep_filters_and_rejects_unknown_fields():
    log = QueryLog(seed=1, sample_ratio=0.0)
    log.offer(record(1, outcome="failed", tenant="a", latency=None))
    log.offer(record(2, outcome="failed", tenant="b", latency=None))
    log.offer(record(3, outcome="budget_exceeded", tenant="a",
                     latency=None))
    assert [r.seq for r in log.grep(tenant="a")] == [1, 3]
    assert [r.seq for r in log.grep(tenant="a", outcome="failed")] == [1]
    assert [r.seq for r in log.grep(
        predicate=lambda r: r.seq > 1)] == [2, 3]
    with pytest.raises(KeyError):
        log.grep(tenantt="a")


def test_dump_round_trips_strict_json():
    log = QueryLog(seed=1, sample_ratio=0.0)
    log.offer(record(1, outcome="failed", latency=0.5,
                     error_code="deadline_exceeded", trace_id="t00000001",
                     plan_signature="sig", stats_version=3, est_rows=10.0,
                     actual_rows=7, replans=1,
                     budget={"rows": 7}))
    dumped = json.loads(log.dump_json())
    assert dumped[0]["sampled"] == "error"
    assert dumped[0]["trace_id"] == "t00000001"
    assert dumped[0]["plan_signature"] == "sig"
    assert dumped[0]["stats_version"] == 3
    assert dumped[0]["est_rows"] == 10.0
    assert dumped[0]["actual_rows"] == 7
    # None-valued optionals are omitted, not emitted as null
    log2 = QueryLog(seed=1, sample_ratio=0.0)
    log2.offer(record(2, outcome="failed", latency=None))
    assert "latency_s" not in json.loads(log2.dump_json())[0]


def test_metrics_mirror_sampled_and_dropped():
    registry = MetricsRegistry()
    log = QueryLog(seed=3, sample_ratio=0.2, metrics=registry)
    for seq in range(50):
        log.offer(record(seq))
    log.offer(record(99, outcome="failed", latency=None))
    text = registry.expose()
    kept_hash = log.kept["hash"]
    assert f'qlog_sampled_total{{reason="hash"}} {kept_hash}' in text
    assert 'qlog_sampled_total{reason="error"} 1' in text
    assert f"qlog_dropped_total {log.dropped}" in text


def test_zero_ratio_keeps_only_priority_classes():
    log = QueryLog(seed=1, sample_ratio=0.0)
    for seq in range(200):
        log.offer(record(seq, latency=0.01))
    assert log.kept["hash"] == 0
    assert log.kept["slow"] == 0  # constant latency has no slow decile
