"""Silk link-discovery tests."""

import pytest

from repro.geometry import Point, Polygon, to_wkt_literal
from repro.interlink import (
    Comparison,
    DatasetSelector,
    LinkSpec,
    LinkageRule,
    SilkEngine,
    exact_match,
    jaccard_tokens,
    levenshtein_similarity,
    near,
    numeric_similarity,
    spatial_relation,
    temporal_relation,
)
from repro.rdf import GEO, GEO_WKT_LITERAL, Graph, IRI, Literal, OWL, RDF

EX = "http://example.org/"
OSM = "http://osm.example/"


class TestMeasures:
    def test_levenshtein(self):
        assert levenshtein_similarity("paris", "paris") == 1.0
        assert levenshtein_similarity("paris", "pariss") == pytest.approx(5 / 6)
        assert levenshtein_similarity("", "x") == 0.0

    def test_jaccard(self):
        assert jaccard_tokens("bois de boulogne", "Bois de Boulogne") == 1.0
        assert jaccard_tokens("a b", "b c") == pytest.approx(1 / 3)

    def test_exact(self):
        assert exact_match("a", "a") == 1.0
        assert exact_match("a", "b") == 0.0

    def test_numeric(self):
        sim = numeric_similarity(10.0)
        assert sim(5, 5) == 1.0
        assert sim(0, 5) == 0.5
        assert sim(0, 20) == 0.0

    def test_spatial(self):
        inter = spatial_relation("intersects")
        assert inter(Polygon.box(0, 0, 2, 2), Point(1, 1)) == 1.0
        assert inter(Polygon.box(0, 0, 2, 2), Point(5, 5)) == 0.0

    def test_near(self):
        sim = near(2.0)
        assert sim(Point(0, 0), Point(1, 0)) == 0.5
        assert sim(Point(0, 0), Point(4, 0)) == 0.0

    def test_temporal(self):
        before = temporal_relation("before")
        assert before("2018-01-01T00:00:00Z", "2019-01-01T00:00:00Z") == 1.0
        assert before("2019-01-01T00:00:00Z", "2018-01-01T00:00:00Z") == 0.0


def build_graphs():
    """Parks in a 'GADM-like' graph and POIs in an 'OSM-like' graph."""
    gadm = Graph()
    osm = Graph()
    parks = [
        ("bois_de_boulogne", "Bois de Boulogne", Polygon.box(2.21, 48.85, 2.27, 48.88)),
        ("parc_monceau", "Parc Monceau", Polygon.box(2.306, 48.877, 2.312, 48.881)),
    ]
    for key, name, geom in parks:
        uri = IRI(EX + key)
        gadm.add(uri, RDF.type, IRI(EX + "Park"))
        gadm.add(uri, IRI(EX + "hasName"), Literal(name))
        g = IRI(EX + key + "/geom")
        gadm.add(uri, GEO.hasGeometry, g)
        gadm.add(g, GEO.asWKT,
                 Literal(to_wkt_literal(geom), datatype=GEO_WKT_LITERAL))
    pois = [
        ("poi1", "bois de boulogne", Point(2.24, 48.86)),
        ("poi2", "parc monceau", Point(2.309, 48.879)),
        ("poi3", "tour eiffel", Point(2.294, 48.858)),
    ]
    for key, name, geom in pois:
        uri = IRI(OSM + key)
        osm.add(uri, RDF.type, IRI(OSM + "POI"))
        osm.add(uri, IRI(OSM + "name"), Literal(name))
        g = IRI(OSM + key + "/geom")
        osm.add(uri, GEO.hasGeometry, g)
        osm.add(g, GEO.asWKT,
                Literal(to_wkt_literal(geom), datatype=GEO_WKT_LITERAL))
    return gadm, osm


def make_spec(gadm, osm, rule):
    return LinkSpec(
        source=DatasetSelector(
            gadm, IRI(EX + "Park"),
            {"name": [IRI(EX + "hasName")],
             "geom": [GEO.hasGeometry, GEO.asWKT]},
        ),
        target=DatasetSelector(
            osm, IRI(OSM + "POI"),
            {"name": [IRI(OSM + "name")],
             "geom": [GEO.hasGeometry, GEO.asWKT]},
        ),
        rule=rule,
        link_predicate=OWL.sameAs,
    )


def test_name_and_geometry_links():
    gadm, osm = build_graphs()
    rule = LinkageRule(
        comparisons=[
            Comparison("name", jaccard_tokens, weight=1.0),
            Comparison("geom", spatial_relation("intersects"),
                       is_spatial=True, weight=1.0),
        ],
        aggregation="average",
        threshold=0.9,
    )
    engine = SilkEngine()
    links = engine.generate_links(make_spec(gadm, osm, rule))
    assert len(links) == 2
    linked = {(str(t.s).rsplit("/", 1)[1], str(t.o).rsplit("/", 1)[1])
              for t in links}
    assert linked == {("bois_de_boulogne", "poi1"), ("parc_monceau", "poi2")}
    assert all(t.p == OWL.sameAs for t in links)


def test_spatial_blocking_reduces_comparisons():
    gadm, osm = build_graphs()
    rule = LinkageRule(
        comparisons=[Comparison("geom", spatial_relation("intersects"),
                                is_spatial=True)],
        threshold=1.0,
    )
    blocked = SilkEngine(blocking=True)
    blocked.generate_links(make_spec(gadm, osm, rule))
    unblocked = SilkEngine(blocking=False)
    unblocked.generate_links(make_spec(gadm, osm, rule))
    assert blocked.compared_pairs < unblocked.compared_pairs
    assert unblocked.compared_pairs == 6


def test_blocking_does_not_change_results():
    gadm, osm = build_graphs()
    rule = LinkageRule(
        comparisons=[Comparison("geom", spatial_relation("intersects"),
                                is_spatial=True)],
        threshold=1.0,
    )
    a = SilkEngine(blocking=True).generate_links(make_spec(gadm, osm, rule))
    b = SilkEngine(blocking=False).generate_links(make_spec(gadm, osm, rule))
    assert set(a) == set(b)


def test_min_aggregation_is_conjunctive():
    gadm, osm = build_graphs()
    rule = LinkageRule(
        comparisons=[
            Comparison("name", exact_match),
            Comparison("geom", spatial_relation("intersects"),
                       is_spatial=True),
        ],
        aggregation="min",
        threshold=1.0,
    )
    links = SilkEngine().generate_links(make_spec(gadm, osm, rule))
    # names differ in case → exact match 0 → min 0 → no links
    assert links == []


def test_missing_property_means_no_link():
    gadm, osm = build_graphs()
    gadm.remove(IRI(EX + "parc_monceau"), IRI(EX + "hasName"), None)
    rule = LinkageRule(
        comparisons=[Comparison("name", jaccard_tokens)], threshold=0.5
    )
    links = SilkEngine().generate_links(make_spec(gadm, osm, rule))
    assert {str(t.s) for t in links} == {EX + "bois_de_boulogne"}


def test_geosparql_link_predicate():
    """The 'geospatial extension': emit geo:sfIntersects links."""
    gadm, osm = build_graphs()
    rule = LinkageRule(
        comparisons=[Comparison("geom", spatial_relation("intersects"),
                                is_spatial=True)],
        threshold=1.0,
    )
    spec = make_spec(gadm, osm, rule)
    spec.link_predicate = IRI(
        "http://www.opengis.net/ont/geosparql#sfIntersects"
    )
    links = SilkEngine().generate_links(spec)
    assert all("sfIntersects" in str(t.p) for t in links)
    assert len(links) == 2
