"""Property-based tests for JedAI pipeline invariants."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.interlink import EntityProfile, JedaiPipeline

words = st.text(alphabet=string.ascii_lowercase, min_size=2, max_size=8)


@st.composite
def profile_collections(draw):
    n = draw(st.integers(min_value=0, max_value=25))
    profiles = []
    for i in range(n):
        n_attrs = draw(st.integers(min_value=1, max_value=3))
        attrs = {
            f"a{j}": " ".join(
                draw(st.lists(words, min_size=1, max_size=4))
            )
            for j in range(n_attrs)
        }
        profiles.append(EntityProfile(f"e{i}", attrs))
    return profiles


@given(profile_collections())
@settings(max_examples=40, deadline=None)
def test_clusters_are_disjoint(profiles):
    clusters = JedaiPipeline(match_threshold=0.4).resolve(profiles)
    seen = set()
    for cluster in clusters:
        assert len(cluster) > 1
        assert not (cluster & seen)
        seen |= cluster


@given(profile_collections())
@settings(max_examples=40, deadline=None)
def test_cluster_members_exist(profiles):
    ids = {p.entity_id for p in profiles}
    clusters = JedaiPipeline(match_threshold=0.4).resolve(profiles)
    for cluster in clusters:
        assert cluster <= ids


@given(profile_collections())
@settings(max_examples=30, deadline=None)
def test_stage_counts_monotone(profiles):
    pipeline = JedaiPipeline()
    pipeline.resolve(profiles)
    stats = pipeline.stats
    assert stats.initial_comparisons >= stats.after_purging
    assert stats.after_purging >= stats.after_filtering
    assert 0.0 <= stats.reduction_ratio <= 1.0


@given(profile_collections())
@settings(max_examples=20, deadline=None)
def test_deterministic(profiles):
    a = JedaiPipeline(match_threshold=0.4).resolve(profiles)
    b = JedaiPipeline(match_threshold=0.4).resolve(profiles)
    assert {frozenset(c) for c in a} == {frozenset(c) for c in b}


@given(profile_collections(), st.floats(min_value=0.1, max_value=0.9))
@settings(max_examples=25, deadline=None)
def test_higher_threshold_never_more_matches(profiles, threshold):
    low = JedaiPipeline(match_threshold=threshold).resolve(profiles)
    high = JedaiPipeline(match_threshold=min(1.0, threshold + 0.3)) \
        .resolve(profiles)
    low_members = set().union(*low) if low else set()
    high_members = set().union(*high) if high else set()
    assert high_members <= low_members
