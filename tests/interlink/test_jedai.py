"""JedAI entity-resolution pipeline tests."""

import pytest

from repro.interlink import EntityProfile, JedaiPipeline


def dirty_profiles():
    """Duplicated POIs with noisy attributes (dirty ER)."""
    return [
        EntityProfile("a1", {"name": "Bois de Boulogne",
                             "city": "Paris", "type": "park"}),
        EntityProfile("a2", {"name": "bois de boulogne park",
                             "city": "paris", "type": "park"}),
        EntityProfile("b1", {"name": "Parc Monceau",
                             "city": "Paris", "type": "park"}),
        EntityProfile("b2", {"name": "parc monceau",
                             "city": "paris"}),
        EntityProfile("c1", {"name": "Tour Eiffel",
                             "city": "Paris", "type": "landmark"}),
        EntityProfile("d1", {"name": "Brandenburger Tor",
                             "city": "Berlin", "type": "landmark"}),
    ]


def test_resolve_finds_duplicate_clusters():
    pipeline = JedaiPipeline(match_threshold=0.5)
    clusters = pipeline.resolve(dirty_profiles())
    as_sets = {frozenset(c) for c in clusters}
    assert frozenset({"a1", "a2"}) in as_sets
    assert frozenset({"b1", "b2"}) in as_sets
    # singletons (eiffel, brandenburg) are not clusters
    assert all(len(c) > 1 for c in clusters)


def test_token_blocking_blocks_share_tokens():
    pipeline = JedaiPipeline()
    blocks = pipeline.token_blocking(dirty_profiles())
    assert set(blocks["monceau"]) == {"b1", "b2"}
    assert "paris" in blocks
    # singleton tokens dropped
    assert "brandenburger" not in blocks


def test_purging_removes_stopword_blocks():
    profiles = dirty_profiles()
    # 'paris' block has 5 members — a stop-word block
    pipeline = JedaiPipeline(purge_factor=0.5)
    blocks = pipeline.token_blocking(profiles)
    purged = pipeline.block_purging(blocks, len(profiles))
    assert "paris" not in purged
    assert pipeline.stats.after_purging < pipeline.stats.initial_comparisons


def test_filtering_reduces_comparisons_further():
    profiles = dirty_profiles()
    pipeline = JedaiPipeline(purge_factor=0.9, filter_ratio=0.5)
    blocks = pipeline.token_blocking(profiles)
    blocks = pipeline.block_purging(blocks, len(profiles))
    filtered = pipeline.block_filtering(blocks)
    assert pipeline.stats.after_filtering <= pipeline.stats.after_purging
    assert filtered


@pytest.mark.parametrize("weighting", ["cbs", "ecbs", "jaccard"])
def test_metablocking_prunes(weighting):
    profiles = dirty_profiles()
    pipeline = JedaiPipeline(weighting=weighting)
    blocks = pipeline.token_blocking(profiles)
    blocks = pipeline.block_purging(blocks, len(profiles))
    blocks = pipeline.block_filtering(blocks)
    weighted = pipeline.meta_blocking(blocks)
    assert weighted
    assert pipeline.stats.after_metablocking <= \
        pipeline.stats.after_filtering
    # true duplicates survive pruning
    pairs = {p for p, __ in weighted}
    assert ("a1", "a2") in pairs


def test_reduction_ratio():
    pipeline = JedaiPipeline()
    pipeline.resolve(dirty_profiles())
    assert 0.0 <= pipeline.stats.reduction_ratio <= 1.0
    assert pipeline.stats.initial_comparisons > \
        pipeline.stats.after_metablocking


def test_multicore_equals_single_core():
    # A bigger synthetic workload so parallel blocks are non-trivial.
    profiles = []
    for i in range(60):
        base = f"entity {i % 20} common tokens alpha beta"
        profiles.append(EntityProfile(f"x{i}", {"desc": base}))
    single = JedaiPipeline(workers=1, purge_factor=0.9)
    multi = JedaiPipeline(workers=3, purge_factor=0.9)
    c1 = {frozenset(c) for c in single.resolve(profiles)}
    c2 = {frozenset(c) for c in multi.resolve(profiles)}
    assert c1 == c2
    assert single.stats.after_metablocking == multi.stats.after_metablocking


def test_duplicate_ids_rejected():
    with pytest.raises(ValueError):
        JedaiPipeline().resolve(
            [EntityProfile("x", {"a": "1"}), EntityProfile("x", {"a": "2"})]
        )


def test_invalid_parameters():
    with pytest.raises(ValueError):
        JedaiPipeline(weighting="tfidf")
    with pytest.raises(ValueError):
        JedaiPipeline(filter_ratio=0)


def test_clustering_transitivity():
    clusters = JedaiPipeline.clustering([("a", "b"), ("b", "c"), ("x", "y")])
    as_sets = {frozenset(c) for c in clusters}
    assert frozenset({"a", "b", "c"}) in as_sets
    assert frozenset({"x", "y"}) in as_sets


def test_empty_input():
    assert JedaiPipeline().resolve([]) == []
