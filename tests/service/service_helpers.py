"""Shared queries for the service suite (importable, not a fixture)."""

EX = "http://example.org/copernicus/"

NAMES_QUERY = (
    "PREFIX ex: <http://example.org/copernicus/>\n"
    "SELECT ?s ?name WHERE { ?s ex:name ?name } ORDER BY ?name"
)

REGION_QUERY = (
    "PREFIX ex: <http://example.org/copernicus/>\n"
    "SELECT ?s WHERE { ?s ex:region ?region } ORDER BY ?s"
)
