"""The seeded load harness: determinism at scale, arrival models, skew.

The acceptance criterion pinned here: the harness drives >= 1000
simulated clients across >= 4 tenants entirely on fake clocks, and two
runs with the same seed produce **byte-identical** workload reports.
"""

import json

import pytest

from repro.service import (
    WorkloadSpec,
    Workload,
    default_tenants,
    run_workload,
)
from repro.service.workload import _ZipfKeys

pytestmark = pytest.mark.tier1


def test_spec_validation():
    with pytest.raises(ValueError):
        WorkloadSpec(arrival="bursty")
    with pytest.raises(ValueError):
        WorkloadSpec(clients=0)


def test_default_tenant_mix_spans_design_space():
    tenants = default_tenants()
    assert len(tenants) >= 4
    assert len({t.priority for t in tenants}) >= 3  # real priority spread
    assert any(t.deadline_s is not None for t in tenants)
    assert any(t.queue_timeout_s is not None for t in tenants)


def test_zipf_skew_is_front_loaded():
    import random
    keys = _ZipfKeys(10, 1.2)
    rng = random.Random(0)
    draws = [keys.pick(rng) for _ in range(2000)]
    counts = [draws.count(k) for k in range(10)]
    assert counts[0] > counts[4] > counts[9]  # hot keys dominate
    assert counts[0] > len(draws) * 0.2


def test_thousand_clients_same_seed_byte_identical_reports():
    spec = WorkloadSpec(seed=1234, clients=1000, rate_rps=500.0)
    first = run_workload(spec)
    second = run_workload(spec)
    text1, text2 = first.to_json(), second.to_json()
    assert text1 == text2  # byte identical, whole report

    report = json.loads(text1)
    assert len(report["tenants"]) >= 4
    assert report["totals"]["submitted"] == 1000
    # every submission is accounted for exactly once
    totals = report["totals"]
    assert totals["completed"] + totals["shed"] \
        + totals["budget_exceeded"] + totals["failed"] == 1000
    # the report carries the headline numbers
    assert report["latency_s"]["p50"] > 0
    assert report["latency_s"]["p99"] >= report["latency_s"]["p50"]
    assert 0.0 < report["plan_cache"]["hit_rate"] <= 1.0


def test_different_seeds_differ():
    a = run_workload(WorkloadSpec(seed=1, clients=120, rate_rps=300.0))
    b = run_workload(WorkloadSpec(seed=2, clients=120, rate_rps=300.0))
    assert a.to_json() != b.to_json()


def test_open_loop_overload_sheds_but_never_loses_requests():
    # offered load far above capacity: shedding must be graceful
    spec = WorkloadSpec(seed=9, clients=400, rate_rps=5000.0,
                        max_queue_depth=32)
    report = run_workload(spec).report
    totals = report["totals"]
    assert totals["shed"] > 0
    assert totals["completed"] > 0
    assert totals["completed"] + totals["shed"] \
        + totals["budget_exceeded"] + totals["failed"] \
        == totals["submitted"] == 400
    # shed requests carry typed errors, never silent drops
    workload = Workload(spec)
    workload.run()
    for rec in workload.scheduler.records:
        if rec.outcome.startswith("shed"):
            assert rec.error is not None and "code" in rec.error


def test_closed_loop_clients_wait_for_responses():
    spec = WorkloadSpec(seed=5, clients=40, requests_per_client=3,
                        arrival="closed", think_time_s=0.05)
    workload = Workload(spec)
    report = workload.run()
    totals = report["totals"]
    assert totals["submitted"] == 120  # every client issued all requests
    # a client's requests never overlap: per-client records are ordered
    by_client = {}
    for rec in workload.scheduler.records:
        by_client.setdefault(rec.client, []).append(rec)
    for recs in by_client.values():
        assert len(recs) == 3
        for earlier, later in zip(recs, recs[1:]):
            if earlier.finish_s is not None:
                assert later.arrival_s >= earlier.finish_s


def test_closed_loop_same_seed_identical():
    spec = WorkloadSpec(seed=31, clients=120, requests_per_client=2,
                        arrival="closed", think_time_s=0.03)
    assert run_workload(spec).to_json() == run_workload(spec).to_json()


def test_report_has_no_wall_clock_contamination():
    report = json.loads(run_workload(
        WorkloadSpec(seed=3, clients=60, rate_rps=400.0)).to_json())
    # the report must be reproducible across machines and runs: virtual
    # times only, and every latency within the simulated horizon
    assert report["totals"]["virtual_duration_s"] < 60.0
    text = json.dumps(report)
    assert "wall" not in text and "timestamp" not in text
