"""Versioned JSON envelopes: v1/v2 contracts, term codec, typed errors."""

import pytest

from repro.rdf import BNode, IRI, Literal
from repro.service import (
    QueryService,
    ServiceAPI,
    TenantSpec,
    VirtualClock,
    build_default_graph,
    decode_term,
    encode_term,
)

from service_helpers import NAMES_QUERY

pytestmark = pytest.mark.tier1


@pytest.fixture
def api(service):
    service.register_template("names", NAMES_QUERY)
    return ServiceAPI(service)


# -- term codec --------------------------------------------------------------

def test_term_codec_round_trips():
    terms = [
        IRI("http://example.org/x"),
        BNode("b1"),
        Literal("plain"),
        Literal("bonjour", lang="fr"),
        Literal(42),
        Literal(3.5),
        Literal(True),
    ]
    for term in terms:
        assert decode_term(encode_term(term)) == term
    assert encode_term(None) is None


def test_decode_rejects_malformed_terms():
    from repro.service.errors import InvalidRequest
    for bad in ({}, {"type": "uri"}, {"type": "nope", "value": "x"},
                "not-a-dict", None):
        with pytest.raises(InvalidRequest):
            decode_term(bad)


# -- v1: the minimal contract ------------------------------------------------

def test_v1_query_envelope_is_minimal(api):
    out = api.handle({"op": "query", "tenant": "alpha",
                      "template": "names"})
    assert out["v"] == 1 and out["ok"] is True
    data = out["data"]
    assert data["kind"] == "SELECT"
    assert data["vars"] == ["s", "name"]
    assert len(data["rows"]) == 24
    assert data["rows"][0]["name"]["type"] == "literal"
    # v2-only keys must not leak into v1
    for key in ("failures", "plan_cache", "explain_id", "budget",
                "total_rows"):
        assert key not in data


def test_v1_errors_are_code_and_message_only(api):
    out = api.handle({"op": "query", "tenant": "nobody",
                      "template": "names"})
    assert out == {"v": 1, "ok": False,
                   "error": {"code": "unknown_tenant",
                             "message": out["error"]["message"]}}


# -- v2: the full contract ---------------------------------------------------

def test_v2_query_envelope_carries_service_metadata(api):
    out = api.handle({"v": 2, "op": "query", "tenant": "alpha",
                      "template": "names", "explain": True})
    data = out["data"]
    assert data["failures"] == {}
    assert data["plan_cache"] == {"hit": False}
    assert len(data["explain_id"]) == 12
    assert "Project" in data["explain"] or "Scan" in data["explain"]
    assert data["budget"]["rows"] >= 24
    again = api.handle({"v": 2, "op": "query", "tenant": "alpha",
                        "template": "names"})
    assert again["data"]["plan_cache"] == {"hit": True}
    assert again["data"]["explain_id"] == data["explain_id"]
    assert "explain" not in again["data"]  # only on request


def test_v2_error_payloads_are_typed(service, api):
    state = service.tenants.get("alpha")
    state.in_flight = state.spec.max_in_flight  # fill the quota
    out = api.handle({"v": 2, "op": "query", "tenant": "alpha",
                      "template": "names"})
    assert out["ok"] is False
    assert out["error"]["code"] == "quota_exceeded"
    assert out["error"]["tenant"] == "alpha"
    assert out["error"]["retry_after_s"] > 0
    state.in_flight = 0


def test_v2_params_bind_through_the_envelope(api):
    api.service.register_template(
        "by_region",
        "PREFIX ex: <http://example.org/copernicus/>\n"
        "SELECT ?s WHERE { ?s ex:region ?region } ORDER BY ?s")
    out = api.handle({
        "v": 2, "op": "query", "tenant": "alpha", "template": "by_region",
        "params": {"region": {
            "type": "uri",
            "value": "http://example.org/copernicus/region00"}},
    })
    assert out["ok"] is True
    assert len(out["data"]["rows"]) == 6


# -- pagination through the envelope -----------------------------------------

def test_page_op_walks_the_cursor(api):
    first = api.handle({"v": 2, "op": "query", "tenant": "alpha",
                        "template": "names", "page_size": 10})
    assert first["data"]["total_rows"] == 24
    rows = list(first["data"]["rows"])
    token = first["data"]["next_page_token"]
    while token:
        page = api.handle({"v": 2, "op": "page", "tenant": "alpha",
                           "page_token": token})
        assert page["ok"] is True
        rows.extend(page["data"]["rows"])
        token = page["data"].get("next_page_token")
    assert len(rows) == 24


def test_page_op_requires_token(api):
    out = api.handle({"v": 2, "op": "page", "tenant": "alpha"})
    assert out["ok"] is False
    assert out["error"]["code"] == "invalid_request"


# -- invalidate / metrics ops ------------------------------------------------

def test_invalidate_op(api):
    api.handle({"op": "query", "tenant": "alpha", "template": "names"})
    out = api.handle({"v": 2, "op": "invalidate", "template": "names"})
    assert out == {"v": 2, "ok": True, "data": {"invalidated": 1}}
    # and the next query re-plans
    after = api.handle({"v": 2, "op": "query", "tenant": "alpha",
                        "template": "names"})
    assert after["data"]["plan_cache"] == {"hit": False}


def test_v2_diagnostics_expose_plan_cache_health(api):
    first = api.handle({"v": 2, "op": "query", "tenant": "alpha",
                        "template": "names"})
    diag = first["data"]["diagnostics"]
    assert set(diag) == {"plan_cache_hit_rate", "stats_invalidations",
                         "stats_version"}
    assert diag["plan_cache_hit_rate"] == 0.0
    assert diag["stats_invalidations"] == 0
    assert diag["stats_version"] is None  # service built without a store
    again = api.handle({"v": 2, "op": "query", "tenant": "alpha",
                        "template": "names"})
    assert again["data"]["diagnostics"]["plan_cache_hit_rate"] == 0.5
    # v1 clients never see the diagnostics block
    v1 = api.handle({"op": "query", "tenant": "alpha", "template": "names"})
    assert "diagnostics" not in v1["data"]


def test_metrics_op_versions(api):
    api.handle({"op": "query", "tenant": "alpha", "template": "names"})
    v1 = api.handle({"op": "metrics"})
    assert set(v1["data"]) == {"tenants", "plan_cache"}
    assert v1["data"]["tenants"]["alpha"]["completed"] == 1
    v2 = api.handle({"v": 2, "op": "metrics"})
    assert v2["data"]["governance"]["completed"] == 1
    assert len(v2["data"]["governance"]["headroom_histogram"]) == 10


# -- version / op negotiation ------------------------------------------------

def test_unknown_version_rejected(api):
    out = api.handle({"v": 99, "op": "query"})
    assert out["ok"] is False and out["error"]["code"] == "invalid_request"
    assert "99" in out["error"]["message"]


def test_unknown_op_rejected(api):
    out = api.handle({"v": 2, "op": "destroy"})
    assert out["ok"] is False and out["error"]["code"] == "invalid_request"


def test_non_dict_request_rejected(api):
    out = api.handle("SELECT * WHERE { ?s ?p ?o }")
    assert out["ok"] is False and out["error"]["code"] == "invalid_request"


def test_handle_never_raises(api):
    # even an internal failure renders as an envelope
    out = api.handle({"v": 2, "op": "query", "tenant": "alpha",
                      "query": "THIS IS NOT SPARQL"})
    assert out["ok"] is False
    assert "code" in out["error"] and "message" in out["error"]
