"""RequestScheduler: virtual-time multiplexing, isolation, deadlines.

The headline acceptance test here is quota isolation: a greedy tenant
flooding the scheduler cannot starve a modest tenant — the modest
tenant's requests all complete, because dispatch skips tenants at
their ``max_in_flight`` cap and round-robins among the eligible.
"""

import pytest

from repro.service import (
    CostModel,
    QueryService,
    RequestScheduler,
    TenantSpec,
    VirtualClock,
    build_default_graph,
)

from service_helpers import NAMES_QUERY

pytestmark = pytest.mark.tier1

COUNT_QUERY = (
    "PREFIX ex: <http://example.org/copernicus/>\n"
    "SELECT (COUNT(?s) AS ?n) WHERE { ?s a ex:Station }"
)


def make_stack(tenants, max_concurrent=4, max_queue_depth=1000,
               cost=None, stations=12):
    graph = build_default_graph(stations=stations, regions=3)
    clock = VirtualClock()
    service = QueryService(graph, tenants=tenants,
                           max_concurrent=max_concurrent, clock=clock)
    scheduler = RequestScheduler(service, clock, cost=cost,
                                 max_queue_depth=max_queue_depth)
    return service, scheduler, clock


def outcomes(records, tenant=None):
    return [r.outcome for r in records
            if tenant is None or r.tenant == tenant]


# -- basic mechanics ---------------------------------------------------------

def test_single_request_completes_at_simulated_time():
    service, scheduler, clock = make_stack([TenantSpec("a")])
    scheduler.submit(1.0, "a", COUNT_QUERY)
    records = scheduler.run()
    assert len(records) == 1
    rec = records[0]
    assert rec.outcome == "completed"
    assert rec.start_s == 1.0
    assert rec.finish_s > rec.start_s  # cost model charged something
    assert rec.latency_s == pytest.approx(rec.finish_s - 1.0)
    assert clock.now == rec.finish_s


def test_two_runs_same_submissions_identical_records():
    def run_once():
        service, scheduler, _ = make_stack(
            [TenantSpec("a"), TenantSpec("b")])
        for i in range(20):
            scheduler.submit(0.01 * i, "a" if i % 2 else "b", COUNT_QUERY)
        return [r.as_dict() for r in scheduler.run()]

    assert run_once() == run_once()


def test_cannot_submit_into_the_past():
    service, scheduler, clock = make_stack([TenantSpec("a")])
    clock.advance_to(5.0)
    with pytest.raises(ValueError):
        scheduler.submit(1.0, "a", COUNT_QUERY)


def test_scheduler_requires_shared_clock():
    graph = build_default_graph(stations=6, regions=2)
    service = QueryService(graph, tenants=[TenantSpec("a")],
                           clock=VirtualClock())
    with pytest.raises(ValueError):
        RequestScheduler(service, VirtualClock())


# -- quota isolation: the greedy tenant cannot starve others ----------------

def test_greedy_tenant_cannot_starve_modest_tenant():
    greedy = TenantSpec("greedy", priority=0, max_in_flight=2,
                        max_queued=1000)
    modest = TenantSpec("modest", priority=0, max_in_flight=2,
                        max_queued=100)
    service, scheduler, _ = make_stack([greedy, modest], max_concurrent=4)
    # greedy floods: 200 requests at t=0; modest trickles 10
    for _ in range(200):
        scheduler.submit(0.0, "greedy", COUNT_QUERY)
    for i in range(10):
        scheduler.submit(0.0, "modest", COUNT_QUERY)
    records = scheduler.run()

    modest_outcomes = outcomes(records, "modest")
    assert modest_outcomes.count("completed") == 10  # nothing starved
    # greedy never held more than its quota, so the pool always had
    # room for modest: both made continuous progress
    greedy_state = service.tenants.get("greedy")
    assert greedy_state.completed == 200
    # and modest did not have to wait for greedy's whole backlog:
    # its last completion lands well before greedy's
    modest_last = max(r.finish_s for r in records
                      if r.tenant == "modest")
    greedy_last = max(r.finish_s for r in records
                      if r.tenant == "greedy")
    assert modest_last < greedy_last / 2


def test_equal_priority_tenants_round_robin():
    a = TenantSpec("a", max_in_flight=1)
    b = TenantSpec("b", max_in_flight=1)
    service, scheduler, _ = make_stack([a, b], max_concurrent=1)
    for _ in range(3):
        scheduler.submit(0.0, "a", COUNT_QUERY)
        scheduler.submit(0.0, "b", COUNT_QUERY)
    records = scheduler.run()
    started = [r.tenant for r in sorted(records, key=lambda r: r.start_s)]
    assert started == ["a", "b", "a", "b", "a", "b"]


def test_higher_priority_dispatches_first():
    low = TenantSpec("low", priority=0, max_in_flight=4)
    high = TenantSpec("high", priority=5, max_in_flight=4)
    service, scheduler, _ = make_stack([low, high], max_concurrent=1)
    # same arrival instant; low submitted first
    for _ in range(3):
        scheduler.submit(0.0, "low", COUNT_QUERY)
    for _ in range(3):
        scheduler.submit(0.0, "high", COUNT_QUERY)
    records = scheduler.run()
    by_start = sorted(records, key=lambda r: (r.start_s, r.seq))
    # the very first arrival takes the idle slot before any high
    # arrives; every contended dispatch after that serves high first
    assert [r.tenant for r in by_start] == \
        ["low", "high", "high", "high", "low", "low"]


# -- shedding: typed, bounded queues ----------------------------------------

def test_tenant_queue_overflow_sheds_quota_typed():
    spec = TenantSpec("a", max_in_flight=1, max_queued=2)
    service, scheduler, _ = make_stack([spec], max_concurrent=1)
    for _ in range(6):
        scheduler.submit(0.0, "a", COUNT_QUERY)
    records = scheduler.run()
    outs = outcomes(records)
    # 1 dispatched immediately, 2 queued, 3 shed at arrival
    assert outs.count("shed_quota") == 3
    assert outs.count("completed") == 3
    shed = [r for r in records if r.outcome == "shed_quota"]
    assert all(r.error["code"] == "quota_exceeded" for r in shed)
    assert all(r.error["retry_after_s"] is not None for r in shed)
    assert service.stats.shed == 3


def test_global_queue_overflow_sheds_overloaded_typed():
    specs = [TenantSpec("a", max_in_flight=1, max_queued=1000)]
    service, scheduler, _ = make_stack(specs, max_concurrent=1,
                                       max_queue_depth=3)
    for _ in range(8):
        scheduler.submit(0.0, "a", COUNT_QUERY)
    records = scheduler.run()
    outs = outcomes(records)
    # 1 running + 3 queued; 4 shed by the global bound...
    assert outs.count("shed_overload") == 4
    assert outs.count("completed") == 4
    shed = [r for r in records if r.outcome == "shed_overload"]
    assert all(r.error["code"] == "overloaded" for r in shed)


def test_queue_timeout_sheds_while_waiting():
    spec = TenantSpec("a", max_in_flight=1, max_queued=100,
                      queue_timeout_s=0.001)
    # make each request take ~10ms simulated so queued ones expire
    cost = CostModel(base_s=0.01, per_triple_s=0.0, per_row_s=0.0,
                     plan_s=0.0)
    service, scheduler, _ = make_stack([spec], max_concurrent=1, cost=cost)
    for _ in range(4):
        scheduler.submit(0.0, "a", COUNT_QUERY)
    records = scheduler.run()
    outs = outcomes(records)
    assert outs.count("completed") == 1
    assert outs.count("shed_timeout") == 3
    assert service.tenants.get("a").shed_timeout == 3


# -- deadlines in virtual time ----------------------------------------------

def test_simulated_deadline_truncates_completion():
    spec = TenantSpec("a", deadline_s=0.005)
    cost = CostModel(base_s=0.05, per_triple_s=0.0, per_row_s=0.0,
                     plan_s=0.0)  # service time 10x the deadline
    service, scheduler, _ = make_stack([spec], cost=cost)
    scheduler.submit(0.0, "a", COUNT_QUERY)
    records = scheduler.run()
    rec = records[0]
    assert rec.outcome == "deadline_exceeded"
    assert rec.error["code"] == "deadline_exceeded"
    # finished when the deadline hit, not when the work would have
    assert rec.finish_s == pytest.approx(0.005)
    assert service.stats.deadline_exceeded == 1


def test_deadline_expired_in_queue_is_shed_not_run():
    spec = TenantSpec("a", max_in_flight=1, max_queued=100,
                      deadline_s=0.004)
    cost = CostModel(base_s=0.003, per_triple_s=0.0, per_row_s=0.0,
                     plan_s=0.0)
    service, scheduler, _ = make_stack([spec], max_concurrent=1, cost=cost)
    for _ in range(3):
        scheduler.submit(0.0, "a", COUNT_QUERY)
    records = scheduler.run()
    outs = outcomes(records)
    assert outs.count("completed") == 1
    # the 2nd and 3rd cannot finish inside their deadlines: each is
    # either shed while queued or truncated at its deadline — never
    # silently completed late
    late = outs.count("shed_timeout") + outs.count("deadline_exceeded")
    assert late == 2


# -- completions free slots for later arrivals -------------------------------

def test_completion_frees_slot_for_simultaneous_arrival():
    spec = TenantSpec("a", max_in_flight=1, max_queued=10)
    cost = CostModel(base_s=0.01, per_triple_s=0.0, per_row_s=0.0,
                     plan_s=0.0)
    service, scheduler, _ = make_stack([spec], max_concurrent=1, cost=cost)
    scheduler.submit(0.0, "a", COUNT_QUERY)
    # arrives exactly when the first completes: must not be queued-shed
    scheduler.submit(0.01, "a", COUNT_QUERY)
    records = scheduler.run()
    assert outcomes(records) == ["completed", "completed"]
    second = [r for r in records if r.arrival_s == 0.01][0]
    assert second.start_s == pytest.approx(0.01)  # no extra wait


def test_plan_cache_warms_across_scheduled_requests():
    service, scheduler, _ = make_stack([TenantSpec("a")])
    for i in range(5):
        scheduler.submit(0.001 * i, "a", COUNT_QUERY)
    records = scheduler.run()
    hits = [r.plan_cache_hit for r in
            sorted(records, key=lambda r: r.start_s)]
    assert hits[0] is False
    assert all(hits[1:])
    # warm requests are strictly faster under the cost model
    by_start = sorted(records, key=lambda r: r.start_s)
    cold = by_start[0].finish_s - by_start[0].start_s
    warm = by_start[-1].finish_s - by_start[-1].start_s
    assert warm < cold
