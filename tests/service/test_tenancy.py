"""TenantSpec/TenantState/TenantRegistry: validation and accounting."""

import pytest

from repro.service import (
    TenantRegistry,
    TenantSpec,
    UnknownTenant,
    VirtualClock,
)

pytestmark = pytest.mark.tier1


def test_spec_validation():
    with pytest.raises(ValueError):
        TenantSpec("")
    with pytest.raises(ValueError):
        TenantSpec("a", max_in_flight=0)
    with pytest.raises(ValueError):
        TenantSpec("a", max_queued=-1)


def test_spec_is_frozen():
    spec = TenantSpec("a")
    with pytest.raises(Exception):
        spec.priority = 9


def test_make_budget_stamps_limits_and_clock():
    clock = VirtualClock()
    spec = TenantSpec("a", deadline_s=2.0, max_rows=100, max_triples=500)
    budget = spec.make_budget(clock)
    assert budget.deadline_s == 2.0
    assert budget.max_rows == 100
    assert budget.max_triples == 500
    assert not budget.deadline_expired
    clock.advance_to(3.0)
    assert budget.deadline_expired  # the budget reads the shared clock


def test_registry_order_and_lookup():
    registry = TenantRegistry([TenantSpec("x"), TenantSpec("y")])
    registry.register(TenantSpec("z"))
    assert registry.names() == ["x", "y", "z"]
    assert [s.spec.name for s in registry] == ["x", "y", "z"]
    assert "y" in registry and "q" not in registry
    assert len(registry) == 3
    with pytest.raises(UnknownTenant):
        registry.get("q")
    with pytest.raises(ValueError):
        registry.register(TenantSpec("x"))  # duplicate name


def test_state_shed_rollup_and_dict():
    state = TenantRegistry([TenantSpec("a", max_in_flight=2)]).get("a")
    assert not state.at_capacity
    state.in_flight = 2
    assert state.at_capacity
    state.shed_quota, state.shed_overload, state.shed_timeout = 3, 2, 1
    assert state.shed == 6
    d = state.as_dict()
    assert d["shed_quota"] == 3 and d["shed_timeout"] == 1
    assert set(d) == {"submitted", "completed", "shed_quota",
                      "shed_overload", "shed_timeout",
                      "budget_exceeded", "failed"}
