"""QueryService direct path: admission layers, pagination, plan cache.

The acceptance criteria pinned here:

- pagination returns *exactly* the rows a direct evaluator call
  returns (same rows, same order, no gaps, no duplicates);
- plan-cache hits provably skip re-planning (trace spans);
- tenant quota and global pool shed with typed errors, in that order;
- cursors are tenant-isolated and expire by TTL.
"""

import pytest

from repro.governance import Overloaded, RowLimitExceeded
from repro.observability import Tracer
from repro.service import (
    QueryService,
    QuotaExceeded,
    TenantSpec,
    UnknownCursor,
    UnknownTenant,
    VirtualClock,
    build_default_graph,
)
from repro.service.errors import InvalidRequest

from service_helpers import NAMES_QUERY

pytestmark = pytest.mark.tier1


# -- request validation -----------------------------------------------------

def test_requires_exactly_one_of_query_and_template(service):
    with pytest.raises(InvalidRequest):
        service.execute("alpha")
    service.register_template("names", NAMES_QUERY)
    with pytest.raises(InvalidRequest):
        service.execute("alpha", NAMES_QUERY, template="names")


def test_unknown_tenant_is_typed(service):
    with pytest.raises(UnknownTenant):
        service.execute("nobody", NAMES_QUERY)


# -- pagination == direct evaluation ---------------------------------------

def test_pages_concatenate_to_exactly_the_direct_result(graph, service):
    direct = graph.query(NAMES_QUERY)
    direct_rows = list(direct.rows)
    assert len(direct_rows) == 24

    response = service.execute("alpha", NAMES_QUERY, page_size=7)
    assert response.total_rows == len(direct_rows)
    collected = list(response.rows)
    assert len(collected) == 7  # first page respects page_size
    token = response.next_page_token
    pages = 1
    while token is not None:
        page = service.fetch_page("alpha", token)
        collected.extend(page.rows)
        token = page.next_page_token
        pages += 1
    assert pages == 4  # 7 + 7 + 7 + 3
    assert collected == direct_rows  # same rows, same order, exactly


def test_streaming_yields_the_same_rows(graph, service):
    direct_rows = list(graph.query(NAMES_QUERY).rows)
    streamed = []
    for page in service.stream("alpha", NAMES_QUERY, page_size=5):
        streamed.extend(page.rows)
    assert streamed == direct_rows


def test_short_result_fits_one_page_no_cursor(service):
    response = service.execute("alpha", NAMES_QUERY, page_size=100)
    assert response.next_page_token is None
    assert len(response.rows) == 24
    assert len(service._cursors) == 0


def test_bad_page_size_rejected(service):
    with pytest.raises(InvalidRequest):
        service.execute("alpha", NAMES_QUERY, page_size=0)


# -- cursors: isolation and expiry ------------------------------------------

def test_cursor_is_invisible_to_other_tenants(service):
    response = service.execute("alpha", NAMES_QUERY, page_size=5)
    token = response.next_page_token
    with pytest.raises(UnknownCursor):
        service.fetch_page("beta", token)
    # the owner can still read it — the cross-tenant probe leaked nothing
    page = service.fetch_page("alpha", token)
    assert len(page.rows) == 5


def test_cursor_expires_by_ttl_on_fake_clock(graph, clock):
    service = QueryService(graph, tenants=[TenantSpec("a")],
                           clock=clock, cursor_ttl_s=10.0)
    token = service.execute("a", NAMES_QUERY, page_size=5).next_page_token
    clock.advance_to(clock.now + 11.0)
    with pytest.raises(UnknownCursor):
        service.fetch_page("a", token)


def test_drained_cursor_is_freed_and_token_dies(service):
    token = service.execute("alpha", NAMES_QUERY,
                            page_size=12).next_page_token
    page = service.fetch_page("alpha", token)
    assert page.next_page_token is None
    assert len(service._cursors) == 0
    with pytest.raises(UnknownCursor):
        service.fetch_page("alpha", token)


def test_malformed_page_tokens_rejected(service):
    for bad in ("", "no-colons", "c1:x:5", "c1:0:0", "c1:0"):
        with pytest.raises(InvalidRequest):
            service.fetch_page("alpha", bad)


# -- plan cache: hits skip re-planning (proved by trace spans) --------------

def test_plan_cache_hit_skips_replanning_via_trace(graph, clock):
    tracer = Tracer(clock=clock)
    service = QueryService(graph, tenants=[TenantSpec("a")],
                           clock=clock, tracer=tracer)
    first = service.execute("a", NAMES_QUERY)
    assert first.plan_cache_hit is False
    plans_after_miss = [s for s in tracer.spans if s.name == "service.plan"]
    assert len(plans_after_miss) == 1  # the miss planned, under a span

    second = service.execute("a", NAMES_QUERY)
    assert second.plan_cache_hit is True
    plans_after_hit = [s for s in tracer.spans if s.name == "service.plan"]
    assert len(plans_after_hit) == 1  # the hit did NOT re-plan
    assert first.rows == second.rows

    # explicit invalidation forces one re-plan
    assert service.invalidate_template(NAMES_QUERY) == 1
    third = service.execute("a", NAMES_QUERY)
    assert third.plan_cache_hit is False
    assert len([s for s in tracer.spans
                if s.name == "service.plan"]) == 2


def test_stats_feedback_recompiles_cached_plans_end_to_end(graph, clock):
    """Executions feed the store; a material bump re-plans on the next
    lookup, and results stay identical across the re-plan."""
    from repro.sparql import StatsStore

    store = StatsStore()
    service = QueryService(graph, tenants=[TenantSpec("a")],
                           clock=clock, stats_store=store)
    first = service.execute("a", NAMES_QUERY)
    assert first.plan_cache_hit is False
    assert len(store) > 0  # the execution's profile was ingested

    # the first run's feedback is material (all-new signatures), so the
    # cached plan — compiled before any feedback existed — is stale
    second = service.execute("a", NAMES_QUERY)
    assert second.plan_cache_hit is False
    assert service.plan_cache.stats_invalidations == 1

    # the re-compiled plan carries the current version, and repeating
    # the same workload is EWMA-steady: no bump, so hits resume
    third = service.execute("a", NAMES_QUERY)
    assert third.plan_cache_hit is True
    assert first.rows == second.rows == third.rows


def test_execute_spans_carry_cache_attribute(graph, clock):
    tracer = Tracer(clock=clock)
    service = QueryService(graph, tenants=[TenantSpec("a")],
                           clock=clock, tracer=tracer)
    service.execute("a", NAMES_QUERY)
    service.execute("a", NAMES_QUERY)
    caches = [s.attributes["cache"] for s in tracer.spans
              if s.name == "service.execute"]
    assert caches == ["miss", "hit"]


def test_template_registration_and_params(service):
    service.register_template(
        "by_region",
        "PREFIX ex: <http://example.org/copernicus/>\n"
        "SELECT ?s WHERE { ?s ex:region ?region } ORDER BY ?s")
    from repro.rdf import IRI
    r0 = service.execute(
        "alpha", template="by_region",
        params={"region": IRI("http://example.org/copernicus/region00")})
    r1 = service.execute(
        "alpha", template="by_region",
        params={"region": IRI("http://example.org/copernicus/region01")})
    # one cached plan served both parameterizations
    assert r0.plan_cache_hit is False and r1.plan_cache_hit is True
    assert len(r0.rows) == 6 and len(r1.rows) == 6
    assert r0.rows != r1.rows  # parameters actually bound


# -- the two admission layers, typed ----------------------------------------

def _occupy(service, tenant, n):
    """Hold n in-flight requests for a tenant (simulating running work)."""
    state = service.tenants.get(tenant)
    slots = [service.controller.admit() for _ in range(n)]
    state.in_flight += n
    return state, slots


def test_tenant_quota_sheds_before_global_pool(service):
    state, slots = _occupy(service, "alpha", 2)  # alpha at max_in_flight
    with pytest.raises(QuotaExceeded) as err:
        service.execute("alpha", NAMES_QUERY)
    assert err.value.tenant == "alpha"
    assert err.value.retry_after_s is not None
    assert state.shed_quota == 1
    # pool still has room: beta is unaffected by alpha's quota
    assert service.execute("beta", NAMES_QUERY).rows


def test_global_pool_sheds_with_overloaded(graph, clock):
    service = QueryService(
        graph, tenants=[TenantSpec("a", max_in_flight=8)],
        max_concurrent=2, clock=clock)
    _, slots = _occupy(service, "a", 2)
    state = service.tenants.get("a")
    state.in_flight = 0  # quota free; only the pool is exhausted
    with pytest.raises(Overloaded) as err:
        service.execute("a", NAMES_QUERY)
    assert err.value.retry_after_s == service.controller.retry_after_hint_s
    assert state.shed_overload == 1


def test_budget_violation_is_counted_and_typed(graph, clock):
    service = QueryService(
        graph, tenants=[TenantSpec("a", max_rows=3)], clock=clock)
    with pytest.raises(RowLimitExceeded):
        service.execute("a", NAMES_QUERY)
    state = service.tenants.get("a")
    assert state.budget_exceeded == 1
    assert service.stats.row_limit_exceeded == 1
    assert state.in_flight == 0  # slot + quota released on failure
    assert service.controller.active == 0
