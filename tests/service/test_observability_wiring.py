"""The observability funnel end to end: ServiceAPI.handle() -> query
log records with trace ids, SLO blocks in envelopes and reports,
explicit per-outcome zero rows, and same-seed byte identity with the
full stack attached."""

import json

import pytest

from repro.observability import FlightRecorder, QueryLog, SLOEngine, \
    SLOSpec, SLOWindows
from repro.service import (
    QueryService,
    ServiceAPI,
    TenantSpec,
    VirtualClock,
    WorkloadSpec,
    build_default_graph,
    run_workload,
)
from repro.service.service import OUTCOMES

from service_helpers import NAMES_QUERY

pytestmark = pytest.mark.tier1

W = SLOWindows(fast_s=0.5, mid_s=5.0, slow_s=50.0)


@pytest.fixture
def stack(graph, clock):
    slo = SLOEngine(clock=clock)
    slo.register(SLOSpec(name="alpha-availability", scope="tenant:alpha",
                         objective="availability", target=0.9, windows=W))
    slo.register(SLOSpec(name="alpha-latency", scope="tenant:alpha",
                         objective="latency", target=0.5,
                         threshold_s=0.0001, windows=W))
    query_log = QueryLog(seed=5, sample_ratio=1.0)
    recorder = FlightRecorder(clock=clock, capacity=64)
    service = QueryService(
        graph,
        tenants=[TenantSpec("alpha", priority=1, max_in_flight=2),
                 TenantSpec("idle", priority=0, max_in_flight=2,
                            max_rows=1)],
        max_concurrent=4, clock=clock,
        slo=slo, query_log=query_log, recorder=recorder)
    service.register_template("names", NAMES_QUERY)
    return service


# -- the handle() funnel ----------------------------------------------------

def test_handle_emits_query_log_record_with_trace_id(stack):
    api = ServiceAPI(stack)
    envelope = api.handle({"v": 2, "op": "query", "tenant": "alpha",
                           "template": "names"})
    assert envelope["ok"] is True
    records = stack.query_log.records()
    assert len(records) == 1
    record = records[0]
    assert record.tenant == "alpha"
    assert record.outcome == "completed"
    assert record.trace_id == "t00000001"
    # the envelope carries the same id: the log <-> wire join key
    assert envelope["data"]["trace_id"] == "t00000001"
    from repro.service.service import template_id
    assert record.template == template_id(NAMES_QUERY)
    assert record.plan_signature is not None
    assert record.actual_rows == 24
    assert record.est_rows is not None
    # trace ids are sequential per service
    api.handle({"v": 2, "op": "query", "tenant": "alpha",
                "template": "names"})
    assert stack.query_log.records()[1].trace_id == "t00000002"


def test_error_outcomes_reach_the_log_with_typed_codes(stack, clock):
    api = ServiceAPI(stack)
    envelope = api.handle({"v": 2, "op": "query", "tenant": "idle",
                           "template": "names"})  # max_rows=1 -> killed
    assert envelope["ok"] is False
    assert envelope["error"]["code"] == "row_limit_exceeded"
    records = stack.query_log.grep(tenant="idle")
    assert len(records) == 1
    assert records[0].outcome == "budget_exceeded"
    assert records[0].error_code == "row_limit_exceeded"
    assert records[0].sampled == "error"


def test_latency_slo_breach_marks_records(stack, clock):
    api = ServiceAPI(stack)
    # any nonzero virtual latency breaches the 0.1 ms threshold; the
    # cost model advances the clock during execution
    api.handle({"v": 2, "op": "query", "tenant": "alpha",
                "template": "names"})
    record = stack.query_log.records()[0]
    assert record.slo_breach is (record.latency_s is not None
                                 and record.latency_s > 0.0001)


def test_slo_observes_both_tenant_and_service_scopes(stack):
    api = ServiceAPI(stack)
    api.handle({"v": 2, "op": "query", "tenant": "alpha",
                "template": "names"})
    block = stack.slo.report()["specs"]["alpha-availability"]
    assert block["events"]["good"] + block["events"]["bad"] == 1


def test_recorder_sees_requests_and_metric_deltas(stack):
    api = ServiceAPI(stack)
    api.handle({"v": 2, "op": "query", "tenant": "alpha",
                "template": "names"})
    kinds = [e["kind"] for e in stack.recorder.entries()]
    assert "request" in kinds
    assert "metric_delta" in kinds


# -- envelope surfacing -----------------------------------------------------

def test_v2_diagnostics_carry_slo_block_only_when_attached(stack, graph,
                                                           clock):
    api = ServiceAPI(stack)
    envelope = api.handle({"v": 2, "op": "query", "tenant": "alpha",
                           "template": "names"})
    assert envelope["data"]["diagnostics"]["slo"] == {"active_alerts": []}
    bare = QueryService(graph, tenants=[TenantSpec("alpha", priority=1)],
                        clock=VirtualClock())
    bare.register_template("names", NAMES_QUERY)
    envelope = ServiceAPI(bare).handle(
        {"v": 2, "op": "query", "tenant": "alpha", "template": "names"})
    assert "slo" not in envelope["data"]["diagnostics"]
    assert "trace_id" in envelope["data"]  # ids flow regardless


def test_metrics_op_carries_slo_and_qlog_summaries(stack):
    api = ServiceAPI(stack)
    api.handle({"v": 2, "op": "query", "tenant": "alpha",
                "template": "names"})
    data = api.handle({"v": 2, "op": "metrics"})["data"]
    assert data["slo"]["specs"] == 2
    assert data["query_log"]["offered"] == 1
    # v1 clients keep the lean contract
    v1 = api.handle({"v": 1, "op": "metrics"})["data"]
    assert "slo" not in v1 and "query_log" not in v1


# -- workload report --------------------------------------------------------

def test_workload_report_has_observability_blocks():
    spec = WorkloadSpec(seed=21, clients=150, rate_rps=400.0)
    report = json.loads(run_workload(spec).to_json())
    assert report["query_log"]["offered"] == report["totals"]["submitted"]
    assert report["incidents"]["capacity"] == spec.recorder_capacity
    specs = report["slo"]["specs"]
    # 2 per tenant (availability + latency p95) + 2 service-wide
    assert len(specs) == 2 * len(report["tenants"]) + 2
    assert "service-shed-rate" in specs and "service-staleness" in specs


def test_every_tenant_reports_all_six_outcome_rows():
    # seed/scale chosen small so some tenants complete nothing — the
    # schema must not shrink for them (the satellite regression)
    spec = WorkloadSpec(seed=1, clients=8, rate_rps=50.0)
    report = json.loads(run_workload(spec).to_json())
    assert any(block["completed"] == 0
               for block in report["tenants"].values()), \
        "fixture drift: pick a seed where some tenant stays idle"
    for name, block in report["tenants"].items():
        assert sorted(block["outcomes"]) == sorted(OUTCOMES), name
        assert block["outcomes"]["completed"] == block["completed"], name


def test_observability_off_removes_blocks_and_overhead_surface():
    spec = WorkloadSpec(seed=21, clients=50, rate_rps=400.0,
                        observability=False)
    report = json.loads(run_workload(spec).to_json())
    assert "slo" not in report
    assert "query_log" not in report
    assert "incidents" not in report


def test_same_seed_byte_identical_with_full_stack():
    spec = WorkloadSpec(seed=77, clients=300, rate_rps=600.0,
                        federated=True)
    a, b = run_workload(spec), run_workload(spec)
    assert a.to_json() == b.to_json()
    # and the sampled record sets themselves are identical
    assert a.workload.service.query_log.dump_json() == \
        b.workload.service.query_log.dump_json()
    assert a.workload.recorder.incidents_sha256() == \
        b.workload.recorder.incidents_sha256()
