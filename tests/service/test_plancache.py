"""PlanCache: LRU behaviour, explicit invalidation, counters."""

import pytest

from repro.observability import MetricsRegistry
from repro.service import PlanCache, build_default_graph
from repro.sparql import StatsStore
from repro.sparql.prepared import prepare

from service_helpers import NAMES_QUERY

pytestmark = pytest.mark.tier1


@pytest.fixture
def graph():
    return build_default_graph(stations=6, regions=2)


def _builder(graph):
    return lambda text: prepare(graph, text)


def _q(n):
    return (
        "PREFIX ex: <http://example.org/copernicus/>\n"
        f"SELECT ?s WHERE {{ ?s ex:name ?name }} LIMIT {n}"
    )


def test_miss_then_hit_returns_same_entry(graph):
    cache = PlanCache(4)
    e1, hit1 = cache.get_or_prepare(NAMES_QUERY, _builder(graph))
    e2, hit2 = cache.get_or_prepare(NAMES_QUERY, _builder(graph))
    assert (hit1, hit2) == (False, True)
    assert e1 is e2
    assert cache.hits == 1 and cache.misses == 1
    assert cache.hit_rate() == 0.5


def test_lru_evicts_least_recently_used(graph):
    cache = PlanCache(2)
    cache.get_or_prepare(_q(1), _builder(graph))
    cache.get_or_prepare(_q(2), _builder(graph))
    cache.get_or_prepare(_q(1), _builder(graph))  # touch 1: 2 becomes LRU
    cache.get_or_prepare(_q(3), _builder(graph))  # evicts 2
    assert cache.evictions == 1
    assert cache.peek(_q(1)) is not None
    assert cache.peek(_q(2)) is None
    assert cache.peek(_q(3)) is not None


def test_builder_runs_only_on_miss(graph):
    calls = []

    def builder(text):
        calls.append(text)
        return prepare(graph, text)

    cache = PlanCache(4)
    for _ in range(5):
        cache.get_or_prepare(NAMES_QUERY, builder)
    assert len(calls) == 1


def test_explicit_invalidation(graph):
    cache = PlanCache(4)
    cache.get_or_prepare(_q(1), _builder(graph))
    cache.get_or_prepare(_q(2), _builder(graph))
    assert cache.invalidate(_q(1)) is True
    assert cache.invalidate(_q(1)) is False  # already gone
    assert cache.peek(_q(1)) is None
    assert cache.peek(_q(2)) is not None
    assert cache.clear() == 1
    assert len(cache) == 0
    assert cache.invalidations == 2


def test_counters_mirrored_to_metrics_registry(graph):
    metrics = MetricsRegistry()
    cache = PlanCache(1, metrics=metrics)
    cache.get_or_prepare(_q(1), _builder(graph))
    cache.get_or_prepare(_q(1), _builder(graph))
    cache.get_or_prepare(_q(2), _builder(graph))  # miss + eviction of 1
    cache.clear()

    fam = metrics.counter("service_plan_cache_total",
                          labelnames=("event",))
    by_event = {
        "hit": fam.labels(event="hit").value,
        "miss": fam.labels(event="miss").value,
        "eviction": fam.labels(event="eviction").value,
        "invalidation": fam.labels(event="invalidation").value,
    }
    assert by_event == {"hit": 1.0, "miss": 2.0,
                        "eviction": 1.0, "invalidation": 1.0}


def test_peek_does_not_touch_lru_order(graph):
    cache = PlanCache(2)
    cache.get_or_prepare(_q(1), _builder(graph))
    cache.get_or_prepare(_q(2), _builder(graph))
    cache.peek(_q(1))  # must NOT refresh 1
    cache.get_or_prepare(_q(3), _builder(graph))
    assert cache.peek(_q(1)) is None  # 1 was still the LRU entry
    assert cache.hits == 0


def test_max_entries_validated():
    with pytest.raises(ValueError):
        PlanCache(0)


# -- stats-version invalidation ----------------------------------------------

def _stats_builder(graph, store):
    return lambda text: prepare(graph, text, stats=store)


def test_stats_version_bump_invalidates_cached_plans(graph):
    store = StatsStore()
    cache = PlanCache(4, stats=store)
    e1, hit1 = cache.get_or_prepare(NAMES_QUERY, _stats_builder(graph, store))
    assert (hit1, e1.stats_version) == (False, store.version)
    __, hit2 = cache.get_or_prepare(NAMES_QUERY, _stats_builder(graph, store))
    assert hit2 is True  # version unchanged: still fresh

    store.record("scan(?f <urn:new> ?f)", 100.0)  # material -> bump
    e3, hit3 = cache.get_or_prepare(NAMES_QUERY, _stats_builder(graph, store))
    assert hit3 is False  # stale entry dropped, re-planned
    assert e3 is not e1
    assert e3.stats_version == store.version
    assert cache.stats_invalidations == 1
    snap = cache.snapshot()
    assert snap["stats_invalidations"] == 1
    assert snap["stats_version"] == store.version


def test_immaterial_feedback_keeps_plans_cached(graph):
    store = StatsStore()
    cache = PlanCache(4, stats=store)
    cache.get_or_prepare(NAMES_QUERY, _stats_builder(graph, store))
    store.record("sig", 10.0)
    version = store.version
    store.record("sig", 10.5)  # noise, not material
    assert store.version == version
    # the plan was compiled before "sig" existed, so one re-plan after
    # the first bump is expected; from then on noise never invalidates
    __, hit = cache.get_or_prepare(NAMES_QUERY, _stats_builder(graph, store))
    assert hit is False
    __, hit2 = cache.get_or_prepare(NAMES_QUERY, _stats_builder(graph, store))
    assert hit2 is True


def test_stats_invalidation_mirrored_to_metrics(graph):
    store = StatsStore()
    metrics = MetricsRegistry()
    cache = PlanCache(4, metrics=metrics, stats=store)
    cache.get_or_prepare(NAMES_QUERY, _stats_builder(graph, store))
    store.record("sig", 10.0)
    cache.get_or_prepare(NAMES_QUERY, _stats_builder(graph, store))
    fam = metrics.counter("service_plan_cache_total", labelnames=("event",))
    assert fam.labels(event="stats_invalidation").value == 1.0
