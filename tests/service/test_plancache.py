"""PlanCache: LRU behaviour, explicit invalidation, counters."""

import pytest

from repro.observability import MetricsRegistry
from repro.service import PlanCache, build_default_graph
from repro.sparql.prepared import prepare

from service_helpers import NAMES_QUERY

pytestmark = pytest.mark.tier1


@pytest.fixture
def graph():
    return build_default_graph(stations=6, regions=2)


def _builder(graph):
    return lambda text: prepare(graph, text)


def _q(n):
    return (
        "PREFIX ex: <http://example.org/copernicus/>\n"
        f"SELECT ?s WHERE {{ ?s ex:name ?name }} LIMIT {n}"
    )


def test_miss_then_hit_returns_same_entry(graph):
    cache = PlanCache(4)
    e1, hit1 = cache.get_or_prepare(NAMES_QUERY, _builder(graph))
    e2, hit2 = cache.get_or_prepare(NAMES_QUERY, _builder(graph))
    assert (hit1, hit2) == (False, True)
    assert e1 is e2
    assert cache.hits == 1 and cache.misses == 1
    assert cache.hit_rate == 0.5


def test_lru_evicts_least_recently_used(graph):
    cache = PlanCache(2)
    cache.get_or_prepare(_q(1), _builder(graph))
    cache.get_or_prepare(_q(2), _builder(graph))
    cache.get_or_prepare(_q(1), _builder(graph))  # touch 1: 2 becomes LRU
    cache.get_or_prepare(_q(3), _builder(graph))  # evicts 2
    assert cache.evictions == 1
    assert cache.peek(_q(1)) is not None
    assert cache.peek(_q(2)) is None
    assert cache.peek(_q(3)) is not None


def test_builder_runs_only_on_miss(graph):
    calls = []

    def builder(text):
        calls.append(text)
        return prepare(graph, text)

    cache = PlanCache(4)
    for _ in range(5):
        cache.get_or_prepare(NAMES_QUERY, builder)
    assert len(calls) == 1


def test_explicit_invalidation(graph):
    cache = PlanCache(4)
    cache.get_or_prepare(_q(1), _builder(graph))
    cache.get_or_prepare(_q(2), _builder(graph))
    assert cache.invalidate(_q(1)) is True
    assert cache.invalidate(_q(1)) is False  # already gone
    assert cache.peek(_q(1)) is None
    assert cache.peek(_q(2)) is not None
    assert cache.clear() == 1
    assert len(cache) == 0
    assert cache.invalidations == 2


def test_counters_mirrored_to_metrics_registry(graph):
    metrics = MetricsRegistry()
    cache = PlanCache(1, metrics=metrics)
    cache.get_or_prepare(_q(1), _builder(graph))
    cache.get_or_prepare(_q(1), _builder(graph))
    cache.get_or_prepare(_q(2), _builder(graph))  # miss + eviction of 1
    cache.clear()

    fam = metrics.counter("service_plan_cache_total",
                          labelnames=("event",))
    by_event = {
        "hit": fam.labels(event="hit").value,
        "miss": fam.labels(event="miss").value,
        "eviction": fam.labels(event="eviction").value,
        "invalidation": fam.labels(event="invalidation").value,
    }
    assert by_event == {"hit": 1.0, "miss": 2.0,
                        "eviction": 1.0, "invalidation": 1.0}


def test_peek_does_not_touch_lru_order(graph):
    cache = PlanCache(2)
    cache.get_or_prepare(_q(1), _builder(graph))
    cache.get_or_prepare(_q(2), _builder(graph))
    cache.peek(_q(1))  # must NOT refresh 1
    cache.get_or_prepare(_q(3), _builder(graph))
    assert cache.peek(_q(1)) is None  # 1 was still the LRU entry
    assert cache.hits == 0


def test_max_entries_validated():
    with pytest.raises(ValueError):
        PlanCache(0)
