"""Shared fixtures for the service acceptance suite.

Everything runs on the service's own :class:`VirtualClock` — no real
time anywhere, which is what makes the overload/TTL/deadline tests
exact instead of flaky.
"""

import pytest

from repro.service import (
    QueryService,
    TenantSpec,
    VirtualClock,
    build_default_graph,
)



@pytest.fixture
def graph():
    return build_default_graph(stations=24, regions=4)


@pytest.fixture
def clock():
    return VirtualClock()


@pytest.fixture
def service(graph, clock):
    return QueryService(
        graph,
        tenants=[
            TenantSpec("alpha", priority=1, max_in_flight=2),
            TenantSpec("beta", priority=0, max_in_flight=2),
        ],
        max_concurrent=4,
        clock=clock,
    )
