"""AdmissionController: slot pool, bounded queue, shedding, stats."""

import threading
import time

import pytest

from repro.governance import (
    AdmissionController,
    DeadlineExceeded,
    GovernanceStats,
    Overloaded,
    QueryBudget,
)

pytestmark = pytest.mark.tier1


def test_slots_admit_up_to_capacity_then_shed():
    controller = AdmissionController(max_concurrent=2, max_queue_depth=0)
    a = controller.admit()
    b = controller.admit()
    assert controller.active == 2
    with pytest.raises(Overloaded) as err:
        controller.admit()
    assert err.value.retry_after_s == controller.retry_after_hint_s
    a.release()
    b.release()
    assert controller.active == 0
    assert controller.stats.admitted == 2
    assert controller.stats.shed == 1


def test_release_is_idempotent():
    controller = AdmissionController(max_concurrent=1)
    slot = controller.admit()
    slot.release()
    slot.release()
    assert controller.active == 0
    controller.admit()  # the pool did not leak a slot


def test_expired_budget_is_shed_without_waiting(fake_clock):
    """A queued waiter never waits longer than its remaining deadline —
    with the deadline already spent, the shed is immediate (no real
    blocking, so this test needs no threads and no sleeps)."""
    controller = AdmissionController(max_concurrent=1, max_queue_depth=4,
                                     clock=fake_clock)
    slot = controller.admit()
    budget = QueryBudget(deadline_s=1.0, clock=fake_clock)
    fake_clock.advance(2.0)
    with pytest.raises(Overloaded):
        controller.admit(budget=budget)
    slot.release()
    assert controller.stats.shed == 1


def test_queue_depth_bounds_number_of_waiters(fake_clock):
    controller = AdmissionController(max_concurrent=1, max_queue_depth=1,
                                     clock=fake_clock)
    slot = controller.admit()

    started = threading.Event()
    outcomes = []

    def waiter():
        started.set()
        with controller.admit():
            outcomes.append("ran")

    thread = threading.Thread(target=waiter)
    thread.start()
    started.wait(timeout=5)
    # Spin until the thread is actually queued before probing the limit.
    spin_deadline = time.monotonic() + 5
    while controller.queued != 1 and time.monotonic() < spin_deadline:
        pass
    assert controller.queued == 1
    with pytest.raises(Overloaded):  # depth 1 is taken: fail fast
        controller.admit(timeout_s=60)
    slot.release()  # hands the slot to the queued waiter
    thread.join(timeout=5)
    assert outcomes == ["ran"]
    assert controller.active == 0
    assert controller.stats.admitted == 2
    assert controller.stats.shed == 1


def test_run_classifies_outcomes_into_stats(fake_clock):
    stats = GovernanceStats()
    controller = AdmissionController(max_concurrent=2, stats=stats,
                                     clock=fake_clock)
    budget = QueryBudget(deadline_s=10.0, clock=fake_clock)
    assert controller.run(lambda: 41 + 1, budget=budget) == 42
    assert stats.completed == 1
    # 100% headroom: the work consumed no clock — top bucket.
    assert stats.headroom_histogram[-1] == 1

    def blow_deadline():
        fake_clock.advance(99.0)
        budget.check_deadline()

    with pytest.raises(DeadlineExceeded):
        controller.run(blow_deadline, budget=budget)
    assert stats.deadline_exceeded == 1
    assert stats.admitted == 2
    # Application errors are re-raised but not governance outcomes.
    with pytest.raises(ZeroDivisionError):
        controller.run(lambda: 1 / 0)
    assert stats.as_dict()["completed"] == 1


def test_stats_merge_aggregates_counters():
    one, two = GovernanceStats(), GovernanceStats()
    one.admitted, one.shed = 3, 1
    one.headroom_histogram[0] = 2
    two.admitted, two.completed = 4, 4
    two.headroom_histogram[0] = 1
    merged = one.merge(two)
    assert merged is one
    assert one.admitted == 7 and one.shed == 1 and one.completed == 4
    assert one.headroom_histogram[0] == 3
