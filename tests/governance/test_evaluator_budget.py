"""Budgets inside the SPARQL evaluator: deadlines, scan/row limits."""

import pytest

from governance_helpers import EX, TickingClock, make_graph

from repro.geometry import wkt_loads
from repro.governance import (
    DeadlineExceeded,
    QueryBudget,
    QueryCancelled,
    RowLimitExceeded,
    ScanLimitExceeded,
)
from repro.rdf import IRI, Literal
from repro.rdf.terms import GEO_WKT_LITERAL
from repro.sparql import query
from repro.strabon import StrabonStore

pytestmark = pytest.mark.tier1

PREFIX = "PREFIX ex: <http://example.org/>\n"
CROSS_JOIN = PREFIX + (
    "SELECT ?a ?b WHERE { ?a ex:item ?x . ?b ex:item ?y }"
)


@pytest.fixture
def big_graph():
    return make_graph("item", [f"n{i}" for i in range(40)])


def test_unbounded_query_dies_at_deadline_with_partial_stats(big_graph):
    """The acceptance scenario: a deliberately unbounded (cross-join)
    query under a deadline terminates with DeadlineExceeded carrying
    partial evaluation stats — and nothing ever sleeps (the clock ticks
    itself as the evaluator reads it)."""
    clock = TickingClock(step=0.001)
    budget = QueryBudget(deadline_s=0.4, clock=clock)
    with pytest.raises(DeadlineExceeded) as err:
        query(big_graph, CROSS_JOIN, budget=budget)
    snap = err.value.snapshot
    assert snap["triples_scanned"] > 0  # it did real work first
    assert snap["elapsed_s"] >= 0.4
    assert clock.sleeps == []  # cooperative cancellation, no sleeping


def test_scan_limit_kills_cross_join(big_graph):
    budget = QueryBudget(max_triples=200)
    with pytest.raises(ScanLimitExceeded) as err:
        query(big_graph, CROSS_JOIN, budget=budget)
    assert err.value.snapshot["triples_scanned"] == 201


def test_row_limit_applies_to_result_rows(big_graph):
    budget = QueryBudget(max_rows=10)
    with pytest.raises(RowLimitExceeded):
        query(big_graph, PREFIX + "SELECT ?a WHERE { ?a ex:item ?x }",
              budget=budget)
    # A LIMIT below the budget keeps the query inside it.
    ok = query(big_graph,
               PREFIX + "SELECT ?a WHERE { ?a ex:item ?x } LIMIT 5",
               budget=QueryBudget(max_rows=10))
    assert len(ok) == 5


def test_within_budget_query_reports_stats_on_result(big_graph):
    budget = QueryBudget(deadline_s=60.0, max_rows=1000,
                         max_triples=100_000)
    result = query(big_graph,
                   PREFIX + "SELECT ?a WHERE { ?a ex:item ?x }",
                   budget=budget)
    assert len(result) == 40
    assert result.budget_stats["rows"] == 40
    assert result.budget_stats["triples_scanned"] >= 40


def test_cancel_stops_a_running_query(big_graph):
    budget = QueryBudget()
    budget.cancel("shutdown")
    with pytest.raises(QueryCancelled):
        query(big_graph, CROSS_JOIN, budget=budget)


def _grid_store(n=12):
    store = StrabonStore()
    for i in range(n):
        for j in range(n):
            geom = Literal(f"POINT ({2.0 + i * 0.01:g} "
                           f"{48.0 + j * 0.01:g})",
                           datatype=GEO_WKT_LITERAL)
            store.add(IRI(f"{EX}cell/{i}/{j}"), IRI(f"{EX}geom"), geom)
    return store


def test_strabon_spatial_candidate_scan_is_budgeted():
    store = _grid_store()
    probe = wkt_loads("POLYGON ((1.9 47.9, 2.3 47.9, 2.3 48.3, 1.9 48.3,"
                      " 1.9 47.9))")
    budget = QueryBudget(max_triples=50)
    assert store.budget_aware
    with pytest.raises(ScanLimitExceeded):
        store.spatial_candidates(probe.bounds, budget=budget)
    assert budget.triples_scanned == 51
    # Without a budget the same scan enumerates all 144 candidates.
    assert len(store.spatial_candidates(probe.bounds)) == 144


def test_strabon_spatial_join_candidates_pass_budget_through():
    store = _grid_store(4)
    probe = wkt_loads("POINT (2.01 48.01)")
    budget = QueryBudget(max_triples=1000)
    candidates = store.spatial_join_candidates(probe, budget=budget)
    assert candidates
    assert budget.triples_scanned == len(candidates)
