"""Shared helpers for the governance suite: fake clocks + tiny graphs.

Every deadline in these tests is driven by an injected clock — either a
manually-advanced :class:`FakeClock` or a :class:`TickingClock` that
advances itself a fixed step per reading (so "time passes while the
query works" without any real sleeping).
"""

from repro.rdf import Graph, IRI, Literal

EX = "http://example.org/"


class FakeClock:
    """A manually-advanced monotonic clock with a matching sleep."""

    def __init__(self, start: float = 0.0):
        self.now = start
        self.sleeps = []

    def __call__(self) -> float:
        return self.now

    def sleep(self, seconds: float) -> None:
        self.sleeps.append(seconds)
        self.now += seconds

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TickingClock(FakeClock):
    """Advances itself *step* seconds on every reading.

    Models a query that spends time as it works: each cancellation
    point observes a later time, so a deadline eventually expires
    mid-evaluation with no sleeping anywhere.
    """

    def __init__(self, step: float = 0.001, start: float = 0.0):
        super().__init__(start)
        self.step = step

    def __call__(self) -> float:
        self.now += self.step
        return self.now


def make_graph(kind: str, names) -> Graph:
    graph = Graph()
    graph.bind("ex", EX)
    for name in names:
        node = IRI(EX + name)
        graph.add(node, IRI(EX + kind), Literal(name))
    return graph
