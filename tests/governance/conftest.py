"""Fixtures for the governance suite (helpers importable directly from
``governance_helpers``)."""

import pytest

from governance_helpers import FakeClock, TickingClock


@pytest.fixture
def fake_clock():
    return FakeClock()


@pytest.fixture
def ticking_clock():
    return TickingClock(step=0.001)
