"""Concurrent QueryBudget charging: thread/serial equivalence.

One budget shared by many tasks is the service's steady state (a
paginated request's pages, a federated query's per-endpoint fetches all
charge the same budget). The contract under contention:

- charges are never lost or double counted — the final counters equal
  the serial truth regardless of interleaving;
- the limit bites at the same *logical* position: with a limit
  admitting exactly k of n unit charges, exactly n - k tasks fail,
  under both the SerialExecutor and the ThreadExecutor;
- exhaustion is sticky: once over the limit, every later charge fails.
"""

import pytest

from repro.governance import (
    QueryBudget,
    RowLimitExceeded,
    ScanLimitExceeded,
)
from repro.parallel import SerialExecutor, ThreadExecutor, WorkerPool

pytestmark = pytest.mark.tier1

N_TASKS = 64
LIMIT = 40  # admits exactly LIMIT unit charges out of N_TASKS


def _charge_all(executor, charge, n_tasks=N_TASKS):
    """Run n unit charges through a pool; returns the outcome list."""
    pool = WorkerPool(executor=executor, name="budget-test")
    return pool.run_tasks(lambda _: charge(1), range(n_tasks))


@pytest.mark.parametrize("make_executor", [
    SerialExecutor,
    lambda: ThreadExecutor(workers=8),
], ids=["serial", "threads"])
def test_row_limit_bites_at_same_logical_position(make_executor):
    budget = QueryBudget(max_rows=LIMIT)
    outcomes = _charge_all(make_executor(), budget.charge_rows)
    failures = [o for o in outcomes if not o.ok]
    assert len(failures) == N_TASKS - LIMIT
    assert all(isinstance(o.error, RowLimitExceeded) for o in failures)
    # no charge was lost or double counted: every task incremented
    # exactly once, successes and failures alike (charge-then-check)
    assert budget.rows == N_TASKS


@pytest.mark.parametrize("make_executor", [
    SerialExecutor,
    lambda: ThreadExecutor(workers=8),
], ids=["serial", "threads"])
def test_scan_limit_equivalence_under_contention(make_executor):
    budget = QueryBudget(max_triples=LIMIT)
    outcomes = _charge_all(make_executor(), budget.charge_triples)
    failures = [o for o in outcomes if not o.ok]
    assert len(failures) == N_TASKS - LIMIT
    assert all(isinstance(o.error, ScanLimitExceeded) for o in failures)
    assert budget.triples_scanned == N_TASKS


def test_serial_failure_positions_are_the_logical_truth():
    """Serially, the first LIMIT charges pass and the rest fail — the
    positional ground truth the threaded count-equivalence is checked
    against (threads cannot pin positions, only the count)."""
    budget = QueryBudget(max_rows=LIMIT)
    outcomes = _charge_all(SerialExecutor(), budget.charge_rows)
    oks = [o.ok for o in outcomes]
    assert oks == [True] * LIMIT + [False] * (N_TASKS - LIMIT)


@pytest.mark.parametrize("make_executor", [
    SerialExecutor,
    lambda: ThreadExecutor(workers=8),
], ids=["serial", "threads"])
def test_exhaustion_is_sticky(make_executor):
    budget = QueryBudget(max_rows=5)
    _charge_all(make_executor(), budget.charge_rows, n_tasks=10)
    # the budget is spent: every subsequent charge fails immediately
    for _ in range(3):
        with pytest.raises(RowLimitExceeded):
            budget.charge_rows(1)
    assert budget.rows == 13


@pytest.mark.parametrize("make_executor", [
    SerialExecutor,
    lambda: ThreadExecutor(workers=8),
], ids=["serial", "threads"])
def test_mixed_dimensions_do_not_interfere(make_executor):
    """Row and scan charges against one budget stay independent."""
    budget = QueryBudget(max_rows=LIMIT, max_triples=N_TASKS + 1)
    pool = WorkerPool(executor=make_executor(), name="budget-test")

    def task(i):
        budget.charge_triples(1)  # always inside the scan limit
        budget.charge_rows(1)     # bites after LIMIT

    outcomes = pool.run_tasks(task, range(N_TASKS))
    failures = [o for o in outcomes if not o.ok]
    assert len(failures) == N_TASKS - LIMIT
    assert all(isinstance(o.error, RowLimitExceeded) for o in failures)
    assert budget.triples_scanned == N_TASKS
    assert budget.rows == N_TASKS
    snapshot = budget.snapshot()
    assert snapshot["rows"] == N_TASKS
    assert snapshot["triples_scanned"] == N_TASKS
