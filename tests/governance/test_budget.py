"""QueryBudget unit behaviour: charges, deadlines, cancellation."""

import pytest

from repro.governance import (
    DeadlineExceeded,
    FetchLimitExceeded,
    QueryBudget,
    QueryCancelled,
    RowLimitExceeded,
    ScanLimitExceeded,
)

pytestmark = pytest.mark.tier1


def test_unlimited_budget_only_accounts(fake_clock):
    budget = QueryBudget.unlimited(clock=fake_clock)
    budget.charge_triples(500)
    budget.charge_rows(100)
    budget.charge_fetch(10)
    fake_clock.advance(1e6)
    budget.check_deadline()  # never raises
    snap = budget.snapshot()
    assert snap["triples_scanned"] == 500
    assert snap["rows"] == 100
    assert snap["remote_fetches"] == 10
    assert budget.remaining_s() is None
    assert budget.headroom() is None


def test_hard_deadline_raises_with_partial_stats(fake_clock):
    budget = QueryBudget(deadline_s=2.0, clock=fake_clock)
    budget.charge_triples(7)
    fake_clock.advance(2.5)
    with pytest.raises(DeadlineExceeded) as err:
        budget.charge_triples()
    # The snapshot reports the work done up to the kill, including the
    # triple whose charge tripped the deadline.
    assert err.value.snapshot["triples_scanned"] == 8
    assert err.value.snapshot["elapsed_s"] == pytest.approx(2.5)
    assert budget.remaining_s() == 0.0


def test_soft_deadline_accounts_but_does_not_raise(fake_clock):
    budget = QueryBudget(deadline_s=1.0, clock=fake_clock,
                         hard_deadline=False)
    fake_clock.advance(5.0)
    budget.check_deadline()
    budget.charge_triples(3)  # still charged, still no raise
    assert budget.deadline_expired
    assert budget.triples_scanned == 3


def test_row_scan_and_fetch_limits_raise_typed_errors(fake_clock):
    budget = QueryBudget(max_rows=2, max_triples=5, max_fetches=1,
                         clock=fake_clock)
    budget.charge_rows(2)
    with pytest.raises(RowLimitExceeded):
        budget.charge_rows()
    budget.charge_triples(5)
    with pytest.raises(ScanLimitExceeded) as err:
        budget.charge_triples()
    assert err.value.snapshot["triples_scanned"] == 6
    budget.charge_fetch()
    with pytest.raises(FetchLimitExceeded):
        budget.charge_fetch()


def test_cancel_trips_next_cancellation_point(fake_clock):
    budget = QueryBudget(clock=fake_clock)
    budget.charge_triples(4)
    budget.cancel("user abort")
    with pytest.raises(QueryCancelled, match="user abort") as err:
        budget.charge_triples()
    assert err.value.snapshot["cancelled"] is True


def test_remaining_and_headroom_track_the_clock(fake_clock):
    budget = QueryBudget(deadline_s=10.0, clock=fake_clock)
    assert budget.remaining_s() == 10.0
    assert budget.headroom() == 1.0
    fake_clock.advance(7.5)
    assert budget.remaining_s() == 2.5
    assert budget.headroom() == pytest.approx(0.25)
    fake_clock.advance(100.0)
    assert budget.remaining_s() == 0.0
    assert budget.headroom() == 0.0
    assert budget.deadline_expired
