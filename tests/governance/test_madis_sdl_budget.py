"""Budgets in the data layers: MadIS virtual tables, the Ontop
OPeNDAP adapter and the Streaming Data Library."""

from datetime import date

import pytest

from repro.governance import (
    AdmissionController,
    FetchLimitExceeded,
    Overloaded,
    QueryBudget,
    RowLimitExceeded,
)
from repro.madis import MadisConnection, attach_opendap
from repro.ontop import make_opendap_endpoint
from repro.opendap import ServerRegistry
from repro.sdl import StreamingDataLibrary
from repro.vito import (
    GlobalLandArchive,
    LAI_SPEC,
    MepDeployment,
    dekad_dates,
    generate_product,
)

pytestmark = pytest.mark.tier1

URL = "dap://vito.test/Copernicus/LAI"

PREFIX = """
PREFIX lai: <http://www.app-lab.eu/lai/>
PREFIX geo: <http://www.opengis.net/ont/geosparql#>
"""


@pytest.fixture
def registry():
    archive = GlobalLandArchive()
    for day in dekad_dates(date(2018, 6, 1), 2):
        archive.publish("LAI", day, 0,
                        generate_product(LAI_SPEC, day, cloud_fraction=0.0))
    mep = MepDeployment(archive, host="vito.test")
    mep.mount_product("LAI")
    registry = ServerRegistry()
    registry.register(mep.server)
    return registry


# -- MadIS ----------------------------------------------------------------
def test_vt_scan_is_row_budgeted(registry):
    conn = MadisConnection()
    attach_opendap(conn, registry)
    budget = QueryBudget(max_rows=50)
    with pytest.raises(RowLimitExceeded) as err:
        conn.execute(
            f"SELECT id, LAI FROM (opendap url:{URL}) WHERE LAI > 0",
            budget=budget,
        )
    assert err.value.snapshot["rows"] == 51


def test_vt_fetch_charges_the_budget(registry):
    conn = MadisConnection()
    attach_opendap(conn, registry)
    budget = QueryBudget(max_fetches=0)
    with pytest.raises(FetchLimitExceeded):
        conn.execute(f"SELECT LAI FROM (opendap url:{URL})", budget=budget)
    assert budget.rows == 0  # killed before any row materialized


def test_vt_within_budget_accounts_rows(registry):
    conn = MadisConnection()
    attach_opendap(conn, registry)
    budget = QueryBudget(max_rows=10_000, max_fetches=5)
    rows = conn.execute(f"SELECT LAI FROM (opendap url:{URL})",
                        budget=budget)
    assert len(rows) == budget.rows > 0
    assert budget.remote_fetches == 1


# -- Ontop adapter --------------------------------------------------------
def test_virtual_sparql_respects_row_budget(registry):
    engine, __, __conn = make_opendap_endpoint(registry, URL)
    budget = QueryBudget(max_rows=20)
    with pytest.raises(RowLimitExceeded):
        engine.query(PREFIX + "SELECT ?lai WHERE { ?s lai:lai ?lai }",
                     budget=budget)


def test_virtual_sparql_within_budget_reports_stats(registry):
    engine, __, __conn = make_opendap_endpoint(registry, URL)
    budget = QueryBudget(max_rows=10_000, max_fetches=10)
    res = engine.query(
        PREFIX + "SELECT ?lai WHERE { ?s lai:lai ?lai } LIMIT 7",
        budget=budget,
    )
    assert len(res) == 7
    assert res.budget_stats["remote_fetches"] >= 1


def test_adapter_admission_sheds_when_saturated(registry):
    admission = AdmissionController(max_concurrent=1, max_queue_depth=0)
    engine, __, __conn = make_opendap_endpoint(registry, URL,
                                               admission=admission)
    slot = admission.admit()
    with pytest.raises(Overloaded):
        engine.query(PREFIX + "SELECT ?lai WHERE { ?s lai:lai ?lai }")
    slot.release()
    res = engine.query(
        PREFIX + "SELECT ?lai WHERE { ?s lai:lai ?lai } LIMIT 3"
    )
    assert len(res) == 3
    assert admission.stats.shed == 1
    assert admission.stats.completed == 1


# -- SDL ------------------------------------------------------------------
def _library(registry, admission=None):
    sdl = StreamingDataLibrary(registry, admission=admission)
    sdl.register_dataset("LAI", URL)
    return sdl


def test_stream_charges_one_row_per_chunk(registry):
    sdl = _library(registry)
    budget = QueryBudget(max_rows=1)
    chunks = sdl.stream("LAI", variable="LAI", budget=budget)
    next(chunks)  # first chunk fits the budget
    with pytest.raises(RowLimitExceeded):
        next(chunks)
    assert sdl.governance_report()["row_limit_exceeded"] == 1


def test_fetch_window_charges_fetches(registry):
    sdl = _library(registry)
    with pytest.raises(FetchLimitExceeded):
        sdl.fetch_window("LAI", "LAI", budget=QueryBudget(max_fetches=1))
    report = sdl.governance_report()
    assert report["fetch_limit_exceeded"] == 1

    window = sdl.fetch_window("LAI", "LAI",
                              budget=QueryBudget(max_fetches=10))
    assert "LAI" in window
    assert sdl.governance_report()["completed"] == 1


def test_stream_holds_an_admission_slot_for_its_lifetime(registry):
    admission = AdmissionController(max_concurrent=1, max_queue_depth=0)
    sdl = _library(registry, admission=admission)
    chunks = sdl.stream("LAI", variable="LAI")
    next(chunks)  # generator started: slot taken
    assert admission.active == 1
    with pytest.raises(Overloaded):
        sdl.fetch_window("LAI", "LAI")
    for __ in chunks:  # drain: slot released at generator exit
        pass
    assert admission.active == 0
    window = sdl.fetch_window("LAI", "LAI")
    assert "LAI" in window
    report = sdl.governance_report()
    assert report["shed"] == 1
    assert report["admitted"] == 2  # the stream + the final fetch
    assert report["admission_active"] == 0
    assert report["admission_max_concurrent"] == 1


def test_abandoned_stream_releases_its_slot(registry):
    admission = AdmissionController(max_concurrent=1, max_queue_depth=0)
    sdl = _library(registry, admission=admission)
    chunks = sdl.stream("LAI", variable="LAI")
    next(chunks)
    assert admission.active == 1
    chunks.close()  # consumer walks away mid-stream
    assert admission.active == 0
