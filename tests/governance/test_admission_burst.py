"""AdmissionController under bursts from the workload arrival models.

The service PR's load harness generates seeded open/closed-loop
arrival sequences; this suite drives raw bursts shaped by those models
straight at an AdmissionController and pins:

- shed order: with no queue, exactly the first ``max_concurrent``
  arrivals of a burst are admitted and every later one is shed, in
  arrival order;
- typed payloads: every shed is an ``Overloaded`` carrying the
  controller's ``retry_after_s`` hint;
- headroom-histogram accounting: completions land in the right
  deadline-headroom buckets on a fake clock.
"""

import random

import pytest

from repro.governance import (
    AdmissionController,
    GovernanceStats,
    Overloaded,
    QueryBudget,
)
from repro.service import WorkloadSpec
from repro.service.workload import Workload

from governance_helpers import FakeClock

pytestmark = pytest.mark.tier1


def _open_loop_arrivals(seed, n, rate_rps):
    """The workload generator's open-loop arrival process, verbatim:
    seeded exponential inter-arrival gaps at an aggregate rate."""
    rng = random.Random(seed)
    at, times = 0.0, []
    for _ in range(n):
        at += rng.expovariate(rate_rps)
        times.append(at)
    return times


def test_burst_sheds_everything_past_capacity_in_arrival_order():
    clock = FakeClock()
    controller = AdmissionController(max_concurrent=4, max_queue_depth=0,
                                     clock=clock)
    arrivals = _open_loop_arrivals(seed=7, n=50, rate_rps=10_000.0)
    admitted, shed = [], []
    slots = []
    for i, at in enumerate(arrivals):
        clock.now = at
        try:
            slots.append(controller.admit())
            admitted.append(i)
        except Overloaded as exc:
            shed.append((i, exc))
    # exactly the first max_concurrent arrivals got slots
    assert admitted == [0, 1, 2, 3]
    assert [i for i, _ in shed] == list(range(4, 50))
    assert controller.stats.admitted == 4
    assert controller.stats.shed == 46
    # every shed is typed and carries the retry hint
    assert all(exc.retry_after_s == controller.retry_after_hint_s
               for _, exc in shed)


def test_draining_between_bursts_restores_capacity():
    clock = FakeClock()
    controller = AdmissionController(max_concurrent=2, max_queue_depth=0,
                                     clock=clock)
    a = controller.admit()
    b = controller.admit()
    with pytest.raises(Overloaded):
        controller.admit()
    a.release()
    b.release()
    # the next burst starts from a clean pool
    c = controller.admit()
    assert controller.active == 1
    c.release()
    assert controller.stats.admitted == 3
    assert controller.stats.shed == 1


def test_two_same_seed_bursts_shed_identically():
    def run(seed):
        clock = FakeClock()
        controller = AdmissionController(max_concurrent=3,
                                         max_queue_depth=0, clock=clock)
        outcomes = []
        slots = []
        for at in _open_loop_arrivals(seed, 30, 5000.0):
            clock.now = at
            # drain one slot every ~1ms of arrival time, like
            # completions freeing capacity mid-burst
            if slots and int(at * 1000) % 2 == 0:
                slots.pop(0).release()
            try:
                slots.append(controller.admit())
                outcomes.append("admitted")
            except Overloaded:
                outcomes.append("shed")
        return outcomes

    assert run(11) == run(11)
    assert run(11) != run(12)  # the model is seed-driven, not constant


def test_headroom_histogram_buckets_on_fake_clock():
    clock = FakeClock()
    stats = GovernanceStats()
    controller = AdmissionController(max_concurrent=8, max_queue_depth=0,
                                     clock=clock, stats=stats)
    # three queries with a 1 s deadline, finishing with 95%, 50%, 5%
    # of it unused -> buckets 9, 5, 0
    for spent in (0.05, 0.5, 0.95):
        budget = QueryBudget(deadline_s=1.0, clock=clock)
        slot = controller.admit(budget)
        clock.advance(spent)
        stats.record_outcome(None, budget)
        slot.release()
        clock.now = 0.0  # next query starts fresh
    hist = stats.headroom_histogram
    assert hist[9] == 1  # finished almost immediately
    assert hist[5] == 1
    assert hist[0] == 1  # nearly late
    assert sum(hist) == 3
    assert stats.completed == 3


def test_workload_arrival_models_feed_the_same_accounting():
    """End to end: the harness's own open-loop model over the service
    controller produces consistent admitted/shed bookkeeping."""
    spec = WorkloadSpec(seed=21, clients=150, rate_rps=3000.0,
                        max_queue_depth=16)
    workload = Workload(spec)
    report = workload.run().report
    stats = workload.service.stats
    totals = report["totals"]
    # every admitted request finished one way or another; everything
    # else was shed with a typed error — nothing vanished
    assert stats.shed == totals["shed"] > 0
    assert totals["completed"] == stats.completed
    assert totals["submitted"] == 150
    shed_records = [r for r in workload.scheduler.records
                    if r.outcome.startswith("shed")]
    assert len(shed_records) == totals["shed"]
    assert all(r.error["code"] in ("overloaded", "quota_exceeded",
                                   "deadline_exceeded")
               for r in shed_records)
    # completions with deadlines populated the headroom histogram
    assert sum(stats.combined_headroom_histogram()) > 0
