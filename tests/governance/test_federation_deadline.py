"""Deadlines and admission across the federation engine.

The key invariants: retries never outlive the query's remaining
deadline, a deadline that expires mid-federation degrades (in partial
mode) to per-endpoint failure records instead of a dead query, and an
engine with admission control sheds excess queries with ``Overloaded``.
All on fake clocks — nothing here sleeps.
"""

import pytest

from governance_helpers import FakeClock, make_graph

from repro.governance import (
    AdmissionController,
    DeadlineExceeded,
    FetchLimitExceeded,
    Overloaded,
    QueryBudget,
)
from repro.resilience import FaultSchedule, FaultyEndpoint, InjectedFault, \
    RetryPolicy
from repro.sparql.federation import FederationEngine, SparqlEndpoint

pytestmark = pytest.mark.tier1

PREFIX = "PREFIX ex: <http://example.org/>\n"
UNITS = PREFIX + "SELECT ?n WHERE { ?s ex:unit ?n }"
FAST1_IRI = "http://gadm.example/sparql"
FAST2_IRI = "http://corine.example/sparql"
SLOW_IRI = "http://osm.example/sparql"


def policy(clock, **kwargs):
    kwargs.setdefault("base_delay_s", 10.0)
    kwargs.setdefault("jitter", 0.0)
    return RetryPolicy(clock=clock, sleep=clock.sleep, **kwargs)


class SlowEndpoint(SparqlEndpoint):
    """Pattern access consumes *delay_s* of fake time, then times out."""

    def __init__(self, graph, clock, delay_s, **kwargs):
        super().__init__(graph, **kwargs)
        self.fake_clock = clock
        self.delay_s = delay_s

    def triples(self, pattern):
        self.fake_clock.advance(self.delay_s)
        raise TimeoutError(f"endpoint stalled for {self.delay_s:g}s")


def test_retries_never_outlive_the_remaining_deadline():
    clock = FakeClock()
    engine = FederationEngine(retry_policy=policy(clock, max_attempts=5))
    dead = FaultyEndpoint(
        SparqlEndpoint(make_graph("unit", ["paris"]), name="dead"),
        FaultSchedule.dead(),
    )
    engine.register(FAST1_IRI, dead)
    budget = QueryBudget(deadline_s=15.0, clock=clock)

    with pytest.raises(InjectedFault):
        engine.query(UNITS, budget=budget)
    # Unbudgeted, 5 attempts would back off 10+20+40+80 s. The first
    # backoff (10 s) fits the 15 s deadline; the second (20 s) would
    # outlive it and is never slept.
    assert clock.sleeps == pytest.approx([10.0])
    assert clock.now <= 15.0
    assert engine.governance.deadline_exceeded == 0  # died of the fault


def test_budget_exhausted_before_dispatch_raises_deadline_error():
    clock = FakeClock()
    engine = FederationEngine(retry_policy=policy(clock, max_attempts=3))
    engine.register(FAST1_IRI,
                    SparqlEndpoint(make_graph("unit", ["paris"])))
    budget = QueryBudget(deadline_s=1.0, clock=clock)
    clock.advance(2.0)
    with pytest.raises(DeadlineExceeded):
        engine.query(UNITS, budget=budget)
    assert engine.governance.deadline_exceeded == 1


def test_partial_mode_deadline_mid_endpoint_degrades():
    """ISSUE acceptance: the deadline expires while the slow endpoint
    is being contacted — the query still returns (within budget, fake
    clock), the slow endpoint shows up in ``failures``, and bindings
    from the fast endpoints are intact."""
    clock = FakeClock()
    engine = FederationEngine(retry_policy=policy(clock, max_attempts=3))
    engine.register(FAST1_IRI,
                    SparqlEndpoint(make_graph("unit", ["paris", "lyon"]),
                                   name="gadm"))
    engine.register(FAST2_IRI,
                    SparqlEndpoint(make_graph("unit", ["brest"]),
                                   name="corine"))
    slow = SlowEndpoint(make_graph("unit", ["never-seen"]), clock,
                        delay_s=8.0, name="osm")
    engine.register(SLOW_IRI, slow)

    budget = QueryBudget(deadline_s=5.0, clock=clock)
    result = engine.query(UNITS, partial_results=True, budget=budget)

    # Fast endpoints answered before the deadline: bindings intact.
    assert {str(r["n"]) for r in result} == {"paris", "lyon", "brest"}
    # The slow endpoint burned past the deadline and is reported.
    assert SLOW_IRI in result.failures
    assert "TimeoutError" in result.failures[SLOW_IRI]
    assert set(result.failures) == {SLOW_IRI}
    # No retry was attempted on it (the deadline was already gone) and
    # no backoff was slept: the query returned at the endpoint stall,
    # not at 8 s + backoff schedule.
    assert clock.sleeps == []
    assert clock.now == pytest.approx(8.0)
    assert result.budget_stats["remaining_s"] == 0.0
    # Soft deadline: the engine recorded a completion, not a kill.
    assert engine.governance.completed == 1


def test_partial_mode_sheds_endpoints_after_deadline():
    """Endpoints that would be dispatched after the deadline are shed
    up front and recorded as DeadlineExceeded failures."""
    clock = FakeClock()
    engine = FederationEngine(retry_policy=policy(clock, max_attempts=3))
    slow = SlowEndpoint(make_graph("unit", ["never-seen"]), clock,
                        delay_s=8.0, name="osm")
    engine.register(SLOW_IRI, slow)
    engine.register(FAST1_IRI,
                    SparqlEndpoint(make_graph("unit", ["paris"]),
                                   name="gadm"))

    budget = QueryBudget(deadline_s=5.0, clock=clock)
    result = engine.query(UNITS, partial_results=True, budget=budget)
    assert len(result) == 0
    assert "TimeoutError" in result.failures[SLOW_IRI]
    assert "DeadlineExceeded" in result.failures[FAST1_IRI]


def test_fetch_budget_caps_endpoint_calls():
    clock = FakeClock()
    engine = FederationEngine(retry_policy=policy(clock, max_attempts=1))
    for i, iri in enumerate([FAST1_IRI, FAST2_IRI, SLOW_IRI]):
        engine.register(iri,
                        SparqlEndpoint(make_graph("unit", [f"city{i}"])))
    # Vocabulary harvest alone needs 3 fetches; allow only 2.
    budget = QueryBudget(max_fetches=2, clock=clock)
    with pytest.raises(FetchLimitExceeded):
        engine.query(UNITS, budget=budget)
    assert engine.governance.fetch_limit_exceeded == 1


def test_admission_controlled_engine_sheds_excess_queries():
    clock = FakeClock()
    admission = AdmissionController(max_concurrent=1, max_queue_depth=0,
                                    clock=clock)
    engine = FederationEngine(retry_policy=policy(clock, max_attempts=1),
                              admission=admission)
    engine.register(FAST1_IRI,
                    SparqlEndpoint(make_graph("unit", ["paris"])))

    slot = admission.admit()  # someone else holds the only slot
    with pytest.raises(Overloaded) as err:
        engine.query(UNITS)
    assert err.value.retry_after_s is not None
    slot.release()

    result = engine.query(UNITS, budget=QueryBudget(deadline_s=30.0,
                                                    clock=clock))
    assert len(result) == 1
    # The controller's stats ARE the engine's governance block.
    assert engine.governance is admission.stats
    assert engine.governance.shed == 1
    assert engine.governance.admitted == 2
    assert engine.governance.completed == 1
    assert sum(engine.governance.headroom_histogram) == 1
