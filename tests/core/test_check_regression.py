"""The bench-smoke regression gate must catch a synthetic 2x
regression and pass identical metrics — benchmarks/check_regression.py
is plain stdlib, loaded here by path (benchmarks/ is not a package)."""

import importlib.util
import json
import pathlib

import pytest

pytestmark = pytest.mark.tier1

SCRIPT = pathlib.Path(__file__).resolve().parents[2] \
    / "benchmarks" / "check_regression.py"

spec = importlib.util.spec_from_file_location("check_regression", SCRIPT)
check_regression = importlib.util.module_from_spec(spec)
spec.loader.exec_module(check_regression)

MANIFEST = {
    "tolerance_factor": 2.0,
    "metrics": [
        {"file": "BENCH_x.json", "path": "sweep.seconds_by_workers.1",
         "direction": "lower"},
        {"file": "BENCH_x.json", "path": "sweep.speedup_workers_4",
         "direction": "higher"},
    ],
}


def write_bench(directory, seconds=0.2, speedup=3.5):
    directory.mkdir(parents=True, exist_ok=True)
    (directory / "BENCH_x.json").write_text(json.dumps(
        {"sweep": {"seconds_by_workers": {"1": seconds},
                   "speedup_workers_4": speedup}}))


@pytest.fixture
def dirs(tmp_path):
    out, baselines = tmp_path / "out", tmp_path / "baselines"
    write_bench(baselines)
    return out, baselines


def run(out, baselines, manifest=MANIFEST):
    return check_regression.check(manifest, out, baselines)


def test_identical_metrics_pass(dirs):
    out, baselines = dirs
    write_bench(out)
    failures, report = run(out, baselines)
    assert failures == []
    assert len(report) == 2
    assert all(line.startswith("OK") for line in report)


def test_within_tolerance_passes(dirs):
    out, baselines = dirs
    write_bench(out, seconds=0.39, speedup=1.8)  # < 2x worse
    assert run(out, baselines)[0] == []


def test_doubled_wall_time_fails(dirs):
    out, baselines = dirs
    write_bench(out, seconds=0.41)  # > 0.2 * 2.0
    failures, __ = run(out, baselines)
    assert failures == ["BENCH_x.json:sweep.seconds_by_workers.1"]


def test_halved_speedup_fails(dirs):
    out, baselines = dirs
    write_bench(out, speedup=1.7)  # < 3.5 / 2.0
    failures, __ = run(out, baselines)
    assert failures == ["BENCH_x.json:sweep.speedup_workers_4"]


def test_missing_emitted_file_fails(dirs):
    out, baselines = dirs
    failures, report = run(out, baselines)
    assert len(failures) == 2
    assert "did not emit" in report[0]


def test_missing_metric_fails(dirs):
    out, baselines = dirs
    out.mkdir()
    (out / "BENCH_x.json").write_text(json.dumps(
        {"sweep": {"speedup_workers_4": 3.5}}))
    failures, __ = run(out, baselines)
    assert failures == ["BENCH_x.json:sweep.seconds_by_workers.1"]


def test_per_metric_tolerance_override(dirs):
    out, baselines = dirs
    write_bench(out, seconds=0.5)  # 2.5x worse
    manifest = {
        "tolerance_factor": 2.0,
        "metrics": [
            {"file": "BENCH_x.json",
             "path": "sweep.seconds_by_workers.1",
             "direction": "lower", "tolerance_factor": 3.0},
        ],
    }
    assert run(out, baselines, manifest)[0] == []


def test_non_numeric_metric_fails(dirs):
    out, baselines = dirs
    out.mkdir()
    (out / "BENCH_x.json").write_text(json.dumps(
        {"sweep": {"seconds_by_workers": {"1": "fast"},
                   "speedup_workers_4": 3.5}}))
    failures, __ = run(out, baselines)
    assert failures == ["BENCH_x.json:sweep.seconds_by_workers.1"]


def run_all_present(out, baselines, manifest=MANIFEST, expect=None):
    return check_regression.check_all_present(manifest, out, baselines,
                                              expect=expect)


def test_all_present_passes_when_everything_emitted(dirs):
    out, baselines = dirs
    write_bench(out)
    failures, report = run_all_present(out, baselines)
    assert failures == []
    assert len(report) == 2  # the two tracked metrics, both OK


def test_all_present_fails_on_missing_expected_file(dirs):
    out, baselines = dirs
    out.mkdir()  # nothing emitted
    failures, report = run_all_present(out, baselines)
    assert failures == ["BENCH_x.json"]
    assert "expected benchmark output missing" in report[0]


def test_all_present_fails_on_untracked_emission(dirs):
    out, baselines = dirs
    write_bench(out)
    (out / "BENCH_rogue.json").write_text("{}")
    failures, report = run_all_present(out, baselines)
    assert failures == ["BENCH_rogue.json"]
    assert "no tracked metrics" in report[0]


def test_all_present_still_gates_metric_regressions(dirs):
    out, baselines = dirs
    write_bench(out, seconds=1.0)  # 5x regression
    failures, __ = run_all_present(out, baselines)
    assert failures == ["BENCH_x.json:sweep.seconds_by_workers.1"]


def test_all_present_expect_narrows_required_files(dirs):
    out, baselines = dirs
    manifest = {
        "tolerance_factor": 2.0,
        "metrics": MANIFEST["metrics"] + [
            {"file": "BENCH_y.json", "path": "wall_s",
             "direction": "lower"},
        ],
    }
    out.mkdir()
    # Without --expect, both manifest files are required.
    failures, __ = run_all_present(out, baselines, manifest)
    assert failures == ["BENCH_x.json", "BENCH_y.json"]
    # --expect narrows to the file this job runs...
    write_bench(out)
    failures, __ = run_all_present(out, baselines, manifest,
                                   expect=["BENCH_x.json"])
    assert failures == []
    # ...but anything else emitted is still gated.
    (out / "BENCH_y.json").write_text(json.dumps({"wall_s": 1.0}))
    failures, __ = run_all_present(out, baselines, manifest,
                                   expect=["BENCH_x.json"])
    assert failures == ["BENCH_y.json:wall_s"]  # no baseline committed


def test_all_present_rejects_unknown_expect(dirs):
    out, baselines = dirs
    out.mkdir()
    with pytest.raises(SystemExit, match="no tracked metrics"):
        run_all_present(out, baselines, expect=["BENCH_nope.json"])


def test_all_present_cli(dirs, capsys):
    out, baselines = dirs
    write_bench(out)
    manifest_path = baselines / "tracked_metrics.json"
    manifest_path.write_text(json.dumps(MANIFEST))
    argv = ["--out-dir", str(out), "--baseline-dir", str(baselines),
            "--manifest", str(manifest_path), "--all-present"]
    assert check_regression.main(argv) == 0
    (out / "BENCH_rogue.json").write_text("{}")
    assert check_regression.main(argv) == 1
    capsys.readouterr()
    with pytest.raises(SystemExit):  # argparse error exit
        check_regression.main(argv + ["--only", "BENCH_x.json"])
    with pytest.raises(SystemExit):
        check_regression.main(argv[:-1] + ["--expect", "BENCH_x.json"])


def test_cli_exit_codes(dirs, capsys):
    out, baselines = dirs
    write_bench(out)
    manifest_path = baselines / "tracked_metrics.json"
    manifest_path.write_text(json.dumps(MANIFEST))
    argv = ["--out-dir", str(out), "--baseline-dir", str(baselines),
            "--manifest", str(manifest_path)]
    assert check_regression.main(argv) == 0
    write_bench(out, seconds=1.0)  # 5x regression
    assert check_regression.main(argv) == 1
    assert "regressed" in capsys.readouterr().err
