"""Determinism lint: no ambient clocks or unseeded randomness in src.

Every timing in the library goes through an injected ``clock``
callable (defaulting to ``time.monotonic``) and every random draw
through a seeded ``random.Random`` / ``numpy`` generator — that is
what makes fault injection, retry jitter, the equivalence suite, and
the benchmarks reproducible. This lint greps the source tree for the
ambient alternatives so a new call site fails CI instead of silently
introducing nondeterminism.
"""

import pathlib
import re

import pytest

pytestmark = pytest.mark.tier1

REPO = pathlib.Path(__file__).resolve().parents[2]
SRC = REPO / "src"
BENCHMARKS = REPO / "benchmarks"

#: Module paths (relative to src/, posix form) allowed to touch
#: ambient time or randomness. Currently none — add an entry only
#: with a comment justifying why injection is impossible there.
ALLOWED = set()

FORBIDDEN = [
    (re.compile(r"\btime\.time\(\)"), "ambient wall clock time.time()"),
    # Calls only: `clock=time.perf_counter` default *references* stay
    # legal — they are the injection points the lint protects.
    (re.compile(r"\bperf_counter\(\)"),
     "ambient perf_counter() call (inject a clock)"),
    (re.compile(r"\brandom\.random\(\)"), "unseeded random.random()"),
    (re.compile(r"\brandom\.(randint|randrange|choice|choices|shuffle|"
                r"uniform|sample)\("),
     "module-level random.* draw (use a seeded random.Random)"),
    (re.compile(r"\bdatetime\.now\(\)|\bdatetime\.utcnow\(\)"),
     "ambient datetime.now()/utcnow()"),
    (re.compile(r"\bnp\.random\.(random|rand|randint|randn|choice|"
                r"shuffle|uniform)\("),
     "legacy global numpy RNG (use np.random.default_rng(seed))"),
]


def scan(root, forbidden, allowed=(), prefix=""):
    offenders = []
    for path in sorted(root.rglob("*.py")):
        rel = path.relative_to(root).as_posix()
        if rel in allowed:
            continue
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            code = line.split("#", 1)[0]
            for pattern, why in forbidden:
                if pattern.search(code):
                    offenders.append(
                        f"{prefix}{rel}:{lineno}: {why}: {line.strip()}")
    return offenders


def test_src_has_no_ambient_time_or_randomness():
    offenders = scan(SRC, FORBIDDEN, allowed=ALLOWED, prefix="src/")
    assert not offenders, (
        "nondeterministic call sites (inject a clock / seed an RNG):\n"
        + "\n".join(offenders)
    )


#: The chaos layer gets a stricter bar than the rest of src: a chaos
#: run's whole value is byte-identical replays, so *any* ``time.`` or
#: ``random.`` usage is suspect, not just the ambient calls above.
#: ``plan.py`` alone may construct seeded ``random.Random`` instances —
#: it is the single randomness root every other chaos module draws
#: from (via ``ChaosPlan.rng``).
CHAOS_FORBIDDEN = [
    (re.compile(r"\btime\.\w+"),
     "chaos modules must use the harness VirtualClock, never time.*"),
    (re.compile(r"\brandom\.\w+"),
     "chaos randomness flows from ChaosPlan.rng (plan.py) only"),
]


def test_chaos_layer_has_no_clock_or_random_at_all():
    chaos = SRC / "repro" / "chaos"
    offenders = []
    for line in scan(chaos, CHAOS_FORBIDDEN, prefix="src/repro/chaos/"):
        # plan.py is the sanctioned randomness root: seeded
        # random.Random construction is legal there, nothing else is.
        if line.startswith("src/repro/chaos/plan.py") and \
                "random.Random" in line:
            continue
        offenders.append(line)
    assert not offenders, (
        "chaos layer must be replayable — route time through the "
        "VirtualClock and randomness through ChaosPlan.rng:\n"
        + "\n".join(offenders)
    )


#: The feedback store gets the same total ban as the chaos layer: a
#: StatsStore snapshot must replay byte-identically (frozen runs pin
#: plans), so the module may hold no clock and draw no randomness at
#: all — means come from operator counters, timings from the tracer.
STATS_FORBIDDEN = [
    (re.compile(r"\btime\.\w+"),
     "stats feedback must be clock-free (timings arrive via profiles)"),
    (re.compile(r"\brandom\.\w+"),
     "stats feedback must be deterministic (no randomness at all)"),
]


def test_stats_store_has_no_clock_or_random_at_all():
    stats_py = SRC / "repro" / "sparql" / "stats.py"
    offenders = []
    for lineno, line in enumerate(stats_py.read_text().splitlines(), 1):
        code = line.split("#", 1)[0]
        for pattern, why in STATS_FORBIDDEN:
            if pattern.search(code):
                offenders.append(
                    f"src/repro/sparql/stats.py:{lineno}: {why}: "
                    f"{line.strip()}")
    assert not offenders, (
        "the feedback store must replay deterministically:\n"
        + "\n".join(offenders)
    )


#: The SLO engine, query log and flight recorder get the chaos-layer
#: total ban: their whole contract is byte-stable reports and
#: same-seed-identical incident bundles, so time arrives only through
#: injected clocks / explicit ``at_s`` and sampling only through the
#: seeded crc32 hash — no ``time.*`` or ``random.*`` at all.
OBSERVABILITY_TOTAL_BAN = ("slo.py", "qlog.py", "recorder.py")

OBS_FORBIDDEN = [
    (re.compile(r"\btime\.\w+"),
     "observability modules take an injected clock or explicit at_s"),
    (re.compile(r"\brandom\.\w+"),
     "sampling decisions must be seeded-hash based, never random.*"),
]


def test_slo_qlog_recorder_have_no_clock_or_random_at_all():
    base = SRC / "repro" / "observability"
    offenders = []
    for name in OBSERVABILITY_TOTAL_BAN:
        path = base / name
        assert path.exists(), f"expected module {path} missing"
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            code = line.split("#", 1)[0]
            for pattern, why in OBS_FORBIDDEN:
                if pattern.search(code):
                    offenders.append(
                        f"src/repro/observability/{name}:{lineno}: "
                        f"{why}: {line.strip()}")
    assert not offenders, (
        "SLO/qlog/recorder must replay deterministically:\n"
        + "\n".join(offenders)
    )


def test_benchmarks_have_no_ambient_time_or_randomness():
    """Benchmarks measure with perf_counter() — that is their
    instrument, so the perf_counter rule is lifted there — but their
    *workloads* must stay reproducible: no wall clocks, no unseeded
    randomness."""
    forbidden = [(pattern, why) for pattern, why in FORBIDDEN
                 if "perf_counter" not in pattern.pattern]
    offenders = scan(BENCHMARKS, forbidden, prefix="benchmarks/")
    assert not offenders, (
        "nondeterministic benchmark workloads (seed the RNG, inject "
        "a clock):\n" + "\n".join(offenders)
    )
