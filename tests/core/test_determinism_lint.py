"""Determinism lint: no ambient clocks or unseeded randomness in src.

Every timing in the library goes through an injected ``clock``
callable (defaulting to ``time.monotonic``) and every random draw
through a seeded ``random.Random`` / ``numpy`` generator — that is
what makes fault injection, retry jitter, the equivalence suite, and
the benchmarks reproducible. This lint greps the source tree for the
ambient alternatives so a new call site fails CI instead of silently
introducing nondeterminism.
"""

import pathlib
import re

import pytest

pytestmark = pytest.mark.tier1

REPO = pathlib.Path(__file__).resolve().parents[2]
SRC = REPO / "src"
BENCHMARKS = REPO / "benchmarks"

#: Module paths (relative to src/, posix form) allowed to touch
#: ambient time or randomness. Currently none — add an entry only
#: with a comment justifying why injection is impossible there.
ALLOWED = set()

FORBIDDEN = [
    (re.compile(r"\btime\.time\(\)"), "ambient wall clock time.time()"),
    # Calls only: `clock=time.perf_counter` default *references* stay
    # legal — they are the injection points the lint protects.
    (re.compile(r"\bperf_counter\(\)"),
     "ambient perf_counter() call (inject a clock)"),
    (re.compile(r"\brandom\.random\(\)"), "unseeded random.random()"),
    (re.compile(r"\brandom\.(randint|randrange|choice|choices|shuffle|"
                r"uniform|sample)\("),
     "module-level random.* draw (use a seeded random.Random)"),
    (re.compile(r"\bdatetime\.now\(\)|\bdatetime\.utcnow\(\)"),
     "ambient datetime.now()/utcnow()"),
    (re.compile(r"\bnp\.random\.(random|rand|randint|randn|choice|"
                r"shuffle|uniform)\("),
     "legacy global numpy RNG (use np.random.default_rng(seed))"),
]


def scan(root, forbidden, allowed=(), prefix=""):
    offenders = []
    for path in sorted(root.rglob("*.py")):
        rel = path.relative_to(root).as_posix()
        if rel in allowed:
            continue
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            code = line.split("#", 1)[0]
            for pattern, why in forbidden:
                if pattern.search(code):
                    offenders.append(
                        f"{prefix}{rel}:{lineno}: {why}: {line.strip()}")
    return offenders


def test_src_has_no_ambient_time_or_randomness():
    offenders = scan(SRC, FORBIDDEN, allowed=ALLOWED, prefix="src/")
    assert not offenders, (
        "nondeterministic call sites (inject a clock / seed an RNG):\n"
        + "\n".join(offenders)
    )


#: The chaos layer gets a stricter bar than the rest of src: a chaos
#: run's whole value is byte-identical replays, so *any* ``time.`` or
#: ``random.`` usage is suspect, not just the ambient calls above.
#: ``plan.py`` alone may construct seeded ``random.Random`` instances —
#: it is the single randomness root every other chaos module draws
#: from (via ``ChaosPlan.rng``).
CHAOS_FORBIDDEN = [
    (re.compile(r"\btime\.\w+"),
     "chaos modules must use the harness VirtualClock, never time.*"),
    (re.compile(r"\brandom\.\w+"),
     "chaos randomness flows from ChaosPlan.rng (plan.py) only"),
]


def test_chaos_layer_has_no_clock_or_random_at_all():
    chaos = SRC / "repro" / "chaos"
    offenders = []
    for line in scan(chaos, CHAOS_FORBIDDEN, prefix="src/repro/chaos/"):
        # plan.py is the sanctioned randomness root: seeded
        # random.Random construction is legal there, nothing else is.
        if line.startswith("src/repro/chaos/plan.py") and \
                "random.Random" in line:
            continue
        offenders.append(line)
    assert not offenders, (
        "chaos layer must be replayable — route time through the "
        "VirtualClock and randomness through ChaosPlan.rng:\n"
        + "\n".join(offenders)
    )


#: The feedback store gets the same total ban as the chaos layer: a
#: StatsStore snapshot must replay byte-identically (frozen runs pin
#: plans), so the module may hold no clock and draw no randomness at
#: all — means come from operator counters, timings from the tracer.
STATS_FORBIDDEN = [
    (re.compile(r"\btime\.\w+"),
     "stats feedback must be clock-free (timings arrive via profiles)"),
    (re.compile(r"\brandom\.\w+"),
     "stats feedback must be deterministic (no randomness at all)"),
]


def test_stats_store_has_no_clock_or_random_at_all():
    stats_py = SRC / "repro" / "sparql" / "stats.py"
    offenders = []
    for lineno, line in enumerate(stats_py.read_text().splitlines(), 1):
        code = line.split("#", 1)[0]
        for pattern, why in STATS_FORBIDDEN:
            if pattern.search(code):
                offenders.append(
                    f"src/repro/sparql/stats.py:{lineno}: {why}: "
                    f"{line.strip()}")
    assert not offenders, (
        "the feedback store must replay deterministically:\n"
        + "\n".join(offenders)
    )


#: The SLO engine, query log and flight recorder get the chaos-layer
#: total ban: their whole contract is byte-stable reports and
#: same-seed-identical incident bundles, so time arrives only through
#: injected clocks / explicit ``at_s`` and sampling only through the
#: seeded crc32 hash — no ``time.*`` or ``random.*`` at all.
OBSERVABILITY_TOTAL_BAN = ("slo.py", "qlog.py", "recorder.py")

OBS_FORBIDDEN = [
    (re.compile(r"\btime\.\w+"),
     "observability modules take an injected clock or explicit at_s"),
    (re.compile(r"\brandom\.\w+"),
     "sampling decisions must be seeded-hash based, never random.*"),
]


def test_slo_qlog_recorder_have_no_clock_or_random_at_all():
    base = SRC / "repro" / "observability"
    offenders = []
    for name in OBSERVABILITY_TOTAL_BAN:
        path = base / name
        assert path.exists(), f"expected module {path} missing"
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            code = line.split("#", 1)[0]
            for pattern, why in OBS_FORBIDDEN:
                if pattern.search(code):
                    offenders.append(
                        f"src/repro/observability/{name}:{lineno}: "
                        f"{why}: {line.strip()}")
    assert not offenders, (
        "SLO/qlog/recorder must replay deterministically:\n"
        + "\n".join(offenders)
    )


#: The sharded data plane gets the chaos-layer total ban: shard scans
#: must merge byte-identically at any shard x worker count and spill
#: files must hash identically across runs, so ``repro.rdf.shards``
#: and the spill join may hold no clock and draw no randomness at all
#: (routing is a splitmix64 subject hash, spill partitioning a crc32).
DATA_PLANE_TOTAL_BAN = ("repro/rdf/shards.py", "repro/sparql/spill.py")

DATA_PLANE_FORBIDDEN = [
    (re.compile(r"\btime\.\w+"),
     "the sharded data plane is clock-free (timings live in the tracer)"),
    (re.compile(r"\brandom\.\w+"),
     "shard routing / spill partitioning use stable hashes, never "
     "random.*"),
]


def test_sharded_data_plane_has_no_clock_or_random_at_all():
    offenders = []
    for rel in DATA_PLANE_TOTAL_BAN:
        path = SRC / rel
        assert path.exists(), f"expected module {path} missing"
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            code = line.split("#", 1)[0]
            for pattern, why in DATA_PLANE_FORBIDDEN:
                if pattern.search(code):
                    offenders.append(
                        f"src/{rel}:{lineno}: {why}: {line.strip()}")
    assert not offenders, (
        "shard scans and spill joins must replay byte-identically:\n"
        + "\n".join(offenders)
    )


#: Scan manifest: every module under src/repro must appear in exactly
#: one tier. STANDARD_TIER gets the ambient-call scan (FORBIDDEN
#: above); TOTAL_TIER gets a total ``time.*``/``random.*`` ban through
#: one of the dedicated tests in this file. A module on disk that is
#: in neither set fails the manifest test below — new modules must be
#: classified here, deliberately, instead of silently inheriting the
#: weaker tier.
TOTAL_TIER = (
    {
        # chaos layer (test_chaos_layer_has_no_clock_or_random_at_all)
        "repro/chaos/__init__.py", "repro/chaos/harness.py",
        "repro/chaos/invariants.py", "repro/chaos/plan.py",
        # feedback store (test_stats_store_has_no_clock_or_random_at_all)
        "repro/sparql/stats.py",
    }
    # SLO/qlog/recorder (test_slo_qlog_recorder_...)
    | {f"repro/observability/{name}" for name in OBSERVABILITY_TOTAL_BAN}
    # sharded data plane (test_sharded_data_plane_...)
    | set(DATA_PLANE_TOTAL_BAN)
)

STANDARD_TIER = {
    "repro/__init__.py", "repro/catalog/__init__.py",
    "repro/catalog/acdd.py", "repro/catalog/cms.py",
    "repro/catalog/drs.py", "repro/catalog/translate.py",
    "repro/cloud/__init__.py", "repro/cloud/kubernetes.py",
    "repro/cloud/platform.py", "repro/cloud/sandbox.py",
    "repro/core/__init__.py", "repro/core/applab.py",
    "repro/core/casestudy.py", "repro/core/cli.py",
    "repro/core/ontologies.py", "repro/data/__init__.py",
    "repro/data/generators.py", "repro/data/paris.py", "repro/errors.py",
    "repro/geographica/__init__.py", "repro/geographica/harness.py",
    "repro/geographica/queries.py", "repro/geographica/workload.py",
    "repro/geometry/__init__.py", "repro/geometry/base.py",
    "repro/geometry/crs.py", "repro/geometry/geojson.py",
    "repro/geometry/index.py", "repro/geometry/ops.py",
    "repro/geometry/wkt.py", "repro/geotriples/__init__.py",
    "repro/geotriples/generator.py", "repro/geotriples/processor.py",
    "repro/geotriples/rml.py", "repro/governance/__init__.py",
    "repro/governance/admission.py", "repro/governance/budget.py",
    "repro/governance/stats.py", "repro/interlink/__init__.py",
    "repro/interlink/jedai.py", "repro/interlink/silk.py",
    "repro/madis/__init__.py", "repro/madis/engine.py",
    "repro/madis/opendap_vt.py", "repro/madis/udfs.py",
    "repro/observability/__init__.py", "repro/observability/bridge.py",
    "repro/observability/labeled.py", "repro/observability/metrics.py",
    "repro/observability/trace.py", "repro/ontop/__init__.py",
    "repro/ontop/mapping.py", "repro/ontop/obda.py",
    "repro/ontop/opendap_adapter.py", "repro/ontop/r2rml_adapter.py",
    "repro/ontop/raster.py", "repro/opendap/__init__.py",
    "repro/opendap/client.py", "repro/opendap/constraints.py",
    "repro/opendap/das.py", "repro/opendap/dds.py",
    "repro/opendap/dods.py", "repro/opendap/model.py",
    "repro/opendap/ncml.py", "repro/opendap/server.py",
    "repro/opendap/subset.py", "repro/parallel/__init__.py",
    "repro/parallel/partition.py", "repro/parallel/pool.py",
    "repro/rdf/__init__.py", "repro/rdf/crawler.py",
    "repro/rdf/dictionary.py", "repro/rdf/graph.py",
    "repro/rdf/namespace.py", "repro/rdf/ntriples.py",
    "repro/rdf/rdfxml.py", "repro/rdf/reasoner.py", "repro/rdf/terms.py",
    "repro/rdf/turtle.py", "repro/resilience/__init__.py",
    "repro/resilience/breaker.py", "repro/resilience/endpoint_pool.py",
    "repro/resilience/faults.py", "repro/resilience/policy.py",
    "repro/resilience/retry_budget.py", "repro/resilience/stats.py",
    "repro/schemaorg/__init__.py", "repro/schemaorg/annotate.py",
    "repro/schemaorg/search.py", "repro/sdl/__init__.py",
    "repro/sdl/analytics.py", "repro/sdl/auth.py", "repro/sdl/library.py",
    "repro/sdl/mapsapi.py", "repro/service/__init__.py",
    "repro/service/api.py", "repro/service/errors.py",
    "repro/service/plancache.py", "repro/service/scheduler.py",
    "repro/service/service.py", "repro/service/tenancy.py",
    "repro/service/workload.py", "repro/sextant/__init__.py",
    "repro/sextant/core.py", "repro/sextant/formats.py",
    "repro/sextant/map_ontology.py", "repro/sextant/svg.py",
    "repro/sparql/__init__.py", "repro/sparql/ast.py",
    "repro/sparql/evaluator.py", "repro/sparql/federation.py",
    "repro/sparql/functions.py", "repro/sparql/operators.py",
    "repro/sparql/parser.py", "repro/sparql/plan.py",
    "repro/sparql/prepared.py", "repro/sparql/results.py",
    "repro/sparql/tokenizer.py", "repro/sparql/update.py",
    "repro/strabon/__init__.py", "repro/strabon/store.py",
    "repro/vito/__init__.py", "repro/vito/archive.py", "repro/vito/mep.py",
    "repro/vito/products.py",
}


def test_every_src_module_is_in_the_scan_manifest():
    on_disk = {p.relative_to(SRC).as_posix()
               for p in (SRC / "repro").rglob("*.py")}
    manifest = STANDARD_TIER | TOTAL_TIER
    overlap = STANDARD_TIER & TOTAL_TIER
    assert not overlap, (
        "modules listed in both lint tiers: " + ", ".join(sorted(overlap)))
    missing = on_disk - manifest
    assert not missing, (
        "src/repro modules missing from the determinism-lint scan "
        "manifest — add each to STANDARD_TIER or TOTAL_TIER in "
        "tests/core/test_determinism_lint.py:\n  "
        + "\n  ".join(sorted(missing))
    )
    stale = manifest - on_disk
    assert not stale, (
        "scan manifest names modules that no longer exist:\n  "
        + "\n  ".join(sorted(stale))
    )


def test_benchmarks_have_no_ambient_time_or_randomness():
    """Benchmarks measure with perf_counter() — that is their
    instrument, so the perf_counter rule is lifted there — but their
    *workloads* must stay reproducible: no wall clocks, no unseeded
    randomness."""
    forbidden = [(pattern, why) for pattern, why in FORBIDDEN
                 if "perf_counter" not in pattern.pattern]
    offenders = scan(BENCHMARKS, forbidden, prefix="benchmarks/")
    assert not offenders, (
        "nondeterministic benchmark workloads (seed the RNG, inject "
        "a clock):\n" + "\n".join(offenders)
    )
