"""Experiment E1: structural checks of the Figure 2/3 ontologies."""

from repro.core import (
    CORINE_NOMENCLATURE,
    URBAN_ATLAS_NOMENCLATURE,
    all_ontologies,
    corine_class_iri,
    corine_ontology,
    gadm_ontology,
    lai_ontology,
    osm_ontology,
    urban_atlas_ontology,
)
from repro.rdf import (
    CLC,
    GADM,
    GEO,
    LAI,
    OSM,
    OWL,
    QB,
    RDF,
    RDFS,
    SF,
    TIME,
    UA,
    XSD,
)


class TestLaiOntology:
    """Figure 2: lai:Observation reusing qb, geo/sf, time, xsd."""

    def test_observation_subclass_of_qb(self):
        g = lai_ontology()
        assert (LAI.Observation, RDFS.subClassOf, QB.Observation) in g

    def test_lai_property_range_float(self):
        g = lai_ontology()
        assert g.value(LAI.lai, RDFS.range) == XSD.float
        assert g.value(LAI.lai, RDFS.domain) == LAI.Observation

    def test_time_property(self):
        g = lai_ontology()
        assert g.value(TIME.hasTime, RDFS.range) == XSD.dateTime

    def test_geometry_chain(self):
        g = lai_ontology()
        # geo:hasGeometry keeps its GeoSPARQL axioms; the Figure-2
        # "Observation → sf:Point" arrow is a default-geometry hint.
        assert g.value(GEO.hasGeometry, RDFS.range) == GEO.Geometry
        assert g.value(GEO.hasGeometry, RDFS.domain) == GEO.Feature
        assert g.value(LAI.Observation, GEO.defaultGeometry) == SF.Point
        assert (SF.Point, RDFS.subClassOf, GEO.Geometry) in g


class TestGadmOntology:
    """Figure 3: gadm:AdministrativeUnit extending GeoSPARQL."""

    def test_unit_is_geo_feature(self):
        g = gadm_ontology()
        assert (GADM.AdministrativeUnit, RDFS.subClassOf, GEO.Feature) in g

    def test_name_property(self):
        g = gadm_ontology()
        assert g.value(GADM.hasName, RDFS.range) == XSD.string

    def test_hierarchy_property(self):
        g = gadm_ontology()
        assert g.value(GADM.isWithin, RDFS.range) == \
            GADM.AdministrativeUnit


class TestCorineOntology:
    def test_44_level3_classes(self):
        level3 = [c for c in CORINE_NOMENCLATURE if len(c) == 3]
        assert len(level3) == 44

    def test_three_level_hierarchy(self):
        assert len([c for c in CORINE_NOMENCLATURE if len(c) == 1]) == 5
        assert len([c for c in CORINE_NOMENCLATURE if len(c) == 2]) == 15

    def test_paper_elements_present(self):
        g = corine_ontology()
        from repro.rdf import INSPIRE

        assert (CLC.CorineArea, RDFS.subClassOf,
                INSPIRE.LandCoverUnit) in g
        assert g.value(CLC.hasCorineValue, RDFS.domain) == CLC.CorineArea
        assert g.value(CLC.hasCorineValue, RDFS.range) == CLC.CorineValue

    def test_forests_under_corine_value(self):
        """clc:Forests is a (transitive) subclass of clc:CorineValue."""
        g = corine_ontology()
        forests = corine_class_iri("31")
        assert forests == CLC.Forests
        parent = g.value(forests, RDFS.subClassOf)
        grandparent = g.value(parent, RDFS.subClassOf)
        assert grandparent == CLC.CorineValue

    def test_green_urban_areas_code(self):
        g = corine_ontology()
        green = corine_class_iri("141")
        assert str(green).endswith("GreenUrbanAreas")
        assert g.value(green, CLC.hasCode).lexical == "141"

    def test_class_tree_queryable(self):
        g = corine_ontology()
        res = g.query(
            """
            PREFIX clc: <http://www.app-lab.eu/corine/>
            PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>
            SELECT (COUNT(?c) AS ?n) WHERE {
              ?c rdfs:subClassOf ?mid . ?mid rdfs:subClassOf ?top .
              ?top rdfs:subClassOf clc:CorineValue .
            }
            """
        )
        assert res.rows[0]["n"].value == 44


class TestUrbanAtlasOntology:
    def test_17_urban_10_rural(self):
        urban = [c for c, (__, kind) in URBAN_ATLAS_NOMENCLATURE.items()
                 if kind == "urban"]
        rural = [c for c, (__, kind) in URBAN_ATLAS_NOMENCLATURE.items()
                 if kind == "rural"]
        assert len(urban) == 17
        assert len(rural) == 10

    def test_classes_partitioned(self):
        g = urban_atlas_ontology()
        urban_classes = list(g.subjects(RDFS.subClassOf, UA.UrbanClass))
        rural_classes = list(g.subjects(RDFS.subClassOf, UA.RuralClass))
        assert len(urban_classes) == 17
        assert len(rural_classes) == 10

    def test_discontinuous_very_low_density_present(self):
        """The example class the paper cites."""
        labels = {
            label for __, (label, kind) in URBAN_ATLAS_NOMENCLATURE.items()
        }
        assert any("very low density urban fabric" in l for l in labels)


class TestOsmOntology:
    def test_poi_types(self):
        g = osm_ontology()
        parks = (OSM.park, RDF.type, OSM.POIType)
        assert parks in g

    def test_poi_subclass_feature(self):
        g = osm_ontology()
        assert (OSM.POI, RDFS.subClassOf, OSM.Feature) in g


def test_union_ontology():
    g = all_ontologies()
    assert len(g) > 300
    classes = set(g.subjects(RDF.type, OWL.Class))
    assert LAI.Observation in classes
    assert CLC.CorineArea in classes
    assert UA.UrbanAtlasArea in classes
