"""Experiments E2/E3/E9: the greenness-of-Paris case study."""

import math

import pytest

from repro.core import GreennessCaseStudy, PREFIXES
from repro.rdf import CLC, GADM, LAI, OSM, RDF, UA


@pytest.fixture(scope="module")
def study():
    return GreennessCaseStudy(n_dekads=2, cloud_fraction=0.0)


@pytest.fixture(scope="module")
def store(study):
    return study.materialized_store()


class TestMaterializedWorkflow:
    def test_store_contents(self, store):
        assert len(list(store.subjects(RDF.type, OSM.POI))) == 17
        assert len(list(store.subjects(RDF.type, CLC.CorineArea))) == 13
        assert len(list(store.subjects(RDF.type, UA.UrbanAtlasArea))) == 13
        assert len(list(store.subjects(RDF.type,
                                       GADM.AdministrativeUnit))) == 23
        observations = list(store.subjects(RDF.type, LAI.Observation))
        assert len(observations) == 2 * 24 * 12  # 2 dekads, full grid

    def test_listing1_returns_park_lai(self, study, store):
        result = study.run_listing1(store)
        assert len(result) == 8  # 4 grid points x 2 dekads
        values = [row["lai"].value for row in result]
        assert all(v > 0 for v in values)

    def test_listing1_park_values_high(self, study, store):
        """Bois de Boulogne LAI beats the citywide mean (greenness)."""
        result = study.run_listing1(store)
        park_mean = sum(r["lai"].value for r in result) / len(result)
        overall = store.query(
            PREFIXES + "SELECT (AVG(?v) AS ?mean) WHERE { ?o lai:lai ?v }"
        )
        assert park_mean > overall.rows[0]["mean"].value

    def test_park_vs_industrial(self, study, store):
        green, industrial = study.park_vs_industrial_lai(store)
        assert green > industrial * 1.5

    def test_gadm_queryable(self, store):
        result = store.query(
            PREFIXES + """
            SELECT ?name WHERE {
              ?u a gadm:AdministrativeUnit ; gadm:hasName ?name ;
                 gadm:hasLevel 2 .
            }
            """
        )
        assert [r["name"].lexical for r in result] == ["Paris"]


class TestVirtualWorkflow:
    def test_listing3(self, study):
        result = study.run_listing3()
        assert len(result) == 2 * 24 * 12
        row = result.rows[0]
        assert row["lai"].value > 0
        assert "POINT" in row["wkt"].lexical

    def test_virtual_matches_materialized_counts(self, study, store):
        virtual = study.run_listing3()
        materialized = store.query(
            PREFIXES + "SELECT ?o WHERE { ?o lai:lai ?v }"
        )
        assert len(virtual) == len(materialized)

    def test_window_cache(self, study):
        clock = {"now": 0.0}
        engine, operator = study.virtual_endpoint(
            window_minutes=10, clock=lambda: clock["now"]
        )
        study.run_listing3(engine)
        study.run_listing3(engine)
        assert operator.server_calls == 1
        clock["now"] = 11 * 60
        study.run_listing3(engine)
        assert operator.server_calls == 2


class TestFigure4:
    def test_map_layers(self, study, store):
        tm = study.build_map(store)
        names = [layer.name for layer in tm.layers]
        assert names == [
            "CORINE land cover", "Urban Atlas", "OSM parks",
            "Administrative areas", "LAI observations",
        ]

    def test_timeline_has_dekads(self, study, store):
        tm = study.build_map(store)
        assert len(tm.timeline()) == 2

    def test_svg_renders(self, study, store):
        tm = study.build_map(store)
        svg = tm.to_svg(width=600, height=400)
        assert svg.startswith("<svg")
        assert 'id="layer-OSM-parks"' in svg

    def test_html_has_slider(self, study, store):
        tm = study.build_map(store)
        html = tm.to_html(width=400, height=300)
        assert "timeslider" in html

    def test_map_ontology_roundtrip(self, study, store):
        from repro.sextant import map_descriptor_from_rdf, map_to_rdf

        tm = study.build_map(store)
        g = map_to_rdf(tm, "http://app-lab.eu/maps/greenness")
        descriptor = map_descriptor_from_rdf(
            g, "http://app-lab.eu/maps/greenness"
        )
        assert len(descriptor["layers"]) == 5
        assert descriptor["layers"][4]["source"]["type"] == "sparql"
