"""AppLab facade integration tests."""

from datetime import date

import pytest

from repro.core import AppLab
from repro.sdl import AccessDenied
from repro.vito import LAI_SPEC, NDVI_SPEC, dekad_dates


@pytest.fixture(scope="module")
def lab():
    lab = AppLab()
    lab.publish_product(LAI_SPEC, dekad_dates(date(2018, 6, 1), 2),
                        cloud_fraction=0.0)
    lab.publish_product(NDVI_SPEC, dekad_dates(date(2018, 6, 1), 2),
                        cloud_fraction=0.0)
    return lab


def test_publish_exposes_dap_and_sdl(lab):
    assert lab.products() == ["LAI", "NDVI"]
    assert lab.product_url("LAI").startswith("dap://vito.applab.eu/")
    # SDL sees the product but requires a token
    with pytest.raises(AccessDenied):
        lab.sdl.characteristics("LAI")


def test_virtual_endpoint(lab):
    engine, operator = lab.virtual_endpoint("LAI")
    result = engine.query(
        "PREFIX lai: <http://www.app-lab.eu/lai/> "
        "SELECT (COUNT(*) AS ?n) WHERE { ?o lai:lai ?v }"
    )
    assert result.rows[0]["n"].value == 2 * 24 * 12
    assert operator.server_calls == 1


def test_materialize(lab):
    store = lab.materialize("NDVI")
    result = store.query(
        "PREFIX lai: <http://www.app-lab.eu/lai/> "
        "SELECT (COUNT(*) AS ?n) WHERE { ?o lai:lai ?v }"
    )
    assert result.rows[0]["n"].value == 2 * 24 * 12
    assert store.indexed_geometry_count > 0


def test_annotate_and_search(lab):
    lab.annotate_products()
    yes, hits = lab.search.answer("any vegetation dataset?")
    assert yes
    assert len(lab.search.search("", provider="VITO")) == 2


def test_metadata_harvest_and_drs(lab):
    harvested = lab.harvest_metadata()
    assert set(harvested) == {"Copernicus/LAI", "Copernicus/NDVI"}
    report = lab.validate_drs()
    assert report.ok


def test_maps_api_with_token(lab):
    api, token = lab.maps_api("dev@appcamp.eu")
    meta = api.get_metadata("LAI")
    assert meta["time_steps"] == 2
    assert lab.auth.usage_by_user("dev@appcamp.eu")["LAI"] >= 1


def test_release_and_deploy(lab):
    deployments = lab.release_and_deploy("1.0.0")
    assert len(deployments) == 6
    pods = lab.cluster.pods_of("ramani-analytics")
    assert len(pods) == 2
    report = lab.platform.status_report()
    assert report["terradue"]["deployments"] == 6


def test_cli_quickstart(capsys):
    from repro.core.cli import main

    assert main(["1"]) == 0
    out = capsys.readouterr().out
    assert "published LAI" in out
    assert "virtual endpoint" in out
    assert "dataset search: yes" in out
    assert "DRS validation: PASS" in out
