"""schema.org annotation + dataset search tests (experiment E10)."""

import json

import pytest

from repro.geometry import Point, Polygon
from repro.rdf import RDF, SDO, SDOEO
from repro.schemaorg import (
    DatasetAnnotation,
    DatasetSearchEngine,
    annotation_from_dap,
    from_jsonld,
    to_jsonld,
    to_rdf,
)


def corine_annotation():
    return DatasetAnnotation(
        identifier="http://data.example/corine2012",
        name="CORINE Land Cover 2012",
        description="Land cover and land use inventory over 39 European "
                    "countries in 44 classes",
        keywords=["land cover", "land use", "CORINE"],
        provider="European Environment Agency",
        license="https://creativecommons.org/licenses/by/4.0/",
        url="https://land.copernicus.eu/pan-european/corine-land-cover",
        spatial=Polygon.box(-10.0, 35.0, 30.0, 60.0),
        temporal_start="2011-01-01",
        temporal_end="2012-12-31",
        eo={"productType": "land cover", "thematicArea": "land",
            "resolution": "100m"},
    )


def lai_annotation():
    return DatasetAnnotation(
        identifier="http://data.example/lai",
        name="Copernicus Global Land LAI",
        description="Leaf Area Index 10-daily composites from PROBA-V",
        keywords=["LAI", "vegetation", "leaf area index"],
        provider="VITO",
        spatial=Polygon.box(-180, -60, 180, 80),
        temporal_start="2014-01-01",
        eo={"platform": "PROBA-V", "processingLevel": "L3",
            "productType": "LAI", "thematicArea": "land"},
    )


class TestAnnotations:
    def test_jsonld_structure(self):
        doc = to_jsonld(corine_annotation())
        assert doc["@type"] == "eo:EODataset"
        assert doc["provider"]["name"] == "European Environment Agency"
        assert doc["spatialCoverage"]["geo"]["box"] == "35.0 -10.0 60.0 30.0"
        assert doc["temporalCoverage"] == "2011-01-01/2012-12-31"
        assert doc["eo:productType"] == "land cover"
        json.dumps(doc)  # must be serializable

    def test_plain_dataset_without_eo(self):
        ann = DatasetAnnotation("http://x", "plain")
        assert to_jsonld(ann)["@type"] == "Dataset"

    def test_jsonld_roundtrip(self):
        original = corine_annotation()
        back = from_jsonld(to_jsonld(original))
        assert back.name == original.name
        assert back.keywords == original.keywords
        assert back.provider == original.provider
        assert back.eo == original.eo
        assert back.spatial.bounds == original.spatial.bounds
        assert back.temporal_start == "2011-01-01"

    def test_open_ended_temporal(self):
        ann = lai_annotation()
        doc = to_jsonld(ann)
        assert doc["temporalCoverage"] == "2014-01-01/.."
        assert from_jsonld(doc).temporal_end is None

    def test_unknown_eo_property_rejected(self):
        with pytest.raises(ValueError):
            DatasetAnnotation("http://x", "bad", eo={"warpDrive": "yes"})

    def test_to_rdf(self):
        g = to_rdf(corine_annotation())
        subject = next(g.subjects(RDF.type, SDO.Dataset))
        assert (subject, RDF.type, SDOEO.EODataset) in g
        assert g.value(subject, SDOEO.productType).lexical == "land cover"
        res = g.query(
            "PREFIX sdo: <https://schema.org/> "
            "SELECT ?name WHERE { ?d a sdo:Dataset ; sdo:name ?name }"
        )
        assert res.rows[0]["name"].lexical == "CORINE Land Cover 2012"

    def test_annotation_from_dap(self):
        attrs = {
            "title": "LAI", "summary": "leaf area", "institution": "VITO",
            "keywords": "LAI, vegetation",
            "time_coverage_start": "2018-06-01",
        }
        ann = annotation_from_dap("dap://vito/LAI", attrs,
                                  spatial=Polygon.box(2, 48, 3, 49),
                                  eo={"platform": "PROBA-V"})
        assert ann.name == "LAI"
        assert ann.keywords == ["LAI", "vegetation"]
        assert ann.eo["platform"] == "PROBA-V"


class TestSearch:
    @pytest.fixture
    def engine(self):
        engine = DatasetSearchEngine()
        engine.index(corine_annotation())
        engine.index(lai_annotation())
        engine.index(
            DatasetAnnotation(
                identifier="http://data.example/urbanatlas",
                name="Urban Atlas 2012",
                description="Land use for European urban areas",
                keywords=["land use", "urban"],
                provider="European Environment Agency",
                spatial=Polygon.box(-10.0, 35.0, 30.0, 60.0),
                eo={"thematicArea": "land"},
            )
        )
        return engine

    def test_keyword_search(self, engine):
        hits = engine.search("land cover")
        assert hits
        assert hits[0].annotation.name == "CORINE Land Cover 2012"

    def test_provider_filter(self, engine):
        hits = engine.search("land", provider="European Environment Agency")
        names = {h.annotation.name for h in hits}
        assert "Copernicus Global Land LAI" not in names
        assert len(names) == 2

    def test_spatial_filter(self, engine):
        # Torino is inside the pan-European box; somewhere mid-Pacific not
        hits = engine.search("land", covering=Point(7.686, 45.07))
        assert len(hits) >= 2
        # Antarctica is outside even the global LAI coverage (-60..80)
        hits = engine.search("land cover", covering=Point(-150.0, -85.0))
        assert hits == []

    def test_jsonld_indexing(self, engine):
        engine.index_jsonld(to_jsonld(
            DatasetAnnotation("http://x/burnt", "Burnt Area 300m",
                              keywords=["fire", "burnt area"])
        ))
        assert engine.search("burnt")[0].annotation.name == "Burnt Area 300m"

    def test_the_torino_question(self, engine):
        """The paper's flagship question answers 'yes' with CORINE."""
        yes, hits = engine.answer(
            "Is there a land cover dataset produced by the European "
            "Environment Agency covering the area of Torino, Italy?"
        )
        assert yes
        assert hits[0].annotation.name == "CORINE Land Cover 2012"

    def test_negative_question(self, engine):
        yes, hits = engine.answer(
            "Is there an ocean salinity dataset covering Torino?"
        )
        assert not yes

    def test_question_without_place(self, engine):
        yes, hits = engine.answer("any vegetation dataset?")
        assert yes
        assert hits[0].annotation.name == "Copernicus Global Land LAI"
