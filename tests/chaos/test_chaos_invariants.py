"""The acceptance-scale chaos run and its invariant suite.

One seeded run — >= 500 clients, all seven fault kinds, five of them
concurrently open — must keep every invariant: bounded virtual time,
typed errors only, request conservation, consistent degraded blocks,
exact DAP cache accounting, and byte-identical reports per seed (the
session fixture pins that last one by running the pair twice).
"""

import pytest

from repro.chaos import (
    ALLOWED_ERROR_CODES,
    ChaosPlan,
    InvariantChecker,
    InvariantViolation,
    run_chaos,
    worker_death,
)
from repro.service.workload import WorkloadSpec

from chaos_helpers import acceptance_plan, acceptance_spec

pytestmark = [pytest.mark.tier1, pytest.mark.chaos]


# -- the acceptance bar -----------------------------------------------------
def test_acceptance_pair_meets_the_bar():
    plan, spec = acceptance_plan(), acceptance_spec()
    assert spec.clients >= 500
    assert plan.max_concurrent_kinds() >= 3
    assert len(plan.kinds) == 7  # every fault kind is exercised


def test_all_invariants_green(acceptance_report):
    verdicts = InvariantChecker(acceptance_report).check_all()
    assert verdicts == {name: "ok" for name in InvariantChecker.CHECKS}


def test_every_fault_kind_left_a_mark(acceptance_report):
    """Injection really happened at every layer — a plan that compiled
    to no-ops would make the invariant suite vacuous."""
    chaos = acceptance_report["chaos"]
    assert chaos["executor"]["deaths"] > 0
    replica_counters = [
        counters
        for per_source in chaos["endpoints"].values()
        for counters in per_source.values()
    ]
    assert sum(c["failures"] for c in replica_counters) > 0
    assert sum(c["delays"] for c in replica_counters) > 0
    dap = chaos["dap"]
    assert dap["server"]["corruptions"] > 0
    assert dap["cache"]["evictions"] > 0
    assert dap["counts"]["stale"] > 0
    opened = {(edge["kind"], edge["edge"]) for edge in chaos["timer_log"]}
    for kind in acceptance_plan().kinds:
        assert (kind, "open") in opened, f"{kind} never opened"


def test_failures_are_typed_and_degradation_is_visible(acceptance_report):
    records = acceptance_report.records
    codes = {r.error["code"] for r in records if r.error is not None}
    assert codes, "a chaos run with zero failures proves nothing"
    assert codes <= ALLOWED_ERROR_CODES
    assert any(r.degraded is not None for r in records)


# -- the checker's teeth ----------------------------------------------------
def small_report():
    spec = WorkloadSpec(seed=3, clients=40, rate_rps=800.0,
                        federated=True)
    plan = ChaosPlan(seed=5, faults=(worker_death(0.0, 0.1, rate=0.5),))
    return run_chaos(spec, plan, dap_ticks=8)


def test_checker_rejects_untyped_error_codes():
    report = small_report()
    report.records[0].error = {"code": "KeyError",
                               "message": "an exception leaked"}
    with pytest.raises(InvariantViolation, match="untyped"):
        InvariantChecker(report).check_typed_errors()


def test_checker_rejects_leaked_requests():
    report = small_report()
    report["workload"]["totals"]["submitted"] += 1
    with pytest.raises(InvariantViolation, match="leak"):
        InvariantChecker(report).check_conservation()


def test_checker_rejects_inconsistent_degraded_blocks():
    report = small_report()
    report.records[0].degraded = {
        "completeness": {"answered": 1, "total": 3,
                         "failed_sources": ["http://x/sparql"]},
        "stale_serves": 0,
        "truncated": False,
    }
    with pytest.raises(InvariantViolation, match="completeness"):
        InvariantChecker(report).check_degraded_consistency()
