"""The observability acceptance bar under chaos: an injected endpoint
flap must page the affected tenants' availability SLOs, the query log
must sample 100 % of degraded queries, and the flight recorder must
produce incident bundles — all byte-identical across same-seed runs
and worker counts."""

import json

import pytest

from repro.chaos import InvariantChecker, InvariantViolation
from repro.chaos.harness import ChaosHarness

from chaos_helpers import acceptance_plan, acceptance_spec

pytestmark = [pytest.mark.tier1, pytest.mark.chaos]


# -- (a) page-level burn alerts ---------------------------------------------

def test_endpoint_flap_pages_tenant_availability(acceptance_report):
    slo = acceptance_report["workload"]["slo"]
    paged = [name for name, block in slo["specs"].items()
             if name.endswith("-availability")
             and block["alerts"]["page"]["fired"] >= 1]
    assert paged, "the endpoint flap degraded no tenant enough to page"
    # every page edge is a typed transition with its burn snapshot
    fires = [t for t in slo["transitions"]
             if t["severity"] == "page" and t["edge"] == "fire"]
    assert fires
    for edge in fires:
        assert edge["burn_fast"] > 0 and edge["burn_mid"] > 0


def test_pool_availability_slo_watches_replicas(acceptance_report):
    slo = acceptance_report["workload"]["slo"]
    pool_specs = {name: block for name, block in slo["specs"].items()
                  if name.startswith("pool-")}
    assert pool_specs, "pooled source registered no pool SLO"
    assert any(block["events"]["good"] + block["events"]["bad"] > 0
               for block in pool_specs.values())


# -- (b) 100 % of degraded queries sampled ----------------------------------

def test_query_log_keeps_every_degraded_query(acceptance_report):
    harness = acceptance_report.harness
    qlog = harness.workload.service.query_log
    degraded_records = [r for r in acceptance_report.records
                        if r.degraded is not None]
    assert degraded_records, "fixture drift: the flap degraded nothing"
    logged = {r.seq for r in qlog.records() if r.degraded is not None}
    missing = [r.seq for r in degraded_records if r.seq not in logged]
    assert not missing, f"degraded queries not sampled: {missing}"
    # degraded-but-completed records carry the dedicated keep reason
    assert qlog.kept["degraded"] == sum(
        1 for r in degraded_records if r.outcome == "completed")


# -- (c) incident bundles ---------------------------------------------------

def test_flight_recorder_produced_incident_bundles(acceptance_report):
    incidents = acceptance_report["incidents"]
    assert incidents["incidents"] >= 1
    assert any(reason.startswith("slo_page:")
               for reason in incidents["reasons"])
    recorder = acceptance_report.harness.recorder
    bundle = json.loads(recorder.incident_json(0))
    assert bundle["reason"] == incidents["reasons"][0]
    assert bundle["entries"], "a bundle must carry the evidence window"
    kinds = {e["kind"] for e in bundle["entries"]}
    # the ring mixes layers: requests and fault edges at minimum
    assert "request" in kinds
    assert "fault_window" in kinds
    assert incidents["bundles_sha256"] == recorder.incidents_sha256()


# -- byte identity across runs and worker counts ----------------------------

def build_report(workers=None, seed=11, clients=200):
    harness = ChaosHarness(acceptance_spec(seed=seed, clients=clients),
                           acceptance_plan())
    if workers is not None:
        harness.executor.workers = workers
    return harness.run()


def test_same_seed_runs_and_workers_1_2_4_byte_identical():
    baseline = build_report().to_json()
    assert build_report().to_json() == baseline  # same-seed rerun
    for workers in (1, 2, 4):
        text = build_report(workers=workers).to_json()
        assert text == baseline, (
            f"workers={workers} changed the chaos report")
    report = json.loads(baseline)
    # the identity covers the observability surface, not just totals
    assert report["incidents"]["incidents"] >= 1
    assert report["workload"]["slo"]["transitions"]


# -- invariant violations snapshot the ring ---------------------------------

def test_invariant_violation_snapshots_an_incident_bundle():
    report = build_report(clients=60)
    recorder = report.harness.recorder
    before = len(recorder.incidents)
    # sabotage the per-tenant ledger so conservation trips
    tenant = next(iter(report["workload"]["tenants"]))
    report["workload"]["tenants"][tenant]["submitted"] += 1
    with pytest.raises(InvariantViolation):
        InvariantChecker(report).check_all()
    assert len(recorder.incidents) == before + 1
    assert recorder.incidents[-1]["reason"] == "invariant:conservation"
