"""Graceful degradation end to end: dead sources become degraded
blocks in the v2 envelope, never errors — and replica-level faults are
absorbed by the endpoint pool before degradation is even needed."""

import pytest

from repro.chaos import ChaosPlan, endpoint_flap, run_chaos
from repro.resilience import FaultSchedule, FaultyEndpoint
from repro.service.api import ServiceAPI
from repro.service.workload import Workload, WorkloadSpec

from chaos_helpers import acceptance_spec

pytestmark = [pytest.mark.tier1, pytest.mark.chaos]

FED_REQUEST = {"v": 2, "op": "query", "tenant": "api",
               "template": "federated_inventory"}


def federated_stack(dead_source=None):
    workload = Workload(WorkloadSpec(clients=1, federated=True))
    engine = workload.federation
    if dead_source is not None:
        iri = engine.sources()[dead_source]
        engine.register(iri, FaultyEndpoint(engine.endpoint(iri),
                                            FaultSchedule.dead()))
    return workload, ServiceAPI(workload.service)


def test_one_dead_source_answers_two_of_three():
    workload, api = federated_stack(dead_source=2)
    dead_iri = workload.federation.sources()[2]
    response = api.handle(dict(FED_REQUEST))
    assert response["ok"] is True, response
    block = response["data"]["degraded"]
    completeness = block["completeness"]
    assert completeness["answered"] == 2
    assert completeness["total"] == 3
    assert completeness["failed_sources"] == [dead_iri]
    assert block["truncated"] is False
    # The surviving shards' rows are still served.
    assert response["data"]["rows"]
    assert dead_iri in response["data"]["failures"]


def test_healthy_federation_has_no_degraded_block():
    __, api = federated_stack()
    response = api.handle(dict(FED_REQUEST))
    assert response["ok"] is True
    assert "degraded" not in response["data"]


def test_v1_envelope_keeps_its_minimal_contract():
    workload, api = federated_stack(dead_source=2)
    response = api.handle(dict(FED_REQUEST, v=1))
    # v1 clients signed up for ok/data only: the request still
    # succeeds, but the degraded block is a v2 extension.
    assert response["ok"] is True
    assert "degraded" not in response["data"]
    assert response["data"]["rows"]


def test_source_flap_degrades_scheduler_driven_requests():
    spec = WorkloadSpec(seed=9, clients=120, rate_rps=600.0,
                        federated=True)
    plan = ChaosPlan(seed=1, faults=(endpoint_flap(0.0, 30.0, source=2),))
    report = run_chaos(spec, plan, dap_ticks=0)
    degraded = [r for r in report.records if r.degraded is not None]
    assert degraded, "no federated request saw the dead source"
    for record in degraded:
        completeness = record.degraded["completeness"]
        assert completeness["answered"] == 2
        assert completeness["total"] == 3


def test_replica_flap_is_absorbed_by_the_pool():
    """Killing one replica of a pooled source is invisible to clients:
    failover (plus ejection) serves every request whole."""
    spec = WorkloadSpec(seed=9, clients=120, rate_rps=600.0,
                        federated=True)
    plan = ChaosPlan(seed=1,
                     faults=(endpoint_flap(0.0, 30.0, source=0,
                                           replica=0),))
    report = run_chaos(spec, plan, dap_ticks=0)
    assert not [r for r in report.records if r.degraded is not None]
    pooled_iri = report.harness.engine.sources()[0]
    counters = report["resilience"]["pools"][pooled_iri]["counters"]
    assert counters["failovers"] + counters["ejections"] > 0


def test_acceptance_spec_is_federated():
    # The acceptance run exercises this whole path by construction.
    assert acceptance_spec().federated
