"""Typed error payloads per layer, through ``ServiceAPI.handle``.

Whatever layer a failure originates in — admission slots, the nested
federation dispatch, the budget accounting inside it, or the worker
substrate the fan-out runs on — ``handle`` must render a stable typed
code, never ``internal_error`` and never a stack trace.
"""

import dataclasses

import pytest

from repro.chaos import ChaosExecutor, ChaosPlan, worker_death
from repro.governance import AdmissionController
from repro.parallel import SerialExecutor, WorkerPool
from repro.service.api import ServiceAPI
from repro.service.workload import Workload, WorkloadSpec

pytestmark = [pytest.mark.tier1, pytest.mark.chaos]

FED_REQUEST = {"v": 2, "op": "query", "tenant": "api",
               "template": "federated_inventory"}
LOCAL_REQUEST = {"v": 2, "op": "query", "tenant": "api",
                 "template": "station_count"}


def make_stack(**tenant_overrides):
    workload = Workload(WorkloadSpec(clients=1, federated=True))
    if tenant_overrides:
        state = workload.service.tenants.get("api")
        state.spec = dataclasses.replace(state.spec, **tenant_overrides)
    return workload, ServiceAPI(workload.service)


def test_service_admission_overload_is_typed():
    """Layer 1: the service tier's global slot pool."""
    workload, api = make_stack()
    controller = workload.service.controller
    slots = [controller.admit() for _ in range(controller.max_concurrent)]
    try:
        response = api.handle(dict(FED_REQUEST))
    finally:
        for slot in slots:
            slot.release()
    assert response["ok"] is False
    error = response["error"]
    assert error["code"] == "overloaded"
    assert error["retry_after_s"] > 0


def test_nested_federation_overload_is_typed():
    """Layer 2: an Overloaded raised *inside* the federation engine
    (its own admission controller) maps through the service path."""
    workload, api = make_stack()
    engine = workload.federation
    engine.admission = AdmissionController(max_concurrent=1,
                                           clock=workload.clock)
    slot = engine.admission.admit()
    try:
        response = api.handle(dict(FED_REQUEST))
    finally:
        slot.release()
    assert response["ok"] is False
    assert response["error"]["code"] == "overloaded"


def test_nested_fetch_budget_exhaustion_is_typed():
    """Layer 3: budget exhaustion charged inside the nested federation
    dispatch surfaces typed — partial mode must not absorb the
    query's own resource verdict as a 'degraded source'."""
    __, api = make_stack(max_fetches=1)
    response = api.handle(dict(FED_REQUEST))
    assert response["ok"] is False
    error = response["error"]
    assert error["code"] == "fetch_limit_exceeded"
    assert error["snapshot"]["remote_fetches"] >= 1


def test_local_deadline_exhaustion_is_typed():
    """Layer 4: the evaluator's own deadline check on a non-federated
    template (no partial mode to degrade into). On the virtual clock
    a zero deadline means the budget is born expired — the first
    cancellation point fires."""
    __, api = make_stack(deadline_s=0.0)
    response = api.handle(dict(LOCAL_REQUEST))
    assert response["ok"] is False
    error = response["error"]
    assert error["code"] == "deadline_exceeded"
    assert "snapshot" in error


def test_federated_deadline_degrades_instead_of_erroring():
    """Contrast: the *deadline* on a federated template degrades —
    sources the deadline cut off are reported, the request succeeds."""
    __, api = make_stack(deadline_s=0.0)
    response = api.handle(dict(FED_REQUEST))
    assert response["ok"] is True, response
    completeness = response["data"]["degraded"]["completeness"]
    assert completeness["answered"] == 0
    assert completeness["total"] == 3


def test_worker_death_in_fan_out_is_typed():
    """Layer 5: the execution substrate. A worker dying mid-fan-out is
    lost work, not a degraded source — it must surface as
    ``worker_died`` even though federated requests run partial."""
    workload, api = make_stack()
    engine = workload.federation
    plan = ChaosPlan(seed=2,
                     faults=(worker_death(0.0, 60.0, rate=1.0),))
    executor = ChaosExecutor(SerialExecutor(), workload.clock, plan)
    engine.pool = WorkerPool(executor=executor, name="test-fanout")
    engine.eager_service = True
    response = api.handle(dict(FED_REQUEST))
    assert response["ok"] is False
    assert response["error"]["code"] == "worker_died"
    assert executor.deaths > 0
