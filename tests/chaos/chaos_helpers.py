"""Shared builders for the chaos suite.

``acceptance_plan``/``acceptance_spec`` are the canonical seeded run
the acceptance criteria describe: >= 500 simulated clients with >= 3
fault kinds concurrently active, every layer under injection. The CI
chaos-smoke job and the invariant tests run exactly this pair.
"""

from repro.chaos import (
    ChaosPlan,
    budget_squeeze,
    dap_corruption,
    dap_eviction_storm,
    endpoint_flap,
    latency_spike,
    plan_cache_invalidation,
    worker_death,
)
from repro.service.workload import WorkloadSpec


class FakeClock:
    """A manually-advanced monotonic clock (threads only read it)."""

    def __init__(self, start: float = 0.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def acceptance_spec(seed: int = 11, clients: int = 500) -> WorkloadSpec:
    return WorkloadSpec(seed=seed, clients=clients, rate_rps=1500.0,
                        federated=True)


def acceptance_plan(seed: int = 7) -> ChaosPlan:
    """All seven fault kinds; five are concurrently open at t=0.06."""
    return ChaosPlan(seed=seed, faults=(
        endpoint_flap(0.05, 0.20, source=2),
        latency_spike(0.06, 0.15, delay_s=0.02, source=0, replica=0),
        worker_death(0.05, 0.25, rate=0.3),
        dap_corruption(0.04, 0.08),
        dap_eviction_storm(0.06, 0.05, max_entries=1),
        plan_cache_invalidation(0.12),
        budget_squeeze(0.10, 0.10, tenant=0, deadline_s=0.002),
    ))
