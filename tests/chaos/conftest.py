"""Fixtures for the chaos suite (builders live in ``chaos_helpers``)."""

import pytest

from repro.chaos import assert_deterministic, run_chaos

from chaos_helpers import acceptance_plan, acceptance_spec


@pytest.fixture(scope="session")
def acceptance_report():
    """The canonical acceptance-scale run, built once per session.

    ``assert_deterministic`` runs it twice and pins byte-identical
    reports, so every test consuming this fixture also rides on the
    determinism meta-invariant having held.
    """
    return assert_deterministic(
        lambda: run_chaos(acceptance_spec(), acceptance_plan()))
