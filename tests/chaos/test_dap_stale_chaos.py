"""DapCache stale-serving under concurrent eviction + fault injection.

The cache promises: with ``serve_stale`` on, a failing upstream
degrades to stale answers for keys still resident; eviction pressure
may remove those keys (then the failure surfaces), but accounting
stays exact, the bound holds, and nothing deadlocks — at any worker
count.
"""

import pytest

from repro.chaos import ChaosDapServer
from repro.chaos.harness import _make_dap_dataset
from repro.opendap import DapCache, DapServer, ServerRegistry, open_url
from repro.parallel import WorkerPool
from repro.resilience import RetryPolicy

from chaos_helpers import FakeClock

pytestmark = [pytest.mark.tier1, pytest.mark.chaos]

DAP_URL = "dap://chaos.test/Copernicus/LAI"
CONSTRAINTS = tuple(f"LAI[{i}][0:2][0:2]" for i in range(4))


def make_channel(clock, max_entries=4):
    registry = ServerRegistry()
    server = DapServer("chaos.test")
    server.mount("Copernicus/LAI", _make_dap_dataset())
    registry.register(server)
    chaos_server = registry.wrap("chaos.test", ChaosDapServer)
    cache = DapCache(ttl_s=10.0, clock=clock, max_entries=max_entries,
                     serve_stale=True)
    policy = RetryPolicy(max_attempts=2, base_delay_s=0.0, jitter=0.0,
                         clock=clock, sleep=lambda s: None)
    remote = open_url(DAP_URL, registry, cache=cache,
                      retry_policy=policy)
    return chaos_server, cache, remote


@pytest.mark.parametrize("workers", (1, 2, 4))
def test_stale_serving_survives_eviction_and_corruption(workers):
    clock = FakeClock()
    chaos_server, cache, remote = make_channel(clock)
    for constraint in CONSTRAINTS:  # prime every key
        assert remote.fetch(constraint).stale is False
    clock.advance(11.0)             # every entry is now expired
    chaos_server.corrupt = True     # every refetch decodes garbage

    # Sanity anchor before the race: a stale serve really happens.
    assert remote.fetch(CONSTRAINTS[0]).stale is True

    def task(i):
        if i % 4 == 3:
            # Eviction pressure against the same bounded cache.
            cache.put("dap://elsewhere/DS", f"k{i}", b"x")
            return "put"
        result = remote.fetch(CONSTRAINTS[i % len(CONSTRAINTS)])
        return "stale" if result.stale else "fresh"

    attempts = 32
    with WorkerPool(workers=workers) as pool:
        outcomes = pool.run_tasks(task, range(attempts))

    served = [o.value for o in outcomes if o.error is None]
    errors = [o.error for o in outcomes if o.error is not None]
    # Fetches either stale-serve or fail because eviction pressure
    # removed their entry — never a silently fresh answer while the
    # server corrupts every body.
    assert "fresh" not in served
    assert len(served) + len(errors) == attempts
    assert served.count("stale") + len(errors) == \
        sum(1 for i in range(attempts) if i % 4 != 3)
    # Accounting and bounds survived the race.
    assert len(cache) <= cache.max_entries
    assert remote.stats.stale_serves == served.count("stale") + 1
    assert cache.stale_hits == remote.stats.stale_serves


@pytest.mark.parametrize("workers", (1, 2, 4))
def test_recovery_reprimes_the_cache(workers):
    clock = FakeClock()
    chaos_server, cache, remote = make_channel(clock)
    for constraint in CONSTRAINTS:
        remote.fetch(constraint)
    clock.advance(11.0)
    chaos_server.corrupt = True
    assert remote.fetch(CONSTRAINTS[0]).stale is True
    chaos_server.corrupt = False    # upstream heals

    with WorkerPool(workers=workers) as pool:
        outcomes = pool.run_tasks(
            lambda i: remote.fetch(CONSTRAINTS[i % len(CONSTRAINTS)]),
            range(8))
    assert all(o.error is None for o in outcomes)
    # Healed upstream: everything refetched fresh, cache re-primed.
    assert all(not o.value.stale for o in outcomes)
    assert remote.fetch(CONSTRAINTS[0]).stale is False
