"""MadIS engine tests: UDFs, aggregates, virtual-table rewriting."""

import pytest

from repro.madis import MadisConnection, MadisError


@pytest.fixture
def conn():
    with MadisConnection() as c:
        yield c


def test_plain_sql(conn):
    conn.executescript(
        "CREATE TABLE t (a INTEGER, b TEXT);"
        "INSERT INTO t VALUES (1, 'x'), (2, 'y');"
    )
    rows = conn.execute("SELECT a, b FROM t ORDER BY a")
    assert [tuple(r) for r in rows] == [(1, "x"), (2, "y")]
    assert conn.columns("SELECT a, b FROM t") == ["a", "b"]


def test_st_point_and_intersects(conn):
    rows = conn.execute(
        "SELECT ST_INTERSECTS(ST_POINT(0.5, 0.5),"
        " 'POLYGON ((0 0, 1 0, 1 1, 0 1, 0 0))') AS hit"
    )
    assert rows[0]["hit"] == 1
    rows = conn.execute(
        "SELECT ST_INTERSECTS(ST_POINT(9, 9),"
        " 'POLYGON ((0 0, 1 0, 1 1, 0 1, 0 0))') AS hit"
    )
    assert rows[0]["hit"] == 0


def test_st_distance_area(conn):
    rows = conn.execute(
        "SELECT ST_DISTANCE('POINT (0 0)', 'POINT (3 4)') AS d,"
        " ST_AREA('POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))') AS a"
    )
    assert rows[0]["d"] == 5.0
    assert rows[0]["a"] == 4.0


def test_st_functions_null_safe(conn):
    rows = conn.execute("SELECT ST_INTERSECTS(NULL, 'POINT (0 0)') AS x")
    assert rows[0]["x"] is None


def test_cf_datetime(conn):
    rows = conn.execute(
        "SELECT CF_DATETIME(10, 'days since 2018-01-01') AS ts"
    )
    assert rows[0]["ts"] == "2018-01-11T00:00:00Z"


def test_median_and_stddev(conn):
    conn.executescript(
        "CREATE TABLE v (x REAL);"
        "INSERT INTO v VALUES (1), (2), (3), (4), (100);"
    )
    rows = conn.execute("SELECT MEDIAN(x) AS m, STDDEV(x) AS s FROM v")
    assert rows[0]["m"] == 3.0
    assert rows[0]["s"] > 38


def test_vt_operator_basic(conn):
    def numbers(n="3"):
        count = int(n)
        return ("i", "sq"), [(i, i * i) for i in range(count)]

    conn.register_vt_operator("numbers", numbers)
    rows = conn.execute("SELECT i, sq FROM (numbers n:4) WHERE sq > 1")
    assert [tuple(r) for r in rows] == [(2, 4), (3, 9)]


def test_vt_operator_positional_args(conn):
    def repeat(word, times="2"):
        return ("w",), [(word,)] * int(times)

    conn.register_vt_operator("repeat", repeat)
    rows = conn.execute("SELECT w FROM (repeat 'hello', 3)")
    assert len(rows) == 3
    assert rows[0]["w"] == "hello"


def test_vt_with_modifier(conn):
    def gen():
        return ("x",), [(1,), (2,)]

    conn.register_vt_operator("gen", gen)
    rows = conn.execute("SELECT x FROM (ordered gen) ORDER BY x DESC")
    assert [r["x"] for r in rows] == [2, 1]


def test_subquery_left_untouched(conn):
    conn.executescript(
        "CREATE TABLE t (a INTEGER); INSERT INTO t VALUES (1), (2);"
    )
    rows = conn.execute(
        "SELECT s.a FROM (SELECT a FROM t WHERE a > 1) AS s"
    )
    assert [r["a"] for r in rows] == [2]


def test_vt_inside_join(conn):
    conn.executescript(
        "CREATE TABLE names (i INTEGER, name TEXT);"
        "INSERT INTO names VALUES (1, 'one'), (2, 'two');"
    )

    def numbers():
        return ("i",), [(1,), (2,), (3,)]

    conn.register_vt_operator("numbers", numbers)
    rows = conn.execute(
        "SELECT n.name FROM (numbers) v JOIN names n ON n.i = v.i "
        "ORDER BY n.name"
    )
    assert [r["name"] for r in rows] == ["one", "two"]


def test_unknown_operator_is_subquery_error(conn):
    # '(frobnicate)' is not registered → left as SQL, sqlite rejects it.
    import sqlite3

    with pytest.raises(sqlite3.OperationalError):
        conn.execute("SELECT * FROM (frobnicate)")


def test_unbalanced_parens_raise(conn):
    def gen():
        return ("x",), [(1,)]

    conn.register_vt_operator("gen", gen)
    with pytest.raises(MadisError):
        conn.execute("SELECT x FROM (gen")


def test_empty_schema_rejected(conn):
    conn.register_vt_operator("empty", lambda: ((), []))
    with pytest.raises(MadisError):
        conn.execute("SELECT * FROM (empty)")


def test_from_paren_inside_string_literal_untouched(conn):
    conn.register_vt_operator("gen", lambda: (("x",), [(1,)]))
    rows = conn.execute("SELECT 'text from (gen) inside' AS t")
    assert rows[0]["t"] == "text from (gen) inside"


def test_vt_still_rewritten_after_string(conn):
    conn.register_vt_operator("gen", lambda: (("x",), [(7,)]))
    rows = conn.execute(
        "SELECT 'from (' AS lit, x FROM (gen)"
    )
    assert rows[0]["lit"] == "from ("
    assert rows[0]["x"] == 7


def test_url_kwarg_keeps_colons(conn):
    """url:dap://host/path must parse as kwarg url with full URL value."""
    seen = {}

    def probe(url=None):
        seen["url"] = url
        return ("x",), [(1,)]

    conn.register_vt_operator("probe", probe)
    conn.execute("SELECT x FROM (probe url:dap://vito.test/Copernicus/LAI)")
    assert seen["url"] == "dap://vito.test/Copernicus/LAI"
