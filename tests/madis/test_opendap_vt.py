"""The opendap virtual-table operator: Listing 2's source query."""

from datetime import date

import pytest

from repro.madis import MadisConnection, MadisError, attach_opendap
from repro.opendap import DapServer, LatencyModel, ServerRegistry
from repro.vito import LAI_SPEC, GlobalLandArchive, MepDeployment, \
    dekad_dates, generate_product


@pytest.fixture
def setup():
    archive = GlobalLandArchive()
    for day in dekad_dates(date(2018, 6, 1), 2):
        archive.publish(
            "LAI", day, 0,
            generate_product(LAI_SPEC, day, cloud_fraction=0.1),
        )
    mep = MepDeployment(archive, host="vito.test")
    mep.mount_product("LAI")
    registry = ServerRegistry()
    registry.register(mep.server)
    conn = MadisConnection()
    clock = {"now": 0.0}
    operator = attach_opendap(conn, registry, clock=lambda: clock["now"])
    return conn, operator, clock, mep


URL = "dap://vito.test/Copernicus/LAI"


def test_listing2_source_query(setup):
    conn, operator, clock, mep = setup
    rows = conn.execute(
        f"SELECT id, LAI, ts, loc FROM (ordered opendap url:{URL}, 10) "
        "WHERE LAI > 0"
    )
    assert len(rows) > 100
    row = rows[0]
    assert row["LAI"] > 0
    assert row["ts"].endswith("Z")
    assert row["loc"].startswith("POINT (")
    assert "_2018" in row["id"]


def test_fill_values_skipped(setup):
    conn, operator, __, mep = setup
    rows = conn.execute(f"SELECT LAI FROM (opendap url:{URL})")
    total_cells = 2 * 12 * 24
    assert len(rows) < total_cells  # ~10% clouds removed
    assert all(r["LAI"] >= 0 for r in rows)


def test_cache_window_hits(setup):
    conn, operator, clock, __ = setup
    query = f"SELECT count(*) AS n FROM (opendap url:{URL}, 10)"
    conn.execute(query)
    assert operator.server_calls == 1
    clock["now"] = 5 * 60.0  # 5 minutes later, inside w=10
    conn.execute(query)
    assert operator.server_calls == 1
    assert operator.cache_hits == 1


def test_cache_window_expiry(setup):
    conn, operator, clock, __ = setup
    query = f"SELECT count(*) AS n FROM (opendap url:{URL}, 10)"
    conn.execute(query)
    clock["now"] = 11 * 60.0  # outside w
    conn.execute(query)
    assert operator.server_calls == 2


def test_no_window_never_caches(setup):
    conn, operator, __, __unused = setup
    query = f"SELECT count(*) AS n FROM (opendap url:{URL})"
    conn.execute(query)
    conn.execute(query)
    assert operator.server_calls == 2
    assert operator.cache_hits == 0


def test_constraint_pushed_to_server(setup):
    conn, operator, __, mep = setup
    rows = conn.execute(
        f"SELECT ts FROM (opendap url:{URL} , 0, constraint:'LAI&time<=1612')"
    )
    timestamps = {r["ts"] for r in rows}
    assert timestamps == {"2018-06-01T00:00:00Z"}


def test_explicit_variable(setup):
    conn, operator, __, __unused = setup
    rows = conn.execute(
        f"SELECT LAI FROM (opendap url:{URL}, 0, variable:LAI) LIMIT 5"
    )
    assert len(rows) == 5


def test_unknown_variable_rejected(setup):
    conn, operator, __, __unused = setup
    with pytest.raises(MadisError):
        conn.execute(f"SELECT * FROM (opendap url:{URL}, 0, variable:NDVI)")


def test_missing_url_rejected(setup):
    conn, __, __u, __v = setup
    with pytest.raises(MadisError):
        conn.execute("SELECT * FROM (opendap)")


def test_aggregation_over_virtual_table(setup):
    """The RAMANI-analytics style query: spatial mean via plain SQL."""
    conn, __, __u, __v = setup
    rows = conn.execute(
        f"SELECT ts, AVG(LAI) AS mean_lai FROM (opendap url:{URL}) "
        "GROUP BY ts ORDER BY ts"
    )
    assert len(rows) == 2
    assert all(r["mean_lai"] > 0 for r in rows)


def test_spatial_udf_over_virtual_table(setup):
    conn, __, __u, __v = setup
    bbox = "POLYGON ((2.2 48.8, 2.3 48.8, 2.3 48.9, 2.2 48.9, 2.2 48.8))"
    rows = conn.execute(
        f"SELECT count(*) AS n FROM (opendap url:{URL}) "
        f"WHERE ST_WITHIN(loc, '{bbox}')"
    )
    all_rows = conn.execute(
        f"SELECT count(*) AS n FROM (opendap url:{URL})"
    )
    assert 0 < rows[0]["n"] < all_rows[0]["n"]
