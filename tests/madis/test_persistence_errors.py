"""MadIS file persistence and error-path tests."""

import sqlite3

import pytest

from repro.madis import MadisConnection, MadisError


def test_file_backed_database(tmp_path):
    path = str(tmp_path / "applab.db")
    with MadisConnection(path) as conn:
        conn.executescript(
            "CREATE TABLE parks (id INTEGER, wkt TEXT);"
            "INSERT INTO parks VALUES (1, 'POINT (2.25 48.86)');"
        )
    # data persists across connections; UDFs re-register on open
    with MadisConnection(path) as conn:
        rows = conn.execute(
            "SELECT ST_WITHIN(wkt, "
            "'POLYGON ((2 48, 3 48, 3 49, 2 49, 2 48))') AS ok FROM parks"
        )
        assert rows[0]["ok"] == 1


def test_write_statements_commit(tmp_path):
    path = str(tmp_path / "w.db")
    conn = MadisConnection(path)
    conn.execute("CREATE TABLE t (a INTEGER)")
    conn.execute("INSERT INTO t VALUES (5)")
    conn.close()
    fresh = MadisConnection(path)
    assert fresh.execute("SELECT a FROM t")[0]["a"] == 5


def test_vt_operators_listed():
    conn = MadisConnection()
    conn.register_vt_operator("alpha", lambda: (("x",), []))
    conn.register_vt_operator("beta", lambda: (("x",), []))
    assert conn.vt_operators == ["alpha", "beta"]


def test_vt_operator_exception_propagates():
    conn = MadisConnection()

    def broken():
        raise RuntimeError("upstream OPeNDAP outage")

    conn.register_vt_operator("broken", broken)
    with pytest.raises(RuntimeError, match="outage"):
        conn.execute("SELECT * FROM (broken)")


def test_sql_error_propagates():
    conn = MadisConnection()
    with pytest.raises(sqlite3.OperationalError):
        conn.execute("SELECT * FROM missing_table")


def test_same_invocation_reuses_table_name():
    calls = []

    def gen(n="1"):
        calls.append(n)
        return ("x",), [(int(n),)]

    conn = MadisConnection()
    conn.register_vt_operator("gen", gen)
    conn.execute("SELECT x FROM (gen n:5)")
    conn.execute("SELECT x FROM (gen n:5)")
    # re-executed each time (fresh data) but under the same temp name
    assert calls == ["5", "5"]


def test_two_vt_clauses_in_one_query():
    conn = MadisConnection()
    conn.register_vt_operator("odds", lambda: (("x",), [(1,), (3,)]))
    conn.register_vt_operator("evens", lambda: (("x",), [(2,), (4,)]))
    rows = conn.execute(
        "SELECT a.x AS o, b.x AS e FROM (odds) a "
        "JOIN (evens) b ON b.x = a.x + 1 ORDER BY o"
    )
    assert [(r["o"], r["e"]) for r in rows] == [(1, 2), (3, 4)]
