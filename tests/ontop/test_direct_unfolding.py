"""Tests for Ontop's direct SQL unfolding path.

The direct path must (a) fire for simple single-mapping queries,
(b) bail to the generic path whenever correctness would be at risk,
and (c) always produce the same answers as the generic path.
"""

import pytest

from repro.madis import MadisConnection
from repro.ontop import OntopSpatial
from repro.rdf import Graph, IRI, RDF

EX = "http://example.org/"

DOCUMENT = """\
[PrefixDeclaration]
ex:\thttp://example.org/
geo:\thttp://www.opengis.net/ont/geosparql#
xsd:\thttp://www.w3.org/2001/XMLSchema#
rdf:\thttp://www.w3.org/1999/02/22-rdf-syntax-ns#

[MappingDeclaration] @collection [[
mappingId\tparks
target\tex:park/{id} rdf:type ex:Park .
\tex:park/{id} ex:hasName {name} ;
\t     ex:hasArea {area}^^xsd:double .
\tex:park/{id} geo:hasGeometry ex:park/{id}/geom .
\tex:park/{id}/geom geo:asWKT {wkt}^^geo:wktLiteral .
source\tSELECT id, name, area, wkt FROM parks

mappingId\tfactories
target\tex:factory/{id} rdf:type ex:Factory .
\tex:factory/{id} ex:hasName {name} .
\tex:factory/{id} geo:hasGeometry ex:factory/{id}/geom .
\tex:factory/{id}/geom geo:asWKT {wkt}^^geo:wktLiteral .
source\tSELECT id, name, wkt FROM factories
]]
"""

PREFIX = """
PREFIX ex: <http://example.org/>
PREFIX geo: <http://www.opengis.net/ont/geosparql#>
PREFIX geof: <http://www.opengis.net/def/function/geosparql/>
"""


@pytest.fixture
def engine():
    conn = MadisConnection()
    conn.executescript(
        "CREATE TABLE parks (id INTEGER, name TEXT, area REAL, wkt TEXT);"
        "CREATE TABLE factories (id INTEGER, name TEXT, wkt TEXT);"
    )
    for i in range(10):
        conn.execute(
            "INSERT INTO parks VALUES (?, ?, ?, ?)",
            (i, f"park{i}", float(i),
             f"POLYGON (({i} 0, {i}.8 0, {i}.8 0.8, {i} 0.8, {i} 0))"),
        )
    conn.execute(
        "INSERT INTO factories VALUES (0, 'factory0', 'POINT (0.5 0.5)')"
    )
    return OntopSpatial.from_document(conn, DOCUMENT)


def generic_answer(engine, query):
    """Force the generic path by evaluating over the materialization."""
    return engine.materialize().query(query)


def rows_as_set(result):
    return {
        tuple(sorted((k, str(v)) for k, v in row.items()))
        for row in result
    }


QUERIES_DIRECT = [
    # simple class + value selection
    PREFIX + "SELECT ?p ?n WHERE { ?p a ex:Park ; ex:hasName ?n }",
    # spatial constant filter (pushdown)
    PREFIX + """
    SELECT ?p WHERE {
      ?p a ex:Park ; geo:hasGeometry ?g . ?g geo:asWKT ?w .
      FILTER(geof:sfIntersects(?w,
        "POLYGON ((2.1 0.1, 3.9 0.1, 3.9 0.5, 2.1 0.5, 2.1 0.1))"^^geo:wktLiteral))
    }
    """,
    # numeric residual filter
    PREFIX + "SELECT ?p WHERE { ?p ex:hasArea ?a . ?p a ex:Park "
             "FILTER(?a >= 7) }",
    # expression projection
    PREFIX + "SELECT ?p (geof:area(?w) AS ?sz) WHERE "
             "{ ?p a ex:Park ; geo:hasGeometry ?g . ?g geo:asWKT ?w }",
    # aggregate without grouping
    PREFIX + "SELECT (COUNT(?p) AS ?n) (AVG(?a) AS ?mean) WHERE "
             "{ ?p a ex:Park ; ex:hasArea ?a }",
    # group by
    PREFIX + "SELECT ?n (COUNT(?p) AS ?c) WHERE "
             "{ ?p a ex:Park ; ex:hasName ?n } GROUP BY ?n",
    # order by + limit
    PREFIX + "SELECT ?p ?a WHERE { ?p a ex:Park ; ex:hasArea ?a } "
             "ORDER BY DESC(?a) LIMIT 3",
    # bind
    PREFIX + "SELECT ?p ?double WHERE { ?p a ex:Park ; ex:hasArea ?a "
             "BIND(?a * 2 AS ?double) }",
    # distinct
    PREFIX + "SELECT DISTINCT ?n WHERE { ?p a ex:Park ; ex:hasName ?n }",
]


@pytest.mark.parametrize("query", QUERIES_DIRECT,
                         ids=[f"q{i}" for i in range(len(QUERIES_DIRECT))])
def test_direct_matches_generic(engine, query):
    direct = engine.query(query)
    generic = generic_answer(engine, query)
    assert rows_as_set(direct) == rows_as_set(generic)


def test_direct_path_fires_for_simple_query(engine):
    assert engine._try_direct_sql(
        _parse(engine, PREFIX + "SELECT ?p WHERE { ?p a ex:Park }")
    ) is not None


def test_direct_bails_on_cross_mapping_pattern(engine):
    """(?s ex:hasName ?n) matches both mappings → multiple anchors."""
    ast = _parse(engine, PREFIX + "SELECT ?n WHERE { ?s ex:hasName ?n }")
    assert engine._try_direct_sql(ast) is None
    # generic path still answers and includes both sources
    result = engine.query(PREFIX + "SELECT ?n WHERE { ?s ex:hasName ?n }")
    names = {r["n"].lexical for r in result}
    assert "factory0" in names and "park3" in names


def test_direct_bails_on_optional(engine):
    ast = _parse(
        engine,
        PREFIX + "SELECT ?p WHERE { ?p a ex:Park "
        "OPTIONAL { ?p ex:hasName ?n } }",
    )
    assert engine._try_direct_sql(ast) is None


def test_direct_bails_on_exists_filter(engine):
    ast = _parse(
        engine,
        PREFIX + "SELECT ?p WHERE { ?p a ex:Park "
        "FILTER(EXISTS { ?p ex:hasName ?n }) }",
    )
    assert engine._try_direct_sql(ast) is None


def test_cross_mapping_spatial_join_correct(engine):
    """Factory point sits in park0: the var-var join uses the generic
    path and must find it."""
    result = engine.query(
        PREFIX + """
        SELECT ?p ?f WHERE {
          ?p a ex:Park ; geo:hasGeometry ?gp . ?gp geo:asWKT ?wp .
          ?f a ex:Factory ; geo:hasGeometry ?gf . ?gf geo:asWKT ?wf .
          FILTER(geof:sfContains(?wp, ?wf))
        }
        """
    )
    assert len(result) == 1
    assert str(result.rows[0]["p"]) == EX + "park/0"


def test_disjointness_guard_subject_templates(engine):
    """Templates ex:park/{id} and ex:factory/{id} are provably
    disjoint — the guard lets Park-anchored queries through."""
    from repro.ontop.obda import _templates_disjoint
    from repro.ontop.mapping import NodeTemplate

    a = NodeTemplate("iri", EX + "park/{id}")
    b = NodeTemplate("iri", EX + "factory/{id}")
    assert _templates_disjoint(a, b)
    assert not _templates_disjoint(a, NodeTemplate("iri", EX + "park/{x}"))


def _parse(engine, text):
    from repro.sparql.parser import parse_query

    return parse_query(text, namespaces=engine.namespaces)
