"""End-to-end experiment E3: Listings 2+3 over virtual OPeNDAP data."""

from datetime import date

import pytest

from repro.ontop import (
    OntopSpatial,
    RasterCatalog,
    attach_raster,
    make_opendap_endpoint,
    opendap_mapping_document,
    raster_mapping_document,
)
from repro.opendap import ServerRegistry
from repro.vito import (
    BA300_SPEC,
    GlobalLandArchive,
    LAI_SPEC,
    MepDeployment,
    dekad_dates,
    generate_product,
)

PREFIX = """
PREFIX lai: <http://www.app-lab.eu/lai/>
PREFIX geo: <http://www.opengis.net/ont/geosparql#>
PREFIX geof: <http://www.opengis.net/def/function/geosparql/>
PREFIX time: <http://www.w3.org/2006/time#>
PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>
"""

URL = "dap://vito.test/Copernicus/LAI"


@pytest.fixture
def registry():
    archive = GlobalLandArchive()
    for day in dekad_dates(date(2018, 6, 1), 2):
        archive.publish("LAI", day, 0,
                        generate_product(LAI_SPEC, day, cloud_fraction=0.05))
    mep = MepDeployment(archive, host="vito.test")
    mep.mount_product("LAI")
    registry = ServerRegistry()
    registry.register(mep.server)
    return registry


def test_listing3_query(registry):
    """Listing 3: retrieve LAI values and observation geometries."""
    engine, operator, __ = make_opendap_endpoint(registry, URL)
    res = engine.query(
        PREFIX
        + """
        SELECT DISTINCT ?s ?wkt ?lai WHERE {
          ?s lai:lai ?lai .
          ?s geo:hasGeometry ?g .
          ?g geo:asWKT ?wkt
        }
        """
    )
    assert len(res) > 200
    row = res.rows[0]
    assert float(row["lai"].lexical) > 0
    assert "POINT" in row["wkt"].lexical


def test_negative_lai_filtered_in_sql(registry):
    """The mapping's WHERE LAI > 0 'data cleaning' happens pre-RDF."""
    engine, __, __u = make_opendap_endpoint(registry, URL)
    res = engine.query(
        PREFIX + "SELECT ?lai WHERE { ?s lai:lai ?lai } "
    )
    assert all(float(r["lai"].lexical) > 0 for r in res)


def test_window_cache_reused_across_queries(registry):
    clock = {"now": 0.0}
    engine, operator, __ = make_opendap_endpoint(
        registry, URL, window_minutes=10, clock=lambda: clock["now"]
    )
    q = PREFIX + "SELECT (COUNT(*) AS ?n) WHERE { ?s lai:lai ?l }"
    engine.query(q)
    assert operator.server_calls == 1
    clock["now"] = 60.0  # 1 minute later, same OPeNDAP call
    engine.query(q)
    assert operator.server_calls == 1
    assert operator.cache_hits == 1
    clock["now"] = 11 * 60.0  # window expired
    engine.query(q)
    assert operator.server_calls == 2


def test_temporal_filter(registry):
    engine, __, __u = make_opendap_endpoint(registry, URL)
    res = engine.query(
        PREFIX
        + """
        SELECT DISTINCT ?t WHERE {
          ?s lai:lai ?l ; time:hasTime ?t .
          FILTER(?t >= "2018-06-10T00:00:00Z"^^xsd:dateTime)
        }
        """
    )
    assert len(res) == 1
    assert res.rows[0]["t"].lexical.startswith("2018-06-11")


def test_spatial_filter_over_virtual_observations(registry):
    engine, __, __u = make_opendap_endpoint(registry, URL)
    res = engine.query(
        PREFIX
        + """
        SELECT DISTINCT ?s WHERE {
          ?s lai:lai ?l ; geo:hasGeometry ?g .
          ?g geo:asWKT ?w .
          FILTER(geof:sfWithin(?w,
            "POLYGON ((2.2 48.8, 2.3 48.8, 2.3 48.9, 2.2 48.9, 2.2 48.8))"^^geo:wktLiteral))
        }
        """
    )
    # pushdown reached the SQL layer (checked before the next query
    # resets the introspection log)
    assert any("ST_WITHIN" in sql for sql in engine.last_sql)
    total = engine.query(
        PREFIX + "SELECT DISTINCT ?s WHERE { ?s lai:lai ?l }"
    )
    assert 0 < len(res) < len(total)


def test_mapping_document_renders_listing2_shape():
    doc = opendap_mapping_document("dap://h/p", variable="NDVI",
                                   window_minutes=5)
    assert "opendap url:dap://h/p, 5" in doc
    assert "WHERE NDVI > 0" in doc
    assert "geo:asWKT {loc}^^geo:wktLiteral" in doc


def test_raster_adapter(registry):
    """Vector/raster transparent joins via the raster VT operator."""
    from repro.madis import MadisConnection

    burnt = generate_product(
        BA300_SPEC, date(2018, 6, 1), cloud_fraction=0
    )
    # inject some burnt cells
    burnt["BA300"].data[0, 3:5, 4:8] = 0.9

    conn = MadisConnection()
    catalog = attach_raster(conn)
    catalog.add("ba300", burnt)
    engine = OntopSpatial.from_document(
        conn, raster_mapping_document("ba300", "BA300")
    )
    res = engine.query(
        """
        PREFIX rast: <http://www.app-lab.eu/raster/>
        PREFIX geo: <http://www.opengis.net/ont/geosparql#>
        PREFIX geof: <http://www.opengis.net/def/function/geosparql/>
        SELECT ?cell ?w WHERE {
          ?cell rast:value ?v ; geo:hasGeometry ?g .
          ?g geo:asWKT ?w .
          FILTER(?v > 0.5)
        }
        """
    )
    assert len(res) == 8
    assert "POLYGON" in res.rows[0]["w"].lexical  # cell footprints
