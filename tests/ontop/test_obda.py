"""OBDA engine tests: unfolding, virtual queries, SQL spatial pushdown."""

import pytest

from repro.madis import MadisConnection
from repro.ontop import OntopSpatial
from repro.rdf import GEO, IRI, Literal, RDF

EX = "http://example.org/"

DOCUMENT = """\
[PrefixDeclaration]
ex:\thttp://example.org/
geo:\thttp://www.opengis.net/ont/geosparql#
xsd:\thttp://www.w3.org/2001/XMLSchema#
rdf:\thttp://www.w3.org/1999/02/22-rdf-syntax-ns#

[MappingDeclaration] @collection [[
mappingId\tparks
target\tex:park/{id} rdf:type ex:Park .
\tex:park/{id} ex:hasName {name} .
\tex:park/{id} geo:hasGeometry ex:park/{id}/geom .
\tex:park/{id}/geom geo:asWKT {wkt}^^geo:wktLiteral .
source\tSELECT id, name, wkt FROM parks

mappingId\tfactories
target\tex:factory/{id} rdf:type ex:Factory .
\tex:factory/{id} geo:hasGeometry ex:factory/{id}/geom .
\tex:factory/{id}/geom geo:asWKT {wkt}^^geo:wktLiteral .
source\tSELECT id, wkt FROM factories
]]
"""

PREFIX = """
PREFIX ex: <http://example.org/>
PREFIX geo: <http://www.opengis.net/ont/geosparql#>
PREFIX geof: <http://www.opengis.net/def/function/geosparql/>
"""


@pytest.fixture
def engine():
    conn = MadisConnection()
    conn.executescript(
        """
        CREATE TABLE parks (id INTEGER, name TEXT, wkt TEXT);
        CREATE TABLE factories (id INTEGER, wkt TEXT);
        """
    )
    for i in range(30):
        x = float(i)
        conn.execute(
            "INSERT INTO parks VALUES (?, ?, ?)",
            (i, f"park{i}",
             f"POLYGON (({x} 0, {x + 0.8} 0, {x + 0.8} 0.8, {x} 0.8, {x} 0))"),
        )
    conn.execute("INSERT INTO factories VALUES (1, 'POINT (5.4 0.4)')")
    return OntopSpatial.from_document(conn, DOCUMENT)


def test_materialize(engine):
    g = engine.materialize()
    parks = list(g.subjects(RDF.type, IRI(EX + "Park")))
    assert len(parks) == 30
    assert len(list(g.subjects(RDF.type, IRI(EX + "Factory")))) == 1


def test_unfolding_selects_relevant_mappings(engine):
    from repro.sparql.parser import parse_query

    ast = parse_query(
        PREFIX + "SELECT ?p WHERE { ?p a ex:Park }",
        namespaces=engine.namespaces,
    )
    relevant = engine.relevant_mappings(ast.where)
    assert [m.mapping_id for m in relevant] == ["parks"]


def test_query_basic(engine):
    res = engine.query(
        PREFIX + "SELECT ?n WHERE { ?p a ex:Park ; ex:hasName ?n } "
        "ORDER BY ?n LIMIT 2"
    )
    assert [r["n"].lexical for r in res] == ["park0", "park1"]
    # only the parks mapping SQL ran
    assert len(engine.last_sql) == 1
    assert "FROM parks" in engine.last_sql[0]


def test_query_no_materialization_side_effect(engine):
    engine.query(PREFIX + "SELECT ?p WHERE { ?p a ex:Factory }")
    assert len(engine.last_sql) == 1
    assert "factories" in engine.last_sql[0]


def test_spatial_filter_pushdown_wraps_sql(engine):
    res = engine.query(
        PREFIX
        + """
        SELECT ?p WHERE {
          ?p a ex:Park ; geo:hasGeometry ?g . ?g geo:asWKT ?w .
          FILTER(geof:sfWithin(?w,
            "POLYGON ((4.5 -1, 7 -1, 7 2, 4.5 2, 4.5 -1))"^^geo:wktLiteral))
        }
        """
    )
    assert {str(r["p"]) for r in res} == {EX + "park/5", EX + "park/6"}
    pushed = [sql for sql in engine.last_sql if "ST_WITHIN" in sql]
    assert pushed, f"no pushdown in {engine.last_sql}"


def test_rtree_index_pushdown(engine):
    engine.register_spatial_index("parks", "wkt")
    res = engine.query(
        PREFIX
        + """
        SELECT ?p WHERE {
          ?p a ex:Park ; geo:hasGeometry ?g . ?g geo:asWKT ?w .
          FILTER(geof:sfIntersects(?w,
            "POLYGON ((10.1 0.1, 11.9 0.1, 11.9 0.5, 10.1 0.5, 10.1 0.1))"^^geo:wktLiteral))
        }
        """
    )
    assert {str(r["p"]) for r in res} == {
        EX + "park/10", EX + "park/11",
    }
    indexed_sql = [s for s in engine.last_sql if "idx_parks_wkt" in s]
    assert indexed_sql, f"rtree not used in {engine.last_sql}"


def test_pushdown_agrees_with_materialized(engine):
    query = (
        PREFIX
        + """
        SELECT ?p WHERE {
          ?p geo:hasGeometry ?g . ?g geo:asWKT ?w .
          FILTER(geof:sfIntersects(?w,
            "POLYGON ((3.5 -1, 8 -1, 8 2, 3.5 2, 3.5 -1))"^^geo:wktLiteral))
        }
        """
    )
    virtual = {str(r["p"]) for r in engine.query(query)}
    materialized_graph = engine.materialize()
    materialized = {str(r["p"]) for r in materialized_graph.query(query)}
    assert virtual == materialized
    assert len(virtual) == 7  # parks 3..8 plus factory 1


def test_ontology_included():
    from repro.rdf import Graph, RDFS

    conn = MadisConnection()
    conn.executescript(
        "CREATE TABLE parks (id INTEGER, name TEXT, wkt TEXT);"
        "INSERT INTO parks VALUES (1, 'p', 'POINT (0 0)');"
    )
    ontology = Graph()
    ontology.add(IRI(EX + "Park"), RDFS.subClassOf, IRI(EX + "GreenSpace"))
    engine = OntopSpatial.from_document(conn, DOCUMENT, ontology=ontology)
    res = engine.query(
        PREFIX
        + "PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#> "
        "SELECT ?super WHERE { ex:Park rdfs:subClassOf ?super }"
    )
    assert [str(r["super"]) for r in res] == [EX + "GreenSpace"]


def test_ask_query(engine):
    assert engine.query(PREFIX + "ASK { ?p a ex:Park }").ask
    assert not engine.query(PREFIX + "ASK { ?p a ex:Volcano }").ask
