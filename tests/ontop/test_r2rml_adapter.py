"""R2RML-driven OBDA tests (the W3C standard mapping path)."""

import pytest

from repro.madis import MadisConnection
from repro.ontop import OntopSpatial, from_r2rml
from repro.ontop.mapping import OntopMappingError
from repro.rdf import IRI, Literal, RDF

EX = "http://example.org/"

R2RML = """
@prefix rr: <http://www.w3.org/ns/r2rml#> .
@prefix ex: <http://example.org/> .
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .

ex:ParksMap
  rr:logicalTable [ rr:tableName "parks" ] ;
  rr:subjectMap [ rr:template "http://example.org/park/{gid}" ;
                  rr:class ex:Park ] ;
  rr:predicateObjectMap [
    rr:predicate ex:hasName ;
    rr:objectMap [ rr:column "name" ]
  ] ;
  rr:predicateObjectMap [
    rr:predicate ex:hasArea ;
    rr:objectMap [ rr:column "area" ; rr:datatype xsd:double ]
  ] .
"""


@pytest.fixture
def conn():
    conn = MadisConnection()
    conn.executescript(
        """
        CREATE TABLE parks (gid INTEGER, name TEXT, area REAL, wkt TEXT);
        INSERT INTO parks VALUES
          (1, 'Bois de Boulogne', 8.46,
           'POLYGON ((2.22 48.85, 2.27 48.85, 2.27 48.88, 2.22 48.88, 2.22 48.85))'),
          (2, 'Parc Monceau', 0.08,
           'POLYGON ((2.306 48.877, 2.312 48.877, 2.312 48.881, 2.306 48.881, 2.306 48.877))');
        """
    )
    return conn


def test_from_r2rml_materialize(conn):
    engine = from_r2rml(conn, R2RML)
    g = engine.materialize()
    park = IRI(EX + "park/1")
    assert (park, RDF.type, IRI(EX + "Park")) in g
    assert g.value(park, IRI(EX + "hasName")) == \
        Literal("Bois de Boulogne")
    area = g.value(park, IRI(EX + "hasArea"))
    assert float(area.lexical) == pytest.approx(8.46)


def test_from_r2rml_query_with_unfolding(conn):
    engine = from_r2rml(conn, R2RML)
    res = engine.query(
        "PREFIX ex: <http://example.org/> "
        "SELECT ?n WHERE { ?p a ex:Park ; ex:hasName ?n } ORDER BY ?n"
    )
    assert [r["n"].lexical for r in res] == [
        "Bois de Boulogne", "Parc Monceau",
    ]
    assert engine.last_sql == ['SELECT * FROM "parks"']


def test_table_sql_override(conn):
    engine = from_r2rml(
        conn, R2RML,
        table_sql={"parks": "SELECT * FROM parks WHERE area > 1"},
    )
    g = engine.materialize()
    assert len(list(g.subjects(RDF.type, IRI(EX + "Park")))) == 1


def test_geometry_chain_via_r2rml(conn):
    """An R2RML doc whose triples map carries the geometry column."""
    from repro.geotriples import LogicalSource, TermMap, TriplesMap
    from repro.ontop import ontop_mapping_from_triples_map
    from repro.rdf import GEO

    tmap = TriplesMap(
        name="parks-geo",
        logical_source=LogicalSource("rows", ()),
        subject_map=TermMap(template=EX + "park/{gid}"),
        classes=[IRI(EX + "Park")],
        geometry_column="wkt",
    )
    tmap.add_pom(IRI(EX + "hasName"),
                 TermMap(column="name", term_type="literal"))
    mapping = ontop_mapping_from_triples_map(
        tmap, "SELECT * FROM parks"
    )
    engine = OntopSpatial(conn, [mapping])
    res = engine.query(
        """
        PREFIX ex: <http://example.org/>
        PREFIX geo: <http://www.opengis.net/ont/geosparql#>
        PREFIX geof: <http://www.opengis.net/def/function/geosparql/>
        SELECT ?p WHERE {
          ?p a ex:Park ; geo:hasGeometry ?g . ?g geo:asWKT ?w .
          FILTER(geof:sfIntersects(?w,
            "POINT (2.25 48.86)"^^geo:wktLiteral))
        }
        """
    )
    assert [str(r["p"]) for r in res] == [EX + "park/1"]
    # the spatial filter was pushed into SQL
    assert any("ST_INTERSECTS" in sql for sql in engine.last_sql)


def test_missing_table_name_rejected(conn):
    bad = """
    @prefix rr: <http://www.w3.org/ns/r2rml#> .
    @prefix ex: <http://example.org/> .
    ex:Bad rr:subjectMap [ rr:template "http://x/{id}" ; rr:class ex:T ] .
    """
    from repro.geotriples import MappingError

    with pytest.raises((OntopMappingError, MappingError)):
        from_r2rml(conn, bad)
