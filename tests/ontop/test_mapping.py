"""Native mapping language parser tests (Listing 2 format)."""

import pytest

from repro.ontop import (
    OntopMappingError,
    parse_mapping_document,
    parse_target,
)
from repro.rdf import IRI, Literal
from repro.rdf.namespace import NamespaceManager, RDF, XSD

LISTING2 = """\
[PrefixDeclaration]
lai:\thttp://www.app-lab.eu/lai/
geo:\thttp://www.opengis.net/ont/geosparql#
time:\thttp://www.w3.org/2006/time#
xsd:\thttp://www.w3.org/2001/XMLSchema#
rdf:\thttp://www.w3.org/1999/02/22-rdf-syntax-ns#

[MappingDeclaration] @collection [[
mappingId\topendap_mapping
target\tlai:{id} rdf:type lai:Observation .
\tlai:{id} lai:lai {LAI}^^xsd:float ;
\t     time:hasTime {ts}^^xsd:dateTime .
\tlai:{id} geo:hasGeometry _:g .
\t_:g geo:asWKT {loc}^^geo:wktLiteral .
source\tSELECT id, LAI, ts, loc
\tFROM (ordered opendap url:dap://vito.test/Copernicus/LAI, 10)
\tWHERE LAI > 0
]]
"""


def test_parse_listing2_document():
    mappings, ns = parse_mapping_document(LISTING2)
    assert len(mappings) == 1
    m = mappings[0]
    assert m.mapping_id == "opendap_mapping"
    assert m.source_sql.startswith("SELECT id, LAI, ts, loc")
    assert "opendap url:dap://vito.test" in m.source_sql
    assert len(m.target) == 5


def test_target_templates_instantiate():
    mappings, __ = parse_mapping_document(LISTING2)
    row = {
        "id": "2.25_48.86_201806010000",
        "LAI": 3.5,
        "ts": "2018-06-01T00:00:00Z",
        "loc": "POINT (2.25 48.86)",
    }
    bnodes = {}
    triples = [t.instantiate(row, bnodes) for t in mappings[0].target]
    assert all(t is not None for t in triples)
    lai_ns = "http://www.app-lab.eu/lai/"
    subject = IRI(lai_ns + "2.25_48.86_201806010000")
    assert triples[0].s == subject
    assert triples[0].p == RDF.type
    assert triples[1].o == Literal("3.5", datatype=XSD.float)
    # the two _:g occurrences resolve to the same per-row bnode
    assert triples[3].o == triples[4].s


def test_bnode_fresh_per_row():
    mappings, __ = parse_mapping_document(LISTING2)
    row = {"id": "x", "LAI": 1, "ts": "t", "loc": "POINT (0 0)"}
    t1 = mappings[0].target[3].instantiate(dict(row), {})
    t2 = mappings[0].target[3].instantiate(dict(row), {})
    assert t1.o != t2.o


def test_null_column_skips_triple():
    mappings, __ = parse_mapping_document(LISTING2)
    row = {"id": "x", "LAI": None, "ts": "t", "loc": "POINT (0 0)"}
    assert mappings[0].target[1].instantiate(row, {}) is None
    assert mappings[0].target[0].instantiate(row, {}) is not None


def test_multiple_mappings():
    doc = LISTING2 + """
mappingId\tsecond
target\tlai:{id} lai:ndvi {NDVI}^^xsd:float .
source\tSELECT id, NDVI FROM ndvi_table
"""
    mappings, __ = parse_mapping_document(doc)
    assert [m.mapping_id for m in mappings] == ["opendap_mapping", "second"]


def test_parse_target_object_list():
    ns = NamespaceManager()
    triples = parse_target(
        "lai:{id} a lai:Observation , lai:Measurement .", ns
    )
    assert len(triples) == 2
    assert triples[0].p.constant == RDF.type


def test_parse_target_quoted_literal():
    ns = NamespaceManager()
    triples = parse_target('lai:{id} lai:name "fixed name"@fr .', ns)
    node = triples[0].o
    assert node.kind == "literal"
    assert node.lang == "fr"
    assert node.instantiate({"id": 1}, {}) == Literal("fixed name", lang="fr")


def test_parse_target_iriref():
    ns = NamespaceManager()
    triples = parse_target(
        "<http://ex/{id}> <http://ex/p> {v}^^xsd:int .", ns
    )
    t = triples[0].instantiate({"id": 5, "v": 9}, {})
    assert t.s == IRI("http://ex/5")


def test_bad_prefix_raises():
    with pytest.raises(OntopMappingError):
        parse_target("nosuch:{id} a nosuch:Thing .", NamespaceManager())


def test_empty_document_raises():
    with pytest.raises(OntopMappingError):
        parse_mapping_document("[PrefixDeclaration]\n")


def test_block_without_source_raises():
    with pytest.raises(OntopMappingError):
        parse_mapping_document(
            "mappingId m1\ntarget lai:{id} a lai:X .\n"
        )


def test_iri_spaces_sanitized():
    ns = NamespaceManager()
    triples = parse_target("lai:{name} a lai:Park .", ns)
    t = triples[0].instantiate({"name": "Bois de Boulogne"}, {})
    assert " " not in str(t.s)
