"""Golden-file tests for EXPLAIN, plus the LIMIT-k short-circuit.

The golden files under ``golden/`` pin the rendered (unexecuted) plans
of three representative queries: a filtered multi-pattern BGP (join
ordering + filter placement), OPTIONAL with a UNION tail (correlated
sub-plans), and ORDER BY + LIMIT (the TopK path). If a planner change
alters a plan *intentionally*, regenerate the file with the builder
below and review the diff — that is the point of the golden.
"""

import pathlib

import pytest

from repro.rdf.graph import Graph
from repro.rdf.terms import IRI, Literal
from repro.sparql import query

pytestmark = pytest.mark.tier1

GOLDEN_DIR = pathlib.Path(__file__).resolve().parent / "golden"
EX = "http://example.org/"

QUERIES = {
    "bgp_filter": """SELECT ?p ?a WHERE {
  ?p <http://example.org/type> <http://example.org/Person> .
  ?p <http://example.org/city> <http://example.org/city/paris> .
  ?p <http://example.org/age> ?a .
  FILTER(?a > 25)
}""",
    "optional_union": """SELECT * WHERE {
  ?p <http://example.org/age> ?a .
  OPTIONAL { ?p <http://example.org/knows> ?q . }
  { ?p <http://example.org/city> ?c . } UNION \
{ ?p <http://example.org/knows> ?c . }
}""",
    "topk": """SELECT ?p ?a WHERE {
  ?p <http://example.org/age> ?a .
  ?p <http://example.org/type> <http://example.org/Person> .
} ORDER BY DESC(?a) LIMIT 5""",
}


def build_graph() -> Graph:
    g = Graph()
    for i in range(20):
        s = IRI(f"{EX}person/{i}")
        g.add(s, IRI(EX + "type"), IRI(EX + "Person"))
        g.add(s, IRI(EX + "age"), Literal(20 + i))
        if i % 2 == 0:
            g.add(s, IRI(EX + "city"), IRI(EX + "city/paris"))
        if i % 3 == 0:
            g.add(s, IRI(EX + "knows"), IRI(f"{EX}person/{(i + 1) % 20}"))
    return g


@pytest.mark.parametrize("name", sorted(QUERIES))
def test_explain_matches_golden(name):
    g = build_graph()
    rendered = g.explain(QUERIES[name]) + "\n"
    golden = (GOLDEN_DIR / f"explain_{name}.txt").read_text()
    assert rendered == golden


def test_executed_plan_fills_actual_rows():
    g = build_graph()
    result = query(g, QUERIES["bgp_filter"])
    plan = result.plan
    assert plan is not None
    assert plan.actual_rows == len(result.rows)
    # every operator counted something concrete (no '-' leftovers)
    assert all(n.actual_rows is not None for n in plan.walk())
    assert "rows=-" not in result.explain()


def test_limit_short_circuits_scanning():
    """LIMIT k must stop pulling: scan actuals stay far below |G|."""
    g = Graph()
    p = IRI(EX + "p")
    for i in range(5000):
        g.add(IRI(f"{EX}s/{i}"), p, Literal(i))
    result = query(g, "SELECT ?s WHERE { ?s <%sp> ?o . } LIMIT 3" % EX)
    assert len(result.rows) == 3
    scans = [n for n in result.plan.walk() if n.label.endswith("Scan")]
    assert scans
    assert sum(n.actual_rows for n in scans) < 50  # ≪ 5000 triples
