"""StatsStore unit behaviour: signatures, EWMA, versioning, freezing."""

import json

import pytest

from repro.rdf.graph import Graph
from repro.rdf.terms import IRI, Literal
from repro.sparql import StatsStore, explain, query
from repro.sparql.ast import TriplePattern, Var
from repro.sparql.stats import (
    bgp_signature,
    federation_signature,
    pattern_signature,
    service_signature,
)

pytestmark = pytest.mark.tier1

EX = "http://example.org/"


# -- signatures ---------------------------------------------------------------

def test_pattern_signature_masks_variable_names_not_shape():
    p = TriplePattern(Var("x"), IRI(EX + "knows"), Var("y"))
    q = TriplePattern(Var("a"), IRI(EX + "knows"), Var("b"))
    # same shape + same bound mask => same signature, names don't matter
    assert pattern_signature(p, {"x"}) == pattern_signature(q, {"a"})
    # a different bound mask is a different signature
    assert pattern_signature(p, {"x"}) != pattern_signature(p, set())
    assert pattern_signature(p, set()) \
        == f"scan(?f <{EX}knows> ?f)"


def test_spatial_scans_key_separately():
    p = TriplePattern(Var("x"), IRI(EX + "within"), Var("y"))
    assert pattern_signature(p, set(), spatial=True) \
        != pattern_signature(p, set())


def test_bgp_signature_is_order_insensitive():
    sigs = ["scan(?f <urn:a> ?f)", "scan(?b <urn:b> ?f)"]
    assert bgp_signature(sigs) == bgp_signature(list(reversed(sigs)))


def test_service_and_federation_signatures():
    assert service_signature("urn:ep") == "service(urn:ep)"
    sig = federation_signature("urn:ep", None, IRI(EX + "p"), IRI(EX + "o"))
    assert sig == f"fed(urn:ep ?f <{EX}p> ?b)"


# -- ingestion / versioning ---------------------------------------------------

def test_record_and_estimate_ewma():
    store = StatsStore(ewma_alpha=0.5)
    store.record("sig", 10.0)
    assert store.estimate("sig") == 10.0
    store.record("sig", 20.0)
    assert store.estimate("sig") == pytest.approx(15.0)
    assert store.record_for("sig").observations == 2
    assert store.estimate("unknown") is None
    assert store.estimate(None) is None


def test_version_bumps_only_on_material_change():
    store = StatsStore(drift_ratio=2.0)
    v0 = store.version
    store.record("sig", 10.0)           # new signature: material
    v1 = store.version
    assert v1 == v0 + 1
    store.record("sig", 10.0)           # steady state: noise, no bump
    store.record("sig", 11.0)
    assert store.version == v1
    store.record("sig", 1000.0)         # drift past the ratio: material
    assert store.version == v1 + 1


def test_observe_profile_batches_one_bump():
    store = StatsStore()
    v0 = store.version
    rows = [
        {"signature": "a", "probes": 2, "rows_out": 10, "time_s": 0.0},
        {"signature": "b", "probes": 1, "rows_out": 3, "time_s": 0.0},
        {"signature": None, "probes": 1, "rows_out": 9},   # skipped
        {"signature": "c", "probes": 0, "rows_out": 9},    # never probed
        {"signature": "d", "probes": 1, "rows_out": None},  # never ran
    ]
    assert store.observe_profile(rows) is True
    assert store.version == v0 + 1
    assert store.estimate("a") == 5.0  # per-probe mean
    assert store.estimate("b") == 3.0
    assert "c" not in store and "d" not in store


def test_zero_row_observations_are_ingested():
    """An empty scan is feedback, not a gap (corrects overestimates)."""
    store = StatsStore()
    store.record("sig", 50.0)
    store.observe_profile(
        [{"signature": "sig", "probes": 1, "rows_out": 0, "time_s": 0.0}])
    assert store.estimate("sig") == pytest.approx(25.0)


def test_freeze_blocks_every_ingestion_path():
    store = StatsStore()
    store.record("sig", 5.0)
    version = store.version
    store.freeze()
    assert store.record("sig", 500.0) is False
    assert store.observe_profile(
        [{"signature": "x", "probes": 1, "rows_out": 9}]) is False
    assert store.version == version
    assert store.estimate("sig") == 5.0
    store.thaw()
    store.record("other", 1.0)
    assert store.version == version + 1


# -- persistence --------------------------------------------------------------

def test_snapshot_roundtrip_is_byte_stable(tmp_path):
    store = StatsStore()
    store.record("z", 3.0, mean_time_s=0.25)
    store.record("a", 7.0)
    path = tmp_path / "stats.json"
    store.save(path)
    loaded = StatsStore.load(path)
    assert loaded.version == store.version
    assert loaded.estimate("a") == 7.0
    assert loaded.timing("z") == 0.25
    path2 = tmp_path / "stats2.json"
    loaded.save(path2)
    assert path.read_bytes() == path2.read_bytes()
    # records are sorted for deterministic dumps
    assert list(json.loads(path.read_text())["records"]) == ["a", "z"]


# -- the executor feedback path ----------------------------------------------

def test_executed_queries_feed_the_store():
    g = Graph()
    for i in range(8):
        g.add(IRI(f"{EX}s{i}"), IRI(EX + "p"), Literal(i))
    store = StatsStore()
    result = query(g, "SELECT ?s ?o WHERE { ?s <%sp> ?o }" % EX,
                   stats=store)
    assert len(result) == 8
    assert len(store) > 0
    sig = f"scan(?f <{EX}p> ?f)"
    assert store.estimate(sig) == 8.0
    # the next planning of the same shape uses the feedback
    plan = explain(g, "SELECT ?s ?o WHERE { ?s <%sp> ?o }" % EX, stats=store)
    scan = [n for n in plan.walk() if n.signature == sig]
    assert scan and scan[0].est_source == "feedback"
