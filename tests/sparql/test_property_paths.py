"""Sequence property path tests (``p1/p2`` in triple patterns)."""

import pytest

from repro.geometry import Point, to_wkt_literal
from repro.rdf import GEO, GEO_WKT_LITERAL, Graph, IRI, Literal, RDF

EX = "http://example.org/"


def ex(name):
    return IRI(EX + name)


@pytest.fixture
def g():
    g = Graph()
    g.bind("ex", EX)
    for i in range(3):
        feature = ex(f"f{i}")
        geom = ex(f"f{i}/geom")
        g.add(feature, RDF.type, ex("Feature"))
        g.add(feature, GEO.hasGeometry, geom)
        g.add(geom, GEO.asWKT,
              Literal(to_wkt_literal(Point(float(i), 0.0)),
                      datatype=GEO_WKT_LITERAL))
    g.add(ex("f0"), ex("partOf"), ex("f1"))
    g.add(ex("f1"), ex("partOf"), ex("f2"))
    return g


def test_two_step_path(g):
    res = g.query(
        "PREFIX geo: <http://www.opengis.net/ont/geosparql#> "
        "SELECT ?f ?w WHERE { ?f geo:hasGeometry/geo:asWKT ?w }"
    )
    assert len(res) == 3
    assert all("POINT" in r["w"].lexical for r in res)


def test_path_with_filter(g):
    res = g.query(
        """
        PREFIX ex: <http://example.org/>
        PREFIX geo: <http://www.opengis.net/ont/geosparql#>
        PREFIX geof: <http://www.opengis.net/def/function/geosparql/>
        SELECT ?f WHERE {
          ?f geo:hasGeometry/geo:asWKT ?w .
          FILTER(geof:sfIntersects(?w, "POINT (1 0)"^^geo:wktLiteral))
        }
        """
    )
    assert [str(r["f"]) for r in res] == [EX + "f1"]


def test_three_step_path(g):
    res = g.query(
        "PREFIX ex: <http://example.org/> "
        "PREFIX geo: <http://www.opengis.net/ont/geosparql#> "
        "SELECT ?w WHERE { ex:f0 ex:partOf/geo:hasGeometry/geo:asWKT ?w }"
    )
    assert len(res) == 1
    assert "POINT (1 0)" in res.rows[0]["w"].lexical


def test_path_hop_vars_hidden_from_select_star(g):
    res = g.query(
        "PREFIX geo: <http://www.opengis.net/ont/geosparql#> "
        "SELECT * WHERE { ?f geo:hasGeometry/geo:asWKT ?w }"
    )
    assert set(res.vars) == {"f", "w"}


def test_paths_in_object_lists(g):
    res = g.query(
        "PREFIX ex: <http://example.org/> "
        "SELECT ?x WHERE { ex:f0 ex:partOf/ex:partOf ?x }"
    )
    assert [str(r["x"]) for r in res] == [EX + "f2"]


def test_path_listing_style(g):
    """The common GeoSPARQL idiom from real Geographica queries."""
    res = g.query(
        """
        PREFIX ex: <http://example.org/>
        PREFIX geo: <http://www.opengis.net/ont/geosparql#>
        SELECT (COUNT(?w) AS ?n) WHERE {
          ?f a ex:Feature ; geo:hasGeometry/geo:asWKT ?w .
        }
        """
    )
    assert res.rows[0]["n"].value == 3
