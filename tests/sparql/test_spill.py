"""Spill-join edge cases: exactness, bounded memory, clean teardown.

:class:`~repro.sparql.spill.SpillHashJoin` must be a drop-in for the
in-memory ``_HashJoiner`` — byte-identical output including row order,
at any spill threshold — with three extra invariants: the in-memory
build side never exceeds the configured bound, a ``BudgetExceeded``
raised mid-build or mid-probe leaves no orphan spill files behind, and
the spill files themselves hash identically across worker counts.
"""

import random

import pytest

import repro.sparql.spill as spill_mod
from repro.governance import BudgetExceeded, QueryBudget
from repro.parallel import ThreadExecutor, WorkerPool
from repro.rdf.graph import Graph
from repro.rdf.terms import IRI, Literal
from repro.sparql import query
from repro.sparql.operators import _HashJoiner
from repro.sparql.spill import SpillHashJoin

pytestmark = pytest.mark.tier1

EX = "http://example.org/"


def make_rows(n, seed=3):
    rnd = random.Random(seed)
    rows = []
    for i in range(n):
        row = {"k": Literal(str(rnd.randrange(6))),
               "v": IRI(f"{EX}v/{i}")}
        if rnd.random() < 0.2:
            del row["k"]  # irregular: does not bind the full key
        rows.append(row)
    return rows


def probe_rows():
    return [{"k": Literal(str(i))} for i in range(8)] + [{}]


def join_output(joiner, probes):
    out = []
    for left in probes:
        out.extend(tuple(sorted(m.items())) for m in joiner.matches(left))
    return out


@pytest.mark.parametrize("threshold", [0, 5, 10_000])
def test_spill_join_matches_in_memory_join_exactly(tmp_path, threshold):
    build = make_rows(60)
    probes = probe_rows()
    expected = join_output(_HashJoiner(build), probes)
    joiner = SpillHashJoin(("k",), max_build_rows=threshold,
                           spill_dir=tmp_path / "spill", tag="t")
    try:
        joiner.build(build)
        assert join_output(joiner, probes) == expected
        assert joiner.stats["peak_build_rows"] <= max(threshold, 0)
    finally:
        stats = joiner.close()
    assert stats["build_rows"] == 60
    assert not (tmp_path / "spill").exists() or \
        not list((tmp_path / "spill").iterdir())


def test_empty_build_side_spills_nothing(tmp_path):
    joiner = SpillHashJoin(("k",), max_build_rows=0,
                           spill_dir=tmp_path / "spill", tag="t")
    joiner.build([])
    assert list(joiner.matches({"k": Literal("1")})) == []
    stats = joiner.close()
    assert stats["build_rows"] == stats["spilled_rows"] == 0
    assert not (tmp_path / "spill").exists()


def test_zero_bound_spills_every_keyed_row(tmp_path):
    build = make_rows(40)
    keyed = sum(1 for row in build if "k" in row)
    joiner = SpillHashJoin(("k",), max_build_rows=0,
                           spill_dir=tmp_path / "spill", tag="t")
    try:
        joiner.build(build)
        assert joiner.stats["peak_build_rows"] == 0
        assert joiner.stats["spilled_rows"] == keyed
        assert joiner.stats["irregular_rows"] == 40 - keyed
    finally:
        joiner.close()


def test_empty_key_cross_join_stays_bounded(tmp_path):
    build = [{"v": IRI(f"{EX}v/{i}")} for i in range(50)]
    expected = join_output(_HashJoiner(build), [{}])
    joiner = SpillHashJoin((), max_build_rows=4,
                           spill_dir=tmp_path / "spill", tag="t")
    try:
        joiner.build(build)
        assert joiner.stats["peak_build_rows"] <= 4
        assert join_output(joiner, [{}]) == expected
    finally:
        joiner.close()


def test_budget_exceeded_mid_spill_leaves_no_orphans(tmp_path):
    spill_dir = tmp_path / "spill"
    budget = QueryBudget(max_triples=10)
    joiner = SpillHashJoin(("k",), max_build_rows=0,
                           spill_dir=spill_dir, tag="t", budget=budget)
    with pytest.raises(BudgetExceeded):
        joiner.build(make_rows(60))
    assert list(spill_dir.glob("*.spill")), \
        "the bound must have produced spill files before the trip"
    joiner.close()
    assert not spill_dir.exists() or not list(spill_dir.iterdir())


def test_query_level_budget_trip_cleans_spill_dir(tmp_path):
    g = Graph(shards=2)
    for i in range(40):
        s = IRI(f"{EX}s/{i}")
        g.add(s, IRI(EX + "type"), IRI(EX + "A"))
        g.add(s, IRI(EX + "val"), Literal(str(i)))
    q = (f"SELECT ?s ?v WHERE {{ ?s <{EX}type> <{EX}A> . "
         f"{{ SELECT ?s ?v WHERE {{ ?s <{EX}val> ?v }} }} }}")
    spill_dir = tmp_path / "spill"
    with pytest.raises(BudgetExceeded):
        query(g, q, budget=QueryBudget(max_triples=50),
              spill_threshold=0, spill_dir=spill_dir)
    assert not spill_dir.exists() or not list(spill_dir.iterdir())


def test_spill_file_digests_identical_across_worker_counts(tmp_path):
    g = Graph(shards=4)
    for i in range(60):
        s = IRI(f"{EX}s/{i}")
        g.add(s, IRI(EX + "type"), IRI(EX + "A"))
        g.add(s, IRI(EX + "val"), Literal(str(i)))
    q = (f"SELECT ?s ?v WHERE {{ ?s <{EX}type> <{EX}A> . "
         f"{{ SELECT ?s ?v WHERE {{ ?s <{EX}val> ?v }} }} }}")

    payloads, digest_sets = [], []
    for workers in (1, 2, 4):
        observed = []
        spill_mod.SPILL_OBSERVER = observed.append
        pool = (WorkerPool(workers, ThreadExecutor(workers))
                if workers > 1 else None)
        try:
            result = query(g, q, pool=pool, spill_threshold=3,
                           spill_dir=tmp_path / f"w{workers}")
        finally:
            spill_mod.SPILL_OBSERVER = None
            if pool is not None:
                pool.close()
        payloads.append(result.to_json())
        assert observed and observed[0]["spilled_rows"] > 0
        digest_sets.append(observed[0]["file_digests"])
        assert not (tmp_path / f"w{workers}").exists() or \
            not list((tmp_path / f"w{workers}").iterdir())

    assert payloads[0] == payloads[1] == payloads[2]
    assert digest_sets[0] == digest_sets[1] == digest_sets[2]
    assert digest_sets[0], "expected at least one spilled partition"
