"""Adaptive execution: feedback must change plans, never results.

Three layers of guarantees, all seeded and deterministic:

- **Equivalence**: randomized queries give the same solution bags as
  the preserved seed evaluator whatever the feedback configuration —
  no store, cold store, warm store, and with mid-query re-planning
  armed (including runs where a re-plan actually fired).
- **Adaptivity**: on a hub-skewed graph the divergence check re-orders
  the remaining patterns mid-query (``replans`` > 0, surfaced in
  EXPLAIN) and warm feedback re-orders the next plan outright, both
  strictly shrinking the enumerated intermediate rows.
- **Replay**: with a frozen store, same-seed runs are byte-identical
  across worker counts 1/2/4 — the stats snapshot pins the plan and
  freezing pins the snapshot.
"""

import random
from collections import Counter

import pytest

import reference_evaluator
from repro.parallel import WorkerPool
from repro.rdf.graph import Graph
from repro.rdf.terms import IRI, Literal
from repro.sparql import StatsStore, query
from repro.sparql.evaluator import Context, eval_query
from repro.sparql.federation import FederationEngine, SparqlEndpoint
from repro.sparql.parser import parse_query

pytestmark = pytest.mark.tier1

EX = "http://example.org/"
N_SEEDS = 12


# -- graph builders -----------------------------------------------------------

def random_graph(seed: int) -> Graph:
    rnd = random.Random(seed)
    g = Graph()
    cities = [IRI(f"{EX}city/{c}") for c in ("paris", "athens", "delft")]
    for i in range(30):
        s = IRI(f"{EX}person/{i}")
        g.add(s, IRI(EX + "type"), IRI(EX + "Person"))
        if rnd.random() < 0.8:
            g.add(s, IRI(EX + "name"), Literal(f"name{rnd.randrange(15)}"))
        if rnd.random() < 0.7:
            g.add(s, IRI(EX + "age"), Literal(rnd.randrange(15, 90)))
        if rnd.random() < 0.6:
            g.add(s, IRI(EX + "city"), rnd.choice(cities))
        for __ in range(rnd.randrange(0, 4)):
            g.add(s, IRI(EX + "knows"),
                  IRI(f"{EX}person/{rnd.randrange(30)}"))
    return g


def skew_graph(followers: int = 500) -> Graph:
    """Hub-skewed graph: per-subject mean for ``follows`` is tiny, but
    every hub's fan-out is huge — exactly the estimate/actual gap that
    must trigger a mid-query re-plan."""
    g = Graph()
    users = [IRI(f"{EX}user/{i}") for i in range(followers)]
    for i in range(10):
        hub = IRI(f"{EX}hub/{i}")
        g.add(hub, IRI(EX + "type"), IRI(EX + "Hub"))
        for u in users:
            g.add(hub, IRI(EX + "follows"), u)
    for i, u in enumerate(users):
        g.add(u, IRI(EX + "follows"), users[(i + 1) % followers])
        if i % 10 == 0:
            g.add(u, IRI(EX + "vip"), Literal("true"))
        if i % 5 == 0:
            g.add(u, IRI(EX + "city"), IRI(EX + "paris"))
    return g


SKEW_QUERY = (
    "SELECT ?h ?u WHERE { "
    f"?h <{EX}type> <{EX}Hub> . "
    f"?h <{EX}follows> ?u . "
    f"?u <{EX}vip> ?o . "
    f"?u <{EX}city> <{EX}paris> . }}"
)


PATTERNS = [
    ("?p <{0}type> <{0}Person> .", set()),
    ("?p <{0}knows> ?q .", {"q"}),
    ("?p <{0}age> ?a .", {"a"}),
    ("?q <{0}age> ?b .", {"q", "b"}),
    ("?p <{0}city> ?c .", {"c"}),
    ("?p <{0}name> ?n .", {"n"}),
]


def random_query(rnd) -> str:
    chosen = rnd.sample(PATTERNS, rnd.randrange(2, 5))
    parts = ["\n".join(p.format(EX) for p, __ in chosen)]
    if rnd.random() < 0.4:
        parts.append("OPTIONAL { ?p <%sname> ?optn . }" % EX)
    return "SELECT * WHERE { %s }" % "\n".join(parts)


def bag(result) -> Counter:
    return Counter(
        tuple(sorted((v, t.n3()) for v, t in row.items() if t is not None))
        for row in result.rows)


def run_ref(g, text):
    return reference_evaluator.eval_query(
        parse_query(text), reference_evaluator.Context(g))


def intermediate_rows(result) -> int:
    return sum(n.actual_rows for n in result.plan.walk()
               if n.label == "IndexScan")


# -- equivalence under every feedback configuration ---------------------------

def test_feedback_never_changes_results():
    """Cold store, warm store, and replanning all match the oracle."""
    for seed in range(N_SEEDS):
        rnd = random.Random(2000 + seed)
        g = random_graph(seed % 4)
        text = random_query(rnd)
        expected = bag(run_ref(g, text))
        store = StatsStore()
        for run in range(3):  # cold, warming, warm
            result = query(g, text, stats=store, replan_ratio=2.0)
            assert bag(result) == expected, (text, run)
        # aggressive replanning on the now-warm store
        result = query(g, text, stats=store, replan_ratio=1.1)
        assert bag(result) == expected, text


def test_midquery_replan_fires_and_preserves_results():
    g = skew_graph()
    expected = bag(run_ref(g, SKEW_QUERY))

    static = query(g, SKEW_QUERY)
    assert bag(static) == expected

    adaptive = query(g, SKEW_QUERY, replan_ratio=2.0)
    assert bag(adaptive) == expected
    replans = sum(n.replans for n in adaptive.plan.walk())
    assert replans >= 1
    # the re-plan is surfaced in EXPLAIN and traced in the plan tree
    assert "replans=" in adaptive.explain()
    events = [e for n in adaptive.plan.walk() for e in n.replan_events]
    assert events and all("order" in e for e in events)
    # and it paid off: strictly fewer enumerated intermediate rows
    assert intermediate_rows(adaptive) < intermediate_rows(static)


def test_warm_feedback_reorders_next_plan():
    g = skew_graph()
    expected = bag(run_ref(g, SKEW_QUERY))
    store = StatsStore()
    cold = query(g, SKEW_QUERY, stats=store)
    warm = query(g, SKEW_QUERY, stats=store)
    assert bag(cold) == bag(warm) == expected
    assert intermediate_rows(warm) < intermediate_rows(cold)
    assert "src=feedback" in warm.explain()


def test_replan_spans_appear_under_a_tracer():
    from repro.observability import Tracer

    g = skew_graph()
    tracer = Tracer()
    result = query(g, SKEW_QUERY, replan_ratio=2.0, tracer=tracer)
    assert sum(n.replans for n in result.plan.walk()) >= 1

    def spans(span):
        yield span
        for child in span.children:
            yield from spans(child)

    names = [s.name for s in spans(result.trace)]
    assert "bgp.replan" in names


# -- frozen-snapshot replay ---------------------------------------------------

def member_graphs():
    names = [("unit", ["paris", "lyon", "nice"]),
             ("park", ["jardin", "parc"]),
             ("cover", ["forest"])]
    members = []
    for kind, labels in names:
        g = Graph()
        for label in labels:
            node = IRI(EX + label)
            g.add(node, IRI(EX + kind), Literal(label))
            g.add(node, IRI(EX + "label"), Literal(label.upper()))
        members.append((f"http://{kind}.example/sparql", g))
    return members


FED_QUERY = (
    "PREFIX ex: <http://example.org/>\n"
    "SELECT ?s ?l WHERE { ?s ex:label ?l } ORDER BY ?l ?s"
)


def build_engine(workers, store):
    engine = FederationEngine(pool=WorkerPool(workers=workers),
                              eager_service=True, stats_store=store,
                              replan_ratio=2.0)
    for iri, graph in member_graphs():
        engine.register(iri, SparqlEndpoint(graph, name=iri))
    return engine


def test_frozen_snapshot_runs_are_byte_identical_across_workers():
    # warm a store once, snapshot it, then replay frozen everywhere
    warm = StatsStore()
    build_engine(1, warm).query(FED_QUERY)
    snapshot = warm.snapshot()

    outputs = []
    for workers in (1, 2, 4):
        store = StatsStore().load_snapshot(snapshot).freeze()
        engine = build_engine(workers, store)
        result = engine.query(FED_QUERY)
        outputs.append((result.to_json(), result.explain(),
                        store.version, store.snapshot()))
    assert outputs[0] == outputs[1] == outputs[2]
    # frozen means frozen: the replay ingested nothing
    assert outputs[0][3] == snapshot


def test_federation_feedback_feeds_source_selection():
    store = StatsStore()
    engine = build_engine(1, store)
    engine.query(FED_QUERY)
    sig = (f"fed(http://unit.example/sparql ?f <{EX}label> ?f)")
    assert store.estimate(sig) == 3.0  # paris, lyon, nice
    plan = engine.explain(FED_QUERY)
    scans = [n for n in plan.walk() if n.est_source == "feedback"]
    assert scans, plan.render()


# -- EXPLAIN / profile regressions (display-only + zero-row operators) -------

SUBSELECT_QUERY = (
    "SELECT ?p ?n WHERE { "
    f"?p <{EX}name> ?n "
    f"{{ SELECT ?p WHERE {{ ?p <{EX}age> ?a FILTER(?a >= 30) }} }} }}"
)


def test_display_only_subplan_prints_explicit_dash():
    g = random_graph(0)
    result = query(g, SUBSELECT_QUERY)
    [join] = [n for n in result.plan.walk()
              if n.label == "HashJoin" and n.detail == "subselect"]
    display = join.children[1]
    assert display.display_only
    # executed plan: every executed node has a count, the display-only
    # subtree keeps rows=- (it never ran; zero would be a lie)
    for node in display.walk():
        assert node.actual_rows is None
    assert "rows=-" in result.explain()
    assert join.actual_rows is not None


def test_profile_emits_rows_for_zero_row_and_display_only_operators():
    g = random_graph(0)
    # every term exists in the dictionary, but no person knows a city:
    # the scan genuinely probes and matches nothing
    text = ("SELECT ?p WHERE { "
            f"?p <{EX}knows> <{EX}city/paris> . "
            f"{{ SELECT ?p WHERE {{ ?p <{EX}age> ?a FILTER(?a >= 30) }} }}"
            " }")
    result = query(g, text)
    assert len(result) == 0
    profile = list(result.profile())
    # one profile row per plan node, zero-row operators included
    assert len(profile) == len(list(result.plan.walk()))
    zero = [r for r in profile
            if r["rows_out"] == 0 and r["executed"] and r["probes"]]
    assert zero, "zero-row operators must still emit profile rows"
    ghost = [r for r in profile if not r["executed"]]
    assert ghost and all(r["rows_out"] is None for r in ghost)
    # and the feedback path ingests the zero-row scan
    store = StatsStore()
    store.observe_profile(profile)
    sig = f"scan(?f <{EX}knows> <{EX}city/paris>)"
    assert store.estimate(sig) == 0.0
