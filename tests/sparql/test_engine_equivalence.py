"""Seeded randomized equivalence: plan engine vs the seed evaluator.

The plan-based engine (``repro.sparql.plan`` + ``operators``) must
compute the same solution *bags* as the bottom-up evaluator it
replaced, which is preserved verbatim in
:mod:`reference_evaluator`. Queries are generated from a seeded RNG
over BGP / OPTIONAL / UNION / FILTER / ORDER BY / LIMIT / DISTINCT
fragments, so every run exercises the same query population.

Order-sensitive clauses get sharper checks:

- ORDER BY: the *sequence of sort-key values* must match (row order
  within equal keys may differ — the engines join in different orders
  and SPARQL leaves ties unspecified);
- LIMIT without ORDER BY: any k rows of the full bag are acceptable,
  so we assert the count and multiset containment in the reference's
  unlimited answer.
"""

import random
from collections import Counter

import pytest

import reference_evaluator
from repro.rdf.graph import Graph
from repro.rdf.terms import IRI, Literal
from repro.sparql.evaluator import Context, eval_query
from repro.sparql.parser import parse_query

pytestmark = pytest.mark.tier1

EX = "http://example.org/"

N_SEEDS = 25


def build_graph(seed: int) -> Graph:
    rnd = random.Random(seed)
    g = Graph()
    cities = [IRI(f"{EX}city/{c}")
              for c in ("paris", "athens", "heraklion", "delft")]
    for i in range(30):
        s = IRI(f"{EX}person/{i}")
        g.add(s, IRI(EX + "type"), IRI(EX + "Person"))
        if rnd.random() < 0.8:
            g.add(s, IRI(EX + "name"), Literal(f"name{rnd.randrange(20)}"))
        if rnd.random() < 0.7:
            g.add(s, IRI(EX + "age"), Literal(rnd.randrange(15, 90)))
        if rnd.random() < 0.6:
            g.add(s, IRI(EX + "city"), rnd.choice(cities))
        for __ in range(rnd.randrange(0, 4)):
            g.add(s, IRI(EX + "knows"),
                  IRI(f"{EX}person/{rnd.randrange(30)}"))
    return g


PATTERNS = [
    ("?p <{0}type> <{0}Person> .", set()),
    ("?p <{0}knows> ?q .", {"q"}),
    ("?p <{0}age> ?a .", {"a"}),
    ("?q <{0}age> ?b .", {"q", "b"}),
    ("?p <{0}city> ?c .", {"c"}),
    ("?p <{0}name> ?n .", {"n"}),
]


def random_bgp(rnd):
    """A random 1-3 pattern BGP; returns (text, bound variable names)."""
    chosen = rnd.sample(PATTERNS, rnd.randrange(1, 4))
    text = "\n".join(p.format(EX) for p, __ in chosen)
    bound = {"p"} | set().union(*(extra for __, extra in chosen))
    return text, bound


def random_filter(rnd, bound):
    numeric = [v for v in ("a", "b") if v in bound]
    if not numeric or rnd.random() < 0.4:
        return ""
    var = rnd.choice(numeric)
    op = rnd.choice([">", "<", ">=", "!="])
    return f"FILTER(?{var} {op} {rnd.randrange(20, 80)})"


def random_query(rnd):
    bgp, bound = random_bgp(rnd)
    parts = [bgp, random_filter(rnd, bound)]
    if rnd.random() < 0.5:
        parts.append("OPTIONAL { ?p <%sname> ?optn . }" % EX)
    if rnd.random() < 0.4:
        parts.append(
            "{ ?p <%scity> ?where . } UNION { ?p <%sknows> ?where . }" % (
                EX, EX))
    return "SELECT * WHERE { %s }" % "\n".join(p for p in parts if p)


def run_new(g, text):
    return eval_query(parse_query(text), Context(g))


def run_ref(g, text):
    return reference_evaluator.eval_query(
        parse_query(text), reference_evaluator.Context(g))


def row_key(row):
    return tuple(sorted(
        (var, term.n3()) for var, term in row.items() if term is not None))


def bag(result):
    return Counter(row_key(r) for r in result.rows)


def test_random_queries_bag_equal():
    for seed in range(N_SEEDS):
        rnd = random.Random(1000 + seed)
        g = build_graph(seed % 5)
        text = random_query(rnd)
        assert bag(run_new(g, text)) == bag(run_ref(g, text)), text


def test_distinct_bag_equal():
    for seed in range(N_SEEDS):
        rnd = random.Random(2000 + seed)
        g = build_graph(seed % 5)
        bgp, __ = random_bgp(rnd)
        text = "SELECT DISTINCT ?p WHERE { %s }" % bgp
        assert bag(run_new(g, text)) == bag(run_ref(g, text)), text


def test_order_by_key_sequences_match():
    for seed in range(N_SEEDS):
        rnd = random.Random(3000 + seed)
        g = build_graph(seed % 5)
        desc = rnd.random() < 0.5
        text = (
            "SELECT ?p ?a WHERE { ?p <%sage> ?a . %s } ORDER BY %s" % (
                EX, random_filter(rnd, {"a"}),
                "DESC(?a)" if desc else "?a")
        )
        new, ref = run_new(g, text), run_ref(g, text)
        assert bag(new) == bag(ref), text
        assert [r["a"] for r in new.rows] == [r["a"] for r in ref.rows], text


def test_limit_is_subset_of_full_answer():
    for seed in range(N_SEEDS):
        rnd = random.Random(4000 + seed)
        g = build_graph(seed % 5)
        bgp, __ = random_bgp(rnd)
        limit = rnd.randrange(1, 8)
        limited = run_new(g, "SELECT * WHERE { %s } LIMIT %d" % (bgp, limit))
        full = bag(run_ref(g, "SELECT * WHERE { %s }" % bgp))
        assert len(limited.rows) == min(limit, sum(full.values()))
        assert not (bag(limited) - full), "LIMIT invented rows"


def test_order_limit_offset_rows_equal():
    """ORDER BY + LIMIT/OFFSET goes through TopK — keys must agree."""
    for seed in range(N_SEEDS):
        rnd = random.Random(5000 + seed)
        g = build_graph(seed % 5)
        limit, offset = rnd.randrange(1, 6), rnd.randrange(0, 4)
        text = (
            "SELECT ?p ?a WHERE { ?p <%sage> ?a . }"
            " ORDER BY DESC(?a) LIMIT %d OFFSET %d" % (EX, limit, offset)
        )
        new, ref = run_new(g, text), run_ref(g, text)
        assert [r["a"] for r in new.rows] == [r["a"] for r in ref.rows], text


def test_minus_and_nested_optional_filter():
    """Deterministic composite shapes the generator doesn't emit."""
    g = build_graph(1)
    queries = [
        "SELECT * WHERE { ?p <%stype> <%sPerson> . "
        "MINUS { ?p <%scity> <%scity/paris> . } }" % (EX, EX, EX, EX),
        "SELECT * WHERE { ?p <%sage> ?a . "
        "OPTIONAL { ?p <%sname> ?n FILTER(?a > 40) } }" % (EX, EX),
        "SELECT * WHERE { { ?p <%sage> ?a . FILTER(?a > 50) } UNION "
        "{ ?p <%scity> <%scity/delft> . } }" % (EX, EX, EX),
    ]
    for text in queries:
        assert bag(run_new(g, text)) == bag(run_ref(g, text)), text
