"""Seeded equivalence: the sharded data plane changes nothing but speed.

The acceptance contract for ``Graph(shards=N)`` + the batched operators
is *byte-identity at every cell of the shard x worker matrix*: query
results, executed profiles, and workload reports must be identical at
shards 1/2/4 x workers 1/2/4 — including with chaos-seeded latency
jitter delaying shard scans out of order, and with worker-death fault
plans, where every cell must fail with the same typed error instead of
returning partial rows. EXPLAIN legitimately differs in the printed
``shards=N``; normalizing that one token must make the renderings
byte-identical too.
"""

import random
import re
import time
from collections import Counter

import pytest

import reference_evaluator
from repro.chaos import ChaosExecutor, ChaosPlan, worker_death
from repro.parallel import (
    SerialExecutor,
    ThreadExecutor,
    WorkerDeath,
    WorkerPool,
)
from repro.rdf.graph import Graph
from repro.rdf.terms import IRI, Literal
from repro.sparql import StatsStore, explain, query
from repro.service.workload import WorkloadSpec, build_default_graph, \
    run_workload

pytestmark = pytest.mark.tier1

EX = "http://example.org/"

SHARD_COUNTS = (1, 2, 4)
WORKER_COUNTS = (1, 2, 4)
BATCH = 7  # deliberately tiny: many partial batches per scan

QUERIES = [
    # multi-pattern join, unbound-subject fan-out on every pattern
    f"""SELECT ?s ?v WHERE {{
        ?s <{EX}type> <{EX}A> .
        ?s <{EX}val> ?v .
        ?s <{EX}link> ?o . }}""",
    # OPTIONAL + FILTER
    f"""SELECT ?s ?v ?n WHERE {{
        ?s <{EX}val> ?v .
        OPTIONAL {{ ?s <{EX}name> ?n }}
        FILTER(?v != "3") }}""",
    # UNION with ORDER BY
    f"""SELECT ?s ?x WHERE {{
        {{ ?s <{EX}link> ?x . }} UNION {{ ?s <{EX}type> ?x . }}
    }} ORDER BY ?s ?x""",
    # DISTINCT projection
    f"SELECT DISTINCT ?o WHERE {{ ?s <{EX}type> ?o . }}",
    # VALUES join (hash-join path; spills when a threshold is armed)
    f"""SELECT ?s ?v WHERE {{
        VALUES ?v {{ "0" "1" "2" "5" }}
        ?s <{EX}val> ?v . }}""",
]


def build_graph(shards=None, subjects=48):
    """Same triples in the same insertion order at every shard count,
    so term ids — and therefore id-space scans — are comparable."""
    rnd = random.Random(1234)
    g = Graph(shards=shards)
    for i in range(subjects):
        s = IRI(f"{EX}s/{i}")
        g.add(s, IRI(EX + "type"), IRI(EX + ("A" if i % 2 else "B")))
        g.add(s, IRI(EX + "val"), Literal(str(i % 7)))
        if rnd.random() < 0.5:
            g.add(s, IRI(EX + "link"),
                  IRI(f"{EX}s/{rnd.randrange(subjects)}"))
        if rnd.random() < 0.3:
            g.add(s, IRI(EX + "name"), Literal(f"n{i}"))
    return g


def make_pool(workers, executor=None):
    if workers == 1 and executor is None:
        return None
    return WorkerPool(workers,
                      executor if executor is not None
                      else ThreadExecutor(workers))


def normalize_explain(text):
    return re.sub(r"shards=\d+", "shards=*", text)


# -- the matrix ------------------------------------------------------------

@pytest.mark.parametrize("query_text", QUERIES)
def test_results_profiles_explain_identical_across_matrix(query_text):
    payloads, profiles, explains = set(), [], set()
    for n_shards in SHARD_COUNTS:
        g = build_graph(n_shards)
        for workers in WORKER_COUNTS:
            pool = make_pool(workers)
            try:
                result = query(g, query_text, pool=pool, batch_size=BATCH)
            finally:
                if pool is not None:
                    pool.close()
            payloads.add(result.to_json())
            profiles.append(result.profile().rows)
            explains.add(normalize_explain(result.plan.render()))
    assert len(payloads) == 1, \
        f"{len(payloads)} distinct result payloads across the matrix"
    assert all(rows == profiles[0] for rows in profiles[1:])
    assert len(explains) == 1


@pytest.mark.parametrize("query_text", QUERIES)
def test_spill_threshold_changes_nothing_but_the_spill_counter(
        query_text, tmp_path):
    baseline = None
    for n_shards in SHARD_COUNTS:
        g = build_graph(n_shards)
        result = query(g, query_text, batch_size=BATCH,
                       spill_threshold=2, spill_dir=tmp_path / "spill")
        if baseline is None:
            # no-spill run on the canonical (sharded) path
            baseline = query(build_graph(1), query_text,
                             batch_size=BATCH).to_json()
        assert result.to_json() == baseline
    assert not (tmp_path / "spill").exists() or \
        not list((tmp_path / "spill").iterdir())


# -- reference-evaluator bags ----------------------------------------------

def _bag(result):
    return Counter(
        tuple(sorted((var, term.n3()) for var, term in row.items()
                     if term is not None))
        for row in result.rows)


def test_sharded_bags_match_reference_evaluator():
    from repro.sparql.parser import parse_query

    plain = build_graph(None)
    sharded = build_graph(4)
    pool = make_pool(4)
    try:
        for text in QUERIES:
            ast = parse_query(text)
            ref = reference_evaluator.eval_query(
                ast, reference_evaluator.Context(plain))
            got = query(sharded, text, pool=pool, batch_size=BATCH)
            assert _bag(got) == _bag(ref), text
    finally:
        pool.close()


# -- chaos: latency jitter and worker death --------------------------------

class _JitterExecutor:
    """Delays every task by a chaos-seeded amount before running it.

    Draws happen in submission order (deterministic); the *sleeps*
    happen concurrently on the inner executor's threads, so tasks
    finish in scrambled wall-clock order — exactly the disorder the
    submission-order merge must absorb.
    """

    def __init__(self, inner, rng, max_delay_s=0.004):
        self.inner = inner
        self.rng = rng
        self.max_delay_s = max_delay_s
        self.workers = getattr(inner, "workers", 2)

    def submit(self, fn):
        delay = self.rng.uniform(0.0, self.max_delay_s)

        def delayed():
            time.sleep(delay)
            return fn()

        return self.inner.submit(delayed)

    def shutdown(self):
        self.inner.shutdown()


def test_latency_jitter_never_perturbs_results():
    baseline = None
    plan = ChaosPlan(seed=99)
    for n_shards in (2, 4):
        g = build_graph(n_shards)
        for workers in (2, 4):
            executor = _JitterExecutor(ThreadExecutor(workers),
                                       plan.rng("latency"))
            pool = WorkerPool(workers, executor)
            try:
                result = query(g, QUERIES[0], pool=pool, batch_size=BATCH)
            finally:
                pool.close()
            payload = result.to_json()
            if baseline is None:
                baseline = query(build_graph(1), QUERIES[0],
                                 batch_size=BATCH).to_json()
            assert payload == baseline, (n_shards, workers)


def test_worker_death_raises_same_typed_error_at_every_cell():
    plan = ChaosPlan(seed=7, faults=(worker_death(0.0, 10.0, rate=1.0),))
    for workers in (2, 4):
        g = build_graph(4)
        executor = ChaosExecutor(SerialExecutor(), lambda: 0.5, plan)
        pool = WorkerPool(workers, executor)
        try:
            with pytest.raises(WorkerDeath):
                query(g, QUERIES[0], pool=pool, batch_size=BATCH)
        finally:
            pool.close()
        # the graph survives the failed scan: a clean retry still
        # produces the canonical answer
        clean = query(g, QUERIES[0], batch_size=BATCH)
        assert clean.to_json() == query(build_graph(1), QUERIES[0],
                                        batch_size=BATCH).to_json()


# -- stats feedback transfers across shard counts --------------------------

def test_feedback_learned_at_one_shard_count_transfers():
    store = StatsStore()
    g1 = build_graph(1)
    query(g1, QUERIES[0], batch_size=BATCH, stats=store)
    assert len(store) > 0

    g4 = build_graph(4)
    plan_warm = explain(g4, QUERIES[0], stats=store)
    assert "src=feedback" in plan_warm.render()
    sigs_warm = {n.signature for n in plan_warm.walk()
                 if getattr(n, "signature", None)}
    sigs_cold = {n.signature for n in explain(g1, QUERIES[0]).walk()
                 if getattr(n, "signature", None)}
    assert sigs_warm == sigs_cold  # signatures are shard-invariant


# -- workload reports ------------------------------------------------------

def test_workload_reports_identical_across_shard_counts():
    spec = WorkloadSpec(seed=17, clients=40, rate_rps=300.0,
                        stations=60, regions=6)
    reports = []
    for n_shards in SHARD_COUNTS:
        plain = build_default_graph(stations=60, regions=6)
        g = Graph(shards=n_shards)
        g.namespaces = plain.namespaces
        for t in plain:
            g.add(t)
        reports.append(run_workload(spec, graph=g).to_json())
    assert reports[0] == reports[1] == reports[2]
