"""SPARQL Update tests."""

import pytest

from repro.rdf import Graph, IRI, Literal, RDF
from repro.sparql import SparqlSyntaxError, update

EX = "http://example.org/"
PREFIX = "PREFIX ex: <http://example.org/> "


def ex(name):
    return IRI(EX + name)


@pytest.fixture
def g():
    g = Graph()
    g.bind("ex", EX)
    g.add(ex("a"), RDF.type, ex("Park"))
    g.add(ex("a"), ex("name"), Literal("Bois"))
    g.add(ex("b"), RDF.type, ex("Factory"))
    return g


def test_insert_data(g):
    result = g.sparql_update(
        PREFIX + 'INSERT DATA { ex:c a ex:Park ; ex:name "Monceau" }'
    )
    assert result.inserted == 2
    assert (ex("c"), RDF.type, ex("Park")) in g
    assert g.value(ex("c"), ex("name")) == Literal("Monceau")


def test_insert_data_idempotent(g):
    g.sparql_update(PREFIX + "INSERT DATA { ex:a a ex:Park }")
    result = g.sparql_update(PREFIX + "INSERT DATA { ex:a a ex:Park }")
    assert result.inserted == 0


def test_delete_data(g):
    result = g.sparql_update(
        PREFIX + 'DELETE DATA { ex:a ex:name "Bois" }'
    )
    assert result.deleted == 1
    assert g.value(ex("a"), ex("name")) is None


def test_delete_data_missing_is_noop(g):
    result = g.sparql_update(
        PREFIX + 'DELETE DATA { ex:zz ex:name "ghost" }'
    )
    assert result.deleted == 0


def test_data_with_variable_rejected(g):
    with pytest.raises(SparqlSyntaxError):
        g.sparql_update(PREFIX + "INSERT DATA { ?s a ex:Park }")


def test_delete_where(g):
    result = g.sparql_update(
        PREFIX + "DELETE WHERE { ?s a ex:Park ; ex:name ?n }"
    )
    assert result.deleted == 2
    assert (ex("a"), RDF.type, ex("Park")) not in g
    # the factory is untouched
    assert (ex("b"), RDF.type, ex("Factory")) in g


def test_modify_insert_where(g):
    result = g.sparql_update(
        PREFIX + "INSERT { ?s ex:kind ex:GreenSpace } "
        "WHERE { ?s a ex:Park }"
    )
    assert result.inserted == 1
    assert g.value(ex("a"), ex("kind")) == ex("GreenSpace")


def test_modify_delete_insert_where(g):
    result = g.sparql_update(
        PREFIX + "DELETE { ?s a ex:Park } INSERT { ?s a ex:GreenSpace } "
        "WHERE { ?s a ex:Park }"
    )
    assert result.deleted == 1 and result.inserted == 1
    assert (ex("a"), RDF.type, ex("GreenSpace")) in g
    assert (ex("a"), RDF.type, ex("Park")) not in g


def test_modify_with_filter(g):
    g.add(ex("c"), RDF.type, ex("Park"))
    g.add(ex("c"), ex("name"), Literal("Small"))
    result = g.sparql_update(
        PREFIX + "DELETE { ?s ex:name ?n } WHERE "
        '{ ?s ex:name ?n FILTER(STRSTARTS(?n, "B")) }'
    )
    assert result.deleted == 1
    assert g.value(ex("c"), ex("name")) == Literal("Small")


def test_clear(g):
    result = g.sparql_update("CLEAR ALL")
    assert result.deleted == 3
    assert len(g) == 0


def test_sequence_of_operations(g):
    result = g.sparql_update(
        PREFIX + "DELETE DATA { ex:b a ex:Factory } ; "
        "INSERT DATA { ex:b a ex:Brownfield }"
    )
    assert result.deleted == 1 and result.inserted == 1
    assert (ex("b"), RDF.type, ex("Brownfield")) in g


def test_insert_template_with_bnode(g):
    g.sparql_update(
        PREFIX + "INSERT { ?s ex:geom _:g . _:g ex:wkt \"POINT (0 0)\" } "
        "WHERE { ?s a ex:Park }"
    )
    geom = g.value(ex("a"), ex("geom"))
    assert geom is not None
    assert g.value(geom, ex("wkt")) == Literal("POINT (0 0)")


def test_update_keeps_strabon_index_in_sync():
    from repro.geometry import Point, to_wkt_literal
    from repro.rdf import GEO, GEO_WKT_LITERAL
    from repro.strabon import StrabonStore

    store = StrabonStore()
    store.bind("ex", EX)
    wkt = to_wkt_literal(Point(2.25, 48.86))
    store.sparql_update(
        PREFIX
        + "PREFIX geo: <http://www.opengis.net/ont/geosparql#> "
        f'INSERT DATA {{ ex:g geo:asWKT "{wkt}"'
        "^^geo:wktLiteral }"
    )
    assert store.indexed_geometry_count == 1
    store.sparql_update(
        PREFIX
        + "PREFIX geo: <http://www.opengis.net/ont/geosparql#> "
        "DELETE WHERE { ?g geo:asWKT ?w }"
    )
    assert store.indexed_geometry_count == 0


def test_bad_update_syntax(g):
    with pytest.raises(SparqlSyntaxError):
        g.sparql_update("FROB { }")
    with pytest.raises(SparqlSyntaxError):
        g.sparql_update(PREFIX + "INSERT DATA { ex:a ex:b }")
