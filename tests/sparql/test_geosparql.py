"""GeoSPARQL function and spatial-query tests (Listing 1 shape)."""

import pytest

from repro.geometry import Point, Polygon, to_wkt_literal
from repro.rdf import GEO, GEO_WKT_LITERAL, Graph, IRI, Literal, RDF
from repro.sparql import geometry_from_term, geometry_to_term

EX = "http://example.org/"

PREFIX = """
PREFIX ex: <http://example.org/>
PREFIX geo: <http://www.opengis.net/ont/geosparql#>
PREFIX geof: <http://www.opengis.net/def/function/geosparql/>
PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>
"""


def wkt_lit(geom):
    return Literal(to_wkt_literal(geom), datatype=GEO_WKT_LITERAL)


def ex(name):
    return IRI(EX + name)


@pytest.fixture
def g():
    """A park, a building inside it, and a faraway factory."""
    g = Graph()
    g.bind("ex", EX)
    park = Polygon.box(2.22, 48.85, 2.28, 48.88)
    building = Point(2.25, 48.86)
    factory = Point(2.45, 48.90)
    for name, geom, cls in [
        ("park", park, "Park"),
        ("building", building, "Building"),
        ("factory", factory, "Factory"),
    ]:
        feature = ex(name)
        geometry = ex(name + "_geom")
        g.add(feature, RDF.type, ex(cls))
        g.add(feature, GEO.hasGeometry, geometry)
        g.add(geometry, GEO.asWKT, wkt_lit(geom))
    return g


def test_sf_intersects_join(g):
    res = g.query(
        PREFIX
        + """
        SELECT ?a ?b WHERE {
          ?a a ex:Park ; geo:hasGeometry ?ga . ?ga geo:asWKT ?wa .
          ?b a ex:Building ; geo:hasGeometry ?gb . ?gb geo:asWKT ?wb .
          FILTER(geof:sfIntersects(?wa, ?wb))
        }
        """
    )
    assert len(res) == 1
    assert str(res.rows[0]["b"]) == EX + "building"


def test_sf_within_constant(g):
    bbox = Polygon.box(2.0, 48.0, 3.0, 49.0)
    res = g.query(
        PREFIX
        + f"""
        SELECT ?f WHERE {{
          ?f geo:hasGeometry ?geom . ?geom geo:asWKT ?w .
          FILTER(geof:sfWithin(?w, "{to_wkt_literal(bbox)}"^^geo:wktLiteral))
        }}
        """
    )
    assert len(res) == 3


def test_sf_disjoint(g):
    res = g.query(
        PREFIX
        + """
        SELECT ?b WHERE {
          ?a a ex:Park ; geo:hasGeometry ?ga . ?ga geo:asWKT ?wa .
          ?b a ex:Factory ; geo:hasGeometry ?gb . ?gb geo:asWKT ?wb .
          FILTER(geof:sfDisjoint(?wa, ?wb))
        }
        """
    )
    assert len(res) == 1


def test_geof_distance(g):
    res = g.query(
        PREFIX
        + """
        SELECT ?d WHERE {
          ex:building geo:hasGeometry ?g1 . ?g1 geo:asWKT ?w1 .
          ex:factory geo:hasGeometry ?g2 . ?g2 geo:asWKT ?w2 .
          BIND(geof:distance(?w1, ?w2) AS ?d)
        }
        """
    )
    assert res.rows[0]["d"].value == pytest.approx(0.2039, rel=1e-3)


def test_geof_buffer_and_contains(g):
    res = g.query(
        PREFIX
        + """
        SELECT ?f WHERE {
          ex:building geo:hasGeometry ?gb . ?gb geo:asWKT ?wb .
          ?f geo:hasGeometry ?gf . ?gf geo:asWKT ?wf .
          FILTER(geof:sfWithin(?wf, geof:buffer(?wb, 0.001)))
        }
        """
    )
    assert {str(r["f"]) for r in res} == {EX + "building"}


def test_geof_envelope(g):
    res = g.query(
        PREFIX
        + """
        SELECT ?env WHERE {
          ex:park geo:hasGeometry ?g1 . ?g1 geo:asWKT ?w .
          BIND(geof:envelope(?w) AS ?env)
        }
        """
    )
    env = geometry_from_term(res.rows[0]["env"])
    assert env.bounds == (2.22, 48.85, 2.28, 48.88)


def test_geometry_term_roundtrip():
    geom = Polygon.box(0, 0, 1, 1)
    term = geometry_to_term(geom)
    assert geometry_from_term(term) == geom


def test_geometry_from_plain_literal_raises():
    from repro.sparql import SparqlValueError

    with pytest.raises(SparqlValueError):
        geometry_from_term(Literal("not wkt"))


def test_listing1_shape(g):
    """The paper's Listing 1: park LAI observations via sfIntersects."""
    lai_ns = "http://www.app-lab.eu/lai/"
    # Three LAI observations: two inside the park, one outside.
    obs = [
        ("o1", Point(2.23, 48.86), 3.5),
        ("o2", Point(2.26, 48.87), 4.1),
        ("o3", Point(2.40, 48.89), 0.9),
    ]
    for name, pt, value in obs:
        area = ex("area_" + name)
        geom = ex("geom_" + name)
        g.add(area, IRI(lai_ns + "lai"), Literal(value))
        g.add(area, GEO.hasGeometry, geom)
        g.add(geom, GEO.asWKT, wkt_lit(pt))
    res = g.query(
        PREFIX
        + """
        PREFIX lai: <http://www.app-lab.eu/lai/>
        SELECT DISTINCT ?geoA ?geoB ?lai WHERE {
          ?areaA a ex:Park .
          ?areaA geo:hasGeometry ?geomA .
          ?geomA geo:asWKT ?geoA .
          ?areaB lai:lai ?lai .
          ?areaB geo:hasGeometry ?geomB .
          ?geomB geo:asWKT ?geoB .
          FILTER(geof:sfIntersects(?geoA, ?geoB))
        }
        """
    )
    values = sorted(r["lai"].value for r in res)
    assert values == [3.5, 4.1]
