"""SPARQLResult container API tests."""

import json

import pytest

from repro.rdf import Graph, IRI, Literal
from repro.sparql.results import SPARQLResult

EX = "http://example.org/"


def make_result():
    return SPARQLResult(
        "SELECT",
        variables=["s", "v"],
        rows=[
            {"s": IRI(EX + "a"), "v": Literal(1)},
            {"s": IRI(EX + "b")},  # v unbound
        ],
    )


def test_iteration_and_len():
    res = make_result()
    assert len(res) == 2
    assert [row["s"] for row in res] == [IRI(EX + "a"), IRI(EX + "b")]


def test_column_with_unbound():
    res = make_result()
    assert res.column("v") == [Literal(1), None]
    assert res.column("missing") == [None, None]


def test_bool_semantics():
    assert make_result()
    assert not SPARQLResult("SELECT", variables=["x"], rows=[])
    assert SPARQLResult("ASK", ask=True)
    assert not SPARQLResult("ASK", ask=False)


def test_construct_len_counts_triples():
    g = Graph()
    g.add(IRI(EX + "s"), IRI(EX + "p"), Literal("o"))
    res = SPARQLResult("CONSTRUCT", graph=g)
    assert len(res) == 1


def test_csv_blank_for_unbound():
    csv_text = make_result().to_csv()
    lines = csv_text.strip().splitlines()
    assert lines[0] == "s,v"
    assert lines[2].endswith(",")


def test_json_roundtrip_skips_unbound():
    res = make_result()
    doc = json.loads(res.to_json())
    assert doc["head"]["vars"] == ["s", "v"]
    assert "v" not in doc["results"]["bindings"][1]
    back = SPARQLResult.from_json(res.to_json())
    assert back.rows[1].get("v") is None


def test_ask_json():
    doc = json.loads(SPARQLResult("ASK", ask=True).to_json())
    assert doc["boolean"] is True
    back = SPARQLResult.from_json(json.dumps({"head": {},
                                              "boolean": False}))
    assert back.ask is False


def test_reprs():
    assert "SELECT" in repr(make_result())
    assert "ASK" in repr(SPARQLResult("ASK", ask=True))
    assert "CONSTRUCT" in repr(SPARQLResult("CONSTRUCT", graph=Graph()))
