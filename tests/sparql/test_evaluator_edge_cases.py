"""Evaluator edge cases: joins, solution modifiers, CONSTRUCT/DESCRIBE."""

import pytest

from repro.rdf import BNode, Graph, IRI, Literal, RDF

EX = "http://example.org/"


def ex(name):
    return IRI(EX + name)


@pytest.fixture
def g():
    g = Graph()
    g.bind("ex", EX)
    for name, score in [("a", 3), ("b", 1), ("c", 2)]:
        g.add(ex(name), ex("score"), Literal(score))
        g.add(ex(name), RDF.type, ex("Item"))
    return g


def test_limit_zero(g):
    res = g.query("SELECT ?s WHERE { ?s ?p ?o } LIMIT 0")
    assert len(res) == 0


def test_offset_beyond_end(g):
    res = g.query("SELECT ?s WHERE { ?s ?p ?o } OFFSET 100")
    assert len(res) == 0


def test_empty_graph_patterns():
    g = Graph()
    assert len(g.query("SELECT ?s WHERE { ?s ?p ?o }")) == 0
    assert not g.query("ASK { ?s ?p ?o }").ask


def test_count_star_empty_graph():
    g = Graph()
    res = g.query("SELECT (COUNT(*) AS ?n) WHERE { ?s ?p ?o }")
    assert res.rows[0]["n"].value == 0


def test_minus_without_shared_vars_keeps_all(g):
    """MINUS with disjoint variables removes nothing (SPARQL spec)."""
    res = g.query(
        "PREFIX ex: <http://example.org/> "
        "SELECT ?s WHERE { ?s a ex:Item MINUS { ?x ex:nothing ?y } }"
    )
    assert len(res) == 3


def test_nested_optional(g):
    g.add(ex("a"), ex("alias"), Literal("alpha"))
    res = g.query(
        "PREFIX ex: <http://example.org/> "
        "SELECT ?s ?alias ?extra WHERE { ?s a ex:Item "
        "OPTIONAL { ?s ex:alias ?alias OPTIONAL { ?s ex:extra ?extra } } }"
    )
    by_s = {str(r["s"]): r for r in res}
    assert by_s[EX + "a"].get("alias") == Literal("alpha")
    assert by_s[EX + "b"].get("alias") is None


def test_values_with_undef_acts_as_wildcard(g):
    res = g.query(
        "PREFIX ex: <http://example.org/> "
        "SELECT ?s ?v WHERE { ?s ex:score ?v "
        "VALUES (?s ?v) { (ex:a UNDEF) (UNDEF 2) } }"
    )
    pairs = {(str(r["s"]), r["v"].value) for r in res}
    assert pairs == {(EX + "a", 3), (EX + "c", 2)}


def test_order_by_two_keys(g):
    g.add(ex("a"), ex("group"), Literal("x"))
    g.add(ex("b"), ex("group"), Literal("x"))
    g.add(ex("c"), ex("group"), Literal("w"))
    res = g.query(
        "PREFIX ex: <http://example.org/> "
        "SELECT ?s WHERE { ?s ex:group ?g ; ex:score ?v } "
        "ORDER BY ?g DESC(?v)"
    )
    assert [str(r["s"]) for r in res] == [EX + "c", EX + "a", EX + "b"]


def test_distinct_projection_only(g):
    g.add(ex("a"), ex("score"), Literal(99))
    res = g.query(
        "PREFIX ex: <http://example.org/> "
        "SELECT DISTINCT ?s WHERE { ?s ex:score ?v }"
    )
    assert len(res) == 3  # distinct applies to projected ?s only


def test_sample_returns_a_group_member(g):
    res = g.query(
        "PREFIX ex: <http://example.org/> "
        "SELECT (SAMPLE(?v) AS ?one) WHERE { ?s ex:score ?v }"
    )
    assert res.rows[0]["one"].value in (1, 2, 3)


def test_aggregate_count_distinct(g):
    g.add(ex("d"), ex("score"), Literal(3))  # duplicate value
    res = g.query(
        "PREFIX ex: <http://example.org/> "
        "SELECT (COUNT(DISTINCT ?v) AS ?n) WHERE { ?s ex:score ?v }"
    )
    assert res.rows[0]["n"].value == 3


def test_avg_over_empty_group_unbound():
    g = Graph()
    res = g.query(
        "PREFIX ex: <http://example.org/> "
        "SELECT (AVG(?v) AS ?m) WHERE { ?s ex:score ?v }"
    )
    assert res.rows[0].get("m") is None
    # SUM over empty group is 0 per spec
    res = g.query(
        "PREFIX ex: <http://example.org/> "
        "SELECT (SUM(?v) AS ?m) WHERE { ?s ex:score ?v }"
    )
    assert res.rows[0]["m"].value == 0


def test_construct_with_bnode_template(g):
    res = g.query(
        "PREFIX ex: <http://example.org/> "
        "CONSTRUCT { ?s ex:hasRecord _:r . _:r ex:value ?v } "
        "WHERE { ?s ex:score ?v }"
    )
    assert len(res.graph) == 6
    bnodes = {
        t.o for t in res.graph.triples((None, ex("hasRecord"), None))
    }
    assert len(bnodes) == 3  # fresh bnode per solution
    assert all(isinstance(b, BNode) for b in bnodes)


def test_construct_skips_incomplete(g):
    res = g.query(
        "PREFIX ex: <http://example.org/> "
        "CONSTRUCT { ?s ex:alias ?alias } "
        "WHERE { ?s a ex:Item OPTIONAL { ?s ex:alias ?alias } }"
    )
    assert len(res.graph) == 0  # no aliases bound anywhere


def test_describe_with_where(g):
    res = g.query(
        "PREFIX ex: <http://example.org/> "
        "DESCRIBE ?s WHERE { ?s ex:score 3 }"
    )
    assert len(res.graph) == 2  # type + score of ex:a


def test_union_branch_variables_disjoint(g):
    g.add(ex("x"), ex("left"), Literal("L"))
    g.add(ex("y"), ex("right"), Literal("R"))
    res = g.query(
        "PREFIX ex: <http://example.org/> "
        "SELECT ?l ?r WHERE { { ?s ex:left ?l } UNION { ?s ex:right ?r } }"
    )
    assert len(res) == 2
    kinds = {("l" in {k for k, v in row.items() if v is not None})
             for row in res}
    assert kinds == {True, False}


def test_filter_scoped_to_group(g):
    """A filter inside UNION's branch only prunes that branch."""
    res = g.query(
        "PREFIX ex: <http://example.org/> "
        "SELECT ?s WHERE { { ?s ex:score ?v FILTER(?v > 2) } "
        "UNION { ?s ex:score 1 } }"
    )
    assert {str(r["s"]) for r in res} == {EX + "a", EX + "b"}


def test_cross_product_of_bgps(g):
    g2 = Graph()
    g2.bind("ex", EX)
    g2.add(ex("p1"), ex("kind"), Literal("k1"))
    g2.add(ex("p2"), ex("kind"), Literal("k2"))
    res = g2.query(
        "PREFIX ex: <http://example.org/> "
        "SELECT ?a ?b WHERE { ?a ex:kind ?ka . ?b ex:kind ?kb }"
    )
    assert len(res) == 4


def test_bind_before_use_in_filter(g):
    res = g.query(
        "PREFIX ex: <http://example.org/> "
        "SELECT ?s WHERE { ?s ex:score ?v BIND(?v * 10 AS ?big) "
        "FILTER(?big >= 20) }"
    )
    assert {str(r["s"]) for r in res} == {EX + "a", EX + "c"}
