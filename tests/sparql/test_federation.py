"""Federation engine tests (experiment E12)."""

import pytest

from repro.geometry import Point, Polygon, to_wkt_literal
from repro.rdf import GEO, GEO_WKT_LITERAL, Graph, IRI, Literal, RDF
from repro.sparql.federation import FederationEngine, SparqlEndpoint

GADM_NS = "http://www.app-lab.eu/gadm/"
OSM_NS = "http://www.app-lab.eu/osm/"

PREFIX = """
PREFIX gadm: <http://www.app-lab.eu/gadm/>
PREFIX osm: <http://www.app-lab.eu/osm/>
PREFIX geo: <http://www.opengis.net/ont/geosparql#>
PREFIX geof: <http://www.opengis.net/def/function/geosparql/>
"""


def wkt(geom):
    return Literal(to_wkt_literal(geom), datatype=GEO_WKT_LITERAL)


@pytest.fixture
def federation():
    gadm = Graph()
    gadm.bind("gadm", GADM_NS)
    paris = IRI(GADM_NS + "paris")
    gadm.add(paris, RDF.type, IRI(GADM_NS + "AdministrativeUnit"))
    gadm.add(paris, IRI(GADM_NS + "hasName"), Literal("Paris"))
    geom = IRI(GADM_NS + "paris_geom")
    gadm.add(paris, GEO.hasGeometry, geom)
    gadm.add(geom, GEO.asWKT, wkt(Polygon.box(2.2, 48.8, 2.5, 48.95)))

    osm = Graph()
    osm.bind("osm", OSM_NS)
    for name, lon, lat in [
        ("bois_de_boulogne", 2.25, 48.86),
        ("luxembourg", 2.34, 48.85),
        ("faraway_park", 5.0, 50.0),
    ]:
        park = IRI(OSM_NS + name)
        osm.add(park, IRI(OSM_NS + "poiType"), IRI(OSM_NS + "park"))
        osm.add(park, IRI(OSM_NS + "hasName"), Literal(name))
        pg = IRI(OSM_NS + name + "_geom")
        osm.add(park, GEO.hasGeometry, pg)
        osm.add(pg, GEO.asWKT, wkt(Point(lon, lat)))

    engine = FederationEngine()
    engine.register("http://gadm.example/sparql",
                    SparqlEndpoint(gadm, name="gadm"))
    engine.register("http://osm.example/sparql",
                    SparqlEndpoint(osm, name="osm"))
    return engine


def test_transparent_federation_spatial_join(federation):
    """Parks inside the Paris admin area, across two endpoints."""
    res = federation.query(
        PREFIX
        + """
        SELECT ?park WHERE {
          ?unit gadm:hasName "Paris" ; geo:hasGeometry ?gu .
          ?gu geo:asWKT ?wu .
          ?park osm:poiType osm:park ; geo:hasGeometry ?gp .
          ?gp geo:asWKT ?wp .
          FILTER(geof:sfContains(?wu, ?wp))
        }
        """
    )
    names = {str(r["park"]).rsplit("/", 1)[1] for r in res}
    assert names == {"bois_de_boulogne", "luxembourg"}


def test_explicit_service_dispatch(federation):
    res = federation.query(
        PREFIX
        + """
        SELECT ?name WHERE {
          SERVICE <http://osm.example/sparql> {
            ?park osm:poiType osm:park ; osm:hasName ?name .
          }
        }
        """
    )
    assert len(res) == 3


def test_service_and_local_join(federation):
    res = federation.query(
        PREFIX
        + """
        SELECT ?park ?wu WHERE {
          ?unit gadm:hasName "Paris" ; geo:hasGeometry ?gu .
          ?gu geo:asWKT ?wu .
          SERVICE <http://osm.example/sparql> {
            ?park osm:poiType osm:park .
          }
        }
        """
    )
    assert len(res) == 3  # cross product of 1 unit x 3 parks


def test_unknown_service_raises(federation):
    with pytest.raises(KeyError):
        federation.query(
            "SELECT ?s WHERE { SERVICE <http://nope/sparql> { ?s ?p ?o } }"
        )


def test_source_selection_skips_irrelevant_endpoint(federation):
    gadm_ep = federation.endpoint("http://gadm.example/sparql")
    view_triples = list(
        federation.query(
            PREFIX + "SELECT ?s WHERE { ?s osm:poiType osm:park }"
        )
    )
    assert len(view_triples) == 3
    # The GADM endpoint has no osm:poiType predicate, so source selection
    # never touches its graph for that pattern (no request counted —
    # requests are only counted for full query/service dispatch).
    assert gadm_ep.request_count == 0


def test_endpoint_query_api(federation):
    ep = federation.endpoint("http://osm.example/sparql")
    res = ep.query(
        PREFIX + "SELECT (COUNT(*) AS ?n) WHERE { ?s ?p ?o }"
    )
    assert res.rows[0]["n"].value == 12
    assert ep.request_count == 1


def test_request_counts(federation):
    federation.query(
        PREFIX
        + "SELECT ?n WHERE { SERVICE <http://osm.example/sparql> "
        "{ ?p osm:hasName ?n } }"
    )
    counts = federation.request_counts()
    assert counts["http://osm.example/sparql"] == 1
    assert counts["http://gadm.example/sparql"] == 0
