"""SPARQL parser tests."""

import pytest

from repro.rdf import IRI, Literal, RDF
from repro.sparql.ast import (
    Aggregate,
    AskQuery,
    BGP,
    BinaryExpr,
    Bind,
    ConstructQuery,
    Filter,
    FunctionCall,
    InlineValues,
    OptionalPattern,
    SelectQuery,
    ServicePattern,
    SubSelect,
    UnionPattern,
    Var,
    VarExpr,
)
from repro.sparql.parser import parse_query
from repro.sparql.tokenizer import SparqlSyntaxError

PREFIXES = """
PREFIX ex: <http://example.org/>
PREFIX geo: <http://www.opengis.net/ont/geosparql#>
PREFIX geof: <http://www.opengis.net/def/function/geosparql/>
"""


def test_simple_select():
    q = parse_query("SELECT ?s WHERE { ?s ?p ?o }")
    assert isinstance(q, SelectQuery)
    assert [p.var.name for p in q.projections] == ["s"]
    bgp = q.where.elements[0]
    assert isinstance(bgp, BGP)
    assert len(bgp.patterns) == 1


def test_select_star():
    q = parse_query("SELECT * WHERE { ?s ?p ?o }")
    assert q.projections == []


def test_select_distinct_and_modifiers():
    q = parse_query(
        "SELECT DISTINCT ?s WHERE { ?s ?p ?o } ORDER BY DESC(?s) "
        "LIMIT 10 OFFSET 5"
    )
    assert q.distinct
    assert q.limit == 10 and q.offset == 5
    assert q.order_by[0].descending


def test_prefix_expansion():
    q = parse_query(PREFIXES + "SELECT ?s WHERE { ?s a ex:Park }")
    pattern = q.where.elements[0].patterns[0]
    assert pattern.p == RDF.type
    assert pattern.o == IRI("http://example.org/Park")


def test_predicate_object_lists():
    q = parse_query(
        PREFIXES
        + 'SELECT ?s WHERE { ?s a ex:Park ; ex:name "x" , "y" . }'
    )
    assert len(q.where.elements[0].patterns) == 3


def test_typed_literal_and_lang():
    q = parse_query(
        PREFIXES + 'SELECT ?s WHERE { ?s ex:v "1.5"^^ex:float ; '
        'ex:n "chat"@fr }'
    )
    pats = q.where.elements[0].patterns
    assert pats[0].o == Literal("1.5", datatype=IRI("http://example.org/float"))
    assert pats[1].o == Literal("chat", lang="fr")


def test_filter_expression_tree():
    q = parse_query(
        "SELECT ?x WHERE { ?x ?p ?v FILTER(?v > 3 && ?v < 10) }"
    )
    filt = [e for e in q.where.elements if isinstance(e, Filter)][0]
    assert isinstance(filt.expr, BinaryExpr)
    assert filt.expr.op == "&&"


def test_filter_function_iri():
    q = parse_query(
        PREFIXES
        + "SELECT ?a WHERE { ?a geo:asWKT ?w "
        "FILTER(geof:sfIntersects(?w, ?w2)) }"
    )
    filt = [e for e in q.where.elements if isinstance(e, Filter)][0]
    assert isinstance(filt.expr, FunctionCall)
    assert filt.expr.name.endswith("sfIntersects")


def test_optional():
    q = parse_query(
        "SELECT ?s WHERE { ?s ?p ?o OPTIONAL { ?s ?q ?r } }"
    )
    assert any(isinstance(e, OptionalPattern) for e in q.where.elements)


def test_union():
    q = parse_query(
        "SELECT ?s WHERE { { ?s ?p ?o } UNION { ?s ?q ?r } }"
    )
    union = [e for e in q.where.elements if isinstance(e, UnionPattern)][0]
    assert len(union.alternatives) == 2


def test_three_way_union():
    q = parse_query(
        "SELECT ?s WHERE { { ?s ?p 1 } UNION { ?s ?p 2 } UNION { ?s ?p 3 } }"
    )
    union = [e for e in q.where.elements if isinstance(e, UnionPattern)][0]
    assert len(union.alternatives) == 3


def test_bind():
    q = parse_query("SELECT ?y WHERE { ?s ?p ?x BIND(?x + 1 AS ?y) }")
    bind = [e for e in q.where.elements if isinstance(e, Bind)][0]
    assert bind.var == Var("y")


def test_values_multi_var():
    q = parse_query(
        'SELECT ?x WHERE { VALUES (?x ?y) { (1 2) (3 UNDEF) } }'
    )
    values = [e for e in q.where.elements if isinstance(e, InlineValues)][0]
    assert len(values.rows) == 2
    assert values.rows[1][1] is None


def test_values_single_var():
    q = parse_query("SELECT ?x WHERE { VALUES ?x { 1 2 3 } }")
    values = [e for e in q.where.elements if isinstance(e, InlineValues)][0]
    assert len(values.rows) == 3


def test_ask():
    q = parse_query("ASK { ?s ?p ?o }")
    assert isinstance(q, AskQuery)


def test_construct():
    q = parse_query(
        PREFIXES
        + "CONSTRUCT { ?s ex:copy ?o } WHERE { ?s ex:orig ?o }"
    )
    assert isinstance(q, ConstructQuery)
    assert len(q.template) == 1


def test_select_expression_projection():
    q = parse_query("SELECT (?a + ?b AS ?sum) WHERE { ?x ?p ?a, ?b }")
    assert q.projections[0].var == Var("sum")
    assert isinstance(q.projections[0].expr, BinaryExpr)


def test_aggregates_and_group_by():
    q = parse_query(
        "SELECT ?g (COUNT(?x) AS ?n) (AVG(?v) AS ?avg) WHERE "
        "{ ?x ?p ?v ; ?q ?g } GROUP BY ?g HAVING (COUNT(?x) > 2)"
    )
    assert isinstance(q.projections[1].expr, Aggregate)
    assert q.group_by == [VarExpr(Var("g"))]
    assert len(q.having) == 1


def test_count_star():
    q = parse_query("SELECT (COUNT(*) AS ?n) WHERE { ?s ?p ?o }")
    agg = q.projections[0].expr
    assert agg.name == "COUNT" and agg.expr is None


def test_group_concat_separator():
    q = parse_query(
        'SELECT (GROUP_CONCAT(?x; SEPARATOR=",") AS ?all) WHERE { ?s ?p ?x }'
    )
    agg = q.projections[0].expr
    assert agg.separator == ","


def test_service():
    q = parse_query(
        "SELECT ?s WHERE { SERVICE <http://endpoint/sparql> { ?s ?p ?o } }"
    )
    svc = [e for e in q.where.elements if isinstance(e, ServicePattern)][0]
    assert str(svc.endpoint) == "http://endpoint/sparql"


def test_subselect():
    q = parse_query(
        "SELECT ?s WHERE { { SELECT ?s WHERE { ?s ?p ?o } LIMIT 5 } }"
    )
    sub = [e for e in q.where.elements if isinstance(e, SubSelect)][0]
    assert sub.query.limit == 5


def test_not_exists():
    q = parse_query(
        "SELECT ?s WHERE { ?s ?p ?o FILTER(NOT EXISTS { ?s ?q ?r }) }"
    )
    filt = [e for e in q.where.elements if isinstance(e, Filter)][0]
    assert filt.expr.negated


def test_minus():
    from repro.sparql.ast import MinusPattern

    q = parse_query("SELECT ?s WHERE { ?s ?p ?o MINUS { ?s a ?t } }")
    assert any(isinstance(e, MinusPattern) for e in q.where.elements)


def test_anonymous_bnode_in_pattern():
    q = parse_query(
        PREFIXES + "SELECT ?s WHERE { ?s ex:geom [ ex:wkt ?w ] }"
    )
    assert len(q.where.elements[0].patterns) == 2


@pytest.mark.parametrize(
    "bad",
    [
        "SELECT WHERE { ?s ?p ?o }",
        "SELECT ?s { ?s ?p ?o ",
        "SELECT ?s WHERE { ?s ?p }",
        "FROB ?s WHERE { ?s ?p ?o }",
        "SELECT ?s WHERE { ?s ?p ?o } GROUP BY",
        "SELECT ?s WHERE { ?s nosuchprefix:x ?o }",
    ],
)
def test_syntax_errors(bad):
    with pytest.raises(SparqlSyntaxError):
        parse_query(bad)


def test_base_resolution():
    q = parse_query(
        "BASE <http://example.org/> SELECT ?s WHERE { ?s a <Park> }"
    )
    assert q.where.elements[0].patterns[0].o == IRI("http://example.org/Park")
