"""Tokenizer tests."""

import pytest

from repro.sparql.tokenizer import SparqlSyntaxError, tokenize


def kinds(text):
    return [t.kind for t in tokenize(text)[:-1]]


def values(text):
    return [t.value for t in tokenize(text)[:-1]]


def test_basic_select():
    toks = tokenize("SELECT ?s WHERE { ?s a <http://x> . }")
    assert [t.kind for t in toks] == [
        "KEYWORD", "VAR", "KEYWORD", "PUNCT", "VAR", "A", "IRIREF",
        "PUNCT", "PUNCT", "EOF",
    ]


def test_keywords_case_insensitive():
    assert values("select WHERE Filter")[0:3] == ["SELECT", "WHERE", "FILTER"]


def test_iriref_vs_less_than():
    toks = tokenize("FILTER(?x < 3)")
    assert ("PUNCT", "<") in [(t.kind, t.value) for t in toks]
    toks = tokenize("<http://example.org/a>")
    assert toks[0].kind == "IRIREF"
    assert toks[0].value == "http://example.org/a"


def test_string_quotes():
    toks = tokenize('"double" \'single\' """long\nstring"""')
    assert [t.value for t in toks[:-1]] == ["double", "single", "long\nstring"]


def test_numbers():
    assert values("42 3.14 .5 1e3 -7")[0:4] == ["42", "3.14", ".5", "1e3"]


def test_negative_after_operand_splits():
    toks = tokenize("?a-1")
    assert [(t.kind, t.value) for t in toks[:-1]] == [
        ("VAR", "?a"), ("PUNCT", "-"), ("NUMBER", "1"),
    ]


def test_pname_and_bnode():
    toks = tokenize("geo:asWKT _:b1 :local")
    assert toks[0].kind == "PNAME"
    assert toks[1].kind == "BNODE_LABEL"
    assert toks[2].kind == "PNAME"


def test_operators():
    vals = values("= != <= >= || && ! ^^")
    assert vals == ["=", "!=", "<=", ">=", "||", "&&", "!", "^^"]


def test_comments_skipped():
    toks = tokenize("SELECT # a comment\n?s")
    assert len(toks) == 3  # SELECT, VAR, EOF


def test_langtag():
    toks = tokenize('"Paris"@fr')
    assert toks[1].kind == "LANGTAG"
    assert toks[1].value == "@fr"


def test_unknown_word_raises():
    with pytest.raises(SparqlSyntaxError):
        tokenize("SELECT bogusword")
