"""The seed (pre-plan) SPARQL evaluator, preserved verbatim as an oracle.

This is the bottom-up evaluator the repository shipped before the
query core was rebuilt around dictionary encoding and streaming
physical operators (see ``src/repro/sparql/plan.py`` /
``operators.py``). The equivalence suite in
``test_engine_equivalence.py`` runs randomized queries through both
engines and asserts bag-equal results; keep this module byte-stable
apart from the import rewrites below (relative imports became absolute
so it loads from the tests tree).

Extracted from git commit a33d452 (src/repro/sparql/evaluator.py).
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.rdf.graph import Graph
from repro.rdf.terms import BNode, IRI, Literal, Term, literal_cmp_key
from repro.sparql import functions as fns
from repro.sparql.ast import (
    Aggregate,
    AskQuery,
    BGP,
    BinaryExpr,
    Bind,
    ConstructQuery,
    DescribeQuery,
    ExistsExpr,
    Expr,
    Filter,
    FunctionCall,
    GroupGraphPattern,
    InExpr,
    InlineValues,
    MinusPattern,
    OptionalPattern,
    Projection,
    Query,
    SelectQuery,
    ServicePattern,
    SubSelect,
    TermExpr,
    TriplePattern,
    UnaryExpr,
    UnionPattern,
    Var,
    VarExpr,
)
from repro.sparql.functions import SparqlValueError, effective_boolean_value
from repro.sparql.results import Solution, SPARQLResult


class EvaluationError(RuntimeError):
    """Raised for unevaluable query constructs (not per-row errors)."""


class Context:
    """Per-query evaluation context.

    ``budget`` is an optional :class:`~repro.governance.QueryBudget`
    acting as a cooperative cancellation token: the evaluator charges
    every triple it scans (and every result row it assembles) against
    it, so a pathological query terminates with a typed
    :class:`~repro.governance.BudgetExceeded` carrying partial stats
    instead of running unbounded.
    """

    def __init__(self, graph: Graph,
                 service_resolver: Optional[Callable] = None,
                 budget=None):
        self.graph = graph
        self.service_resolver = service_resolver
        self.budget = budget


# ---------------------------------------------------------------------------
# Expression evaluation
# ---------------------------------------------------------------------------

def eval_expr(expr: Expr, solution: Solution, ctx: Context):
    """Evaluate an expression to an RDF term; raises SparqlValueError."""
    if isinstance(expr, TermExpr):
        return expr.term
    if isinstance(expr, VarExpr):
        value = solution.get(expr.var.name)
        if value is None:
            raise SparqlValueError(f"unbound variable ?{expr.var.name}")
        return value
    if isinstance(expr, UnaryExpr):
        if expr.op == "!":
            return Literal(
                not effective_boolean_value(
                    eval_expr(expr.operand, solution, ctx)
                )
            )
        value = fns.numeric_value(eval_expr(expr.operand, solution, ctx))
        return Literal(-value)
    if isinstance(expr, BinaryExpr):
        return _eval_binary(expr, solution, ctx)
    if isinstance(expr, FunctionCall):
        return _eval_function(expr, solution, ctx)
    if isinstance(expr, InExpr):
        value = eval_expr(expr.value, solution, ctx)
        found = False
        for option in expr.options:
            try:
                if _terms_equal(value, eval_expr(option, solution, ctx)):
                    found = True
                    break
            except SparqlValueError:
                continue
        return Literal(found != expr.negated)
    if isinstance(expr, ExistsExpr):
        rows = eval_group(expr.group, [dict(solution)], ctx)
        exists = bool(rows)
        return Literal(exists != expr.negated)
    if isinstance(expr, Aggregate):
        raise SparqlValueError("aggregate outside aggregation context")
    raise EvaluationError(f"cannot evaluate {type(expr).__name__}")


def _eval_binary(expr: BinaryExpr, solution: Solution, ctx: Context):
    op = expr.op
    if op == "||":
        left_err = None
        try:
            if effective_boolean_value(eval_expr(expr.left, solution, ctx)):
                return Literal(True)
        except SparqlValueError as exc:
            left_err = exc
        right = effective_boolean_value(eval_expr(expr.right, solution, ctx))
        if right:
            return Literal(True)
        if left_err is not None:
            raise left_err
        return Literal(False)
    if op == "&&":
        left_err = None
        try:
            if not effective_boolean_value(
                eval_expr(expr.left, solution, ctx)
            ):
                return Literal(False)
        except SparqlValueError as exc:
            left_err = exc
        right = effective_boolean_value(eval_expr(expr.right, solution, ctx))
        if not right:
            return Literal(False)
        if left_err is not None:
            raise left_err
        return Literal(True)

    left = eval_expr(expr.left, solution, ctx)
    right = eval_expr(expr.right, solution, ctx)
    if op in ("+", "-", "*", "/"):
        a, b = fns.numeric_value(left), fns.numeric_value(right)
        if op == "+":
            value = a + b
        elif op == "-":
            value = a - b
        elif op == "*":
            value = a * b
        else:
            if b == 0:
                raise SparqlValueError("division by zero")
            value = a / b
        if isinstance(a, int) and isinstance(b, int) and op != "/":
            return Literal(int(value))
        return Literal(float(value))
    if op == "=":
        return Literal(_terms_equal(left, right))
    if op == "!=":
        return Literal(not _terms_equal(left, right))
    return Literal(_order_compare(op, left, right))


def _terms_equal(a, b) -> bool:
    if isinstance(a, Literal) and isinstance(b, Literal):
        if a == b:
            return True
        if a.is_numeric and b.is_numeric:
            return a.value == b.value
        try:
            av, bv = a.value, b.value
        except ValueError:
            return False
        if type(av) is type(bv) and not isinstance(av, str):
            return av == bv
        return False
    return a == b and type(a) is type(b)


def _order_compare(op: str, a, b) -> bool:
    if not (isinstance(a, Literal) and isinstance(b, Literal)):
        raise SparqlValueError(f"cannot order {a!r} and {b!r}")
    ka, kb = literal_cmp_key(a), literal_cmp_key(b)
    if ka[0] != kb[0]:
        raise SparqlValueError(f"type mismatch comparing {a!r} and {b!r}")
    if op == "<":
        return ka[1] < kb[1]
    if op == ">":
        return ka[1] > kb[1]
    if op == "<=":
        return ka[1] <= kb[1]
    if op == ">=":
        return ka[1] >= kb[1]
    raise EvaluationError(f"unknown comparison {op}")


def _eval_function(call: FunctionCall, solution: Solution, ctx: Context):
    name = call.name
    if name == "BOUND":
        arg = call.args[0]
        if not isinstance(arg, VarExpr):
            raise SparqlValueError("BOUND requires a variable")
        return Literal(solution.get(arg.var.name) is not None)
    if name == "IF":
        cond = effective_boolean_value(
            eval_expr(call.args[0], solution, ctx)
        )
        return eval_expr(call.args[1] if cond else call.args[2],
                         solution, ctx)
    if name == "COALESCE":
        for arg in call.args:
            try:
                return eval_expr(arg, solution, ctx)
            except SparqlValueError:
                continue
        raise SparqlValueError("COALESCE: no bound argument")
    args = [eval_expr(a, solution, ctx) for a in call.args]
    fn = fns.BUILTIN_FUNCTIONS.get(name)
    if fn is None:
        fn = fns.EXTENSION_FUNCTIONS.get(name)
    if fn is None:
        raise EvaluationError(f"unknown function {name!r}")
    return fn(*args)


# ---------------------------------------------------------------------------
# Pattern evaluation
# ---------------------------------------------------------------------------

def _substitute(pattern: TriplePattern, solution: Solution):
    def resolve(node):
        if isinstance(node, Var):
            return solution.get(node.name)
        return node

    return resolve(pattern.s), resolve(pattern.p), resolve(pattern.o)


class _SpatialRestriction:
    """A pushed-down spatial constraint on a variable."""

    __slots__ = ("relation", "geometry")

    def __init__(self, relation: str, geometry):
        self.relation = relation
        self.geometry = geometry


def _extract_spatial_restrictions(
    elements, ctx: Context
) -> Dict[str, _SpatialRestriction]:
    """Find FILTER(geof:sfX(?var, <const-geom>)) constraints in a group."""
    restrictions: Dict[str, _SpatialRestriction] = {}
    for el in elements:
        if not isinstance(el, Filter):
            continue
        expr = el.expr
        if not isinstance(expr, FunctionCall):
            continue
        relation = fns.SPATIAL_RELATIONS.get(expr.name)
        if relation is None or len(expr.args) != 2:
            continue
        a, b = expr.args
        var_arg, const_arg = None, None
        if isinstance(a, VarExpr) and isinstance(b, TermExpr):
            var_arg, const_arg = a, b
        elif isinstance(b, VarExpr) and isinstance(a, TermExpr):
            var_arg, const_arg = b, a
            relation = _invert_relation(relation)
        if var_arg is None:
            continue
        try:
            geom = fns.geometry_from_term(const_arg.term)
        except SparqlValueError:
            continue
        restrictions[var_arg.var.name] = _SpatialRestriction(relation, geom)
    return restrictions


def _invert_relation(relation: str) -> str:
    return {"contains": "within", "within": "contains"}.get(relation, relation)


def _match_bgp(bgp: BGP, solutions: List[Solution], ctx: Context,
               restrictions: Dict[str, _SpatialRestriction]) -> List[Solution]:
    patterns = list(bgp.patterns)
    out = solutions
    bound_vars = set()
    for sol in solutions[:1]:
        bound_vars.update(sol.keys())

    remaining = patterns[:]
    while remaining:
        remaining.sort(
            key=lambda p: _pattern_cost(p, bound_vars, restrictions)
        )
        pattern = remaining.pop(0)
        new_out: List[Solution] = []
        for sol in out:
            new_out.extend(_match_pattern(pattern, sol, ctx, restrictions))
        out = new_out
        if not out:
            return []
        for var in pattern.variables():
            bound_vars.add(var.name)
    return out


def _pattern_cost(pattern: TriplePattern, bound_vars, restrictions) -> tuple:
    unbound = 0
    has_restricted = False
    for position in (pattern.s, pattern.p, pattern.o):
        if isinstance(position, Var) and position.name not in bound_vars:
            unbound += 1
            if position.name in restrictions:
                has_restricted = True
    # Patterns whose object var has a spatial restriction get a discount:
    # the spatial index turns them into bounded lookups.
    return (unbound - (1 if has_restricted else 0), unbound)


def _match_pattern(pattern: TriplePattern, solution: Solution, ctx: Context,
                   restrictions: Dict[str, _SpatialRestriction]
                   ) -> Iterable[Solution]:
    s, p, o = _substitute(pattern, solution)
    graph = ctx.graph
    budget = ctx.budget

    # Spatial pushdown: object variable restricted by a spatial filter and
    # the graph exposes an R-tree over its geometry literals. Only pays
    # off when the subject is unbound — with s bound, the direct (s, p, ?)
    # lookup is O(1) while iterating candidates would be O(candidates)
    # per solution.
    if (
        o is None
        and s is None
        and isinstance(pattern.o, Var)
        and pattern.o.name in restrictions
        and hasattr(graph, "spatial_candidates")
    ):
        restriction = restrictions[pattern.o.name]
        bounds = restriction.geometry.bounds
        if budget is not None and getattr(graph, "budget_aware", False):
            candidates = graph.spatial_candidates(bounds, budget=budget)
        else:
            candidates = graph.spatial_candidates(bounds)
        for candidate in candidates:
            for triple in graph.triples((s, p, candidate)):
                if budget is not None:
                    budget.charge_triples()
                extended = _extend(pattern, triple, solution)
                if extended is not None:
                    yield extended
        return

    for triple in graph.triples((s, p, o)):
        if budget is not None:
            budget.charge_triples()
        extended = _extend(pattern, triple, solution)
        if extended is not None:
            yield extended


def _extend(pattern: TriplePattern, triple, solution: Solution
            ) -> Optional[Solution]:
    out = dict(solution)
    for node, value in ((pattern.s, triple.s), (pattern.p, triple.p),
                        (pattern.o, triple.o)):
        if isinstance(node, Var):
            existing = out.get(node.name)
            if existing is None:
                out[node.name] = value
            elif existing != value:
                return None
    return out


def eval_group(group: GroupGraphPattern, solutions: List[Solution],
               ctx: Context) -> List[Solution]:
    """Evaluate a group graph pattern, seeding from *solutions*."""
    restrictions = _extract_spatial_restrictions(group.elements, ctx)
    filters: List[Filter] = []
    out = solutions
    for element in group.elements:
        if ctx.budget is not None:
            ctx.budget.check_deadline()
        if isinstance(element, Filter):
            filters.append(element)
        elif isinstance(element, BGP):
            out = _match_bgp(element, out, ctx, restrictions)
        elif isinstance(element, OptionalPattern):
            out = _left_join(out, element.group, ctx)
        elif isinstance(element, UnionPattern):
            merged: List[Solution] = []
            for alternative in element.alternatives:
                merged.extend(eval_group(alternative, [dict(s) for s in out],
                                         ctx))
            out = merged
        elif isinstance(element, MinusPattern):
            out = _minus(out, element.group, ctx)
        elif isinstance(element, Bind):
            new_out = []
            for sol in out:
                sol = dict(sol)
                try:
                    sol[element.var.name] = eval_expr(element.expr, sol, ctx)
                except SparqlValueError:
                    pass  # BIND error leaves the variable unbound
                new_out.append(sol)
            out = new_out
        elif isinstance(element, InlineValues):
            out = _join_values(out, element)
        elif isinstance(element, SubSelect):
            sub_result = eval_query(element.query, ctx)
            out = _hash_join(out, sub_result.rows)
        elif isinstance(element, ServicePattern):
            out = _eval_service(element, out, ctx)
        else:  # pragma: no cover - parser prevents this
            raise EvaluationError(f"unknown element {type(element).__name__}")
        if not out:
            break
    for f in filters:
        kept = []
        for sol in out:
            try:
                if effective_boolean_value(eval_expr(f.expr, sol, ctx)):
                    kept.append(sol)
            except SparqlValueError:
                continue  # evaluation error → row dropped
        out = kept
    return out


def _left_join(solutions: List[Solution], group: GroupGraphPattern,
               ctx: Context) -> List[Solution]:
    out: List[Solution] = []
    for sol in solutions:
        extended = eval_group(group, [dict(sol)], ctx)
        if extended:
            out.extend(extended)
        else:
            out.append(sol)
    return out


def _minus(solutions: List[Solution], group: GroupGraphPattern,
           ctx: Context) -> List[Solution]:
    exclusions = eval_group(group, [{}], ctx)
    out = []
    for sol in solutions:
        excluded = False
        for exc in exclusions:
            shared = set(sol) & set(exc)
            if shared and all(sol[v] == exc[v] for v in shared):
                excluded = True
                break
        if not excluded:
            out.append(sol)
    return out


def _join_values(solutions: List[Solution], values: InlineValues
                 ) -> List[Solution]:
    rows = []
    for row in values.rows:
        binding = {
            var.name: term
            for var, term in zip(values.variables, row)
            if term is not None
        }
        rows.append(binding)
    return _hash_join(solutions, rows)


def _hash_join(left: List[Solution], right: List[Solution]) -> List[Solution]:
    out = []
    for sol in left:
        for other in right:
            shared = set(sol) & set(other)
            if all(sol[v] == other[v] for v in shared):
                merged = dict(sol)
                merged.update(other)
                out.append(merged)
    return out


def _eval_service(element: ServicePattern, solutions: List[Solution],
                  ctx: Context) -> List[Solution]:
    if ctx.service_resolver is None:
        raise EvaluationError(
            "SERVICE pattern requires a service resolver (federation)"
        )
    remote_rows = ctx.service_resolver(str(element.endpoint), element.group)
    return _hash_join(solutions, remote_rows)


# ---------------------------------------------------------------------------
# Query forms
# ---------------------------------------------------------------------------

def _projection_has_aggregate(query: SelectQuery) -> bool:
    return any(
        _expr_contains_aggregate(p.expr)
        for p in query.projections
        if p.expr is not None
    )


def _expr_contains_aggregate(expr: Optional[Expr]) -> bool:
    if expr is None:
        return False
    if isinstance(expr, Aggregate):
        return True
    if isinstance(expr, BinaryExpr):
        return _expr_contains_aggregate(expr.left) or _expr_contains_aggregate(
            expr.right
        )
    if isinstance(expr, UnaryExpr):
        return _expr_contains_aggregate(expr.operand)
    if isinstance(expr, FunctionCall):
        return any(_expr_contains_aggregate(a) for a in expr.args)
    return False


def _eval_aggregate(agg: Aggregate, rows: List[Solution], ctx: Context):
    values = []
    if agg.expr is None:  # COUNT(*)
        if agg.name != "COUNT":
            raise SparqlValueError(f"{agg.name}(*) is not valid")
        return Literal(len(rows))
    for row in rows:
        try:
            values.append(eval_expr(agg.expr, row, ctx))
        except SparqlValueError:
            continue
    if agg.distinct:
        seen, unique = set(), []
        for v in values:
            key = (type(v).__name__, v.n3() if hasattr(v, "n3") else str(v))
            if key not in seen:
                seen.add(key)
                unique.append(v)
        values = unique
    name = agg.name
    if name == "COUNT":
        return Literal(len(values))
    if not values:
        if name in ("SUM",):
            return Literal(0)
        raise SparqlValueError(f"{name} over empty group")
    if name == "SUM":
        total = sum(fns.numeric_value(v) for v in values)
        return Literal(total if isinstance(total, float) else int(total))
    if name == "AVG":
        return Literal(
            sum(fns.numeric_value(v) for v in values) / len(values)
        )
    if name == "MIN":
        return min(
            (v for v in values if isinstance(v, Literal)),
            key=literal_cmp_key,
        )
    if name == "MAX":
        return max(
            (v for v in values if isinstance(v, Literal)),
            key=literal_cmp_key,
        )
    if name == "SAMPLE":
        return values[0]
    if name == "GROUP_CONCAT":
        return Literal(agg.separator.join(fns.string_value(v) for v in values))
    raise EvaluationError(f"unknown aggregate {name}")


def _substitute_aggregates(expr: Expr, agg_values: Dict[int, Term]) -> Expr:
    """Replace Aggregate nodes by their computed constant values."""
    if isinstance(expr, Aggregate):
        return TermExpr(agg_values[id(expr)])
    if isinstance(expr, BinaryExpr):
        return BinaryExpr(
            expr.op,
            _substitute_aggregates(expr.left, agg_values),
            _substitute_aggregates(expr.right, agg_values),
        )
    if isinstance(expr, UnaryExpr):
        return UnaryExpr(
            expr.op, _substitute_aggregates(expr.operand, agg_values)
        )
    if isinstance(expr, FunctionCall):
        return FunctionCall(
            expr.name,
            tuple(_substitute_aggregates(a, agg_values) for a in expr.args),
        )
    return expr


def _collect_aggregates(expr: Optional[Expr]) -> List[Aggregate]:
    if expr is None:
        return []
    if isinstance(expr, Aggregate):
        return [expr]
    if isinstance(expr, BinaryExpr):
        return _collect_aggregates(expr.left) + _collect_aggregates(expr.right)
    if isinstance(expr, UnaryExpr):
        return _collect_aggregates(expr.operand)
    if isinstance(expr, FunctionCall):
        return list(
            itertools.chain.from_iterable(
                _collect_aggregates(a) for a in expr.args
            )
        )
    return []


def _eval_select(query: SelectQuery, ctx: Context) -> SPARQLResult:
    rows = eval_group(query.where, [{}], ctx)

    needs_grouping = bool(query.group_by) or _projection_has_aggregate(query)
    if needs_grouping:
        rows = _group_and_aggregate(query, rows, ctx)

    # ORDER BY applies to full solutions, before projection narrows them.
    if query.order_by:
        # Stable multi-key sort: apply conditions right-to-left so the
        # leftmost ORDER BY condition dominates.
        for cond in reversed(query.order_by):

            def key_one(row, cond=cond):
                try:
                    term = eval_expr(cond.expr, row, ctx)
                except SparqlValueError:
                    return ((-1, 0.0), "")
                if isinstance(term, Literal):
                    return (literal_cmp_key(term), "")
                return ((4, 0.0), str(term))

            rows.sort(key=key_one, reverse=cond.descending)

    if not needs_grouping:
        rows = _plain_projection(query, rows, ctx)

    if query.distinct:
        seen = set()
        unique = []
        for row in rows:
            key = tuple(
                (v, row[v].n3() if hasattr(row[v], "n3") else str(row[v]))
                for v in sorted(row)
            )
            if key not in seen:
                seen.add(key)
                unique.append(row)
        rows = unique

    if query.offset:
        rows = rows[query.offset:]
    if query.limit is not None:
        rows = rows[: query.limit]

    # Result-row budget applies to what the caller will actually
    # receive (after DISTINCT/OFFSET/LIMIT narrowed the rows).
    if ctx.budget is not None:
        ctx.budget.charge_rows(len(rows))

    variables = [p.var.name for p in query.projections]
    if not variables:
        seen_vars = []
        for row in rows:
            for v in row:
                # internal hop variables from property-path expansion
                # are not part of the solution
                if v not in seen_vars and not v.startswith("__path"):
                    seen_vars.append(v)
        variables = seen_vars
    return SPARQLResult("SELECT", variables=variables, rows=rows)


def _plain_projection(query: SelectQuery, rows: List[Solution],
                      ctx: Context) -> List[Solution]:
    if not query.projections:
        return rows
    projected = []
    for row in rows:
        out: Solution = {}
        for proj in query.projections:
            if proj.expr is None:
                if proj.var.name in row:
                    out[proj.var.name] = row[proj.var.name]
            else:
                try:
                    out[proj.var.name] = eval_expr(proj.expr, row, ctx)
                except SparqlValueError:
                    pass
        projected.append(out)
    return projected


def _group_and_aggregate(query: SelectQuery, rows: List[Solution],
                         ctx: Context) -> List[Solution]:
    groups: Dict[tuple, List[Solution]] = {}
    if query.group_by:
        for row in rows:
            key_parts = []
            for expr in query.group_by:
                try:
                    term = eval_expr(expr, row, ctx)
                    key_parts.append(term.n3() if hasattr(term, "n3")
                                     else str(term))
                except SparqlValueError:
                    key_parts.append(None)
            groups.setdefault(tuple(key_parts), []).append(row)
    else:
        groups[()] = rows

    out_rows: List[Solution] = []
    for member_rows in groups.values():
        representative = member_rows[0] if member_rows else {}
        agg_values: Dict[int, Term] = {}
        all_aggs: List[Aggregate] = []
        for proj in query.projections:
            all_aggs.extend(_collect_aggregates(proj.expr))
        for having in query.having:
            all_aggs.extend(_collect_aggregates(having))
        ok = True
        for agg in all_aggs:
            try:
                agg_values[id(agg)] = _eval_aggregate(agg, member_rows, ctx)
            except SparqlValueError:
                agg_values[id(agg)] = None
        row_out: Solution = {}
        for proj in query.projections:
            if proj.expr is None:
                if proj.var.name in representative:
                    row_out[proj.var.name] = representative[proj.var.name]
                continue
            expr = _substitute_aggregates(proj.expr, agg_values)
            try:
                if any(
                    agg_values.get(id(a)) is None
                    for a in _collect_aggregates(proj.expr)
                ):
                    raise SparqlValueError("aggregate error")
                row_out[proj.var.name] = eval_expr(expr, representative, ctx)
            except SparqlValueError:
                pass
        for having in query.having:
            expr = _substitute_aggregates(having, agg_values)
            try:
                if not effective_boolean_value(
                    eval_expr(expr, representative, ctx)
                ):
                    ok = False
                    break
            except SparqlValueError:
                ok = False
                break
        if ok:
            out_rows.append(row_out)
    return out_rows


def _eval_ask(query: AskQuery, ctx: Context) -> SPARQLResult:
    rows = eval_group(query.where, [{}], ctx)
    return SPARQLResult("ASK", ask=bool(rows))


def _eval_construct(query: ConstructQuery, ctx: Context) -> SPARQLResult:
    rows = eval_group(query.where, [{}], ctx)
    graph = Graph()
    count = 0
    for row in rows:
        bnode_map: Dict[str, BNode] = {}
        for pattern in query.template:
            triple = _instantiate(pattern, row, bnode_map)
            if triple is not None:
                graph.add(triple)
                count += 1
                if ctx.budget is not None:
                    ctx.budget.charge_rows()
        if query.limit is not None and len(graph) >= query.limit:
            break
    return SPARQLResult("CONSTRUCT", graph=graph)


def _instantiate(pattern: TriplePattern, row: Solution,
                 bnode_map: Dict[str, BNode]):
    from repro.rdf.terms import Triple

    def resolve(node):
        if isinstance(node, Var):
            return row.get(node.name)
        if isinstance(node, BNode):
            if node not in bnode_map:
                bnode_map[node] = BNode()
            return bnode_map[node]
        return node

    s, p, o = resolve(pattern.s), resolve(pattern.p), resolve(pattern.o)
    if s is None or p is None or o is None or isinstance(s, Literal):
        return None
    return Triple(s, p, o)


def _eval_describe(query: DescribeQuery, ctx: Context) -> SPARQLResult:
    graph = Graph()
    targets = []
    if query.where is not None:
        rows = eval_group(query.where, [{}], ctx)
        for term in query.terms:
            if isinstance(term, Var):
                targets.extend(
                    row[term.name] for row in rows if term.name in row
                )
            else:
                targets.append(term)
    else:
        targets = [t for t in query.terms if not isinstance(t, Var)]
    for target in targets:
        for triple in ctx.graph.triples((target, None, None)):
            graph.add(triple)
    return SPARQLResult("DESCRIBE", graph=graph)


def eval_query(query: Query, ctx: Context) -> SPARQLResult:
    if isinstance(query, SelectQuery):
        return _eval_select(query, ctx)
    if isinstance(query, AskQuery):
        return _eval_ask(query, ctx)
    if isinstance(query, ConstructQuery):
        return _eval_construct(query, ctx)
    if isinstance(query, DescribeQuery):
        return _eval_describe(query, ctx)
    raise EvaluationError(f"unsupported query type {type(query).__name__}")
