"""SPARQL evaluator tests over an in-memory graph."""

import pytest

from repro.rdf import Graph, IRI, Literal, RDF, XSD
from repro.sparql import query

EX = "http://example.org/"


def ex(name):
    return IRI(EX + name)


@pytest.fixture
def g():
    g = Graph()
    g.bind("ex", EX)
    data = [
        ("alice", "age", Literal(30)),
        ("alice", "name", Literal("Alice")),
        ("alice", "knows", ex("bob")),
        ("bob", "age", Literal(25)),
        ("bob", "name", Literal("Bob")),
        ("bob", "knows", ex("carol")),
        ("carol", "age", Literal(35)),
        ("carol", "name", Literal("Carol")),
    ]
    for s, p, o in data:
        g.add(ex(s), ex(p), o)
    for person in ("alice", "bob", "carol"):
        g.add(ex(person), RDF.type, ex("Person"))
    return g


def test_select_all(g):
    res = g.query("SELECT ?s ?p ?o WHERE { ?s ?p ?o }")
    assert len(res) == len(g)
    assert res.vars == ["s", "p", "o"]


def test_bgp_join(g):
    res = g.query(
        "PREFIX ex: <http://example.org/> "
        "SELECT ?n WHERE { ?a ex:knows ?b . ?b ex:name ?n }"
    )
    names = {row["n"].lexical for row in res}
    assert names == {"Bob", "Carol"}


def test_filter_numeric(g):
    res = g.query(
        "PREFIX ex: <http://example.org/> "
        "SELECT ?p WHERE { ?p ex:age ?a FILTER(?a > 28) }"
    )
    assert {str(r["p"]) for r in res} == {EX + "alice", EX + "carol"}


def test_filter_arithmetic(g):
    res = g.query(
        "PREFIX ex: <http://example.org/> "
        "SELECT ?p WHERE { ?p ex:age ?a FILTER(?a * 2 = 50) }"
    )
    assert [str(r["p"]) for r in res] == [EX + "bob"]


def test_filter_string_functions(g):
    res = g.query(
        "PREFIX ex: <http://example.org/> "
        'SELECT ?p WHERE { ?p ex:name ?n FILTER(STRSTARTS(?n, "A")) }'
    )
    assert [str(r["p"]) for r in res] == [EX + "alice"]


def test_filter_regex(g):
    res = g.query(
        "PREFIX ex: <http://example.org/> "
        'SELECT ?n WHERE { ?p ex:name ?n FILTER(REGEX(?n, "^[AB]", "i")) }'
    )
    assert {r["n"].lexical for r in res} == {"Alice", "Bob"}


def test_optional(g):
    g.add(ex("dave"), RDF.type, ex("Person"))
    res = g.query(
        "PREFIX ex: <http://example.org/> "
        "SELECT ?p ?a WHERE { ?p a ex:Person OPTIONAL { ?p ex:age ?a } }"
    )
    by_person = {str(r["p"]): r.get("a") for r in res}
    assert by_person[EX + "dave"] is None
    assert by_person[EX + "alice"] == Literal(30)


def test_optional_with_filter_inside(g):
    res = g.query(
        "PREFIX ex: <http://example.org/> "
        "SELECT ?p ?a WHERE { ?p a ex:Person "
        "OPTIONAL { ?p ex:age ?a FILTER(?a > 28) } }"
    )
    by_person = {str(r["p"]): r.get("a") for r in res}
    assert by_person[EX + "bob"] is None
    assert by_person[EX + "carol"] == Literal(35)


def test_union(g):
    res = g.query(
        "PREFIX ex: <http://example.org/> "
        "SELECT ?x WHERE { { ?x ex:age 30 } UNION { ?x ex:age 25 } }"
    )
    assert {str(r["x"]) for r in res} == {EX + "alice", EX + "bob"}


def test_minus(g):
    res = g.query(
        "PREFIX ex: <http://example.org/> "
        "SELECT ?p WHERE { ?p a ex:Person MINUS { ?p ex:age 25 } }"
    )
    assert {str(r["p"]) for r in res} == {EX + "alice", EX + "carol"}


def test_bind(g):
    res = g.query(
        "PREFIX ex: <http://example.org/> "
        "SELECT ?p ?double WHERE { ?p ex:age ?a BIND(?a * 2 AS ?double) }"
    )
    doubles = {str(r["p"]): r["double"].value for r in res}
    assert doubles[EX + "alice"] == 60


def test_values_join(g):
    res = g.query(
        "PREFIX ex: <http://example.org/> "
        "SELECT ?p ?a WHERE { ?p ex:age ?a VALUES ?p { ex:alice ex:bob } }"
    )
    assert len(res) == 2


def test_not_exists(g):
    g.add(ex("dave"), RDF.type, ex("Person"))
    res = g.query(
        "PREFIX ex: <http://example.org/> "
        "SELECT ?p WHERE { ?p a ex:Person "
        "FILTER(NOT EXISTS { ?p ex:age ?a }) }"
    )
    assert [str(r["p"]) for r in res] == [EX + "dave"]


def test_exists(g):
    res = g.query(
        "PREFIX ex: <http://example.org/> "
        "SELECT ?p WHERE { ?p a ex:Person "
        "FILTER(EXISTS { ?p ex:knows ?q }) }"
    )
    assert {str(r["p"]) for r in res} == {EX + "alice", EX + "bob"}


def test_order_by_limit_offset(g):
    res = g.query(
        "PREFIX ex: <http://example.org/> "
        "SELECT ?p WHERE { ?p ex:age ?a } ORDER BY DESC(?a) LIMIT 2"
    )
    assert [str(r["p"]) for r in res] == [EX + "carol", EX + "alice"]
    res2 = g.query(
        "PREFIX ex: <http://example.org/> "
        "SELECT ?p WHERE { ?p ex:age ?a } ORDER BY ?a OFFSET 1 LIMIT 1"
    )
    assert [str(r["p"]) for r in res2] == [EX + "alice"]


def test_distinct(g):
    res = g.query(
        "PREFIX ex: <http://example.org/> "
        "SELECT DISTINCT ?t WHERE { ?p a ?t }"
    )
    assert len(res) == 1


def test_count_star(g):
    res = g.query("SELECT (COUNT(*) AS ?n) WHERE { ?s ?p ?o }")
    assert res.rows[0]["n"].value == len(g)


def test_group_by_aggregates(g):
    g.add(ex("alice"), ex("city"), Literal("Paris"))
    g.add(ex("bob"), ex("city"), Literal("Paris"))
    g.add(ex("carol"), ex("city"), Literal("Athens"))
    res = g.query(
        "PREFIX ex: <http://example.org/> "
        "SELECT ?c (COUNT(?p) AS ?n) (AVG(?a) AS ?avg) "
        "WHERE { ?p ex:city ?c ; ex:age ?a } GROUP BY ?c"
    )
    stats = {r["c"].lexical: (r["n"].value, r["avg"].value) for r in res}
    assert stats["Paris"] == (2, 27.5)
    assert stats["Athens"] == (1, 35.0)


def test_having(g):
    g.add(ex("alice"), ex("city"), Literal("Paris"))
    g.add(ex("bob"), ex("city"), Literal("Paris"))
    g.add(ex("carol"), ex("city"), Literal("Athens"))
    res = g.query(
        "PREFIX ex: <http://example.org/> "
        "SELECT ?c WHERE { ?p ex:city ?c } GROUP BY ?c "
        "HAVING (COUNT(?p) > 1)"
    )
    assert [r["c"].lexical for r in res] == ["Paris"]


def test_min_max_sum(g):
    res = g.query(
        "PREFIX ex: <http://example.org/> "
        "SELECT (MIN(?a) AS ?lo) (MAX(?a) AS ?hi) (SUM(?a) AS ?total) "
        "WHERE { ?p ex:age ?a }"
    )
    row = res.rows[0]
    assert row["lo"].value == 25
    assert row["hi"].value == 35
    assert row["total"].value == 90


def test_group_concat(g):
    res = g.query(
        "PREFIX ex: <http://example.org/> "
        'SELECT (GROUP_CONCAT(?n; SEPARATOR="|") AS ?all) '
        "WHERE { ?p ex:name ?n } "
    )
    parts = set(res.rows[0]["all"].lexical.split("|"))
    assert parts == {"Alice", "Bob", "Carol"}


def test_ask(g):
    assert g.query(
        "PREFIX ex: <http://example.org/> ASK { ex:alice ex:age 30 }"
    ).ask
    assert not g.query(
        "PREFIX ex: <http://example.org/> ASK { ex:alice ex:age 99 }"
    ).ask


def test_construct(g):
    res = g.query(
        "PREFIX ex: <http://example.org/> "
        "CONSTRUCT { ?p ex:label ?n } WHERE { ?p ex:name ?n }"
    )
    assert len(res.graph) == 3
    assert res.graph.value(ex("alice"), ex("label")) == Literal("Alice")


def test_describe(g):
    res = g.query(
        "PREFIX ex: <http://example.org/> DESCRIBE ex:alice"
    )
    assert len(res.graph) == 4  # age, name, knows, type


def test_subselect(g):
    res = g.query(
        "PREFIX ex: <http://example.org/> "
        "SELECT ?p ?n WHERE { ?p ex:name ?n "
        "{ SELECT ?p WHERE { ?p ex:age ?a FILTER(?a >= 30) } } }"
    )
    assert {r["n"].lexical for r in res} == {"Alice", "Carol"}


def test_bind_if_coalesce(g):
    res = g.query(
        "PREFIX ex: <http://example.org/> "
        'SELECT ?p ?cat WHERE { ?p ex:age ?a '
        'BIND(IF(?a >= 30, "senior", "junior") AS ?cat) }'
    )
    cats = {str(r["p"]): r["cat"].lexical for r in res}
    assert cats[EX + "bob"] == "junior"
    assert cats[EX + "carol"] == "senior"


def test_in_operator(g):
    res = g.query(
        "PREFIX ex: <http://example.org/> "
        "SELECT ?p WHERE { ?p ex:age ?a FILTER(?a IN (25, 35)) }"
    )
    assert {str(r["p"]) for r in res} == {EX + "bob", EX + "carol"}


def test_select_json_csv(g):
    res = g.query(
        "PREFIX ex: <http://example.org/> "
        "SELECT ?n WHERE { ex:alice ex:name ?n }"
    )
    assert "Alice" in res.to_csv()
    assert '"value": "Alice"' in res.to_json()


def test_result_roundtrip_json(g):
    from repro.sparql.results import SPARQLResult

    res = g.query(
        "PREFIX ex: <http://example.org/> "
        "SELECT ?p ?a WHERE { ?p ex:age ?a }"
    )
    back = SPARQLResult.from_json(res.to_json())
    assert len(back) == 3
    assert back.vars == ["p", "a"]
    assert {r["a"].value for r in back} == {25, 30, 35}


def test_datetime_comparison():
    g = Graph()
    g.bind("ex", EX)
    g.add(ex("obs1"), ex("time"),
          Literal("2018-06-01T00:00:00Z", datatype=XSD.dateTime))
    g.add(ex("obs2"), ex("time"),
          Literal("2018-07-01T00:00:00Z", datatype=XSD.dateTime))
    res = g.query(
        "PREFIX ex: <http://example.org/> "
        "PREFIX xsd: <http://www.w3.org/2001/XMLSchema#> "
        "SELECT ?o WHERE { ?o ex:time ?t "
        'FILTER(?t > "2018-06-15T00:00:00Z"^^xsd:dateTime) }'
    )
    assert [str(r["o"]) for r in res] == [EX + "obs2"]


def test_error_in_filter_drops_row(g):
    # STRLEN of an IRI errors for that row; others survive.
    g.add(ex("alice"), ex("thing"), ex("iri-object"))
    g.add(ex("bob"), ex("thing"), Literal("text"))
    res = g.query(
        "PREFIX ex: <http://example.org/> "
        "SELECT ?p WHERE { ?p ex:thing ?v FILTER(STRLEN(?v) > 1) }"
    )
    assert [str(r["p"]) for r in res] == [EX + "bob"]
