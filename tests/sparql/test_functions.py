"""SPARQL builtin function coverage (string/numeric/datetime/term)."""

import pytest

from repro.rdf import Graph, IRI, Literal, XSD

EX = "http://example.org/"


@pytest.fixture
def g():
    g = Graph()
    g.bind("ex", EX)
    g.add(IRI(EX + "s"), IRI(EX + "p"), Literal("anchor"))
    return g


def one(g, expression, extra_prefixes=""):
    """Evaluate one expression via BIND and return the bound term."""
    res = g.query(
        "PREFIX ex: <http://example.org/> "
        "PREFIX xsd: <http://www.w3.org/2001/XMLSchema#> "
        + extra_prefixes
        + f"SELECT ?out WHERE {{ ex:s ex:p ?v BIND({expression} AS ?out) }}"
    )
    return res.rows[0].get("out")


class TestStringFunctions:
    def test_concat(self, g):
        assert one(g, 'CONCAT("a", "b", "c")') == Literal("abc")

    def test_substr_one_based(self, g):
        assert one(g, 'SUBSTR("Copernicus", 3)') == Literal("pernicus")
        assert one(g, 'SUBSTR("Copernicus", 3, 4)') == Literal("pern")

    def test_replace(self, g):
        assert one(g, 'REPLACE("banana", "na", "NA")') == \
            Literal("baNANA")
        assert one(g, 'REPLACE("Banana", "^b", "Z", "i")') == \
            Literal("Zanana")

    def test_ucase_lcase_strlen(self, g):
        assert one(g, 'UCASE("lai")') == Literal("LAI")
        assert one(g, 'LCASE("LAI")') == Literal("lai")
        assert one(g, 'STRLEN("paris")') == Literal(5)

    def test_contains_starts_ends(self, g):
        assert one(g, 'CONTAINS("greenness", "green")') == Literal(True)
        assert one(g, 'STRSTARTS("paris", "pa")') == Literal(True)
        assert one(g, 'STRENDS("paris", "xx")') == Literal(False)

    def test_str_of_iri(self, g):
        assert one(g, "STR(ex:s)") == Literal(EX + "s")


class TestNumericFunctions:
    def test_abs_ceil_floor_round(self, g):
        assert one(g, "ABS(-2)") == Literal(2)
        assert one(g, "CEIL(2.1)") == Literal(3)
        assert one(g, "FLOOR(2.9)") == Literal(2)
        assert one(g, "ROUND(2.5)") == Literal(2)  # banker's rounding

    def test_arithmetic_mixed(self, g):
        assert one(g, "(1 + 2) * 3").value == 9
        assert one(g, "7 / 2").value == 3.5

    def test_division_by_zero_unbinds(self, g):
        assert one(g, "1 / 0") is None  # BIND error leaves unbound


class TestDatetimeFunctions:
    def test_parts(self, g):
        expr = 'YEAR("2018-06-01T12:30:45Z"^^xsd:dateTime)'
        assert one(g, expr) == Literal(2018)
        assert one(g, 'MONTH("2018-06-01T12:30:45Z"^^xsd:dateTime)') == \
            Literal(6)
        assert one(g, 'DAY("2018-06-01T12:30:45Z"^^xsd:dateTime)') == \
            Literal(1)
        assert one(g, 'HOURS("2018-06-01T12:30:45Z"^^xsd:dateTime)') == \
            Literal(12)
        assert one(g, 'MINUTES("2018-06-01T12:30:45Z"^^xsd:dateTime)') \
            == Literal(30)
        assert one(g, 'SECONDS("2018-06-01T12:30:45Z"^^xsd:dateTime)') \
            == Literal(45)

    def test_now_is_datetime(self, g):
        term = one(g, "NOW()")
        assert term.datatype == XSD.dateTime


class TestTermFunctions:
    def test_is_tests(self, g):
        assert one(g, "ISIRI(ex:s)") == Literal(True)
        assert one(g, 'ISLITERAL("x")') == Literal(True)
        assert one(g, "ISNUMERIC(5)") == Literal(True)
        assert one(g, 'ISNUMERIC("5")') == Literal(False)

    def test_iri_constructor(self, g):
        assert one(g, 'IRI("http://x/y")') == IRI("http://x/y")

    def test_strdt_strlang(self, g):
        term = one(g, 'STRDT("5", xsd:integer)')
        assert term == Literal(5)
        term = one(g, 'STRLANG("chat", "fr")')
        assert term == Literal("chat", lang="fr")

    def test_datatype_and_lang(self, g):
        assert one(g, "DATATYPE(5)") == XSD.integer
        assert one(g, 'LANG("chat"@fr)') == Literal("fr")
        assert one(g, 'LANG("chat")') == Literal("")

    def test_langmatches(self, g):
        assert one(g, 'LANGMATCHES("fr-BE", "fr")') == Literal(True)
        assert one(g, 'LANGMATCHES("en", "fr")') == Literal(False)
        assert one(g, 'LANGMATCHES("en", "*")') == Literal(True)


class TestConditionals:
    def test_if_branches(self, g):
        assert one(g, 'IF(1 < 2, "yes", "no")') == Literal("yes")
        assert one(g, 'IF(1 > 2, "yes", "no")') == Literal("no")

    def test_coalesce_first_bound(self, g):
        res = g.query(
            "PREFIX ex: <http://example.org/> "
            "SELECT ?out WHERE { ex:s ex:p ?v "
            'BIND(COALESCE(?unbound, "fallback") AS ?out) }'
        )
        assert res.rows[0]["out"] == Literal("fallback")

    def test_bound(self, g):
        res = g.query(
            "PREFIX ex: <http://example.org/> "
            "SELECT ?v WHERE { ex:s ex:p ?v "
            "FILTER(BOUND(?v) && !BOUND(?nope)) }"
        )
        assert len(res) == 1


class TestLogicErrorSemantics:
    def test_or_short_circuits_errors(self, g):
        # left errors, right true → true (SPARQL 3-valued logic)
        res = g.query(
            "PREFIX ex: <http://example.org/> "
            "SELECT ?v WHERE { ex:s ex:p ?v "
            "FILTER((1/0 = 1) || (1 = 1)) }"
        )
        assert len(res) == 1

    def test_and_short_circuits_errors(self, g):
        # left errors, right false → false (row dropped, not error)
        res = g.query(
            "PREFIX ex: <http://example.org/> "
            "SELECT ?v WHERE { ex:s ex:p ?v "
            "FILTER((1/0 = 1) && (1 = 2)) }"
        )
        assert len(res) == 0
