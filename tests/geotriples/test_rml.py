"""Term map / logical source / R2RML parsing tests."""

import pytest

from repro.geometry import Feature, FeatureCollection, Point
from repro.geotriples import (
    LogicalSource,
    MappingError,
    TermMap,
    TriplesMap,
    parse_r2rml,
)
from repro.rdf import IRI, Literal, XSD


class TestTermMap:
    def test_template_expansion(self):
        tm = TermMap(template="http://ex/park/{id}")
        assert tm.expand({"id": 7}) == IRI("http://ex/park/7")

    def test_template_multiple_keys(self):
        tm = TermMap(template="http://ex/{a}/{b}")
        assert tm.expand({"a": "x", "b": "y"}) == IRI("http://ex/x/y")

    def test_template_null_returns_none(self):
        tm = TermMap(template="http://ex/{id}")
        assert tm.expand({"id": None}) is None
        assert tm.expand({}) is None

    def test_template_iri_safe(self):
        tm = TermMap(template="http://ex/{name}")
        assert tm.expand({"name": "Bois de Boulogne"}) == IRI(
            "http://ex/Bois_de_Boulogne"
        )

    def test_column_literal_with_datatype(self):
        tm = TermMap(column="lai", term_type="literal", datatype=XSD.float)
        assert tm.expand({"lai": 3.5}) == Literal("3.5", datatype=XSD.float)

    def test_column_preserves_python_type(self):
        tm = TermMap(column="n", term_type="literal")
        assert tm.expand({"n": 42}) == Literal(42)

    def test_column_lang(self):
        tm = TermMap(column="name", term_type="literal", lang="fr")
        assert tm.expand({"name": "Paris"}) == Literal("Paris", lang="fr")

    def test_constant(self):
        tm = TermMap(constant=IRI("http://ex/Park"))
        assert tm.expand({}) == IRI("http://ex/Park")

    def test_exactly_one_source_enforced(self):
        with pytest.raises(MappingError):
            TermMap(template="x", column="y")
        with pytest.raises(MappingError):
            TermMap()

    def test_bad_term_type(self):
        with pytest.raises(MappingError):
            TermMap(column="x", term_type="quad")


class TestLogicalSources:
    def test_rows(self):
        src = LogicalSource("rows", [{"a": 1}, {"a": 2}])
        assert list(src.rows()) == [{"a": 1}, {"a": 2}]

    def test_csv_text_with_coercion(self):
        csv_text = "id,name,lai\n1,parc,3.5\n2,usine,\n"
        rows = list(LogicalSource("csv", csv_text).rows())
        assert rows[0] == {"id": 1, "name": "parc", "lai": 3.5}
        assert rows[1]["lai"] is None

    def test_csv_file(self, tmp_path):
        p = tmp_path / "data.csv"
        p.write_text("id,v\n1,2\n")
        rows = list(LogicalSource("csv", str(p)).rows())
        assert rows == [{"id": 1, "v": 2}]

    def test_geojson_features(self):
        fc = FeatureCollection(
            [Feature(Point(2.25, 48.86), {"name": "bois"}, feature_id="p1")]
        )
        rows = list(LogicalSource("geojson", fc).rows())
        assert rows[0]["name"] == "bois"
        assert rows[0]["gid"] == "p1"
        assert rows[0]["wkt"].startswith("POINT")

    def test_sql_source(self):
        from repro.madis import MadisConnection

        conn = MadisConnection()
        conn.executescript(
            "CREATE TABLE parks (id INTEGER, name TEXT);"
            "INSERT INTO parks VALUES (1, 'bois');"
        )
        rows = list(
            LogicalSource("sql", conn, query="SELECT * FROM parks").rows()
        )
        assert rows == [{"id": 1, "name": "bois"}]

    def test_sql_requires_query(self):
        from repro.madis import MadisConnection

        with pytest.raises(MappingError):
            list(LogicalSource("sql", MadisConnection()).rows())

    def test_unknown_kind(self):
        with pytest.raises(MappingError):
            list(LogicalSource("shapefile", "x").rows())


R2RML_DOC = """
@prefix rr: <http://www.w3.org/ns/r2rml#> .
@prefix ex: <http://example.org/> .
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .

ex:ParksMap
  rr:logicalTable [ rr:tableName "parks" ] ;
  rr:subjectMap [ rr:template "http://example.org/park/{id}" ;
                  rr:class ex:Park ] ;
  rr:predicateObjectMap [
    rr:predicate ex:hasName ;
    rr:objectMap [ rr:column "name" ]
  ] ;
  rr:predicateObjectMap [
    rr:predicate ex:hasArea ;
    rr:objectMap [ rr:column "area" ; rr:datatype xsd:double ]
  ] .
"""


class TestR2RMLParsing:
    def test_parse(self):
        src = LogicalSource("rows", [{"id": 1, "name": "bois", "area": 8.4}])
        maps = parse_r2rml(R2RML_DOC, sources={"parks": src})
        assert len(maps) == 1
        tmap = maps[0]
        assert tmap.classes == [IRI("http://example.org/Park")]
        assert tmap.subject_map.template == "http://example.org/park/{id}"
        preds = {str(p.predicate).rsplit("/", 1)[1]
                 for p in tmap.predicate_object_maps}
        assert preds == {"hasName", "hasArea"}

    def test_missing_source_raises(self):
        with pytest.raises(MappingError):
            parse_r2rml(R2RML_DOC, sources={})

    def test_empty_doc_raises(self):
        with pytest.raises(MappingError):
            parse_r2rml("@prefix rr: <http://www.w3.org/ns/r2rml#> .")
