"""Mapping processor tests: serial, parallel, generator, NetCDF source."""

from datetime import date

import pytest

from repro.geometry import Feature, FeatureCollection, Point, Polygon
from repro.geotriples import (
    LogicalSource,
    MappingError,
    MappingProcessor,
    ParallelMappingProcessor,
    TermMap,
    TriplesMap,
    generate_mapping,
)
from repro.rdf import GEO, GEO_WKT_LITERAL, IRI, Literal, RDF, SF, XSD

EX = "http://example.org/"


def parks_map():
    fc = FeatureCollection(
        [
            Feature(Polygon.box(2.22, 48.85, 2.28, 48.88),
                    {"name": "Bois de Boulogne"}, feature_id="1"),
            Feature(Polygon.box(2.40, 48.82, 2.47, 48.85),
                    {"name": "Bois de Vincennes"}, feature_id="2"),
        ]
    )
    tmap = TriplesMap(
        name="parks",
        logical_source=LogicalSource("geojson", fc),
        subject_map=TermMap(template=EX + "park/{gid}"),
        classes=[IRI(EX + "Park")],
        geometry_column="wkt",
    )
    tmap.add_pom(IRI(EX + "hasName"), TermMap(column="name",
                                              term_type="literal"))
    return tmap


def test_serial_processing():
    g = MappingProcessor([parks_map()]).run()
    park1 = IRI(EX + "park/1")
    assert (park1, RDF.type, IRI(EX + "Park")) in g
    assert g.value(park1, IRI(EX + "hasName")) == Literal("Bois de Boulogne")
    geom = g.value(park1, GEO.hasGeometry)
    assert geom == IRI(EX + "park/1/geometry")
    wkt = g.value(geom, GEO.asWKT)
    assert wkt.datatype == GEO_WKT_LITERAL
    assert "POLYGON" in wkt.lexical
    assert g.value(geom, RDF.type) == SF.Polygon


def test_triples_are_queryable():
    g = MappingProcessor([parks_map()]).run()
    g.bind("ex", EX)
    res = g.query(
        """
        PREFIX ex: <http://example.org/>
        PREFIX geo: <http://www.opengis.net/ont/geosparql#>
        PREFIX geof: <http://www.opengis.net/def/function/geosparql/>
        SELECT ?name WHERE {
          ?p a ex:Park ; ex:hasName ?name ; geo:hasGeometry ?g .
          ?g geo:asWKT ?w .
          FILTER(geof:sfIntersects(?w,
            "POINT (2.25 48.86)"^^geo:wktLiteral))
        }
        """
    )
    assert [r["name"].lexical for r in res] == ["Bois de Boulogne"]


def test_null_subject_skips_row():
    tmap = TriplesMap(
        name="t",
        logical_source=LogicalSource("rows", [{"id": None, "v": 1},
                                              {"id": 2, "v": 2}]),
        subject_map=TermMap(template=EX + "{id}"),
    )
    tmap.add_pom(IRI(EX + "v"), TermMap(column="v", term_type="literal"))
    g = MappingProcessor([tmap]).run()
    assert len(g) == 1


def test_null_object_skips_triple():
    tmap = TriplesMap(
        name="t",
        logical_source=LogicalSource("rows", [{"id": 1, "v": None}]),
        subject_map=TermMap(template=EX + "{id}"),
        classes=[IRI(EX + "T")],
    )
    tmap.add_pom(IRI(EX + "v"), TermMap(column="v", term_type="literal"))
    g = MappingProcessor([tmap]).run()
    assert len(g) == 1  # only the class triple


def test_empty_processor_rejected():
    with pytest.raises(MappingError):
        MappingProcessor([])


def make_rows_map(n):
    rows = [{"id": i, "v": i * 2, "wkt": f"POINT ({i} {i})"}
            for i in range(n)]
    tmap = TriplesMap(
        name="bulk",
        logical_source=LogicalSource("rows", rows),
        subject_map=TermMap(template=EX + "r/{id}"),
        classes=[IRI(EX + "Row")],
        geometry_column="wkt",
    )
    tmap.add_pom(IRI(EX + "v"),
                 TermMap(column="v", term_type="literal",
                         datatype=XSD.integer))
    return tmap


def test_parallel_equals_serial():
    serial = MappingProcessor([make_rows_map(60)]).run()
    parallel = ParallelMappingProcessor([make_rows_map(60)], workers=3).run()
    assert serial == parallel
    assert len(parallel) == 60 * 5  # type + v + hasGeometry + sfType + asWKT


def test_parallel_single_worker():
    g = ParallelMappingProcessor([make_rows_map(10)], workers=1).run()
    assert len(g) == 50


def test_parallel_invalid_workers():
    with pytest.raises(MappingError):
        ParallelMappingProcessor([make_rows_map(5)], workers=0)


class TestGenerator:
    def test_generated_mapping_runs(self):
        src = LogicalSource(
            "csv", "id,name,height,active\n1,oak,12.5,true\n2,ash,8.1,false\n"
        )
        tmap = generate_mapping(src, EX, class_iri=EX + "Tree")
        g = MappingProcessor([tmap]).run()
        tree1 = IRI(EX + "1")
        assert (tree1, RDF.type, IRI(EX + "Tree")) in g
        assert g.value(tree1, IRI(EX + "hasName")) == Literal("oak")
        height = g.value(tree1, IRI(EX + "hasHeight"))
        assert height.datatype == XSD.double

    def test_geometry_column_detected(self):
        fc = FeatureCollection([Feature(Point(1, 2), {"name": "x"})])
        tmap = generate_mapping(LogicalSource("geojson", fc), EX)
        assert tmap.geometry_column == "wkt"
        g = MappingProcessor([tmap]).run()
        assert any(t.p == GEO.asWKT for t in g)

    def test_integer_datatype_guess(self):
        src = LogicalSource("rows", [{"id": 1, "count": 5},
                                     {"id": 2, "count": 7}])
        tmap = generate_mapping(src, EX)
        pom = tmap.predicate_object_maps[0]
        assert pom.object_map.datatype == XSD.integer

    def test_no_id_column_raises(self):
        src = LogicalSource("rows", [{"a": 1}])
        with pytest.raises(MappingError):
            generate_mapping(src, EX)

    def test_empty_source_raises(self):
        with pytest.raises(MappingError):
            generate_mapping(LogicalSource("rows", []), EX)


def test_opendap_logical_source():
    """The Section-5 extension: GeoTriples over NetCDF/OPeNDAP."""
    from repro.opendap import ServerRegistry
    from repro.vito import (
        GlobalLandArchive, LAI_SPEC, MepDeployment, generate_product,
    )

    archive = GlobalLandArchive()
    archive.publish("LAI", date(2018, 6, 1), 0,
                    generate_product(LAI_SPEC, date(2018, 6, 1),
                                     cloud_fraction=0))
    mep = MepDeployment(archive, host="vito.test")
    mep.mount_product("LAI")
    registry = ServerRegistry()
    registry.register(mep.server)

    src = LogicalSource(
        "opendap", "dap://vito.test/Copernicus/LAI",
        options={"registry": registry},
    )
    lai_ns = "http://www.app-lab.eu/lai/"
    tmap = TriplesMap(
        name="lai",
        logical_source=src,
        subject_map=TermMap(template=lai_ns + "obs/{id}"),
        classes=[IRI(lai_ns + "Observation")],
        geometry_column="loc",
    )
    tmap.add_pom(IRI(lai_ns + "lai"),
                 TermMap(column="LAI", term_type="literal",
                         datatype=XSD.float))
    tmap.add_pom(IRI("http://www.w3.org/2006/time#hasTime"),
                 TermMap(column="ts", term_type="literal",
                         datatype=XSD.dateTime))
    g = MappingProcessor([tmap]).run()
    observations = list(g.subjects(RDF.type, IRI(lai_ns + "Observation")))
    assert len(observations) == 24 * 12  # full grid, no clouds
    sample = observations[0]
    assert g.value(sample, IRI(lai_ns + "lai")) is not None
