"""Property-based tests (hypothesis) for geometry invariants."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import (
    LineString,
    MultiPoint,
    Point,
    Polygon,
    wkt_dumps,
    wkt_loads,
    from_geojson,
    to_geojson,
)
from repro.geometry import ops

finite = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
coord = st.tuples(finite, finite)


@st.composite
def boxes(draw):
    x1, y1 = draw(coord)
    w = draw(st.floats(min_value=1e-3, max_value=1e3))
    h = draw(st.floats(min_value=1e-3, max_value=1e3))
    return Polygon.box(x1, y1, x1 + w, y1 + h)


@st.composite
def points(draw):
    x, y = draw(coord)
    return Point(x, y)


@st.composite
def linestrings(draw):
    n = draw(st.integers(min_value=2, max_value=8))
    pts = draw(
        st.lists(coord, min_size=n, max_size=n, unique=True)
    )
    return LineString(pts)


@given(points())
def test_point_wkt_roundtrip(p):
    assert wkt_loads(wkt_dumps(p)).distance(p) < 1e-6


@given(linestrings())
def test_linestring_geojson_roundtrip(l):
    assert from_geojson(to_geojson(l)) == l


@given(boxes())
def test_box_area_positive(box):
    assert ops.area(box) > 0


@given(boxes())
def test_box_contains_own_centroid(box):
    c = ops.centroid(box)
    assert ops.contains(box, c)
    assert ops.intersects(box, c)


@given(boxes(), boxes())
@settings(max_examples=60)
def test_intersects_symmetric(a, b):
    assert ops.intersects(a, b) == ops.intersects(b, a)


@given(boxes(), boxes())
@settings(max_examples=60)
def test_disjoint_is_negation(a, b):
    assert ops.disjoint(a, b) == (not ops.intersects(a, b))


@given(boxes(), boxes())
@settings(max_examples=60)
def test_contains_within_duality(a, b):
    assert ops.contains(a, b) == ops.within(b, a)


@given(boxes())
def test_self_equality(box):
    assert ops.equals(box, box)
    assert ops.distance(box, box) == 0.0


@given(boxes(), boxes())
@settings(max_examples=60)
def test_distance_symmetric_nonnegative(a, b):
    d = ops.distance(a, b)
    assert d >= 0
    assert math.isclose(d, ops.distance(b, a), rel_tol=1e-9, abs_tol=1e-9)


@given(st.lists(points(), min_size=3, max_size=12))
@settings(max_examples=60)
def test_convex_hull_contains_inputs(pts):
    mp = MultiPoint(pts)
    hull = ops.convex_hull(mp)
    for p in pts:
        assert ops.intersects(hull, p)


@given(boxes())
def test_envelope_contains_geometry(box):
    env = ops.envelope(box)
    assert ops.contains(env, box)
