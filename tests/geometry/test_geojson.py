"""GeoJSON encode/decode and Feature(Collection) tests."""

import pytest

from repro.geometry import (
    Feature,
    FeatureCollection,
    GeometryError,
    LineString,
    MultiPolygon,
    Point,
    Polygon,
    from_geojson,
    to_geojson,
)


@pytest.mark.parametrize(
    "geom",
    [
        Point(2.35, 48.85),
        LineString([(0, 0), (1, 1), (2, 0)]),
        Polygon([(0, 0), (1, 0), (1, 1), (0, 1)]),
        Polygon(
            [(0, 0), (10, 0), (10, 10), (0, 10)],
            holes=[[(4, 4), (6, 4), (6, 6), (4, 6)]],
        ),
        MultiPolygon([Polygon.box(0, 0, 1, 1), Polygon.box(2, 2, 3, 3)]),
    ],
)
def test_geometry_roundtrip(geom):
    assert from_geojson(to_geojson(geom)) == geom


def test_geojson_types():
    gj = to_geojson(Point(1, 2))
    assert gj == {"type": "Point", "coordinates": [1.0, 2.0]}


def test_unsupported_type_raises():
    with pytest.raises(GeometryError):
        from_geojson({"type": "Circle", "coordinates": [0, 0]})


def test_feature_roundtrip():
    f = Feature(Point(1, 2), {"name": "Bois de Boulogne"}, feature_id="osm:1")
    gj = f.to_geojson()
    assert gj["type"] == "Feature"
    back = Feature.from_geojson(gj)
    assert back.geometry == f.geometry
    assert back.properties == f.properties
    assert back.id == "osm:1"


def test_feature_requires_feature_type():
    with pytest.raises(GeometryError):
        Feature.from_geojson({"type": "Point", "coordinates": [0, 0]})


def test_featurecollection_roundtrip(tmp_path):
    fc = FeatureCollection(
        [
            Feature(Point(0, 0), {"v": 1}),
            Feature(Polygon.box(0, 0, 1, 1), {"v": 2}),
        ]
    )
    path = tmp_path / "fc.geojson"
    fc.dump(path)
    loaded = FeatureCollection.load(path)
    assert len(loaded) == 2
    assert loaded.features[1].properties == {"v": 2}
    assert loaded.features[0].geometry == Point(0, 0)
