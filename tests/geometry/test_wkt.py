"""WKT parser/serializer tests, including GeoSPARQL wktLiteral forms."""

import pytest

from repro.geometry import (
    GeometryCollection,
    GeometryError,
    LineString,
    MultiLineString,
    MultiPoint,
    MultiPolygon,
    Point,
    Polygon,
    wkt_dumps,
    wkt_loads,
    to_wkt_literal,
)
from repro.geometry.wkt import CRS84, split_crs


def test_point_roundtrip():
    p = wkt_loads("POINT (2.35 48.85)")
    assert isinstance(p, Point)
    assert p.x == 2.35 and p.y == 48.85
    assert wkt_loads(wkt_dumps(p)) == p


def test_linestring_roundtrip():
    l = wkt_loads("LINESTRING (0 0, 1 1, 2 0)")
    assert isinstance(l, LineString)
    assert len(l.vertices) == 3
    assert wkt_loads(wkt_dumps(l)) == l


def test_polygon_with_hole_roundtrip():
    text = "POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0), (4 4, 6 4, 6 6, 4 6, 4 4))"
    poly = wkt_loads(text)
    assert isinstance(poly, Polygon)
    assert len(poly.holes) == 1
    assert wkt_loads(wkt_dumps(poly)) == poly


def test_multipoint_both_syntaxes():
    a = wkt_loads("MULTIPOINT ((0 0), (1 1))")
    b = wkt_loads("MULTIPOINT (0 0, 1 1)")
    assert isinstance(a, MultiPoint) and isinstance(b, MultiPoint)
    assert a == b


def test_multilinestring():
    ml = wkt_loads("MULTILINESTRING ((0 0, 1 1), (2 2, 3 3))")
    assert isinstance(ml, MultiLineString)
    assert len(ml) == 2
    assert wkt_loads(wkt_dumps(ml)) == ml


def test_multipolygon():
    mp = wkt_loads(
        "MULTIPOLYGON (((0 0, 1 0, 1 1, 0 1, 0 0)),"
        " ((2 2, 3 2, 3 3, 2 3, 2 2)))"
    )
    assert isinstance(mp, MultiPolygon)
    assert len(mp) == 2
    assert wkt_loads(wkt_dumps(mp)) == mp


def test_geometrycollection():
    gc = wkt_loads("GEOMETRYCOLLECTION (POINT (1 2), LINESTRING (0 0, 1 1))")
    assert isinstance(gc, GeometryCollection)
    assert len(gc) == 2
    assert wkt_loads(wkt_dumps(gc)) == gc


def test_case_insensitive_keywords():
    assert isinstance(wkt_loads("point(1 2)"), Point)
    assert isinstance(wkt_loads("Polygon((0 0,1 0,1 1,0 1,0 0))"), Polygon)


def test_scientific_notation_and_negatives():
    p = wkt_loads("POINT (-1.5e-2 +3E1)")
    assert p.x == -0.015 and p.y == 30.0


def test_z_ordinate_is_dropped():
    p = wkt_loads("POINT (1 2 3)")
    assert (p.x, p.y) == (1.0, 2.0)


def test_crs_prefixed_literal():
    text = f"<{CRS84}> POINT(2.35 48.85)"
    p = wkt_loads(text)
    assert isinstance(p, Point)
    crs, body = split_crs(text)
    assert crs == CRS84
    assert body.strip().startswith("POINT")


def test_to_wkt_literal():
    lit = to_wkt_literal(Point(1, 2))
    assert lit.startswith(f"<{CRS84}>")
    assert "POINT" in lit
    assert wkt_loads(lit) == Point(1, 2)


@pytest.mark.parametrize(
    "bad",
    [
        "POINT 1 2",
        "POINT (1)",
        "LINESTRING ((0 0))",
        "TRIANGLE ((0 0, 1 0, 0 1, 0 0))",
        "POLYGON ((0 0, 1 0))",
        "POINT (1 2) garbage",
        "",
    ],
)
def test_malformed_wkt_raises(bad):
    with pytest.raises(GeometryError):
        wkt_loads(bad)


def test_dumps_trims_trailing_zeros():
    assert wkt_dumps(Point(1.5, 2.0)) == "POINT (1.5 2)"
    assert wkt_dumps(Point(0.0, -0.0)) == "POINT (0 0)"
