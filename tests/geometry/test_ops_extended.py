"""Extended geometry predicate/measure coverage (multis, lines, rings)."""

import math

import pytest

from repro.geometry import (
    GeometryCollection,
    LineString,
    LinearRing,
    MultiLineString,
    MultiPoint,
    MultiPolygon,
    Point,
    Polygon,
)
from repro.geometry import ops


class TestMultiGeometries:
    def test_multipolygon_contains_point_in_any_part(self):
        mp = MultiPolygon([Polygon.box(0, 0, 1, 1),
                           Polygon.box(5, 5, 6, 6)])
        assert ops.contains(mp, Point(5.5, 5.5))
        assert ops.contains(mp, Point(0.5, 0.5))
        assert not ops.contains(mp, Point(3, 3))

    def test_multipolygon_area_sums_parts(self):
        mp = MultiPolygon([Polygon.box(0, 0, 2, 2),
                           Polygon.box(5, 5, 6, 6)])
        assert math.isclose(ops.area(mp), 5.0)

    def test_multilinestring_length(self):
        ml = MultiLineString([
            LineString([(0, 0), (3, 4)]),
            LineString([(10, 0), (10, 2)]),
        ])
        assert math.isclose(ops.length(ml), 7.0)

    def test_distance_between_multis(self):
        a = MultiPoint([Point(0, 0), Point(10, 0)])
        b = MultiPolygon([Polygon.box(4, 0, 5, 1)])
        assert math.isclose(ops.distance(a, b), 4.0)

    def test_centroid_ignores_lower_dimensions(self):
        gc = GeometryCollection([
            Point(100, 100),              # ignored: dim 0 < 2
            Polygon.box(0, 0, 2, 2),
        ])
        c = ops.centroid(gc)
        assert math.isclose(c.x, 1.0) and math.isclose(c.y, 1.0)

    def test_multipoint_centroid(self):
        mp = MultiPoint([Point(0, 0), Point(2, 0), Point(1, 3)])
        c = ops.centroid(mp)
        assert math.isclose(c.x, 1.0)
        assert math.isclose(c.y, 1.0)


class TestLineRelations:
    def test_line_line_distance(self):
        a = LineString([(0, 0), (1, 0)])
        b = LineString([(0, 2), (1, 2)])
        assert math.isclose(ops.distance(a, b), 2.0)

    def test_collinear_overlapping_lines_intersect(self):
        a = LineString([(0, 0), (4, 0)])
        b = LineString([(2, 0), (6, 0)])
        assert ops.intersects(a, b)
        assert ops.overlaps(a, b)

    def test_line_within_polygon_distance_zero(self):
        line = LineString([(0.3, 0.3), (0.7, 0.7)])
        box = Polygon.box(0, 0, 1, 1)
        assert ops.distance(line, box) == 0.0

    def test_line_touching_polygon_corner(self):
        line = LineString([(1, 1), (2, 2)])
        box = Polygon.box(0, 0, 1, 1)
        assert ops.touches(line, box)

    def test_crosses_multisegment_line(self):
        zigzag = LineString([(-1, 0.2), (0.5, 0.4), (2, 0.6)])
        box = Polygon.box(0, 0, 1, 1)
        assert ops.crosses(zigzag, box)


class TestRings:
    def test_point_on_ring_vertex(self):
        ring = LinearRing([(0, 0), (2, 0), (2, 2), (0, 2)])
        assert ops.point_in_ring((2, 0), ring) == 0

    def test_point_on_ring_edge(self):
        ring = LinearRing([(0, 0), (2, 0), (2, 2), (0, 2)])
        assert ops.point_in_ring((1, 0), ring) == 0

    def test_point_in_concave_polygon(self):
        # a "C" shape: the notch's interior point is outside
        concave = Polygon(
            [(0, 0), (4, 0), (4, 4), (0, 4), (0, 3), (3, 3),
             (3, 1), (0, 1)]
        )
        assert ops.point_in_polygon((2, 2), concave) == -1
        assert ops.point_in_polygon((3.5, 2), concave) == 1

    def test_simplify_ring_keeps_validity(self):
        ring = LinearRing(
            [(0, 0), (1, 0.0001), (2, 0), (2, 2), (0, 2)]
        )
        simplified = ops.simplify(ring, tolerance=0.01)
        assert isinstance(simplified, LinearRing)
        assert len(simplified.vertices) < len(ring.vertices)


class TestEnvelopeBufferHull:
    def test_envelope_of_point_is_tiny_box(self):
        env = ops.envelope(Point(3, 4))
        assert ops.area(env) > 0

    def test_buffer_polygon_grows_area(self):
        box = Polygon.box(0, 0, 2, 2)
        buffered = ops.buffer(box, 0.5)
        assert ops.area(buffered) > ops.area(box)
        assert ops.contains(buffered, box)

    def test_convex_hull_of_multipolygon(self):
        mp = MultiPolygon([Polygon.box(0, 0, 1, 1),
                           Polygon.box(4, 4, 5, 5)])
        hull = ops.convex_hull(mp)
        assert ops.contains(hull, mp)
        assert ops.area(hull) > 2.0

    def test_dimension_mixed_collection(self):
        gc = GeometryCollection([Point(0, 0),
                                 LineString([(0, 0), (1, 1)])])
        assert ops.dimension(gc) == 1


class TestClipEdgeCases:
    def test_clip_fully_inside(self):
        inner = Polygon.box(1, 1, 2, 2)
        clipped = ops.clip_polygon(inner, (0, 0, 5, 5))
        assert math.isclose(ops.area(clipped), 1.0)

    def test_clip_identical_bounds(self):
        box = Polygon.box(0, 0, 2, 2)
        clipped = ops.clip_polygon(box, (0, 0, 2, 2))
        assert math.isclose(ops.area(clipped), 4.0)

    def test_clip_concave_shell(self):
        concave = Polygon(
            [(0, 0), (4, 0), (4, 4), (2, 2), (0, 4)]
        )
        clipped = ops.clip_polygon(concave, (0, 0, 4, 1))
        assert clipped is not None
        assert ops.area(clipped) <= 4.0
