"""Unit tests for spatial predicates and measures."""

import math

import pytest

from repro.geometry import (
    LineString,
    MultiPolygon,
    Point,
    Polygon,
)
from repro.geometry import ops


UNIT = Polygon.box(0, 0, 1, 1)
BIG = Polygon.box(-1, -1, 2, 2)


class TestIntersects:
    def test_point_in_polygon(self):
        assert ops.intersects(Point(0.5, 0.5), UNIT)
        assert not ops.intersects(Point(5, 5), UNIT)

    def test_point_on_boundary(self):
        assert ops.intersects(Point(0, 0.5), UNIT)
        assert ops.intersects(Point(1, 1), UNIT)

    def test_polygon_polygon_overlap(self):
        other = Polygon.box(0.5, 0.5, 1.5, 1.5)
        assert ops.intersects(UNIT, other)
        assert ops.intersects(other, UNIT)

    def test_polygon_polygon_disjoint(self):
        assert not ops.intersects(UNIT, Polygon.box(3, 3, 4, 4))

    def test_polygon_inside_polygon(self):
        assert ops.intersects(UNIT, BIG)

    def test_polygon_shares_edge(self):
        neighbour = Polygon.box(1, 0, 2, 1)
        assert ops.intersects(UNIT, neighbour)

    def test_line_crossing_polygon(self):
        line = LineString([(-1, 0.5), (2, 0.5)])
        assert ops.intersects(line, UNIT)

    def test_line_line_cross(self):
        a = LineString([(0, 0), (1, 1)])
        b = LineString([(0, 1), (1, 0)])
        assert ops.intersects(a, b)

    def test_line_line_parallel(self):
        a = LineString([(0, 0), (1, 0)])
        b = LineString([(0, 1), (1, 1)])
        assert not ops.intersects(a, b)

    def test_multipolygon(self):
        mp = MultiPolygon([Polygon.box(5, 5, 6, 6), Polygon.box(0, 0, 1, 1)])
        assert ops.intersects(mp, Point(5.5, 5.5))

    def test_hole_excludes_point(self):
        donut = Polygon(
            [(0, 0), (10, 0), (10, 10), (0, 10)],
            holes=[[(4, 4), (6, 4), (6, 6), (4, 6)]],
        )
        assert not ops.intersects(Point(5, 5), donut)
        assert ops.intersects(Point(2, 2), donut)


class TestContainsWithin:
    def test_polygon_contains_point(self):
        assert ops.contains(UNIT, Point(0.5, 0.5))
        assert ops.within(Point(0.5, 0.5), UNIT)

    def test_polygon_contains_polygon(self):
        assert ops.contains(BIG, UNIT)
        assert not ops.contains(UNIT, BIG)

    def test_overlapping_not_contained(self):
        other = Polygon.box(0.5, 0.5, 1.5, 1.5)
        assert not ops.contains(UNIT, other)

    def test_line_contains_point(self):
        line = LineString([(0, 0), (2, 2)])
        assert ops.contains(line, Point(1, 1))
        assert not ops.contains(line, Point(1, 0))

    def test_polygon_contains_line(self):
        assert ops.contains(UNIT, LineString([(0.2, 0.2), (0.8, 0.8)]))
        assert not ops.contains(UNIT, LineString([(0.5, 0.5), (5, 5)]))

    def test_line_contains_subline(self):
        line = LineString([(0, 0), (4, 0)])
        sub = LineString([(1, 0), (3, 0)])
        assert ops.contains(line, sub)
        assert not ops.contains(sub, line)


class TestTouchesCrossesOverlaps:
    def test_touching_boxes(self):
        neighbour = Polygon.box(1, 0, 2, 1)
        assert ops.touches(UNIT, neighbour)
        assert not ops.overlaps(UNIT, neighbour)

    def test_corner_touch(self):
        corner = Polygon.box(1, 1, 2, 2)
        assert ops.touches(UNIT, corner)

    def test_overlapping_boxes(self):
        other = Polygon.box(0.5, 0.5, 1.5, 1.5)
        assert ops.overlaps(UNIT, other)
        assert not ops.touches(UNIT, other)

    def test_line_crosses_polygon(self):
        line = LineString([(-1, 0.5), (2, 0.5)])
        assert ops.crosses(line, UNIT)

    def test_line_inside_does_not_cross(self):
        line = LineString([(0.2, 0.5), (0.8, 0.5)])
        assert not ops.crosses(line, UNIT)

    def test_lines_cross(self):
        a = LineString([(0, 0), (2, 2)])
        b = LineString([(0, 2), (2, 0)])
        assert ops.crosses(a, b)

    def test_lines_touch_at_endpoint(self):
        a = LineString([(0, 0), (1, 1)])
        b = LineString([(1, 1), (2, 0)])
        assert ops.touches(a, b)
        assert not ops.crosses(a, b)

    def test_point_touches_polygon_boundary(self):
        assert ops.touches(Point(0, 0.5), UNIT)
        assert not ops.touches(Point(0.5, 0.5), UNIT)


class TestEqualsDisjoint:
    def test_equals_same_box(self):
        assert ops.equals(UNIT, Polygon.box(0, 0, 1, 1))

    def test_equals_different_start_vertex(self):
        a = Polygon([(0, 0), (1, 0), (1, 1), (0, 1)])
        b = Polygon([(1, 0), (1, 1), (0, 1), (0, 0)])
        assert ops.equals(a, b)

    def test_disjoint(self):
        assert ops.disjoint(UNIT, Polygon.box(5, 5, 6, 6))
        assert not ops.disjoint(UNIT, BIG)


class TestMeasures:
    def test_area_box(self):
        assert math.isclose(ops.area(Polygon.box(0, 0, 2, 3)), 6.0)

    def test_area_with_hole(self):
        donut = Polygon(
            [(0, 0), (10, 0), (10, 10), (0, 10)],
            holes=[[(4, 4), (6, 4), (6, 6), (4, 6)]],
        )
        assert math.isclose(ops.area(donut), 96.0)

    def test_length(self):
        assert math.isclose(
            ops.length(LineString([(0, 0), (3, 4)])), 5.0
        )
        assert math.isclose(ops.length(UNIT), 4.0)

    def test_centroid_box(self):
        c = ops.centroid(Polygon.box(0, 0, 2, 2))
        assert math.isclose(c.x, 1.0) and math.isclose(c.y, 1.0)

    def test_centroid_line(self):
        c = ops.centroid(LineString([(0, 0), (2, 0)]))
        assert math.isclose(c.x, 1.0) and math.isclose(c.y, 0.0)

    def test_distance_disjoint_boxes(self):
        assert math.isclose(
            ops.distance(UNIT, Polygon.box(4, 0, 5, 1)), 3.0
        )

    def test_distance_intersecting_is_zero(self):
        assert ops.distance(UNIT, BIG) == 0.0

    def test_distance_point_to_polygon(self):
        assert math.isclose(ops.distance(Point(0.5, 3), UNIT), 2.0)

    def test_envelope(self):
        env = ops.envelope(LineString([(0, 0), (2, 1)]))
        assert env.bounds == (0, 0, 2, 1)

    def test_dimension(self):
        assert ops.dimension(Point(0, 0)) == 0
        assert ops.dimension(LineString([(0, 0), (1, 1)])) == 1
        assert ops.dimension(UNIT) == 2


class TestConstructions:
    def test_convex_hull_square(self):
        from repro.geometry import MultiPoint

        pts = MultiPoint(
            [Point(0, 0), Point(1, 0), Point(1, 1), Point(0, 1),
             Point(0.5, 0.5)]
        )
        hull = ops.convex_hull(pts)
        assert isinstance(hull, Polygon)
        assert math.isclose(ops.area(hull), 1.0)

    def test_convex_hull_collinear(self):
        from repro.geometry import MultiPoint

        pts = MultiPoint([Point(0, 0), Point(1, 1), Point(2, 2)])
        hull = ops.convex_hull(pts)
        assert isinstance(hull, LineString)

    def test_buffer_point_is_circleish(self):
        buf = ops.buffer(Point(0, 0), 1.0, segments=64)
        assert isinstance(buf, Polygon)
        assert math.isclose(ops.area(buf), math.pi, rel_tol=0.01)
        assert ops.contains(buf, Point(0.9, 0))

    def test_buffer_zero_is_identity(self):
        assert ops.buffer(UNIT, 0.0) is UNIT

    def test_buffer_negative_raises(self):
        from repro.geometry import GeometryError

        with pytest.raises(GeometryError):
            ops.buffer(UNIT, -1.0)

    def test_clip_polygon_partial(self):
        clipped = ops.clip_polygon(Polygon.box(0, 0, 4, 4), (2, 2, 6, 6))
        assert clipped is not None
        assert math.isclose(ops.area(clipped), 4.0)

    def test_clip_polygon_outside_returns_none(self):
        assert ops.clip_polygon(UNIT, (5, 5, 6, 6)) is None

    def test_simplify_keeps_shape(self):
        line = LineString([(0, 0), (1, 0.001), (2, 0), (3, 0.001), (4, 0)])
        simple = ops.simplify(line, tolerance=0.01)
        assert simple.vertices[0] == (0, 0)
        assert simple.vertices[-1] == (4, 0)
        assert len(simple.vertices) == 2
