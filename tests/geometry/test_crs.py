"""CRS helper tests."""

import math

from repro.geometry.crs import (
    LocalProjection,
    degrees_for_metres,
    haversine_m,
    metres_per_degree,
)


def test_haversine_known_distance():
    # Paris (2.3522, 48.8566) to London (-0.1276, 51.5072) ~ 344 km
    d = haversine_m(2.3522, 48.8566, -0.1276, 51.5072)
    assert 335_000 < d < 355_000


def test_haversine_zero():
    assert haversine_m(2, 48, 2, 48) == 0.0


def test_haversine_symmetry():
    a = haversine_m(0, 0, 10, 10)
    b = haversine_m(10, 10, 0, 0)
    assert math.isclose(a, b)


def test_metres_per_degree_at_equator():
    lon_m, lat_m = metres_per_degree(0.0)
    assert math.isclose(lon_m, lat_m)
    assert 110_000 < lat_m < 112_500


def test_metres_per_degree_shrinks_with_latitude():
    lon_eq, __ = metres_per_degree(0.0)
    lon_paris, __ = metres_per_degree(48.85)
    assert lon_paris < lon_eq * 0.7


def test_local_projection_roundtrip():
    proj = LocalProjection(2.35, 48.85)
    x, y = proj.forward(2.40, 48.90)
    lon, lat = proj.inverse(x, y)
    assert math.isclose(lon, 2.40, abs_tol=1e-9)
    assert math.isclose(lat, 48.90, abs_tol=1e-9)


def test_local_projection_agrees_with_haversine():
    proj = LocalProjection(2.35, 48.85)
    x, y = proj.forward(2.45, 48.90)
    planar = math.hypot(x, y)
    spherical = haversine_m(2.35, 48.85, 2.45, 48.90)
    assert abs(planar - spherical) / spherical < 0.01


def test_degrees_for_metres():
    deg = degrees_for_metres(1000.0, 48.85)
    assert 0.008 < deg < 0.012
