"""Unit tests for geometry containers."""

import math

import pytest

from repro.geometry import (
    GeometryCollection,
    GeometryError,
    LineString,
    LinearRing,
    MultiLineString,
    MultiPoint,
    MultiPolygon,
    Point,
    Polygon,
    bbox_contains,
    bbox_intersects,
    flatten,
)


def test_point_coords_and_bounds():
    p = Point(2.35, 48.85)
    assert list(p.coords()) == [(2.35, 48.85)]
    assert p.bounds == (2.35, 48.85, 2.35, 48.85)


def test_point_rejects_nan():
    with pytest.raises(GeometryError):
        Point(float("nan"), 0)
    with pytest.raises(GeometryError):
        Point(0, float("inf"))


def test_linestring_requires_two_vertices():
    with pytest.raises(GeometryError):
        LineString([(0, 0)])


def test_linestring_segments():
    line = LineString([(0, 0), (1, 0), (1, 1)])
    assert list(line.segments()) == [((0, 0), (1, 0)), ((1, 0), (1, 1))]
    assert not line.is_closed


def test_linearring_autocloses():
    ring = LinearRing([(0, 0), (1, 0), (1, 1)])
    assert ring.vertices[0] == ring.vertices[-1]
    assert ring.is_closed


def test_linearring_rejects_degenerate():
    with pytest.raises(GeometryError):
        LinearRing([(0, 0), (1, 1)])


def test_linearring_orientation():
    ccw = LinearRing([(0, 0), (1, 0), (1, 1), (0, 1)])
    cw = LinearRing([(0, 0), (0, 1), (1, 1), (1, 0)])
    assert ccw.is_ccw
    assert not cw.is_ccw
    assert math.isclose(ccw.signed_area, 1.0)
    assert math.isclose(cw.signed_area, -1.0)


def test_polygon_box():
    box = Polygon.box(0, 0, 2, 3)
    assert box.bounds == (0, 0, 2, 3)
    with pytest.raises(GeometryError):
        Polygon.box(2, 0, 0, 3)


def test_polygon_with_hole_coords():
    poly = Polygon(
        [(0, 0), (10, 0), (10, 10), (0, 10)],
        holes=[[(4, 4), (6, 4), (6, 6), (4, 6)]],
    )
    assert len(list(poly.rings())) == 2
    assert (4.0, 4.0) in set(poly.coords())


def test_multi_types_enforce_member_type():
    with pytest.raises(GeometryError):
        MultiPoint([Point(0, 0), LineString([(0, 0), (1, 1)])])
    mp = MultiPolygon([Polygon.box(0, 0, 1, 1), Polygon.box(2, 2, 3, 3)])
    assert len(mp) == 2
    assert mp.bounds == (0, 0, 3, 3)


def test_flatten_nested_collections():
    gc = GeometryCollection(
        [Point(0, 0), MultiPoint([Point(1, 1), Point(2, 2)])]
    )
    parts = list(flatten(gc))
    assert len(parts) == 3
    assert all(isinstance(p, Point) for p in parts)


def test_equality_and_hash():
    a = Polygon.box(0, 0, 1, 1)
    b = Polygon.box(0, 0, 1, 1)
    assert a == b
    assert hash(a) == hash(b)
    assert a != Polygon.box(0, 0, 1, 2)
    assert Point(1, 2) != LineString([(1, 2), (3, 4)])


def test_bbox_helpers():
    assert bbox_intersects((0, 0, 1, 1), (1, 1, 2, 2))  # corner touch
    assert not bbox_intersects((0, 0, 1, 1), (2, 2, 3, 3))
    assert bbox_contains((0, 0, 10, 10), (1, 1, 2, 2))
    assert not bbox_contains((0, 0, 10, 10), (5, 5, 11, 6))


def test_wkt_repr_truncates():
    big = LineString([(i, i) for i in range(100)])
    assert len(repr(big)) < 90
