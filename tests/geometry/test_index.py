"""STRtree spatial index tests."""

import random

import pytest

from repro.geometry import Point, Polygon, STRtree


def _random_boxes(n, seed=7):
    rng = random.Random(seed)
    boxes = []
    for i in range(n):
        x, y = rng.uniform(0, 100), rng.uniform(0, 100)
        boxes.append(Polygon.box(x, y, x + rng.uniform(0.1, 3), y + rng.uniform(0.1, 3)))
    return boxes


def test_empty_tree():
    tree = STRtree([])
    assert len(tree) == 0
    assert tree.query((0, 0, 1, 1)) == []
    assert tree.nearest((0, 0)) == []


def test_query_matches_bruteforce():
    boxes = _random_boxes(500)
    tree = STRtree(boxes)
    from repro.geometry import bbox_intersects

    for qb in [(10, 10, 20, 20), (0, 0, 100, 100), (50, 50, 50.5, 50.5)]:
        expected = {id(b) for b in boxes if bbox_intersects(b.bounds, qb)}
        got = {id(b) for b in tree.query(qb)}
        assert got == expected


def test_query_geom():
    boxes = [Polygon.box(i, 0, i + 0.9, 1) for i in range(10)]
    tree = STRtree(boxes)
    hits = tree.query_geom(Point(2.5, 0.5))
    assert hits == [boxes[2]]


def test_nearest():
    pts = [Point(i, 0) for i in range(10)]
    tree = STRtree(pts)
    nearest = tree.nearest((3.2, 0), k=2)
    assert {p.x for p in nearest} == {3.0, 4.0} or {p.x for p in nearest} == {3.0, 2.0}
    assert tree.nearest((3.2, 0), k=1)[0].x == 3.0


def test_custom_bbox_function():
    items = [{"name": "a", "box": (0, 0, 1, 1)}, {"name": "b", "box": (5, 5, 6, 6)}]
    tree = STRtree(items, bbox_of=lambda it: it["box"])
    assert [it["name"] for it in tree.query((0.5, 0.5, 0.6, 0.6))] == ["a"]


def test_invalid_capacity():
    with pytest.raises(ValueError):
        STRtree([], node_capacity=1)


def test_large_tree_depth_queries():
    boxes = _random_boxes(2000, seed=42)
    tree = STRtree(boxes, node_capacity=8)
    assert len(tree) == 2000
    # Every item is findable through a query at its own bounds.
    sample = boxes[::97]
    for b in sample:
        assert any(hit is b for hit in tree.query(b.bounds))
