"""Shared SDL fixtures: a mounted MEP with LAI + NDVI products."""

from datetime import date

import pytest

from repro.opendap import ServerRegistry
from repro.sdl import StreamingDataLibrary, TokenAuthority
from repro.vito import (
    GlobalLandArchive,
    LAI_SPEC,
    MepDeployment,
    NDVI_SPEC,
    dekad_dates,
    generate_product,
)


@pytest.fixture
def mep_registry():
    archive = GlobalLandArchive()
    for day in dekad_dates(date(2018, 5, 1), 6):  # May..June+ dekads
        archive.publish("LAI", day, 0,
                        generate_product(LAI_SPEC, day, cloud_fraction=0.05))
        archive.publish("NDVI", day, 0,
                        generate_product(NDVI_SPEC, day, cloud_fraction=0.0))
    mep = MepDeployment(archive, host="vito.test")
    mep.mount_all()
    registry = ServerRegistry()
    registry.register(mep.server)
    return registry, mep, archive


@pytest.fixture
def sdl(mep_registry):
    registry, mep, archive = mep_registry
    sdl = StreamingDataLibrary(registry)
    sdl.register_dataset("LAI", "dap://vito.test/Copernicus/LAI")
    sdl.register_dataset("NDVI", "dap://vito.test/Copernicus/NDVI")
    return sdl


@pytest.fixture
def authed_sdl(mep_registry):
    registry, mep, archive = mep_registry
    auth = TokenAuthority()
    sdl = StreamingDataLibrary(registry, auth=auth)
    sdl.register_dataset("LAI", "dap://vito.test/Copernicus/LAI")
    token = auth.register("dev@app-camp.eu")
    return sdl, auth, token
