"""SDL catalog/streaming and RAMANI auth tests."""

from datetime import date

import pytest

from repro.sdl import AccessDenied, SdlError, TokenAuthority


class TestAuth:
    def test_register_and_authenticate(self):
        auth = TokenAuthority()
        token = auth.register("a@b.eu")
        assert auth.authenticate(token) == "a@b.eu"

    def test_missing_and_unknown_tokens(self):
        auth = TokenAuthority()
        with pytest.raises(AccessDenied):
            auth.authenticate(None)
        with pytest.raises(AccessDenied):
            auth.authenticate("ram_bogus")

    def test_revocation(self):
        auth = TokenAuthority()
        token = auth.register("a@b.eu")
        auth.revoke(token)
        with pytest.raises(AccessDenied):
            auth.authenticate(token)

    def test_usage_tracking(self):
        auth = TokenAuthority()
        t1 = auth.register("a@b.eu")
        t2 = auth.register("c@d.eu")
        auth.record_access(t1, "LAI")
        auth.record_access(t1, "LAI")
        auth.record_access(t2, "NDVI")
        assert auth.usage_by_user("a@b.eu") == {"LAI": 2}
        assert auth.usage_by_dataset("LAI") == {"a@b.eu": 2}
        assert auth.top_datasets(1) == [("LAI", 2)]

    def test_tokens_unique(self):
        auth = TokenAuthority()
        assert auth.register("a@b.eu") != auth.register("a@b.eu")


class TestLibrary:
    def test_characteristics(self, sdl):
        info = sdl.characteristics("LAI")
        assert info["variables"] == ["LAI"]
        assert info["time_steps"] == 6
        assert info["time_start"].date() == date(2018, 5, 1)
        assert info["grid_shape"] == (12, 24)
        minx, miny, maxx, maxy = info["bbox"]
        assert minx < maxx and miny < maxy

    def test_unknown_dataset(self, sdl):
        with pytest.raises(SdlError):
            sdl.characteristics("SMOKE")

    def test_stream_yields_time_chunks(self, sdl):
        chunks = list(sdl.stream("LAI"))
        assert len(chunks) == 6
        assert chunks[0]["LAI"].shape == (1, 12, 24)

    def test_stream_with_bbox(self, sdl):
        chunks = list(sdl.stream("LAI", bbox=(2.2, 48.8, 2.3, 48.9)))
        assert chunks[0]["LAI"].shape[1] < 12
        assert chunks[0]["LAI"].shape[2] < 24

    def test_fetch_window_cache_hits_on_repeat(self, sdl):
        sdl.fetch_window("LAI", "LAI", bbox=(2.2, 48.8, 2.3, 48.9))
        hits_before = sdl.cache.hits
        sdl.fetch_window("LAI", "LAI", bbox=(2.2001, 48.8001, 2.2999, 48.8999))
        assert sdl.cache.hits > hits_before  # index-aligned window reused

    def test_metadata_completeness(self, sdl):
        report = sdl.metadata_completeness("LAI")
        assert 0 < report["score"] < 1
        assert "summary" in report["missing"]
        assert "title" not in report["missing"]

    def test_library_completeness(self, sdl):
        report = sdl.library_completeness()
        assert len(report["datasets"]) == 2
        assert 0 <= report["score"] <= 1


class TestAuthEnforcement:
    def test_access_requires_token(self, authed_sdl):
        sdl, auth, token = authed_sdl
        with pytest.raises(AccessDenied):
            sdl.characteristics("LAI")
        info = sdl.characteristics("LAI", token=token)
        assert info["variables"] == ["LAI"]

    def test_streaming_requires_token(self, authed_sdl):
        sdl, auth, token = authed_sdl
        with pytest.raises(AccessDenied):
            next(sdl.stream("LAI"))
        chunk = next(sdl.stream("LAI", token=token))
        assert chunk["LAI"].shape[0] == 1

    def test_usage_recorded(self, authed_sdl):
        sdl, auth, token = authed_sdl
        sdl.characteristics("LAI", token=token)
        sdl.fetch_window("LAI", "LAI", token=token)
        assert auth.usage_by_user("dev@app-camp.eu")["LAI"] == 2
