"""Cloud analytics and Maps-API tests."""

from datetime import date, datetime, timezone

import numpy as np
import pytest

from repro.opendap import DapDataset, DapServer, ServerRegistry
from repro.sdl import (
    MapsApi,
    MapsApiError,
    RamaniCloudAnalytics,
    SdlError,
    StreamingDataLibrary,
)


class TestAnalytics:
    def test_moving_average_smooths(self, sdl):
        analytics = RamaniCloudAnalytics(sdl)
        raw = sdl.fetch_window("NDVI", "NDVI")
        smoothed = analytics.moving_average("NDVI", "NDVI", window=3)
        assert smoothed["NDVI"].shape == raw["NDVI"].shape
        # a moving average has smaller temporal variance
        raw_std = np.nanstd(np.diff(raw["NDVI"].data, axis=0))
        smooth_std = np.nanstd(np.diff(smoothed["NDVI"].data, axis=0))
        assert smooth_std < raw_std

    def test_moving_average_bad_window(self, sdl):
        with pytest.raises(ValueError):
            RamaniCloudAnalytics(sdl).moving_average("NDVI", "NDVI", window=0)

    def test_seasonal_average_plane(self, sdl):
        analytics = RamaniCloudAnalytics(sdl)
        summer = analytics.seasonal_average("NDVI", "NDVI", months=(6,))
        assert summer["NDVI"].dims == ("lat", "lon")
        # June values exceed the May mean (seasonal cycle rising)
        may = analytics.seasonal_average("NDVI", "NDVI", months=(5,))
        assert np.nanmean(summer["NDVI"].data) > np.nanmean(
            may["NDVI"].data
        )

    def test_seasonal_average_no_months(self, sdl):
        with pytest.raises(SdlError):
            RamaniCloudAnalytics(sdl).seasonal_average(
                "NDVI", "NDVI", months=(12,)
            )

    def test_spatial_mean_city_average(self, sdl):
        analytics = RamaniCloudAnalytics(sdl)
        series = analytics.spatial_mean(
            "NDVI", "NDVI", bbox=(2.3, 48.83, 2.4, 48.9)
        )
        assert len(series) == 6
        assert all(np.isfinite(v) for __, v in series)
        # rising through spring
        assert series[-1][1] > series[0][1]

    def test_find_variable_by_name(self, sdl):
        analytics = RamaniCloudAnalytics(sdl)
        dataset, variable = analytics.find_variable(has_name="leaf area")
        assert (dataset, variable) == ("LAI", "LAI")

    def test_find_variable_by_unit(self, sdl):
        analytics = RamaniCloudAnalytics(sdl)
        dataset, variable = analytics.find_variable(has_unit="m2/m2")
        assert variable == "LAI"

    def test_find_variable_no_match(self, sdl):
        with pytest.raises(SdlError):
            RamaniCloudAnalytics(sdl).find_variable(has_unit="kelvin")

    def test_semantic_analysis_survives_source_swap(self, mep_registry):
        """Register analysis by hasUnit; swap source; rerun — §3.1."""
        registry, mep, archive = mep_registry
        sdl = StreamingDataLibrary(registry)
        sdl.register_dataset("LAI", "dap://vito.test/Copernicus/LAI")
        analytics = RamaniCloudAnalytics(sdl)
        analytics.register_analysis(
            "city_green", "spatial_mean", has_unit="m2/m2"
        )
        first = analytics.run_analysis("city_green")
        assert len(first) == 6
        # A new provider exposes the same physical variable: PROBA-V LAI.
        from repro.vito import LAI_SPEC, generate_product

        archive.publish("LAI2", date(2018, 8, 1), 0,
                        generate_product(LAI_SPEC, date(2018, 8, 1),
                                         cloud_fraction=0))
        mep.mount_product("LAI2")
        sdl2 = StreamingDataLibrary(registry)
        sdl2.register_dataset("PROBAV_LAI",
                              "dap://vito.test/Copernicus/LAI2")
        analytics2 = RamaniCloudAnalytics(sdl2)
        analytics2.register_analysis(
            "city_green", "spatial_mean", has_unit="m2/m2"
        )
        second = analytics2.run_analysis("city_green")
        assert len(second) == 1  # found the replacement source unaided

    def test_unknown_analysis(self, sdl):
        with pytest.raises(SdlError):
            RamaniCloudAnalytics(sdl).run_analysis("nope")

    def test_register_bad_operation(self, sdl):
        with pytest.raises(ValueError):
            RamaniCloudAnalytics(sdl).register_analysis(
                "x", "fourier_transform"
            )


class TestMapsApi:
    def test_get_metadata(self, sdl):
        api = MapsApi(sdl)
        meta = api.get_metadata("LAI")
        assert meta["variables"] == ["LAI"]

    def test_get_map(self, sdl):
        api = MapsApi(sdl)
        layer = api.get_map("LAI", "LAI", width=10, height=5)
        assert len(layer["values"]) == 5
        assert len(layer["values"][0]) == 10
        assert layer["time"].year == 2018

    def test_get_map_time_selection(self, sdl):
        api = MapsApi(sdl)
        early = api.get_map(
            "LAI", "LAI",
            when=datetime(2018, 5, 1, tzinfo=timezone.utc),
        )
        assert early["time"].date() == date(2018, 5, 1)

    def test_get_animation(self, sdl):
        api = MapsApi(sdl)
        frames = api.get_animation("NDVI", "NDVI", width=8, height=4)
        assert len(frames) == 6
        assert len(frames[0]["values"]) == 4

    def test_get_transect(self, sdl):
        api = MapsApi(sdl)
        transect = api.get_transect(
            "NDVI", "NDVI", (2.16, 48.76), (2.54, 48.94), samples=10
        )
        assert len(transect) == 10
        assert transect[0]["lon"] == pytest.approx(2.16)
        assert transect[-1]["lat"] == pytest.approx(48.94)

    def test_get_transect_bad_samples(self, sdl):
        with pytest.raises(MapsApiError):
            MapsApi(sdl).get_transect("NDVI", "NDVI", (0, 0), (1, 1),
                                      samples=1)

    def test_get_point_and_timeseries(self, sdl):
        api = MapsApi(sdl)
        value = api.get_point("NDVI", "NDVI", 2.3, 48.85)
        assert np.isfinite(value)
        series = api.get_timeseries_profile("NDVI", "NDVI", 2.3, 48.85)
        assert len(series) == 6
        assert series[-1]["value"] == pytest.approx(value)

    def test_get_area(self, sdl):
        api = MapsApi(sdl)
        stats = api.get_area("NDVI", "NDVI", (2.25, 48.8, 2.45, 48.9))
        assert stats["min"] <= stats["mean"] <= stats["max"]
        assert stats["count"] > 4

    def test_get_map_swipe(self, sdl):
        api = MapsApi(sdl)
        swipe = api.get_map_swipe("LAI", "LAI", "NDVI", "NDVI",
                                  width=6, height=3)
        assert swipe["left"]["variable"] == "LAI"
        assert swipe["right"]["variable"] == "NDVI"
        assert len(swipe["left"]["values"]) == 3

    def test_get_derived_data_dispatch(self, sdl):
        api = MapsApi(sdl)
        series = api.get_derived_data("NDVI", "NDVI", "spatial_mean")
        assert len(series) == 6
        with pytest.raises(MapsApiError):
            api.get_derived_data("NDVI", "NDVI", "no_such_op")

    def test_vertical_profile_requires_level_dim(self, sdl):
        with pytest.raises(MapsApiError):
            MapsApi(sdl).get_vertical_profile("NDVI", "NDVI", 2.3, 48.85)

    def test_spectral_profile_requires_band_dim(self, sdl):
        with pytest.raises(MapsApiError):
            MapsApi(sdl).get_spectral_profile("NDVI", "NDVI", 2.3, 48.85)


def _make_4d_server(dim_name):
    """A tiny dataset with an extra (level or band) dimension."""
    ds = DapDataset("ATM", {"title": "profile test"})
    ds.add_variable("time", ["time"], np.array([0]),
                    {"units": "days since 2018-01-01"})
    ds.add_variable(dim_name, [dim_name], np.array([1.0, 2.0, 3.0]), {})
    ds.add_variable("lat", ["lat"], np.linspace(48, 49, 4),
                    {"units": "degrees_north"})
    ds.add_variable("lon", ["lon"], np.linspace(2, 3, 5),
                    {"units": "degrees_east"})
    data = np.arange(1 * 3 * 4 * 5, dtype=np.float64).reshape(1, 3, 4, 5)
    ds.add_variable("V", ["time", dim_name, "lat", "lon"], data,
                    {"units": "1", "long_name": "test variable"})
    server = DapServer("atm.test")
    server.mount("profiles/V", ds)
    registry = ServerRegistry()
    registry.register(server)
    sdl = StreamingDataLibrary(registry)
    sdl.register_dataset("ATM", "dap://atm.test/profiles/V")
    return sdl


def test_vertical_profile():
    sdl = _make_4d_server("level")
    api = MapsApi(sdl)
    profile = api.get_vertical_profile("ATM", "V", 2.5, 48.5)
    assert [p["level"] for p in profile] == [1.0, 2.0, 3.0]
    # deeper levels index further into the array
    assert profile[1]["value"] > profile[0]["value"]


def test_spectral_profile():
    sdl = _make_4d_server("band")
    api = MapsApi(sdl)
    profile = api.get_spectral_profile("ATM", "V", 2.5, 48.5)
    assert [p["band"] for p in profile] == [1.0, 2.0, 3.0]
    assert len(profile) == 3
