"""DapCache bounds/thread-safety and stale-serve degradation."""

import threading

import pytest

from repro.opendap import DapCache, open_url
from repro.resilience import FaultSchedule, FaultyServer, InjectedFault

from resilience_helpers import LAI_URL, instant_policy

pytestmark = pytest.mark.tier1


# -- LRU bound -------------------------------------------------------------
def test_put_evicts_least_recently_used(fake_clock):
    cache = DapCache(ttl_s=100, clock=fake_clock, max_entries=3)
    for i in range(5):
        cache.put("u", f"c{i}", b"%d" % i)
    assert len(cache) == 3
    assert cache.evictions == 2
    assert cache.get("u", "c0") is None  # evicted
    assert cache.get("u", "c1") is None  # evicted
    assert cache.get("u", "c4") == b"4"


def test_get_refreshes_lru_position(fake_clock):
    cache = DapCache(ttl_s=100, clock=fake_clock, max_entries=2)
    cache.put("u", "a", b"a")
    cache.put("u", "b", b"b")
    assert cache.get("u", "a") == b"a"  # 'a' becomes most recent
    cache.put("u", "c", b"c")  # evicts 'b', not 'a'
    assert cache.get("u", "a") == b"a"
    assert cache.get("u", "b") is None


def test_unbounded_without_max_entries(fake_clock):
    cache = DapCache(ttl_s=100, clock=fake_clock)
    for i in range(100):
        cache.put("u", f"c{i}", b"x")
    assert len(cache) == 100
    assert cache.evictions == 0


# -- TTL and stale retention ----------------------------------------------
def test_expiry_drops_entry_without_serve_stale(fake_clock):
    cache = DapCache(ttl_s=10, clock=fake_clock)
    cache.put("u", "a", b"a")
    fake_clock.advance(11)
    assert cache.get("u", "a") is None
    assert cache.get_stale("u", "a") is None  # really gone


def test_serve_stale_keeps_expired_entries(fake_clock):
    cache = DapCache(ttl_s=10, clock=fake_clock, serve_stale=True)
    cache.put("u", "a", b"a")
    fake_clock.advance(11)
    assert cache.get("u", "a") is None  # still a miss...
    assert cache.misses == 1
    assert cache.get_stale("u", "a") == b"a"  # ...but retrievable
    assert cache.stale_hits == 1


def test_clear_resets_all_counters(fake_clock):
    cache = DapCache(ttl_s=10, clock=fake_clock, max_entries=1,
                     serve_stale=True)
    cache.put("u", "a", b"a")
    cache.put("u", "b", b"b")
    cache.get("u", "b")
    cache.get_stale("u", "b")
    cache.clear()
    assert (cache.hits, cache.misses, cache.stale_hits,
            cache.evictions, len(cache)) == (0, 0, 0, 0, 0)


# -- thread safety ---------------------------------------------------------
def test_concurrent_get_put_is_safe():
    cache = DapCache(ttl_s=100, max_entries=32)
    errors = []

    def worker(worker_id):
        try:
            for i in range(300):
                key = f"c{(worker_id * 7 + i) % 64}"
                cache.put("u", key, b"x")
                cache.get("u", key)
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(w,)) for w in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert errors == []
    assert len(cache) <= 32
    assert cache.hits + cache.misses == 8 * 300


# -- degraded fetch path ---------------------------------------------------
def test_fetch_serves_stale_when_all_retries_fail(registry, fake_clock):
    cache = DapCache(ttl_s=60, clock=fake_clock, serve_stale=True)
    policy = instant_policy(fake_clock, max_attempts=3)
    faulty = registry.wrap(
        "vito.test", lambda s: FaultyServer(s, FaultSchedule())
    )
    remote = open_url(LAI_URL, registry, cache=cache, retry_policy=policy)

    fresh = remote.fetch("LAI[0:1][0:4][0:5]")
    assert fresh.stale is False

    fake_clock.advance(120)  # past the TTL
    faulty.schedule = FaultSchedule.dead()  # host goes down

    degraded = remote.fetch("LAI[0:1][0:4][0:5]")
    assert degraded.stale is True
    assert remote.stats.stale_serves == 1
    assert remote.stats.failures == 1  # the refetch did fail
    assert (degraded["LAI"].data == fresh["LAI"].data).all()


def test_fetch_without_cached_entry_still_raises(registry, fake_clock):
    cache = DapCache(ttl_s=60, clock=fake_clock, serve_stale=True)
    policy = instant_policy(fake_clock, max_attempts=2)
    faulty = registry.wrap(
        "vito.test", lambda s: FaultyServer(s, FaultSchedule())
    )
    remote = open_url(LAI_URL, registry, cache=cache, retry_policy=policy)
    faulty.schedule = FaultSchedule.dead()
    with pytest.raises(InjectedFault):
        remote.fetch("LAI[0:0][0:0][0:0]")  # never cached: nothing stale


def test_stale_entry_refreshes_once_host_recovers(registry, fake_clock):
    cache = DapCache(ttl_s=60, clock=fake_clock, serve_stale=True)
    policy = instant_policy(fake_clock, max_attempts=2)
    faulty = registry.wrap(
        "vito.test", lambda s: FaultyServer(s, FaultSchedule())
    )
    remote = open_url(LAI_URL, registry, cache=cache, retry_policy=policy)
    remote.fetch("lat")
    fake_clock.advance(120)
    faulty.schedule = FaultSchedule.dead()
    assert remote.fetch("lat").stale is True
    faulty.schedule = FaultSchedule()  # host back up
    refreshed = remote.fetch("lat")
    assert refreshed.stale is False  # real refetch, cache re-primed
    assert cache.get("dap://vito.test/Copernicus/LAI", "lat") is not None
