"""Fixtures for the failure-mode suite (helpers live in
``resilience_helpers`` so test modules can import them directly)."""

import pytest

from repro.opendap import DapServer, ServerRegistry

from resilience_helpers import FakeClock, make_lai_dataset


@pytest.fixture
def fake_clock():
    return FakeClock()


@pytest.fixture
def lai_dataset():
    return make_lai_dataset()


@pytest.fixture
def registry(lai_dataset):
    """A registry with one server mounting the LAI grid."""
    reg = ServerRegistry()
    server = DapServer("vito.test")
    server.mount("Copernicus/LAI", lai_dataset)
    reg.register(server)
    return reg
