"""CircuitBreaker state machine and its RetryPolicy integration."""

import pytest

from repro.resilience import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
    CircuitOpenError,
    ResilienceStats,
)

from resilience_helpers import instant_policy

pytestmark = pytest.mark.tier1


def make_breaker(clock, threshold=3, reset=30.0):
    return CircuitBreaker(failure_threshold=threshold,
                          reset_timeout_s=reset, clock=clock)


def test_opens_after_consecutive_failures(fake_clock):
    breaker = make_breaker(fake_clock, threshold=3)
    assert breaker.state == CLOSED
    for _ in range(2):
        breaker.record_failure()
        assert breaker.state == CLOSED
        assert breaker.allow()
    breaker.record_failure()
    assert breaker.state == OPEN
    assert not breaker.allow()


def test_success_resets_the_failure_streak(fake_clock):
    breaker = make_breaker(fake_clock, threshold=3)
    breaker.record_failure()
    breaker.record_failure()
    breaker.record_success()
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.state == CLOSED  # streak was broken


def test_half_open_after_reset_timeout_then_close_on_success(fake_clock):
    breaker = make_breaker(fake_clock, threshold=1, reset=10.0)
    breaker.record_failure()
    assert breaker.state == OPEN
    fake_clock.advance(9.9)
    assert not breaker.allow()
    fake_clock.advance(0.2)
    assert breaker.state == HALF_OPEN
    assert breaker.allow()  # one probe goes through
    breaker.record_success()
    assert breaker.state == CLOSED


def test_half_open_probe_failure_reopens_for_full_timeout(fake_clock):
    breaker = make_breaker(fake_clock, threshold=1, reset=10.0)
    breaker.record_failure()
    fake_clock.advance(10.0)
    assert breaker.state == HALF_OPEN
    breaker.record_failure()  # the probe failed
    assert breaker.state == OPEN
    fake_clock.advance(9.0)
    assert not breaker.allow()
    fake_clock.advance(1.0)
    assert breaker.state == HALF_OPEN


def test_retry_policy_stops_attempting_once_circuit_opens(fake_clock):
    breaker = make_breaker(fake_clock, threshold=2, reset=100.0)
    policy = instant_policy(fake_clock, max_attempts=5)
    stats = ResilienceStats()

    calls = {"n": 0}

    def dead():
        calls["n"] += 1
        raise ConnectionError("down")

    with pytest.raises(CircuitOpenError):
        policy.run(dead, stats=stats, breaker=breaker)
    # Two attempts trip the threshold; the third is skipped unissued.
    assert calls["n"] == 2
    assert stats.attempts == 2
    assert stats.open_circuit_skips == 1
    assert stats.failures == 1

    # While open, later logical requests are skipped without a call.
    with pytest.raises(CircuitOpenError):
        policy.run(dead, stats=stats, breaker=breaker)
    assert calls["n"] == 2
    assert stats.open_circuit_skips == 2


def test_recovery_after_cooldown(fake_clock):
    breaker = make_breaker(fake_clock, threshold=1, reset=5.0)
    policy = instant_policy(fake_clock, max_attempts=1)
    with pytest.raises(ConnectionError):
        policy.run(lambda: (_ for _ in ()).throw(ConnectionError("x")),
                   breaker=breaker)
    assert breaker.state == OPEN
    fake_clock.advance(5.0)
    assert policy.run(lambda: "back", breaker=breaker) == "back"
    assert breaker.state == CLOSED
