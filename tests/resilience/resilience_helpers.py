"""Shared fixtures for the failure-mode suite.

Everything here is deterministic and sleep-free: time is a
:class:`FakeClock` whose ``sleep`` just advances it, so retry/backoff
and TTL behaviour are tested instantly.
"""

import numpy as np

from repro.opendap import DapDataset
from repro.resilience import RetryPolicy

LAI_URL = "dap://vito.test/Copernicus/LAI"


class FakeClock:
    """A manually-advanced monotonic clock with a matching sleep."""

    def __init__(self, start: float = 0.0):
        self.now = start
        self.sleeps = []

    def __call__(self) -> float:
        return self.now

    def sleep(self, seconds: float) -> None:
        self.sleeps.append(seconds)
        self.now += seconds

    def advance(self, seconds: float) -> None:
        self.now += seconds


def instant_policy(clock: FakeClock, **kwargs) -> RetryPolicy:
    """A RetryPolicy whose clock and sleep are the fake clock."""
    kwargs.setdefault("base_delay_s", 0.1)
    return RetryPolicy(clock=clock, sleep=clock.sleep, **kwargs)


def make_lai_dataset() -> DapDataset:
    """A 4-date, 5x6 LAI grid over a Paris-like extent."""
    ds = DapDataset(
        "LAI",
        attributes={
            "title": "Leaf Area Index",
            "Conventions": "CF-1.6",
            "institution": "VITO",
        },
    )
    lats = np.linspace(48.80, 48.92, 5)
    lons = np.linspace(2.20, 2.50, 6)
    times = np.array([0, 10, 20, 30], dtype=np.int32)
    rng = np.random.default_rng(42)
    lai = rng.uniform(0.5, 6.0, size=(4, 5, 6)).astype(np.float32)
    ds.add_variable("time", ["time"], times,
                    {"units": "days since 2018-01-01", "axis": "T"})
    ds.add_variable("lat", ["lat"], lats, {"units": "degrees_north"})
    ds.add_variable("lon", ["lon"], lons, {"units": "degrees_east"})
    ds.add_variable(
        "LAI", ["time", "lat", "lon"], lai,
        {"units": "m2/m2", "long_name": "Leaf Area Index",
         "_FillValue": -1.0},
    )
    return ds

