"""ResilienceStats surfaces through the SDL and the Ontop adapter."""

from datetime import date

import pytest

from repro.ontop import make_opendap_endpoint
from repro.opendap import ServerRegistry
from repro.resilience import FaultSchedule, FaultyServer
from repro.sdl import StreamingDataLibrary
from repro.vito import (
    LAI_SPEC,
    GlobalLandArchive,
    MepDeployment,
    dekad_dates,
    generate_product,
)

from resilience_helpers import instant_policy

pytestmark = pytest.mark.tier1

URL = "dap://vito.test/Copernicus/LAI"

PREFIX = """
PREFIX lai: <http://www.app-lab.eu/lai/>
PREFIX geo: <http://www.opengis.net/ont/geosparql#>
"""


def make_registry():
    archive = GlobalLandArchive()
    for day in dekad_dates(date(2018, 6, 1), 2):
        archive.publish("LAI", day, 0,
                        generate_product(LAI_SPEC, day, cloud_fraction=0.0))
    mep = MepDeployment(archive, host="vito.test")
    mep.mount_product("LAI")
    registry = ServerRegistry()
    registry.register(mep.server)
    return registry


def test_ontop_adapter_retries_and_reports(fake_clock):
    registry = make_registry()
    registry.wrap(
        "vito.test",
        # Three requests per open+query (.dds/.das/.dods): the data
        # request is the one that fails and gets retried.
        lambda s: FaultyServer(s, FaultSchedule(fail_every=3)),
    )
    policy = instant_policy(fake_clock, max_attempts=3)
    engine, operator, __ = make_opendap_endpoint(
        registry, URL, retry_policy=policy
    )
    res = engine.query(
        PREFIX + "SELECT ?s ?lai WHERE { ?s lai:lai ?lai }"
    )
    assert len(res) > 0
    assert operator.stats.retries > 0
    assert operator.stats.failures == 0

    # Same query against a clean registry gives the same row count.
    clean_engine, clean_op, __ = make_opendap_endpoint(make_registry(), URL)
    clean = clean_engine.query(
        PREFIX + "SELECT ?s ?lai WHERE { ?s lai:lai ?lai }"
    )
    assert len(res) == len(clean)
    assert clean_op.stats.retries == 0


def test_sdl_resilience_report(fake_clock):
    registry = make_registry()
    registry.wrap(
        "vito.test",
        lambda s: FaultyServer(s, FaultSchedule(fail_every=5)),
    )
    sdl = StreamingDataLibrary(
        registry,
        cache_max_entries=16,
        serve_stale=True,
        retry_policy=instant_policy(fake_clock, max_attempts=3),
    )
    sdl.register_dataset("lai", URL)
    chunks = list(sdl.stream("lai", variable="LAI"))
    assert chunks and all(not c.stale for c in chunks)

    report = sdl.resilience_report()
    assert report["retries"] > 0
    assert report["failures"] == 0
    assert report["cache_entries"] <= 16
    assert set(report) >= {"attempts", "stale_serves",
                           "open_circuit_skips", "cache_hits"}
