"""Property-style guarantees: retried fetches equal fault-free fetches.

Seeded stdlib randomness only — every run exercises the same fault
schedule and the same constraint expressions.
"""

import random

import pytest

from repro.opendap import DapServer, ServerRegistry, encode_dods, open_url
from repro.resilience import FaultSchedule, FaultyServer

from resilience_helpers import LAI_URL, instant_policy, make_lai_dataset

pytestmark = pytest.mark.tier1


def paired_registries():
    """Two registries serving the *same* dataset: one clean, one faulty."""
    dataset = make_lai_dataset()
    clean = ServerRegistry()
    server = DapServer("vito.test")
    server.mount("Copernicus/LAI", dataset)
    clean.register(server)

    faulty = ServerRegistry()
    server2 = DapServer("vito.test")
    server2.mount("Copernicus/LAI", dataset)
    faulty.register(server2)
    return clean, faulty


def random_constraints(n, seed):
    """*n* random but valid constraint expressions for the LAI grid."""
    rng = random.Random(seed)
    out = []
    for _ in range(n):
        kind = rng.random()
        if kind < 0.15:
            out.append(rng.choice(["lat", "lon", "time", "time,lat,lon"]))
            continue
        t0 = rng.randrange(4)
        t1 = rng.randrange(t0, 4)
        y0 = rng.randrange(5)
        y1 = rng.randrange(y0, 5)
        x0 = rng.randrange(6)
        x1 = rng.randrange(x0, 6)
        out.append(f"LAI[{t0}:{t1}][{y0}:{y1}][{x0}:{x1}]")
    return out


def assert_identical(a, b):
    """Byte-identical datasets (via their canonical DODS encoding)."""
    assert encode_dods(a) == encode_dods(b)


def expected_retry_counts(n_logical, fail_every, max_attempts):
    """Simulate the deterministic schedule: (attempts, retries)."""
    attempt_index = 0
    retries = 0
    for _ in range(n_logical):
        for try_no in range(max_attempts):
            attempt_index += 1
            if attempt_index % fail_every != 0:
                break
            retries += 1
        else:  # pragma: no cover - would mean a logical failure
            raise AssertionError("schedule exhausted max_attempts")
    return attempt_index, retries


def test_hundred_fetches_through_every_third_failing(fake_clock):
    """The ISSUE acceptance workload, verified exactly.

    A server failing every 3rd request, 100 fetches under
    RetryPolicy(max_attempts=3): zero errors raised, byte-identical
    data, and the stats block reporting the exact retry count.
    """
    clean, faulty_reg = paired_registries()
    faulty_reg.wrap(
        "vito.test",
        lambda s: FaultyServer(s, FaultSchedule(fail_every=3)),
    )
    policy = instant_policy(fake_clock, max_attempts=3)

    reference = open_url(LAI_URL, clean)
    remote = open_url(LAI_URL, faulty_reg, retry_policy=policy)

    constraints = random_constraints(100, seed=2024)
    for ce in constraints:  # no exception may escape
        assert_identical(remote.fetch(ce), reference.fetch(ce))

    # 2 metadata requests at open + 100 fetches, one logical each.
    n_logical = 2 + 100
    attempts, retries = expected_retry_counts(n_logical, fail_every=3,
                                              max_attempts=3)
    assert remote.stats.attempts == attempts
    assert remote.stats.retries == retries
    assert remote.stats.successes == n_logical
    assert remote.stats.failures == 0
    # Backoff slept once per retry, never for real.
    assert len(fake_clock.sleeps) == retries


def test_fifty_random_constraints_with_random_faults(fake_clock):
    """Mixed fail/delay/corrupt faults still yield identical bytes."""
    clean, faulty_reg = paired_registries()
    schedule = FaultSchedule(seed=99, fail_rate=0.2, delay_rate=0.1,
                             corrupt_rate=0.1, delay_s=0.01)
    wrapped = faulty_reg.wrap(
        "vito.test",
        lambda s: FaultyServer(s, schedule, sleep=fake_clock.sleep),
    )
    policy = instant_policy(fake_clock, max_attempts=6)

    reference = open_url(LAI_URL, clean)
    remote = open_url(LAI_URL, faulty_reg, retry_policy=policy)

    for ce in random_constraints(50, seed=7):
        assert_identical(remote.fetch(ce), reference.fetch(ce))

    assert remote.stats.successes == 2 + 50
    assert remote.stats.failures == 0
    # The schedule did actually bite (injected counters are non-zero).
    assert wrapped.injected[FaultSchedule.FAIL] > 0
    assert wrapped.injected[FaultSchedule.CORRUPT] > 0


def test_fault_runs_are_reproducible(fake_clock):
    """Same seed -> same injected-fault counts across full reruns."""

    def run_once():
        __, faulty_reg = paired_registries()
        wrapped = faulty_reg.wrap(
            "vito.test",
            lambda s: FaultyServer(
                s, FaultSchedule(seed=5, fail_rate=0.3),
                sleep=fake_clock.sleep,
            ),
        )
        policy = instant_policy(fake_clock, max_attempts=6)
        remote = open_url(LAI_URL, faulty_reg, retry_policy=policy)
        for ce in random_constraints(30, seed=11):
            remote.fetch(ce)
        return dict(wrapped.injected), remote.stats.as_dict()

    assert run_once() == run_once()
