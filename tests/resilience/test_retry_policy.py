"""RetryPolicy: backoff schedules, timeouts, counters — no real sleep."""

import pytest

from repro.resilience import AttemptTimeout, ResilienceStats, RetryPolicy

from resilience_helpers import instant_policy

pytestmark = pytest.mark.tier1


def flaky(n_failures, exc=ConnectionError, value="ok"):
    """A callable failing its first *n_failures* invocations."""
    calls = {"n": 0}

    def fn():
        calls["n"] += 1
        if calls["n"] <= n_failures:
            raise exc(f"boom #{calls['n']}")
        return value

    fn.calls = calls
    return fn


def test_first_attempt_success_counts_one_of_everything(fake_clock):
    policy = instant_policy(fake_clock, max_attempts=3)
    stats = ResilienceStats()
    assert policy.run(flaky(0), stats=stats) == "ok"
    assert stats.attempts == 1
    assert stats.successes == 1
    assert stats.retries == 0
    assert stats.failures == 0
    assert fake_clock.sleeps == []


def test_retries_then_success_sleeps_the_backoff_schedule(fake_clock):
    policy = instant_policy(fake_clock, max_attempts=4, seed=5)
    stats = ResilienceStats()
    assert policy.run(flaky(2), stats=stats) == "ok"
    assert stats.attempts == 3
    assert stats.retries == 2
    assert stats.successes == 1
    assert fake_clock.sleeps == policy.backoff_schedule(2)


def test_exhausted_retries_reraise_last_error(fake_clock):
    policy = instant_policy(fake_clock, max_attempts=3)
    stats = ResilienceStats()
    with pytest.raises(ConnectionError, match="boom #3"):
        policy.run(flaky(10), stats=stats)
    assert stats.attempts == 3
    assert stats.retries == 2
    assert stats.failures == 1
    assert stats.successes == 0
    # Sleeps only *between* attempts: two for three attempts.
    assert len(fake_clock.sleeps) == 2


def test_backoff_is_exponential_capped_and_jittered():
    policy = RetryPolicy(max_attempts=8, base_delay_s=1.0, multiplier=2.0,
                         max_delay_s=10.0, jitter=0.2, seed=3)
    schedule = policy.backoff_schedule()
    assert len(schedule) == 7
    for i, delay in enumerate(schedule):
        nominal = min(10.0, 1.0 * 2.0 ** i)
        assert nominal * 0.8 <= delay <= nominal * 1.2
    # The cap applies to the nominal value before jitter.
    assert schedule[-1] <= 10.0 * 1.2


def test_jitter_is_deterministic_per_seed():
    a = RetryPolicy(seed=11, max_attempts=6).backoff_schedule(5)
    b = RetryPolicy(seed=11, max_attempts=6).backoff_schedule(5)
    c = RetryPolicy(seed=12, max_attempts=6).backoff_schedule(5)
    assert a == b
    assert a != c
    # Pure function of (seed, retry_index): probing out of order or
    # repeatedly changes nothing.
    policy = RetryPolicy(seed=11)
    assert [policy.delay_for(i) for i in (3, 1, 1, 0)] == \
        [a[3], a[1], a[1], a[0]]


def test_per_attempt_timeout_counts_and_retries(fake_clock):
    policy = instant_policy(fake_clock, max_attempts=3,
                            attempt_timeout_s=1.0)
    stats = ResilienceStats()
    calls = {"n": 0}

    def slow_then_fast():
        calls["n"] += 1
        if calls["n"] < 3:
            fake_clock.advance(5.0)  # attempt takes 5 "seconds"
        return calls["n"]

    assert policy.run(slow_then_fast, stats=stats) == 3
    assert stats.timeouts == 2
    assert stats.retries == 2
    assert stats.successes == 1


def test_timeout_exhaustion_raises_attempt_timeout(fake_clock):
    policy = instant_policy(fake_clock, max_attempts=2,
                            attempt_timeout_s=0.5)

    def always_slow():
        fake_clock.advance(2.0)
        return "late"

    with pytest.raises(AttemptTimeout):
        policy.run(always_slow)


def test_retry_on_filters_exception_types(fake_clock):
    policy = instant_policy(fake_clock, max_attempts=5,
                            retry_on=(ConnectionError,))
    stats = ResilienceStats()
    with pytest.raises(ValueError):
        policy.run(flaky(3, exc=ValueError), stats=stats)
    # Non-retryable errors propagate from the first attempt.
    assert stats.attempts == 1
    assert stats.retries == 0


def test_single_attempt_policy_never_sleeps(fake_clock):
    policy = instant_policy(fake_clock, max_attempts=1)
    with pytest.raises(ConnectionError):
        policy.run(flaky(1))
    assert fake_clock.sleeps == []
