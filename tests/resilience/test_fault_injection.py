"""Fault-injection determinism and the server/endpoint wrappers."""

import pytest

from repro.opendap import DapError, open_url
from repro.rdf import Graph, IRI, Literal
from repro.resilience import (
    FaultSchedule,
    FaultyEndpoint,
    FaultyServer,
    InjectedFault,
    corrupt_body,
)
from repro.sparql.federation import SparqlEndpoint

from resilience_helpers import LAI_URL

pytestmark = pytest.mark.tier1


# -- schedules -------------------------------------------------------------
def test_same_seed_same_schedule():
    kw = dict(fail_rate=0.3, delay_rate=0.2, corrupt_rate=0.1)
    assert FaultSchedule(seed=7, **kw).plan(500) == \
        FaultSchedule(seed=7, **kw).plan(500)


def test_different_seed_different_schedule():
    kw = dict(fail_rate=0.3, delay_rate=0.2)
    assert FaultSchedule(seed=7, **kw).plan(500) != \
        FaultSchedule(seed=8, **kw).plan(500)


def test_rates_are_roughly_honoured():
    plan = FaultSchedule(seed=1, fail_rate=0.3, delay_rate=0.2).plan(2000)
    fails = plan.count(FaultSchedule.FAIL) / len(plan)
    delays = plan.count(FaultSchedule.DELAY) / len(plan)
    assert 0.25 < fails < 0.35
    assert 0.15 < delays < 0.25


def test_periodic_rules_and_precedence():
    plan = FaultSchedule(fail_every=3, delay_every=2).plan(12)
    for i, action in enumerate(plan, start=1):
        if i % 3 == 0:
            assert action == FaultSchedule.FAIL  # wins over delay on 6, 12
        elif i % 2 == 0:
            assert action == FaultSchedule.DELAY
        else:
            assert action is None


def test_fail_first_and_dead():
    plan = FaultSchedule(fail_first=2).plan(5)
    assert plan == [FaultSchedule.FAIL, FaultSchedule.FAIL, None, None, None]
    assert set(FaultSchedule.dead().plan(10)) == {FaultSchedule.FAIL}


# -- FaultyServer ----------------------------------------------------------
def test_faulty_server_fails_scheduled_requests(registry):
    faulty = registry.wrap(
        "vito.test", lambda s: FaultyServer(s, FaultSchedule(fail_every=2))
    )
    assert faulty.request("Copernicus/LAI.dds")  # request 1 passes
    with pytest.raises(InjectedFault):
        faulty.request("Copernicus/LAI.dds")  # request 2 fails
    assert faulty.injected[FaultSchedule.FAIL] == 1
    # Non-protocol surface delegates to the wrapped server.
    assert faulty.host == "vito.test"
    assert faulty.paths() == ["Copernicus/LAI"]
    assert faulty.url("Copernicus/LAI") == LAI_URL


def test_registry_wrap_replaces_in_place(registry):
    faulty = registry.wrap(
        "vito.test", lambda s: FaultyServer(s, FaultSchedule())
    )
    server, path = registry.resolve(LAI_URL)
    assert server is faulty
    with pytest.raises(DapError):
        registry.wrap("nope.test", lambda s: s)


def test_delay_faults_use_injected_sleep(registry):
    slept = []
    registry.wrap(
        "vito.test",
        lambda s: FaultyServer(
            s, FaultSchedule(delay_every=1, delay_s=0.25),
            sleep=slept.append,
        ),
    )
    remote = open_url(LAI_URL, registry)
    assert slept == [0.25, 0.25]  # .dds and .das during open


def test_corrupt_fault_breaks_decoding(registry):
    registry.wrap(
        "vito.test",
        # Corrupt only request 3: DDS and DAS load cleanly, the first
        # .dods payload arrives mangled.
        lambda s: FaultyServer(s, FaultSchedule(corrupt_every=3)),
    )
    remote = open_url(LAI_URL, registry)
    with pytest.raises(Exception):
        remote.fetch("lat")
    assert corrupt_body(b"abcd") != b"abcd"


# -- FaultyEndpoint --------------------------------------------------------
def make_endpoint(name="ep"):
    graph = Graph()
    ex = "http://example.org/"
    graph.add(IRI(ex + "s"), IRI(ex + "p"), Literal("v"))
    return SparqlEndpoint(graph, name=name)


def test_faulty_endpoint_fails_before_charging_inner():
    ep = make_endpoint()
    faulty = FaultyEndpoint(ep, FaultSchedule(fail_every=1))
    with pytest.raises(InjectedFault):
        faulty.query("SELECT ?s WHERE { ?s ?p ?o }")
    # The logical request never reached the endpoint: not counted.
    assert ep.request_count == 0
    assert faulty.request_count == 0  # delegated attribute
    assert faulty.name == "ep"


def test_faulty_endpoint_passes_through_when_not_scheduled():
    ep = make_endpoint()
    faulty = FaultyEndpoint(ep, FaultSchedule(fail_every=3))
    res = faulty.query("SELECT ?s WHERE { ?s ?p ?o }")
    assert len(res) == 1
    assert ep.request_count == 1
    assert len(faulty.predicates()) == 1
    with pytest.raises(InjectedFault):
        faulty.query("SELECT ?s WHERE { ?s ?p ?o }")  # 3rd intercepted call
