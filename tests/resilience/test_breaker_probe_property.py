"""Half-open single-probe property, across worker counts.

The breaker promises: however many workers hit a half-open circuit
concurrently, exactly one wins the probe slot per window — the rest
fast-fail without touching the recovering endpoint. That property must
hold whether the pool is serial or genuinely threaded, so every
scenario here runs at ``workers in (1, 2, 4)`` on a fake clock.
"""

import pytest

from repro.parallel import WorkerPool
from repro.resilience import CircuitBreaker
from repro.resilience.breaker import CLOSED, HALF_OPEN, OPEN

pytestmark = pytest.mark.tier1

WORKER_COUNTS = (1, 2, 4)
CALLERS = 8


def tripped_breaker(clock, threshold=2, reset=5.0):
    """A breaker driven into OPEN, with the reset window still ahead."""
    breaker = CircuitBreaker(failure_threshold=threshold,
                             reset_timeout_s=reset, clock=clock)
    for _ in range(threshold):
        breaker.record_failure()
    assert breaker.state == OPEN
    return breaker


def stampede(breaker, workers, callers=CALLERS):
    """*callers* concurrent ``allow()`` calls; returns the verdicts.

    No caller resolves its probe inside the task, so the slot stays
    taken from the first win onward — any interleaving must yield
    exactly one ``True``.
    """
    with WorkerPool(workers=workers) as pool:
        outcomes = pool.run_tasks(lambda i: breaker.allow(),
                                  range(callers))
    assert all(o.error is None for o in outcomes)
    return [o.value for o in outcomes]


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_half_open_admits_exactly_one_probe(fake_clock, workers):
    breaker = tripped_breaker(fake_clock)
    fake_clock.advance(breaker.reset_timeout_s)
    assert breaker.state == HALF_OPEN
    verdicts = stampede(breaker, workers)
    assert verdicts.count(True) == 1
    assert breaker.probe_fast_fails == CALLERS - 1


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_open_circuit_admits_nobody(fake_clock, workers):
    breaker = tripped_breaker(fake_clock)
    fake_clock.advance(breaker.reset_timeout_s - 0.01)
    verdicts = stampede(breaker, workers)
    assert verdicts.count(True) == 0
    # These were plain open-circuit skips, not lost probe races.
    assert breaker.probe_fast_fails == 0


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_probe_success_reopens_the_floodgates(fake_clock, workers):
    breaker = tripped_breaker(fake_clock)
    fake_clock.advance(breaker.reset_timeout_s)
    assert stampede(breaker, workers).count(True) == 1
    breaker.record_success()
    assert breaker.state == CLOSED
    # A closed circuit admits everyone.
    assert stampede(breaker, workers).count(True) == CALLERS


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_probe_failure_holds_one_probe_per_window(fake_clock, workers):
    """The property survives repeated failing windows: one probe per
    window, every loser fast-fails, and the timeout is respected in
    full after each failed probe."""
    breaker = tripped_breaker(fake_clock)
    for window in range(1, 4):
        fake_clock.advance(breaker.reset_timeout_s)
        verdicts = stampede(breaker, workers)
        assert verdicts.count(True) == 1, f"window {window}"
        assert breaker.probe_fast_fails == window * (CALLERS - 1)
        breaker.record_failure()   # the probe found the host still sick
        assert breaker.state == OPEN
        # Re-opened for a *full* timeout: nothing admitted early.
        fake_clock.advance(breaker.reset_timeout_s / 2)
        assert stampede(breaker, workers).count(True) == 0


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_released_probe_slot_is_reusable_but_still_single(
        fake_clock, workers):
    """An abandoned probe (budget kill mid-attempt) returns the slot:
    the next caller may probe in the same window, but never two at
    once."""
    breaker = tripped_breaker(fake_clock)
    fake_clock.advance(breaker.reset_timeout_s)
    assert stampede(breaker, workers).count(True) == 1
    breaker.release_probe()
    # Same window, slot handed back: exactly one winner again.
    assert stampede(breaker, workers).count(True) == 1
