"""Federation failure modes: partial results, retries, breakers."""

import pytest

from repro.rdf import Graph, IRI, Literal
from repro.resilience import (
    CircuitBreaker,
    FaultSchedule,
    FaultyEndpoint,
    InjectedFault,
)
from repro.sparql.federation import FederationEngine, SparqlEndpoint

from resilience_helpers import instant_policy

pytestmark = pytest.mark.tier1

EX = "http://example.org/"
GADM_IRI = "http://gadm.example/sparql"
OSM_IRI = "http://osm.example/sparql"

PREFIX = "PREFIX ex: <http://example.org/>\n"


def make_graph(kind, names):
    graph = Graph()
    graph.bind("ex", EX)
    for name in names:
        node = IRI(EX + name)
        graph.add(node, IRI(EX + kind), Literal(name))
    return graph


@pytest.fixture
def healthy_and_dead(fake_clock):
    """One healthy endpoint + one whose every request fails."""
    engine = FederationEngine(
        retry_policy=instant_policy(fake_clock, max_attempts=2)
    )
    healthy = SparqlEndpoint(make_graph("unit", ["paris", "lyon"]),
                             name="gadm")
    dead = FaultyEndpoint(
        SparqlEndpoint(make_graph("park", ["jardin"]), name="osm"),
        FaultSchedule.dead(),
    )
    engine.register(GADM_IRI, healthy)
    engine.register(OSM_IRI, dead)
    return engine


def test_partial_results_keep_healthy_solutions(healthy_and_dead):
    res = healthy_and_dead.query(
        PREFIX + "SELECT ?n WHERE { ?s ex:unit ?n }",
        partial_results=True,
    )
    assert {str(r["n"]) for r in res} == {"paris", "lyon"}
    assert list(res.failures) == [OSM_IRI]
    assert "InjectedFault" in res.failures[OSM_IRI]


def test_strict_mode_still_raises(healthy_and_dead):
    with pytest.raises(InjectedFault):
        healthy_and_dead.query(
            PREFIX + "SELECT ?n WHERE { ?s ex:unit ?n }"
        )


def test_successful_query_reports_no_failures(fake_clock):
    engine = FederationEngine(
        retry_policy=instant_policy(fake_clock, max_attempts=2)
    )
    engine.register(GADM_IRI, SparqlEndpoint(make_graph("unit", ["paris"])))
    res = engine.query(PREFIX + "SELECT ?n WHERE { ?s ex:unit ?n }")
    assert res.failures == {}
    assert len(res) == 1


def test_service_against_dead_endpoint_partial(healthy_and_dead):
    res = healthy_and_dead.query(
        PREFIX
        + "SELECT ?n WHERE { SERVICE <%s> { ?s ex:park ?n } }" % OSM_IRI,
        partial_results=True,
    )
    assert len(res) == 0
    assert OSM_IRI in res.failures


def test_service_against_unregistered_endpoint_always_raises(
        fake_clock, healthy_and_dead):
    query = "SELECT ?s WHERE { SERVICE <http://nope/sparql> { ?s ?p ?o } }"
    engine = FederationEngine(
        retry_policy=instant_policy(fake_clock, max_attempts=2)
    )
    engine.register(GADM_IRI, SparqlEndpoint(make_graph("unit", ["paris"])))
    with pytest.raises(KeyError):
        engine.query(query)
    # Partial mode degrades on *network* failures only — an unknown
    # endpoint is a query error, even while another member is down.
    with pytest.raises(KeyError):
        healthy_and_dead.query(query, partial_results=True)


def test_retry_recovers_flaky_service_counting_one_logical_request(
        fake_clock):
    engine = FederationEngine(
        retry_policy=instant_policy(fake_clock, max_attempts=3)
    )
    inner = SparqlEndpoint(make_graph("park", ["jardin", "tuileries"]),
                           name="osm")
    # Intercepted calls: #1 predicates (ok), #2 service dispatch
    # (fails), #3 the retried dispatch (ok).
    flaky = FaultyEndpoint(inner, FaultSchedule(fail_every=2))
    engine.register(OSM_IRI, flaky)

    res = engine.query(
        PREFIX
        + "SELECT ?n WHERE { SERVICE <%s> { ?s ex:park ?n } }" % OSM_IRI
    )
    assert len(res) == 2
    assert engine.stats.retries == 1
    # The retried attempt failed *before* reaching the endpoint, so the
    # logical request is counted exactly once.
    assert engine.request_counts()[OSM_IRI] == 1


def test_circuit_breaker_skips_dead_endpoint_after_threshold(fake_clock):
    engine = FederationEngine(
        retry_policy=instant_policy(fake_clock, max_attempts=1),
        breaker_factory=lambda: CircuitBreaker(
            failure_threshold=1, reset_timeout_s=1000, clock=fake_clock
        ),
    )
    engine.register(GADM_IRI, SparqlEndpoint(make_graph("unit", ["paris"])))
    dead = FaultyEndpoint(
        SparqlEndpoint(make_graph("park", ["jardin"])), FaultSchedule.dead()
    )
    engine.register(OSM_IRI, dead)

    first = engine.query(PREFIX + "SELECT ?n WHERE { ?s ex:unit ?n }",
                         partial_results=True)
    assert OSM_IRI in first.failures
    attempts_on_dead = dead.request_index
    assert engine.breaker(OSM_IRI).state == "open"

    second = engine.query(PREFIX + "SELECT ?n WHERE { ?s ex:unit ?n }",
                          partial_results=True)
    assert len(second) == 1
    assert "CircuitOpenError" in second.failures[OSM_IRI]
    # The open circuit means the dead host was never contacted again.
    assert dead.request_index == attempts_on_dead
    assert engine.stats.open_circuit_skips >= 1


def test_default_engine_behaviour_is_unchanged():
    engine = FederationEngine()
    engine.register(GADM_IRI, SparqlEndpoint(make_graph("unit", ["paris"])))
    res = engine.query(PREFIX + "SELECT ?n WHERE { ?s ex:unit ?n }")
    assert len(res) == 1
    assert res.failures == {}
    assert engine.request_counts() == {GADM_IRI: 0}
