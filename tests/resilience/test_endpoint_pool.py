"""EndpointPool: rotation, failover, ejection, probes, hedging.

All timing is a :class:`FakeClock` the work function advances, so
hedge delays, ejection windows and deadline propagation are exact.
"""

import pytest

from repro.governance.budget import QueryBudget
from repro.rdf import Graph, IRI, Literal
from repro.resilience.endpoint_pool import (
    ACTIVE,
    EJECTED,
    EndpointPool,
    NoHealthyReplicas,
)
from repro.resilience.faults import FaultSchedule, FaultyEndpoint
from repro.resilience.retry_budget import RetryBudget
from repro.resilience.stats import ResilienceStats
from repro.sparql.federation import FederationEngine, SparqlEndpoint

from resilience_helpers import instant_policy

pytestmark = pytest.mark.tier1


def make_pool(clock, n=2, **kwargs):
    kwargs.setdefault("min_samples", 2)
    kwargs.setdefault("eject_error_rate", 0.5)
    kwargs.setdefault("ejection_s", 1.0)
    kwargs.setdefault("hedge", False)
    replicas = [(f"r{i}", f"endpoint-{i}") for i in range(n)]
    return EndpointPool("test-pool", replicas, clock=clock, **kwargs)


class Work:
    """A work function with per-endpoint latency/failure scripting."""

    def __init__(self, clock, delays=None, failing=()):
        self.clock = clock
        self.delays = dict(delays or {})
        self.failing = set(failing)
        self.calls = []
        self.children = {}

    def __call__(self, endpoint, child):
        self.calls.append(endpoint)
        self.children[endpoint] = child
        self.clock.advance(self.delays.get(endpoint, 0.0))
        if endpoint in self.failing:
            raise ConnectionError(f"{endpoint} is scripted to fail")
        return f"ok:{endpoint}"


# -- rotation and failover --------------------------------------------------
def test_round_robin_rotation(fake_clock):
    pool = make_pool(fake_clock)
    work = Work(fake_clock)
    results = [pool.call(work) for _ in range(4)]
    assert work.calls == ["endpoint-0", "endpoint-1"] * 2
    assert results == ["ok:endpoint-0", "ok:endpoint-1"] * 2
    assert pool.counters["dispatches"] == 4
    assert pool.counters["failovers"] == 0


def test_failover_moves_to_next_replica(fake_clock):
    pool = make_pool(fake_clock)
    work = Work(fake_clock, failing={"endpoint-0"})
    assert pool.call(work) == "ok:endpoint-1"
    assert pool.counters["failovers"] == 1
    assert pool.replica("r0").failures == 1
    assert pool.replica("r1").failures == 0


def test_non_failover_exception_propagates_untouched(fake_clock):
    pool = make_pool(fake_clock)

    def boom(endpoint, child):
        raise ValueError("not a replica-health signal")

    with pytest.raises(ValueError):
        pool.call(boom)
    # The failure never fed the health window: it says nothing about
    # the replica.
    assert len(pool.replica("r0").window) == 0
    assert pool.counters["failovers"] == 0


def test_all_replicas_failing_raises_last_error(fake_clock):
    pool = make_pool(fake_clock)
    work = Work(fake_clock, failing={"endpoint-0", "endpoint-1"})
    with pytest.raises(ConnectionError):
        pool.call(work)
    # Both were attempted exactly once before giving up.
    assert sorted(work.calls) == ["endpoint-0", "endpoint-1"]


# -- outlier ejection -------------------------------------------------------
def eject_r0(pool, clock):
    """Drive r0 over the ejection threshold via scripted failovers."""
    work = Work(clock, failing={"endpoint-0"})
    while pool.replica("r0").state == ACTIVE:
        pool.call(work)
    return work


def test_outlier_ejected_after_min_samples(fake_clock):
    pool = make_pool(fake_clock)
    eject_r0(pool, fake_clock)
    rep = pool.replica("r0")
    assert rep.state == EJECTED
    assert rep.ejections == 1
    assert pool.counters["ejections"] == 1
    assert pool.active_count() == 1
    # Traffic now avoids the ejected replica entirely.
    work = Work(fake_clock)
    for _ in range(3):
        assert pool.call(work) == "ok:endpoint-1"


def test_no_healthy_replicas_when_sole_replica_ejected(fake_clock):
    pool = make_pool(fake_clock, n=1)
    work = Work(fake_clock, failing={"endpoint-0"})
    for _ in range(2):
        with pytest.raises(ConnectionError):
            pool.call(work)
    assert pool.replica("r0").state == EJECTED
    # Window not elapsed: nothing to probe, nothing active.
    with pytest.raises(NoHealthyReplicas):
        pool.call(Work(fake_clock))


def test_half_open_probe_success_reinstates_replica(fake_clock):
    pool = make_pool(fake_clock)
    eject_r0(pool, fake_clock)
    fake_clock.advance(pool.ejection_s + 0.01)
    work = Work(fake_clock)
    # A due probe takes priority over rotation.
    assert pool.call(work) == "ok:endpoint-0"
    rep = pool.replica("r0")
    assert rep.state == ACTIVE
    assert pool.counters["probes"] == 1
    assert pool.counters["probe_successes"] == 1
    # The poisoned error window was discarded with the recovery.
    assert rep.error_rate() == 0.0


def test_half_open_probe_failure_reejects_full_window(fake_clock):
    pool = make_pool(fake_clock)
    eject_r0(pool, fake_clock)
    fake_clock.advance(pool.ejection_s + 0.01)
    work = Work(fake_clock, failing={"endpoint-0"})
    # One call: the probe fails, then the request fails over to r1.
    assert pool.call(work) == "ok:endpoint-1"
    rep = pool.replica("r0")
    assert rep.state == EJECTED
    assert rep.ejected_until == pytest.approx(
        fake_clock.now + pool.ejection_s)
    assert pool.counters["probe_failures"] == 1


# -- hedging ----------------------------------------------------------------
def hedged_pool(clock, **kwargs):
    kwargs.setdefault("hedge_warmup", 4)
    return make_pool(clock, hedge=True, hedge_quantile=0.95, **kwargs)


def warm(pool, clock, n=4, latency=0.01):
    work = Work(clock, delays={"endpoint-0": latency,
                               "endpoint-1": latency})
    for _ in range(n):
        pool.call(work)


def test_hedge_fires_on_slow_primary_and_backup_wins(fake_clock):
    pool = hedged_pool(fake_clock)
    warm(pool, fake_clock)
    assert pool.hedge_delay() == pytest.approx(0.01)
    work = Work(fake_clock, delays={"endpoint-0": 0.05,
                                    "endpoint-1": 0.001})
    budget = QueryBudget(deadline_s=10.0, clock=fake_clock)
    value = pool.call(work, budget=budget)
    assert value == "ok:endpoint-1"
    outcome = pool.last_outcome
    assert outcome.hedged and outcome.winner == "hedge"
    assert outcome.primary_latency_s == pytest.approx(0.05)
    # What a client would have seen: hedge delay + backup latency.
    assert outcome.effective_latency_s == pytest.approx(0.011)
    assert pool.counters["hedges"] == 1
    assert pool.counters["hedge_wins"] == 1
    # The losing primary's child budget was cancelled.
    assert work.children["endpoint-0"].cancelled
    assert not work.children["endpoint-1"].cancelled


def test_fast_primary_never_hedges(fake_clock):
    pool = hedged_pool(fake_clock)
    warm(pool, fake_clock)
    work = Work(fake_clock, delays={"endpoint-0": 0.001,
                                    "endpoint-1": 0.001})
    pool.call(work)
    assert pool.counters["hedges"] == 0
    assert not pool.last_outcome.hedged


def test_slow_backup_loses_and_primary_result_stands(fake_clock):
    pool = hedged_pool(fake_clock)
    warm(pool, fake_clock)
    work = Work(fake_clock, delays={"endpoint-0": 0.05,
                                    "endpoint-1": 0.2})
    budget = QueryBudget(deadline_s=10.0, clock=fake_clock)
    assert pool.call(work, budget=budget) == "ok:endpoint-0"
    outcome = pool.last_outcome
    assert outcome.hedged and outcome.winner == "primary"
    assert pool.counters["hedges"] == 1
    assert pool.counters["hedge_wins"] == 0
    # The losing hedge's child budget was cancelled.
    assert work.children["endpoint-1"].cancelled


def test_hedge_needs_retry_budget_token(fake_clock):
    stats = ResilienceStats()
    bucket = RetryBudget(ratio=0.1, cap=10.0, initial=0.0)
    pool = hedged_pool(fake_clock, retry_budget=bucket, stats=stats)
    warm(pool, fake_clock)
    work = Work(fake_clock, delays={"endpoint-0": 0.05,
                                    "endpoint-1": 0.001})
    # An empty bucket sheds the hedge: slow primary result stands.
    assert pool.call(work) == "ok:endpoint-0"
    assert pool.counters["hedges"] == 0
    assert bucket.denials == 1
    assert stats.retry_budget_denials == 1


def test_hedge_spends_one_token_when_funded(fake_clock):
    bucket = RetryBudget(ratio=0.1, cap=10.0, initial=1.0)
    pool = hedged_pool(fake_clock, retry_budget=bucket)
    warm(pool, fake_clock)
    work = Work(fake_clock, delays={"endpoint-0": 0.05,
                                    "endpoint-1": 0.001})
    pool.call(work)
    assert pool.counters["hedges"] == 1
    assert bucket.withdrawals == 1
    assert bucket.tokens == pytest.approx(0.0)


def test_query_budget_bucket_takes_precedence(fake_clock):
    pool_bucket = RetryBudget(initial=5.0)
    query_bucket = RetryBudget(initial=1.0)
    pool = hedged_pool(fake_clock, retry_budget=pool_bucket)
    warm(pool, fake_clock)
    budget = QueryBudget(deadline_s=10.0, clock=fake_clock)
    budget.retry_budget = query_bucket
    work = Work(fake_clock, delays={"endpoint-0": 0.05,
                                    "endpoint-1": 0.001})
    pool.call(work, budget=budget)
    # The hedge drew on the query's (tenant's) bucket, not the pool's.
    assert query_bucket.withdrawals == 1
    assert pool_bucket.withdrawals == 0


# -- deadline propagation ---------------------------------------------------
def test_child_budget_carries_remaining_deadline(fake_clock):
    pool = make_pool(fake_clock)
    budget = QueryBudget(deadline_s=5.0, clock=fake_clock)
    fake_clock.advance(2.0)
    work = Work(fake_clock)
    pool.call(work, budget=budget)
    child = work.children["endpoint-0"]
    assert child is not budget
    assert child.deadline_s == pytest.approx(3.0)
    assert child.clock is fake_clock


def test_exhausted_deadline_blocks_hedging(fake_clock):
    pool = hedged_pool(fake_clock)
    warm(pool, fake_clock)
    budget = QueryBudget(deadline_s=0.02, clock=fake_clock)
    work = Work(fake_clock, delays={"endpoint-0": 0.05,
                                    "endpoint-1": 0.001})
    # The slow primary burned the whole deadline: a hedge could never
    # finish inside it, so none is dispatched.
    assert pool.call(work, budget=budget) == "ok:endpoint-0"
    assert pool.counters["hedges"] == 0


# -- engine wiring ----------------------------------------------------------
EX = "http://example.org/"
POOLED_IRI = "http://pooled.example/sparql"


def test_register_replicas_survives_one_dead_replica(fake_clock):
    graph = Graph()
    graph.bind("ex", EX)
    for name in ("paris", "lyon"):
        graph.add(IRI(EX + name), IRI(EX + "unit"), Literal(name))
    engine = FederationEngine(
        retry_policy=instant_policy(fake_clock, max_attempts=1))
    dead = FaultyEndpoint(SparqlEndpoint(graph, name="dead"),
                          FaultSchedule.dead())
    engine.register_replicas(
        POOLED_IRI,
        [dead, SparqlEndpoint(graph, name="alive")],
        hedge=False, min_samples=2, ejection_s=1.0)
    res = engine.query(
        "PREFIX ex: <http://example.org/>\n"
        "SELECT ?n WHERE { ?s ex:unit ?n }")
    assert {str(r["n"]) for r in res} == {"paris", "lyon"}
    report = engine.pool_reports()[POOLED_IRI]
    assert report["counters"]["failovers"] >= 1
