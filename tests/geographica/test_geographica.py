"""Geographica workload/harness correctness tests (E6 groundwork)."""

import pytest

from repro.geographica import (
    generate_workload,
    load_ontop,
    load_strabon,
    micro_queries,
    queries_by_key,
    run_benchmark,
)
from repro.rdf import Graph


@pytest.fixture(scope="module")
def workload():
    return generate_workload(scale=1)


@pytest.fixture(scope="module")
def strabon(workload):
    return load_strabon(workload)


@pytest.fixture(scope="module")
def ontop(workload):
    engine, __ = load_ontop(workload)
    return engine


def test_workload_shapes(workload):
    assert set(workload.features) == {
        "gag", "corine", "hotspots", "roads", "pois",
    }
    assert len(workload.features["hotspots"]) == 200
    assert workload.features["pois"].features[0].properties["class"]


def test_workload_deterministic():
    a = generate_workload(scale=1)
    b = generate_workload(scale=1)
    assert a.features["gag"].features[3].geometry == \
        b.features["gag"].features[3].geometry


def test_scale_factor():
    big = generate_workload(scale=2)
    assert len(big.features["hotspots"]) == 400


def test_strabon_loaded(strabon):
    assert strabon.indexed_geometry_count == 40 + 120 + 200 + 60 + 150


def test_query_set_structure():
    queries = micro_queries()
    assert len(queries) == 11
    families = {q.family for q in queries}
    assert families == {
        "non-topological", "spatial-selection", "spatial-join",
        "aggregation",
    }
    assert set(queries_by_key()) >= {"NT1", "SS1", "SJ1", "AG1"}


@pytest.mark.parametrize("key", ["NT1", "NT4", "SS1", "SS2", "AG2"])
def test_engines_agree(key, strabon, ontop):
    """Both engines return the same row count for every query."""
    query = queries_by_key()[key]
    a = strabon.query(query.sparql)
    b = ontop.query(query.sparql)
    assert len(a) == len(b)
    assert len(a) > 0


def test_spatial_join_agreement(strabon, ontop):
    query = queries_by_key()["SJ1"]
    assert len(strabon.query(query.sparql)) == \
        len(ontop.query(query.sparql))


def test_harness_report(strabon, ontop):
    subset = [queries_by_key()[k] for k in ("SS1", "AG2")]
    report = run_benchmark(
        {"strabon": strabon, "ontop": ontop},
        queries=subset, repeat=2, warmup=0,
    )
    assert len(report.measurements) == 2 * 2 * 2
    assert report.engines() == ["ontop", "strabon"]
    assert report.rows_agree("SS1")
    assert report.winner("SS1") in ("ontop", "strabon")
    text = report.render()
    assert "SS1" in text and "wins:" in text
    wins = report.win_counts()
    assert sum(wins.values()) == 2


def test_macro_queries_agree(strabon, ontop):
    from repro.geographica import macro_queries

    for query in macro_queries():
        a = strabon.query(query.sparql)
        b = ontop.query(query.sparql)
        assert len(a) == len(b), query.key
        assert len(a) > 0, query.key


def test_reverse_geocoding_orders_by_distance(strabon):
    from repro.geographica import queries_by_key

    res = strabon.query(queries_by_key()["RG1"].sparql)
    distances = [r["d"].value for r in res]
    assert distances == sorted(distances)
    assert len(distances) == 3


def test_naive_graph_engine_works(workload):
    """A plain (unindexed) graph also answers — used as a baseline."""
    from repro.geographica.workload import load_strabon

    store = load_strabon(workload)
    naive = Graph()
    naive.update(store)
    query = queries_by_key()["SS1"]
    assert len(naive.query(query.sparql)) == \
        len(store.query(query.sparql))
