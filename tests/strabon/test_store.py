"""Strabon store tests: spatial index, valid time, persistence."""

from datetime import datetime, timezone

import pytest

from repro.geometry import Point, Polygon, to_wkt_literal
from repro.rdf import GEO, GEO_WKT_LITERAL, Graph, IRI, Literal, RDF, Triple
from repro.strabon import StrabonStore

EX = "http://example.org/"

PREFIX = """
PREFIX ex: <http://example.org/>
PREFIX geo: <http://www.opengis.net/ont/geosparql#>
PREFIX geof: <http://www.opengis.net/def/function/geosparql/>
"""


def ex(name):
    return IRI(EX + name)


def wkt_lit(geom):
    return Literal(to_wkt_literal(geom), datatype=GEO_WKT_LITERAL)


def utc(*args):
    return datetime(*args, tzinfo=timezone.utc)


@pytest.fixture
def store():
    store = StrabonStore("test")
    store.bind("ex", EX)
    for i in range(20):
        feature = ex(f"f{i}")
        geom = ex(f"f{i}_geom")
        store.add(feature, RDF.type, ex("Feature"))
        store.add(feature, GEO.hasGeometry, geom)
        store.add(geom, GEO.asWKT, wkt_lit(Point(float(i), float(i))))
    return store


class TestSpatialIndex:
    def test_geometries_indexed(self, store):
        assert store.indexed_geometry_count == 20

    def test_spatial_candidates(self, store):
        candidates = store.spatial_candidates((4.5, 4.5, 7.5, 7.5))
        assert len(candidates) == 3  # points 5, 6, 7

    def test_index_invalidated_on_add(self, store):
        store.spatial_candidates((0, 0, 100, 100))  # force build
        store.add(ex("new_geom"), GEO.asWKT, wkt_lit(Point(50, 50)))
        candidates = store.spatial_candidates((49, 49, 51, 51))
        assert len(candidates) == 1

    def test_index_invalidated_on_remove(self, store):
        lit = wkt_lit(Point(5.0, 5.0))
        store.remove(None, GEO.asWKT, lit)
        assert store.indexed_geometry_count == 19
        assert not store.spatial_candidates((4.9, 4.9, 5.1, 5.1))

    def test_malformed_wkt_not_indexed(self, store):
        store.add(
            ex("bad"), GEO.asWKT,
            Literal("POINT OF NO RETURN", datatype=GEO_WKT_LITERAL),
        )
        assert store.indexed_geometry_count == 20

    def test_spatial_query_uses_index(self, store):
        """Spatial selection returns correct results through the pushdown."""
        window = Polygon.box(4.5, 4.5, 7.5, 7.5)
        res = store.query(
            PREFIX
            + f"""
            SELECT ?f WHERE {{
              ?f geo:hasGeometry ?g . ?g geo:asWKT ?w .
              FILTER(geof:sfWithin(?w,
                "{to_wkt_literal(window)}"^^geo:wktLiteral))
            }}
            """
        )
        assert {str(r["f"]) for r in res} == {EX + "f5", EX + "f6", EX + "f7"}

    def test_results_match_plain_graph(self, store):
        """Index pushdown must not change query semantics."""
        plain = Graph()
        plain.update(store)
        query = (
            PREFIX
            + """
            SELECT ?f WHERE {
              ?f geo:hasGeometry ?g . ?g geo:asWKT ?w .
              FILTER(geof:sfIntersects(?w,
                "POLYGON ((2.5 2.5, 9.5 2.5, 9.5 9.5, 2.5 9.5, 2.5 2.5))"^^geo:wktLiteral))
            }
            """
        )
        fast = {str(r["f"]) for r in store.query(query)}
        slow = {str(r["f"]) for r in plain.query(query)}
        assert fast == slow
        assert len(fast) == 7


class TestValidTime:
    def test_add_with_time_and_lookup(self, store):
        t = Triple(ex("f0"), ex("landCover"), ex("Forest"))
        store.add_with_time(t, start=utc(2000, 1, 1), end=utc(2012, 1, 1))
        assert store.valid_time(t) == (utc(2000, 1, 1), utc(2012, 1, 1))
        assert store.temporal_triple_count == 1

    def test_invalid_interval_rejected(self, store):
        with pytest.raises(ValueError):
            store.add_with_time(
                ex("f0"), ex("p"), ex("o"),
                start=utc(2012, 1, 1), end=utc(2000, 1, 1),
            )

    def test_snapshot(self, store):
        store.add_with_time(
            ex("f0"), ex("landCover"), ex("Forest"),
            start=utc(2000, 1, 1), end=utc(2012, 1, 1),
        )
        store.add_with_time(
            ex("f0"), ex("landCover"), ex("Urban"),
            start=utc(2012, 1, 1), end=utc(2100, 1, 1),
        )
        g2005 = store.snapshot(utc(2005, 6, 1))
        g2015 = store.snapshot(utc(2015, 6, 1))
        assert g2005.value(ex("f0"), ex("landCover")) == ex("Forest")
        assert g2015.value(ex("f0"), ex("landCover")) == ex("Urban")
        # timeless triples present in both snapshots
        assert (ex("f0"), RDF.type, ex("Feature")) in g2005
        assert (ex("f0"), RDF.type, ex("Feature")) in g2015

    def test_interval_is_half_open(self, store):
        store.add_with_time(
            ex("f0"), ex("state"), ex("A"),
            start=utc(2000, 1, 1), end=utc(2010, 1, 1),
        )
        assert (ex("f0"), ex("state"), ex("A")) in store.snapshot(
            utc(2000, 1, 1)
        )
        assert (ex("f0"), ex("state"), ex("A")) not in store.snapshot(
            utc(2010, 1, 1)
        )

    def test_triples_during_overlap(self, store):
        store.add_with_time(
            ex("f1"), ex("state"), ex("B"),
            start=utc(2005, 1, 1), end=utc(2015, 1, 1),
        )
        hits = list(store.triples_during(utc(2014, 1, 1), utc(2020, 1, 1)))
        assert len(hits) == 1
        none = list(store.triples_during(utc(2015, 1, 1), utc(2020, 1, 1)))
        assert none == []

    def test_remove_clears_valid_time(self, store):
        t = Triple(ex("f0"), ex("state"), ex("A"))
        store.add_with_time(t, start=utc(2000, 1, 1), end=utc(2010, 1, 1))
        store.remove(t)
        assert store.valid_time(t) is None


class TestStSparqlSurface:
    def test_expose_valid_time_queryable(self, store):
        store.add_with_time(
            ex("f0"), ex("landCover"), ex("Forest"),
            start=utc(2000, 1, 1), end=utc(2012, 1, 1),
        )
        store.add_with_time(
            ex("f0"), ex("landCover"), ex("Urban"),
            start=utc(2012, 1, 1), end=utc(2100, 1, 1),
        )
        assert store.expose_valid_time() == 2
        res = store.query(
            PREFIX + """
            PREFIX strdf: <http://strdf.di.uoa.gr/ontology#>
            PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
            PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>
            SELECT ?value WHERE {
              ?t a strdf:TemporalTriple ;
                 rdf:subject ex:f0 ; rdf:object ?value ;
                 strdf:hasValidFrom ?from ; strdf:hasValidUntil ?until .
              FILTER(strdf:during("2005-06-01T00:00:00Z"^^xsd:dateTime,
                                  ?from, ?until))
            }
            """
        )
        assert [str(r["value"]) for r in res] == [EX + "Forest"]

    def test_expose_is_idempotent(self, store):
        store.add_with_time(
            ex("f1"), ex("state"), ex("A"),
            start=utc(2000, 1, 1), end=utc(2010, 1, 1),
        )
        first = store.expose_valid_time()
        second = store.expose_valid_time()
        assert first == 1
        assert second == 0


class TestPersistence:
    def test_roundtrip(self, store, tmp_path):
        store.add_with_time(
            ex("f0"), ex("landCover"), ex("Forest"),
            start=utc(2000, 1, 1), end=utc(2012, 1, 1),
        )
        path = str(tmp_path / "strabon.db")
        store.save(path)
        loaded = StrabonStore.load(path, identifier="copy")
        assert len(loaded) == len(store)
        assert loaded.indexed_geometry_count == 20
        assert loaded.valid_time(
            Triple(ex("f0"), ex("landCover"), ex("Forest"))
        ) == (utc(2000, 1, 1), utc(2012, 1, 1))

    def test_loaded_store_answers_queries(self, store, tmp_path):
        path = str(tmp_path / "strabon.db")
        store.save(path)
        loaded = StrabonStore.load(path)
        loaded.bind("ex", EX)
        res = loaded.query(
            PREFIX + "SELECT (COUNT(*) AS ?n) WHERE { ?f a ex:Feature }"
        )
        assert res.rows[0]["n"].value == 20
