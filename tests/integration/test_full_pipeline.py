"""End-to-end integration: the complete Figure-1 architecture in one run.

Exercises every layer in sequence the way the paper's project wires
them: publish → catalog/validate → stream → virtual query →
materialize → interlink → reason → visualize → annotate → search →
federate → operate.
"""

from datetime import date

import pytest

from repro.core import AppLab, GreennessCaseStudy, PREFIXES
from repro.rdf import GADM, GEO, OSM, OWL
from repro.vito import LAI_SPEC, NDVI_SPEC, dekad_dates


@pytest.fixture(scope="module")
def study():
    return GreennessCaseStudy(n_dekads=2, cloud_fraction=0.0)


@pytest.fixture(scope="module")
def store(study):
    return study.materialized_store()


def test_both_workflows_agree_on_observations(study, store):
    """Materialized and virtual workflows see identical observations."""
    virtual = study.run_listing3()
    materialized = store.query(
        PREFIXES + "SELECT ?o ?v WHERE { ?o lai:lai ?v }"
    )
    v_values = sorted(round(float(r["lai"].lexical), 4) for r in virtual)
    m_values = sorted(round(float(r["v"].lexical), 4) for r in materialized)
    assert v_values == m_values


def test_interlink_then_query(study, store):
    """Silk links become queryable triples in the store."""
    from repro.interlink import (
        Comparison, DatasetSelector, LinkSpec, LinkageRule, SilkEngine,
        spatial_relation,
    )

    spec = LinkSpec(
        source=DatasetSelector(
            store, OSM.POI, {"geom": [GEO.hasGeometry, GEO.asWKT]}
        ),
        target=DatasetSelector(
            store, GADM.AdministrativeUnit,
            {"geom": [GEO.hasGeometry, GEO.asWKT]},
        ),
        rule=LinkageRule(
            [Comparison("geom", spatial_relation("within"),
                        is_spatial=True)],
            threshold=1.0,
        ),
        link_predicate=GEO.sfWithin,
    )
    links = SilkEngine().generate_links(spec)
    assert links
    store.update(links)
    res = store.query(
        PREFIXES + """
        SELECT ?poi ?unit WHERE {
          ?poi geo:sfWithin ?unit .
          ?poi osm:hasName "Parc Monceau"^^xsd:string .
          ?unit gadm:hasName ?name .
        }
        """
    )
    assert len(res) >= 1


def test_reasoning_over_case_study(store):
    """RDFS inference makes superclass queries answerable."""
    from repro.rdf import materialize_inferences

    inferred = materialize_inferences(store)
    assert inferred > 0
    res = store.query(
        PREFIXES + """
        PREFIX inspire: <http://inspire.ec.europa.eu/ont/>
        SELECT (COUNT(?a) AS ?n) WHERE { ?a a inspire:LandCoverUnit }
        """
    )
    assert res.rows[0]["n"].value == 13  # all CORINE areas, via rdfs9


def test_map_then_share_then_reload(study, store):
    """Figure 4 map → map ontology RDF → descriptor → re-render."""
    from repro.sextant import (
        ThematicMap, map_descriptor_from_rdf, map_to_rdf,
    )

    tm = study.build_map(store)
    g = map_to_rdf(tm, "http://app-lab.eu/maps/m1")
    descriptor = map_descriptor_from_rdf(g, "http://app-lab.eu/maps/m1")
    rebuilt = ThematicMap(descriptor["name"], descriptor["description"])
    # re-execute the SPARQL layer from its stored source descriptor
    sparql_layers = [
        l for l in descriptor["layers"]
        if l["source"].get("type") == "sparql"
    ]
    assert len(sparql_layers) == 1
    rebuilt.add_sparql_layer(
        sparql_layers[0]["name"], store, sparql_layers[0]["source"]["query"],
        geom_var="wkt", value_var="lai", time_var="t",
        style=sparql_layers[0]["style"],
    )
    assert len(rebuilt.layers[0].features) == \
        len(tm.layers[-1].features)


def test_applab_to_federation():
    """Two AppLab-produced stores answer one federated query."""
    from repro.sparql.federation import FederationEngine, SparqlEndpoint

    lab = AppLab()
    lab.publish_product(LAI_SPEC, dekad_dates(date(2018, 6, 1), 1),
                        cloud_fraction=0.0)
    lab.publish_product(NDVI_SPEC, dekad_dates(date(2018, 6, 1), 1),
                        cloud_fraction=0.0)
    engine = FederationEngine()
    engine.register("http://lai/sparql",
                    SparqlEndpoint(lab.materialize("LAI"), "lai"))
    engine.register("http://ndvi/sparql",
                    SparqlEndpoint(lab.materialize("NDVI"), "ndvi"))
    res = engine.query(
        "PREFIX lai: <http://www.app-lab.eu/lai/> "
        "SELECT (COUNT(?o) AS ?n) WHERE { ?o lai:lai ?v }"
    )
    assert res.rows[0]["n"].value == 2 * 24 * 12  # both endpoints


def test_store_persistence_roundtrip(study, store, tmp_path):
    """The case-study store survives save/load with indexes intact."""
    from repro.strabon import StrabonStore

    path = str(tmp_path / "paris.db")
    store.save(path)
    loaded = StrabonStore.load(path)
    loaded.namespaces = store.namespaces
    a = study.run_listing1(store)
    b = loaded.query(
        PREFIXES + """
        SELECT DISTINCT ?geoA ?geoB ?lai WHERE {
          ?areaA osm:poiType osm:park .
          ?areaA geo:hasGeometry ?geomA .
          ?geomA geo:asWKT ?geoA .
          ?areaA osm:hasName "Bois de Boulogne"^^xsd:string .
          ?areaB lai:lai ?lai .
          ?areaB geo:hasGeometry ?geomB .
          ?geomB geo:asWKT ?geoB .
          FILTER(geof:sfIntersects(?geoA, ?geoB))
        }
        """
    )
    assert len(a) == len(b)


def test_catalog_to_search_pipeline():
    """MEP → CMS harvest → ACDD augment → annotation → search."""
    from repro.catalog import augmentation_ncml, check_acdd
    from repro.opendap import apply_ncml_overrides
    from repro.schemaorg import DatasetSearchEngine, annotation_from_dap

    lab = AppLab()
    lab.publish_product(LAI_SPEC, dekad_dates(date(2018, 6, 1), 1))
    lab.harvest_metadata()
    dataset = lab.mep.aggregated("LAI")
    fixed = apply_ncml_overrides(dataset, augmentation_ncml(dataset))
    assert check_acdd(fixed).score > check_acdd(dataset).score
    engine = DatasetSearchEngine()
    engine.index(annotation_from_dap(lab.product_url("LAI"),
                                     fixed.attributes))
    hits = engine.search("leaf area")
    assert hits and "dap://" in hits[0].annotation.identifier
