"""Integration: the operational data lifecycle of Sections 3.1 and 5.

Reprocessing, late-arriving dekads, auth enforcement, latency
accounting and the SDL→analytics→Sextant rendering path.
"""

from datetime import date

import numpy as np
import pytest

from repro.core import AppLab
from repro.opendap import LatencyModel
from repro.sdl import AccessDenied, RamaniCloudAnalytics, \
    StreamingDataLibrary
from repro.vito import (
    GlobalLandArchive,
    LAI_SPEC,
    MepDeployment,
    dekad_dates,
    generate_product,
)


def test_reprocessing_visible_through_virtual_endpoint():
    """An RT1 reprocess changes what the virtual endpoint serves."""
    lab = AppLab()
    day = date(2018, 6, 1)
    lab.publish_product(LAI_SPEC, [day], cloud_fraction=0.0)
    engine, operator = lab.virtual_endpoint("LAI", window_minutes=0)
    query = (
        "PREFIX lai: <http://www.app-lab.eu/lai/> "
        "SELECT (AVG(?v) AS ?mean) WHERE { ?o lai:lai ?v }"
    )
    before = engine.query(query).rows[0]["mean"].value
    # the production centre reprocesses the same day with better meteo
    lab.archive.reprocess(
        "LAI", day,
        generate_product(LAI_SPEC, day, grid=lab.grid, version=1,
                         seed=lab.seed, cloud_fraction=0.0),
    )
    after = engine.query(query).rows[0]["mean"].value
    assert before != after
    assert lab.archive.get("LAI", day).attributes["product_version"] \
        == "RT1"
    # superseded version still retrievable from the physical archive
    assert lab.archive.get("LAI", day, version=0).attributes[
        "product_version"] == "RT0"


def test_late_dekad_appears_in_sdl_characteristics():
    lab = AppLab()
    lab.publish_product(LAI_SPEC, dekad_dates(date(2018, 6, 1), 2),
                        cloud_fraction=0.0)
    token = lab.auth.register("ops@vito.be")
    info = lab.sdl.characteristics("LAI", token=token)
    assert info["time_steps"] == 2
    new_day = date(2018, 6, 21)
    lab.archive.publish(
        "LAI", new_day, 0,
        generate_product(LAI_SPEC, new_day, grid=lab.grid,
                         cloud_fraction=0.0),
    )
    # inside the SDL's cache TTL the old axis is (correctly) served...
    assert lab.sdl.characteristics("LAI", token=token)["time_steps"] == 2
    # ...after expiry the NcML aggregation's new dekad appears
    lab.sdl.cache.clear()
    info = lab.sdl.characteristics("LAI", token=token)
    assert info["time_steps"] == 3


def test_revocation_stops_streaming_mid_session():
    lab = AppLab()
    lab.publish_product(LAI_SPEC, [date(2018, 6, 1)], cloud_fraction=0.0)
    token = lab.auth.register("dev@appcamp.eu")
    list(lab.sdl.stream("LAI", token=token))  # works
    lab.auth.revoke(token)
    with pytest.raises(AccessDenied):
        list(lab.sdl.stream("LAI", token=token))


def test_latency_accounting_through_the_stack():
    """Every layer's DAP traffic lands in the server's latency model."""
    latency = LatencyModel(base_s=0.0, per_mb_s=0.0, sleep=False)
    archive = GlobalLandArchive()
    for day in dekad_dates(date(2018, 6, 1), 2):
        archive.publish("LAI", day, 0,
                        generate_product(LAI_SPEC, day, cloud_fraction=0.0))
    mep = MepDeployment(archive, host="vito.test", latency=latency)
    mep.mount_product("LAI")
    from repro.opendap import ServerRegistry

    registry = ServerRegistry()
    registry.register(mep.server)
    sdl = StreamingDataLibrary(registry)
    sdl.register_dataset("LAI", "dap://vito.test/Copernicus/LAI")
    before = latency.request_count
    list(sdl.stream("LAI"))
    assert latency.request_count > before
    assert latency.bytes_served > 0


def test_sdl_analytics_to_sextant_render():
    """Stream → seasonal average plane → raster layer → SVG."""
    from repro.opendap import DapDataset, Variable
    from repro.sextant import ThematicMap

    lab = AppLab()
    lab.publish_product(LAI_SPEC, dekad_dates(date(2018, 6, 1), 3),
                        cloud_fraction=0.0)
    analytics = RamaniCloudAnalytics(lab.sdl, token=None)
    lab.sdl.auth = None  # open access for this pipeline
    plane = analytics.seasonal_average("LAI", "LAI", months=(6,))
    assert plane["LAI"].dims == ("lat", "lon")
    # lift the 2-D plane into a renderable (time, lat, lon) raster
    raster = DapDataset("summer", dict(plane.attributes))
    raster.add_variable("time", ["time"], np.array([0]),
                        {"units": "days since 2018-06-01"})
    raster.variables["lat"] = plane["lat"].copy()
    raster.variables["lon"] = plane["lon"].copy()
    raster.add_variable(
        "LAI", ["time", "lat", "lon"],
        plane["LAI"].data[np.newaxis, :, :],
        dict(plane["LAI"].attributes),
    )
    tm = ThematicMap("summer LAI")
    tm.add_raster_layer("summer mean", raster, "LAI", time_index=0)
    svg = tm.to_svg(width=300, height=200)
    assert svg.count("<path") >= 24 * 12


def test_drs_validation_after_cms_fix_on_live_server():
    """CMS-published metadata makes a failing server pass DRS."""
    from repro.catalog import MetadataCms, validate_server
    from repro.opendap import DapDataset, DapServer

    ds = DapDataset("SWI", {"title": "Soil Water Index"})
    ds.add_variable("time", ["time"], np.array([0]),
                    {"units": "days since 2018-01-01"})
    server = DapServer("csp.test")
    server.mount("csp/SWI", ds)
    assert not validate_server(server).ok

    cms = MetadataCms()
    cms.harvest(server)
    cms.mutate("csp/SWI", institution="CSP", source="synthetic",
               product_version="V1.0.0",
               time_coverage_start="2018-01-01")
    fixed = cms.apply_to("csp/SWI", ds)
    server.mount("csp/SWI", fixed)
    assert validate_server(server).ok
