"""Integration: the §3.1 metadata web — crawler + reasoner + crosswalks.

Builds a small 'web' of metadata documents in three conventions and
syntaxes, crawls it, reasons over the crosswalk ontology, and answers
one harmonized SPARQL query — the paper's mediation approach end to
end.
"""

from repro.catalog import metadata_to_rdf
from repro.rdf import (
    DCTERMS,
    DocumentStore,
    Graph,
    IRI,
    Literal,
    RdfCrawler,
    SDO,
)

EX = "http://example.org/"


def build_web() -> DocumentStore:
    store = DocumentStore()
    # an ACDD-derived record, published as Turtle
    acdd = metadata_to_rdf(
        EX + "lai",
        {"title": "Copernicus Global Land LAI", "institution": "VITO"},
        "acdd",
    )
    acdd.add(IRI(EX + "lai"),
             IRI("http://www.w3.org/2000/01/rdf-schema#seeAlso"),
             IRI(EX + "doc-iso"))
    store.put(EX + "doc-acdd", acdd.serialize("turtle"), "turtle")
    # an ISO-derived record, published as RDF/XML
    iso = metadata_to_rdf(
        EX + "corine",
        {"MD_title": "CORINE Land Cover 2012",
         "MD_organisationName": "EEA"},
        "iso",
    )
    store.put(EX + "doc-iso", iso.serialize("xml"), "rdfxml")
    # a legacy record in a home-grown vocabulary, as N-Triples
    legacy = Graph()
    legacy.add(IRI(EX + "ua"), IRI(EX + "legacyTitle"),
               Literal("Urban Atlas 2012"))
    store.put(EX + "doc-legacy", legacy.serialize("nt"), "ntriples")
    return store


CROSSWALK = f"""
PREFIX ex: <{EX}>
PREFIX dcterms: <http://purl.org/dc/terms/>
PREFIX sdo: <https://schema.org/>
CONSTRUCT {{
  ?d dcterms:title ?t .
  ?d a sdo:Dataset .
}} WHERE {{ ?d ex:legacyTitle ?t }}
"""

HARMONIZED = """
PREFIX dcterms: <http://purl.org/dc/terms/>
PREFIX sdo: <https://schema.org/>
SELECT ?title WHERE {
  ?d a sdo:Dataset ; dcterms:title ?title .
} ORDER BY ?title
"""


def test_crawl_reason_crosswalk_query():
    crawler = RdfCrawler(build_web())
    graph, report = crawler.crawl(
        [EX + "doc-acdd", EX + "doc-legacy"],
        reason=True,
        crosswalk_queries=[CROSSWALK],
    )
    # the ISO doc was discovered through rdfs:seeAlso
    assert EX + "doc-iso" in report.fetched
    assert report.constructed_triples == 2
    titles = [r["title"].lexical for r in graph.query(HARMONIZED)]
    assert titles == [
        "CORINE Land Cover 2012",
        "Copernicus Global Land LAI",
        "Urban Atlas 2012",
    ]


def test_partial_web_still_answers():
    store = build_web()
    store.put(EX + "doc-iso", "<<<broken turtle", "turtle")
    crawler = RdfCrawler(store)
    graph, report = crawler.crawl(
        [EX + "doc-acdd", EX + "doc-legacy"],
        crosswalk_queries=[CROSSWALK],
    )
    assert EX + "doc-iso" in report.failed
    titles = [r["title"].lexical for r in graph.query(HARMONIZED)]
    assert "Copernicus Global Land LAI" in titles
    assert "Urban Atlas 2012" in titles
