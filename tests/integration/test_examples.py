"""Every shipped example must run end-to-end and produce its artifacts."""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"
OUT = pathlib.Path(__file__).resolve().parents[2] / "out"


def run_example(name, capsys):
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = run_example("quickstart.py", capsys)
    assert "published 3 dekads of LAI" in out
    assert "virtual (Ontop-spatial over OPeNDAP)" in out
    assert "dataset search says: yes" in out


def test_greenness_of_paris(capsys):
    out = run_example("greenness_of_paris.py", capsys)
    assert "[Listing 1] LAI in Bois de Boulogne: 12 readings" in out
    assert "[Listing 3] virtual endpoint returned 864" in out
    assert "green-urban" in out
    for artifact in ("greenness_paris.svg", "greenness_paris.html",
                     "greenness_paris.geojson"):
        assert (OUT / artifact).exists(), artifact
    svg = (OUT / "greenness_paris.svg").read_text()
    assert svg.startswith("<svg")
    assert 'id="layer-LAI-observations"' in svg


def test_dataset_search(capsys):
    out = run_example("dataset_search.py", capsys)
    assert "A: yes -> CORINE Land Cover 2012" in out
    assert "A: no matching dataset" in out


def test_air_flight_app(capsys):
    out = run_example("air_flight_app.py", capsys)
    assert "NDVI=" in out
    assert "in view" in out
    assert "uptake monitoring" in out


def test_urbansat(capsys):
    out = run_example("urbansat.py", capsys)
    assert "construction site intersects" in out
    assert "assessment:" in out


def test_csp_onboarding(capsys):
    out = run_example("csp_onboarding.py", capsys)
    assert "DRS validation: PASS" in out
    assert "compliant: True" in out


def test_deploy_applab(capsys):
    out = run_example("deploy_applab.py", capsys)
    assert "6 appliances running" in out
    assert "back to 5 running pods" in out


def test_wildfire_monitoring(capsys):
    out = run_example("wildfire_monitoring.py", capsys)
    assert "burnt cells exposed as virtual RDF" in out
    assert "green/forest burning" in out
    assert (OUT / "wildfires_paris.svg").exists()
