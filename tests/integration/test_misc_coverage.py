"""Assorted cross-module coverage: grids, analytics windows, engines."""

from datetime import date

import numpy as np
import pytest

from repro.core import AppLab
from repro.vito import EUROPE_GRID, LAI_SPEC, NDVI_SPEC, dekad_dates, \
    generate_product


def test_europe_grid_products():
    ds = generate_product(LAI_SPEC, date(2018, 7, 1), grid=EUROPE_GRID,
                          cloud_fraction=0.0)
    assert ds["LAI"].shape == (1, 50, 80)
    assert float(ds["lon"].data.min()) == -10.0
    assert float(ds["lat"].data.max()) == 60.0


def test_analytics_moving_average_with_bbox():
    from repro.sdl import RamaniCloudAnalytics

    lab = AppLab()
    lab.publish_product(NDVI_SPEC, dekad_dates(date(2018, 5, 1), 4),
                        cloud_fraction=0.0)
    lab.sdl.auth = None
    analytics = RamaniCloudAnalytics(lab.sdl)
    smoothed = analytics.moving_average(
        "NDVI", "NDVI", window=2, bbox=(2.2, 48.8, 2.4, 48.9)
    )
    assert smoothed["NDVI"].shape[0] == 4
    assert smoothed["NDVI"].shape[1] < 12
    assert not np.isnan(smoothed["NDVI"].data).all()


def test_ontop_without_spatial_indexes_matches_indexed():
    from repro.geographica import generate_workload, load_ontop, \
        queries_by_key

    workload = generate_workload(scale=1)
    indexed, __ = load_ontop(workload, spatial_indexes=True)
    plain, __ = load_ontop(workload, spatial_indexes=False)
    query = queries_by_key()["SS2"].sparql
    assert len(indexed.query(query)) == len(plain.query(query))


def test_two_applabs_are_isolated():
    """Separate AppLab instances share no server or auth state."""
    a = AppLab(host="a.applab")
    b = AppLab(host="b.applab")
    a.publish_product(LAI_SPEC, [date(2018, 6, 1)], cloud_fraction=0.0)
    assert a.products() == ["LAI"]
    assert b.products() == []
    token = a.auth.register("x@y.z")
    with pytest.raises(Exception):
        b.auth.authenticate(token)


def test_find_maps_empty_graph():
    from repro.rdf import Graph
    from repro.sextant import find_maps

    assert find_maps(Graph()) == []


def test_sextant_single_point_map_renders():
    from repro.geometry import Feature, FeatureCollection, Point
    from repro.sextant import ThematicMap

    tm = ThematicMap("dot")
    tm.add_geojson_layer(
        "one", FeatureCollection([Feature(Point(2.35, 48.85), {})])
    )
    svg = tm.to_svg(width=50, height=50)  # degenerate bounds inflate
    assert "<circle" in svg


def test_latency_model_budget_reporting():
    from repro.opendap import LatencyModel

    model = LatencyModel(base_s=0.01, per_mb_s=1.0, sleep=False)
    model.charge(2_000_000)  # 2 MB
    assert model.total_simulated_s == pytest.approx(0.01 + 2.0)
    model.reset()
    assert model.request_count == 0


def test_workload_generator_name_deterministic():
    from repro.data import WorkloadGenerator

    assert WorkloadGenerator(seed=1).name() == \
        WorkloadGenerator(seed=1).name()
