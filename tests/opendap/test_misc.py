"""Catalog XML, corrupted payloads and other robustness checks."""

import xml.etree.ElementTree as ET

import pytest

from repro.opendap import (
    DapError,
    DapServer,
    ServerRegistry,
    decode_dods,
    open_url,
)


def test_catalog_xml(lai_dataset):
    server = DapServer("vito.test")
    server.mount("Copernicus/LAI", lai_dataset)
    server.mount("Copernicus/NDVI", lai_dataset)
    xml_text = server.catalog_xml()
    root = ET.fromstring(xml_text)
    datasets = [
        el.get("urlPath") for el in root.iter()
        if el.tag.endswith("dataset")
    ]
    assert datasets == ["Copernicus/LAI", "Copernicus/NDVI"]


def test_catalog_quotes_names(lai_dataset):
    server = DapServer("vito.test")
    server.mount('weird/"name"', lai_dataset)
    ET.fromstring(server.catalog_xml())  # must stay well-formed


class TestCorruptedPayloads:
    def test_truncated_dods(self, lai_dataset):
        from repro.opendap import encode_dods

        blob = encode_dods(lai_dataset)
        with pytest.raises(Exception):
            decode_dods(blob[: len(blob) // 2])

    def test_garbage_header_length(self):
        with pytest.raises(Exception):
            decode_dods(b"DODS\xff\xff\xff\xff" + b"x" * 10)

    def test_client_surfaces_server_corruption(self, lai_dataset):
        class CorruptingServer(DapServer):
            def request(self, path_and_query):
                body = super().request(path_and_query)
                if path_and_query.endswith(".dods") or ".dods?" in \
                        path_and_query:
                    return body[:-20]  # bit rot in transit
                return body

        server = CorruptingServer("evil.test")
        server.mount("x", lai_dataset)
        registry = ServerRegistry()
        registry.register(server)
        remote = open_url("dap://evil.test/x", registry)
        with pytest.raises(Exception):
            remote.fetch()


def test_safe_layer_ids_in_svg():
    from repro.geometry import Feature, FeatureCollection, Point
    from repro.sextant import ThematicMap

    tm = ThematicMap("test")
    tm.add_geojson_layer(
        'quo"te <layer>/name',
        FeatureCollection([Feature(Point(0, 0), {})]),
    )
    svg = tm.to_svg(width=100, height=100)
    ET.fromstring(svg)  # well-formed XML despite the hostile name
    assert 'id="layer-quo-te-layer-name"' in svg
