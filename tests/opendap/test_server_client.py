"""End-to-end DAP server/client tests, cache behaviour, latency model."""

import numpy as np
import pytest

from repro.opendap import (
    DapCache,
    DapError,
    DapServer,
    LatencyModel,
    ServerRegistry,
    open_url,
)


@pytest.fixture
def registry(lai_dataset):
    reg = ServerRegistry()
    server = DapServer("vito.example", latency=LatencyModel(sleep=False))
    server.mount("Copernicus/LAI", lai_dataset)
    reg.register(server)
    return reg


def test_open_url_metadata_only(registry):
    remote = open_url("dap://vito.example/Copernicus/LAI", registry)
    assert set(remote.variable_names) == {"time", "lat", "lon", "LAI"}
    assert remote.dims_of("LAI") == [("time", 4), ("lat", 5), ("lon", 6)]
    assert remote.global_attributes()["institution"] == "VITO"
    server, __ = registry.resolve("dap://vito.example/Copernicus/LAI")
    # only .dds and .das were requested
    assert [s for __, s in server.access_log] == ["dds", "das"]


def test_fetch_full_and_subset(registry):
    remote = open_url("dap://vito.example/Copernicus/LAI", registry)
    full = remote.fetch()
    assert full["LAI"].shape == (4, 5, 6)
    subset = remote.fetch("LAI[0:0][0:4][0:5]")
    assert subset["LAI"].shape == (1, 5, 6)
    # attributes reattached from DAS
    assert subset["LAI"].attributes["units"] == "m2/m2"


def test_times_decoding(registry):
    remote = open_url("dap://vito.example/Copernicus/LAI", registry)
    times = remote.times()
    assert len(times) == 4
    assert times[1].day == 11


def test_unknown_host_and_path(registry):
    with pytest.raises(DapError):
        open_url("dap://nowhere.example/x", registry)
    with pytest.raises(DapError):
        open_url("dap://vito.example/missing", registry)


def test_bad_service_suffix(registry):
    server, __ = registry.resolve("dap://vito.example/Copernicus/LAI")
    with pytest.raises(DapError):
        server.request("Copernicus/LAI.jpeg")


def test_ascii_service(registry):
    server, __ = registry.resolve("dap://vito.example/Copernicus/LAI")
    body = server.request("Copernicus/LAI.ascii?time").decode()
    assert "time" in body


def test_factory_mount(lai_dataset):
    calls = []

    def factory():
        calls.append(1)
        return lai_dataset

    server = DapServer("x.example")
    server.mount("dyn", factory)
    server.request("dyn.dds")
    server.request("dyn.dds")
    assert len(calls) == 2  # factory re-evaluated per request


def test_latency_accounting(registry):
    server, __ = registry.resolve("dap://vito.example/Copernicus/LAI")
    server.latency = LatencyModel(base_s=0.01, per_mb_s=1.0, sleep=False)
    remote = open_url("dap://vito.example/Copernicus/LAI", registry)
    remote.fetch()
    assert server.latency.request_count == 3  # dds, das, dods
    assert server.latency.bytes_served > 0
    assert server.latency.total_simulated_s > 0.03


def test_cache_hits_for_identical_constraint(registry):
    cache = DapCache(ttl_s=600)
    remote = open_url("dap://vito.example/Copernicus/LAI", registry,
                      cache=cache)
    server, __ = registry.resolve("dap://vito.example/Copernicus/LAI")
    before = server.latency.request_count
    remote.fetch("LAI[0:1][0:4][0:5]")
    remote.fetch("LAI[0:1][0:4][0:5]")
    after = server.latency.request_count
    assert after - before == 1  # second fetch served from cache
    assert cache.hits == 1 and cache.misses == 1


def test_cache_ttl_expiry(registry):
    now = [0.0]
    cache = DapCache(ttl_s=10, clock=lambda: now[0])
    remote = open_url("dap://vito.example/Copernicus/LAI", registry,
                      cache=cache)
    remote.fetch("time")
    now[0] = 5.0
    remote.fetch("time")
    assert cache.hits == 1
    now[0] = 20.0
    remote.fetch("time")
    assert cache.misses == 2  # expired entry refetched


def test_cache_key_is_canonical(registry):
    cache = DapCache()
    remote = open_url("dap://vito.example/Copernicus/LAI", registry,
                      cache=cache)
    remote.fetch("LAI&time>=10&lat>48.85")
    remote.fetch("LAI&lat>48.85&time>=10")  # same meaning, reordered
    assert cache.hits == 1


def test_paths_listing(registry, lai_dataset):
    server, __ = registry.resolve("dap://vito.example/Copernicus/LAI")
    server.mount("Copernicus/NDVI", lai_dataset)
    server.mount("ProbaV/S5-NDVI", lai_dataset)
    assert server.paths("Copernicus/*") == ["Copernicus/LAI",
                                            "Copernicus/NDVI"]
    assert len(server.paths()) == 3
