"""DAS/DDS/DODS/constraint protocol tests."""

import numpy as np
import pytest

from repro.opendap import (
    DapError,
    apply_constraint,
    decode_dods,
    encode_dods,
    parse_constraint,
    parse_das,
    parse_dds,
    render_das,
    render_dds,
)


class TestDDS:
    def test_render(self, lai_dataset):
        text = render_dds(lai_dataset)
        assert "Dataset {" in text
        assert "Float32 LAI[time = 4][lat = 5][lon = 6];" in text
        assert text.strip().endswith("} LAI;")

    def test_roundtrip(self, lai_dataset):
        name, variables = parse_dds(render_dds(lai_dataset))
        assert name == "LAI"
        lai = [v for v in variables if v["name"] == "LAI"][0]
        assert lai["dims"] == [("time", 4), ("lat", 5), ("lon", 6)]
        assert lai["dtype"] == np.dtype("float32")

    def test_parse_rejects_junk(self):
        with pytest.raises(DapError):
            parse_dds("this is not a DDS")


class TestDAS:
    def test_render_and_parse(self, lai_dataset):
        containers = parse_das(render_das(lai_dataset))
        assert containers["NC_GLOBAL"]["institution"] == "VITO"
        assert containers["LAI"]["units"] == "m2/m2"
        assert containers["LAI"]["_FillValue"] == -1.0

    def test_quotes_escaped(self, lai_dataset):
        lai_dataset.attributes["note"] = 'says "hi"'
        containers = parse_das(render_das(lai_dataset))
        assert containers["NC_GLOBAL"]["note"] == 'says "hi"'

    def test_parse_rejects_junk(self):
        with pytest.raises(DapError):
            parse_das("nope")


class TestDODS:
    def test_roundtrip(self, lai_dataset):
        blob = encode_dods(lai_dataset)
        back = decode_dods(blob)
        assert back.name == "LAI"
        assert back["LAI"].shape == (4, 5, 6)
        np.testing.assert_array_equal(
            back["LAI"].data, lai_dataset["LAI"].data
        )
        assert back["time"].attributes["units"] == "days since 2018-01-01"

    def test_bad_magic(self):
        with pytest.raises(DapError):
            decode_dods(b"HTTP not dods")

    def test_string_variable_roundtrip(self):
        from repro.opendap import DapDataset

        ds = DapDataset("s")
        ds.add_variable(
            "names", ["i"], np.array(["a", "b"], dtype=object), {}
        )
        back = decode_dods(encode_dods(ds))
        assert list(back["names"].data) == ["a", "b"]


class TestConstraints:
    def test_parse_projection_hyperslabs(self):
        ce = parse_constraint("LAI[0:1][2:4][0:2:5],time")
        assert len(ce.projections) == 2
        slabs = ce.projections[0].slabs
        assert (slabs[0].start, slabs[0].stop) == (0, 1)
        assert slabs[2].stride == 2

    def test_parse_selections(self):
        ce = parse_constraint("LAI&time>=10&lat<48.9")
        assert len(ce.selections) == 2
        assert ce.selections[0].op == ">="

    def test_parse_selection_only(self):
        ce = parse_constraint("time>=10")
        assert not ce.projections
        assert len(ce.selections) == 1

    def test_parse_empty(self):
        assert parse_constraint("").is_empty

    def test_parse_bad_clause(self):
        with pytest.raises(DapError):
            parse_constraint("LAI[[0]")
        with pytest.raises(DapError):
            parse_constraint("LAI&time~~3")

    def test_canonical_is_order_insensitive(self):
        a = parse_constraint("b,a&t>1&s<2").canonical()
        b = parse_constraint("a,b&s<2&t>1").canonical()
        assert a == b

    def test_apply_projection(self, lai_dataset):
        ce = parse_constraint("LAI[0:1][0:4][0:5]")
        subset = apply_constraint(lai_dataset, ce)
        assert subset["LAI"].shape == (2, 5, 6)
        # coordinate variables dragged along and sliced
        assert subset["time"].shape == (2,)
        assert "lat" in subset

    def test_apply_selection(self, lai_dataset):
        ce = parse_constraint("LAI&time>=10&time<=20")
        subset = apply_constraint(lai_dataset, ce)
        assert subset["LAI"].shape == (2, 5, 6)
        assert list(subset["time"].data) == [10, 20]

    def test_apply_selection_on_latitude(self, lai_dataset):
        ce = parse_constraint("LAI&lat>48.85")
        subset = apply_constraint(lai_dataset, ce)
        assert subset["LAI"].shape[1] < 5
        assert (subset["lat"].data > 48.85).all()

    def test_selection_on_grid_variable_rejected(self, lai_dataset):
        with pytest.raises(DapError):
            apply_constraint(lai_dataset, parse_constraint("LAI&LAI>3"))

    def test_unknown_projection_rejected(self, lai_dataset):
        with pytest.raises(DapError):
            apply_constraint(lai_dataset, parse_constraint("NDVI"))

    def test_hyperslab_arity_mismatch(self, lai_dataset):
        with pytest.raises(DapError):
            apply_constraint(lai_dataset, parse_constraint("LAI[0:1]"))

    def test_inclusive_stop(self, lai_dataset):
        ce = parse_constraint("time[1:2]")
        subset = apply_constraint(lai_dataset, ce)
        assert list(subset["time"].data) == [10, 20]
