"""Dataset model and CF helper tests."""

from datetime import datetime, timezone

import numpy as np
import pytest

from repro.opendap import (
    DapDataset,
    DapError,
    apply_fill_and_scale,
    decode_time,
    encode_time,
    parse_time_units,
)


def test_dimensions_derived(lai_dataset):
    assert lai_dataset.dimensions == {"time": 4, "lat": 5, "lon": 6}


def test_dimension_conflict_rejected(lai_dataset):
    with pytest.raises(DapError):
        lai_dataset.add_variable("bad", ["lat"], np.zeros(7))


def test_ndim_mismatch_rejected():
    ds = DapDataset("x")
    with pytest.raises(DapError):
        ds.add_variable("v", ["a", "b"], np.zeros(3))


def test_coordinate_lookup(lai_dataset):
    assert lai_dataset.coordinate("lat").name == "lat"
    assert lai_dataset.coordinate("nope") is None


def test_getitem_unknown_raises(lai_dataset):
    with pytest.raises(DapError):
        lai_dataset["missing"]


def test_isel_slicing(lai_dataset):
    subset = lai_dataset.isel(time=slice(0, 2), lat=slice(1, 3))
    assert subset["LAI"].shape == (2, 2, 6)
    assert subset["time"].shape == (2,)
    assert subset["lon"].shape == (6,)


def test_isel_integer_drops_dim(lai_dataset):
    subset = lai_dataset.isel(time=0)
    assert subset["LAI"].dims == ("lat", "lon")


def test_copy_is_independent(lai_dataset):
    cp = lai_dataset.copy()
    cp["LAI"].data[0, 0, 0] = 99.0
    assert lai_dataset["LAI"].data[0, 0, 0] != 99.0


def test_nbytes_positive(lai_dataset):
    assert lai_dataset.nbytes > 400


class TestTime:
    def test_parse_units_days(self):
        step, epoch = parse_time_units("days since 2018-01-01")
        assert step == 86400.0
        assert epoch == datetime(2018, 1, 1, tzinfo=timezone.utc)

    def test_parse_units_hours_with_clock(self):
        step, epoch = parse_time_units("hours since 2000-06-15 12:00")
        assert step == 3600.0
        assert epoch.hour == 12

    def test_parse_units_invalid(self):
        with pytest.raises(DapError):
            parse_time_units("fortnights since forever")

    def test_decode_time(self, lai_dataset):
        times = decode_time(lai_dataset["time"])
        assert times[0] == datetime(2018, 1, 1, tzinfo=timezone.utc)
        assert times[3] == datetime(2018, 1, 31, tzinfo=timezone.utc)

    def test_decode_requires_units(self, lai_dataset):
        lai_dataset["time"].attributes.pop("units")
        with pytest.raises(DapError):
            decode_time(lai_dataset["time"])

    def test_encode_roundtrip(self):
        times = [
            datetime(2018, 1, 1, tzinfo=timezone.utc),
            datetime(2018, 1, 11, tzinfo=timezone.utc),
        ]
        values = encode_time(times, "days since 2018-01-01")
        assert list(values) == [0.0, 10.0]


def test_fill_and_scale():
    ds = DapDataset("x")
    ds.add_variable(
        "v", ["i"], np.array([0, 50, 255]),
        {"_FillValue": 255, "scale_factor": 0.1, "add_offset": 1.0},
    )
    decoded = apply_fill_and_scale(ds["v"])
    assert decoded[0] == pytest.approx(1.0)
    assert decoded[1] == pytest.approx(6.0)
    assert np.isnan(decoded[2])
