"""NcML aggregation/override and NetcdfSubset/WCS tests."""

from datetime import datetime, timezone

import numpy as np
import pytest

from repro.opendap import (
    DapDataset,
    DapError,
    WebCoverageService,
    aggregate_join_existing,
    apply_ncml_overrides,
    index_window_for_bbox,
    parse_ncml,
    render_ncml,
    subset_by_coords,
)


class TestNcml:
    def test_render_parse_roundtrip(self, lai_dataset):
        text = render_ncml(lai_dataset, location="dap://vito/LAI")
        parsed = parse_ncml(text)
        assert parsed["location"] == "dap://vito/LAI"
        assert parsed["dimensions"] == {"time": 4, "lat": 5, "lon": 6}
        assert parsed["attributes"]["institution"] == "VITO"
        assert parsed["variables"]["LAI"]["shape"] == ["time", "lat", "lon"]
        assert parsed["variables"]["LAI"]["attributes"]["units"] == "m2/m2"

    def test_parse_rejects_junk(self):
        with pytest.raises(DapError):
            parse_ncml("<html></html>")

    def test_overrides_blend(self, lai_dataset):
        ncml = """<?xml version="1.0"?>
        <netcdf xmlns="http://www.unidata.ucar.edu/namespaces/netcdf/ncml-2.2">
          <attribute name="summary" type="String" value="Added by CMS"/>
          <attribute name="institution" type="String" value="VITO NV"/>
          <variable name="LAI" shape="time lat lon" type="float32">
            <attribute name="standard_name" type="String"
                       value="leaf_area_index"/>
          </variable>
        </netcdf>
        """
        fixed = apply_ncml_overrides(lai_dataset, ncml)
        assert fixed.attributes["summary"] == "Added by CMS"
        assert fixed.attributes["institution"] == "VITO NV"  # override wins
        assert fixed["LAI"].attributes["standard_name"] == "leaf_area_index"
        # original untouched
        assert "summary" not in lai_dataset.attributes


class TestAggregation:
    def _per_date(self, lai_dataset, t_index):
        part = lai_dataset.isel(time=slice(t_index, t_index + 1))
        return part

    def test_join_existing(self, lai_dataset):
        parts = [self._per_date(lai_dataset, i) for i in range(4)]
        joined = aggregate_join_existing(parts, dim="time")
        assert joined["LAI"].shape == (4, 5, 6)
        np.testing.assert_array_equal(
            joined["time"].data, lai_dataset["time"].data
        )

    def test_new_date_extends(self, lai_dataset):
        parts = [self._per_date(lai_dataset, i) for i in range(3)]
        joined3 = aggregate_join_existing(parts, dim="time")
        assert joined3["LAI"].shape[0] == 3
        parts.append(self._per_date(lai_dataset, 3))
        joined4 = aggregate_join_existing(parts, dim="time")
        assert joined4["LAI"].shape[0] == 4

    def test_empty_rejected(self):
        with pytest.raises(DapError):
            aggregate_join_existing([])

    def test_missing_variable_rejected(self, lai_dataset):
        broken = DapDataset("broken")
        broken.add_variable("time", ["time"], np.array([40]), {})
        with pytest.raises(DapError):
            aggregate_join_existing([lai_dataset, broken])


class TestNetcdfSubset:
    def test_bbox(self, lai_dataset):
        subset = subset_by_coords(lai_dataset, bbox=(2.25, 48.83, 2.45, 48.90))
        assert subset["LAI"].shape[1] < 5
        assert subset["LAI"].shape[2] < 6
        assert (subset["lon"].data >= 2.25).all()

    def test_time_range(self, lai_dataset):
        subset = subset_by_coords(
            lai_dataset,
            time_range=(
                datetime(2018, 1, 5, tzinfo=timezone.utc),
                datetime(2018, 1, 25, tzinfo=timezone.utc),
            ),
        )
        assert list(subset["time"].data) == [10, 20]

    def test_index_window(self, lai_dataset):
        windows = index_window_for_bbox(lai_dataset, (2.25, 48.83, 2.45, 48.90))
        lon_window = windows["lon"]
        assert lon_window[0] <= lon_window[1]

    def test_index_window_empty_raises(self, lai_dataset):
        with pytest.raises(DapError):
            index_window_for_bbox(lai_dataset, (10, 10, 11, 11))

    def test_index_windows_stable_under_jitter(self, lai_dataset):
        """Slightly different bboxes map to the same index window."""
        w1 = index_window_for_bbox(lai_dataset, (2.25, 48.83, 2.45, 48.90))
        w2 = index_window_for_bbox(
            lai_dataset, (2.2501, 48.8301, 2.4499, 48.8999)
        )
        assert w1 == w2


class TestWCS:
    def test_coverage_and_cache(self, lai_dataset):
        wcs = WebCoverageService(lai_dataset)
        a = wcs.get_coverage("LAI", (2.25, 48.83, 2.45, 48.90))
        assert "LAI" in a
        wcs.get_coverage("LAI", (2.25, 48.83, 2.45, 48.90))
        assert wcs.hits == 1
        # jittered bbox misses even though the cells are identical
        wcs.get_coverage("LAI", (2.2501, 48.8301, 2.4499, 48.8999))
        assert wcs.misses == 2
        assert wcs.hit_rate == pytest.approx(1 / 3)
