"""Property-based tests for the OPeNDAP layer."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.opendap import (
    DapDataset,
    apply_constraint,
    decode_dods,
    encode_dods,
    parse_constraint,
)
from repro.opendap.constraints import Hyperslab


@st.composite
def datasets(draw):
    nt = draw(st.integers(min_value=1, max_value=4))
    ny = draw(st.integers(min_value=2, max_value=6))
    nx = draw(st.integers(min_value=2, max_value=6))
    data = draw(
        arrays(
            dtype=np.float32,
            shape=(nt, ny, nx),
            elements=st.floats(
                min_value=-1e3, max_value=1e3, width=32,
                allow_nan=False,
            ),
        )
    )
    ds = DapDataset("V")
    ds.add_variable("time", ["time"],
                    np.arange(nt, dtype=np.int32) * 10,
                    {"units": "days since 2018-01-01"})
    ds.add_variable("lat", ["lat"], np.linspace(40, 50, ny),
                    {"units": "degrees_north"})
    ds.add_variable("lon", ["lon"], np.linspace(0, 10, nx),
                    {"units": "degrees_east"})
    ds.add_variable("V", ["time", "lat", "lon"], data, {"units": "1"})
    return ds


@given(datasets())
@settings(max_examples=40)
def test_dods_roundtrip(ds):
    back = decode_dods(encode_dods(ds))
    assert back.name == ds.name
    for name, var in ds.variables.items():
        np.testing.assert_array_equal(back[name].data, var.data)
        assert back[name].dims == var.dims
        assert back[name].attributes == var.attributes


@given(datasets(), st.data())
@settings(max_examples=40)
def test_hyperslab_matches_numpy(ds, data):
    nt, ny, nx = ds["V"].shape
    slabs = []
    for size in (nt, ny, nx):
        start = data.draw(st.integers(min_value=0, max_value=size - 1))
        stop = data.draw(st.integers(min_value=start, max_value=size - 1))
        stride = data.draw(st.integers(min_value=1, max_value=3))
        slabs.append(Hyperslab(start, stop, stride))
    text = "V" + "".join(
        f"[{s.start}:{s.stride}:{s.stop}]" for s in slabs
    )
    subset = apply_constraint(ds, parse_constraint(text))
    expected = ds["V"].data[
        slabs[0].to_slice(), slabs[1].to_slice(), slabs[2].to_slice()
    ]
    np.testing.assert_array_equal(subset["V"].data, expected)


@given(datasets(), st.floats(min_value=-5, max_value=45))
@settings(max_examples=40)
def test_selection_preserves_alignment(ds, threshold):
    """After a coordinate selection, data rows align with coordinates."""
    ce = parse_constraint(f"V&lat>{threshold}")
    subset = apply_constraint(ds, ce)
    assert subset["V"].shape[1] == subset["lat"].shape[0]
    assert (subset["lat"].data > threshold).all()


@given(st.text(alphabet="abcdwxyz[]&<>=:,0123456789.", max_size=25))
@settings(max_examples=80)
def test_constraint_parser_never_crashes_unexpectedly(text):
    from repro.opendap import DapError

    try:
        ce = parse_constraint(text)
    except DapError:
        return
    # canonical form is stable (idempotent)
    assert parse_constraint(ce.canonical()).canonical() == ce.canonical()


@given(datasets())
@settings(max_examples=30)
def test_empty_constraint_is_identity(ds):
    subset = apply_constraint(ds, parse_constraint(""))
    np.testing.assert_array_equal(subset["V"].data, ds["V"].data)
