"""DRS validator tests (experiment E13, part 1)."""

from datetime import date

import pytest

from repro.catalog import (
    ValidationReport,
    validate_attributes,
    validate_filename,
    validate_server,
)
from repro.catalog.drs import main
from repro.vito import GlobalLandArchive, LAI_SPEC, MepDeployment, \
    generate_product


GOOD = "c_gls_LAI_201806010000_GLOBE_PROBAV_V1.0.1.nc"


class TestFilenames:
    def test_valid(self):
        report = validate_filename(GOOD)
        assert report.ok
        assert report.checked == 1

    def test_valid_with_path(self):
        assert validate_filename("archive/2018/" + GOOD).ok

    @pytest.mark.parametrize(
        "bad",
        [
            "LAI_201806010000_GLOBE_PROBAV_V1.0.1.nc",   # missing c_gls
            "c_gls_LAI_20180601_GLOBE_PROBAV_V1.0.1.nc",  # short stamp
            "c_gls_LAI_201806010000_GLOBE_PROBAV_V1.nc",  # bad version
            "c_gls_LAI_201806010000_GLOBE_PROBAV_V1.0.1.txt",
            "c_gls_lai_201806010000_GLOBE_PROBAV_V1.0.1.nc",  # lower case
        ],
    )
    def test_invalid(self, bad):
        assert not validate_filename(bad).ok

    def test_invalid_month(self):
        report = validate_filename(
            "c_gls_LAI_201813010000_GLOBE_PROBAV_V1.0.1.nc"
        )
        assert not report.ok
        assert "month" in report.errors[0].message


class TestAttributes:
    def test_complete(self):
        attrs = {
            "title": "LAI", "product_version": "RT0",
            "time_coverage_start": "2018-06-01",
            "institution": "VITO", "source": "CGLS",
        }
        assert validate_attributes("LAI", attrs).ok

    def test_missing_required(self):
        report = validate_attributes("LAI", {"title": "LAI"})
        assert not report.ok
        missing = {i.message for i in report.errors}
        assert any("institution" in m for m in missing)

    def test_bad_date(self):
        attrs = {
            "title": "t", "product_version": "RT0",
            "time_coverage_start": "June 2018",
            "institution": "V", "source": "s",
        }
        report = validate_attributes("LAI", attrs)
        assert not report.ok

    def test_version_warning_not_error(self):
        attrs = {
            "title": "t", "product_version": "latest",
            "time_coverage_start": "2018-06-01",
            "institution": "V", "source": "s",
        }
        report = validate_attributes("LAI", attrs)
        assert report.ok  # warning only
        assert len(report.issues) == 1
        assert report.issues[0].severity == "warning"


def test_validate_live_server():
    archive = GlobalLandArchive()
    archive.publish("LAI", date(2018, 6, 1), 0,
                    generate_product(LAI_SPEC, date(2018, 6, 1)))
    mep = MepDeployment(archive, host="vito.test")
    mep.mount_product("LAI")
    report = validate_server(mep.server)
    assert report.checked == 1
    assert report.ok  # synthetic products carry the DRS core set


def test_cli(capsys):
    code = main([GOOD])
    out = capsys.readouterr().out
    assert code == 0
    assert "PASS" in out
    code = main(["bogus.nc"])
    out = capsys.readouterr().out
    assert code == 1
    assert "FAIL" in out


def test_cli_no_args(capsys):
    assert main([]) == 2
