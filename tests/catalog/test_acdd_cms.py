"""ACDD checker, recommender, CMS and crosswalk tests (E13)."""

from datetime import date

import pytest

from repro.catalog import (
    CmsError,
    MetadataCms,
    TranslationError,
    augmentation_ncml,
    check_acdd,
    harmonized_listing,
    metadata_to_rdf,
    recommend_attributes,
    to_canonical,
    translate,
)
from repro.opendap import apply_ncml_overrides
from repro.vito import GlobalLandArchive, LAI_SPEC, MepDeployment, \
    generate_product


@pytest.fixture
def lai():
    return generate_product(LAI_SPEC, date(2018, 6, 1))


class TestAcdd:
    def test_check_reports_missing(self, lai):
        report = check_acdd(lai)
        assert "summary" in report.missing_required
        assert "license" in report.missing_recommended
        assert 0 < report.score < 1
        assert not report.compliant

    def test_recommendations_derive_from_data(self, lai):
        rec = recommend_attributes(lai)
        assert rec["geospatial_lat_min"] == pytest.approx(48.75)
        assert rec["geospatial_lon_max"] == pytest.approx(2.55)
        assert rec["time_coverage_end"].startswith("2018-06-01")
        assert "Leaf Area Index" in rec["keywords"]
        assert "summary" in rec

    def test_augmentation_improves_score(self, lai):
        before = check_acdd(lai).score
        ncml = augmentation_ncml(lai, extra={"license": "CC-BY-4.0",
                                             "keywords": "LAI"})
        fixed = apply_ncml_overrides(lai, ncml)
        after = check_acdd(fixed).score
        assert after > before
        assert check_acdd(fixed).compliant

    def test_compliant_dataset_clean(self, lai):
        ncml = augmentation_ncml(lai)
        fixed = apply_ncml_overrides(lai, ncml)
        rec = recommend_attributes(fixed)
        assert "geospatial_lat_min" not in rec  # already present


class TestCms:
    def test_upsert_and_mutate_versions(self):
        cms = MetadataCms()
        cms.upsert("LAI", {"title": "LAI"})
        record = cms.mutate("LAI", summary="Leaf area index dekads")
        assert record.version == 2
        assert record.attributes["title"] == "LAI"
        record = cms.mutate("LAI", title="LAI v2")
        assert record.version == 3

    def test_rollback(self):
        cms = MetadataCms()
        cms.upsert("LAI", {"title": "first"})
        cms.mutate("LAI", title="second")
        record = cms.rollback("LAI", 1)
        assert record.attributes["title"] == "first"
        assert record.version == 3  # rollback is itself a new version

    def test_rollback_unknown_version(self):
        cms = MetadataCms()
        cms.upsert("LAI", {})
        with pytest.raises(CmsError):
            cms.rollback("LAI", 42)

    def test_unknown_record(self):
        with pytest.raises(CmsError):
            MetadataCms().record("NOPE")

    def test_harvest_from_server(self, lai):
        archive = GlobalLandArchive()
        archive.publish("LAI", date(2018, 6, 1), 0, lai)
        mep = MepDeployment(archive, host="vito.test")
        mep.mount_product("LAI")
        cms = MetadataCms()
        harvested = cms.harvest(mep.server)
        assert harvested == ["Copernicus/LAI"]
        assert cms.record("Copernicus/LAI").attributes["institution"] \
            .startswith("VITO")

    def test_harvest_is_recurrent(self, lai):
        """Re-harvesting picks up upstream changes, bumping versions."""
        archive = GlobalLandArchive()
        archive.publish("LAI", date(2018, 6, 1), 0, lai)
        mep = MepDeployment(archive, host="vito.test")
        mep.mount_product("LAI")
        cms = MetadataCms()
        cms.harvest(mep.server)
        v1 = cms.record("Copernicus/LAI").version
        lai.attributes["title"] = "Leaf Area Index (reprocessed)"
        cms.harvest(mep.server)
        assert cms.record("Copernicus/LAI").version > v1

    def test_publish_and_apply(self, lai):
        cms = MetadataCms()
        cms.upsert("LAI", {"summary": "CMS-provided summary",
                           "license": "CC-BY-4.0"})
        fixed = cms.apply_to("LAI", lai)
        assert fixed.attributes["summary"] == "CMS-provided summary"
        assert lai.attributes.get("summary") is None  # original untouched


class TestTranslate:
    ACDD_ATTRS = {
        "title": "LAI", "summary": "leaf area", "institution": "VITO",
        "time_coverage_start": "2018-06-01", "product_version": "RT0",
    }

    def test_acdd_to_iso(self):
        iso = translate(self.ACDD_ATTRS, "acdd", "iso")
        assert iso["MD_title"] == "LAI"
        assert iso["MD_abstract"] == "leaf area"
        assert iso["EX_beginPosition"] == "2018-06-01"

    def test_roundtrip(self):
        iso = translate(self.ACDD_ATTRS, "acdd", "iso")
        back = translate(iso, "iso", "acdd")
        assert back["title"] == "LAI"
        assert back["institution"] == "VITO"

    def test_unknown_convention(self):
        with pytest.raises(TranslationError):
            translate({}, "acdd", "marc21")

    def test_canonical_extraction(self):
        canonical = to_canonical(self.ACDD_ATTRS, "acdd")
        assert canonical["provider"] == "VITO"
        assert "temporal_end" not in canonical

    def test_sparql_harmonization(self):
        """One query answers over ACDD and ISO records (the mediation)."""
        from repro.rdf import Graph

        g = Graph()
        metadata_to_rdf("http://ds/lai", self.ACDD_ATTRS, "acdd", g)
        metadata_to_rdf(
            "http://ds/corine",
            {"MD_title": "CORINE Land Cover",
             "MD_organisationName": "EEA"},
            "iso", g,
        )
        listing = harmonized_listing(g)
        assert [row["title"] for row in listing] == [
            "CORINE Land Cover", "LAI"
        ]
        assert listing[0]["provider"] == "EEA"
        assert listing[1]["provider"] == "VITO"
