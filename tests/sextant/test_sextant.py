"""Sextant thematic map, format and ontology tests (E9 groundwork)."""

from datetime import date

import pytest

from repro.geometry import (
    Feature,
    FeatureCollection,
    Point,
    Polygon,
    to_wkt_literal,
)
from repro.rdf import GEO, GEO_WKT_LITERAL, Graph, IRI, Literal, RDF
from repro.sextant import (
    SextantError,
    Style,
    ThematicMap,
    find_maps,
    map_descriptor_from_rdf,
    map_to_rdf,
    parse_gml,
    parse_kml,
    render_html,
    value_color,
)

EX = "http://example.org/"


def simple_fc():
    return FeatureCollection(
        [
            Feature(Polygon.box(2.2, 48.8, 2.3, 48.9), {"name": "zone"}),
            Feature(Point(2.25, 48.85), {"name": "poi", "value": 3.5}),
        ]
    )


class TestLayers:
    def test_geojson_layer_and_bounds(self):
        tm = ThematicMap("test")
        tm.add_geojson_layer("base", simple_fc())
        assert tm.bounds() == (2.2, 48.8, 2.3, 48.9)

    def test_empty_map_bounds_raise(self):
        with pytest.raises(SextantError):
            ThematicMap("empty").bounds()

    def test_sparql_layer(self):
        g = Graph()
        g.bind("ex", EX)
        for i in range(3):
            s = IRI(EX + f"f{i}")
            g.add(s, IRI(EX + "lai"), Literal(float(i)))
            geom = IRI(EX + f"g{i}")
            g.add(s, GEO.hasGeometry, geom)
            g.add(geom, GEO.asWKT,
                  Literal(to_wkt_literal(Point(2.2 + i / 100, 48.85)),
                          datatype=GEO_WKT_LITERAL))
        tm = ThematicMap("greenness")
        layer = tm.add_sparql_layer(
            "lai", g,
            """
            PREFIX ex: <http://example.org/>
            PREFIX geo: <http://www.opengis.net/ont/geosparql#>
            SELECT ?wkt ?lai WHERE {
              ?s ex:lai ?lai ; geo:hasGeometry ?g . ?g geo:asWKT ?wkt
            }
            """,
            value_var="lai",
        )
        assert len(layer.features) == 3
        assert layer.value_range() == (0.0, 2.0)

    def test_sparql_layer_no_geoms_raises(self):
        g = Graph()
        tm = ThematicMap("x")
        with pytest.raises(SextantError):
            tm.add_sparql_layer("none", g,
                                "SELECT ?wkt WHERE { ?s ?p ?wkt }")

    def test_raster_layer(self):
        from repro.vito import LAI_SPEC, generate_product

        ds = generate_product(LAI_SPEC, date(2018, 6, 1), cloud_fraction=0)
        tm = ThematicMap("raster")
        layer = tm.add_raster_layer("lai", ds, "LAI", time_index=0)
        assert len(layer.features) == 24 * 12
        assert layer.value_property == "value"

    def test_temporal_layer_timeline(self):
        fc = FeatureCollection(
            [
                Feature(Point(2.2, 48.8), {"t": "2018-06-01", "v": 1.0}),
                Feature(Point(2.2, 48.8), {"t": "2018-06-11", "v": 2.0}),
            ]
        )
        tm = ThematicMap("temporal")
        tm.add_geojson_layer("obs", fc, time_property="t",
                             value_property="v")
        assert tm.timeline() == ["2018-06-01", "2018-06-11"]
        layer = tm.layers[0]
        assert len(layer.features_at("2018-06-01")) == 1
        assert len(layer.features_at(None)) == 2


class TestFormats:
    KML = """<?xml version="1.0"?>
    <kml xmlns="http://www.opengis.net/kml/2.2"><Document>
      <Placemark id="p1"><name>Bois de Boulogne</name>
        <Polygon><outerBoundaryIs><LinearRing>
          <coordinates>2.21,48.85 2.27,48.85 2.27,48.88 2.21,48.88 2.21,48.85</coordinates>
        </LinearRing></outerBoundaryIs></Polygon>
      </Placemark>
      <Placemark><name>poi</name>
        <Point><coordinates>2.25,48.86</coordinates></Point>
      </Placemark>
    </Document></kml>
    """

    GML = """<?xml version="1.0"?>
    <gml:FeatureCollection xmlns:gml="http://www.opengis.net/gml"
                           xmlns:app="http://example.org/app">
      <gml:featureMember>
        <app:Zone gml:id="z1">
          <app:zoneName>industrial</app:zoneName>
          <gml:Polygon><gml:exterior><gml:LinearRing>
            <gml:posList>2.4 48.8 2.5 48.8 2.5 48.9 2.4 48.9 2.4 48.8</gml:posList>
          </gml:LinearRing></gml:exterior></gml:Polygon>
        </app:Zone>
      </gml:featureMember>
    </gml:FeatureCollection>
    """

    def test_parse_kml(self):
        fc = parse_kml(self.KML)
        assert len(fc) == 2
        assert fc.features[0].properties["name"] == "Bois de Boulogne"
        assert fc.features[0].geometry.geom_type == "Polygon"
        assert fc.features[0].id == "p1"
        assert fc.features[1].geometry == Point(2.25, 48.86)

    def test_kml_layer(self):
        tm = ThematicMap("kml")
        layer = tm.add_kml_layer("parks", self.KML)
        assert len(layer.features) == 2

    def test_parse_gml(self):
        fc = parse_gml(self.GML)
        assert len(fc) == 1
        feature = fc.features[0]
        assert feature.properties["zoneName"] == "industrial"
        assert feature.geometry.bounds == (2.4, 48.8, 2.5, 48.9)
        assert feature.id == "z1"

    def test_gml_axis_swap(self):
        swapped = self.GML.replace("2.4 48.8", "48.8 2.4").replace(
            "2.5 48.8", "48.8 2.5").replace("2.5 48.9", "48.9 2.5").replace(
            "2.4 48.9", "48.9 2.4")
        fc = parse_gml(swapped, axis_order="latlon")
        assert fc.features[0].geometry.bounds == (2.4, 48.8, 2.5, 48.9)


class TestRendering:
    def test_svg_contains_layers_and_legend(self):
        tm = ThematicMap("render test")
        tm.add_geojson_layer("zones", simple_fc(),
                             style=Style(fill="#ff0000"))
        svg = tm.to_svg(width=400, height=300)
        assert svg.startswith("<svg")
        assert 'id="layer-zones"' in svg
        assert 'id="legend"' in svg
        assert "<circle" in svg and "<path" in svg

    def test_value_color_ramp(self):
        lo = value_color(0.0, 0.0, 1.0)
        hi = value_color(1.0, 0.0, 1.0)
        assert lo != hi
        assert value_color(5, 5, 5) == value_color(1.0, 0.0, 1.0)

    def test_choropleth_coloring(self):
        fc = FeatureCollection(
            [
                Feature(Point(2.2, 48.8), {"v": 0.0}),
                Feature(Point(2.3, 48.9), {"v": 10.0}),
            ]
        )
        tm = ThematicMap("choropleth")
        tm.add_geojson_layer("obs", fc, value_property="v")
        svg = tm.to_svg()
        assert "#440154" in svg  # low end of ramp
        assert "#fde725" in svg  # high end

    def test_html_with_slider(self):
        fc = FeatureCollection(
            [
                Feature(Point(2.2, 48.8), {"t": "2018-06-01"}),
                Feature(Point(2.21, 48.8), {"t": "2018-06-11"}),
            ]
        )
        tm = ThematicMap("animated", "LAI over time")
        tm.add_geojson_layer("obs", fc, time_property="t")
        html = tm.to_html()
        assert "timeslider" in html
        assert html.count("<svg") == 2

    def test_html_static_no_slider(self):
        tm = ThematicMap("static")
        tm.add_geojson_layer("zones", simple_fc())
        html = render_html(tm)
        assert "timeslider" not in html
        assert html.count("<svg") == 1


class TestMapOntology:
    def build(self):
        tm = ThematicMap("greenness of Paris", "case study")
        tm.add_geojson_layer("parks", simple_fc(),
                             style=Style(fill="#00ff00"),
                             value_property="value")
        tm.add_geojson_layer("zones", simple_fc())
        return tm

    def test_roundtrip_descriptor(self):
        tm = self.build()
        g = map_to_rdf(tm, EX + "maps/greenness")
        descriptor = map_descriptor_from_rdf(g, EX + "maps/greenness")
        assert descriptor["name"] == "greenness of Paris"
        assert [l["name"] for l in descriptor["layers"]] == [
            "parks", "zones"
        ]
        assert descriptor["layers"][0]["style"].fill == "#00ff00"
        assert descriptor["layers"][0]["value_property"] == "value"

    def test_search_maps(self):
        g = Graph()
        map_to_rdf(self.build(), EX + "maps/greenness", g)
        other = ThematicMap("fires in Attica")
        other.add_geojson_layer("hotspots", simple_fc())
        map_to_rdf(other, EX + "maps/fires", g)
        assert find_maps(g, "paris") == [EX + "maps/greenness"]
        assert len(find_maps(g)) == 2

    def test_not_a_map_raises(self):
        with pytest.raises(KeyError):
            map_descriptor_from_rdf(Graph(), EX + "maps/none")

    def test_map_rdf_is_queryable(self):
        g = map_to_rdf(self.build(), EX + "maps/greenness")
        res = g.query(
            "PREFIX map: <http://sextant.di.uoa.gr/ontology/map#> "
            "SELECT ?layer WHERE { ?m a map:Map ; map:hasLayer ?l . "
            "?l map:hasName ?layer } ORDER BY ?layer"
        )
        assert [r["layer"].lexical for r in res] == ["parks", "zones"]
