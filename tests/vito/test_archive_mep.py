"""Archive versioning, virtual directory and MEP deployment tests."""

from datetime import date

import numpy as np
import pytest

from repro.opendap import DapCache, decode_time, open_url, ServerRegistry
from repro.vito import (
    ArchiveError,
    GlobalLandArchive,
    LAI_SPEC,
    MepDeployment,
    dekad_dates,
    generate_product,
)


@pytest.fixture
def archive():
    archive = GlobalLandArchive()
    for day in dekad_dates(date(2018, 6, 1), 3):
        archive.publish("LAI", day, 0,
                        generate_product(LAI_SPEC, day, version=0))
    return archive


def test_publish_and_get(archive):
    ds = archive.get("LAI", date(2018, 6, 1))
    assert ds.name == "LAI"
    assert archive.dates("LAI") == [
        date(2018, 6, 1), date(2018, 6, 11), date(2018, 6, 21)
    ]


def test_missing_lookups_raise(archive):
    with pytest.raises(ArchiveError):
        archive.get("NDVI", date(2018, 6, 1))
    with pytest.raises(ArchiveError):
        archive.get("LAI", date(2020, 1, 1))
    with pytest.raises(ArchiveError):
        archive.get("LAI", date(2018, 6, 1), version=5)


def test_reprocessing_versions(archive):
    day = date(2018, 6, 1)
    version, path = archive.reprocess(
        "LAI", day, generate_product(LAI_SPEC, day, version=1)
    )
    assert version == 1
    assert "RT1" in path
    assert archive.versions("LAI", day) == [0, 1]
    # default get() returns the latest version
    assert archive.get("LAI", day).attributes["product_version"] == "RT1"
    assert archive.get("LAI", day, version=0).attributes[
        "product_version"] == "RT0"


def test_physical_vs_virtual_tree(archive):
    day = date(2018, 6, 1)
    archive.reprocess("LAI", day, generate_product(LAI_SPEC, day, version=1))
    physical = archive.physical_tree("LAI")
    assert len(physical) == 4  # 3 dates + 1 reprocessed duplicate
    virtual = archive.virtual_tree("LAI")
    assert len(virtual) == 3  # one link per date
    assert virtual["LAI/2018-06-01.nc"].endswith("RT1/"
                                                 "c_gls_LAI_201806010000_RT1.nc")


def test_latest_only_latest_versions(archive):
    day = date(2018, 6, 11)
    archive.reprocess("LAI", day, generate_product(LAI_SPEC, day, version=1))
    latest = archive.latest("LAI")
    assert latest[day].attributes["product_version"] == "RT1"
    assert latest[date(2018, 6, 1)].attributes["product_version"] == "RT0"


class TestMep:
    def test_mount_and_fetch(self, archive):
        mep = MepDeployment(archive, host="vito.test")
        registry = ServerRegistry()
        registry.register(mep.server)
        path = mep.mount_product("LAI")
        assert path == "Copernicus/LAI"
        remote = open_url("dap://vito.test/Copernicus/LAI", registry)
        full = remote.fetch()
        assert full["LAI"].shape[0] == 3  # aggregated over 3 dates

    def test_aggregation_updates_on_new_date(self, archive):
        mep = MepDeployment(archive, host="vito.test")
        registry = ServerRegistry()
        registry.register(mep.server)
        mep.mount_product("LAI")
        remote = open_url("dap://vito.test/Copernicus/LAI", registry)
        assert remote.fetch()["LAI"].shape[0] == 3
        new_day = date(2018, 7, 1)
        archive.publish("LAI", new_day, 0,
                        generate_product(LAI_SPEC, new_day))
        assert remote.fetch()["LAI"].shape[0] == 4  # no remount needed

    def test_times_are_sorted(self, archive):
        mep = MepDeployment(archive, host="vito.test")
        agg = mep.aggregated("LAI")
        times = decode_time(agg["time"])
        assert times == sorted(times)

    def test_ncml_service(self, archive):
        mep = MepDeployment(archive, host="vito.test")
        mep.mount_product("LAI")
        body = mep.server.request("Copernicus/LAI.ncml").decode()
        assert "netcdf" in body and "LAI" in body

    def test_netcdf_subset_service(self, archive):
        mep = MepDeployment(archive, host="vito.test")
        subset = mep.netcdf_subset("LAI", bbox=(2.2, 48.8, 2.4, 48.9))
        assert subset["LAI"].shape[1] <= 12
        assert (subset["lon"].data <= 2.4).all()

    def test_services_listing(self, archive):
        mep = MepDeployment(archive, host="vito.test")
        mep.mount_product("LAI")
        services = mep.services("LAI")
        assert set(services) == {"opendap", "ncml", "netcdfsubset"}
        assert services["opendap"] == "dap://vito.test/Copernicus/LAI"

    def test_mount_all(self, archive):
        from repro.vito import NDVI_SPEC

        archive.publish("NDVI", date(2018, 6, 1), 0,
                        generate_product(NDVI_SPEC, date(2018, 6, 1)))
        mep = MepDeployment(archive, host="vito.test")
        paths = mep.mount_all()
        assert paths == ["Copernicus/LAI", "Copernicus/NDVI"]
