"""Synthetic product generator tests."""

from datetime import date

import numpy as np
import pytest

from repro.opendap import apply_fill_and_scale, decode_time
from repro.vito import (
    ALL_SPECS,
    LAI_SPEC,
    NDVI_SPEC,
    PARIS_GRID,
    dekad_dates,
    default_greenness,
    generate_product,
    seasonal_factor,
)


def test_all_four_products_defined():
    assert set(ALL_SPECS) == {"LAI", "NDVI", "BA300", "S5_TOC_NDVI_100M"}
    assert ALL_SPECS["S5_TOC_NDVI_100M"].cadence_days == 5


def test_generate_structure():
    ds = generate_product(LAI_SPEC, date(2018, 6, 1))
    assert ds["LAI"].shape == (1, PARIS_GRID.n_lat, PARIS_GRID.n_lon)
    assert ds["time"].attributes["units"].startswith("days since")
    assert ds.attributes["product_version"] == "RT0"
    assert decode_time(ds["time"])[0].date() == date(2018, 6, 1)


def test_deterministic():
    a = generate_product(LAI_SPEC, date(2018, 6, 1), seed=3)
    b = generate_product(LAI_SPEC, date(2018, 6, 1), seed=3)
    np.testing.assert_array_equal(a["LAI"].data, b["LAI"].data)


def test_different_seeds_differ():
    a = generate_product(LAI_SPEC, date(2018, 6, 1), seed=3)
    b = generate_product(LAI_SPEC, date(2018, 6, 1), seed=4)
    assert not np.array_equal(a["LAI"].data, b["LAI"].data)


def test_values_within_valid_range():
    ds = generate_product(LAI_SPEC, date(2018, 6, 1))
    values = apply_fill_and_scale(ds["LAI"])
    finite = values[~np.isnan(values)]
    assert finite.min() >= LAI_SPEC.valid_min
    assert finite.max() <= LAI_SPEC.valid_max


def test_seasonality_summer_greater_than_winter():
    summer = generate_product(LAI_SPEC, date(2018, 7, 1), cloud_fraction=0)
    winter = generate_product(LAI_SPEC, date(2018, 1, 1), cloud_fraction=0)
    assert summer["LAI"].data.mean() > winter["LAI"].data.mean() * 2


def test_seasonal_factor_bounds():
    assert 0.9 < seasonal_factor(date(2018, 7, 1)) <= 1.0
    assert 0.0 <= seasonal_factor(date(2018, 1, 10)) < 0.1


def test_greenness_drives_values():
    """A park greenness function must yield higher LAI inside the park."""

    def greenness(lon, lat):
        return 1.0 if lon < 2.3 else 0.05

    ds = generate_product(
        LAI_SPEC, date(2018, 7, 1), greenness=greenness, cloud_fraction=0
    )
    lons = ds["lon"].data
    west = ds["LAI"].data[0][:, lons < 2.3].mean()
    east = ds["LAI"].data[0][:, lons >= 2.3].mean()
    assert west > east * 3


def test_reprocessing_reduces_noise():
    def flat(lon, lat):
        return 0.5

    rt0 = generate_product(
        LAI_SPEC, date(2018, 7, 1), greenness=flat, version=0,
        cloud_fraction=0,
    )
    rt2 = generate_product(
        LAI_SPEC, date(2018, 7, 1), greenness=flat, version=2,
        cloud_fraction=0,
    )
    assert rt2["LAI"].data.std() < rt0["LAI"].data.std()


def test_cloud_fraction_produces_fill():
    ds = generate_product(LAI_SPEC, date(2018, 6, 1), cloud_fraction=0.5)
    values = apply_fill_and_scale(ds["LAI"])
    assert np.isnan(values).mean() > 0.3


def test_default_greenness_bounded():
    for lon in np.linspace(-10, 30, 17):
        for lat in np.linspace(35, 60, 11):
            g = default_greenness(float(lon), float(lat))
            assert 0.0 <= g <= 1.0


def test_dekad_dates():
    days = dekad_dates(date(2018, 1, 1), 4)
    assert days == [date(2018, 1, 1), date(2018, 1, 11),
                    date(2018, 1, 21), date(2018, 1, 31)]


def test_ndvi_range():
    ds = generate_product(NDVI_SPEC, date(2018, 7, 1), cloud_fraction=0)
    assert ds["NDVI"].data.max() <= NDVI_SPEC.valid_max + 1e-6
