"""The hash-sharded index: routing, canonical order, twin equality.

The sharding contract is that ``Graph(shards=N)`` is *observationally
identical* to an unsharded graph for every read API, at every shard
count — routing is a stable hash of the subject id (never Python's
seeded ``hash()``), subject-bound scans go to exactly one shard in
insertion order, and unbound-subject scans merge per-shard sorted runs
into one canonical ascending (s, p, o) stream that no shard or worker
count can perturb.
"""

import random

import pytest

from repro.parallel import SerialExecutor, ThreadExecutor, WorkerPool
from repro.rdf.graph import Graph
from repro.rdf.shards import (
    DEFAULT_BATCH_SIZE,
    IndexShard,
    ShardedIndex,
    shard_of,
)
from repro.rdf.terms import IRI, Literal, Triple

pytestmark = pytest.mark.tier1

EX = "http://example.org/"


def build_triples(seed=7, subjects=40):
    rnd = random.Random(seed)
    triples = []
    preds = [IRI(EX + p) for p in ("type", "val", "link", "tag")]
    for i in range(subjects):
        s = IRI(f"{EX}s/{i}")
        triples.append(Triple(s, preds[0], IRI(EX + f"C{i % 3}")))
        triples.append(Triple(s, preds[1], Literal(str(rnd.randrange(9)))))
        if rnd.random() < 0.5:
            triples.append(
                Triple(s, preds[2], IRI(f"{EX}s/{rnd.randrange(subjects)}")))
        if rnd.random() < 0.3:
            triples.append(Triple(s, preds[3], Literal("x")))
    return triples


def build(shards=None, triples=None):
    g = Graph(shards=shards)
    for t in triples or build_triples():
        g.add(t)
    return g


# -- routing ---------------------------------------------------------------

def test_shard_of_is_stable_and_in_range():
    for n in (1, 2, 4, 7):
        for sid in range(1, 500):
            k = shard_of(sid, n)
            assert 0 <= k < n
            assert k == shard_of(sid, n)  # pure function of (sid, n)


def test_shard_of_distributes_subjects():
    counts = [0, 0, 0, 0]
    for sid in range(1, 2001):
        counts[shard_of(sid, 4)] += 1
    # splitmix64 mixing: no shard may collapse or hog the id space
    assert min(counts) > 300, counts
    assert max(counts) < 700, counts


def test_sharded_index_routes_all_triples_somewhere():
    idx = ShardedIndex(4)
    for s, p, o in ((1, 2, 3), (4, 2, 3), (1, 5, 6)):
        idx.add(s, p, o)
    assert sum(sh.n_triples for sh in idx.shards) == 3
    for s, p, o in ((1, 2, 3), (4, 2, 3), (1, 5, 6)):
        assert idx.shard_for(s).spo[s][p] >= {o}


# -- twin equality ---------------------------------------------------------

@pytest.mark.parametrize("n_shards", [1, 2, 4])
def test_sharded_graph_is_observationally_identical(n_shards):
    triples = build_triples()
    plain, sharded = build(None, triples), build(n_shards, triples)
    assert len(plain) == len(sharded)
    assert set(plain) == set(sharded)
    assert plain.distinct_counts == sharded.distinct_counts
    patterns = [
        (None, None, None),
        (IRI(f"{EX}s/3"), None, None),
        (None, IRI(EX + "val"), None),
        (None, IRI(EX + "type"), IRI(EX + "C1")),
        (IRI(f"{EX}s/3"), IRI(EX + "type"), None),
        (None, None, Literal("x")),
    ]
    for pattern in patterns:
        assert (sorted(plain.triples(pattern))
                == sorted(sharded.triples(pattern)))
        ids = plain._encode_pattern(pattern)
        sids = sharded._encode_pattern(pattern)
        assert plain.pattern_cardinality(ids) \
            == sharded.pattern_cardinality(sids)


@pytest.mark.parametrize("n_shards", [1, 2, 4])
def test_remove_keeps_twins_identical(n_shards):
    triples = build_triples()
    plain, sharded = build(None, triples), build(n_shards, triples)
    rnd = random.Random(11)
    for t in rnd.sample(triples, len(triples) // 2):
        plain.remove(t)
        sharded.remove(t)
    assert set(plain) == set(sharded)
    assert len(plain) == len(sharded)
    assert plain.distinct_counts == sharded.distinct_counts
    # the distinct-term shells are shard-invariant (pos/osp shells are
    # not: a predicate key legitimately appears once per shard)
    for key in ("s_count", "p_count", "o_count"):
        assert plain.index_shell_sizes()[key] \
            == sharded.index_shell_sizes()[key]


@pytest.mark.parametrize("n_shards", [1, 4])
def test_sharded_shells_do_not_leak(n_shards):
    g = build(n_shards)
    baseline = g.index_shell_sizes()
    extra = [Triple(IRI(f"{EX}tmp/{i}"), IRI(EX + "tmp"), Literal(str(i)))
             for i in range(25)]
    for t in extra:
        g.add(t)
    for t in extra:
        g.remove(t)
    assert g.index_shell_sizes() == baseline


# -- canonical order -------------------------------------------------------

def test_unbound_subject_scan_order_is_shard_count_invariant():
    triples = build_triples()
    ids = None
    streams = {}
    for n in (1, 2, 4):
        g = build(n, triples)
        ids = g._encode_pattern((None, IRI(EX + "val"), None))
        streams[n] = list(g._ids_matching(ids))
    assert streams[1] == streams[2] == streams[4]
    assert streams[1] == sorted(streams[1])  # canonical ascending


def test_subject_bound_scan_preserves_insertion_order():
    s = IRI(f"{EX}s/0")
    triples = [Triple(s, IRI(EX + f"p{i}"), Literal(str(i)))
               for i in (3, 1, 2, 0)]
    for n in (1, 4):
        g = build(n, triples)
        got = list(g.triples((s, None, None)))
        assert got == triples  # one shard, insertion order kept


def test_all_free_scan_matches_insertion_history():
    triples = build_triples()
    plain, sharded = build(None, triples), build(4, triples)
    assert list(plain) == list(sharded)


# -- batched scans ---------------------------------------------------------

def test_scan_batches_flat_layout_and_coverage():
    g = build(4)
    ids = g._encode_pattern((None, IRI(EX + "val"), None))
    flat = []
    for batch in g.scan_batches(ids, batch_size=7):
        assert len(batch) % 3 == 0
        assert len(batch) // 3 <= 7
        flat.extend(batch)
    got = [tuple(flat[i:i + 3]) for i in range(0, len(flat), 3)]
    assert got == list(g._ids_matching(ids))


def test_scan_batches_pool_and_serial_are_identical():
    g = build(4)
    ids = g._encode_pattern((None, IRI(EX + "val"), None))
    serial = list(g.scan_batches(ids, batch_size=5))
    for executor in (SerialExecutor(), ThreadExecutor(4)):
        pool = WorkerPool(4, executor)
        try:
            assert list(g.scan_batches(ids, batch_size=5,
                                       pool=pool)) == serial
        finally:
            pool.close()


def test_scan_cost_hook_sees_every_shard_scan():
    g = build(4)
    calls = []
    g.scan_cost = lambda shard, n: calls.append((shard, n))
    ids = g._encode_pattern((None, IRI(EX + "val"), None))
    rows = sum(len(b) // 3 for b in g.scan_batches(ids, batch_size=64))
    assert sum(n for __, n in calls) == rows
    assert len(calls) > 1  # one call per active shard


def test_shard_cardinalities_sum_to_pattern_cardinality():
    g = build(4)
    for pattern in [(None, IRI(EX + "val"), None),
                    (None, IRI(EX + "type"), IRI(EX + "C0"))]:
        ids = g._encode_pattern(pattern)
        per_shard = g.shard_cardinalities(ids)
        assert len(per_shard) == 4
        assert sum(per_shard) == g.pattern_cardinality(ids)


def test_default_batch_size_is_sane():
    assert DEFAULT_BATCH_SIZE >= 64


# -- shard internals -------------------------------------------------------

def test_index_shard_discard_prunes_empty_shells():
    sh = IndexShard()
    sh.add(1, 2, 3)
    sh.add(1, 2, 4)
    sh.discard(1, 2, 3)
    assert sh.n_triples == 1
    sh.discard(1, 2, 4)
    assert sh.n_triples == 0
    assert not sh.spo and not sh.pos and not sh.osp
