"""Property-based tests for RDF serialization round trips."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rdf import (
    BNode,
    Graph,
    IRI,
    Literal,
    XSD,
    parse_ntriples,
    parse_rdfxml,
    parse_turtle,
    serialize_ntriples,
    serialize_rdfxml,
    serialize_turtle,
)

iri_local = st.text(
    alphabet=string.ascii_letters + string.digits, min_size=1, max_size=12
)
iris = iri_local.map(lambda s: IRI("http://example.org/" + s))
# predicates must have XML-name local parts so RDF/XML can express them
predicate_iris = iri_local.map(
    lambda s: IRI("http://example.org/p" + s)
)
bnodes = iri_local.map(lambda s: BNode("b" + s))

plain_text = st.text(
    alphabet=st.characters(
        blacklist_categories=("Cs", "Cc"), max_codepoint=0x2FFF
    ),
    max_size=40,
)

literals = st.one_of(
    plain_text.map(Literal),
    st.integers(min_value=-10**9, max_value=10**9).map(Literal),
    st.booleans().map(Literal),
    plain_text.map(lambda s: Literal(s, lang="fr")),
    plain_text.map(lambda s: Literal(s, datatype=XSD.token)),
)

subjects = st.one_of(iris, bnodes)
objects = st.one_of(iris, bnodes, literals)


@st.composite
def graphs(draw):
    g = Graph()
    n = draw(st.integers(min_value=0, max_value=12))
    for __ in range(n):
        g.add(draw(subjects), draw(predicate_iris), draw(objects))
    return g


@given(graphs())
@settings(max_examples=60)
def test_ntriples_roundtrip(g):
    assert parse_ntriples(serialize_ntriples(g)) == g


@given(graphs())
@settings(max_examples=60)
def test_turtle_roundtrip(g):
    assert parse_turtle(serialize_turtle(g)) == g


@given(graphs())
@settings(max_examples=40)
def test_rdfxml_roundtrip(g):
    assert parse_rdfxml(serialize_rdfxml(g)) == g


@given(graphs())
@settings(max_examples=40)
def test_pattern_union_covers_graph(g):
    """Every triple is reachable via each single-position pattern."""
    for t in g:
        assert t in set(g.triples((t.s, None, None)))
        assert t in set(g.triples((None, t.p, None)))
        assert t in set(g.triples((None, None, t.o)))


@given(graphs())
@settings(max_examples=40)
def test_remove_then_empty(g):
    for t in list(g):
        g.remove(t)
    assert len(g) == 0
    assert list(g.triples((None, None, None))) == []


def test_rdfxml_unserializable_predicate_raises():
    """Digit-only local names cannot be XML element names."""
    import pytest

    g = Graph()
    g.add(IRI("http://example.org/s"), IRI("http://example.org/0"),
          IRI("http://example.org/o"))
    with pytest.raises(ValueError):
        serialize_rdfxml(g)


@given(literals)
def test_literal_n3_ntriples_roundtrip(lit):
    g = Graph()
    g.add(IRI("http://s"), IRI("http://p"), lit)
    back = parse_ntriples(serialize_ntriples(g))
    assert next(iter(back)).o == lit
