"""RDF term model tests."""

from datetime import date, datetime, timezone

import pytest

from repro.rdf import (
    BNode,
    IRI,
    Literal,
    Triple,
    XSD,
    literal_cmp_key,
    parse_datetime,
    to_utc,
)


class TestIRI:
    def test_is_string(self):
        iri = IRI("http://example.org/a")
        assert iri == "http://example.org/a"
        assert iri.n3() == "<http://example.org/a>"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            IRI("")

    def test_local_name(self):
        assert IRI("http://example.org/ont#Park").local_name == "Park"
        assert IRI("http://example.org/ont/Park").local_name == "Park"
        assert IRI("urn:x").local_name == "urn:x"

    def test_hashable_in_sets(self):
        assert len({IRI("http://a"), IRI("http://a")}) == 1


class TestBNode:
    def test_autolabel_unique(self):
        assert BNode() != BNode()

    def test_explicit_label(self):
        b = BNode("g1")
        assert b == "g1"
        assert b.n3() == "_:g1"

    def test_invalid_label(self):
        with pytest.raises(ValueError):
            BNode("has space")


class TestLiteral:
    def test_plain(self):
        lit = Literal("hello")
        assert lit.value == "hello"
        assert lit.n3() == '"hello"'

    def test_integer_coercion(self):
        lit = Literal(42)
        assert lit.datatype == XSD.integer
        assert lit.value == 42

    def test_float_coercion(self):
        lit = Literal(3.5)
        assert lit.datatype == XSD.double
        assert lit.value == 3.5

    def test_boolean(self):
        assert Literal(True).lexical == "true"
        assert Literal("1", datatype=XSD.boolean).value is True
        assert Literal("false", datatype=XSD.boolean).value is False

    def test_datetime(self):
        dt = datetime(2018, 6, 1, 12, 0, tzinfo=timezone.utc)
        lit = Literal(dt)
        assert lit.datatype == XSD.dateTime
        assert lit.value == dt

    def test_date(self):
        lit = Literal(date(2012, 1, 1))
        assert lit.datatype == XSD.date
        assert lit.value == date(2012, 1, 1)

    def test_lang_tag(self):
        lit = Literal("Bois de Boulogne", lang="FR")
        assert lit.lang == "fr"
        assert lit.n3() == '"Bois de Boulogne"@fr'

    def test_lang_and_datatype_conflict(self):
        with pytest.raises(ValueError):
            Literal("x", datatype=XSD.string, lang="en")

    def test_equality_respects_datatype(self):
        assert Literal("1") != Literal(1)
        assert Literal("1", datatype=XSD.integer) == Literal(1)

    def test_n3_escaping(self):
        lit = Literal('say "hi"\nplease')
        assert lit.n3() == '"say \\"hi\\"\\nplease"'

    def test_is_numeric(self):
        assert Literal(1).is_numeric
        assert Literal("2.5", datatype=XSD.decimal).is_numeric
        assert not Literal("x").is_numeric

    def test_is_geometry(self):
        from repro.rdf import GEO_WKT_LITERAL

        assert Literal("POINT(0 0)", datatype=GEO_WKT_LITERAL).is_geometry
        assert not Literal("POINT(0 0)").is_geometry


class TestTriple:
    def test_n3(self):
        t = Triple(IRI("http://s"), IRI("http://p"), Literal("o"))
        assert t.n3() == '<http://s> <http://p> "o" .'

    def test_named_fields(self):
        t = Triple(IRI("http://s"), IRI("http://p"), IRI("http://o"))
        assert t.s == "http://s" and t.p == "http://p" and t.o == "http://o"


class TestDatetimeHelpers:
    def test_parse_z_suffix(self):
        dt = parse_datetime("2018-06-01T00:00:00Z")
        assert dt.tzinfo is not None
        assert dt.hour == 0

    def test_parse_fractional(self):
        dt = parse_datetime("2018-06-01T12:30:45.5+02:00")
        assert dt.microsecond == 500000

    def test_parse_invalid(self):
        with pytest.raises(ValueError):
            parse_datetime("June 2018")

    def test_to_utc_naive(self):
        dt = to_utc(datetime(2018, 1, 1, 12))
        assert dt.tzinfo == timezone.utc


class TestCmpKey:
    def test_numeric_ordering(self):
        lits = [Literal(3), Literal(1.5), Literal(2)]
        ordered = sorted(lits, key=literal_cmp_key)
        assert [l.value for l in ordered] == [1.5, 2, 3]

    def test_mixed_types_do_not_crash(self):
        lits = [Literal("b"), Literal(1), Literal(True),
                Literal(datetime(2018, 1, 1))]
        assert len(sorted(lits, key=literal_cmp_key)) == 4

    def test_datetime_ordering(self):
        a = Literal(datetime(2018, 1, 1, tzinfo=timezone.utc))
        b = Literal(datetime(2019, 1, 1, tzinfo=timezone.utc))
        assert literal_cmp_key(a) < literal_cmp_key(b)
