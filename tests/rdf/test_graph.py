"""Graph indexing and pattern-matching tests."""

import pytest

from repro.rdf import Graph, IRI, Literal, RDF, Triple

EX = "http://example.org/"


def ex(name):
    return IRI(EX + name)


@pytest.fixture
def graph():
    g = Graph()
    g.add(ex("paris"), RDF.type, ex("City"))
    g.add(ex("paris"), ex("name"), Literal("Paris"))
    g.add(ex("paris"), ex("inCountry"), ex("france"))
    g.add(ex("athens"), RDF.type, ex("City"))
    g.add(ex("athens"), ex("inCountry"), ex("greece"))
    return g


def test_len_and_contains(graph):
    assert len(graph) == 5
    assert Triple(ex("paris"), RDF.type, ex("City")) in graph
    assert (ex("paris"), RDF.type, ex("City")) in graph
    assert (ex("paris"), None, None) in graph
    assert (ex("london"), None, None) not in graph


def test_add_is_idempotent(graph):
    graph.add(ex("paris"), RDF.type, ex("City"))
    assert len(graph) == 5


def test_pattern_queries(graph):
    cities = set(graph.subjects(RDF.type, ex("City")))
    assert cities == {ex("paris"), ex("athens")}
    assert set(graph.objects(ex("paris"), ex("inCountry"))) == {ex("france")}
    assert set(graph.predicates(ex("athens"))) == {RDF.type, ex("inCountry")}


def test_triples_wildcards(graph):
    assert len(list(graph.triples((None, None, None)))) == 5
    assert len(list(graph.triples((ex("paris"), None, None)))) == 3
    assert len(list(graph.triples((None, RDF.type, None)))) == 2
    assert len(list(graph.triples((None, None, ex("City"))))) == 2
    assert len(list(graph.triples((ex("paris"), RDF.type, None)))) == 1
    assert len(list(graph.triples((None, RDF.type, ex("City"))))) == 2


def test_value(graph):
    assert graph.value(ex("paris"), ex("name")) == Literal("Paris")
    assert graph.value(ex("paris"), ex("missing"), "dflt") == "dflt"


def test_remove_exact(graph):
    graph.remove(Triple(ex("paris"), ex("name"), Literal("Paris")))
    assert len(graph) == 4
    assert graph.value(ex("paris"), ex("name")) is None


def test_remove_pattern(graph):
    graph.remove(None, RDF.type, None)
    assert len(graph) == 3
    assert not list(graph.subjects(RDF.type))


def test_removed_triples_not_matched(graph):
    graph.remove(ex("paris"), None, None)
    assert not list(graph.triples((ex("paris"), None, None)))
    assert not list(graph.triples((None, None, ex("france"))))


def test_union_operator(graph):
    other = Graph()
    other.add(ex("rome"), RDF.type, ex("City"))
    combined = graph + other
    assert len(combined) == 6
    graph += other
    assert len(graph) == 6


def test_graph_equality():
    a = Graph().add(ex("s"), ex("p"), ex("o"))
    b = Graph().add(ex("s"), ex("p"), ex("o"))
    assert a == b
    b.add(ex("s"), ex("p"), Literal("x"))
    assert a != b


def test_add_coercions():
    g = Graph()
    g.add((ex("s"), ex("p"), ex("o")))
    assert len(g) == 1
    with pytest.raises(TypeError):
        g.add(ex("s"), ex("p"))


def test_bind_and_qname():
    g = Graph()
    g.bind("ex", EX)
    assert g.namespaces.qname(str(ex("Park"))) == "ex:Park"
    assert g.namespaces.expand("ex:Park") == ex("Park")
