"""RDFS reasoner and RDF crawler tests (§3.1 features)."""

import pytest

from repro.rdf import (
    DocumentStore,
    Graph,
    IRI,
    Literal,
    OWL,
    RDF,
    RDFS,
    RdfCrawler,
    Triple,
    materialize_inferences,
    rdfs_closure,
    sniff_format,
)

EX = "http://example.org/"


def ex(name):
    return IRI(EX + name)


class TestReasoner:
    def test_type_inheritance(self):
        g = Graph()
        g.add(ex("Park"), RDFS.subClassOf, ex("GreenSpace"))
        g.add(ex("bois"), RDF.type, ex("Park"))
        inferred = rdfs_closure(g)
        assert (ex("bois"), RDF.type, ex("GreenSpace")) in inferred

    def test_subclass_transitivity(self):
        g = Graph()
        g.add(ex("A"), RDFS.subClassOf, ex("B"))
        g.add(ex("B"), RDFS.subClassOf, ex("C"))
        g.add(ex("x"), RDF.type, ex("A"))
        inferred = rdfs_closure(g)
        assert (ex("A"), RDFS.subClassOf, ex("C")) in inferred
        assert (ex("x"), RDF.type, ex("C")) in inferred

    def test_deep_chain(self):
        g = Graph()
        for i in range(6):
            g.add(ex(f"C{i}"), RDFS.subClassOf, ex(f"C{i + 1}"))
        g.add(ex("x"), RDF.type, ex("C0"))
        materialize_inferences(g)
        assert (ex("x"), RDF.type, ex("C6")) in g

    def test_subproperty_inheritance(self):
        g = Graph()
        g.add(ex("hasCorineValue"), RDFS.subPropertyOf, ex("hasLandCover"))
        g.add(ex("area1"), ex("hasCorineValue"), ex("Forests"))
        inferred = rdfs_closure(g)
        assert (ex("area1"), ex("hasLandCover"), ex("Forests")) in inferred

    def test_domain_and_range(self):
        g = Graph()
        g.add(ex("hasName"), RDFS.domain, ex("Feature"))
        g.add(ex("locatedIn"), RDFS.range, ex("Place"))
        g.add(ex("bois"), ex("hasName"), Literal("Bois"))
        g.add(ex("bois"), ex("locatedIn"), ex("paris"))
        inferred = rdfs_closure(g)
        assert (ex("bois"), RDF.type, ex("Feature")) in inferred
        assert (ex("paris"), RDF.type, ex("Place")) in inferred

    def test_range_skips_literals(self):
        g = Graph()
        g.add(ex("hasName"), RDFS.range, ex("Name"))
        g.add(ex("bois"), ex("hasName"), Literal("Bois"))
        inferred = rdfs_closure(g)
        assert not list(inferred.triples((None, RDF.type, ex("Name"))))

    def test_closure_is_idempotent(self):
        g = Graph()
        g.add(ex("A"), RDFS.subClassOf, ex("B"))
        g.add(ex("x"), RDF.type, ex("A"))
        first = materialize_inferences(g)
        second = materialize_inferences(g)
        assert first > 0
        assert second == 0

    def test_inference_enables_query(self):
        """The ontology crosswalk scenario: query by superclass."""
        from repro.core import corine_ontology
        from repro.rdf import CLC

        g = corine_ontology()
        g.add(ex("area9"), RDF.type, CLC.GreenUrbanAreas)
        materialize_inferences(g)
        res = g.query(
            "PREFIX clc: <http://www.app-lab.eu/corine/> "
            "SELECT ?a WHERE { ?a a clc:CorineValue }"
        )
        assert any(str(r["a"]) == EX + "area9" for r in res)


class TestSniff:
    def test_turtle(self):
        assert sniff_format("@prefix ex: <http://x/> .") == "turtle"

    def test_rdfxml(self):
        assert sniff_format('<?xml version="1.0"?><rdf:RDF/>') == "rdfxml"

    def test_ntriples(self):
        assert sniff_format("<http://s> <http://p> <http://o> .") == \
            "ntriples"


class TestCrawler:
    def build_store(self):
        store = DocumentStore()
        store.put(
            EX + "doc1",
            f"""
            @prefix ex: <{EX}> .
            @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
            ex:lai-dataset ex:hasTitle "LAI" ;
                rdfs:seeAlso <{EX}doc2> .
            """,
            "turtle",
        )
        store.put(
            EX + "doc2",
            f'<{EX}lai-dataset> <{EX}provider> <{EX}vito> .\n'
            f'<{EX}vito> <http://www.w3.org/2000/01/rdf-schema#seeAlso> '
            f'<{EX}doc3> .\n',
            # no declared format — sniffed as ntriples
        )
        g3 = Graph()
        g3.add(ex("vito"), ex("country"), Literal("BE"))
        store.put(EX + "doc3", g3.serialize("xml"), "rdfxml")
        return store

    def test_crawl_follows_seealso(self):
        crawler = RdfCrawler(self.build_store())
        graph, report = crawler.crawl([EX + "doc1"])
        assert report.fetched == [EX + "doc1", EX + "doc2", EX + "doc3"]
        assert graph.value(ex("vito"), ex("country")) == Literal("BE")
        assert not report.failed

    def test_max_depth(self):
        crawler = RdfCrawler(self.build_store(), max_depth=1)
        graph, report = crawler.crawl([EX + "doc1"])
        assert EX + "doc3" not in report.fetched

    def test_bad_document_recorded_not_fatal(self):
        store = self.build_store()
        store.put(EX + "doc2", "this is {not} RDF at all !!!", "turtle")
        crawler = RdfCrawler(store)
        graph, report = crawler.crawl([EX + "doc1"])
        assert EX + "doc2" in report.failed
        assert EX + "doc1" in report.fetched

    def test_missing_document_recorded(self):
        store = DocumentStore()
        store.put(EX + "a", f"@prefix ex: <{EX}> . ex:x "
                            f"<http://www.w3.org/2000/01/rdf-schema#seeAlso>"
                            f" <{EX}ghost> .")
        graph, report = RdfCrawler(store).crawl([EX + "a"])
        assert report.failed[EX + "ghost"] == "not found"

    def test_crawl_with_reasoning(self):
        store = DocumentStore()
        store.put(
            EX + "onto",
            f"""
            @prefix ex: <{EX}> .
            @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
            ex:Park rdfs:subClassOf ex:GreenSpace .
            ex:bois a ex:Park .
            """,
        )
        graph, report = RdfCrawler(store).crawl(
            [EX + "onto"], reason=True
        )
        assert report.inferred_triples > 0
        assert (ex("bois"), RDF.type, ex("GreenSpace")) in graph

    def test_construct_crosswalk(self):
        """CONSTRUCT-based metadata crosswalk (ACDD title → dc title)."""
        store = DocumentStore()
        store.put(
            EX + "meta",
            f'@prefix ex: <{EX}> . ex:ds ex:acddTitle "LAI dekads" .',
        )
        crosswalk = f"""
        PREFIX ex: <{EX}>
        PREFIX dcterms: <http://purl.org/dc/terms/>
        CONSTRUCT {{ ?d dcterms:title ?t }} WHERE {{ ?d ex:acddTitle ?t }}
        """
        graph, report = RdfCrawler(store).crawl(
            [EX + "meta"], crosswalk_queries=[crosswalk]
        )
        assert report.constructed_triples == 1
        from repro.rdf import DCTERMS

        assert graph.value(ex("ds"), DCTERMS.title) == \
            Literal("LAI dekads")

    def test_document_cap(self):
        store = DocumentStore()
        for i in range(10):
            store.put(
                EX + f"d{i}",
                f'<{EX}x{i}> '
                f'<http://www.w3.org/2000/01/rdf-schema#seeAlso> '
                f'<{EX}d{i + 1}> .\n',
            )
        crawler = RdfCrawler(store, max_documents=4, max_depth=20)
        graph, report = crawler.crawl([EX + "d0"])
        assert len(report.fetched) == 4
