"""Namespace and NamespaceManager tests."""

import pytest

from repro.rdf import (
    DCTERMS,
    GEO,
    IRI,
    Namespace,
    NamespaceManager,
    PREFIXES,
)


class TestNamespace:
    def test_attribute_minting(self):
        ns = Namespace("http://example.org/ont#")
        assert ns.Park == IRI("http://example.org/ont#Park")
        assert isinstance(ns.Park, IRI)

    def test_item_minting(self):
        ns = Namespace("http://example.org/ont#")
        assert ns["has name"] == IRI("http://example.org/ont#has name")

    def test_str_method_shadowing(self):
        """dcterms:title/format/index must mint IRIs, not call str."""
        assert DCTERMS.title == IRI("http://purl.org/dc/terms/title")
        assert DCTERMS.format == IRI("http://purl.org/dc/terms/format")
        assert DCTERMS.index == IRI("http://purl.org/dc/terms/index")

    def test_contains(self):
        assert str(GEO.asWKT) in GEO
        assert "http://elsewhere/x" not in GEO

    def test_underscore_attributes_raise(self):
        with pytest.raises(AttributeError):
            Namespace("http://x/")._private

    def test_integer_indexing_still_slices(self):
        ns = Namespace("http://x/")
        assert ns[0] == "h"


class TestNamespaceManager:
    def test_defaults_bound(self):
        manager = NamespaceManager()
        for prefix in ("rdf", "geo", "geof", "xsd", "lai", "clc"):
            assert prefix in manager

    def test_expand(self):
        manager = NamespaceManager()
        assert manager.expand("geo:asWKT") == GEO.asWKT
        with pytest.raises(ValueError):
            manager.expand("nosuch:thing")
        with pytest.raises(ValueError):
            manager.expand("notaqname")

    def test_qname_longest_match_wins(self):
        manager = NamespaceManager(bind_defaults=False)
        manager.bind("a", "http://example.org/")
        manager.bind("b", "http://example.org/deep/")
        assert manager.qname("http://example.org/deep/x") == "b:x"
        assert manager.qname("http://example.org/x") == "a:x"

    def test_qname_rejects_unsafe_locals(self):
        manager = NamespaceManager(bind_defaults=False)
        manager.bind("ex", "http://example.org/")
        assert manager.qname("http://example.org/a/b") is None
        assert manager.qname("http://example.org/") is None

    def test_rebind_replaces(self):
        manager = NamespaceManager(bind_defaults=False)
        manager.bind("ex", "http://one/")
        manager.bind("ex", "http://two/")
        assert manager.expand("ex:x") == IRI("http://two/x")
        assert manager.qname("http://one/x") is None

    def test_bind_no_replace(self):
        manager = NamespaceManager(bind_defaults=False)
        manager.bind("ex", "http://one/")
        manager.bind("ex", "http://two/", replace=False)
        assert manager.expand("ex:x") == IRI("http://one/x")

    def test_prefix_table_consistent(self):
        for prefix, ns in PREFIXES.items():
            manager = NamespaceManager()
            assert manager.expand(f"{prefix}:x") == IRI(str(ns) + "x")
