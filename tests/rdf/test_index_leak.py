"""Regression: Graph.remove must prune its index shells.

The seed implementation left empty inner dicts / leaf sets behind on
remove, so a graph that churned triples (add, query, remove, repeat)
grew its SPO/POS/OSP shells and per-position count tables without
bound even at a steady-state triple count. ``index_shell_sizes()``
exposes the shell sizes so this test can pin the fix.
"""

import random

from repro.rdf.graph import Graph
from repro.rdf.terms import IRI, Literal

EX = "http://example.org/"


def _triple(i):
    return (IRI(f"{EX}s/{i}"), IRI(f"{EX}p/{i % 7}"), Literal(i))


def test_remove_restores_index_shells_to_baseline():
    g = Graph()
    g.add(*_triple(0))
    baseline = g.index_shell_sizes()
    for i in range(1, 200):
        g.add(*_triple(i))
    for i in range(1, 200):
        g.remove(*_triple(i))
    assert len(g) == 1
    assert g.index_shell_sizes() == baseline


def test_churn_does_not_grow_shells():
    rnd = random.Random(7)
    g = Graph()
    live = set()
    sizes_after_cycle = []
    for __ in range(5):
        for __ in range(300):
            i = rnd.randrange(50)
            if i in live:
                g.remove(*_triple(i))
                live.discard(i)
            else:
                g.add(*_triple(i))
                live.add(i)
        for i in list(live):
            g.remove(*_triple(i))
        live.clear()
        sizes_after_cycle.append(tuple(sorted(
            g.index_shell_sizes().items())))
    assert len(g) == 0
    # every post-churn snapshot identical: nothing accumulates
    assert len(set(sizes_after_cycle)) == 1
    for __, size in sizes_after_cycle[0]:
        assert size == 0


def test_remove_wildcard_prunes_everything_it_matched():
    g = Graph()
    s = IRI(EX + "subject")
    for i in range(10):
        g.add(s, IRI(f"{EX}p/{i}"), Literal(i))
    g.add(IRI(EX + "other"), IRI(EX + "p/0"), Literal(0))
    g.remove(s, None, None)
    assert len(g) == 1
    shells = g.index_shell_sizes()
    assert shells["spo"] == 1
    assert shells["s_count"] == 1
    # p/0 still used by the surviving triple; p/1..p/9 must be gone
    assert shells["pos"] == 1
    assert shells["p_count"] == 1
