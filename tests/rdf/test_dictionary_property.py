"""Property test: TermDictionary round-trip and id stability.

A seeded generator (no hypothesis — the container has what it has)
drives long interleaved sequences of ``encode``/``lookup``/``decode``
against a model dict, checking the dictionary's contract:

- encode/decode round-trips every interned term;
- an id, once assigned, never changes (stability under interleaved
  insert/lookup) and ids are dense, first-intern ordered, starting at 1;
- lookup never interns and decode never invents.
"""

import random

import pytest

from repro.rdf import BNode, IRI, Literal
from repro.rdf.dictionary import NO_TERM, TermDictionary

pytestmark = pytest.mark.tier1

N_OPS = 4000


def _term_pool(rng, size=300):
    """A deterministic pool of distinct terms across every term kind."""
    pool = []
    for i in range(size):
        kind = rng.randrange(5)
        if kind == 0:
            pool.append(IRI(f"http://example.org/resource/{i}"))
        elif kind == 1:
            pool.append(BNode(f"b{i}"))
        elif kind == 2:
            pool.append(Literal(f"text-{i}"))
        elif kind == 3:
            pool.append(Literal(i))
        else:
            pool.append(Literal(f"mot-{i}", lang="fr"))
    return pool


@pytest.mark.parametrize("seed", [0, 1, 7, 1234])
def test_interleaved_ops_round_trip_and_id_stability(seed):
    rng = random.Random(seed)
    pool = _term_pool(rng)
    d = TermDictionary()
    model = {}  # term -> id, the ground truth of first assignment

    for _ in range(N_OPS):
        term = rng.choice(pool)
        op = rng.randrange(3)
        if op == 0:
            term_id = d.encode(term)
            if term in model:
                # id stability: re-encoding never reassigns
                assert term_id == model[term]
            else:
                # density: fresh ids are consecutive from 1
                assert term_id == len(model) + 1
                model[term] = term_id
        elif op == 1:
            # lookup never interns
            before = len(d)
            assert d.lookup(term) == model.get(term)
            assert len(d) == before
        else:
            if term in model:
                assert d.decode(model[term]) == term
            else:
                assert term not in d

    # final audit: every model entry round-trips both directions
    assert len(d) == len(model)
    for term, term_id in model.items():
        assert d.encode(term) == term_id  # still stable at the end
        assert d.lookup(term) == term_id
        assert d.decode(term_id) == term
    # items() enumerates exactly the interned pairs in id order
    listed = list(d.items())
    assert listed == sorted(
        ((i, t) for t, i in model.items()), key=lambda p: p[0])


@pytest.mark.parametrize("seed", [2, 99])
def test_two_dictionaries_same_sequence_same_ids(seed):
    """Determinism: id assignment depends only on intern order."""
    rng = random.Random(seed)
    pool = _term_pool(rng, size=120)
    sequence = [rng.choice(pool) for _ in range(800)]
    d1, d2 = TermDictionary(), TermDictionary()
    ids1 = [d1.encode(t) for t in sequence]
    ids2 = [d2.encode(t) for t in sequence]
    assert ids1 == ids2
    assert list(d1.items()) == list(d2.items())


def test_decode_rejects_unknown_and_sentinel_ids():
    d = TermDictionary()
    term_id = d.encode(IRI("http://example.org/x"))
    assert term_id == 1
    with pytest.raises(KeyError):
        d.decode(NO_TERM)
    with pytest.raises(KeyError):
        d.decode(2)
    with pytest.raises(KeyError):
        d.decode(-1)  # must not alias via negative indexing


def test_equal_terms_share_one_id():
    d = TermDictionary()
    a = d.encode(Literal("42", datatype=None))
    b = d.encode(Literal("42"))
    assert a == b
    assert len(d) == 1
    # but a same-lexical different-type term is a different entry
    c = d.encode(Literal(42))
    assert c != a
