"""N-Triples / Turtle / RDF/XML round-trip tests."""

import pytest

from repro.rdf import (
    BNode,
    Graph,
    IRI,
    Literal,
    ParseError,
    RDF,
    Triple,
    XSD,
    parse_ntriples,
    parse_rdfxml,
    parse_turtle,
    serialize_ntriples,
    serialize_rdfxml,
    serialize_turtle,
)

EX = "http://example.org/"


def sample_graph():
    g = Graph()
    g.bind("ex", EX)
    g.add(IRI(EX + "paris"), RDF.type, IRI(EX + "City"))
    g.add(IRI(EX + "paris"), IRI(EX + "name"), Literal("Paris", lang="fr"))
    g.add(IRI(EX + "paris"), IRI(EX + "pop"), Literal(2148000))
    g.add(
        IRI(EX + "paris"),
        IRI(EX + "area"),
        Literal("105.4", datatype=XSD.decimal),
    )
    g.add(IRI(EX + "paris"), IRI(EX + "geom"), BNode("g1"))
    return g


class TestNTriples:
    def test_roundtrip(self):
        g = sample_graph()
        text = serialize_ntriples(g)
        g2 = parse_ntriples(text)
        assert g2 == g

    def test_parse_comments_and_blanks(self):
        text = "# comment\n\n<http://s> <http://p> <http://o> .\n"
        g = parse_ntriples(text)
        assert len(g) == 1

    def test_parse_escapes(self):
        text = '<http://s> <http://p> "line1\\nline2\\t\\"q\\"" .'
        g = parse_ntriples(text)
        lit = next(iter(g)).o
        assert lit.lexical == 'line1\nline2\t"q"'

    def test_parse_unicode_escape(self):
        text = '<http://s> <http://p> "caf\\u00e9" .'
        g = parse_ntriples(text)
        assert next(iter(g)).o.lexical == "café"

    def test_parse_typed_and_lang(self):
        text = (
            '<http://s> <http://p> "1"^^<http://www.w3.org/2001/XMLSchema#integer> .\n'
            '<http://s> <http://p> "chat"@fr .\n'
        )
        g = parse_ntriples(text)
        objs = set(g.objects())
        assert Literal(1) in objs
        assert Literal("chat", lang="fr") in objs

    @pytest.mark.parametrize(
        "bad",
        [
            "<http://s> <http://p> .",
            "<http://s> <http://p> <http://o>",
            '"lit" <http://p> <http://o> .',
            "<http://s> <http://p> <http://o> extra .",
        ],
    )
    def test_malformed_raises(self, bad):
        with pytest.raises(ParseError):
            parse_ntriples(bad)


class TestTurtle:
    def test_roundtrip(self):
        g = sample_graph()
        text = serialize_turtle(g)
        g2 = parse_turtle(text)
        assert g2 == g

    def test_prefixes_and_a(self):
        text = """
        @prefix ex: <http://example.org/> .
        ex:paris a ex:City ; ex:name "Paris"@fr .
        """
        g = parse_turtle(text)
        assert Triple(IRI(EX + "paris"), RDF.type, IRI(EX + "City")) in g
        assert g.value(IRI(EX + "paris"), IRI(EX + "name")) == Literal(
            "Paris", lang="fr"
        )

    def test_object_lists(self):
        text = """
        @prefix ex: <http://example.org/> .
        ex:s ex:p ex:a, ex:b, ex:c .
        """
        g = parse_turtle(text)
        assert len(g) == 3

    def test_numeric_shorthand(self):
        text = """
        @prefix ex: <http://example.org/> .
        ex:s ex:i 42 ; ex:d 3.14 ; ex:e 1.0e3 ; ex:neg -7 .
        """
        g = parse_turtle(text)
        values = {t.p.local_name: t.o for t in g}
        assert values["i"] == Literal(42)
        assert values["d"].datatype == XSD.decimal
        assert values["e"].datatype == XSD.double
        assert values["neg"] == Literal(-7)

    def test_boolean_shorthand(self):
        g = parse_turtle(
            "@prefix ex: <http://example.org/> . ex:s ex:p true ; ex:q false ."
        )
        objs = {t.o for t in g}
        assert Literal(True) in objs and Literal(False) in objs

    def test_anonymous_bnode(self):
        text = """
        @prefix ex: <http://example.org/> .
        ex:s ex:geom [ ex:wkt "POINT(1 2)" ] .
        """
        g = parse_turtle(text)
        assert len(g) == 2
        bnode = g.value(IRI(EX + "s"), IRI(EX + "geom"))
        assert isinstance(bnode, BNode)
        assert g.value(bnode, IRI(EX + "wkt")) == Literal("POINT(1 2)")

    def test_typed_literal_with_pname_datatype(self):
        text = """
        @prefix ex: <http://example.org/> .
        @prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
        ex:s ex:p "2.5"^^xsd:float .
        """
        g = parse_turtle(text)
        assert next(iter(g)).o.datatype == XSD.float

    def test_long_string(self):
        text = '@prefix ex: <http://example.org/> .\nex:s ex:p """multi\nline""" .'
        g = parse_turtle(text)
        assert next(iter(g)).o.lexical == "multi\nline"

    def test_collection(self):
        text = "@prefix ex: <http://example.org/> . ex:s ex:list (ex:a ex:b) ."
        g = parse_turtle(text)
        head = g.value(IRI(EX + "s"), IRI(EX + "list"))
        assert g.value(head, RDF.first) == IRI(EX + "a")
        rest = g.value(head, RDF.rest)
        assert g.value(rest, RDF.first) == IRI(EX + "b")
        assert g.value(rest, RDF.rest) == RDF.nil

    def test_unknown_prefix_raises(self):
        with pytest.raises(ParseError):
            parse_turtle("nope:s nope:p nope:o .")

    def test_trailing_semicolon(self):
        g = parse_turtle(
            "@prefix ex: <http://example.org/> . ex:s ex:p ex:o ; ."
        )
        assert len(g) == 1

    def test_graph_parse_serialize_methods(self):
        g = sample_graph()
        text = g.serialize("turtle")
        g2 = Graph().parse(text, format="turtle")
        assert g2 == g
        nt = g.serialize("nt")
        assert Graph().parse(nt, format="nt") == g


class TestRDFXML:
    def test_roundtrip(self):
        g = sample_graph()
        text = serialize_rdfxml(g)
        g2 = parse_rdfxml(text)
        assert g2 == g

    def test_language_and_datatype_attrs(self):
        g = sample_graph()
        text = serialize_rdfxml(g)
        assert 'xml:lang="fr"' in text
        assert "XMLSchema#decimal" in text

    def test_serialize_format_dispatch(self):
        g = sample_graph()
        assert g.serialize("xml").startswith("<?xml")
        with pytest.raises(ValueError):
            g.serialize("json-ld-nope")
