"""Serial/prefetch equivalence for the SDL chunk stream.

The prefetch pipeline must yield the exact chunk sequence of the
on-demand loop — same bytes, same order, same error positions, same
budget accounting — for any worker count, including under injected
server faults absorbed by the retry layer.
"""

from datetime import date

import pytest

from repro.governance import QueryBudget
from repro.opendap import ServerRegistry
from repro.parallel import WorkerPool
from repro.resilience import FaultSchedule, FaultyServer, InjectedFault, \
    RetryPolicy
from repro.sdl import StreamingDataLibrary
from repro.vito import (
    GlobalLandArchive,
    LAI_SPEC,
    MepDeployment,
    dekad_dates,
    generate_product,
)

from conftest import FakeClock

pytestmark = pytest.mark.tier1

WORKER_COUNTS = [1, 2, 4]
N_DEKADS = 6


def build_sdl(workers=1, wrap=None, retries=1, cache_ttl_s=0.0):
    """A fresh MEP + SDL per run so cache/fault state never leaks.

    The cache TTL defaults to zero so every chunk is a real fetch (the
    interesting case for the pipeline); the per-test clock never
    advances unless the retry layer sleeps on it.
    """
    archive = GlobalLandArchive()
    for day in dekad_dates(date(2018, 5, 1), N_DEKADS):
        archive.publish("LAI", day, 0,
                        generate_product(LAI_SPEC, day, cloud_fraction=0.05))
    mep = MepDeployment(archive, host="vito.test")
    mep.mount_all()
    registry = ServerRegistry()
    registry.register(mep.server)
    if wrap is not None:
        registry.wrap("vito.test", wrap)
    clock = FakeClock()
    sdl = StreamingDataLibrary(
        registry,
        cache_ttl_s=cache_ttl_s,
        retry_policy=RetryPolicy(clock=clock, sleep=clock.sleep,
                                 max_attempts=retries,
                                 base_delay_s=0.01),
        pool=WorkerPool(workers=workers) if workers > 1 else None,
    )
    sdl.register_dataset("LAI", "dap://vito.test/Copernicus/LAI")
    return sdl


def dump(sdl, budget=None):
    out = []
    for chunk in sdl.stream("LAI", budget=budget):
        for name in sorted(chunk.variables):
            out.append((name, chunk[name].data.tobytes()))
    return out


def test_prefetched_chunks_are_byte_identical():
    reference = dump(build_sdl(workers=1))
    assert len(reference) == N_DEKADS * 4  # LAI + 3 coordinate vars
    for workers in WORKER_COUNTS[1:]:
        assert dump(build_sdl(workers=workers)) == reference, \
            f"workers={workers} diverged"


def test_retried_faults_are_invisible_at_every_worker_count():
    def flaky(server):
        # Every 5th request fails once; two attempts absorb it.
        return FaultyServer(server, FaultSchedule(fail_every=5))

    reference = dump(build_sdl(workers=1))
    for workers in WORKER_COUNTS:
        got = dump(build_sdl(workers=workers, wrap=flaky, retries=2))
        assert got == reference, f"workers={workers} diverged"


class _ConstraintFault:
    """Fails every request whose query mentions *needle* — a fault tied
    to the work item, not the request arrival order, so it is
    deterministic under concurrent prefetch."""

    def __init__(self, inner, needle):
        self.inner = inner
        self.needle = needle

    def __getattr__(self, name):
        return getattr(self.inner, name)

    def request(self, path_and_query: str) -> bytes:
        if self.needle in path_and_query:
            raise InjectedFault(f"injected: {path_and_query}")
        return self.inner.request(path_and_query)


def test_unretryable_fault_raises_at_the_same_chunk_position():
    """Chunk 4's fetch dies for good; every worker count must yield
    chunks 0..3 and then raise."""
    for workers in WORKER_COUNTS:
        sdl = build_sdl(
            workers=workers,
            wrap=lambda s: _ConstraintFault(s, "LAI[4:1:4]"),
        )
        chunks = []
        with pytest.raises(InjectedFault):
            for chunk in sdl.stream("LAI"):
                chunks.append(chunk)
        assert len(chunks) == 4, f"workers={workers}"


def test_budget_accounting_matches_serial():
    clock = FakeClock()
    serial_budget = QueryBudget(clock=clock)
    dump(build_sdl(workers=1), budget=serial_budget)
    for workers in WORKER_COUNTS[1:]:
        budget = QueryBudget(clock=FakeClock())
        dump(build_sdl(workers=workers), budget=budget)
        assert budget.rows == serial_budget.rows == N_DEKADS
        assert budget.remote_fetches == serial_budget.remote_fetches


def test_row_limit_enforced_identically():
    from repro.governance import RowLimitExceeded

    for workers in WORKER_COUNTS:
        budget = QueryBudget(clock=FakeClock(), max_rows=3)
        sdl = build_sdl(workers=workers)
        got = []
        with pytest.raises(RowLimitExceeded):
            for chunk in sdl.stream("LAI", budget=budget):
                got.append(chunk)
        assert len(got) == 3, f"workers={workers}"
