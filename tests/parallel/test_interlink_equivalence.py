"""Serial/parallel equivalence for multi-core meta-blocking.

The weighted candidate list (values *and* order) and the final
clusters must be identical for every worker count: partial
co-occurrence counts merge in chunk order, which reproduces the serial
scan's first-occurrence pair order exactly.
"""

import pytest

from repro.governance import QueryBudget
from repro.interlink import EntityProfile, JedaiPipeline
from repro.observability.trace import Tracer

from conftest import FakeClock, TickClock

pytestmark = pytest.mark.tier1

WORKER_COUNTS = [1, 2, 4]
PARTITIONS = 8


def make_profiles(n=90):
    # Block sizes stay mid-range (tokens shared by ~7-13 entities), so
    # purging keeps them and meta-blocking sees many chunks; the
    # every-third extra token varies per-entity block counts so edge
    # weights are non-uniform under every weighting scheme.
    profiles = []
    for i in range(n):
        attributes = {"name": f"station st{i % 11} tag t{i % 13}",
                      "city": f"zone q{i % 7} lakeside"}
        if i % 3 == 0:
            attributes["extra"] = f"flag f{i % 4}"
        profiles.append(EntityProfile(f"e{i}", attributes))
    return profiles


def pipeline(workers, **kwargs):
    kwargs.setdefault("partitions", PARTITIONS)
    return JedaiPipeline(workers=workers, purge_factor=0.9, **kwargs)


def weighted_edges(p, profiles):
    blocks = p.block_filtering(
        p.block_purging(p.token_blocking(profiles), len(profiles)))
    return p.meta_blocking(blocks)


@pytest.mark.parametrize("weighting", ["cbs", "ecbs", "jaccard"])
def test_weighted_edge_list_identical_across_worker_counts(weighting):
    profiles = make_profiles()
    reference = weighted_edges(pipeline(1, weighting=weighting), profiles)
    assert reference, "workload must produce candidate pairs"
    for workers in WORKER_COUNTS[1:]:
        got = weighted_edges(pipeline(workers, weighting=weighting),
                             profiles)
        assert got == reference, f"workers={workers} diverged"


def test_clusters_and_stats_identical_across_worker_counts():
    profiles = make_profiles()
    ref_pipeline = pipeline(1)
    reference = ref_pipeline.resolve(profiles)
    for workers in WORKER_COUNTS[1:]:
        p = pipeline(workers)
        assert p.resolve(profiles) == reference
        assert p.stats.after_metablocking \
            == ref_pipeline.stats.after_metablocking
        assert p.stats.reduction_ratio == ref_pipeline.stats.reduction_ratio


def test_partitions_not_workers_shape_the_chunks():
    profiles = make_profiles(40)
    few = pipeline(2, partitions=4)
    many = pipeline(8, partitions=4)
    assert weighted_edges(few, profiles) == weighted_edges(many, profiles)


def test_simulated_chunk_reads_do_not_change_output(fake_clock):
    profiles = make_profiles()
    quiet = pipeline(4).resolve(profiles)
    slow = pipeline(4, chunk_read_s=0.01, sleep=fake_clock.sleep)
    assert slow.resolve(profiles) == quiet
    assert fake_clock.sleeps == [0.01] * len(fake_clock.sleeps)
    assert fake_clock.sleeps  # the injected read latency actually ran


def test_budget_charges_comparisons(fake_clock):
    profiles = make_profiles()
    budget = QueryBudget(clock=fake_clock)
    p = pipeline(4, budget=budget)
    p.resolve(profiles)
    assert budget.triples_scanned == p.stats.after_filtering


def test_trace_shows_one_span_per_chunk():
    tracer = Tracer(clock=TickClock())
    pipeline(4, tracer=tracer).resolve(make_profiles())
    roots = [r for r in tracer.roots if r.name == "interlink.metablocking"]
    assert len(roots) == 1
    assert all(c.name == "interlink.chunk" for c in roots[0].children)
    assert len(roots[0].children) > 1
