"""WorkerPool semantics: ordered merge, error rule, budget, tracing."""

import threading

import pytest

from conftest import TickClock

from repro.governance import QueryBudget, QueryCancelled
from repro.observability.trace import Tracer, render_trace
from repro.parallel import (
    SerialExecutor,
    ThreadExecutor,
    WorkerPool,
    chunk_count,
    chunk_list,
)

pytestmark = pytest.mark.tier1


# -- partitioning ------------------------------------------------------------

@pytest.mark.parametrize("n_items", [0, 1, 2, 7, 8, 9, 40])
@pytest.mark.parametrize("n_chunks", [1, 2, 3, 8])
def test_chunk_list_concatenates_to_input(n_items, n_chunks):
    items = list(range(n_items))
    chunks = chunk_list(items, n_chunks)
    assert [x for chunk in chunks for x in chunk] == items
    assert all(chunks)  # no empty chunks
    assert len(chunks) == chunk_count(n_items, n_chunks)


def test_chunk_boundaries_depend_only_on_counts():
    a = chunk_list(list(range(20)), 4)
    b = chunk_list(list(range(20)), 4)
    assert a == b
    assert len(a) <= 4


# -- ordered merge -----------------------------------------------------------

def test_map_returns_submission_order_even_when_completion_reorders():
    """Task 0 finishes *after* task 1 on purpose; order must hold."""
    first_done = threading.Event()

    def fn(i):
        if i == 0:
            # Wait until task 1 has completed, forcing out-of-order
            # completion under two workers.
            assert first_done.wait(5.0)
        if i == 1:
            first_done.set()
        return i * 10

    with WorkerPool(workers=2) as pool:
        assert pool.map(fn, [0, 1]) == [0, 10]


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_map_matches_serial_for_any_worker_count(workers):
    items = list(range(23))
    with WorkerPool(workers=workers) as pool:
        assert pool.map(lambda i: i * i, items) == [i * i for i in items]


# -- error semantics ---------------------------------------------------------

@pytest.mark.parametrize("workers", [1, 2, 4])
def test_map_raises_lowest_index_error_and_runs_all_tasks(workers):
    ran = []
    lock = threading.Lock()

    def fn(i):
        with lock:
            ran.append(i)
        if i in (1, 3):
            raise ValueError(f"boom{i}")
        return i

    with WorkerPool(workers=workers) as pool:
        with pytest.raises(ValueError, match="boom1"):
            pool.map(fn, range(5))
    assert sorted(ran) == [0, 1, 2, 3, 4]


@pytest.mark.parametrize("workers", [1, 4])
def test_run_tasks_reports_every_outcome(workers):
    def fn(i):
        if i % 2:
            raise RuntimeError(f"odd{i}")
        return i

    with WorkerPool(workers=workers) as pool:
        outcomes = pool.run_tasks(fn, range(6))
    assert [o.index for o in outcomes] == list(range(6))
    assert [o.ok for o in outcomes] == [True, False] * 3
    assert str(outcomes[3].error) == "odd3"


# -- budget propagation ------------------------------------------------------

@pytest.mark.parametrize("workers", [1, 4])
def test_cancelled_budget_sheds_tasks_identically(workers, fake_clock):
    budget = QueryBudget(clock=fake_clock)
    budget.cancel("shutdown")
    with WorkerPool(workers=workers) as pool:
        with pytest.raises(QueryCancelled):
            pool.map(lambda i: i, range(4), budget=budget)


def test_budget_charges_survive_concurrent_tasks(fake_clock):
    budget = QueryBudget(clock=fake_clock)

    def fn(i):
        for __ in range(50):
            budget.charge_triples()
        return i

    with WorkerPool(workers=4) as pool:
        pool.map(fn, range(8), budget=budget)
    assert budget.triples_scanned == 400


# -- tracing -----------------------------------------------------------------

def run_traced(workers):
    tracer = Tracer(clock=TickClock(step=0.001))
    with WorkerPool(workers=workers, executor=SerialExecutor()
                    if workers == 1 else ThreadExecutor(workers)) as pool:
        with tracer.span("request"):
            pool.run_tasks(lambda i, tracer=None: i, range(3),
                           tracer=tracer, label="pool.batch",
                           task_label="pool.task", pass_tracer=True)
    return tracer


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_trace_shape_is_identical_for_any_worker_count(workers):
    shape = [
        (s.name, s.span_id,
         s.parent.span_id if s.parent is not None else None)
        for s in run_traced(workers).roots[0].walk()
    ]
    assert shape == [
        ("request", 1, None),
        ("pool.batch", 2, 1),
        ("pool.task", 3, 2),
        ("pool.task", 4, 2),
        ("pool.task", 5, 2),
    ]


def test_pool_span_shows_wall_time_and_task_spans_sum_work():
    tracer = run_traced(1)
    rendered = render_trace(tracer.roots[0])
    assert rendered.splitlines()[1].lstrip().startswith("pool.batch")
    batch = tracer.roots[0].children[0]
    assert len(batch.children) == 3
    assert all(c.attributes["index"] == i
               for i, c in enumerate(batch.children))


def test_failed_task_span_records_error_type():
    tracer = Tracer(clock=TickClock())

    def fn(i):
        raise KeyError(i)

    with WorkerPool(workers=2) as pool:
        outcomes = pool.run_tasks(fn, range(2), tracer=tracer)
    assert all(o.span.attributes["error"] == "KeyError" for o in outcomes)


# -- ordered streaming -------------------------------------------------------

@pytest.mark.parametrize("workers", [1, 2, 4])
def test_ordered_stream_preserves_item_order(workers):
    with WorkerPool(workers=workers) as pool:
        got = list(pool.ordered_stream(lambda i: i * 2, range(17)))
    assert got == [i * 2 for i in range(17)]


@pytest.mark.parametrize("workers", [1, 3])
def test_ordered_stream_raises_at_failure_position(workers):
    def fn(i):
        if i == 4:
            raise RuntimeError("chunk 4 lost")
        return i

    with WorkerPool(workers=workers) as pool:
        stream = pool.ordered_stream(fn, range(8))
        got = []
        with pytest.raises(RuntimeError, match="chunk 4 lost"):
            for value in stream:
                got.append(value)
    assert got == [0, 1, 2, 3]


def test_ordered_stream_serial_executor_is_lazy():
    """With the serial fake, a task runs only when its slot is needed:
    the stream degenerates to the classic fetch-on-demand loop."""
    fetched = []

    def fn(i):
        fetched.append(i)
        return i

    with WorkerPool(workers=1) as pool:
        stream = pool.ordered_stream(fn, range(10))
        assert fetched == []  # nothing runs before the first pull
        next(stream)
        assert fetched == [0, 1]  # item 0 + the replacement lookahead


def test_executor_injection_controls_parallelism_flag():
    assert not WorkerPool(workers=1).parallel
    assert WorkerPool(workers=3).parallel
    assert not WorkerPool(executor=SerialExecutor()).parallel
    pool = WorkerPool(executor=ThreadExecutor(2))
    assert pool.parallel
    pool.close()


def test_thread_executor_rejects_zero_workers():
    with pytest.raises(ValueError):
        ThreadExecutor(0)
