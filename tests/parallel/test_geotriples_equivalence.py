"""Serial/parallel equivalence for partition-parallel GeoTriples.

With a fixed partition count, the merged graph and every N-Triples
part-file must be byte-identical for any worker count — partition
boundaries are a function of (row count, partitions) alone.
"""

import pytest

from repro.geotriples import MappingProcessor, ParallelMappingProcessor
from repro.geotriples.rml import LogicalSource, MappingError, TermMap, \
    TriplesMap
from repro.governance import QueryBudget
from repro.observability.trace import Tracer

from conftest import FakeClock, TickClock

pytestmark = pytest.mark.tier1

WORKER_COUNTS = [1, 2, 4]
PARTITIONS = 8


def make_map(n_rows=40):
    rows = tuple(
        {"id": i, "name": f"station {i}", "wkt": f"POINT({i} {i % 7})"}
        for i in range(n_rows)
    )
    return TriplesMap(
        name="stations",
        logical_source=LogicalSource("rows", rows),
        subject_map=TermMap(template="http://ex.org/station/{id}"),
        geometry_column="wkt",
    )


def test_run_matches_serial_for_any_worker_count():
    reference = set(MappingProcessor([make_map()]).run())
    for workers in WORKER_COUNTS:
        processor = ParallelMappingProcessor(
            [make_map()], workers=workers, partitions=PARTITIONS)
        assert set(processor.run()) == reference, f"workers={workers}"


def test_part_files_are_byte_identical_across_worker_counts(tmp_path):
    outputs = {}
    for workers in WORKER_COUNTS:
        out_dir = tmp_path / f"w{workers}"
        out_dir.mkdir()
        parts = ParallelMappingProcessor(
            [make_map()], workers=workers,
            partitions=PARTITIONS).run_to_files(str(out_dir))
        outputs[workers] = [
            (path.rsplit("/", 1)[-1], count, open(path).read())
            for path, count in parts
        ]
    assert outputs[1] == outputs[2] == outputs[4]
    names = [name for name, __, __ in outputs[1]]
    assert names == sorted(names)  # partition order, stable file names
    assert len(names) == PARTITIONS


def test_partition_count_not_worker_count_shapes_the_chunks(tmp_path):
    """More workers than partitions must not change the artifact set."""
    out_a, out_b = tmp_path / "a", tmp_path / "b"
    out_a.mkdir()
    out_b.mkdir()
    a = ParallelMappingProcessor([make_map(10)], workers=2,
                                 partitions=4).run_to_files(str(out_a))
    b = ParallelMappingProcessor([make_map(10)], workers=8,
                                 partitions=4).run_to_files(str(out_b))
    assert [(c, open(p).read()) for p, c in a] \
        == [(c, open(p).read()) for p, c in b]


def test_simulated_partition_reads_do_not_change_output(fake_clock):
    quiet = ParallelMappingProcessor(
        [make_map()], workers=4, partitions=PARTITIONS).run()
    slow = ParallelMappingProcessor(
        [make_map()], workers=4, partitions=PARTITIONS,
        partition_read_s=0.01, sleep=fake_clock.sleep).run()
    assert set(slow) == set(quiet)
    assert fake_clock.sleeps == [0.01] * PARTITIONS


def test_budget_accounts_all_emitted_triples(fake_clock):
    budget = QueryBudget(clock=fake_clock)
    graph = ParallelMappingProcessor(
        [make_map()], workers=4, partitions=PARTITIONS,
        budget=budget).run()
    assert budget.triples_scanned == len(graph)


def test_trace_shows_one_span_per_partition():
    tracer = Tracer(clock=TickClock())
    ParallelMappingProcessor(
        [make_map()], workers=4, partitions=PARTITIONS,
        tracer=tracer).run()
    root = tracer.roots[0]
    assert root.name == "geotriples.map"
    assert [c.name for c in root.children] \
        == ["geotriples.partition"] * PARTITIONS
    assert sum(c.counters["rows"] for c in root.children) == 40


def test_worker_floor_still_enforced():
    with pytest.raises(MappingError):
        ParallelMappingProcessor([make_map(5)], workers=0)
