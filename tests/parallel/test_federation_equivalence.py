"""Serial/parallel equivalence for the federation fan-out.

The same query against the same member set must produce byte-identical
results — bindings, order, and recorded failures — whatever the worker
count, including when endpoints fail under an injected fault schedule.
Engines force ``eager_service=True`` so serial runs use the same
dispatch sequence as parallel ones.
"""

import pytest

from repro.parallel import WorkerPool
from repro.rdf import Graph, IRI, Literal
from repro.resilience import FaultSchedule, FaultyEndpoint, InjectedFault
from repro.resilience.policy import RetryPolicy
from repro.sparql.federation import FederationEngine, SparqlEndpoint

from conftest import FakeClock

pytestmark = pytest.mark.tier1

EX = "http://example.org/"
WORKER_COUNTS = [1, 2, 4]


def make_graph(kind, names):
    graph = Graph()
    graph.bind("ex", EX)
    for name in names:
        node = IRI(EX + name)
        graph.add(node, IRI(EX + kind), Literal(name))
        graph.add(node, IRI(EX + "label"), Literal(name.upper()))
    return graph


def build_engine(workers, dead=(), flaky=()):
    """A three-member federation; endpoints rebuilt per engine so
    breaker/cache state never leaks between runs."""
    clock = FakeClock()
    engine = FederationEngine(
        retry_policy=RetryPolicy(clock=clock, sleep=clock.sleep,
                                 max_attempts=2, base_delay_s=0.01),
        pool=WorkerPool(workers=workers),
        eager_service=True,
    )
    members = [
        ("http://gadm.example/sparql", make_graph("unit", ["paris", "lyon"])),
        ("http://osm.example/sparql", make_graph("park", ["jardin", "parc"])),
        ("http://corine.example/sparql", make_graph("cover", ["forest"])),
    ]
    for iri, graph in members:
        endpoint = SparqlEndpoint(graph, name=iri)
        if iri in dead:
            endpoint = FaultyEndpoint(endpoint, FaultSchedule.dead())
        elif iri in flaky:
            # Fails the first request, then recovers: the retry layer
            # absorbs it, so results must be fault-free and identical.
            endpoint = FaultyEndpoint(endpoint, FaultSchedule(fail_first=1))
        engine.register(iri, endpoint)
    return engine


def rows(result):
    return [{k: str(v) for k, v in binding.items()} for binding in result]


QUERY = (
    "PREFIX ex: <http://example.org/>\n"
    "SELECT ?s ?l WHERE { ?s ex:label ?l } ORDER BY ?l"
)
SERVICE_QUERY = (
    "PREFIX ex: <http://example.org/>\n"
    "SELECT ?n WHERE { SERVICE <http://osm.example/sparql>"
    " { ?s ex:park ?n } } ORDER BY ?n"
)


def test_parallel_results_match_serial_exactly():
    reference = None
    for workers in WORKER_COUNTS:
        result = build_engine(workers).query(QUERY)
        got = (rows(result), result.failures)
        if reference is None:
            reference = got
        assert got == reference, f"workers={workers} diverged"
    assert len(reference[0]) == 5


def test_service_dispatch_matches_across_worker_counts():
    reference = None
    for workers in WORKER_COUNTS:
        result = build_engine(workers).query(SERVICE_QUERY)
        got = rows(result)
        if reference is None:
            reference = got
        assert got == reference
    assert [r["n"] for r in reference] == ["jardin", "parc"]


def test_dead_endpoint_partial_results_identical_under_faults():
    dead = ("http://osm.example/sparql",)
    reference = None
    for workers in WORKER_COUNTS:
        result = build_engine(workers, dead=dead).query(
            QUERY, partial_results=True)
        got = (rows(result), dict(result.failures))
        if reference is None:
            reference = got
        assert got == reference, f"workers={workers} diverged"
    bindings, failures = reference
    assert [r["l"] for r in bindings] == ["FOREST", "LYON", "PARIS"]
    assert list(failures) == ["http://osm.example/sparql"]
    assert "InjectedFault" in failures["http://osm.example/sparql"]


def test_strict_mode_raises_same_error_for_any_worker_count():
    dead = ("http://corine.example/sparql",)
    for workers in WORKER_COUNTS:
        with pytest.raises(InjectedFault):
            build_engine(workers, dead=dead).query(QUERY)


def test_retryable_flakiness_is_invisible_at_every_worker_count():
    flaky = ("http://gadm.example/sparql", "http://osm.example/sparql")
    reference = rows(build_engine(1).query(QUERY))
    for workers in WORKER_COUNTS:
        result = build_engine(workers, flaky=flaky).query(QUERY)
        assert rows(result) == reference
        assert result.failures == {}


def test_dead_service_endpoint_partial_identical():
    dead = ("http://osm.example/sparql",)
    reference = None
    for workers in WORKER_COUNTS:
        result = build_engine(workers, dead=dead).query(
            SERVICE_QUERY, partial_results=True)
        got = (rows(result), dict(result.failures))
        if reference is None:
            reference = got
        assert got == reference
    assert reference[0] == []
    assert list(reference[1]) == ["http://osm.example/sparql"]
