"""Fixtures for the parallel-equivalence suite: deterministic clocks."""

import pytest


class TickClock:
    """A clock that advances a fixed step on every read.

    Span durations then depend only on the number and order of clock
    reads, so two identical runs produce identical trace trees.
    """

    def __init__(self, step: float = 0.001, start: float = 0.0):
        self.step = step
        self.now = start

    def __call__(self) -> float:
        self.now += self.step
        return self.now


class FakeClock:
    """A manually-advanced clock (reads do not move time)."""

    def __init__(self, start: float = 0.0):
        self.now = start
        self.sleeps = []

    def __call__(self) -> float:
        return self.now

    def sleep(self, seconds: float) -> None:
        self.sleeps.append(seconds)
        self.now += seconds

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def tick_clock():
    return TickClock()


@pytest.fixture
def fake_clock():
    return FakeClock()
