"""Malformed-input hardening across the textual front ends.

Property: for *any* byte-level corruption of valid WKT / Turtle /
N-Triples / SPARQL text, the parser either succeeds or raises the
common typed :class:`repro.errors.ParseError` — never a bare
``ValueError`` / ``IndexError`` / ``TypeError`` leaked from internals.
The fuzz is seeded, so every run exercises the identical corpus.
"""

import random

import pytest

from repro.errors import ParseError
from repro.geometry import GeometryError, WktParseError, wkt_loads
from repro.rdf.ntriples import parse_ntriples
from repro.rdf.turtle import parse_turtle
from repro.sparql.parser import parse_query
from repro.sparql.tokenizer import SparqlSyntaxError

pytestmark = pytest.mark.tier1

WKT_SEEDS = [
    "POINT (2.35 48.85)",
    "LINESTRING (0 0, 1 1, 2 0)",
    "POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0), (1 1, 2 1, 2 2, 1 2, 1 1))",
    "MULTIPOINT ((0 0), (1 2))",
    "GEOMETRYCOLLECTION (POINT (1 1), LINESTRING (0 0, 1 1))",
    "<http://www.opengis.net/def/crs/OGC/1.3/CRS84> POINT (2.35 48.85)",
]

TURTLE_SEEDS = [
    '@prefix ex: <http://example.org/> .\n'
    'ex:paris ex:name "Paris"@fr ; ex:pop 2140526 .',
    '@prefix ex: <http://example.org/> .\n'
    'ex:a ex:items ( ex:b ex:c ) .\n'
    '[ ex:anon true ] ex:linked ex:a .',
    '<http://example.org/s> <http://example.org/p> '
    '"v\\u00e9locit\\u00e9"^^<http://www.w3.org/2001/XMLSchema#string> .',
]

NTRIPLES_SEEDS = [
    '<http://ex.org/s> <http://ex.org/p> "hello" .\n'
    '<http://ex.org/s> <http://ex.org/q> _:b0 .',
]

SPARQL_SEEDS = [
    'PREFIX ex: <http://example.org/>\n'
    'SELECT ?s ?n WHERE { ?s ex:name ?n . FILTER(?n != "x") } LIMIT 5',
    'SELECT (COUNT(*) AS ?n) WHERE { ?s ?p ?o } GROUP BY ?s HAVING(?n > 1)',
    'CONSTRUCT { ?s a ?o } WHERE { ?s ?p ?o } ',
]

MUTATION_BYTES = list(b'\x00\x01\xff<>(){}"\'\\@^.;,0') + [0x20, 0x7f]


def mutations(seed_text, rng, count=60):
    """*count* seeded single/multi-character corruptions of the text."""
    for __ in range(count):
        chars = list(seed_text)
        for __edit in range(rng.randint(1, 4)):
            op = rng.randrange(3)
            idx = rng.randrange(len(chars) + (op == 1))
            if op == 0 and chars:
                chars[idx % len(chars)] = chr(rng.choice(MUTATION_BYTES))
            elif op == 1:
                chars.insert(idx, chr(rng.choice(MUTATION_BYTES)))
            elif chars:
                del chars[idx % len(chars)]
        yield "".join(chars)


def assert_only_parse_errors(parse, corpus, rng_seed):
    rng = random.Random(rng_seed)
    outcomes = {"ok": 0, "rejected": 0}
    for seed_text in corpus:
        parse(seed_text)  # the uncorrupted seed must parse
        for mutant in mutations(seed_text, rng):
            try:
                parse(mutant)
            except ParseError:
                outcomes["rejected"] += 1
            else:
                outcomes["ok"] += 1
    # The corpus is corrupt enough that rejections must dominate —
    # and every rejection above was the typed ParseError.
    assert outcomes["rejected"] > outcomes["ok"]


def test_fuzz_wkt_only_raises_parse_error():
    assert_only_parse_errors(wkt_loads, WKT_SEEDS, rng_seed=1)


def test_fuzz_turtle_only_raises_parse_error():
    assert_only_parse_errors(parse_turtle, TURTLE_SEEDS, rng_seed=2)


def test_fuzz_ntriples_only_raises_parse_error():
    assert_only_parse_errors(parse_ntriples, NTRIPLES_SEEDS, rng_seed=3)


def test_fuzz_sparql_only_raises_parse_error():
    assert_only_parse_errors(parse_query, SPARQL_SEEDS, rng_seed=4)


# -- typed-error surface ---------------------------------------------------
def test_wkt_error_is_both_geometry_and_parse_error():
    with pytest.raises(WktParseError) as err:
        wkt_loads("POINT (2.35")
    assert isinstance(err.value, GeometryError)
    assert isinstance(err.value, ParseError)
    assert err.value.position is not None
    assert "offset" in str(err.value)


def test_sparql_error_is_both_syntax_and_parse_error():
    with pytest.raises(SparqlSyntaxError) as err:
        parse_query("SELECT ?s WHERE { \x00 }")
    assert isinstance(err.value, SyntaxError)
    assert isinstance(err.value, ParseError)
    assert err.value.position == 18


def test_turtle_error_carries_position():
    with pytest.raises(ParseError) as err:
        parse_turtle("@prefix ex: <http://example.org/> .\nex:a ex:b ~ .")
    assert err.value.position is not None


def test_wild_unicode_escape_is_a_parse_error_not_valueerror():
    # chr(0x110000) would raise a bare ValueError inside unescape.
    with pytest.raises(ParseError):
        parse_turtle('<http://e/s> <http://e/p> "\\U00110000" .')
    with pytest.raises(ParseError):
        parse_ntriples('<http://e/s> <http://e/p> "\\U00110000" .')


def test_ntriples_errors_report_line():
    good = '<http://e/s> <http://e/p> "ok" .'
    with pytest.raises(ParseError, match="line 2"):
        parse_ntriples(good + "\n<http://e/s> nonsense .")
