"""Cloud platform, sandbox and mini-Kubernetes tests (E14)."""

import pytest

from repro.cloud import (
    Appliance,
    AppPackage,
    Cluster,
    DeploymentSpec,
    DockerImage,
    Environment,
    KubeError,
    PlatformError,
    PodSpec,
    Sandbox,
    SandboxError,
    TerraduePlatform,
)


def applab_release(platform, version="1.0.0"):
    return platform.new_release(
        version,
        [
            Appliance("ontop-spatial", DockerImage("applab/ontop", version)),
            Appliance("strabon", DockerImage("applab/strabon", version),
                      cpu=2, memory_gb=4),
            Appliance("sextant", DockerImage("applab/sextant", version)),
            Appliance("sdl", DockerImage("applab/sdl", version)),
        ],
    )


class TestPlatform:
    @pytest.fixture
    def platform(self):
        platform = TerraduePlatform()
        platform.add_environment(Environment("terradue"))
        platform.add_environment(Environment("vito-mep", cpu_capacity=8))
        platform.add_environment(Environment("dias-eumetsat"))
        applab_release(platform)
        return platform

    def test_deploy_stack(self, platform):
        deployments = platform.deploy_stack("1.0.0", "terradue")
        assert len(deployments) == 4
        assert all(d.status == "running" for d in deployments)
        report = platform.status_report()
        assert report["terradue"]["deployments"] == 4
        assert report["terradue"]["cpu_used"] == 5

    def test_burst_to_dias(self, platform):
        """§5: when the DIAS become operational, burst the stack there."""
        source = platform.deploy("1.0.0", "ontop-spatial", "terradue")
        clone = platform.burst(source.deployment_id, "dias-eumetsat")
        assert clone.environment == "dias-eumetsat"
        assert clone.release_version == "1.0.0"
        assert any("burst" in line for line in clone.log)
        assert len(platform.running()) == 2

    def test_upgrade_release(self, platform):
        applab_release(platform, "1.1.0")
        old = platform.deploy("1.0.0", "sextant", "terradue")
        new = platform.upgrade(old.deployment_id, "1.1.0")
        assert new.release_version == "1.1.0"
        assert old.status == "terminated"
        # resources were returned before re-allocating
        assert platform.environment("terradue").cpu_used == 1

    def test_capacity_enforced(self, platform):
        small = platform.add_environment(
            Environment("edge", cpu_capacity=1, memory_capacity_gb=2)
        )
        platform.deploy("1.0.0", "ontop-spatial", "edge")
        with pytest.raises(PlatformError):
            platform.deploy("1.0.0", "strabon", "edge")

    def test_unknowns_raise(self, platform):
        with pytest.raises(PlatformError):
            platform.deploy("9.9.9", "ontop-spatial", "terradue")
        with pytest.raises(PlatformError):
            platform.deploy("1.0.0", "nope", "terradue")
        with pytest.raises(PlatformError):
            platform.deploy("1.0.0", "ontop-spatial", "moonbase")
        with pytest.raises(PlatformError):
            platform.new_release("1.0.0", [])


class TestSandbox:
    def test_parallel_map(self):
        app = AppPackage("ndvi-stats", lambda x: x * 2)
        report = Sandbox(parallelism=3).run(app, [1, 2, 3, 4])
        assert report.succeeded == 4
        assert sorted(report.outputs) == [2, 4, 6, 8]
        assert report.wall_time_s >= 0

    def test_task_failures_isolated(self):
        def processor(x):
            if x == 2:
                raise ValueError("bad granule")
            return x

        report = Sandbox().run(AppPackage("p", processor), [1, 2, 3])
        assert report.succeeded == 2
        assert report.failed == 1
        failed = [r for r in report.results if not r.ok][0]
        assert "bad granule" in failed.error

    def test_kwargs_passed(self):
        app = AppPackage("scaled", lambda x, factor=1: x * factor)
        report = Sandbox(parallelism=1).run(app, [1, 2], factor=10)
        assert report.outputs == [10, 20]

    def test_invalid_construction(self):
        with pytest.raises(SandboxError):
            Sandbox(parallelism=0)
        with pytest.raises(SandboxError):
            AppPackage("x", processor="not callable")

    def test_history(self):
        sandbox = Sandbox()
        sandbox.run(AppPackage("a", lambda x: x), [1])
        sandbox.run(AppPackage("b", lambda x: x), [1, 2])
        assert [r.app for r in sandbox.history] == ["a", "b"]


class TestKubernetes:
    @pytest.fixture
    def cluster(self):
        return Cluster(nodes=["n1", "n2"])

    def spec(self, replicas=3, tag="1.0"):
        return DeploymentSpec(
            "ramani-analytics", replicas,
            PodSpec(image=f"applab/analytics:{tag}"),
        )

    def test_apply_creates_replicas(self, cluster):
        cluster.apply(self.spec())
        pods = cluster.pods_of("ramani-analytics")
        assert len(pods) == 3
        assert {p.node for p in pods} <= {"n1", "n2"}

    def test_scale_up_and_down(self, cluster):
        cluster.apply(self.spec(2))
        cluster.scale("ramani-analytics", 5)
        assert len(cluster.pods_of("ramani-analytics")) == 5
        cluster.scale("ramani-analytics", 1)
        assert len(cluster.pods_of("ramani-analytics")) == 1

    def test_self_healing(self, cluster):
        cluster.apply(self.spec(2))
        victim = cluster.pods_of("ramani-analytics")[0]
        cluster.kill_pod(victim.name)
        cluster.reconcile()
        pods = cluster.pods_of("ramani-analytics")
        assert len(pods) == 2
        assert all(p.status == "Running" for p in pods)
        assert victim.name not in {p.name for p in pods}

    def test_rolling_update_replaces_pods(self, cluster):
        cluster.apply(self.spec(2, tag="1.0"))
        old_names = {p.name for p in cluster.pods_of("ramani-analytics")}
        cluster.apply(self.spec(2, tag="2.0"))
        new_pods = cluster.pods_of("ramani-analytics")
        assert len(new_pods) == 2
        assert all(p.spec.image.endswith("2.0") for p in new_pods)
        assert old_names.isdisjoint({p.name for p in new_pods})

    def test_service_round_robin(self, cluster):
        cluster.apply(self.spec(3))
        hits = {cluster.endpoint("ramani-analytics").name
                for __ in range(6)}
        assert len(hits) == 3

    def test_delete(self, cluster):
        cluster.apply(self.spec(2))
        cluster.delete("ramani-analytics")
        assert cluster.all_pods() == []
        with pytest.raises(KubeError):
            cluster.scale("ramani-analytics", 1)

    def test_errors(self, cluster):
        with pytest.raises(KubeError):
            cluster.kill_pod("ghost")
        with pytest.raises(KubeError):
            cluster.endpoint("nothing")
        with pytest.raises(KubeError):
            cluster.apply(self.spec(-1))
