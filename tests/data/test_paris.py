"""Synthetic Paris dataset tests."""

import pytest

from repro.data import (
    CLC_CLASSES,
    UA_CLASSES,
    WorkloadGenerator,
    arrondissements,
    city_boundary,
    corine_land_cover,
    gadm_hierarchy,
    osm_parks,
    osm_pois,
    paris_greenness,
    seine,
    urban_atlas,
)
from repro.geometry import Point, Polygon
from repro.geometry import ops as geo_ops


class TestAdministrative:
    def test_twenty_arrondissements(self):
        fc = arrondissements()
        assert len(fc) == 20
        numbers = {f.properties["arrondissement"] for f in fc}
        assert numbers == set(range(1, 21))

    def test_arrondissements_inside_city(self):
        city = city_boundary()
        for f in arrondissements():
            c = geo_ops.centroid(f.geometry)
            assert geo_ops.intersects(city, c), f.properties["name"]

    def test_arrondissements_mostly_disjoint(self):
        fc = arrondissements().features
        overlaps = 0
        for i in range(len(fc)):
            for j in range(i + 1, len(fc)):
                if geo_ops.overlaps(fc[i].geometry, fc[j].geometry):
                    overlaps += 1
        assert overlaps == 0

    def test_gadm_hierarchy_nesting(self):
        fc = gadm_hierarchy()
        by_name = {f.properties["name"]: f.geometry for f in fc}
        assert geo_ops.contains(by_name["France"], by_name["Île-de-France"])
        assert geo_ops.contains(by_name["Île-de-France"], by_name["Paris"])


class TestOsm:
    def test_parks_present(self):
        names = {f.properties["name"] for f in osm_parks()}
        assert "Bois de Boulogne" in names
        assert "Bois de Vincennes" in names
        assert len(names) == 8

    def test_bois_de_boulogne_west_of_vincennes(self):
        by_name = {f.properties["name"]: f.geometry for f in osm_parks()}
        assert by_name["Bois de Boulogne"].bounds[2] < \
            by_name["Bois de Vincennes"].bounds[0]

    def test_pois_typed(self):
        kinds = {f.properties["poiType"] for f in osm_pois()}
        assert {"landmark", "industrial", "stadium"} <= kinds

    def test_seine_crosses_city(self):
        assert geo_ops.intersects(seine().geometry, city_boundary())


class TestLandCover:
    def test_corine_codes_valid(self):
        fc = corine_land_cover()
        assert all(f.properties["code"] in CLC_CLASSES for f in fc)
        codes = {f.properties["code"] for f in fc}
        assert codes == {"111", "112", "121", "141", "511"}

    def test_green_areas_cover_parks(self):
        green = [
            f.geometry for f in corine_land_cover()
            if f.properties["code"] == "141"
        ]
        for park in osm_parks():
            assert any(
                geo_ops.intersects(g, park.geometry) for g in green
            ), park.properties["name"]

    def test_urban_atlas_codes(self):
        fc = urban_atlas()
        assert all(f.properties["code"] in UA_CLASSES for f in fc)
        green = [f for f in fc if f.properties["code"] == "14100"]
        assert len(green) == 8


class TestGreenness:
    def test_parks_greener_than_industry(self):
        g = paris_greenness()
        park_value = g(2.25, 48.86)        # Bois de Boulogne
        industrial_value = g(2.42, 48.81)  # SE industrial zone
        centre_value = g(2.349, 48.853)    # Notre-Dame area
        default_value = g(2.18, 48.77)     # outside everything
        assert park_value > default_value > centre_value > industrial_value

    def test_bounded(self):
        g = paris_greenness()
        for lon in (2.16, 2.3, 2.45, 2.54):
            for lat in (48.76, 48.85, 48.94):
                assert 0.0 <= g(lon, lat) <= 1.0

    def test_deterministic(self):
        g1, g2 = paris_greenness(), paris_greenness()
        assert g1(2.25, 48.86) == g2(2.25, 48.86)


class TestWorkloadGenerator:
    def test_deterministic_with_seed(self):
        a = WorkloadGenerator(seed=7).feature_collection(10, "box")
        b = WorkloadGenerator(seed=7).feature_collection(10, "box")
        assert [f.geometry for f in a] == [f.geometry for f in b]

    def test_kinds(self):
        gen = WorkloadGenerator(seed=1)
        for kind in ("point", "box", "polygon", "linestring"):
            fc = gen.feature_collection(5, kind)
            assert len(fc) == 5

    def test_region_respected(self):
        gen = WorkloadGenerator(seed=3, region=(0, 0, 1, 1))
        fc = gen.feature_collection(20, "point")
        for f in fc:
            assert 0 <= f.geometry.x <= 1
            assert 0 <= f.geometry.y <= 1

    def test_classes_assigned(self):
        gen = WorkloadGenerator(seed=5)
        fc = gen.feature_collection(30, "box", classes=["a", "b"])
        assert {f.properties["class"] for f in fc} == {"a", "b"}

    def test_polygons_valid(self):
        gen = WorkloadGenerator(seed=9)
        for f in gen.feature_collection(10, "polygon"):
            assert geo_ops.area(f.geometry) > 0
