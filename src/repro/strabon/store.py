"""Strabon: a spatiotemporal RDF store.

Reproduces the query-relevant behaviour of Strabon [Kyzirakos et al.,
ISWC 2012; Bereta et al., ESWC 2013]:

- **materialized storage** of RDF with GeoSPARQL geometry literals;
- a **spatial index** (STR-packed R-tree) over every ``geo:wktLiteral``
  object, exposed to the SPARQL evaluator through the
  ``spatial_candidates`` hook, turning spatial selections into index
  lookups (Strabon's PostGIS GiST role);
- **valid time of triples** (stRDF): each triple may carry a
  ``[start, end)`` interval; snapshots, interval queries and temporal
  joins are supported (the ESWC 2013 contribution);
- **dictionary-encoded persistence** to SQLite, mirroring Strabon's
  DBMS-backed storage layer.
"""

from __future__ import annotations

import hashlib
import sqlite3
from datetime import datetime
from typing import Dict, Iterable, List, Optional, Tuple

from ..geometry import Geometry, STRtree, bbox_intersects
from ..geometry import wkt_loads
from ..rdf.graph import Graph
from ..rdf.terms import (
    BNode,
    GEO_WKT_LITERAL,
    IRI,
    Literal,
    Term,
    Triple,
    to_utc,
)

Interval = Tuple[datetime, datetime]


class StrabonStore(Graph):
    """An indexed, optionally temporal, persistent RDF store."""

    #: The SPARQL evaluator passes its QueryBudget into
    #: ``spatial_candidates`` when this is set, so index scans are
    #: charged against the query's scan budget.
    budget_aware = True

    def __init__(self, identifier: Optional[str] = None,
                 shards: Optional[int] = None):
        super().__init__(identifier, shards=shards)
        self._geometry_literals: Dict[Literal, Geometry] = {}
        self._rtree: Optional[STRtree] = None
        self._valid_time: Dict[Triple, Interval] = {}

    # -- mutation (keeps the spatial index in sync) -------------------------
    def add(self, triple_or_s, p=None, o=None) -> "StrabonStore":
        triple = self._coerce(triple_or_s, p, o)
        before = len(self)
        super().add(triple)
        if len(self) != before:
            obj = triple.o
            if isinstance(obj, Literal) and obj.datatype == GEO_WKT_LITERAL:
                if obj not in self._geometry_literals:
                    try:
                        self._geometry_literals[obj] = wkt_loads(obj.lexical)
                        self._rtree = None
                    except Exception:
                        pass  # malformed WKT stays queryable, not indexed
        return self

    def remove(self, triple_or_s, p=None, o=None) -> "StrabonStore":
        if isinstance(triple_or_s, Triple) and p is None and o is None:
            removed = [triple_or_s] if triple_or_s in self else []
        else:
            removed = list(self.triples((triple_or_s, p, o)))
        super().remove(triple_or_s, p, o)
        for t in removed:
            self._valid_time.pop(t, None)
            if isinstance(t.o, Literal) and t.o in self._geometry_literals:
                if not list(self.triples((None, None, t.o))):
                    del self._geometry_literals[t.o]
                    self._rtree = None
        return self

    # -- spatial index --------------------------------------------------------
    def _ensure_rtree(self) -> Optional[STRtree]:
        if self._rtree is None and self._geometry_literals:
            items = list(self._geometry_literals.items())
            self._rtree = STRtree(
                items, bbox_of=lambda kv: kv[1].bounds
            )
        return self._rtree

    def spatial_candidates(self, bounds, budget=None) -> List[Literal]:
        """Geometry literals whose bbox intersects *bounds*.

        This is the evaluator's pushdown hook: spatial FILTERs against a
        constant geometry enumerate only these candidates. With a
        *budget* (a :class:`~repro.governance.QueryBudget`) each
        candidate the R-tree hands back is charged against the query's
        scan budget, so a huge selection terminates with a typed
        budget error instead of enumerating the index unbounded.
        """
        tree = self._ensure_rtree()
        if tree is None:
            return []
        candidates = []
        for lit, __ in tree.query(bounds):
            if budget is not None:
                budget.charge_triples()
            candidates.append(lit)
        return candidates

    def spatial_join_candidates(self, geom: Geometry,
                                budget=None) -> List[Literal]:
        return self.spatial_candidates(geom.bounds, budget=budget)

    @property
    def indexed_geometry_count(self) -> int:
        return len(self._geometry_literals)

    # -- valid time (stRDF) -----------------------------------------------------
    def add_with_time(self, triple_or_s, p=None, o=None, *,
                      start: datetime, end: datetime) -> "StrabonStore":
        """Assert a triple with a valid-time interval ``[start, end)``."""
        triple = self._coerce(triple_or_s, p, o)
        if to_utc(start) >= to_utc(end):
            raise ValueError("valid-time interval must have start < end")
        self.add(triple)
        self._valid_time[triple] = (to_utc(start), to_utc(end))
        return self

    def valid_time(self, triple: Triple) -> Optional[Interval]:
        return self._valid_time.get(triple)

    def triples_at(self, moment: datetime) -> Iterable[Triple]:
        """Triples valid at *moment* (timeless triples always qualify)."""
        moment = to_utc(moment)
        for t in self:
            interval = self._valid_time.get(t)
            if interval is None or interval[0] <= moment < interval[1]:
                yield t

    def snapshot(self, moment: datetime) -> Graph:
        """A plain graph of the state at *moment*."""
        g = Graph(identifier=f"{self.identifier or 'strabon'}@{moment}")
        g.namespaces = self.namespaces
        g.update(self.triples_at(moment))
        return g

    def triples_during(self, start: datetime, end: datetime
                       ) -> Iterable[Tuple[Triple, Interval]]:
        """Temporal triples whose interval overlaps ``[start, end)``."""
        start, end = to_utc(start), to_utc(end)
        for t, (s, e) in self._valid_time.items():
            if s < end and start < e:
                yield t, (s, e)

    @property
    def temporal_triple_count(self) -> int:
        return len(self._valid_time)

    def expose_valid_time(self) -> int:
        """Make valid times queryable through SPARQL (stSPARQL surface).

        Reifies each temporal triple as a ``strdf:TemporalTriple`` node
        carrying subject/predicate/object plus
        ``strdf:hasValidFrom`` / ``strdf:hasValidUntil`` instants, so
        plain (Geo)SPARQL with the ``strdf:`` comparison functions can
        query the history. Returns the number of reified statements.
        """
        from ..rdf.namespace import RDF, STRDF, XSD

        count = 0
        for triple, (start, end) in list(self._valid_time.items()):
            node = IRI(
                "http://strdf.di.uoa.gr/temporal/"
                + hashlib.sha1(triple.n3().encode()).hexdigest()[:16]
            )
            if (node, RDF.type, STRDF.TemporalTriple) in self:
                continue
            self.add(node, RDF.type, STRDF.TemporalTriple)
            self.add(node, RDF.subject, triple.s)
            self.add(node, RDF.predicate, triple.p)
            self.add(node, RDF.object, triple.o)
            self.add(node, STRDF.hasValidFrom,
                     Literal(start.isoformat(), datatype=XSD.dateTime))
            self.add(node, STRDF.hasValidUntil,
                     Literal(end.isoformat(), datatype=XSD.dateTime))
            count += 1
        return count

    # -- persistence -------------------------------------------------------------
    def save(self, path: str) -> None:
        """Persist dictionary-encoded triples + valid times to SQLite."""
        conn = sqlite3.connect(path)
        try:
            conn.executescript(
                """
                DROP TABLE IF EXISTS meta;
                DROP TABLE IF EXISTS terms;
                DROP TABLE IF EXISTS triples;
                CREATE TABLE meta (
                    key TEXT PRIMARY KEY,
                    value TEXT NOT NULL
                );
                CREATE TABLE terms (
                    id INTEGER PRIMARY KEY,
                    kind TEXT NOT NULL,
                    lexical TEXT NOT NULL,
                    datatype TEXT,
                    lang TEXT
                );
                CREATE TABLE triples (
                    s INTEGER NOT NULL,
                    p INTEGER NOT NULL,
                    o INTEGER NOT NULL,
                    valid_start TEXT,
                    valid_end TEXT
                );
                """
            )
            if self._shards is not None:
                conn.execute("INSERT INTO meta VALUES (?, ?)",
                             ("shards", str(self._shards.n)))
            # Reuse the graph's interning dictionary verbatim: the ids
            # on disk are exactly the in-memory ids, so save is a plain
            # dump of (dictionary, id-triples) with no re-hashing.
            conn.executemany(
                "INSERT INTO terms VALUES (?, ?, ?, ?, ?)",
                ((term_id,) + _term_key(term)
                 for term_id, term in self.dictionary.items()),
            )
            encode = self.dictionary.lookup
            for t in self:
                interval = self._valid_time.get(t)
                conn.execute(
                    "INSERT INTO triples VALUES (?, ?, ?, ?, ?)",
                    (
                        encode(t.s), encode(t.p), encode(t.o),
                        interval[0].isoformat() if interval else None,
                        interval[1].isoformat() if interval else None,
                    ),
                )
            conn.commit()
        finally:
            conn.close()

    @classmethod
    def load(cls, path: str, identifier: Optional[str] = None,
             shards: Optional[int] = None) -> "StrabonStore":
        """Load a store saved by :meth:`save`.

        A sharded store records its shard count in the ``meta`` table
        and restores it on load, so persistence round-trips the data
        plane layout; an explicit *shards* argument overrides the
        persisted value (e.g. to re-shard a dataset on load — routing
        is by stable subject hash, so any count yields the same query
        results).
        """
        conn = sqlite3.connect(path)
        try:
            if shards is None:
                try:
                    row = conn.execute(
                        "SELECT value FROM meta WHERE key = 'shards'"
                    ).fetchone()
                except sqlite3.OperationalError:
                    row = None  # pre-sharding database: no meta table
                if row is not None:
                    shards = int(row[0])
            store = cls(identifier, shards=shards)
            # Re-intern in id order so the loaded store's dictionary
            # assigns exactly the on-disk ids (ids are dense from 1 in
            # intern order).
            terms: Dict[int, Term] = {}
            for term_id, kind, lexical, datatype, lang in conn.execute(
                "SELECT id, kind, lexical, datatype, lang FROM terms"
                " ORDER BY id"
            ):
                term = _term_from_key((kind, lexical, datatype, lang))
                terms[term_id] = term
                store.dictionary.encode(term)
            for s, p, o, start, end in conn.execute(
                "SELECT s, p, o, valid_start, valid_end FROM triples"
            ):
                triple = Triple(terms[s], terms[p], terms[o])
                if start is not None:
                    store.add_with_time(
                        triple,
                        start=datetime.fromisoformat(start),
                        end=datetime.fromisoformat(end),
                    )
                else:
                    store.add(triple)
        finally:
            conn.close()
        return store


def _term_key(term: Term) -> Tuple:
    if isinstance(term, Literal):
        return ("literal", term.lexical,
                str(term.datatype) if term.datatype else None, term.lang)
    if isinstance(term, BNode):
        return ("bnode", str(term), None, None)
    return ("iri", str(term), None, None)


def _term_from_key(key: Tuple) -> Term:
    kind, lexical, datatype, lang = key
    if kind == "literal":
        return Literal(lexical, datatype=IRI(datatype) if datatype else None,
                       lang=lang)
    if kind == "bnode":
        return BNode(lexical)
    return IRI(lexical)
