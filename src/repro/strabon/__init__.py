"""Strabon spatiotemporal RDF store."""

from .store import StrabonStore

__all__ = ["StrabonStore"]
