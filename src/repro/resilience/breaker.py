"""A minimal circuit breaker for flaky remote endpoints.

After ``failure_threshold`` consecutive failures the circuit *opens*
and requests are skipped without touching the endpoint. Once
``reset_timeout_s`` has elapsed (per the injected clock) the circuit
goes *half-open*: one probe request is allowed through; success closes
the circuit, failure re-opens it for another full timeout.
"""

from __future__ import annotations

import time
from typing import Callable

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitOpenError(ConnectionError):
    """Raised when a request is skipped because the circuit is open."""


class CircuitBreaker:
    """Consecutive-failure circuit breaker with an injectable clock."""

    def __init__(self, failure_threshold: int = 5,
                 reset_timeout_s: float = 30.0,
                 clock: Callable[[], float] = time.monotonic):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.failure_threshold = failure_threshold
        self.reset_timeout_s = reset_timeout_s
        self._clock = clock
        self._consecutive_failures = 0
        self._state = CLOSED
        self._opened_at = 0.0

    @property
    def state(self) -> str:
        if self._state == OPEN:
            if self._clock() - self._opened_at >= self.reset_timeout_s:
                return HALF_OPEN
        return self._state

    def allow(self) -> bool:
        """May a request be issued right now?"""
        return self.state != OPEN

    def record_success(self) -> None:
        self._consecutive_failures = 0
        self._state = CLOSED

    def record_failure(self) -> None:
        if self.state == HALF_OPEN:
            # The probe failed: re-open for another full timeout.
            self._state = OPEN
            self._opened_at = self._clock()
            return
        self._consecutive_failures += 1
        if self._consecutive_failures >= self.failure_threshold:
            self._state = OPEN
            self._opened_at = self._clock()

    def __repr__(self) -> str:
        return (
            f"<CircuitBreaker {self.state} "
            f"failures={self._consecutive_failures}/"
            f"{self.failure_threshold}>"
        )
