"""A minimal circuit breaker for flaky remote endpoints.

After ``failure_threshold`` consecutive failures the circuit *opens*
and requests are skipped without touching the endpoint. Once
``reset_timeout_s`` has elapsed (per the injected clock) the circuit
goes *half-open*: exactly one probe request is allowed through per
half-open window; success closes the circuit, failure re-opens it for
another full timeout.

The single-probe rule matters under concurrency: when several workers
hit a half-open circuit at once, only the first :meth:`allow` wins the
probe slot — the others fast-fail with the circuit still effectively
open, instead of stampeding the recovering endpoint with N probes.
All state transitions are guarded by a lock so the breaker can be
shared by a :class:`~repro.parallel.WorkerPool` at any worker count.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitOpenError(ConnectionError):
    """Raised when a request is skipped because the circuit is open."""


class CircuitBreaker:
    """Consecutive-failure circuit breaker with an injectable clock."""

    def __init__(self, failure_threshold: int = 5,
                 reset_timeout_s: float = 30.0,
                 clock: Callable[[], float] = time.monotonic):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.failure_threshold = failure_threshold
        self.reset_timeout_s = reset_timeout_s
        self._clock = clock
        self._lock = threading.Lock()
        self._consecutive_failures = 0
        self._state = CLOSED
        self._opened_at = 0.0
        self._probe_in_flight = False
        #: Requests that hit a half-open circuit whose probe slot was
        #: already taken (fast-failed, no second probe issued).
        self.probe_fast_fails = 0

    def _state_locked(self) -> str:
        if self._state == OPEN:
            if self._clock() - self._opened_at >= self.reset_timeout_s:
                return HALF_OPEN
        return self._state

    @property
    def state(self) -> str:
        with self._lock:
            return self._state_locked()

    def allow(self) -> bool:
        """May a request be issued right now?

        In the half-open state only one caller wins the probe slot per
        window; concurrent callers get ``False`` (fast-fail) until the
        probe resolves via :meth:`record_success`,
        :meth:`record_failure` or :meth:`release_probe`.
        """
        with self._lock:
            state = self._state_locked()
            if state == OPEN:
                return False
            if state == HALF_OPEN:
                if self._probe_in_flight:
                    self.probe_fast_fails += 1
                    return False
                self._probe_in_flight = True
                return True
            return True

    def record_success(self) -> None:
        with self._lock:
            self._probe_in_flight = False
            self._consecutive_failures = 0
            self._state = CLOSED

    def record_failure(self) -> None:
        with self._lock:
            if self._state_locked() == HALF_OPEN:
                # The probe failed: re-open for another full timeout.
                self._probe_in_flight = False
                self._state = OPEN
                self._opened_at = self._clock()
                return
            self._consecutive_failures += 1
            if self._consecutive_failures >= self.failure_threshold:
                self._state = OPEN
                self._opened_at = self._clock()

    def release_probe(self) -> None:
        """Return an unresolved probe slot (the attempt was abandoned
        for reasons that say nothing about endpoint health, e.g. a
        budget cancellation mid-probe)."""
        with self._lock:
            self._probe_in_flight = False

    def __repr__(self) -> str:
        return (
            f"<CircuitBreaker {self.state} "
            f"failures={self._consecutive_failures}/"
            f"{self.failure_threshold}>"
        )
