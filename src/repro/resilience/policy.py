"""Retry with exponential backoff, deterministic jitter and timeouts.

The policy is fully injectable — clock, sleep and jitter seed — so the
failure-mode test suite runs instantly and reproducibly: the backoff
schedule for a given ``(seed, retry_index)`` pair is a pure function,
independent of call history.
"""

from __future__ import annotations

import random
import time
from typing import Callable, Optional, Tuple, Type, TypeVar

from .breaker import CircuitBreaker, CircuitOpenError
from .retry_budget import RetryBudget
from .stats import ResilienceStats

T = TypeVar("T")

#: Knuth multiplicative-hash constant; mixes seed and attempt index so
#: nearby seeds do not produce correlated jitter streams.
_MIX = 2654435761


class AttemptTimeout(ConnectionError):
    """An attempt exceeded the policy's per-attempt timeout."""


class RetryPolicy:
    """Bounded retries with exponential backoff and deterministic jitter.

    ``run(fn)`` calls ``fn`` up to ``max_attempts`` times, sleeping
    ``base_delay_s * multiplier**retry_index`` (capped at
    ``max_delay_s``, jittered by up to ``±jitter`` as a fraction)
    between attempts. An attempt whose duration — measured with the
    injected *clock* — exceeds ``attempt_timeout_s`` is treated as a
    failed attempt even if it returned.
    """

    def __init__(self, max_attempts: int = 3,
                 base_delay_s: float = 0.1,
                 multiplier: float = 2.0,
                 max_delay_s: float = 30.0,
                 jitter: float = 0.1,
                 attempt_timeout_s: Optional[float] = None,
                 retry_on: Tuple[Type[BaseException], ...] = (Exception,),
                 seed: int = 0,
                 clock: Callable[[], float] = time.monotonic,
                 sleep: Callable[[float], None] = time.sleep):
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.max_attempts = max_attempts
        self.base_delay_s = base_delay_s
        self.multiplier = multiplier
        self.max_delay_s = max_delay_s
        self.jitter = jitter
        self.attempt_timeout_s = attempt_timeout_s
        self.retry_on = retry_on
        self.seed = seed
        self.clock = clock
        self.sleep = sleep

    # -- schedule ----------------------------------------------------------
    def delay_for(self, retry_index: int) -> float:
        """Backoff before retry *retry_index* (0-based), jitter included."""
        delay = min(
            self.max_delay_s,
            self.base_delay_s * self.multiplier ** retry_index,
        )
        if self.jitter > 0:
            rng = random.Random(self.seed * _MIX + retry_index)
            delay *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return delay

    def backoff_schedule(self, retries: Optional[int] = None) -> list:
        """The delays a fully-retried request would sleep, in order."""
        n = self.max_attempts - 1 if retries is None else retries
        return [self.delay_for(i) for i in range(n)]

    # -- execution ---------------------------------------------------------
    def run(self, fn: Callable[[], T],
            stats: Optional[ResilienceStats] = None,
            breaker: Optional[CircuitBreaker] = None,
            budget_s: Optional[float] = None,
            tracer=None,
            retry_budget: Optional[RetryBudget] = None) -> T:
        """Call *fn* under this policy; returns its value or re-raises.

        Counters describe the run: attempts/retries per physical call,
        successes/failures once per *logical* request. When *breaker*
        is open the request is skipped with :class:`CircuitOpenError`.

        ``budget_s`` caps the whole run — retries included — at that
        many seconds on the policy clock: an attempt is not started,
        and a backoff not slept, past the cap. This is how a query's
        remaining deadline keeps retries from outliving the query.

        *retry_budget* throttles retry amplification: every attempt
        beyond the first must win a token, or the run stops and the
        last error propagates immediately (counted as
        ``retry_budget_denials``). The first attempt always runs and
        deposits into the bucket, so steady success keeps it funded.

        With a *tracer* each physical attempt becomes a
        ``retry.attempt`` span (attributes: 1-based ``attempt``,
        ``outcome`` of ok/error/timeout) under the current span, so a
        trace shows exactly which attempt of which fetch burned the
        time.
        """
        deadline = None if budget_s is None else self.clock() + budget_s
        last_exc: Optional[BaseException] = None
        if retry_budget is not None:
            retry_budget.on_request()
        for attempt in range(self.max_attempts):
            if deadline is not None and attempt and \
                    self.clock() >= deadline:
                break
            if breaker is not None and not breaker.allow():
                if stats is not None:
                    stats.open_circuit_skips += 1
                    stats.failures += 1
                raise CircuitOpenError(
                    "circuit open; request skipped"
                ) from last_exc
            if stats is not None:
                stats.attempts += 1
                if attempt:
                    stats.retries += 1
            span = None
            if tracer is not None:
                span = tracer.start_span("retry.attempt",
                                         attempt=attempt + 1)
                span.enter()
            start = self.clock()
            try:
                result = fn()
            except self.retry_on as exc:
                if span is not None:
                    span.attributes["outcome"] = "error"
                    span.exit()
                last_exc = exc
                if breaker is not None:
                    breaker.record_failure()
            except BaseException:
                # not retryable (e.g. a budget kill): close the span,
                # return any half-open probe slot this attempt held —
                # an abort says nothing about endpoint health — and
                # let it propagate untouched
                if span is not None:
                    span.attributes["outcome"] = "error"
                    span.exit()
                if breaker is not None:
                    breaker.release_probe()
                raise
            else:
                elapsed = self.clock() - start
                if (self.attempt_timeout_s is not None
                        and elapsed > self.attempt_timeout_s):
                    if span is not None:
                        span.attributes["outcome"] = "timeout"
                        span.exit()
                    last_exc = AttemptTimeout(
                        f"attempt {attempt + 1} took {elapsed:.3f}s "
                        f"(> {self.attempt_timeout_s:.3f}s)"
                    )
                    if stats is not None:
                        stats.timeouts += 1
                    if breaker is not None:
                        breaker.record_failure()
                else:
                    if span is not None:
                        span.attributes["outcome"] = "ok"
                        span.exit()
                    if stats is not None:
                        stats.successes += 1
                    if breaker is not None:
                        breaker.record_success()
                    return result
            if attempt + 1 < self.max_attempts:
                if retry_budget is not None \
                        and not retry_budget.acquire():
                    if stats is not None:
                        stats.retry_budget_denials += 1
                    break  # retry shed: the bucket is empty
                delay = self.delay_for(attempt)
                if deadline is not None and \
                        self.clock() + delay >= deadline:
                    break  # the backoff would outlive the budget
                self.sleep(delay)
        if stats is not None:
            stats.failures += 1
        assert last_exc is not None
        raise last_exc

    def __repr__(self) -> str:
        return (
            f"<RetryPolicy attempts={self.max_attempts} "
            f"base={self.base_delay_s}s x{self.multiplier} "
            f"timeout={self.attempt_timeout_s}>"
        )


#: A policy that never retries — used to unify code paths where retry
#: is optional; with one attempt ``run`` never sleeps.
def no_retry() -> RetryPolicy:
    return RetryPolicy(max_attempts=1, base_delay_s=0.0, jitter=0.0)
