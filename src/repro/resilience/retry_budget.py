"""Retry budgets: a token bucket that stops retry amplification.

Retries are a liability under overload: when an endpoint slows down,
every client retrying 3x turns 1x offered load into 3x — exactly when
the endpoint can least afford it. A *retry budget* (the gRPC/Envoy
scheme) bounds retries to a fraction of successful first attempts:
each completed request deposits ``ratio`` tokens, each retry or hedge
withdraws one. When the bucket is empty, retries are shed — the
original error propagates immediately instead of hammering a sick
endpoint.

The bucket is deterministic (no time-based refill — deposits come only
from request completions) and thread-safe, so one budget can be shared
by every request a tenant has in flight.
"""

from __future__ import annotations

import threading


class RetryBudget:
    """Token bucket limiting retries to a fraction of request volume.

    - :meth:`on_request` — a logical request completed (either way);
      deposits ``ratio`` tokens, capped at ``cap``.
    - :meth:`acquire` — spend one token to fund a retry or a hedge;
      returns ``False`` (and counts a denial) when the bucket is empty.

    ``initial`` pre-funds the bucket so cold starts can still retry;
    defaults to the cap.
    """

    def __init__(self, ratio: float = 0.1, cap: float = 10.0,
                 initial: float = None):
        if ratio < 0:
            raise ValueError("ratio must be >= 0")
        if cap <= 0:
            raise ValueError("cap must be > 0")
        self.ratio = float(ratio)
        self.cap = float(cap)
        self._tokens = self.cap if initial is None else float(initial)
        self._lock = threading.Lock()
        self.deposits = 0
        self.withdrawals = 0
        self.denials = 0

    @property
    def tokens(self) -> float:
        with self._lock:
            return self._tokens

    def on_request(self) -> None:
        with self._lock:
            self._tokens = min(self.cap, self._tokens + self.ratio)
            self.deposits += 1

    def acquire(self, cost: float = 1.0) -> bool:
        with self._lock:
            if self._tokens >= cost:
                self._tokens -= cost
                self.withdrawals += 1
                return True
            self.denials += 1
            return False

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "tokens": round(self._tokens, 6),
                "cap": self.cap,
                "ratio": self.ratio,
                "deposits": self.deposits,
                "withdrawals": self.withdrawals,
                "denials": self.denials,
            }

    def __repr__(self) -> str:
        return (f"<RetryBudget {self.tokens:.2f}/{self.cap:.0f} "
                f"ratio={self.ratio} denials={self.denials}>")
