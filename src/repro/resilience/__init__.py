"""Resilience layer: retries, circuit breaking, fault injection.

The paper's virtual data path (Section 5) stands or falls with how it
behaves when the remote OPeNDAP server or a federated SPARQL endpoint
is flaky. This package provides the pieces the rest of the stack wires
in:

- :class:`RetryPolicy` — bounded retries, exponential backoff with
  deterministic jitter, per-attempt timeouts, injectable clock/sleep;
- :class:`CircuitBreaker` — skip requests to a host that keeps failing,
  probe it again after a cool-down (one probe per half-open window);
- :class:`EndpointPool` — replica sets with rolling health windows,
  outlier ejection, half-open probe recovery and hedged requests;
- :class:`RetryBudget` — a token bucket that sheds retries/hedges
  before they amplify overload;
- :class:`FaultSchedule` / :class:`FaultyServer` /
  :class:`FaultyEndpoint` — seeded, deterministic fault injection for
  the failure-mode test suite;
- :class:`ResilienceStats` — one counter block threaded through the
  DAP client, the federation engine and the MadIS operator.
"""

from .breaker import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
    CircuitOpenError,
)
from .endpoint_pool import (
    ACTIVE,
    EJECTED,
    EndpointPool,
    HedgeOutcome,
    NoHealthyReplicas,
)
from .faults import (
    FaultSchedule,
    FaultyEndpoint,
    FaultyServer,
    InjectedFault,
    corrupt_body,
)
from .policy import AttemptTimeout, RetryPolicy, no_retry
from .retry_budget import RetryBudget
from .stats import ResilienceStats

__all__ = [
    "ACTIVE",
    "AttemptTimeout",
    "CLOSED",
    "CircuitBreaker",
    "CircuitOpenError",
    "EJECTED",
    "EndpointPool",
    "FaultSchedule",
    "FaultyEndpoint",
    "FaultyServer",
    "HALF_OPEN",
    "HedgeOutcome",
    "InjectedFault",
    "NoHealthyReplicas",
    "OPEN",
    "ResilienceStats",
    "RetryBudget",
    "RetryPolicy",
    "corrupt_body",
    "no_retry",
]
