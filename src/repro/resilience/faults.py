"""Deterministic fault injection for DAP servers and SPARQL endpoints.

A :class:`FaultSchedule` decides — as a pure function of the request
index and a seed — whether the Nth request fails, is delayed, or has
its payload corrupted. :class:`FaultyServer` and
:class:`FaultyEndpoint` wrap the in-process
:class:`~repro.opendap.DapServer` and
:class:`~repro.sparql.federation.SparqlEndpoint` respectively,
consuming one schedule slot per intercepted call. Same seed, same
schedule — so every failure-mode test is reproducible.
"""

from __future__ import annotations

import random
import time
from typing import Callable, Dict, List, Optional

from .policy import _MIX


class InjectedFault(ConnectionError):
    """The error raised for an injected request failure."""


class FaultSchedule:
    """Decides the fate of the Nth request (1-based), deterministically.

    Periodic rules (``fail_every=3`` fails every 3rd request) take
    precedence over seeded random rates (``fail_rate=0.3`` fails ~30%
    of requests, reproducibly for a given ``seed``). ``fail_first``
    fails the first N requests unconditionally — handy for probing
    cold-start behaviour.
    """

    FAIL = "fail"
    DELAY = "delay"
    CORRUPT = "corrupt"

    def __init__(self, seed: int = 0,
                 fail_every: Optional[int] = None,
                 delay_every: Optional[int] = None,
                 corrupt_every: Optional[int] = None,
                 fail_rate: float = 0.0,
                 delay_rate: float = 0.0,
                 corrupt_rate: float = 0.0,
                 delay_s: float = 0.05,
                 fail_first: int = 0):
        self.seed = seed
        self.fail_every = fail_every
        self.delay_every = delay_every
        self.corrupt_every = corrupt_every
        self.fail_rate = fail_rate
        self.delay_rate = delay_rate
        self.corrupt_rate = corrupt_rate
        self.delay_s = delay_s
        self.fail_first = fail_first

    @classmethod
    def dead(cls) -> "FaultSchedule":
        """A schedule that fails every request (an unreachable host)."""
        return cls(fail_every=1)

    def action(self, index: int) -> Optional[str]:
        """The fault (if any) for request *index* (1-based)."""
        if index <= self.fail_first:
            return self.FAIL
        if self.fail_every and index % self.fail_every == 0:
            return self.FAIL
        if self.delay_every and index % self.delay_every == 0:
            return self.DELAY
        if self.corrupt_every and index % self.corrupt_every == 0:
            return self.CORRUPT
        if self.fail_rate or self.delay_rate or self.corrupt_rate:
            draw = random.Random(self.seed * _MIX + index).random()
            if draw < self.fail_rate:
                return self.FAIL
            if draw < self.fail_rate + self.delay_rate:
                return self.DELAY
            if draw < self.fail_rate + self.delay_rate + self.corrupt_rate:
                return self.CORRUPT
        return None

    def plan(self, n: int) -> List[Optional[str]]:
        """The first *n* decisions — equal for equal parameters."""
        return [self.action(i) for i in range(1, n + 1)]


def corrupt_body(body: bytes) -> bytes:
    """Truncate and bit-flip a payload so decoding reliably fails."""
    half = body[: max(1, len(body) // 2)]
    return bytes(b ^ 0xFF for b in half)


class _FaultCounters:
    """Shared bookkeeping for the two wrappers."""

    def __init__(self, inner, schedule: FaultSchedule,
                 sleep: Optional[Callable[[float], None]] = None):
        self.inner = inner
        self.schedule = schedule
        self._sleep = sleep if sleep is not None else time.sleep
        self.request_index = 0
        self.injected: Dict[str, int] = {
            FaultSchedule.FAIL: 0,
            FaultSchedule.DELAY: 0,
            FaultSchedule.CORRUPT: 0,
        }

    def _next_action(self, what: str) -> Optional[str]:
        self.request_index += 1
        action = self.schedule.action(self.request_index)
        if action == FaultSchedule.FAIL:
            self.injected[action] += 1
            raise InjectedFault(
                f"injected failure on {what} request "
                f"#{self.request_index}"
            )
        if action == FaultSchedule.DELAY:
            self.injected[action] += 1
            if self.schedule.delay_s > 0:
                self._sleep(self.schedule.delay_s)
        return action

    def __getattr__(self, name):
        return getattr(self.inner, name)


class FaultyServer(_FaultCounters):
    """Wraps a :class:`~repro.opendap.DapServer` behind a fault schedule.

    Drop-in for a registry slot (``registry.wrap(host, lambda s:
    FaultyServer(s, schedule))``): everything except :meth:`request`
    delegates to the wrapped server.
    """

    def request(self, path_and_query: str) -> bytes:
        action = self._next_action(f"DAP {self.inner.host!r}")
        body = self.inner.request(path_and_query)
        if action == FaultSchedule.CORRUPT:
            self.injected[action] += 1
            body = corrupt_body(body)
        return body


class FaultyEndpoint(_FaultCounters):
    """Wraps a SPARQL endpoint; faults query/dispatch/pattern access.

    The wrapped endpoint's ``request_count`` keeps counting *logical*
    requests only: an injected failure raises before delegation, so a
    retried attempt is never double-counted downstream.
    """

    def query(self, text: str):
        self._next_action(f"SPARQL {self.inner.name!r} query")
        return self.inner.query(text)

    def select_group(self, group, seeds=None):
        self._next_action(f"SPARQL {self.inner.name!r} service")
        return self.inner.select_group(group, seeds)

    def triples(self, pattern):
        self._next_action(f"SPARQL {self.inner.name!r} triples")
        return self.inner.triples(pattern)

    def predicates(self):
        self._next_action(f"SPARQL {self.inner.name!r} predicates")
        return self.inner.predicates()
