"""Counters for the resilience layer.

One :class:`ResilienceStats` block is threaded through every component
that talks to a remote endpoint (DAP client, federation engine, MadIS
``opendap`` operator), so a single object answers "how flaky was the
network during this workload, and what did the stack do about it".
"""

from __future__ import annotations

from typing import Dict


class ResilienceStats:
    """Counters kept by :class:`~repro.resilience.RetryPolicy` users.

    - ``attempts``: physical requests issued (includes retried ones);
    - ``successes`` / ``failures``: *logical* request outcomes — a
      request retried twice and then answered counts one success;
    - ``retries``: attempts beyond the first for some logical request;
    - ``timeouts``: attempts discarded for exceeding the per-attempt
      timeout;
    - ``stale_serves``: responses served from an expired cache entry
      after all retries failed;
    - ``open_circuit_skips``: requests not attempted because a circuit
      breaker was open.
    """

    FIELDS = (
        "attempts",
        "successes",
        "retries",
        "failures",
        "timeouts",
        "stale_serves",
        "open_circuit_skips",
    )

    __slots__ = FIELDS

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        for field in self.FIELDS:
            setattr(self, field, 0)

    @property
    def logical_requests(self) -> int:
        return self.successes + self.failures

    def as_dict(self) -> Dict[str, int]:
        return {field: getattr(self, field) for field in self.FIELDS}

    def merge(self, other: "ResilienceStats") -> "ResilienceStats":
        """Add *other*'s counters into this block (returns self)."""
        for field in self.FIELDS:
            setattr(self, field, getattr(self, field) + getattr(other, field))
        return self

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{field}={getattr(self, field)}" for field in self.FIELDS
        )
        return f"<ResilienceStats {inner}>"
