"""Counters for the resilience layer.

One :class:`ResilienceStats` block is threaded through every component
that talks to a remote endpoint (DAP client, federation engine, MadIS
``opendap`` operator), so a single object answers "how flaky was the
network during this workload, and what did the stack do about it".

When one block serves several endpoints (a shared ``RetryPolicy``, a
federation engine with many SERVICE targets), per-endpoint attribution
comes from labeled children: ``stats.labeled(endpoint=iri)`` returns a
child block whose counts are included in the parent's totals — see
:class:`repro.observability.labeled.LabeledCounters`. The whole tree
can be exported through the metrics registry via
:func:`repro.observability.bridge.register_resilience`.
"""

from __future__ import annotations

from ..observability.labeled import LabeledCounters


class ResilienceStats(LabeledCounters):
    """Counters kept by :class:`~repro.resilience.RetryPolicy` users.

    - ``attempts``: physical requests issued (includes retried ones);
    - ``successes`` / ``failures``: *logical* request outcomes — a
      request retried twice and then answered counts one success;
    - ``retries``: attempts beyond the first for some logical request;
    - ``timeouts``: attempts discarded for exceeding the per-attempt
      timeout;
    - ``stale_serves``: responses served from an expired cache entry
      after all retries failed;
    - ``open_circuit_skips``: requests not attempted because a circuit
      breaker was open;
    - ``hedges`` / ``hedge_wins``: backup requests dispatched by an
      :class:`~repro.resilience.EndpointPool` past the hedge delay,
      and how many of them beat the primary;
    - ``retry_budget_denials``: retries or hedges shed because the
      :class:`~repro.resilience.RetryBudget` bucket was empty.
    """

    FIELDS = (
        "attempts",
        "successes",
        "retries",
        "failures",
        "timeouts",
        "stale_serves",
        "open_circuit_skips",
        "hedges",
        "hedge_wins",
        "retry_budget_denials",
    )

    @property
    def logical_requests(self) -> int:
        return self.successes + self.failures
