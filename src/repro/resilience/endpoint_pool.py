"""Replica pools with outlier ejection and hedged requests.

A federation source or DAP host is rarely a single process: it is a
replica set behind a name. :class:`EndpointPool` models that set with
per-replica rolling error/latency windows, ejects outliers (error rate
over threshold once enough samples exist), lets ejected replicas back
in through half-open probes (one probe per ejection window), and
*hedges* slow requests: when the primary attempt has run longer than a
quantile-derived delay, a backup attempt is dispatched to another
replica and the first success wins.

Everything is deterministic on an injected clock. Hedging is emulated
synchronously — the primary attempt is measured with the pool clock,
and only when its elapsed time exceeds the hedge delay is the backup
dispatched, exactly the condition under which a real hedger's timer
would have fired. The *effective* latency a client would have seen,
``min(primary, hedge_delay + backup)``, is recorded on
:class:`HedgeOutcome` (and is what the tail-latency benchmark sweeps);
the losing attempt's child :class:`~repro.governance.QueryBudget` is
cancelled so any further streamed work under it stops at the next
cancellation point.

Deadlines propagate: each attempt (primary, failover, hedge) receives
a child budget whose deadline is the parent's *remaining* time, so a
hedge can never outlive the query that spawned it. Hedges spend retry
budget tokens — under overload, hedging sheds before it amplifies.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..governance.budget import QueryBudget
from .retry_budget import RetryBudget
from .stats import ResilienceStats

ACTIVE = "active"
EJECTED = "ejected"


class NoHealthyReplicas(ConnectionError):
    """Every replica in the pool is ejected or has already failed."""


class HedgeOutcome:
    """What one :meth:`EndpointPool.call` did, for benchmarks/tests."""

    __slots__ = ("replica", "hedged", "hedge_replica", "winner",
                 "primary_latency_s", "hedge_latency_s",
                 "effective_latency_s", "failovers")

    def __init__(self, replica: str, effective_latency_s: float,
                 primary_latency_s: float, hedged: bool = False,
                 hedge_replica: Optional[str] = None,
                 hedge_latency_s: Optional[float] = None,
                 winner: str = "primary", failovers: int = 0):
        self.replica = replica
        self.hedged = hedged
        self.hedge_replica = hedge_replica
        self.winner = winner
        self.primary_latency_s = primary_latency_s
        self.hedge_latency_s = hedge_latency_s
        self.effective_latency_s = effective_latency_s
        self.failovers = failovers

    def as_dict(self) -> Dict[str, object]:
        return {slot: getattr(self, slot) for slot in self.__slots__}

    def __repr__(self) -> str:
        return (f"<HedgeOutcome {self.replica} winner={self.winner} "
                f"eff={self.effective_latency_s:.4f}s "
                f"hedged={self.hedged}>")


class _Replica:
    __slots__ = ("name", "endpoint", "state", "ejected_until",
                 "probe_in_flight", "window", "dispatches", "failures",
                 "ejections", "probes")

    def __init__(self, name: str, endpoint, window: int):
        self.name = name
        self.endpoint = endpoint
        self.state = ACTIVE
        self.ejected_until = 0.0
        self.probe_in_flight = False
        # rolling (ok, latency_s) samples, newest last
        self.window: deque = deque(maxlen=window)
        self.dispatches = 0
        self.failures = 0
        self.ejections = 0
        self.probes = 0

    def error_rate(self) -> float:
        if not self.window:
            return 0.0
        bad = sum(1 for ok, _ in self.window if not ok)
        return bad / len(self.window)

    def as_dict(self) -> Dict[str, object]:
        return {
            "state": self.state,
            "samples": len(self.window),
            "error_rate": round(self.error_rate(), 4),
            "dispatches": self.dispatches,
            "failures": self.failures,
            "ejections": self.ejections,
            "probes": self.probes,
        }


class EndpointPool:
    """Health-gated replica set with failover and hedged dispatch.

    *replicas* is an ordered ``(name, endpoint)`` sequence (or mapping);
    registration order is the deterministic tie-break everywhere. The
    work function handed to :meth:`call` receives
    ``(endpoint, attempt_budget)`` — the pool owns replica choice,
    the caller owns what a request means.
    """

    def __init__(self, name: str,
                 replicas,
                 clock: Callable[[], float] = time.monotonic,
                 window: int = 64,
                 min_samples: int = 8,
                 eject_error_rate: float = 0.5,
                 ejection_s: float = 30.0,
                 hedge: bool = True,
                 hedge_quantile: float = 0.95,
                 hedge_warmup: int = 8,
                 hedge_min_delay_s: float = 0.0,
                 failover_on: Tuple[type, ...] = (ConnectionError,
                                                  TimeoutError),
                 retry_budget: Optional[RetryBudget] = None,
                 stats: Optional[ResilienceStats] = None):
        if isinstance(replicas, dict):
            replicas = list(replicas.items())
        if not replicas:
            raise ValueError("a pool needs at least one replica")
        self.name = name
        self._clock = clock
        self.min_samples = min_samples
        self.eject_error_rate = eject_error_rate
        self.ejection_s = ejection_s
        self.hedge = hedge
        self.hedge_quantile = hedge_quantile
        self.hedge_warmup = hedge_warmup
        self.hedge_min_delay_s = hedge_min_delay_s
        self.failover_on = failover_on
        self.retry_budget = retry_budget
        self.stats = stats
        self._lock = threading.Lock()
        self._replicas: Dict[str, _Replica] = {}
        for rep_name, endpoint in replicas:
            if rep_name in self._replicas:
                raise ValueError(f"duplicate replica {rep_name!r}")
            self._replicas[rep_name] = _Replica(rep_name, endpoint,
                                                window)
        self._rr = 0
        #: optional subscriber called as ``on_event(event, payload)``
        #: after health transitions — ``sample`` on every recorded
        #: attempt, plus ``ejection`` / ``probe_success`` /
        #: ``probe_failure`` edges. Invoked outside the pool lock
        #: (re-entrant subscribers may read ``report()``); payloads are
        #: plain dicts carrying ``pool`` and ``replica``. The chaos
        #: harness feeds these into the flight recorder and per-pool
        #: SLOs.
        self.on_event: Optional[Callable[[str, Dict[str, object]],
                                         None]] = None
        # pool-wide latency window feeding the hedge-delay quantile
        self._latencies: deque = deque(maxlen=window * len(self._replicas))
        self.counters: Dict[str, int] = {
            "dispatches": 0, "failovers": 0,
            "hedges": 0, "hedge_wins": 0, "hedge_failures": 0,
            "hedges_denied": 0,
            "ejections": 0, "probes": 0,
            "probe_successes": 0, "probe_failures": 0,
        }
        self.last_outcome: Optional[HedgeOutcome] = None

    # -- health bookkeeping -------------------------------------------------
    def _record(self, rep: _Replica, ok: bool, latency_s: float,
                probe: bool = False) -> None:
        # events are gathered under the lock and emitted after it is
        # released, so subscribers may re-enter pool APIs safely
        events: List[Tuple[str, Dict[str, object]]] = []
        with self._lock:
            rep.window.append((ok, latency_s))
            if ok:
                self._latencies.append(latency_s)
            events.append(("sample", {
                "replica": rep.name, "ok": ok,
                "latency_s": round(latency_s, 9), "probe": probe,
            }))
            if probe:
                rep.probe_in_flight = False
                if ok:
                    self.counters["probe_successes"] += 1
                    rep.state = ACTIVE
                    rep.window.clear()
                    rep.window.append((True, latency_s))
                    events.append(("probe_success",
                                   {"replica": rep.name}))
                else:
                    self.counters["probe_failures"] += 1
                    rep.failures += 1
                    rep.state = EJECTED
                    rep.ejected_until = self._clock() + self.ejection_s
                    events.append(("probe_failure",
                                   {"replica": rep.name}))
            elif not ok:
                rep.failures += 1
                if (rep.state == ACTIVE
                        and len(rep.window) >= self.min_samples
                        and rep.error_rate() >= self.eject_error_rate):
                    rep.state = EJECTED
                    rep.ejected_until = self._clock() + self.ejection_s
                    rep.ejections += 1
                    self.counters["ejections"] += 1
                    events.append(("ejection", {
                        "replica": rep.name,
                        "error_rate": round(rep.error_rate(), 4),
                    }))
        if self.on_event is not None:
            for event, payload in events:
                payload["pool"] = self.name
                self.on_event(event, payload)

    def _pick(self, exclude: Sequence[str] = ()) -> Tuple[
            Optional[_Replica], bool]:
        """Choose the next replica; returns ``(replica, is_probe)``.

        A due half-open probe (ejection window elapsed, no probe in
        flight) takes priority over rotation, in registration order;
        otherwise active replicas are served round-robin.
        """
        with self._lock:
            now = self._clock()
            for rep in self._replicas.values():
                if (rep.state == EJECTED and rep.name not in exclude
                        and now >= rep.ejected_until
                        and not rep.probe_in_flight):
                    rep.probe_in_flight = True
                    rep.probes += 1
                    self.counters["probes"] += 1
                    return rep, True
            active = [r for r in self._replicas.values()
                      if r.state == ACTIVE and r.name not in exclude]
            if not active:
                return None, False
            rep = active[self._rr % len(active)]
            self._rr += 1
            return rep, False

    def hedge_delay(self) -> Optional[float]:
        """Quantile-derived backup-dispatch delay; None while warming."""
        with self._lock:
            if len(self._latencies) < self.hedge_warmup:
                return None
            ordered = sorted(self._latencies)
        rank = max(0, min(len(ordered) - 1,
                          int(self.hedge_quantile * len(ordered))))
        return max(self.hedge_min_delay_s, ordered[rank])

    # -- dispatch -----------------------------------------------------------
    def _child_budget(self, budget: Optional[QueryBudget]
                      ) -> Optional[QueryBudget]:
        """Deadline propagation: an attempt token bounded by what is
        left of the parent budget (charges still go to the parent at
        the call sites; the child is the attempt's cancel token)."""
        if budget is None:
            return None
        return QueryBudget(deadline_s=budget.remaining_s(),
                           clock=budget.clock,
                           hard_deadline=budget.hard_deadline)

    def _hedge_funded(self, budget: Optional[QueryBudget]) -> bool:
        bucket = getattr(budget, "retry_budget", None) or \
            self.retry_budget
        if bucket is None:
            return True
        if bucket.acquire():
            return True
        if self.stats is not None:
            self.stats.retry_budget_denials += 1
        return False

    def call(self, fn: Callable[..., object],
             budget: Optional[QueryBudget] = None,
             tracer=None):
        """Run ``fn(endpoint, attempt_budget)`` against the pool.

        Failures listed in ``failover_on`` move to the next replica
        (each failure feeds that replica's health window); other
        exceptions — budget kills included — propagate untouched.
        A slow primary success triggers one hedge attempt when the
        hedge delay is warmed up, the deadline has room and the retry
        budget funds it. First success wins; the loser's child budget
        is cancelled.
        """
        attempted: List[str] = []
        last_exc: Optional[BaseException] = None
        failovers = 0
        while True:
            rep, probe = self._pick(exclude=attempted)
            if rep is None:
                if last_exc is not None:
                    raise last_exc
                raise NoHealthyReplicas(
                    f"pool {self.name!r}: no healthy replicas")
            attempted.append(rep.name)
            with self._lock:
                rep.dispatches += 1
                self.counters["dispatches"] += 1
            # The hedge delay a real hedger would arm *now*, before
            # this request's own latency is known.
            delay = self.hedge_delay() if self.hedge else None
            child = self._child_budget(budget)
            span = None
            if tracer is not None:
                span = tracer.start_span("pool.dispatch",
                                         pool=self.name,
                                         replica=rep.name,
                                         probe=probe)
                span.enter()
            start = self._clock()
            try:
                value = fn(rep.endpoint, child)
            except self.failover_on as exc:
                elapsed = self._clock() - start
                self._record(rep, False, elapsed, probe=probe)
                if span is not None:
                    span.attributes["outcome"] = "error"
                    span.exit()
                last_exc = exc
                failovers += 1
                with self._lock:
                    self.counters["failovers"] += 1
                continue
            except BaseException:
                # Not a replica-health signal (budget kill, bug):
                # return the probe slot and propagate untouched.
                if probe:
                    with self._lock:
                        rep.probe_in_flight = False
                if span is not None:
                    span.attributes["outcome"] = "aborted"
                    span.exit()
                raise
            elapsed = self._clock() - start
            if span is not None:
                span.attributes["outcome"] = "ok"
                span.exit()
            outcome = HedgeOutcome(rep.name, elapsed, elapsed,
                                   failovers=failovers)
            if (delay is not None and elapsed > delay
                    and self._deadline_has_room(budget)
                    and self._hedge_funded(budget)):
                backup, backup_probe = self._pick(exclude=attempted)
                if backup is not None and not backup_probe:
                    value, outcome = self._run_hedge(
                        fn, budget, tracer, rep, backup, child,
                        value, elapsed, delay, failovers)
                elif backup is not None and backup_probe:
                    # A probe slot is not hedge capacity; hand it back.
                    with self._lock:
                        backup.probe_in_flight = False
            self._record(rep, True, outcome.primary_latency_s,
                         probe=probe)
            self.last_outcome = outcome
            return value

    def _deadline_has_room(self, budget: Optional[QueryBudget]) -> bool:
        if budget is None:
            return True
        remaining = budget.remaining_s()
        return remaining is None or remaining > 0.0

    def _run_hedge(self, fn, budget, tracer, primary: _Replica,
                   backup: _Replica, primary_child, primary_value,
                   primary_elapsed: float, delay: float,
                   failovers: int):
        with self._lock:
            backup.dispatches += 1
            self.counters["dispatches"] += 1
            self.counters["hedges"] += 1
        if self.stats is not None:
            self.stats.hedges += 1
        hedge_child = self._child_budget(budget)
        span = None
        if tracer is not None:
            span = tracer.start_span("pool.hedge", pool=self.name,
                                     replica=backup.name,
                                     primary=primary.name)
            span.enter()
        start = self._clock()
        try:
            hedge_value = fn(backup.endpoint, hedge_child)
        except self.failover_on:
            hedge_elapsed = self._clock() - start
            self._record(backup, False, hedge_elapsed)
            with self._lock:
                self.counters["hedge_failures"] += 1
            if span is not None:
                span.attributes["outcome"] = "error"
                span.exit()
            return primary_value, HedgeOutcome(
                primary.name, primary_elapsed, primary_elapsed,
                hedged=True, hedge_replica=backup.name,
                hedge_latency_s=hedge_elapsed, winner="primary",
                failovers=failovers)
        hedge_elapsed = self._clock() - start
        self._record(backup, True, hedge_elapsed)
        hedge_total = delay + hedge_elapsed
        if hedge_total < primary_elapsed:
            # Backup answered first: the primary is the loser.
            if primary_child is not None:
                primary_child.cancel("hedge won; primary cancelled")
            with self._lock:
                self.counters["hedge_wins"] += 1
            if self.stats is not None:
                self.stats.hedge_wins += 1
            if span is not None:
                span.attributes["outcome"] = "won"
                span.exit()
            return hedge_value, HedgeOutcome(
                primary.name, hedge_total, primary_elapsed,
                hedged=True, hedge_replica=backup.name,
                hedge_latency_s=hedge_elapsed, winner="hedge",
                failovers=failovers)
        if hedge_child is not None:
            hedge_child.cancel("hedge lost")
        if span is not None:
            span.attributes["outcome"] = "lost"
            span.exit()
        return primary_value, HedgeOutcome(
            primary.name, primary_elapsed, primary_elapsed,
            hedged=True, hedge_replica=backup.name,
            hedge_latency_s=hedge_elapsed, winner="primary",
            failovers=failovers)

    # -- reporting ----------------------------------------------------------
    def active_count(self) -> int:
        with self._lock:
            return sum(1 for r in self._replicas.values()
                       if r.state == ACTIVE)

    def replica_names(self) -> List[str]:
        return list(self._replicas)

    def replica(self, name: str) -> _Replica:
        return self._replicas[name]

    def report(self) -> Dict[str, object]:
        with self._lock:
            replicas = {name: rep.as_dict()
                        for name, rep in self._replicas.items()}
            counters = dict(self.counters)
        report: Dict[str, object] = {
            "pool": self.name,
            "replicas": replicas,
            "counters": counters,
        }
        delay = self.hedge_delay()
        report["hedge_delay_s"] = (None if delay is None
                                   else round(delay, 6))
        return report

    def __repr__(self) -> str:
        return (f"<EndpointPool {self.name!r} "
                f"{self.active_count()}/{len(self._replicas)} active>")
