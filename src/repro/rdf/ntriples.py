"""N-Triples parser and serializer (line-based RDF exchange format)."""

from __future__ import annotations

import re
from typing import Optional

from ..errors import ParseError as CommonParseError
from .graph import Graph
from .terms import BNode, IRI, Literal, Triple

_IRI_RE = re.compile(r"<([^<>\"{}|^`\\\s]*)>")
_BNODE_RE = re.compile(r"_:([A-Za-z0-9_.-]+)")
_LITERAL_RE = re.compile(
    r'"((?:[^"\\]|\\.)*)"'
    r"(?:\^\^<([^<>\s]+)>|@([A-Za-z]+(?:-[A-Za-z0-9]+)*))?"
)

_ESCAPES = {
    "\\t": "\t",
    "\\n": "\n",
    "\\r": "\r",
    '\\"': '"',
    "\\\\": "\\",
}


def unescape(text: str) -> str:
    """Decode N-Triples string escapes including \\uXXXX / \\UXXXXXXXX."""

    def replace(m: re.Match) -> str:
        esc = m.group(0)
        if esc in _ESCAPES:
            return _ESCAPES[esc]
        if esc.startswith("\\u"):
            return chr(int(esc[2:], 16))
        if esc.startswith("\\U"):
            return chr(int(esc[2:], 16))
        raise ParseError(f"bad escape {esc!r}")

    return re.sub(r"\\U[0-9A-Fa-f]{8}|\\u[0-9A-Fa-f]{4}|\\.", replace, text)


def escape(text: str) -> str:
    return (
        text.replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
        .replace("\r", "\\r")
        .replace("\t", "\\t")
    )


class ParseError(CommonParseError):
    """Raised on malformed N-Triples/Turtle input."""


def _parse_term(text: str, pos: int):
    """Parse one term starting at *pos*; returns (term, new_pos)."""
    while pos < len(text) and text[pos] in " \t":
        pos += 1
    if pos >= len(text):
        raise ParseError("unexpected end of statement", position=pos)
    ch = text[pos]
    if ch == "<":
        m = _IRI_RE.match(text, pos)
        if not m:
            raise ParseError(f"bad IRI at {text[pos:pos+40]!r}", position=pos)
        return IRI(unescape(m.group(1))), m.end()
    if ch == "_":
        m = _BNODE_RE.match(text, pos)
        if not m:
            raise ParseError(f"bad blank node at {text[pos:pos+40]!r}",
                             position=pos)
        return BNode(m.group(1)), m.end()
    if ch == '"':
        m = _LITERAL_RE.match(text, pos)
        if not m:
            raise ParseError(f"bad literal at {text[pos:pos+40]!r}",
                             position=pos)
        lexical = unescape(m.group(1))
        datatype = IRI(m.group(2)) if m.group(2) else None
        lang = m.group(3)
        return Literal(lexical, datatype=datatype, lang=lang), m.end()
    raise ParseError(f"unexpected character {ch!r}", position=pos)


def parse_ntriples(text: str, graph: Optional[Graph] = None) -> Graph:
    """Parse N-Triples *text* into *graph* (a new Graph if omitted)."""
    graph = graph if graph is not None else Graph()
    # N-Triples lines are LF-terminated; do NOT use str.splitlines(),
    # which also splits on U+2028/U+0085 that may occur inside literals.
    for lineno, raw in enumerate(text.split("\n"), start=1):
        line = raw.strip(" \t\r")
        if not line or line.startswith("#"):
            continue
        try:
            s, pos = _parse_term(line, 0)
            if isinstance(s, Literal):
                raise ParseError("subject cannot be a literal")
            p, pos = _parse_term(line, pos)
            if not isinstance(p, IRI):
                raise ParseError("predicate must be an IRI")
            o, pos = _parse_term(line, pos)
            rest = line[pos:].strip()
            if rest != ".":
                raise ParseError(f"expected terminating '.', got {rest!r}")
        except ParseError as exc:
            raise ParseError(f"line {lineno}: {exc}",
                             position=exc.position) from None
        except (ValueError, IndexError) as exc:
            # e.g. chr() range errors from wild \U escapes — surface as
            # the typed parse error, never a bare builtin.
            raise ParseError(f"line {lineno}: {exc}") from None
        graph.add(Triple(s, p, o))
    return graph


def serialize_ntriples(graph: Graph) -> str:
    """Serialize a graph as sorted N-Triples text."""
    lines = sorted(t.n3() for t in graph)
    return "\n".join(lines) + ("\n" if lines else "")
