"""Hash-sharded SPO/POS/OSP index segments.

The sharded data plane partitions a graph's triples into ``N``
independent index shards, routed by a **stable hash of the subject
id** (:func:`shard_of`).  Subject-bound scans touch exactly one shard;
unbound-subject scans fan out across all shards — optionally on a
:class:`~repro.parallel.pool.WorkerPool` — and are merged back into a
single **canonical ascending (s, p, o) order** so the merged stream is
byte-identical at any shard count and any worker count.

Determinism rules this module lives by:

- routing never uses Python's ``hash()`` (``PYTHONHASHSEED`` varies);
  :func:`shard_of` is a fixed integer mixing function;
- a subject's triples live in exactly one shard for every ``N``, and
  per-shard insertion order equals the global insertion order filtered
  to that shard, so subject-bound scans need no sort;
- unbound-subject scans sort each shard's matches and ``heapq.merge``
  the runs, which makes the merged order independent of both the shard
  count and the order shard tasks happen to finish in.

The module is under the determinism lint's *total* ``time.`` /
``random.`` ban (same tier as the chaos layer): it may hold no clock
and draw no randomness at all.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..parallel.partition import merge_sorted_runs

IdTriple = Tuple[int, int, int]
IdPattern = Tuple[Optional[int], Optional[int], Optional[int]]

#: Default number of id-triples per flat batch pulled by the batched
#: BGP scan path (see ``Graph.scan_batches``). 256 triples = 768 ints
#: per batch: large enough to amortize per-batch budget charges, small
#: enough to keep operator state bounded.
DEFAULT_BATCH_SIZE = 256

# splitmix64 finalizer constants — a fixed avalanche mix so shard
# routing is stable across processes (never Python's salted hash()).
_MASK64 = (1 << 64) - 1
_MIX_A = 0xBF58476D1CE4E5B9
_MIX_B = 0x94D049BB133111EB
_GOLDEN = 0x9E3779B97F4A7C15


def shard_of(subject_id: int, n_shards: int) -> int:
    """Stable shard index for *subject_id* under *n_shards* shards."""
    if n_shards <= 1:
        return 0
    x = (subject_id + _GOLDEN) & _MASK64
    x = ((x ^ (x >> 30)) * _MIX_A) & _MASK64
    x = ((x ^ (x >> 27)) * _MIX_B) & _MASK64
    x ^= x >> 31
    return x % n_shards


class IndexShard:
    """One SPO/POS/OSP index segment (the triples routed to it)."""

    __slots__ = ("spo", "pos", "osp", "n_triples")

    def __init__(self):
        self.spo: Dict[int, Dict[int, Set[int]]] = {}
        self.pos: Dict[int, Dict[int, Set[int]]] = {}
        self.osp: Dict[int, Dict[int, Set[int]]] = {}
        self.n_triples = 0

    def add(self, s: int, p: int, o: int) -> None:
        self.spo.setdefault(s, {}).setdefault(p, set()).add(o)
        self.pos.setdefault(p, {}).setdefault(o, set()).add(s)
        self.osp.setdefault(o, {}).setdefault(s, set()).add(p)
        self.n_triples += 1

    def discard(self, s: int, p: int, o: int) -> None:
        self._discard(self.spo, s, p, o)
        self._discard(self.pos, p, o, s)
        self._discard(self.osp, o, s, p)
        self.n_triples -= 1

    @staticmethod
    def _discard(index, a: int, b: int, c: int) -> None:
        by_b = index.get(a)
        if by_b is None:
            return
        leaf = by_b.get(b)
        if leaf is None:
            return
        leaf.discard(c)
        if not leaf:
            del by_b[b]
            if not by_b:
                del index[a]

    def matching(self, ids: IdPattern) -> Iterator[IdTriple]:
        """Triples in this shard matching *ids* (``None`` = wildcard)."""
        s, p, o = ids
        if s is not None:
            by_p = self.spo.get(s)
            if not by_p:
                return
            if p is not None:
                for oo in by_p.get(p, ()):
                    if o is None or oo == o:
                        yield (s, p, oo)
            else:
                for pp, objs in by_p.items():
                    for oo in objs:
                        if o is None or oo == o:
                            yield (s, pp, oo)
            return
        if p is not None:
            by_o = self.pos.get(p)
            if not by_o:
                return
            if o is not None:
                for ss in by_o.get(o, ()):
                    yield (ss, p, o)
            else:
                for oo, subs in by_o.items():
                    for ss in subs:
                        yield (ss, p, oo)
            return
        if o is not None:
            by_s = self.osp.get(o)
            if not by_s:
                return
            for ss, preds in by_s.items():
                for pp in preds:
                    yield (ss, pp, o)
            return
        for ss, by_p in self.spo.items():
            for pp, objs in by_p.items():
                for oo in objs:
                    yield (ss, pp, oo)

    def count_matching(self, ids: IdPattern) -> int:
        """Number of matches for *ids* without enumerating them.

        O(1) for subject/pair-bound shapes, O(distinct-values) for the
        single-predicate / single-object shapes — always cheaper than a
        scan, which is what lets ``scan_batches`` prune empty shards
        before submitting WorkerPool tasks.
        """
        s, p, o = ids
        if s is not None:
            by_p = self.spo.get(s)
            if not by_p:
                return 0
            if p is not None:
                leaf = by_p.get(p, ())
                if o is not None:
                    return 1 if o in leaf else 0
                return len(leaf)
            if o is not None:
                return len(self.osp.get(o, {}).get(s, ()))
            return sum(len(objs) for objs in by_p.values())
        if p is not None:
            by_o = self.pos.get(p)
            if not by_o:
                return 0
            if o is not None:
                return len(by_o.get(o, ()))
            return sum(len(subs) for subs in by_o.values())
        if o is not None:
            return sum(len(preds) for preds in self.osp.get(o, {}).values())
        return self.n_triples

    def shell_sizes(self) -> Tuple[int, int, int]:
        return len(self.spo), len(self.pos), len(self.osp)


class ShardedIndex:
    """N independent :class:`IndexShard` segments routed by subject id."""

    __slots__ = ("n", "shards")

    def __init__(self, n_shards: int):
        if n_shards < 1:
            raise ValueError(f"shard count must be >= 1, got {n_shards}")
        self.n = n_shards
        self.shards = [IndexShard() for _ in range(n_shards)]

    def shard_for(self, subject_id: int) -> IndexShard:
        return self.shards[shard_of(subject_id, self.n)]

    def add(self, s: int, p: int, o: int) -> None:
        self.shard_for(s).add(s, p, o)

    def discard(self, s: int, p: int, o: int) -> None:
        self.shard_for(s).discard(s, p, o)

    def matching(self, ids: IdPattern) -> Iterator[IdTriple]:
        """All matches for *ids* in the canonical cross-shard order.

        Subject-bound patterns stream straight from the routed shard in
        its insertion order (identical to the global insertion order
        restricted to that subject, hence shard-count independent).
        Unbound-subject patterns merge per-shard sorted runs into
        ascending (s, p, o) order — canonical for every shard count.
        """
        s = ids[0]
        if s is not None:
            yield from self.shard_for(s).matching(ids)
            return
        runs = [self.scan_sorted(k, ids) for k in range(self.n)]
        yield from merge_sorted_runs(runs)

    def scan_sorted(self, shard_index: int, ids: IdPattern) -> List[IdTriple]:
        """One shard's matches as a sorted run (merge input)."""
        return sorted(self.shards[shard_index].matching(ids))

    def cardinalities(self, ids: IdPattern) -> List[int]:
        """Per-shard match counts for *ids* (scan-task pruning/skew)."""
        s = ids[0]
        if s is not None:
            k = shard_of(s, self.n)
            counts = [0] * self.n
            counts[k] = self.shards[k].count_matching(ids)
            return counts
        return [shard.count_matching(ids) for shard in self.shards]

    def pair_cardinality(self, ids: IdPattern) -> int:
        """Exact cardinality for the two-bound pattern shapes."""
        s, p, o = ids
        if s is not None:
            # (s,p) and (s,o) route to one shard
            return self.shard_for(s).count_matching(ids)
        # (p,o): the subject is unbound, so the pairs straddle shards
        return sum(len(shard.pos.get(p, {}).get(o, ()))
                   for shard in self.shards)

    def shell_sizes(self) -> Tuple[int, int, int]:
        """Aggregate (spo, pos, osp) top-level entry counts.

        Subjects never straddle shards, so the spo sum equals the
        number of distinct subjects; pos/osp sums count per-shard
        entries (a predicate used in every shard contributes N).
        """
        spo = pos = osp = 0
        for shard in self.shards:
            a, b, c = shard.shell_sizes()
            spo += a
            pos += b
            osp += c
        return spo, pos, osp
