"""Turtle (Terse RDF Triple Language) parser and serializer.

Supports the subset of Turtle the stack emits and consumes: prefix
directives, prefixed names, ``a``, predicate (``;``) and object (``,``)
lists, anonymous blank nodes ``[ ... ]``, numeric/boolean shorthand,
typed and language-tagged literals, and long (triple-quoted) strings.
RDF collections ``( ... )`` are parsed into rdf:first/rdf:rest chains.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from .graph import Graph
from .namespace import RDF, XSD
from .ntriples import ParseError, escape, unescape
from .terms import BNode, IRI, Literal, Term, Triple

_PNAME_RE = re.compile(r"([A-Za-z_][\w.-]*)?:([\w.%-]*(?:[\w%-]|$))?")
_NUMBER_RE = re.compile(r"[-+]?(?:\d+\.\d*|\.\d+|\d+)(?:[eE][-+]?\d+)?")
_LANG_RE = re.compile(r"@([A-Za-z]+(?:-[A-Za-z0-9]+)*)")


class _TurtleParser:
    def __init__(self, text: str, graph: Graph):
        self.text = text
        self.pos = 0
        self.graph = graph
        self.base = ""

    # -- scanning helpers --------------------------------------------------
    def _skip(self) -> None:
        while self.pos < len(self.text):
            ch = self.text[self.pos]
            if ch in " \t\r\n":
                self.pos += 1
            elif ch == "#":
                nl = self.text.find("\n", self.pos)
                self.pos = len(self.text) if nl == -1 else nl + 1
            else:
                return

    def _peek(self) -> str:
        self._skip()
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def _expect(self, token: str) -> None:
        self._skip()
        if not self.text.startswith(token, self.pos):
            context = self.text[self.pos: self.pos + 40]
            raise ParseError(f"expected {token!r} at {context!r}",
                             position=self.pos)
        self.pos += len(token)

    def _match_keyword(self, word: str) -> bool:
        self._skip()
        if self.text[self.pos: self.pos + len(word)].lower() == word.lower():
            end = self.pos + len(word)
            if end >= len(self.text) or not (
                self.text[end].isalnum() or self.text[end] == "_"
            ):
                self.pos = end
                return True
        return False

    # -- grammar -------------------------------------------------------------
    def parse(self) -> None:
        while True:
            self._skip()
            if self.pos >= len(self.text):
                return
            if self._match_keyword("@prefix") or self._match_keyword("prefix"):
                self._directive(expect_dot=self.text[self.pos - 1] != "x"
                                or True)
                continue
            if self._match_keyword("@base") or self._match_keyword("base"):
                self._base_directive()
                continue
            self._triples_block()
            self._expect(".")

    def _directive(self, expect_dot: bool) -> None:
        self._skip()
        m = re.match(r"([A-Za-z_][\w.-]*)?:", self.text[self.pos:])
        if not m:
            raise ParseError("bad @prefix directive", position=self.pos)
        prefix = m.group(1) or ""
        self.pos += m.end()
        iri = self._iri_ref()
        self.graph.bind(prefix, str(iri))
        self._skip()
        if self._peek() == ".":
            self._expect(".")

    def _base_directive(self) -> None:
        iri = self._iri_ref()
        self.base = str(iri)
        self._skip()
        if self._peek() == ".":
            self._expect(".")

    def _triples_block(self) -> None:
        subject = self._subject()
        self._predicate_object_list(subject)

    def _predicate_object_list(self, subject: Term) -> None:
        while True:
            predicate = self._predicate()
            while True:
                obj = self._object()
                self.graph.add(Triple(subject, predicate, obj))
                if self._peek() == ",":
                    self._expect(",")
                    continue
                break
            if self._peek() == ";":
                self._expect(";")
                if self._peek() in (".", "]", ";", ""):
                    while self._peek() == ";":
                        self._expect(";")
                    return
                continue
            return

    def _subject(self) -> Term:
        ch = self._peek()
        if ch == "<":
            return self._iri_ref()
        if ch == "_":
            return self._bnode_label()
        if ch == "[":
            return self._anon_bnode()
        if ch == "(":
            return self._collection()
        return self._pname()

    def _predicate(self) -> IRI:
        if self._match_keyword("a"):
            return RDF.type
        ch = self._peek()
        if ch == "<":
            return self._iri_ref()
        term = self._pname()
        if not isinstance(term, IRI):
            raise ParseError("predicate must be an IRI", position=self.pos)
        return term

    def _object(self) -> Term:
        ch = self._peek()
        if ch == "<":
            return self._iri_ref()
        if ch == "_":
            return self._bnode_label()
        if ch == "[":
            return self._anon_bnode()
        if ch == "(":
            return self._collection()
        if ch in "\"'":
            return self._literal()
        if ch.isdigit() or ch in "+-." and _NUMBER_RE.match(
            self.text, self.pos
        ):
            return self._number()
        if self._match_keyword("true"):
            return Literal(True)
        if self._match_keyword("false"):
            return Literal(False)
        return self._pname()

    def _iri_ref(self) -> IRI:
        self._expect("<")
        end = self.text.find(">", self.pos)
        if end == -1:
            raise ParseError("unterminated IRI", position=self.pos)
        raw = self.text[self.pos: end]
        self.pos = end + 1
        iri = unescape(raw)
        if self.base and not re.match(r"^[A-Za-z][A-Za-z0-9+.-]*:", iri):
            iri = self.base + iri
        return IRI(iri)

    def _bnode_label(self) -> BNode:
        self._expect("_:")
        m = re.match(r"[\w.-]+", self.text[self.pos:])
        if not m:
            raise ParseError("bad blank node label", position=self.pos)
        self.pos += m.end()
        return BNode(m.group(0))

    def _anon_bnode(self) -> BNode:
        self._expect("[")
        node = BNode()
        if self._peek() != "]":
            self._predicate_object_list(node)
        self._expect("]")
        return node

    def _collection(self) -> Term:
        self._expect("(")
        items: List[Term] = []
        while self._peek() != ")":
            items.append(self._object())
        self._expect(")")
        if not items:
            return RDF.nil
        head = BNode()
        node = head
        for i, item in enumerate(items):
            self.graph.add(Triple(node, RDF.first, item))
            if i == len(items) - 1:
                self.graph.add(Triple(node, RDF.rest, RDF.nil))
            else:
                nxt = BNode()
                self.graph.add(Triple(node, RDF.rest, nxt))
                node = nxt
        return head

    def _pname(self) -> IRI:
        self._skip()
        m = _PNAME_RE.match(self.text, self.pos)
        if not m or ":" not in m.group(0):
            context = self.text[self.pos: self.pos + 40]
            raise ParseError(f"expected prefixed name at {context!r}",
                             position=self.pos)
        self.pos = m.end()
        prefix = m.group(1) or ""
        local = m.group(2) or ""
        try:
            return self.graph.namespaces.expand(f"{prefix}:{local}")
        except ValueError as exc:
            raise ParseError(str(exc), position=self.pos) from None

    def _literal(self) -> Literal:
        self._skip()
        for quote in ('"""', "'''", '"', "'"):
            if self.text.startswith(quote, self.pos):
                break
        else:  # pragma: no cover - _object guards this
            raise ParseError("expected literal", position=self.pos)
        self.pos += len(quote)
        if len(quote) == 3:
            end = self.text.find(quote, self.pos)
            if end == -1:
                raise ParseError("unterminated long string", position=self.pos)
            raw = self.text[self.pos: end]
            self.pos = end + 3
        else:
            chars = []
            while True:
                if self.pos >= len(self.text):
                    raise ParseError("unterminated string", position=self.pos)
                ch = self.text[self.pos]
                if ch == "\\":
                    chars.append(self.text[self.pos: self.pos + 2])
                    self.pos += 2
                    continue
                if ch == quote:
                    self.pos += 1
                    break
                chars.append(ch)
                self.pos += 1
            raw = "".join(chars)
        lexical = unescape(raw)
        if self.text.startswith("^^", self.pos):
            self.pos += 2
            if self._peek() == "<":
                dt = self._iri_ref()
            else:
                dt = self._pname()
            return Literal(lexical, datatype=dt)
        m = _LANG_RE.match(self.text, self.pos)
        if m:
            self.pos = m.end()
            return Literal(lexical, lang=m.group(1))
        return Literal(lexical)

    def _number(self) -> Literal:
        self._skip()
        m = _NUMBER_RE.match(self.text, self.pos)
        if not m:
            raise ParseError("expected number", position=self.pos)
        self.pos = m.end()
        token = m.group(0)
        if "e" in token.lower():
            return Literal(token, datatype=XSD.double)
        if "." in token:
            return Literal(token, datatype=XSD.decimal)
        return Literal(int(token))


def parse_turtle(text: str, graph: Optional[Graph] = None) -> Graph:
    """Parse Turtle *text* into *graph* (a new Graph if omitted).

    Malformed input raises :class:`~repro.rdf.ntriples.ParseError` (a
    :class:`repro.errors.ParseError`) — never a bare ``ValueError`` /
    ``IndexError`` leaked from the scanner internals.
    """
    graph = graph if graph is not None else Graph()
    parser = _TurtleParser(text, graph)
    try:
        parser.parse()
    except ParseError:
        raise
    except (ValueError, IndexError, RecursionError) as exc:
        raise ParseError(f"malformed Turtle: {exc}",
                         position=parser.pos) from None
    return graph


# ---------------------------------------------------------------------------
# Serializer
# ---------------------------------------------------------------------------

def _term_turtle(term: Term, graph: Graph) -> str:
    if isinstance(term, Literal):
        if term.lang:
            return f'"{escape(term.lexical)}"@{term.lang}'
        if term.datatype and term.datatype != XSD.string:
            dt_q = graph.namespaces.qname(term.datatype)
            dt = dt_q if dt_q else f"<{term.datatype}>"
            return f'"{escape(term.lexical)}"^^{dt}'
        return f'"{escape(term.lexical)}"'
    if isinstance(term, BNode):
        return term.n3()
    if isinstance(term, IRI):
        q = graph.namespaces.qname(term)
        return q if q else term.n3()
    raise TypeError(f"not a term: {term!r}")


def serialize_turtle(graph: Graph) -> str:
    """Serialize a graph as Turtle grouped by subject."""
    used_prefixes = set()

    def render(term: Term) -> str:
        text = _term_turtle(term, graph)
        if ":" in text and not text.startswith(("<", '"', "_:")):
            used_prefixes.add(text.split(":", 1)[0])
        if "^^" in text and not text.endswith(">"):
            used_prefixes.add(text.rsplit("^^", 1)[1].split(":", 1)[0])
        return text

    by_subject = {}
    for t in graph:
        by_subject.setdefault(t.s, []).append(t)

    blocks = []
    for subject in sorted(by_subject, key=str):
        rows = by_subject[subject]
        by_pred = {}
        for t in rows:
            by_pred.setdefault(t.p, []).append(t.o)
        pred_parts = []
        for pred in sorted(by_pred, key=str):
            if pred == RDF.type:
                pred_text = "a"
            else:
                pred_text = render(pred)
            objs = ", ".join(
                render(o) for o in sorted(by_pred[pred], key=str)
            )
            pred_parts.append(f"{pred_text} {objs}")
        body = " ;\n    ".join(pred_parts)
        blocks.append(f"{render(subject)} {body} .")

    header_lines = []
    for prefix, ns in graph.namespaces.namespaces():
        if prefix in used_prefixes:
            header_lines.append(f"@prefix {prefix}: <{ns}> .")
    header = "\n".join(header_lines)
    body = "\n\n".join(blocks)
    if header and body:
        return header + "\n\n" + body + "\n"
    return (header or body) + ("\n" if (header or body) else "")
