"""Term dictionary: interning RDF terms as dense integer ids.

Strabon's storage layer (Kyzirakos et al., ISWC 2012) dictionary-encodes
every RDF term so that joins, indexes and persistence all operate on
integers; terms are decoded back only when results leave the engine.
:class:`TermDictionary` is that component for the in-memory stack: the
:class:`~repro.rdf.graph.Graph` keys its SPO/POS/OSP indexes by id, the
SPARQL physical operators join on ids, and ``StrabonStore`` persists the
dictionary verbatim instead of re-hashing terms.

Ids are dense, start at 1 (0 is reserved as "no term") and are assigned
in first-intern order, which keeps every downstream structure
deterministic for a given insertion sequence.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from .terms import Term

#: Reserved id meaning "no term" (wildcards, absent optional columns).
NO_TERM = 0


class TermDictionary:
    """A bidirectional term <-> int-id mapping (interning dictionary)."""

    __slots__ = ("_terms", "_ids")

    def __init__(self):
        # index 0 is the NO_TERM sentinel so ids index _terms directly
        self._terms: List[Optional[Term]] = [None]
        self._ids: Dict[Term, int] = {}

    def encode(self, term: Term) -> int:
        """Intern *term*, returning its (possibly fresh) id."""
        term_id = self._ids.get(term)
        if term_id is None:
            term_id = len(self._terms)
            self._terms.append(term)
            self._ids[term] = term_id
        return term_id

    def lookup(self, term: Term) -> Optional[int]:
        """The id of *term* if already interned, else ``None``."""
        return self._ids.get(term)

    def encode_batch(self, terms: Iterable[Term]) -> List[int]:
        """Intern a batch of terms, returning their ids in order.

        The bulk-load companion of :meth:`encode` for the batched data
        plane: loaders hand over whole term columns instead of calling
        ``encode`` per triple position.
        """
        encode = self.encode
        return [encode(term) for term in terms]

    def decode_batch(self, term_ids: Iterable[int]) -> List[Term]:
        """Decode a flat batch of ids (raises on any unknown id)."""
        decode = self.decode
        return [decode(term_id) for term_id in term_ids]

    def decode(self, term_id: int) -> Term:
        """The term for an id; raises ``KeyError`` for unknown ids.

        Negative ids are unknown by definition — they must not alias
        into the term list through Python's negative indexing.
        """
        if 0 < term_id < len(self._terms):
            return self._terms[term_id]
        raise KeyError(f"unknown term id {term_id}")

    def __len__(self) -> int:
        return len(self._terms) - 1

    def __contains__(self, term: Term) -> bool:
        return term in self._ids

    def items(self) -> Iterator[Tuple[int, Term]]:
        """All ``(id, term)`` pairs in id order (persistence dumps)."""
        for term_id in range(1, len(self._terms)):
            yield term_id, self._terms[term_id]

    def __repr__(self) -> str:
        return f"<TermDictionary ({len(self)} terms)>"
