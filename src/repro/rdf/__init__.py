"""RDF substrate: terms, graphs, namespaces and serializations."""

from .dictionary import NO_TERM, TermDictionary
from .graph import Graph
from .namespace import (
    CLC,
    DCTERMS,
    GADM,
    GEO,
    GEOF,
    INSPIRE,
    LAI,
    MAP,
    Namespace,
    NamespaceManager,
    OSM,
    OWL,
    PREFIXES,
    QB,
    RDF,
    RDFS,
    SDO,
    SDOEO,
    SF,
    SKOS,
    STRDF,
    TIME,
    UA,
    UOM,
    XSD,
)
from .crawler import CrawlReport, DocumentStore, RdfCrawler, sniff_format
from .shards import DEFAULT_BATCH_SIZE, IndexShard, ShardedIndex, shard_of
from .ntriples import ParseError, parse_ntriples, serialize_ntriples
from .reasoner import materialize_inferences, rdfs_closure
from .rdfxml import parse_rdfxml, serialize_rdfxml
from .terms import (
    BNode,
    GEO_WKT_LITERAL,
    IRI,
    Literal,
    Term,
    Triple,
    literal_cmp_key,
    parse_datetime,
    to_utc,
)
from .turtle import parse_turtle, serialize_turtle

__all__ = [
    "BNode",
    "CrawlReport",
    "DocumentStore",
    "DEFAULT_BATCH_SIZE",
    "Graph",
    "IndexShard",
    "NO_TERM",
    "RdfCrawler",
    "ShardedIndex",
    "TermDictionary",
    "shard_of",
    "materialize_inferences",
    "rdfs_closure",
    "sniff_format",
    "GEO_WKT_LITERAL",
    "IRI",
    "Literal",
    "Namespace",
    "NamespaceManager",
    "ParseError",
    "Term",
    "Triple",
    "literal_cmp_key",
    "parse_datetime",
    "parse_ntriples",
    "parse_rdfxml",
    "parse_turtle",
    "serialize_ntriples",
    "serialize_rdfxml",
    "serialize_turtle",
    "to_utc",
    # namespaces
    "CLC", "DCTERMS", "GADM", "GEO", "GEOF", "INSPIRE", "LAI", "MAP",
    "OSM", "OWL", "PREFIXES", "QB", "RDF", "RDFS", "SDO", "SDOEO", "SF",
    "SKOS", "STRDF", "TIME", "UA", "UOM", "XSD",
]
