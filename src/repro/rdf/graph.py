"""An indexed, in-memory RDF graph.

The graph maintains SPO/POS/OSP hash indexes so that any triple pattern
with at least one bound position is answered without a full scan — the
workhorse behind the SPARQL evaluator's basic graph pattern matching.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Iterator, Optional, Set, Tuple, Union

from .namespace import NamespaceManager
from .terms import BNode, IRI, Literal, Term, Triple

Pattern = Tuple[Optional[Term], Optional[Term], Optional[Term]]


class Graph:
    """A set of triples with pattern-match indexes and I/O helpers."""

    def __init__(self, identifier: Optional[str] = None):
        self.identifier = identifier
        self._triples: Set[Triple] = set()
        self._spo: Dict[Term, Dict[Term, Set[Term]]] = defaultdict(
            lambda: defaultdict(set)
        )
        self._pos: Dict[Term, Dict[Term, Set[Term]]] = defaultdict(
            lambda: defaultdict(set)
        )
        self._osp: Dict[Term, Dict[Term, Set[Term]]] = defaultdict(
            lambda: defaultdict(set)
        )
        self.namespaces = NamespaceManager()

    # -- mutation ---------------------------------------------------------
    def add(self, triple_or_s, p: Optional[Term] = None,
            o: Optional[Term] = None) -> "Graph":
        """Add a triple; accepts ``add(Triple(...))`` or ``add(s, p, o)``."""
        triple = self._coerce(triple_or_s, p, o)
        if triple in self._triples:
            return self
        self._triples.add(triple)
        s, pp, oo = triple
        self._spo[s][pp].add(oo)
        self._pos[pp][oo].add(s)
        self._osp[oo][s].add(pp)
        return self

    def remove(self, triple_or_s, p: Optional[Term] = None,
               o: Optional[Term] = None) -> "Graph":
        """Remove all triples matching the (possibly wildcard) pattern."""
        if isinstance(triple_or_s, Triple) and p is None and o is None:
            matches = [triple_or_s] if triple_or_s in self._triples else []
        else:
            matches = list(self.triples((triple_or_s, p, o)))
        for t in matches:
            self._triples.discard(t)
            s, pp, oo = t
            self._spo[s][pp].discard(oo)
            self._pos[pp][oo].discard(s)
            self._osp[oo][s].discard(pp)
        return self

    def update(self, triples: Iterable[Triple]) -> "Graph":
        for t in triples:
            self.add(t)
        return self

    @staticmethod
    def _coerce(triple_or_s, p, o) -> Triple:
        if isinstance(triple_or_s, Triple):
            return triple_or_s
        if isinstance(triple_or_s, tuple) and p is None and o is None:
            return Triple(*triple_or_s)
        if p is None or o is None:
            raise TypeError("add() requires a Triple or three terms")
        return Triple(triple_or_s, p, o)

    # -- access -----------------------------------------------------------
    def __len__(self) -> int:
        return len(self._triples)

    def __iter__(self) -> Iterator[Triple]:
        return iter(self._triples)

    def __contains__(self, item) -> bool:
        if isinstance(item, Triple):
            return item in self._triples
        if isinstance(item, tuple) and len(item) == 3:
            if all(term is not None for term in item):
                return Triple(*item) in self._triples
            return next(self.triples(item), None) is not None
        return False

    def triples(self, pattern: Pattern) -> Iterator[Triple]:
        """All triples matching a pattern; ``None`` is a wildcard."""
        s, p, o = pattern
        if s is not None and p is not None and o is not None:
            t = Triple(s, p, o)
            if t in self._triples:
                yield t
            return
        if s is not None:
            by_p = self._spo.get(s)
            if not by_p:
                return
            if p is not None:
                for oo in by_p.get(p, ()):
                    yield Triple(s, p, oo)
            else:
                for pp, objs in by_p.items():
                    for oo in objs:
                        if o is None or oo == o:
                            yield Triple(s, pp, oo)
            return
        if p is not None:
            by_o = self._pos.get(p)
            if not by_o:
                return
            if o is not None:
                for ss in by_o.get(o, ()):
                    yield Triple(ss, p, o)
            else:
                for oo, subs in by_o.items():
                    for ss in subs:
                        yield Triple(ss, p, oo)
            return
        if o is not None:
            by_s = self._osp.get(o)
            if not by_s:
                return
            for ss, preds in by_s.items():
                for pp in preds:
                    yield Triple(ss, pp, o)
            return
        yield from self._triples

    def subjects(self, predicate: Optional[Term] = None,
                 obj: Optional[Term] = None) -> Iterator[Term]:
        seen = set()
        for t in self.triples((None, predicate, obj)):
            if t.s not in seen:
                seen.add(t.s)
                yield t.s

    def objects(self, subject: Optional[Term] = None,
                predicate: Optional[Term] = None) -> Iterator[Term]:
        seen = set()
        for t in self.triples((subject, predicate, None)):
            if t.o not in seen:
                seen.add(t.o)
                yield t.o

    def predicates(self, subject: Optional[Term] = None,
                   obj: Optional[Term] = None) -> Iterator[Term]:
        seen = set()
        for t in self.triples((subject, None, obj)):
            if t.p not in seen:
                seen.add(t.p)
                yield t.p

    def value(self, subject: Term, predicate: Term,
              default=None) -> Optional[Term]:
        """The single object of (subject, predicate, ?) or *default*."""
        for t in self.triples((subject, predicate, None)):
            return t.o
        return default

    # -- set operations -----------------------------------------------------
    def __iadd__(self, other: Union["Graph", Iterable[Triple]]) -> "Graph":
        self.update(other)
        return self

    def __add__(self, other: "Graph") -> "Graph":
        out = Graph()
        out.update(self)
        out.update(other)
        return out

    def __eq__(self, other) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self._triples == other._triples

    def __hash__(self):  # graphs are mutable; identity hash
        return id(self)

    # -- namespace / IO -------------------------------------------------------
    def bind(self, prefix: str, namespace: str) -> "Graph":
        self.namespaces.bind(prefix, str(namespace))
        return self

    def serialize(self, format: str = "turtle") -> str:
        """Serialize to ``turtle``, ``ntriples`` or ``xml``."""
        if format in ("turtle", "ttl"):
            from .turtle import serialize_turtle

            return serialize_turtle(self)
        if format in ("ntriples", "nt"):
            from .ntriples import serialize_ntriples

            return serialize_ntriples(self)
        if format in ("xml", "rdfxml", "rdf/xml"):
            from .rdfxml import serialize_rdfxml

            return serialize_rdfxml(self)
        raise ValueError(f"unknown serialization format {format!r}")

    def parse(self, text: str, format: str = "turtle") -> "Graph":
        """Parse triples from *text* into this graph."""
        if format in ("turtle", "ttl"):
            from .turtle import parse_turtle

            parse_turtle(text, self)
        elif format in ("ntriples", "nt"):
            from .ntriples import parse_ntriples

            parse_ntriples(text, self)
        else:
            raise ValueError(f"unknown parse format {format!r}")
        return self

    def query(self, sparql: str, **kwargs):
        """Evaluate a (Geo)SPARQL query against this graph."""
        from ..sparql import query as sparql_query

        return sparql_query(self, sparql, **kwargs)

    def sparql_update(self, text: str):
        """Execute a SPARQL Update request against this graph."""
        from ..sparql.update import update as sparql_update

        return sparql_update(self, text)

    def __repr__(self) -> str:
        name = self.identifier or "anonymous"
        return f"<Graph {name} ({len(self)} triples)>"
