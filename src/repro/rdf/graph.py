"""An indexed, dictionary-encoded, in-memory RDF graph.

Every term is interned through a :class:`~repro.rdf.dictionary.TermDictionary`
and the graph stores only integer id-triples: the SPO/POS/OSP hash
indexes are keyed by id, so pattern matching, joins and set membership
all run on ints and terms are decoded back only when triples (or query
results) leave the graph. This is the same architecture Strabon builds
on a DBMS (dictionary-encoded storage + indexes) and is what the
SPARQL physical operators in :mod:`repro.sparql.operators` join over.

The id level is exposed deliberately:

- :meth:`Graph.triples_ids` / :attr:`Graph.dictionary` let the query
  engine scan and join without decoding;
- :meth:`Graph.pattern_cardinality` answers "how many triples match
  this constant pattern" from index bookkeeping in O(1), which the
  planner uses for cardinality-based join ordering.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple, Union

from ..parallel.partition import merge_sorted_runs

from .dictionary import TermDictionary
from .namespace import NamespaceManager
from .shards import DEFAULT_BATCH_SIZE, ShardedIndex
from .terms import BNode, IRI, Literal, Term, Triple

Pattern = Tuple[Optional[Term], Optional[Term], Optional[Term]]
IdPattern = Tuple[Optional[int], Optional[int], Optional[int]]
IdTriple = Tuple[int, int, int]


class Graph:
    """A set of triples with id-keyed pattern indexes and I/O helpers.

    With ``shards=N`` the SPO/POS/OSP indexes are partitioned into N
    hash-sharded segments (:mod:`repro.rdf.shards`) routed by a stable
    hash of the subject id; scans merge back into a canonical order
    that is byte-identical at any shard count. ``shards=None`` (the
    default) keeps the original single-segment indexes and their
    insertion-order scan semantics. ``shards=1`` is *not* the same as
    ``None``: it uses the sharded code path (canonical ordering), so
    results can be compared across shards 1/2/4.
    """

    def __init__(self, identifier: Optional[str] = None,
                 shards: Optional[int] = None):
        self.identifier = identifier
        self.dictionary = TermDictionary()
        self._ids: Set[IdTriple] = set()
        self._shards: Optional[ShardedIndex] = (
            ShardedIndex(shards) if shards is not None else None)
        self._spo: Dict[int, Dict[int, Set[int]]] = {}
        self._pos: Dict[int, Dict[int, Set[int]]] = {}
        self._osp: Dict[int, Dict[int, Set[int]]] = {}
        # per-term triple counts, kept incrementally for O(1) cardinality
        self._s_count: Dict[int, int] = {}
        self._p_count: Dict[int, int] = {}
        self._o_count: Dict[int, int] = {}
        #: Optional injected per-shard scan cost hook, called as
        #: ``scan_cost(shard_index, n_matches)`` inside each shard scan
        #: task of :meth:`scan_batches`. Benchmarks inject a simulated
        #: IO cost here so the shard×worker sweep measures overlap; the
        #: library itself never sets it.
        self.scan_cost = None
        self.namespaces = NamespaceManager()

    # -- mutation ---------------------------------------------------------
    def add(self, triple_or_s, p: Optional[Term] = None,
            o: Optional[Term] = None) -> "Graph":
        """Add a triple; accepts ``add(Triple(...))`` or ``add(s, p, o)``."""
        triple = self._coerce(triple_or_s, p, o)
        encode = self.dictionary.encode
        key = (encode(triple.s), encode(triple.p), encode(triple.o))
        if key in self._ids:
            return self
        self._ids.add(key)
        s, pp, oo = key
        if self._shards is not None:
            self._shards.add(s, pp, oo)
        else:
            self._spo.setdefault(s, {}).setdefault(pp, set()).add(oo)
            self._pos.setdefault(pp, {}).setdefault(oo, set()).add(s)
            self._osp.setdefault(oo, {}).setdefault(s, set()).add(pp)
        self._s_count[s] = self._s_count.get(s, 0) + 1
        self._p_count[pp] = self._p_count.get(pp, 0) + 1
        self._o_count[oo] = self._o_count.get(oo, 0) + 1
        return self

    def remove(self, triple_or_s, p: Optional[Term] = None,
               o: Optional[Term] = None) -> "Graph":
        """Remove all triples matching the (possibly wildcard) pattern.

        Emptied index entries are pruned so the SPO/POS/OSP dicts shrink
        back with the data instead of accumulating empty shells under
        add/remove churn.
        """
        if isinstance(triple_or_s, Triple) and p is None and o is None:
            matches = [self._encode_triple(triple_or_s)]
        else:
            matches = list(self._ids_matching(self._encode_pattern(
                (triple_or_s, p, o))))
        for key in matches:
            if key is None or key not in self._ids:
                continue
            self._ids.discard(key)
            s, pp, oo = key
            if self._shards is not None:
                self._shards.discard(s, pp, oo)
            else:
                self._index_discard(self._spo, s, pp, oo)
                self._index_discard(self._pos, pp, oo, s)
                self._index_discard(self._osp, oo, s, pp)
            self._count_decrement(self._s_count, s)
            self._count_decrement(self._p_count, pp)
            self._count_decrement(self._o_count, oo)
        return self

    @staticmethod
    def _index_discard(index, a: int, b: int, c: int) -> None:
        by_b = index.get(a)
        if by_b is None:
            return
        leaf = by_b.get(b)
        if leaf is None:
            return
        leaf.discard(c)
        if not leaf:
            del by_b[b]
            if not by_b:
                del index[a]

    @staticmethod
    def _count_decrement(counts: Dict[int, int], key: int) -> None:
        n = counts.get(key, 0) - 1
        if n <= 0:
            counts.pop(key, None)
        else:
            counts[key] = n

    def update(self, triples: Iterable[Triple]) -> "Graph":
        for t in triples:
            self.add(t)
        return self

    @staticmethod
    def _coerce(triple_or_s, p, o) -> Triple:
        if isinstance(triple_or_s, Triple):
            return triple_or_s
        if isinstance(triple_or_s, tuple) and p is None and o is None:
            return Triple(*triple_or_s)
        if p is None or o is None:
            raise TypeError("add() requires a Triple or three terms")
        return Triple(triple_or_s, p, o)

    # -- encoding helpers ---------------------------------------------------
    def _encode_triple(self, triple: Triple) -> Optional[IdTriple]:
        """Id-triple for *triple*, or ``None`` if any term is unknown."""
        lookup = self.dictionary.lookup
        s = lookup(triple.s)
        if s is None:
            return None
        p = lookup(triple.p)
        if p is None:
            return None
        o = lookup(triple.o)
        if o is None:
            return None
        return (s, p, o)

    def _encode_pattern(self, pattern: Pattern) -> Optional[IdPattern]:
        """Id pattern (``None`` = wildcard), or ``None``: no match possible."""
        out = []
        lookup = self.dictionary.lookup
        for term in pattern:
            if term is None:
                out.append(None)
            else:
                term_id = lookup(term)
                if term_id is None:
                    return None
                out.append(term_id)
        return tuple(out)

    def _decode_triple(self, key: IdTriple) -> Triple:
        decode = self.dictionary.decode
        return Triple(decode(key[0]), decode(key[1]), decode(key[2]))

    # -- access -----------------------------------------------------------
    def __len__(self) -> int:
        return len(self._ids)

    def __iter__(self) -> Iterator[Triple]:
        decode = self.dictionary.decode
        for s, p, o in self._ids:
            yield Triple(decode(s), decode(p), decode(o))

    def __contains__(self, item) -> bool:
        if isinstance(item, Triple):
            key = self._encode_triple(item)
            return key is not None and key in self._ids
        if isinstance(item, tuple) and len(item) == 3:
            if all(term is not None for term in item):
                key = self._encode_triple(Triple(*item))
                return key is not None and key in self._ids
            return next(self.triples(item), None) is not None
        return False

    def triples(self, pattern: Pattern) -> Iterator[Triple]:
        """All triples matching a pattern; ``None`` is a wildcard."""
        ids = self._encode_pattern(pattern)
        if ids is None:
            return
        for key in self._ids_matching(ids):
            yield self._decode_triple(key)

    def triples_ids(self, ids: Optional[IdPattern]) -> Iterator[IdTriple]:
        """Id-level pattern matching (the query engine's scan hook).

        *ids* positions are term ids or ``None`` wildcards; passing
        ``None`` for the whole pattern (an unencodable pattern) yields
        nothing.
        """
        if ids is None:
            return iter(())
        return self._ids_matching(ids)

    def _ids_matching(self, ids: Optional[IdPattern]) -> Iterator[IdTriple]:
        if ids is None:
            return
        s, p, o = ids
        if s is not None and p is not None and o is not None:
            if ids in self._ids:
                yield ids
            return
        if self._shards is not None:
            if s is None and p is None and o is None:
                # the global triple set's insertion history is the same
                # at every shard count, so this order is already stable
                yield from self._ids
            else:
                yield from self._shards.matching(ids)
            return
        if s is not None:
            by_p = self._spo.get(s)
            if not by_p:
                return
            if p is not None:
                for oo in by_p.get(p, ()):
                    if o is None or oo == o:
                        yield (s, p, oo)
            else:
                for pp, objs in by_p.items():
                    for oo in objs:
                        if o is None or oo == o:
                            yield (s, pp, oo)
            return
        if p is not None:
            by_o = self._pos.get(p)
            if not by_o:
                return
            if o is not None:
                for ss in by_o.get(o, ()):
                    yield (ss, p, o)
            else:
                for oo, subs in by_o.items():
                    for ss in subs:
                        yield (ss, p, oo)
            return
        if o is not None:
            by_s = self._osp.get(o)
            if not by_s:
                return
            for ss, preds in by_s.items():
                for pp in preds:
                    yield (ss, pp, o)
            return
        yield from self._ids

    # -- statistics (planner hooks) ----------------------------------------
    def pattern_cardinality(self, ids: Optional[IdPattern]) -> int:
        """Exact number of triples matching a constant id pattern.

        O(1) from index bookkeeping — the planner's cardinality oracle
        for join ordering. ``None`` positions are wildcards; an
        unencodable pattern (``ids is None``) has cardinality 0.
        """
        if ids is None:
            return 0
        s, p, o = ids
        bound = (s is not None, p is not None, o is not None)
        if bound == (False, False, False):
            return len(self._ids)
        if bound == (True, False, False):
            return self._s_count.get(s, 0)
        if bound == (False, True, False):
            return self._p_count.get(p, 0)
        if bound == (False, False, True):
            return self._o_count.get(o, 0)
        if bound == (True, True, True):
            return 1 if ids in self._ids else 0
        if self._shards is not None:
            return self._shards.pair_cardinality(ids)
        if bound == (True, True, False):
            return len(self._spo.get(s, {}).get(p, ()))
        if bound == (False, True, True):
            return len(self._pos.get(p, {}).get(o, ()))
        return len(self._osp.get(o, {}).get(s, ()))

    @property
    def distinct_counts(self) -> Tuple[int, int, int]:
        """(distinct subjects, predicates, objects) currently indexed."""
        # the count dicts hold exactly one key per distinct term in the
        # corresponding position, so this matches the old per-index
        # shell sizes and works identically for sharded graphs
        return len(self._s_count), len(self._p_count), len(self._o_count)

    @property
    def shard_count(self) -> int:
        """Number of index shards (1 for an unsharded graph)."""
        return self._shards.n if self._shards is not None else 1

    def shard_cardinalities(self, ids: Optional[IdPattern]) -> List[int]:
        """Per-shard match counts for an id pattern.

        The planner and ``scan_batches`` use these per-shard
        cardinalities to prune empty shards and report skew; an
        unsharded graph reports a single pseudo-shard.
        """
        if ids is None:
            return [0] * self.shard_count
        if self._shards is not None:
            return self._shards.cardinalities(ids)
        return [self.pattern_cardinality(ids)]

    def scan_batches(self, ids: Optional[IdPattern],
                     batch_size: Optional[int] = None,
                     pool=None) -> Iterator[List[int]]:
        """Matches for *ids* as flat ``[s0,p0,o0, s1,p1,o1, ...]`` batches.

        Each yielded list holds at most *batch_size* id-triples (3x ints).
        On a sharded graph with an unbound subject, the per-shard scans
        run as independent tasks — on *pool* (a
        :class:`~repro.parallel.pool.WorkerPool`) when given, inline
        otherwise — and the sorted runs are merged in submission order,
        so the batch stream is byte-identical at any shard x worker
        count. Shards with zero matches (per
        :meth:`shard_cardinalities`) are pruned before dispatch.
        """
        if ids is None:
            return
        if batch_size is None or batch_size < 1:
            batch_size = DEFAULT_BATCH_SIZE
        cost = self.scan_cost
        shards = self._shards
        s, p, o = ids
        fan_out = (shards is not None and shards.n > 1 and s is None
                   and not (p is None and o is None))
        if not fan_out:
            matches = list(self._ids_matching(ids))
            if cost is not None:
                cost(0, len(matches))
            runs = [matches]
        else:
            active = [k for k, n in enumerate(shards.cardinalities(ids))
                      if n > 0]

            def scan_shard(k):
                run = shards.scan_sorted(k, ids)
                if cost is not None:
                    cost(k, len(run))
                return run

            if pool is None or len(active) <= 1:
                runs = [scan_shard(k) for k in active]
            else:
                runs = pool.map(scan_shard, active, label="rdf.shard_scan")
        flat: List[int] = []
        limit = 3 * batch_size
        for s_id, p_id, o_id in merge_sorted_runs(runs):
            flat.append(s_id)
            flat.append(p_id)
            flat.append(o_id)
            if len(flat) >= limit:
                yield flat
                flat = []
        if flat:
            yield flat

    def index_shell_sizes(self) -> Dict[str, int]:
        """Top-level index entry counts (regression hook for pruning)."""
        if self._shards is not None:
            spo, pos, osp = self._shards.shell_sizes()
        else:
            spo, pos, osp = len(self._spo), len(self._pos), len(self._osp)
        return {
            "spo": spo,
            "pos": pos,
            "osp": osp,
            "s_count": len(self._s_count),
            "p_count": len(self._p_count),
            "o_count": len(self._o_count),
        }

    def subjects(self, predicate: Optional[Term] = None,
                 obj: Optional[Term] = None) -> Iterator[Term]:
        seen = set()
        for t in self.triples((None, predicate, obj)):
            if t.s not in seen:
                seen.add(t.s)
                yield t.s

    def objects(self, subject: Optional[Term] = None,
                predicate: Optional[Term] = None) -> Iterator[Term]:
        seen = set()
        for t in self.triples((subject, predicate, None)):
            if t.o not in seen:
                seen.add(t.o)
                yield t.o

    def predicates(self, subject: Optional[Term] = None,
                   obj: Optional[Term] = None) -> Iterator[Term]:
        seen = set()
        for t in self.triples((subject, None, obj)):
            if t.p not in seen:
                seen.add(t.p)
                yield t.p

    def value(self, subject: Term, predicate: Term,
              default=None) -> Optional[Term]:
        """The single object of (subject, predicate, ?) or *default*."""
        for t in self.triples((subject, predicate, None)):
            return t.o
        return default

    # -- set operations -----------------------------------------------------
    def __iadd__(self, other: Union["Graph", Iterable[Triple]]) -> "Graph":
        self.update(other)
        return self

    def __add__(self, other: "Graph") -> "Graph":
        out = Graph()
        out.update(self)
        out.update(other)
        return out

    def __eq__(self, other) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        # ids are dictionary-local, so equality compares decoded triples
        return len(self) == len(other) and set(self) == set(other)

    def __hash__(self):  # graphs are mutable; identity hash
        return id(self)

    # -- namespace / IO -------------------------------------------------------
    def bind(self, prefix: str, namespace: str) -> "Graph":
        self.namespaces.bind(prefix, str(namespace))
        return self

    def serialize(self, format: str = "turtle") -> str:
        """Serialize to ``turtle``, ``ntriples`` or ``xml``."""
        if format in ("turtle", "ttl"):
            from .turtle import serialize_turtle

            return serialize_turtle(self)
        if format in ("ntriples", "nt"):
            from .ntriples import serialize_ntriples

            return serialize_ntriples(self)
        if format in ("xml", "rdfxml", "rdf/xml"):
            from .rdfxml import serialize_rdfxml

            return serialize_rdfxml(self)
        raise ValueError(f"unknown serialization format {format!r}")

    def parse(self, text: str, format: str = "turtle") -> "Graph":
        """Parse triples from *text* into this graph."""
        if format in ("turtle", "ttl"):
            from .turtle import parse_turtle

            parse_turtle(text, self)
        elif format in ("ntriples", "nt"):
            from .ntriples import parse_ntriples

            parse_ntriples(text, self)
        else:
            raise ValueError(f"unknown parse format {format!r}")
        return self

    def query(self, sparql: str, **kwargs):
        """Evaluate a (Geo)SPARQL query against this graph."""
        from ..sparql import query as sparql_query

        return sparql_query(self, sparql, **kwargs)

    def explain(self, sparql: str, **kwargs) -> str:
        """The physical plan ``query()`` would run, without executing.

        Returns the rendered operator tree with estimated row counts
        (actuals show as ``-``); run :meth:`query` and render
        ``result.plan`` to see estimates next to actuals.
        """
        from ..sparql import explain as sparql_explain

        return sparql_explain(self, sparql, **kwargs).render()

    def sparql_update(self, text: str):
        """Execute a SPARQL Update request against this graph."""
        from ..sparql.update import update as sparql_update

        return sparql_update(self, text)

    def __repr__(self) -> str:
        name = self.identifier or "anonymous"
        return f"<Graph {name} ({len(self)} triples)>"
