"""Namespaces and the vocabularies used throughout the Copernicus App Lab.

``Namespace`` builds IRIs by attribute or item access::

    GEO = Namespace("http://www.opengis.net/ont/geosparql#")
    GEO.hasGeometry      # IRI(".../geosparql#hasGeometry")
    GEO["asWKT"]         # same style for names that are not identifiers
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

from .terms import IRI


class Namespace(str):
    """A namespace IRI prefix that mints terms."""

    __slots__ = ()

    def term(self, name: str) -> IRI:
        return IRI(str(self) + name)

    def __getattr__(self, name: str) -> IRI:
        if name.startswith("_"):
            raise AttributeError(name)
        return self.term(name)

    # ``str`` methods shadow common vocabulary terms (dcterms:title,
    # dcterms:format, ...); mint IRIs for those explicitly.
    @property
    def title(self) -> IRI:  # type: ignore[override]
        return self.term("title")

    @property
    def format(self) -> IRI:  # type: ignore[override]
        return self.term("format")

    @property
    def index(self) -> IRI:  # type: ignore[override]
        return self.term("index")

    def __getitem__(self, name) -> IRI:
        if isinstance(name, str):
            return self.term(name)
        return str.__getitem__(self, name)

    def __contains__(self, item) -> bool:
        return isinstance(item, str) and item.startswith(str(self))


# W3C / OGC core vocabularies -------------------------------------------------
RDF = Namespace("http://www.w3.org/1999/02/22-rdf-syntax-ns#")
RDFS = Namespace("http://www.w3.org/2000/01/rdf-schema#")
OWL = Namespace("http://www.w3.org/2002/07/owl#")
XSD = Namespace("http://www.w3.org/2001/XMLSchema#")
DCTERMS = Namespace("http://purl.org/dc/terms/")
SKOS = Namespace("http://www.w3.org/2004/02/skos/core#")

# GeoSPARQL (OGC 11-052r4) and simple features
GEO = Namespace("http://www.opengis.net/ont/geosparql#")
GEOF = Namespace("http://www.opengis.net/def/function/geosparql/")
SF = Namespace("http://www.opengis.net/ont/sf#")
UOM = Namespace("http://www.opengis.net/def/uom/OGC/1.0/")

# Time ontology and the Data Cube vocabulary (Figure 2 of the paper)
TIME = Namespace("http://www.w3.org/2006/time#")
QB = Namespace("http://purl.org/linked-data/cube#")

# schema.org and the project's EO extension (Section 5)
SDO = Namespace("https://schema.org/")
SDOEO = Namespace("https://schema.org/eo/")

# Copernicus App Lab dataset ontologies (Section 4)
LAI = Namespace("http://www.app-lab.eu/lai/")
GADM = Namespace("http://www.app-lab.eu/gadm/")
CLC = Namespace("http://www.app-lab.eu/corine/")
UA = Namespace("http://www.app-lab.eu/urbanatlas/")
OSM = Namespace("http://www.app-lab.eu/osm/")
INSPIRE = Namespace("http://inspire.ec.europa.eu/ont/")

# Strabon's valid-time vocabulary (stRDF / stSPARQL)
STRDF = Namespace("http://strdf.di.uoa.gr/ontology#")

# Sextant's map ontology
MAP = Namespace("http://sextant.di.uoa.gr/ontology/map#")


PREFIXES: Dict[str, Namespace] = {
    "rdf": RDF,
    "rdfs": RDFS,
    "owl": OWL,
    "xsd": XSD,
    "dcterms": DCTERMS,
    "skos": SKOS,
    "geo": GEO,
    "geof": GEOF,
    "sf": SF,
    "uom": UOM,
    "time": TIME,
    "qb": QB,
    "sdo": SDO,
    "sdoeo": SDOEO,
    "lai": LAI,
    "gadm": GADM,
    "clc": CLC,
    "ua": UA,
    "osm": OSM,
    "inspire": INSPIRE,
    "strdf": STRDF,
    "map": MAP,
}


class NamespaceManager:
    """Tracks prefix bindings for a graph (used by Turtle/SPARQL I/O)."""

    def __init__(self, bind_defaults: bool = True):
        self._prefix_to_ns: Dict[str, str] = {}
        self._ns_to_prefix: Dict[str, str] = {}
        if bind_defaults:
            for prefix, ns in PREFIXES.items():
                self.bind(prefix, str(ns))

    def bind(self, prefix: str, namespace: str, replace: bool = True) -> None:
        if not replace and prefix in self._prefix_to_ns:
            return
        old_ns = self._prefix_to_ns.get(prefix)
        if old_ns is not None:
            self._ns_to_prefix.pop(old_ns, None)
        self._prefix_to_ns[prefix] = namespace
        self._ns_to_prefix[namespace] = prefix

    def expand(self, qname: str) -> IRI:
        """Expand ``prefix:local`` into a full IRI."""
        prefix, sep, local = qname.partition(":")
        if not sep:
            raise ValueError(f"not a QName: {qname!r}")
        try:
            ns = self._prefix_to_ns[prefix]
        except KeyError:
            raise ValueError(f"unknown prefix {prefix!r}") from None
        return IRI(ns + local)

    def qname(self, iri: str) -> Optional[str]:
        """Compact an IRI to ``prefix:local`` when a binding matches."""
        best: Optional[Tuple[str, str]] = None
        for ns, prefix in self._ns_to_prefix.items():
            if iri.startswith(ns) and (best is None or len(ns) > len(best[0])):
                best = (ns, prefix)
        if best is None:
            return None
        local = iri[len(best[0]):]
        if not local or any(c in local for c in "/#?<>\"{}|^`\\ "):
            return None
        return f"{best[1]}:{local}"

    def namespaces(self) -> Iterator[Tuple[str, str]]:
        return iter(sorted(self._prefix_to_ns.items()))

    def __contains__(self, prefix: str) -> bool:
        return prefix in self._prefix_to_ns
