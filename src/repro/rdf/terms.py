"""RDF term model: IRIs, blank nodes, literals and triples.

This is the foundation shared by the whole linked-data stack (Strabon,
Ontop-spatial, GeoTriples, the SPARQL engine). Terms are immutable and
hashable; :class:`Literal` knows how to convert its lexical form to a
Python value based on its XSD datatype, which the SPARQL evaluator uses
for filters, ordering and arithmetic.
"""

from __future__ import annotations

import itertools
import math
import re
from datetime import date, datetime, timezone
from typing import NamedTuple, Optional, Union


class IRI(str):
    """An IRI reference. Subclasses ``str`` so IRIs compare as strings."""

    __slots__ = ()

    def __new__(cls, value: str):
        if not value:
            raise ValueError("empty IRI")
        return super().__new__(cls, value)

    def n3(self) -> str:
        return f"<{self}>"

    def __repr__(self) -> str:
        return f"IRI({str.__repr__(self)})"

    @property
    def local_name(self) -> str:
        """The part after the last '#' or '/'."""
        for sep in ("#", "/"):
            if sep in self:
                return self.rsplit(sep, 1)[1]
        return str(self)


_bnode_counter = itertools.count()


class BNode(str):
    """A blank node with a (possibly auto-generated) label."""

    __slots__ = ()

    def __new__(cls, label: Optional[str] = None):
        if label is None:
            label = f"b{next(_bnode_counter)}"
        if not re.match(r"^[A-Za-z0-9_.-]+$", label):
            raise ValueError(f"invalid blank node label {label!r}")
        return super().__new__(cls, label)

    def n3(self) -> str:
        return f"_:{self}"

    def __repr__(self) -> str:
        return f"BNode({str.__repr__(self)})"


# Core XSD datatype IRIs (kept here to avoid a circular import with
# namespace.py, which re-exports them in the XSD namespace object).
XSD_NS = "http://www.w3.org/2001/XMLSchema#"
XSD_STRING = IRI(XSD_NS + "string")
XSD_INTEGER = IRI(XSD_NS + "integer")
XSD_INT = IRI(XSD_NS + "int")
XSD_LONG = IRI(XSD_NS + "long")
XSD_DECIMAL = IRI(XSD_NS + "decimal")
XSD_DOUBLE = IRI(XSD_NS + "double")
XSD_FLOAT = IRI(XSD_NS + "float")
XSD_BOOLEAN = IRI(XSD_NS + "boolean")
XSD_DATE = IRI(XSD_NS + "date")
XSD_DATETIME = IRI(XSD_NS + "dateTime")
XSD_ANYURI = IRI(XSD_NS + "anyURI")

GEO_NS = "http://www.opengis.net/ont/geosparql#"
GEO_WKT_LITERAL = IRI(GEO_NS + "wktLiteral")
GEO_GML_LITERAL = IRI(GEO_NS + "gmlLiteral")

RDF_LANGSTRING = IRI("http://www.w3.org/1999/02/22-rdf-syntax-ns#langString")

_NUMERIC_TYPES = {
    XSD_INTEGER, XSD_INT, XSD_LONG, XSD_DECIMAL, XSD_DOUBLE, XSD_FLOAT,
}


class Literal:
    """An RDF literal: lexical form + optional datatype or language tag."""

    __slots__ = ("lexical", "datatype", "lang")

    def __init__(self, value, datatype: Optional[IRI] = None,
                 lang: Optional[str] = None):
        if lang is not None and datatype is not None:
            raise ValueError("a literal cannot have both lang and datatype")
        if isinstance(value, bool):
            lexical = "true" if value else "false"
            datatype = datatype or XSD_BOOLEAN
        elif isinstance(value, int):
            lexical = str(value)
            datatype = datatype or XSD_INTEGER
        elif isinstance(value, float):
            lexical = repr(value)
            datatype = datatype or XSD_DOUBLE
        elif isinstance(value, datetime):
            lexical = value.isoformat()
            datatype = datatype or XSD_DATETIME
        elif isinstance(value, date):
            lexical = value.isoformat()
            datatype = datatype or XSD_DATE
        else:
            lexical = str(value)
        self.lexical = lexical
        self.datatype = IRI(datatype) if datatype else None
        self.lang = lang.lower() if lang else None

    # -- value space ----------------------------------------------------
    @property
    def value(self):
        """Python value for known XSD datatypes; lexical form otherwise."""
        dt = self.datatype
        if dt in (XSD_INTEGER, XSD_INT, XSD_LONG):
            return int(self.lexical)
        if dt in (XSD_DECIMAL, XSD_DOUBLE, XSD_FLOAT):
            return float(self.lexical)
        if dt == XSD_BOOLEAN:
            return self.lexical.strip() in ("true", "1")
        if dt == XSD_DATETIME:
            return parse_datetime(self.lexical)
        if dt == XSD_DATE:
            return date.fromisoformat(self.lexical.strip())
        return self.lexical

    @property
    def is_numeric(self) -> bool:
        return self.datatype in _NUMERIC_TYPES

    @property
    def is_geometry(self) -> bool:
        return self.datatype in (GEO_WKT_LITERAL, GEO_GML_LITERAL)

    # -- identity --------------------------------------------------------
    def __eq__(self, other) -> bool:
        if not isinstance(other, Literal):
            return NotImplemented
        return (
            self.lexical == other.lexical
            and self.datatype == other.datatype
            and self.lang == other.lang
        )

    def __hash__(self) -> int:
        return hash((self.lexical, self.datatype, self.lang))

    def n3(self) -> str:
        escaped = (
            self.lexical.replace("\\", "\\\\")
            .replace('"', '\\"')
            .replace("\n", "\\n")
            .replace("\r", "\\r")
            .replace("\t", "\\t")
        )
        if self.lang:
            return f'"{escaped}"@{self.lang}'
        if self.datatype and self.datatype != XSD_STRING:
            return f'"{escaped}"^^<{self.datatype}>'
        return f'"{escaped}"'

    def __repr__(self) -> str:
        return f"Literal({self.n3()})"

    def __str__(self) -> str:
        return self.lexical


Term = Union[IRI, BNode, Literal]


class Triple(NamedTuple):
    """A subject/predicate/object statement."""

    s: Term
    p: IRI
    o: Term

    def n3(self) -> str:
        return f"{_term_n3(self.s)} {_term_n3(self.p)} {_term_n3(self.o)} ."


def _term_n3(term: Term) -> str:
    if isinstance(term, (IRI, BNode, Literal)):
        return term.n3()
    raise TypeError(f"not an RDF term: {term!r}")


_DT_RE = re.compile(
    r"^(\d{4})-(\d{2})-(\d{2})[T ](\d{2}):(\d{2}):(\d{2})(\.\d+)?"
    r"(Z|[+-]\d{2}:\d{2})?$"
)


def parse_datetime(text: str) -> datetime:
    """Parse an ``xsd:dateTime`` lexical form (Z suffix normalized to UTC)."""
    text = text.strip()
    m = _DT_RE.match(text)
    if not m:
        raise ValueError(f"invalid xsd:dateTime {text!r}")
    iso = text.replace(" ", "T").replace("Z", "+00:00")
    return datetime.fromisoformat(iso)


def to_utc(dt: datetime) -> datetime:
    """Normalize a datetime to UTC (naive datetimes are assumed UTC)."""
    if dt.tzinfo is None:
        return dt.replace(tzinfo=timezone.utc)
    return dt.astimezone(timezone.utc)


def literal_cmp_key(lit: Literal):
    """Total-order sort key usable across mixed literal datatypes."""
    v = lit.value
    if isinstance(v, bool):
        return (0, int(v))
    if isinstance(v, (int, float)):
        if isinstance(v, float) and math.isnan(v):
            return (1, -math.inf)
        return (1, float(v))
    if isinstance(v, datetime):
        return (2, to_utc(v).timestamp())
    if isinstance(v, date):
        return (2, datetime(v.year, v.month, v.day,
                            tzinfo=timezone.utc).timestamp())
    return (3, str(v))
