"""The vetted RDF crawler of Section 3.1.

"We then implemented a vetted RDF crawler that handles non-standard
metadata and supports reasoners, query languages, parsers and
serializers. The query languages can create new triples based on query
matches (CONSTRUCT) and reasoners create virtual triples based on the
stated interrelationships, so we have a framework for creating
crosswalks between metadata standards."

The crawler walks an in-process document web (the offline substitute
for HTTP dereferencing): it parses each document in whatever syntax it
finds (Turtle, N-Triples, RDF/XML — sniffed when undeclared), follows
``rdfs:seeAlso``/``owl:sameAs`` links breadth-first, records bad
documents without aborting ("vetted"), and can finish the crawl with
RDFS reasoning plus CONSTRUCT-based crosswalk rules.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .graph import Graph
from .namespace import OWL, RDFS
from .ntriples import parse_ntriples
from .rdfxml import parse_rdfxml
from .terms import IRI
from .turtle import parse_turtle

DEFAULT_FOLLOW = (RDFS.seeAlso, OWL.sameAs)


class DocumentStore:
    """The crawler's 'web': URL → (document text, declared format)."""

    def __init__(self):
        self._docs: Dict[str, Tuple[str, Optional[str]]] = {}

    def put(self, url: str, text: str,
            format: Optional[str] = None) -> None:
        self._docs[str(url)] = (text, format)

    def get(self, url: str) -> Tuple[str, Optional[str]]:
        return self._docs[str(url)]

    def __contains__(self, url) -> bool:
        return str(url) in self._docs

    def __len__(self) -> int:
        return len(self._docs)


def sniff_format(text: str) -> str:
    """Guess the RDF syntax of a document."""
    head = text.lstrip()[:200]
    if head.startswith("<?xml") or "<rdf:RDF" in head:
        return "rdfxml"
    if "@prefix" in head or "PREFIX" in head.upper()[:40]:
        return "turtle"
    # N-Triples lines start with <, _: or a comment
    return "ntriples" if head.startswith(("<", "_:", "#")) else "turtle"


_PARSERS = {
    "turtle": parse_turtle,
    "ttl": parse_turtle,
    "ntriples": parse_ntriples,
    "nt": parse_ntriples,
    "rdfxml": parse_rdfxml,
    "xml": parse_rdfxml,
}


@dataclass
class CrawlReport:
    fetched: List[str] = field(default_factory=list)
    failed: Dict[str, str] = field(default_factory=dict)
    inferred_triples: int = 0
    constructed_triples: int = 0


class RdfCrawler:
    """Breadth-first crawler over a :class:`DocumentStore`."""

    def __init__(self, store: DocumentStore,
                 follow: Sequence[IRI] = DEFAULT_FOLLOW,
                 max_documents: int = 100,
                 max_depth: int = 3):
        self.store = store
        self.follow = tuple(follow)
        self.max_documents = max_documents
        self.max_depth = max_depth

    def crawl(self, seeds: Iterable[str],
              reason: bool = False,
              crosswalk_queries: Sequence[str] = ()
              ) -> Tuple[Graph, CrawlReport]:
        """Crawl from *seeds*; returns the merged graph and a report."""
        graph = Graph("crawl")
        report = CrawlReport()
        queue = deque((str(url), 0) for url in seeds)
        visited = set()
        while queue and len(report.fetched) < self.max_documents:
            url, depth = queue.popleft()
            if url in visited:
                continue
            visited.add(url)
            if url not in self.store:
                report.failed[url] = "not found"
                continue
            text, declared = self.store.get(url)
            parser = _PARSERS.get(declared or sniff_format(text))
            try:
                parser(text, graph)
            except Exception as exc:
                report.failed[url] = f"{type(exc).__name__}: {exc}"
                continue
            report.fetched.append(url)
            if depth < self.max_depth:
                for link in self._links(graph):
                    if link not in visited:
                        queue.append((link, depth + 1))
        if reason:
            from .reasoner import materialize_inferences

            report.inferred_triples = materialize_inferences(graph)
        for query in crosswalk_queries:
            result = graph.query(query)
            if result.graph is not None:
                before = len(graph)
                graph.update(result.graph)
                report.constructed_triples += len(graph) - before
        return graph, report

    def _links(self, graph: Graph) -> List[str]:
        out = []
        for predicate in self.follow:
            for t in graph.triples((None, predicate, None)):
                if isinstance(t.o, IRI):
                    out.append(str(t.o))
        return out
