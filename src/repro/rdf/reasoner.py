"""RDFS inference.

Section 3.1: "reasoners create virtual triples based on the stated
interrelationships, so we have a framework for creating crosswalks
between metadata standards". This module implements the RDFS entailment
rules the crosswalks rely on:

- rdfs5 / rdfs7: subPropertyOf transitivity + property inheritance;
- rdfs9 / rdfs11: subClassOf transitivity + type inheritance;
- rdfs2 / rdfs3: domain and range typing.

Inference runs to fixpoint; the inferred triples can be kept separate
("virtual") or merged into the source graph.
"""

from __future__ import annotations

from typing import Iterable, Optional, Set, Tuple

from .graph import Graph
from .namespace import RDF, RDFS
from .terms import IRI, Literal, Triple


def rdfs_closure(graph: Graph, max_iterations: int = 50) -> Graph:
    """The inferred-only triples of the RDFS closure of *graph*."""
    inferred = Graph("rdfs-inferred")
    known: Set[Triple] = set(graph)

    def add(triple: Triple) -> bool:
        if triple in known:
            return False
        known.add(triple)
        inferred.add(triple)
        return True

    for __ in range(max_iterations):
        changed = False

        sub_class = [
            (t.s, t.o) for t in _all(graph, inferred, RDFS.subClassOf)
        ]
        sub_prop = [
            (t.s, t.o) for t in _all(graph, inferred, RDFS.subPropertyOf)
        ]
        domains = {
            t.s: t.o for t in _all(graph, inferred, RDFS.domain)
        }
        ranges = {
            t.s: t.o for t in _all(graph, inferred, RDFS.range)
        }

        # rdfs11: subClassOf transitivity
        super_of = {}
        for sub, sup in sub_class:
            super_of.setdefault(sub, set()).add(sup)
        for sub, sups in list(super_of.items()):
            for sup in list(sups):
                for supsup in super_of.get(sup, ()):
                    if supsup != sub:
                        changed |= add(
                            Triple(sub, RDFS.subClassOf, supsup)
                        )
        # rdfs5: subPropertyOf transitivity
        sprop_of = {}
        for sub, sup in sub_prop:
            sprop_of.setdefault(sub, set()).add(sup)
        for sub, sups in list(sprop_of.items()):
            for sup in list(sups):
                for supsup in sprop_of.get(sup, ()):
                    if supsup != sub:
                        changed |= add(
                            Triple(sub, RDFS.subPropertyOf, supsup)
                        )
        # rdfs9: type inheritance
        for sub, sup in sub_class:
            for t in _instances(graph, inferred, sub):
                changed |= add(Triple(t, RDF.type, sup))
        # rdfs7: property inheritance
        for sub, sup in sub_prop:
            for t in list(graph.triples((None, sub, None))) + list(
                inferred.triples((None, sub, None))
            ):
                changed |= add(Triple(t.s, sup, t.o))
        # rdfs2 / rdfs3: domain and range typing
        for prop, cls in domains.items():
            for t in list(graph.triples((None, prop, None))) + list(
                inferred.triples((None, prop, None))
            ):
                changed |= add(Triple(t.s, RDF.type, cls))
        for prop, cls in ranges.items():
            for t in list(graph.triples((None, prop, None))) + list(
                inferred.triples((None, prop, None))
            ):
                if not isinstance(t.o, Literal):
                    changed |= add(Triple(t.o, RDF.type, cls))

        if not changed:
            break
    return inferred


def _all(graph: Graph, inferred: Graph, predicate) -> Iterable[Triple]:
    yield from graph.triples((None, predicate, None))
    yield from inferred.triples((None, predicate, None))


def _instances(graph: Graph, inferred: Graph, cls) -> Iterable:
    seen = set()
    for t in graph.triples((None, RDF.type, cls)):
        if t.s not in seen:
            seen.add(t.s)
            yield t.s
    for t in inferred.triples((None, RDF.type, cls)):
        if t.s not in seen:
            seen.add(t.s)
            yield t.s


def materialize_inferences(graph: Graph,
                           max_iterations: int = 50) -> int:
    """Merge the RDFS closure into *graph*; returns the triple count."""
    inferred = rdfs_closure(graph, max_iterations)
    graph.update(inferred)
    return len(inferred)
