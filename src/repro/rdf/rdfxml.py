"""RDF/XML serializer (and a minimal parser for round-tripping).

The paper's SDL publishes "an example of a RDF/XML expression for a
remote OPeNDAP dataset"; this module provides that serialization.
"""

from __future__ import annotations

import re
import xml.etree.ElementTree as ET
from typing import Optional
from xml.sax.saxutils import escape as xml_escape
from xml.sax.saxutils import quoteattr

from .graph import Graph
from .namespace import RDF
from .terms import BNode, IRI, Literal, Triple

RDF_NS = str(RDF)


def _split_iri(iri: str):
    """Split an IRI into (namespace, XML-legal local name)."""
    m = re.search(r"[A-Za-z_][\w.-]*$", iri)
    if not m or m.start() == 0:
        return None
    return iri[: m.start()], iri[m.start():]


def serialize_rdfxml(graph: Graph) -> str:
    """Serialize a graph as RDF/XML."""
    ns_decls = {"rdf": RDF_NS}
    counter = 0

    def ns_prefix(ns: str) -> str:
        nonlocal counter
        for prefix, bound in ns_decls.items():
            if bound == ns:
                return prefix
        q = graph.namespaces.qname(ns + "x")
        if q:
            prefix = q.split(":", 1)[0]
        else:
            prefix = f"ns{counter}"
            counter += 1
        while prefix in ns_decls and ns_decls[prefix] != ns:
            prefix = f"ns{counter}"
            counter += 1
        ns_decls[prefix] = ns
        return prefix

    by_subject = {}
    for t in graph:
        by_subject.setdefault(t.s, []).append(t)

    body_parts = []
    for subject in sorted(by_subject, key=str):
        if isinstance(subject, BNode):
            about = f"rdf:nodeID={quoteattr(str(subject))}"
        else:
            about = f"rdf:about={quoteattr(str(subject))}"
        prop_lines = []
        for t in sorted(by_subject[subject], key=lambda x: (str(x.p), str(x.o))):
            split = _split_iri(str(t.p))
            if split is None:
                # RDF/XML cannot express predicates whose local part is
                # not an XML name; fail loudly instead of dropping data.
                raise ValueError(
                    f"predicate {t.p!r} has no XML-name local part; "
                    "serialize this graph as Turtle or N-Triples instead"
                )
            ns, local = split
            prefix = ns_prefix(ns)
            tag = f"{prefix}:{local}"
            if isinstance(t.o, IRI):
                prop_lines.append(
                    f"    <{tag} rdf:resource={quoteattr(str(t.o))}/>"
                )
            elif isinstance(t.o, BNode):
                prop_lines.append(
                    f"    <{tag} rdf:nodeID={quoteattr(str(t.o))}/>"
                )
            else:
                lit: Literal = t.o
                attrs = ""
                if lit.lang:
                    attrs = f" xml:lang={quoteattr(lit.lang)}"
                elif lit.datatype:
                    attrs = f" rdf:datatype={quoteattr(str(lit.datatype))}"
                prop_lines.append(
                    f"    <{tag}{attrs}>{xml_escape(lit.lexical)}</{tag}>"
                )
        body_parts.append(
            f"  <rdf:Description {about}>\n"
            + "\n".join(prop_lines)
            + "\n  </rdf:Description>"
        )

    ns_attrs = "\n".join(
        f'  xmlns:{prefix}="{ns}"' for prefix, ns in sorted(ns_decls.items())
    )
    return (
        '<?xml version="1.0" encoding="utf-8"?>\n'
        f"<rdf:RDF\n{ns_attrs}>\n" + "\n".join(body_parts) + "\n</rdf:RDF>\n"
    )


def parse_rdfxml(text: str, graph: Optional[Graph] = None) -> Graph:
    """Parse the rdf:Description-style RDF/XML emitted by this module."""
    graph = graph if graph is not None else Graph()
    root = ET.fromstring(text)
    for desc in root:
        about = desc.get(f"{{{RDF_NS}}}about")
        node_id = desc.get(f"{{{RDF_NS}}}nodeID")
        if about is not None:
            subject = IRI(about)
        elif node_id is not None:
            subject = BNode(node_id)
        else:
            subject = BNode()
        for prop in desc:
            pred = IRI(prop.tag.replace("{", "").replace("}", ""))
            resource = prop.get(f"{{{RDF_NS}}}resource")
            obj_node = prop.get(f"{{{RDF_NS}}}nodeID")
            datatype = prop.get(f"{{{RDF_NS}}}datatype")
            lang = prop.get("{http://www.w3.org/XML/1998/namespace}lang")
            if resource is not None:
                obj = IRI(resource)
            elif obj_node is not None:
                obj = BNode(obj_node)
            else:
                obj = Literal(
                    prop.text or "",
                    datatype=IRI(datatype) if datatype else None,
                    lang=lang,
                )
            graph.add(Triple(subject, pred, obj))
    return graph
