"""Planar geometry engine used by every spatial layer of the stack.

Public surface:

- types: :class:`Point`, :class:`LineString`, :class:`LinearRing`,
  :class:`Polygon`, the ``Multi*`` variants and
  :class:`GeometryCollection`.
- I/O: :func:`wkt.loads` / :func:`wkt.dumps` (plus GeoSPARQL wktLiteral
  helpers) and GeoJSON (:mod:`repro.geometry.geojson`).
- predicates & measures: :mod:`repro.geometry.ops`.
- indexing: :class:`STRtree`.
- CRS helpers: :mod:`repro.geometry.crs`.
"""

from .base import (
    Geometry,
    GeometryCollection,
    GeometryError,
    LineString,
    LinearRing,
    MultiLineString,
    MultiPoint,
    MultiPolygon,
    Point,
    Polygon,
    bbox_contains,
    bbox_intersects,
    flatten,
)
from .geojson import Feature, FeatureCollection, from_geojson, to_geojson
from .index import STRtree
from .wkt import dumps as wkt_dumps
from .wkt import WktParseError
from .wkt import loads as wkt_loads
from .wkt import to_wkt_literal

__all__ = [
    "Geometry",
    "GeometryCollection",
    "GeometryError",
    "WktParseError",
    "LineString",
    "LinearRing",
    "MultiLineString",
    "MultiPoint",
    "MultiPolygon",
    "Point",
    "Polygon",
    "Feature",
    "FeatureCollection",
    "STRtree",
    "bbox_contains",
    "bbox_intersects",
    "flatten",
    "from_geojson",
    "to_geojson",
    "to_wkt_literal",
    "wkt_dumps",
    "wkt_loads",
]
