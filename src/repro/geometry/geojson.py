"""GeoJSON (RFC 7946) encoding and decoding for the geometry model."""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional

from .base import (
    Geometry,
    GeometryCollection,
    GeometryError,
    LineString,
    MultiLineString,
    MultiPoint,
    MultiPolygon,
    Point,
    Polygon,
)


def to_geojson(geom: Geometry) -> Dict[str, Any]:
    """Encode a Geometry as a GeoJSON geometry object (dict)."""
    if isinstance(geom, Point):
        return {"type": "Point", "coordinates": [geom.x, geom.y]}
    if isinstance(geom, Polygon):
        return {
            "type": "Polygon",
            "coordinates": [
                [list(c) for c in r.vertices] for r in geom.rings()
            ],
        }
    if isinstance(geom, LineString):
        return {
            "type": "LineString",
            "coordinates": [list(c) for c in geom.vertices],
        }
    if isinstance(geom, MultiPoint):
        return {
            "type": "MultiPoint",
            "coordinates": [[p.x, p.y] for p in geom],
        }
    if isinstance(geom, MultiLineString):
        return {
            "type": "MultiLineString",
            "coordinates": [[list(c) for c in l.vertices] for l in geom],
        }
    if isinstance(geom, MultiPolygon):
        return {
            "type": "MultiPolygon",
            "coordinates": [
                [[list(c) for c in r.vertices] for r in p.rings()]
                for p in geom
            ],
        }
    if isinstance(geom, GeometryCollection):
        return {
            "type": "GeometryCollection",
            "geometries": [to_geojson(g) for g in geom],
        }
    raise GeometryError(f"cannot encode {type(geom).__name__} as GeoJSON")


def from_geojson(obj: Dict[str, Any]) -> Geometry:
    """Decode a GeoJSON geometry object into a Geometry."""
    kind = obj.get("type")
    coords = obj.get("coordinates")
    if kind == "Point":
        return Point(coords[0], coords[1])
    if kind == "LineString":
        return LineString([(c[0], c[1]) for c in coords])
    if kind == "Polygon":
        rings = [[(c[0], c[1]) for c in ring] for ring in coords]
        return Polygon(rings[0], rings[1:])
    if kind == "MultiPoint":
        return MultiPoint([Point(c[0], c[1]) for c in coords])
    if kind == "MultiLineString":
        return MultiLineString(
            [LineString([(c[0], c[1]) for c in line]) for line in coords]
        )
    if kind == "MultiPolygon":
        polys = []
        for poly in coords:
            rings = [[(c[0], c[1]) for c in ring] for ring in poly]
            polys.append(Polygon(rings[0], rings[1:]))
        return MultiPolygon(polys)
    if kind == "GeometryCollection":
        return GeometryCollection(
            [from_geojson(g) for g in obj.get("geometries", [])]
        )
    raise GeometryError(f"unsupported GeoJSON type {kind!r}")


class Feature:
    """A GeoJSON feature: a geometry plus a property dictionary."""

    def __init__(self, geometry: Geometry,
                 properties: Optional[Dict[str, Any]] = None,
                 feature_id: Optional[str] = None):
        self.geometry = geometry
        self.properties = dict(properties or {})
        self.id = feature_id

    def to_geojson(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "type": "Feature",
            "geometry": to_geojson(self.geometry),
            "properties": self.properties,
        }
        if self.id is not None:
            out["id"] = self.id
        return out

    @classmethod
    def from_geojson(cls, obj: Dict[str, Any]) -> "Feature":
        if obj.get("type") != "Feature":
            raise GeometryError("not a GeoJSON Feature")
        return cls(
            from_geojson(obj["geometry"]),
            obj.get("properties") or {},
            obj.get("id"),
        )

    def __repr__(self) -> str:
        return f"<Feature id={self.id!r} {self.geometry.geom_type}>"


class FeatureCollection:
    """A GeoJSON feature collection with convenience I/O."""

    def __init__(self, features: Iterable[Feature] = ()):
        self.features: List[Feature] = list(features)

    def append(self, feature: Feature) -> None:
        self.features.append(feature)

    def __iter__(self):
        return iter(self.features)

    def __len__(self) -> int:
        return len(self.features)

    def to_geojson(self) -> Dict[str, Any]:
        return {
            "type": "FeatureCollection",
            "features": [f.to_geojson() for f in self.features],
        }

    @classmethod
    def from_geojson(cls, obj: Dict[str, Any]) -> "FeatureCollection":
        if obj.get("type") != "FeatureCollection":
            raise GeometryError("not a GeoJSON FeatureCollection")
        return cls(Feature.from_geojson(f) for f in obj.get("features", []))

    def dump(self, path) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_geojson(), fh)

    @classmethod
    def load(cls, path) -> "FeatureCollection":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_geojson(json.load(fh))
