"""Spatial indexing: a bulk-loaded STR-packed R-tree.

Strabon uses PostGIS GiST indexes; our reproduction uses this R-tree for
the same role (spatial selections and join pre-filtering) in the Strabon
store, the Geographica harness and the Sextant renderer.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Iterable, List, Optional, Sequence, Tuple

from .base import Geometry, bbox_intersects

BBox = Tuple[float, float, float, float]


def _union(a: BBox, b: BBox) -> BBox:
    return (min(a[0], b[0]), min(a[1], b[1]), max(a[2], b[2]), max(a[3], b[3]))


def _bbox_distance(box: BBox, point: Tuple[float, float]) -> float:
    dx = max(box[0] - point[0], 0.0, point[0] - box[2])
    dy = max(box[1] - point[1], 0.0, point[1] - box[3])
    return math.hypot(dx, dy)


class _Node:
    __slots__ = ("bbox", "children", "entries")

    def __init__(self, bbox: BBox, children=None, entries=None):
        self.bbox = bbox
        self.children: Optional[List["_Node"]] = children
        self.entries: Optional[List[Tuple[BBox, Any]]] = entries

    @property
    def is_leaf(self) -> bool:
        return self.entries is not None


class STRtree:
    """Sort-Tile-Recursive packed R-tree over ``(bbox, item)`` entries.

    Bulk loaded, immutable after construction — matching how the stack
    uses it (indexes are rebuilt when a dataset snapshot changes).
    """

    def __init__(self, items: Iterable[Any],
                 bbox_of: Callable[[Any], BBox] = None,
                 node_capacity: int = 16):
        if bbox_of is None:
            bbox_of = _default_bbox
        if node_capacity < 2:
            raise ValueError("node_capacity must be >= 2")
        self._capacity = node_capacity
        entries = [(tuple(bbox_of(item)), item) for item in items]
        self._size = len(entries)
        self._root = self._build(entries) if entries else None

    def __len__(self) -> int:
        return self._size

    def _build(self, entries: List[Tuple[BBox, Any]]) -> _Node:
        cap = self._capacity
        if len(entries) <= cap:
            bbox = entries[0][0]
            for b, __ in entries[1:]:
                bbox = _union(bbox, b)
            return _Node(bbox, entries=entries)
        # STR packing: sort by x, slice into vertical strips, sort each by y.
        entries = sorted(entries, key=lambda e: (e[0][0] + e[0][2]) / 2)
        leaf_count = math.ceil(len(entries) / cap)
        strip_count = math.ceil(math.sqrt(leaf_count))
        per_strip = math.ceil(len(entries) / strip_count)
        leaves: List[_Node] = []
        for i in range(0, len(entries), per_strip):
            strip = sorted(
                entries[i: i + per_strip],
                key=lambda e: (e[0][1] + e[0][3]) / 2,
            )
            for j in range(0, len(strip), cap):
                chunk = strip[j: j + cap]
                bbox = chunk[0][0]
                for b, __ in chunk[1:]:
                    bbox = _union(bbox, b)
                leaves.append(_Node(bbox, entries=chunk))
        return self._pack_nodes(leaves)

    def _pack_nodes(self, nodes: List[_Node]) -> _Node:
        cap = self._capacity
        while len(nodes) > 1:
            nodes = sorted(
                nodes, key=lambda n: ((n.bbox[0] + n.bbox[2]) / 2,
                                      (n.bbox[1] + n.bbox[3]) / 2)
            )
            parents: List[_Node] = []
            for i in range(0, len(nodes), cap):
                group = nodes[i: i + cap]
                bbox = group[0].bbox
                for n in group[1:]:
                    bbox = _union(bbox, n.bbox)
                parents.append(_Node(bbox, children=group))
            nodes = parents
        return nodes[0]

    def query(self, bbox: BBox) -> List[Any]:
        """Items whose bounding boxes intersect *bbox* (candidate set)."""
        out: List[Any] = []
        if self._root is None:
            return out
        stack = [self._root]
        while stack:
            node = stack.pop()
            if not bbox_intersects(node.bbox, bbox):
                continue
            if node.is_leaf:
                out.extend(
                    item for b, item in node.entries if bbox_intersects(b, bbox)
                )
            else:
                stack.extend(node.children)
        return out

    def query_geom(self, geom: Geometry) -> List[Any]:
        """Candidate items for geometry intersection (bbox filter only)."""
        return self.query(geom.bounds)

    def nearest(self, point: Tuple[float, float], k: int = 1) -> List[Any]:
        """The *k* items with smallest bbox distance to *point*."""
        if self._root is None or k <= 0:
            return []
        import heapq

        heap: List[Tuple[float, int, Any, Optional[_Node]]] = []
        counter = 0
        heapq.heappush(heap, (0.0, counter, None, self._root))
        results: List[Any] = []
        while heap and len(results) < k:
            dist, __, item, node = heapq.heappop(heap)
            if node is None:
                results.append(item)
                continue
            if node.is_leaf:
                for b, entry in node.entries:
                    counter += 1
                    heapq.heappush(
                        heap, (_bbox_distance(b, point), counter, entry, None)
                    )
            else:
                for child in node.children:
                    counter += 1
                    heapq.heappush(
                        heap,
                        (_bbox_distance(child.bbox, point), counter, None,
                         child),
                    )
        return results


def _default_bbox(item: Any) -> BBox:
    if isinstance(item, Geometry):
        return item.bounds
    if hasattr(item, "geometry"):
        return item.geometry.bounds
    if isinstance(item, Sequence) and len(item) == 4:
        return tuple(item)  # type: ignore[return-value]
    raise TypeError(f"cannot derive bbox from {type(item).__name__}")
