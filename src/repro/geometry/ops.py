"""Spatial predicates and measures over :mod:`repro.geometry.base` types.

The predicates implement the OGC Simple Features semantics used by
GeoSPARQL (``geof:sfIntersects``, ``geof:sfContains``, ...). They are a
planar, epsilon-tolerant implementation: correct for the well-formed
polygons/lines/points produced by the synthetic Copernicus datasets, but
not a full robust-arithmetic DE-9IM engine.
"""

from __future__ import annotations

import math
from typing import Tuple

from .base import (
    Coord,
    Geometry,
    GeometryCollection,
    GeometryError,
    LineString,
    LinearRing,
    MultiLineString,
    MultiPoint,
    MultiPolygon,
    Point,
    Polygon,
    bbox_intersects,
    flatten,
)

_EPS = 1e-9


# ---------------------------------------------------------------------------
# Low-level primitives
# ---------------------------------------------------------------------------

def _orient(p: Coord, q: Coord, r: Coord) -> float:
    """Cross product orientation of the triple (p, q, r)."""
    return (q[0] - p[0]) * (r[1] - p[1]) - (q[1] - p[1]) * (r[0] - p[0])


def on_segment(p: Coord, a: Coord, b: Coord, eps: float = _EPS) -> bool:
    """True when point *p* lies on the closed segment ``a-b``."""
    if abs(_orient(a, b, p)) > eps * (1.0 + _seg_len(a, b)):
        return False
    return (
        min(a[0], b[0]) - eps <= p[0] <= max(a[0], b[0]) + eps
        and min(a[1], b[1]) - eps <= p[1] <= max(a[1], b[1]) + eps
    )


def _seg_len(a: Coord, b: Coord) -> float:
    return math.hypot(b[0] - a[0], b[1] - a[1])


def segments_intersect(a1: Coord, a2: Coord, b1: Coord, b2: Coord) -> bool:
    """True when closed segments ``a1-a2`` and ``b1-b2`` share any point."""
    d1 = _orient(b1, b2, a1)
    d2 = _orient(b1, b2, a2)
    d3 = _orient(a1, a2, b1)
    d4 = _orient(a1, a2, b2)
    if ((d1 > 0 > d2) or (d1 < 0 < d2)) and ((d3 > 0 > d4) or (d3 < 0 < d4)):
        return True
    return (
        on_segment(a1, b1, b2)
        or on_segment(a2, b1, b2)
        or on_segment(b1, a1, a2)
        or on_segment(b2, a1, a2)
    )


def segment_intersection_point(a1: Coord, a2: Coord, b1: Coord, b2: Coord):
    """Proper intersection point of two segments, or ``None``.

    Collinear overlaps return ``None``; callers that need overlap handling
    test with :func:`segments_intersect` first.
    """
    dax, day = a2[0] - a1[0], a2[1] - a1[1]
    dbx, dby = b2[0] - b1[0], b2[1] - b1[1]
    denom = dax * dby - day * dbx
    if abs(denom) < _EPS:
        return None
    t = ((b1[0] - a1[0]) * dby - (b1[1] - a1[1]) * dbx) / denom
    u = ((b1[0] - a1[0]) * day - (b1[1] - a1[1]) * dax) / denom
    if -_EPS <= t <= 1 + _EPS and -_EPS <= u <= 1 + _EPS:
        return (a1[0] + t * dax, a1[1] + t * day)
    return None


def point_segment_distance(p: Coord, a: Coord, b: Coord) -> float:
    """Euclidean distance from point *p* to the closed segment ``a-b``."""
    dx, dy = b[0] - a[0], b[1] - a[1]
    seg2 = dx * dx + dy * dy
    if seg2 < _EPS * _EPS:
        return math.hypot(p[0] - a[0], p[1] - a[1])
    t = ((p[0] - a[0]) * dx + (p[1] - a[1]) * dy) / seg2
    t = max(0.0, min(1.0, t))
    cx, cy = a[0] + t * dx, a[1] + t * dy
    return math.hypot(p[0] - cx, p[1] - cy)


def point_in_ring(p: Coord, ring: LinearRing) -> int:
    """Locate *p* relative to a ring: 1 inside, 0 on boundary, -1 outside.

    Ray casting with explicit boundary detection.
    """
    for a, b in ring.segments():
        if on_segment(p, a, b):
            return 0
    inside = False
    x, y = p
    verts = ring.vertices
    j = len(verts) - 1
    for i in range(len(verts)):
        xi, yi = verts[i]
        xj, yj = verts[j]
        if (yi > y) != (yj > y):
            x_cross = (xj - xi) * (y - yi) / (yj - yi) + xi
            if x < x_cross:
                inside = not inside
        j = i
    return 1 if inside else -1


def point_in_polygon(p: Coord, poly: Polygon) -> int:
    """Locate *p* relative to a polygon: 1 interior, 0 boundary, -1 exterior."""
    loc = point_in_ring(p, poly.shell)
    if loc <= 0:
        return loc
    for hole in poly.holes:
        hloc = point_in_ring(p, hole)
        if hloc == 0:
            return 0
        if hloc == 1:
            return -1
    return 1


# ---------------------------------------------------------------------------
# Pairwise predicate helpers over primitive types
# ---------------------------------------------------------------------------

def _line_line_intersects(l1: LineString, l2: LineString) -> bool:
    for a1, a2 in l1.segments():
        for b1, b2 in l2.segments():
            if segments_intersect(a1, a2, b1, b2):
                return True
    return False


def _line_polygon_intersects(line: LineString, poly: Polygon) -> bool:
    for v in line.vertices:
        if point_in_polygon(v, poly) >= 0:
            return True
    for ring in poly.rings():
        if _line_line_intersects(line, ring):
            return True
    return False


def _polygon_polygon_intersects(p1: Polygon, p2: Polygon) -> bool:
    if not bbox_intersects(p1.bounds, p2.bounds):
        return False
    for v in p1.shell.vertices:
        if point_in_polygon(v, p2) >= 0:
            return True
    for v in p2.shell.vertices:
        if point_in_polygon(v, p1) >= 0:
            return True
    for r1 in p1.rings():
        for r2 in p2.rings():
            if _line_line_intersects(r1, r2):
                return True
    return False


def _primitive_intersects(a: Geometry, b: Geometry) -> bool:
    if isinstance(a, Point) and isinstance(b, Point):
        return math.hypot(a.x - b.x, a.y - b.y) <= _EPS
    if isinstance(a, Point) and isinstance(b, LineString):
        return any(on_segment((a.x, a.y), s, e) for s, e in b.segments())
    if isinstance(a, Point) and isinstance(b, Polygon):
        return point_in_polygon((a.x, a.y), b) >= 0
    if isinstance(a, LineString) and isinstance(b, LineString):
        return _line_line_intersects(a, b)
    if isinstance(a, LineString) and isinstance(b, Polygon):
        return _line_polygon_intersects(a, b)
    if isinstance(a, Polygon) and isinstance(b, Polygon):
        return _polygon_polygon_intersects(a, b)
    # symmetric fallbacks
    return _primitive_intersects(b, a)


def _primitive_contains(a: Geometry, b: Geometry) -> bool:
    """Interior-and-boundary containment of primitive *b* inside *a*."""
    if isinstance(a, Point):
        return isinstance(b, Point) and a.equals(b)
    if isinstance(a, LineString):
        if isinstance(b, Point):
            return any(on_segment((b.x, b.y), s, e) for s, e in a.segments())
        if isinstance(b, LineString):
            return all(
                any(on_segment(v, s, e) for s, e in a.segments())
                for v in b.vertices
            ) and all(
                any(
                    on_segment(_midpoint(s2, e2), s, e)
                    for s, e in a.segments()
                )
                for s2, e2 in b.segments()
            )
        return False
    if isinstance(a, Polygon):
        if isinstance(b, Point):
            return point_in_polygon((b.x, b.y), a) >= 0
        if isinstance(b, LineString):
            if not all(point_in_polygon(v, a) >= 0 for v in b.vertices):
                return False
            return not _line_properly_crosses_rings(b, a)
        if isinstance(b, Polygon):
            if not all(point_in_polygon(v, a) >= 0 for v in b.shell.vertices):
                return False
            return not _line_properly_crosses_rings(b.shell, a)
    return False


def _midpoint(a: Coord, b: Coord) -> Coord:
    return ((a[0] + b[0]) / 2.0, (a[1] + b[1]) / 2.0)


def _line_properly_crosses_rings(line: LineString, poly: Polygon) -> bool:
    """True when *line* has a proper (non-touching) crossing of *poly* rings."""
    for s, e in line.segments():
        for ring in poly.rings():
            for rs, re_ in ring.segments():
                pt = segment_intersection_point(s, e, rs, re_)
                if pt is None:
                    continue
                mid_candidates = [_midpoint(s, pt), _midpoint(pt, e)]
                for mid in mid_candidates:
                    if point_in_polygon(mid, poly) == -1 and not _near(mid, s) \
                            and not _near(mid, e):
                        return True
    return False


def _near(a: Coord, b: Coord) -> bool:
    return math.hypot(a[0] - b[0], a[1] - b[1]) <= _EPS


# ---------------------------------------------------------------------------
# Public predicates (handle collections via flatten())
# ---------------------------------------------------------------------------

def intersects(a: Geometry, b: Geometry) -> bool:
    """OGC ``sfIntersects``: the geometries share at least one point."""
    if a.is_empty or b.is_empty:
        return False
    if not bbox_intersects(a.bounds, b.bounds):
        return False
    return any(
        _primitive_intersects(pa, pb)
        for pa in flatten(a)
        for pb in flatten(b)
        if bbox_intersects(pa.bounds, pb.bounds)
    )


def disjoint(a: Geometry, b: Geometry) -> bool:
    """OGC ``sfDisjoint``: no shared point."""
    return not intersects(a, b)


def contains(a: Geometry, b: Geometry) -> bool:
    """OGC-style ``sfContains``: every point of *b* lies in *a*.

    Simplification relative to strict OGC semantics: we do not require an
    interior-interior intersection, so boundary-only containment counts.
    """
    if a.is_empty or b.is_empty:
        return False
    parts_a = list(flatten(a))
    return all(
        any(_primitive_contains(pa, pb) for pa in parts_a) for pb in flatten(b)
    )


def within(a: Geometry, b: Geometry) -> bool:
    """OGC ``sfWithin``: inverse of :func:`contains`."""
    return contains(b, a)


def touches(a: Geometry, b: Geometry) -> bool:
    """OGC ``sfTouches``: boundaries meet but interiors do not."""
    if not intersects(a, b):
        return False
    return not _interiors_intersect(a, b)


def crosses(a: Geometry, b: Geometry) -> bool:
    """OGC ``sfCrosses`` for line/line and line/polygon pairs."""
    if not intersects(a, b):
        return False
    dim_a, dim_b = dimension(a), dimension(b)
    if dim_a == dim_b == 1:
        return _interiors_intersect(a, b) and not contains(a, b) \
            and not contains(b, a)
    if {dim_a, dim_b} == {1, 2}:
        line, poly = (a, b) if dim_a == 1 else (b, a)
        has_inside = False
        has_outside = False
        for part in flatten(line):
            for pt in _dense_line_samples(part):
                loc = max(
                    (point_in_polygon(pt, pp) for pp in flatten(poly)
                     if isinstance(pp, Polygon)),
                    default=-1,
                )
                if loc == 1:
                    has_inside = True
                elif loc == -1:
                    has_outside = True
        return has_inside and has_outside
    return False


def overlaps(a: Geometry, b: Geometry) -> bool:
    """OGC ``sfOverlaps``: same dimension, interiors intersect, neither contains."""
    if dimension(a) != dimension(b):
        return False
    if not intersects(a, b):
        return False
    return (
        _interiors_intersect(a, b)
        and not contains(a, b)
        and not contains(b, a)
    )


def equals(a: Geometry, b: Geometry) -> bool:
    """OGC ``sfEquals`` approximated as mutual containment."""
    if a.is_empty or b.is_empty:
        return False
    return contains(a, b) and contains(b, a)


def dimension(geom: Geometry) -> int:
    """Topological dimension: 0 points, 1 lines, 2 polygons (max over parts)."""
    dims = []
    for g in flatten(geom):
        if isinstance(g, Point):
            dims.append(0)
        elif isinstance(g, LineString):
            dims.append(1)
        elif isinstance(g, Polygon):
            dims.append(2)
    if not dims:
        raise GeometryError("empty geometry has no dimension")
    return max(dims)


def _dense_line_samples(line: Geometry):
    """Vertices plus quarter points of each segment (for crosses tests)."""
    if not isinstance(line, LineString):
        return
    for v in line.vertices:
        yield v
    for s, e in line.segments():
        for t in (0.25, 0.5, 0.75):
            yield (s[0] + t * (e[0] - s[0]), s[1] + t * (e[1] - s[1]))


def _sample_points(geom: Geometry):
    """Representative points used for interior tests."""
    if isinstance(geom, Point):
        yield (geom.x, geom.y)
    elif isinstance(geom, LineString):
        for s, e in geom.segments():
            yield _midpoint(s, e)
    elif isinstance(geom, Polygon):
        yield _interior_point(geom)


def _interior_point(poly: Polygon) -> Coord:
    """A point strictly inside the polygon (centroid, else scanline probe)."""
    c = centroid(poly)
    if point_in_polygon((c.x, c.y), poly) == 1:
        return (c.x, c.y)
    minx, miny, maxx, maxy = poly.bounds
    steps = 37
    for i in range(1, steps):
        y = miny + (maxy - miny) * i / steps
        for j in range(1, steps):
            x = minx + (maxx - minx) * j / steps
            if point_in_polygon((x, y), poly) == 1:
                return (x, y)
    return (c.x, c.y)


def _interiors_intersect(a: Geometry, b: Geometry) -> bool:
    """Heuristic interior-interior intersection test."""
    dim_a, dim_b = dimension(a), dimension(b)
    if dim_a > dim_b:
        a, b = b, a
        dim_a, dim_b = dim_b, dim_a
    if dim_b == 2:
        polys = [g for g in flatten(b) if isinstance(g, Polygon)]
        if dim_a == 0:
            return any(
                point_in_polygon((p.x, p.y), poly) == 1
                for p in flatten(a)
                if isinstance(p, Point)
                for poly in polys
            )
        if dim_a == 1:
            for part in flatten(a):
                if isinstance(part, Polygon):
                    part = part.shell
                for pt in _sample_points(part):
                    if any(point_in_polygon(pt, poly) == 1 for poly in polys):
                        return True
            return False
        # polygon/polygon: interiors intersect if an interior sample of the
        # (clipped) intersection exists.
        for pa in flatten(a):
            for pb in polys:
                if not isinstance(pa, Polygon):
                    continue
                clipped = clip_polygon(pa, pb.bounds)
                if clipped is None:
                    continue
                for pt in _grid_samples(clipped, 12):
                    if (
                        point_in_polygon(pt, pa) == 1
                        and point_in_polygon(pt, pb) == 1
                    ):
                        return True
        return False
    if dim_b == 1:
        if dim_a == 0:
            # a point interior to a line: on the line but not an endpoint
            for p in flatten(a):
                if not isinstance(p, Point):
                    continue
                for line in flatten(b):
                    if not isinstance(line, LineString):
                        continue
                    pt = (p.x, p.y)
                    on_line = any(
                        on_segment(pt, s, e) for s, e in line.segments()
                    )
                    at_end = _near(pt, line.vertices[0]) or _near(
                        pt, line.vertices[-1]
                    )
                    if on_line and not at_end:
                        return True
            return False
        # line/line: proper crossing or shared collinear stretch
        for la in flatten(a):
            for lb in flatten(b):
                if not (isinstance(la, LineString) and isinstance(lb, LineString)):
                    continue
                for s1, e1 in la.segments():
                    for s2, e2 in lb.segments():
                        if not segments_intersect(s1, e1, s2, e2):
                            continue
                        pt = segment_intersection_point(s1, e1, s2, e2)
                        if pt is not None:
                            ends = [la.vertices[0], la.vertices[-1],
                                    lb.vertices[0], lb.vertices[-1]]
                            if not any(_near(pt, v) for v in ends):
                                return True
                        else:
                            # collinear overlap
                            mid = _midpoint(
                                _clamp_to_seg(s2, s1, e1),
                                _clamp_to_seg(e2, s1, e1),
                            )
                            if on_segment(mid, s1, e1) and on_segment(
                                mid, s2, e2
                            ):
                                if not _near(
                                    _clamp_to_seg(s2, s1, e1),
                                    _clamp_to_seg(e2, s1, e1),
                                ):
                                    return True
        return False
    # point/point
    return intersects(a, b)


def _clamp_to_seg(p: Coord, a: Coord, b: Coord) -> Coord:
    dx, dy = b[0] - a[0], b[1] - a[1]
    seg2 = dx * dx + dy * dy
    if seg2 < _EPS * _EPS:
        return a
    t = max(0.0, min(1.0, ((p[0] - a[0]) * dx + (p[1] - a[1]) * dy) / seg2))
    return (a[0] + t * dx, a[1] + t * dy)


def _grid_samples(poly: Polygon, n: int):
    minx, miny, maxx, maxy = poly.bounds
    for i in range(1, n):
        for j in range(1, n):
            yield (
                minx + (maxx - minx) * i / n,
                miny + (maxy - miny) * j / n,
            )


# ---------------------------------------------------------------------------
# Measures
# ---------------------------------------------------------------------------

def area(geom: Geometry) -> float:
    """Planar area (holes subtracted; zero for points and lines)."""
    total = 0.0
    for g in flatten(geom):
        if isinstance(g, Polygon):
            total += abs(g.shell.signed_area)
            total -= sum(abs(h.signed_area) for h in g.holes)
    return total


def length(geom: Geometry) -> float:
    """Total length of linear components and polygon boundaries."""
    total = 0.0
    for g in flatten(geom):
        if isinstance(g, LineString):
            total += sum(_seg_len(a, b) for a, b in g.segments())
        elif isinstance(g, Polygon):
            for ring in g.rings():
                total += sum(_seg_len(a, b) for a, b in ring.segments())
    return total


def centroid(geom: Geometry) -> Point:
    """Centroid of the highest-dimension components."""
    dim = dimension(geom)
    sx = sy = weight = 0.0
    for g in flatten(geom):
        if dim == 2 and isinstance(g, Polygon):
            cx, cy, a = _polygon_centroid(g)
            sx += cx * a
            sy += cy * a
            weight += a
        elif dim == 1 and isinstance(g, LineString):
            for s, e in g.segments():
                w = _seg_len(s, e)
                sx += (s[0] + e[0]) / 2 * w
                sy += (s[1] + e[1]) / 2 * w
                weight += w
        elif dim == 0 and isinstance(g, Point):
            sx += g.x
            sy += g.y
            weight += 1.0
    if weight <= _EPS:
        # degenerate: average all vertices
        pts = list(geom.coords())
        return Point(
            sum(p[0] for p in pts) / len(pts), sum(p[1] for p in pts) / len(pts)
        )
    return Point(sx / weight, sy / weight)


def _polygon_centroid(poly: Polygon) -> Tuple[float, float, float]:
    # Shift to a local origin first: the shoelace formula suffers
    # catastrophic cancellation for small polygons far from (0, 0).
    ox, oy = poly.shell.vertices[0]

    def ring_terms(ring: LinearRing):
        a = cx = cy = 0.0
        for (px1, py1), (px2, py2) in ring.segments():
            x1, y1 = px1 - ox, py1 - oy
            x2, y2 = px2 - ox, py2 - oy
            cross = x1 * y2 - x2 * y1
            a += cross
            cx += (x1 + x2) * cross
            cy += (y1 + y2) * cross
        return a / 2.0, cx / 6.0, cy / 6.0

    a, cx, cy = ring_terms(poly.shell)
    sign = 1.0 if a >= 0 else -1.0
    a, cx, cy = abs(a), cx * sign, cy * sign
    for hole in poly.holes:
        ha, hcx, hcy = ring_terms(hole)
        hsign = 1.0 if ha >= 0 else -1.0
        a -= abs(ha)
        cx -= hcx * hsign
        cy -= hcy * hsign
    if abs(a) < _EPS:
        verts = poly.shell.vertices
        return (
            sum(v[0] for v in verts) / len(verts),
            sum(v[1] for v in verts) / len(verts),
            0.0,
        )
    return ox + cx / a, oy + cy / a, a


def distance(a: Geometry, b: Geometry) -> float:
    """Minimum planar distance between two geometries (0 when intersecting)."""
    if intersects(a, b):
        return 0.0
    best = math.inf
    for pa in flatten(a):
        for pb in flatten(b):
            best = min(best, _primitive_distance(pa, pb))
    return best


def _primitive_distance(a: Geometry, b: Geometry) -> float:
    if isinstance(a, Point) and isinstance(b, Point):
        return math.hypot(a.x - b.x, a.y - b.y)
    if isinstance(a, Point):
        return _point_geom_distance((a.x, a.y), b)
    if isinstance(b, Point):
        return _point_geom_distance((b.x, b.y), a)
    segs_a = list(_boundary_segments(a))
    segs_b = list(_boundary_segments(b))
    best = math.inf
    for s1, e1 in segs_a:
        for s2, e2 in segs_b:
            best = min(
                best,
                point_segment_distance(s1, s2, e2),
                point_segment_distance(e1, s2, e2),
                point_segment_distance(s2, s1, e1),
                point_segment_distance(e2, s1, e1),
            )
    return best


def _point_geom_distance(p: Coord, g: Geometry) -> float:
    if isinstance(g, Polygon) and point_in_polygon(p, g) >= 0:
        return 0.0
    return min(
        point_segment_distance(p, s, e) for s, e in _boundary_segments(g)
    )


def _boundary_segments(g: Geometry):
    if isinstance(g, LineString):
        yield from g.segments()
    elif isinstance(g, Polygon):
        for ring in g.rings():
            yield from ring.segments()
    elif isinstance(g, Point):
        yield ((g.x, g.y), (g.x, g.y))


def envelope(geom: Geometry) -> Polygon:
    """Bounding-box polygon (degenerate boxes are inflated by epsilon)."""
    minx, miny, maxx, maxy = geom.bounds
    if maxx - minx < _EPS:
        maxx = minx + _EPS * 10
    if maxy - miny < _EPS:
        maxy = miny + _EPS * 10
    return Polygon.box(minx, miny, maxx, maxy)


def convex_hull(geom: Geometry) -> Geometry:
    """Convex hull via Andrew's monotone chain."""
    pts = sorted(set(geom.coords()))
    if len(pts) == 1:
        return Point(*pts[0])
    if len(pts) == 2:
        return LineString(pts)

    def half(points):
        out = []
        for p in points:
            while len(out) >= 2 and _orient(out[-2], out[-1], p) <= 0:
                out.pop()
            out.append(p)
        return out

    lower = half(pts)
    upper = half(list(reversed(pts)))
    hull = lower[:-1] + upper[:-1]
    if len(hull) < 3:
        return LineString(pts)
    return Polygon(hull + [hull[0]])


def buffer(geom: Geometry, radius: float, segments: int = 16) -> Geometry:
    """Positive buffer approximation.

    Points get a true circle approximation; other geometries get the convex
    hull of per-vertex circles, which is exact for convex inputs and a
    conservative approximation otherwise.
    """
    if radius < 0:
        raise GeometryError("negative buffer radius is not supported")
    if radius == 0:
        return geom
    circle_pts = []
    for x, y in geom.coords():
        for k in range(segments):
            ang = 2 * math.pi * k / segments
            circle_pts.append(
                (x + radius * math.cos(ang), y + radius * math.sin(ang))
            )
    hull = convex_hull(MultiPoint([Point(*p) for p in circle_pts]))
    if isinstance(hull, Polygon):
        return hull
    raise GeometryError("degenerate buffer result")


def clip_polygon(poly: Polygon, bounds: Tuple[float, float, float, float]):
    """Sutherland–Hodgman clip of *poly*'s shell to an axis-aligned box.

    Holes are dropped (callers use this for bbox subsetting and rendering).
    Returns ``None`` when the clipped region is empty.
    """
    minx, miny, maxx, maxy = bounds

    def clip_edge(points, inside, intersect):
        out = []
        n = len(points)
        for i in range(n):
            cur, prev = points[i], points[i - 1]
            cur_in, prev_in = inside(cur), inside(prev)
            if cur_in:
                if not prev_in:
                    out.append(intersect(prev, cur))
                out.append(cur)
            elif prev_in:
                out.append(intersect(prev, cur))
        return out

    def x_intersect(x):
        def fn(p, q):
            t = (x - p[0]) / (q[0] - p[0])
            return (x, p[1] + t * (q[1] - p[1]))

        return fn

    def y_intersect(y):
        def fn(p, q):
            t = (y - p[1]) / (q[1] - p[1])
            return (p[0] + t * (q[0] - p[0]), y)

        return fn

    pts = list(poly.shell.vertices[:-1])
    pts = clip_edge(pts, lambda p: p[0] >= minx - _EPS, x_intersect(minx))
    if pts:
        pts = clip_edge(pts, lambda p: p[0] <= maxx + _EPS, x_intersect(maxx))
    if pts:
        pts = clip_edge(pts, lambda p: p[1] >= miny - _EPS, y_intersect(miny))
    if pts:
        pts = clip_edge(pts, lambda p: p[1] <= maxy + _EPS, y_intersect(maxy))
    if len(pts) < 3 or len(set(pts)) < 3:
        return None
    try:
        return Polygon(pts + [pts[0]])
    except GeometryError:
        return None


def simplify(line_or_ring: LineString, tolerance: float) -> LineString:
    """Douglas–Peucker simplification preserving endpoints."""
    pts = list(line_or_ring.vertices)

    def dp(points):
        if len(points) < 3:
            return points
        a, b = points[0], points[-1]
        idx, dmax = 0, -1.0
        for i in range(1, len(points) - 1):
            d = point_segment_distance(points[i], a, b)
            if d > dmax:
                idx, dmax = i, d
        if dmax <= tolerance:
            return [a, b]
        left = dp(points[: idx + 1])
        right = dp(points[idx:])
        return left[:-1] + right

    simplified = dp(pts)
    if isinstance(line_or_ring, LinearRing):
        if len(set(simplified)) < 3:
            return line_or_ring
        return LinearRing(simplified)
    return LineString(simplified)
