"""Well-Known Text (WKT) reader and writer.

GeoSPARQL represents geometries as ``geo:wktLiteral`` strings, optionally
prefixed with a CRS IRI, e.g.::

    <http://www.opengis.net/def/crs/OGC/1.3/CRS84> POINT(2.35 48.85)

:func:`loads` accepts that form and plain WKT; :func:`dumps` emits plain
WKT (use :func:`to_wkt_literal` for the prefixed literal form).
"""

from __future__ import annotations

import re
from typing import List, Tuple

from ..errors import ParseError
from .base import (
    Geometry,
    GeometryCollection,
    GeometryError,
    LineString,
    MultiLineString,
    MultiPoint,
    MultiPolygon,
    Point,
    Polygon,
)

class WktParseError(GeometryError, ParseError):
    """Malformed WKT text (a GeometryError and a common ParseError).

    Callers that historically caught :class:`GeometryError` keep
    working; new "parse untrusted text" paths can catch
    :class:`repro.errors.ParseError` across every front end.
    """


CRS84 = "http://www.opengis.net/def/crs/OGC/1.3/CRS84"
EPSG4326 = "http://www.opengis.net/def/crs/EPSG/0/4326"

_CRS_RE = re.compile(r"^\s*<([^>]+)>\s*(.*)$", re.DOTALL)
_NUM = r"[-+]?(?:\d+\.?\d*|\.\d+)(?:[eE][-+]?\d+)?"


def split_crs(text: str) -> Tuple[str, str]:
    """Split an optional leading ``<crs-iri>`` from WKT text."""
    m = _CRS_RE.match(text)
    if m:
        return m.group(1), m.group(2)
    return CRS84, text


def to_wkt_literal(geom: Geometry, crs: str = CRS84) -> str:
    """Render the ``geo:wktLiteral`` lexical form with a CRS prefix."""
    return f"<{crs}> {dumps(geom)}"


class _Scanner:
    """Minimal recursive-descent scanner over a WKT string."""

    def __init__(self, text: str):
        self.text = text
        self.pos = 0

    def skip_ws(self):
        while self.pos < len(self.text) and self.text[self.pos].isspace():
            self.pos += 1

    def peek(self) -> str:
        self.skip_ws()
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def expect(self, ch: str):
        self.skip_ws()
        if self.pos >= len(self.text) or self.text[self.pos] != ch:
            raise WktParseError(
                f"expected {ch!r} in WKT {self.text!r}", position=self.pos
            )
        self.pos += 1

    def word(self) -> str:
        self.skip_ws()
        m = re.match(r"[A-Za-z]+", self.text[self.pos:])
        if not m:
            raise WktParseError("expected WKT keyword",
                                position=self.pos)
        self.pos += m.end()
        return m.group(0).upper()

    def number(self) -> float:
        self.skip_ws()
        m = re.match(_NUM, self.text[self.pos:])
        if not m:
            raise WktParseError("expected number", position=self.pos)
        self.pos += m.end()
        return float(m.group(0))

    def coord(self) -> Tuple[float, float]:
        x = self.number()
        y = self.number()
        # Swallow optional Z/M ordinates.
        while re.match(_NUM, self.text[self.pos:].lstrip()):
            save = self.pos
            try:
                self.number()
            except GeometryError:  # pragma: no cover - defensive
                self.pos = save
                break
        return (x, y)

    def coord_list(self) -> List[Tuple[float, float]]:
        self.expect("(")
        coords = [self.coord()]
        while self.peek() == ",":
            self.expect(",")
            coords.append(self.coord())
        self.expect(")")
        return coords

    def ring_list(self) -> List[List[Tuple[float, float]]]:
        self.expect("(")
        rings = [self.coord_list()]
        while self.peek() == ",":
            self.expect(",")
            rings.append(self.coord_list())
        self.expect(")")
        return rings

    def maybe_empty(self) -> bool:
        save = self.pos
        try:
            if self.word() == "EMPTY":
                return True
        except GeometryError:
            pass
        self.pos = save
        return False


def loads(text: str) -> Geometry:
    """Parse WKT (optionally with a GeoSPARQL CRS prefix) into a Geometry.

    Malformed text raises :class:`WktParseError` — also reachable as
    :class:`GeometryError` or :class:`repro.errors.ParseError` — never a
    bare ``ValueError``/``IndexError`` from the scanner or the geometry
    constructors.
    """
    __, wkt_body = split_crs(text)
    scanner = _Scanner(wkt_body)
    try:
        geom = _parse_geometry(scanner)
    except WktParseError:
        raise
    except (GeometryError, ValueError, IndexError) as exc:
        raise WktParseError(str(exc), position=scanner.pos) from None
    scanner.skip_ws()
    if scanner.pos != len(scanner.text):
        trailing = scanner.text[scanner.pos:].strip()
        if trailing:
            raise WktParseError(f"trailing WKT content: {trailing!r}",
                                position=scanner.pos)
    return geom


def _parse_geometry(s: _Scanner) -> Geometry:
    kind = s.word()
    if kind == "POINT":
        if s.maybe_empty():
            raise WktParseError("empty POINT is not supported", position=s.pos)
        s.expect("(")
        c = s.coord()
        s.expect(")")
        return Point(*c)
    if kind == "LINESTRING":
        return LineString(s.coord_list())
    if kind == "POLYGON":
        rings = s.ring_list()
        return Polygon(rings[0], rings[1:])
    if kind == "MULTIPOINT":
        s.expect("(")
        pts = []
        while True:
            if s.peek() == "(":
                s.expect("(")
                pts.append(Point(*s.coord()))
                s.expect(")")
            else:
                pts.append(Point(*s.coord()))
            if s.peek() != ",":
                break
            s.expect(",")
        s.expect(")")
        return MultiPoint(pts)
    if kind == "MULTILINESTRING":
        return MultiLineString([LineString(c) for c in s.ring_list()])
    if kind == "MULTIPOLYGON":
        s.expect("(")
        polys = [Polygon(r[0], r[1:]) for r in [s.ring_list()]]
        while s.peek() == ",":
            s.expect(",")
            r = s.ring_list()
            polys.append(Polygon(r[0], r[1:]))
        s.expect(")")
        return MultiPolygon(polys)
    if kind == "GEOMETRYCOLLECTION":
        s.expect("(")
        geoms = [_parse_geometry(s)]
        while s.peek() == ",":
            s.expect(",")
            geoms.append(_parse_geometry(s))
        s.expect(")")
        return GeometryCollection(geoms)
    raise WktParseError(f"unsupported WKT geometry type {kind!r}",
                        position=s.pos)


def _fmt(value: float) -> str:
    text = f"{value:.10f}".rstrip("0").rstrip(".")
    return text if text not in ("", "-0") else "0"


def _coords_text(coords) -> str:
    return ", ".join(f"{_fmt(x)} {_fmt(y)}" for x, y in coords)


def dumps(geom: Geometry) -> str:
    """Serialize a Geometry to WKT."""
    if isinstance(geom, Point):
        return f"POINT ({_fmt(geom.x)} {_fmt(geom.y)})"
    if isinstance(geom, Polygon):
        rings = ", ".join(
            f"({_coords_text(r.vertices)})" for r in geom.rings()
        )
        return f"POLYGON ({rings})"
    if isinstance(geom, LineString):
        return f"LINESTRING ({_coords_text(geom.vertices)})"
    if isinstance(geom, MultiPoint):
        inner = ", ".join(f"({_fmt(p.x)} {_fmt(p.y)})" for p in geom)
        return f"MULTIPOINT ({inner})"
    if isinstance(geom, MultiLineString):
        inner = ", ".join(f"({_coords_text(l.vertices)})" for l in geom)
        return f"MULTILINESTRING ({inner})"
    if isinstance(geom, MultiPolygon):
        inner = ", ".join(
            "("
            + ", ".join(f"({_coords_text(r.vertices)})" for r in p.rings())
            + ")"
            for p in geom
        )
        return f"MULTIPOLYGON ({inner})"
    if isinstance(geom, GeometryCollection):
        inner = ", ".join(dumps(g) for g in geom)
        return f"GEOMETRYCOLLECTION ({inner})"
    raise GeometryError(f"cannot serialize {type(geom).__name__}")
