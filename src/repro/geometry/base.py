"""Core geometry types.

This module implements the vector geometry model used across the stack:
the Simple Features types of the OGC (Point, LineString, Polygon and the
Multi*/collection variants), with coordinates held as plain ``(x, y)``
tuples in an arbitrary planar CRS (WGS84 lon/lat by default).

The implementation is intentionally dependency-free: the Copernicus App
Lab reproduction cannot rely on shapely/GEOS, so predicates and measures
are implemented in :mod:`repro.geometry.ops` on top of these containers.
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator, Sequence, Tuple

Coord = Tuple[float, float]

_EPS = 1e-12


class GeometryError(ValueError):
    """Raised for malformed geometry constructions or parse failures."""


class Geometry:
    """Abstract base class for all geometry types."""

    geom_type: str = "Geometry"

    @property
    def bounds(self) -> Tuple[float, float, float, float]:
        """Bounding box as ``(minx, miny, maxx, maxy)``."""
        xs, ys = [], []
        for x, y in self.coords():
            xs.append(x)
            ys.append(y)
        if not xs:
            raise GeometryError("empty geometry has no bounds")
        return (min(xs), min(ys), max(xs), max(ys))

    @property
    def is_empty(self) -> bool:
        return next(iter(self.coords()), None) is None

    def coords(self) -> Iterator[Coord]:
        """Iterate over every vertex of the geometry."""
        raise NotImplementedError

    @property
    def wkt(self) -> str:
        from .wkt import dumps

        return dumps(self)

    def __geo_interface__(self):  # pragma: no cover - convenience alias
        from .geojson import to_geojson

        return to_geojson(self)

    # Convenience predicate/measure forwarding -------------------------
    def intersects(self, other: "Geometry") -> bool:
        from . import ops

        return ops.intersects(self, other)

    def contains(self, other: "Geometry") -> bool:
        from . import ops

        return ops.contains(self, other)

    def within(self, other: "Geometry") -> bool:
        from . import ops

        return ops.within(self, other)

    def touches(self, other: "Geometry") -> bool:
        from . import ops

        return ops.touches(self, other)

    def disjoint(self, other: "Geometry") -> bool:
        from . import ops

        return ops.disjoint(self, other)

    def crosses(self, other: "Geometry") -> bool:
        from . import ops

        return ops.crosses(self, other)

    def overlaps(self, other: "Geometry") -> bool:
        from . import ops

        return ops.overlaps(self, other)

    def equals(self, other: "Geometry") -> bool:
        from . import ops

        return ops.equals(self, other)

    def distance(self, other: "Geometry") -> float:
        from . import ops

        return ops.distance(self, other)

    @property
    def area(self) -> float:
        from . import ops

        return ops.area(self)

    @property
    def length(self) -> float:
        from . import ops

        return ops.length(self)

    @property
    def centroid(self) -> "Point":
        from . import ops

        return ops.centroid(self)

    def envelope(self) -> "Polygon":
        from . import ops

        return ops.envelope(self)

    def buffer(self, radius: float, segments: int = 16) -> "Geometry":
        from . import ops

        return ops.buffer(self, radius, segments=segments)

    def __eq__(self, other) -> bool:
        if not isinstance(other, Geometry):
            return NotImplemented
        return self.geom_type == other.geom_type and self._key() == other._key()

    def __hash__(self) -> int:
        return hash((self.geom_type, self._key()))

    def _key(self):
        raise NotImplementedError

    def __repr__(self) -> str:
        wkt = self.wkt
        if len(wkt) > 70:
            wkt = wkt[:67] + "..."
        return f"<{self.geom_type} {wkt}>"


class Point(Geometry):
    """A single coordinate pair."""

    geom_type = "Point"
    __slots__ = ("x", "y")

    def __init__(self, x: float, y: float):
        self.x = float(x)
        self.y = float(y)
        if not (math.isfinite(self.x) and math.isfinite(self.y)):
            raise GeometryError(f"non-finite point coordinates ({x}, {y})")

    def coords(self) -> Iterator[Coord]:
        yield (self.x, self.y)

    @property
    def bounds(self):
        return (self.x, self.y, self.x, self.y)

    def _key(self):
        return (self.x, self.y)


class LineString(Geometry):
    """An ordered sequence of at least two vertices."""

    geom_type = "LineString"
    __slots__ = ("vertices",)

    def __init__(self, vertices: Iterable[Coord]):
        self.vertices: Tuple[Coord, ...] = tuple(
            (float(x), float(y)) for x, y in vertices
        )
        if len(self.vertices) < 2:
            raise GeometryError("LineString requires at least 2 vertices")

    def coords(self) -> Iterator[Coord]:
        return iter(self.vertices)

    def segments(self) -> Iterator[Tuple[Coord, Coord]]:
        """Iterate consecutive vertex pairs."""
        for a, b in zip(self.vertices, self.vertices[1:]):
            yield a, b

    @property
    def is_closed(self) -> bool:
        return self.vertices[0] == self.vertices[-1]

    def _key(self):
        return self.vertices


class LinearRing(LineString):
    """A closed LineString used as a polygon boundary.

    The ring is closed automatically if the input is not; degenerate rings
    (fewer than 3 distinct vertices) are rejected.
    """

    geom_type = "LinearRing"

    def __init__(self, vertices: Iterable[Coord]):
        pts = [(float(x), float(y)) for x, y in vertices]
        if pts and pts[0] != pts[-1]:
            pts.append(pts[0])
        if len(set(pts)) < 3:
            raise GeometryError("LinearRing requires at least 3 distinct vertices")
        super().__init__(pts)

    @property
    def signed_area(self) -> float:
        """Shoelace signed area (positive for counter-clockwise rings).

        Coordinates are shifted to a local origin first to avoid
        catastrophic cancellation for small rings far from (0, 0).
        """
        ox, oy = self.vertices[0]
        total = 0.0
        for (x1, y1), (x2, y2) in self.segments():
            total += (x1 - ox) * (y2 - oy) - (x2 - ox) * (y1 - oy)
        return total / 2.0

    @property
    def is_ccw(self) -> bool:
        return self.signed_area > 0


class Polygon(Geometry):
    """A polygon with an exterior shell and optional interior holes."""

    geom_type = "Polygon"
    __slots__ = ("shell", "holes")

    def __init__(self, shell, holes: Sequence = ()):
        self.shell = shell if isinstance(shell, LinearRing) else LinearRing(shell)
        self.holes: Tuple[LinearRing, ...] = tuple(
            h if isinstance(h, LinearRing) else LinearRing(h) for h in holes
        )

    def coords(self) -> Iterator[Coord]:
        yield from self.shell.coords()
        for hole in self.holes:
            yield from hole.coords()

    def rings(self) -> Iterator[LinearRing]:
        yield self.shell
        yield from self.holes

    def _key(self):
        return (self.shell.vertices, tuple(h.vertices for h in self.holes))

    @classmethod
    def box(cls, minx: float, miny: float, maxx: float, maxy: float) -> "Polygon":
        """Axis-aligned rectangle polygon."""
        if minx > maxx or miny > maxy:
            raise GeometryError("invalid box extents")
        return cls(
            [(minx, miny), (maxx, miny), (maxx, maxy), (minx, maxy), (minx, miny)]
        )


class _Multi(Geometry):
    """Shared implementation for homogeneous geometry collections."""

    member_type: type = Geometry
    __slots__ = ("geoms",)

    def __init__(self, geoms: Iterable[Geometry]):
        self.geoms: Tuple[Geometry, ...] = tuple(geoms)
        for g in self.geoms:
            if not isinstance(g, self.member_type):
                raise GeometryError(
                    f"{self.geom_type} members must be {self.member_type.__name__},"
                    f" got {type(g).__name__}"
                )

    def coords(self) -> Iterator[Coord]:
        for g in self.geoms:
            yield from g.coords()

    def __iter__(self) -> Iterator[Geometry]:
        return iter(self.geoms)

    def __len__(self) -> int:
        return len(self.geoms)

    def _key(self):
        return tuple(g._key() for g in self.geoms)


class MultiPoint(_Multi):
    geom_type = "MultiPoint"
    member_type = Point


class MultiLineString(_Multi):
    geom_type = "MultiLineString"
    member_type = LineString


class MultiPolygon(_Multi):
    geom_type = "MultiPolygon"
    member_type = Polygon


class GeometryCollection(_Multi):
    geom_type = "GeometryCollection"
    member_type = Geometry


def flatten(geom: Geometry) -> Iterator[Geometry]:
    """Yield the primitive (non-collection) components of *geom*."""
    if isinstance(geom, _Multi):
        for g in geom:
            yield from flatten(g)
    else:
        yield geom


def bbox_intersects(a: Tuple[float, float, float, float],
                    b: Tuple[float, float, float, float]) -> bool:
    """True when two ``(minx, miny, maxx, maxy)`` boxes overlap or touch."""
    return not (
        a[2] < b[0] - _EPS
        or b[2] < a[0] - _EPS
        or a[3] < b[1] - _EPS
        or b[3] < a[1] - _EPS
    )


def bbox_contains(outer, inner) -> bool:
    """True when box *outer* fully contains box *inner*."""
    return (
        outer[0] <= inner[0] + _EPS
        and outer[1] <= inner[1] + _EPS
        and outer[2] >= inner[2] - _EPS
        and outer[3] >= inner[3] - _EPS
    )
