"""Coordinate-reference-system helpers.

The stack keeps coordinates in WGS84 lon/lat (OGC CRS84 axis order).
For metric computations (buffer radii in metres, haversine distances,
"city-average within r km" analytics) we provide spherical helpers and a
local equirectangular projection good enough at city scale.
"""

from __future__ import annotations

import math
from typing import Tuple

EARTH_RADIUS_M = 6_371_008.8

CRS84 = "http://www.opengis.net/def/crs/OGC/1.3/CRS84"
EPSG4326 = "http://www.opengis.net/def/crs/EPSG/0/4326"


def haversine_m(lon1: float, lat1: float, lon2: float, lat2: float) -> float:
    """Great-circle distance in metres between two lon/lat points."""
    phi1, phi2 = math.radians(lat1), math.radians(lat2)
    dphi = phi2 - phi1
    dlmb = math.radians(lon2 - lon1)
    a = (
        math.sin(dphi / 2) ** 2
        + math.cos(phi1) * math.cos(phi2) * math.sin(dlmb / 2) ** 2
    )
    return 2 * EARTH_RADIUS_M * math.asin(min(1.0, math.sqrt(a)))


def metres_per_degree(lat: float) -> Tuple[float, float]:
    """(metres per degree longitude, metres per degree latitude) at *lat*."""
    lat_m = math.pi * EARTH_RADIUS_M / 180.0
    lon_m = lat_m * math.cos(math.radians(lat))
    return lon_m, lat_m


class LocalProjection:
    """Equirectangular projection centred on a reference point.

    Suitable for city-scale metric work (error < 0.1% over ~50 km).
    """

    def __init__(self, lon0: float, lat0: float):
        self.lon0 = lon0
        self.lat0 = lat0
        self._mx, self._my = metres_per_degree(lat0)

    def forward(self, lon: float, lat: float) -> Tuple[float, float]:
        """lon/lat degrees → local metres east/north."""
        return ((lon - self.lon0) * self._mx, (lat - self.lat0) * self._my)

    def inverse(self, x: float, y: float) -> Tuple[float, float]:
        """local metres east/north → lon/lat degrees."""
        return (self.lon0 + x / self._mx, self.lat0 + y / self._my)


def degrees_for_metres(metres: float, lat: float) -> float:
    """Approximate degree length of *metres* at latitude *lat* (mean axis)."""
    mx, my = metres_per_degree(lat)
    return metres / ((mx + my) / 2.0)
