"""VITO substrate: synthetic Copernicus Global Land products + archive."""

from .archive import ArchiveError, GlobalLandArchive
from .mep import MepDeployment
from .products import (
    ALL_SPECS,
    BA300_SPEC,
    EUROPE_GRID,
    Grid,
    LAI_SPEC,
    NDVI_SPEC,
    PARIS_GRID,
    ProductSpec,
    S5_TOC_NDVI_SPEC,
    TIME_UNITS,
    default_greenness,
    dekad_dates,
    generate_product,
    seasonal_factor,
)

__all__ = [
    "ALL_SPECS",
    "ArchiveError",
    "BA300_SPEC",
    "EUROPE_GRID",
    "GlobalLandArchive",
    "Grid",
    "LAI_SPEC",
    "MepDeployment",
    "NDVI_SPEC",
    "PARIS_GRID",
    "ProductSpec",
    "S5_TOC_NDVI_SPEC",
    "TIME_UNITS",
    "default_greenness",
    "dekad_dates",
    "generate_product",
    "seasonal_factor",
]
