"""Synthetic Copernicus Global Land Service products.

The paper's deployment exposes BioPar BA300 (burnt area), LAI (leaf
area index), NDVI, and the PROBA-V S5 TOC NDVI 100M product. We cannot
ship the real archives, so this module generates deterministic synthetic
rasters with the properties the downstream experiments rely on:

- CF-style metadata (units, fill values, time encoding, ACDD globals);
- a seasonal cycle (northern-hemisphere summer peak);
- spatial structure driven by a ``greenness`` field in [0, 1], so green
  features (parks) genuinely show higher LAI/NDVI than industrial areas
  — the signal the "greenness of Paris" case study visualizes;
- reprocessing semantics: successive RT (real-time) versions of the
  same date carry less noise, mirroring how the production centre
  reprocesses products when better meteorological data arrives.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from datetime import date, datetime, timezone
from typing import Callable, Optional, Sequence, Tuple

import numpy as np

from ..opendap import DapDataset

GreennessFn = Callable[[float, float], float]


@dataclass(frozen=True)
class ProductSpec:
    """Static description of one Global Land product."""

    name: str
    long_name: str
    units: str
    valid_min: float
    valid_max: float
    fill_value: float
    cadence_days: int
    base_level: float       # value at greenness == 0
    seasonal_amplitude: float  # extra value at greenness == 1, summer peak


LAI_SPEC = ProductSpec(
    name="LAI",
    long_name="Leaf Area Index",
    units="m2/m2",
    valid_min=0.0,
    valid_max=10.0,
    fill_value=-1.0,
    cadence_days=10,
    base_level=0.3,
    seasonal_amplitude=5.5,
)

NDVI_SPEC = ProductSpec(
    name="NDVI",
    long_name="Normalized Difference Vegetation Index",
    units="1",
    valid_min=-0.08,
    valid_max=0.92,
    fill_value=-0.1,
    cadence_days=10,
    base_level=0.08,
    seasonal_amplitude=0.75,
)

BA300_SPEC = ProductSpec(
    name="BA300",
    long_name="Burnt Area 300m",
    units="1",
    valid_min=0.0,
    valid_max=1.0,
    fill_value=-1.0,
    cadence_days=10,
    base_level=0.0,
    seasonal_amplitude=0.0,
)

S5_TOC_NDVI_SPEC = ProductSpec(
    name="S5_TOC_NDVI_100M",
    long_name="PROBA-V S5 Top of Canopy NDVI 100m",
    units="1",
    valid_min=-0.08,
    valid_max=0.92,
    fill_value=-0.1,
    cadence_days=5,
    base_level=0.08,
    seasonal_amplitude=0.75,
)

ALL_SPECS = {
    s.name: s for s in (LAI_SPEC, NDVI_SPEC, BA300_SPEC, S5_TOC_NDVI_SPEC)
}


@dataclass(frozen=True)
class Grid:
    """A regular lon/lat grid."""

    min_lon: float
    min_lat: float
    max_lon: float
    max_lat: float
    n_lon: int
    n_lat: int

    @property
    def lons(self) -> np.ndarray:
        return np.linspace(self.min_lon, self.max_lon, self.n_lon)

    @property
    def lats(self) -> np.ndarray:
        return np.linspace(self.min_lat, self.max_lat, self.n_lat)


#: Paris-and-surroundings grid used throughout the case study.
PARIS_GRID = Grid(2.15, 48.75, 2.55, 48.95, 24, 12)

#: A coarse continental grid for volume-oriented benchmarks.
EUROPE_GRID = Grid(-10.0, 35.0, 30.0, 60.0, 80, 50)

TIME_UNITS = "days since 2014-01-01"
_EPOCH = date(2014, 1, 1)


def default_greenness(lon: float, lat: float) -> float:
    """A smooth deterministic pseudo-landscape in [0, 1]."""
    value = (
        0.5
        + 0.3 * math.sin(lon * 9.7) * math.cos(lat * 11.3)
        + 0.2 * math.sin((lon + lat) * 23.0)
    )
    return min(1.0, max(0.0, value))


def seasonal_factor(day: date) -> float:
    """0..1 seasonal cycle peaking around July 1 (northern hemisphere)."""
    doy = day.timetuple().tm_yday
    return 0.5 - 0.5 * math.cos(2 * math.pi * (doy - 10) / 365.25)


def _day_number(day: date) -> int:
    return (day - _EPOCH).days


def generate_product(spec: ProductSpec, day: date,
                     grid: Grid = PARIS_GRID,
                     greenness: Optional[GreennessFn] = None,
                     version: int = 0,
                     seed: int = 7,
                     cloud_fraction: float = 0.02) -> DapDataset:
    """Generate one dated product raster.

    ``version`` is the reprocessing index (RT0, RT1, ...): higher
    versions use better meteo data, modelled as lower observation noise.
    """
    greenness = greenness or default_greenness
    lons, lats = grid.lons, grid.lats
    g_field = np.array(
        [[greenness(float(lon), float(lat)) for lon in lons] for lat in lats]
    )
    season = seasonal_factor(day)
    field = spec.base_level + spec.seasonal_amplitude * season * g_field

    rng = np.random.default_rng(
        (seed, hash(spec.name) & 0xFFFF, _day_number(day))
    )
    noise_scale = 0.15 / (1 + version)  # RT1 is twice as clean as RT0
    field = field * (1 + rng.normal(0.0, noise_scale, size=field.shape))
    field = np.clip(field, spec.valid_min, spec.valid_max)

    if cloud_fraction > 0:
        clouds = rng.random(field.shape) < cloud_fraction
        field = np.where(clouds, spec.fill_value, field)

    ds = DapDataset(
        spec.name,
        attributes={
            "title": spec.long_name,
            "Conventions": "CF-1.6, ACDD-1.3",
            "institution": "VITO (synthetic reproduction)",
            "source": "Copernicus Global Land Service (simulated)",
            "product_version": f"RT{version}",
            "time_coverage_start": day.isoformat(),
            "date_created": day.isoformat(),
        },
    )
    ds.add_variable(
        "time", ["time"],
        np.array([_day_number(day)], dtype=np.int32),
        {"units": TIME_UNITS, "axis": "T", "standard_name": "time"},
    )
    ds.add_variable(
        "lat", ["lat"], lats,
        {"units": "degrees_north", "axis": "Y", "standard_name": "latitude"},
    )
    ds.add_variable(
        "lon", ["lon"], lons,
        {"units": "degrees_east", "axis": "X", "standard_name": "longitude"},
    )
    ds.add_variable(
        spec.name, ["time", "lat", "lon"],
        field[np.newaxis, :, :].astype(np.float32),
        {
            "units": spec.units,
            "long_name": spec.long_name,
            "_FillValue": spec.fill_value,
            "valid_min": spec.valid_min,
            "valid_max": spec.valid_max,
            "grid_mapping": "crs",
        },
    )
    return ds


def dekad_dates(start: date, count: int, cadence_days: int = 10
                ) -> Sequence[date]:
    """The observation dates for *count* consecutive composites."""
    from datetime import timedelta

    return [start + timedelta(days=i * cadence_days) for i in range(count)]
