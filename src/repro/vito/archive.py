"""The Copernicus Global Land archive layout and its DAP-friendly view.

Section 5 of the paper describes a concrete operational problem: the
production centre reprocesses data, so the archive holds *multiple
versions of data for the same day* in a directory structure the DAP
server cannot serve. VITO's fix was "a script to create a directory
structure that uses symbolic links to point at the most recent version".

This module reproduces both sides: a versioned archive
(``product/date/RTn/file.nc``) and the symlinked *virtual directory*
exposing exactly one (latest) version per date.
"""

from __future__ import annotations

from datetime import date
from typing import Dict, List, Optional, Tuple

from ..opendap import DapDataset


class ArchiveError(KeyError):
    """Raised for lookups of unpublished products/dates."""


class GlobalLandArchive:
    """Versioned storage for dated product rasters."""

    def __init__(self):
        # product -> date -> version -> dataset
        self._store: Dict[str, Dict[date, Dict[int, DapDataset]]] = {}

    # -- publication ----------------------------------------------------------
    def publish(self, product: str, day: date, version: int,
                dataset: DapDataset) -> str:
        """Store a dataset; returns its physical archive path."""
        self._store.setdefault(product, {}).setdefault(day, {})[version] = \
            dataset
        return self.physical_path(product, day, version)

    def reprocess(self, product: str, day: date,
                  dataset: DapDataset) -> Tuple[int, str]:
        """Publish the next RT version for an existing date."""
        versions = self._versions(product, day)
        next_version = max(versions) + 1 if versions else 0
        return next_version, self.publish(product, day, next_version, dataset)

    # -- lookup ---------------------------------------------------------------
    def products(self) -> List[str]:
        return sorted(self._store)

    def dates(self, product: str) -> List[date]:
        return sorted(self._by_product(product))

    def _by_product(self, product: str) -> Dict[date, Dict[int, DapDataset]]:
        try:
            return self._store[product]
        except KeyError:
            raise ArchiveError(f"no product {product!r} in archive") from None

    def _versions(self, product: str, day: date) -> List[int]:
        return sorted(self._by_product(product).get(day, {}))

    def versions(self, product: str, day: date) -> List[int]:
        versions = self._versions(product, day)
        if not versions:
            raise ArchiveError(f"no data for {product} on {day}")
        return versions

    def get(self, product: str, day: date,
            version: Optional[int] = None) -> DapDataset:
        by_day = self._by_product(product)
        try:
            by_version = by_day[day]
        except KeyError:
            raise ArchiveError(f"no data for {product} on {day}") from None
        if version is None:
            version = max(by_version)
        try:
            return by_version[version]
        except KeyError:
            raise ArchiveError(
                f"no version RT{version} of {product} on {day}"
            ) from None

    def latest(self, product: str) -> Dict[date, DapDataset]:
        """Most recent version of every date (what the DAP should expose)."""
        return {
            day: versions[max(versions)]
            for day, versions in sorted(self._by_product(product).items())
        }

    # -- directory views --------------------------------------------------------
    @staticmethod
    def physical_path(product: str, day: date, version: int) -> str:
        return f"{product}/{day.isoformat()}/RT{version}/" \
               f"c_gls_{product}_{day.strftime('%Y%m%d')}0000_RT{version}.nc"

    def physical_tree(self, product: str) -> List[str]:
        """Every stored file path, including superseded versions."""
        out = []
        for day, versions in sorted(self._by_product(product).items()):
            for version in sorted(versions):
                out.append(self.physical_path(product, day, version))
        return out

    def virtual_tree(self, product: str) -> Dict[str, str]:
        """The symlinked view: one entry per date → latest physical path.

        This is the structure actually mounted into the DAP server.
        """
        links = {}
        for day, versions in sorted(self._by_product(product).items()):
            latest_version = max(versions)
            link = f"{product}/{day.isoformat()}.nc"
            links[link] = self.physical_path(product, day, latest_version)
        return links

    def __repr__(self) -> str:
        counts = {p: len(d) for p, d in self._store.items()}
        return f"<GlobalLandArchive {counts}>"
