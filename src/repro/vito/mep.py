"""The PROBA-V Mission Exploitation Platform (MEP) deployment.

Section 3.1: "OPeNDAP and SDL are installed and configured by VITO on a
virtual machine running on the VITO hosted PROBA-V mission exploitation
platform, which has direct access to the data archives ... Three
different services are exposed for each dataset: the OPeNDAP service,
the NetcdfSubset service and the NCML service" and "each dataset also
contains a netCDF NCML aggregation, which is automatically updated when
new data (a new date) becomes available."

:class:`MepDeployment` wires a :class:`GlobalLandArchive` into a
:class:`DapServer`: each product is mounted as a *factory* that
re-aggregates the latest versions on every request, so publishing a new
date (or a reprocessed version) is immediately visible.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..opendap import (
    DapDataset,
    DapServer,
    LatencyModel,
    aggregate_join_existing,
    subset_by_coords,
)
from .archive import GlobalLandArchive


class MepDeployment:
    """The VITO-hosted OPeNDAP head over the Global Land archive."""

    def __init__(self, archive: GlobalLandArchive,
                 host: str = "proba-v-mep.esa.int",
                 latency: Optional[LatencyModel] = None):
        self.archive = archive
        self.server = DapServer(host, latency=latency)
        self._mounted: List[str] = []

    def mount_product(self, product: str,
                      path_prefix: str = "Copernicus") -> str:
        """Expose one product; returns its dataset path on the server."""
        path = f"{path_prefix}/{product}"

        def factory(product=product) -> DapDataset:
            return self.aggregated(product)

        self.server.mount(path, factory)
        self._mounted.append(path)
        return path

    def mount_all(self, path_prefix: str = "Copernicus") -> List[str]:
        return [
            self.mount_product(p, path_prefix) for p in self.archive.products()
        ]

    def aggregated(self, product: str) -> DapDataset:
        """The NcML joinExisting aggregation over latest versions."""
        latest = self.archive.latest(product)
        parts = [latest[day] for day in sorted(latest)]
        return aggregate_join_existing(parts, dim="time", name=product)

    # -- the three services (Section 3.1) ------------------------------------
    def opendap_url(self, product: str,
                    path_prefix: str = "Copernicus") -> str:
        return self.server.url(f"{path_prefix}/{product}")

    def ncml_url(self, product: str, path_prefix: str = "Copernicus") -> str:
        return self.server.url(f"{path_prefix}/{product}") + ".ncml"

    def netcdf_subset(self, product: str, bbox=None, time_range=None
                      ) -> DapDataset:
        """The NetcdfSubset service (coordinate-space subsetting)."""
        return subset_by_coords(
            self.aggregated(product), bbox=bbox, time_range=time_range
        )

    def services(self, product: str,
                 path_prefix: str = "Copernicus") -> Dict[str, str]:
        base = self.opendap_url(product, path_prefix)
        return {
            "opendap": base,
            "ncml": base + ".ncml",
            "netcdfsubset": base + "?<bbox,time>",
        }

    def __repr__(self) -> str:
        return f"<MepDeployment {self.server.host} mounts={self._mounted}>"
