"""``applab-quickstart``: a tiny CLI smoke run of the whole stack."""

from __future__ import annotations

import sys
from datetime import date
from typing import Optional, Sequence

from ..vito import LAI_SPEC, dekad_dates
from .applab import AppLab


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    n_dekads = int(args[0]) if args else 2

    lab = AppLab()
    url = lab.publish_product(
        LAI_SPEC, dekad_dates(date(2018, 6, 1), n_dekads)
    )
    print(f"published LAI at {url}")

    engine, operator = lab.virtual_endpoint("LAI")
    result = engine.query(
        "PREFIX lai: <http://www.app-lab.eu/lai/> "
        "SELECT (COUNT(*) AS ?n) (AVG(?v) AS ?mean) "
        "WHERE { ?obs lai:lai ?v }"
    )
    row = result.rows[0]
    print(
        f"virtual endpoint: {row['n'].value} LAI observations, "
        f"mean {row['mean'].value:.2f}"
    )

    lab.annotate_products()
    yes, hits = lab.search.answer("any vegetation dataset?")
    print(f"dataset search: {'yes' if yes else 'no'} "
          f"({hits[0].annotation.name if hits else 'none'})")

    report = lab.validate_drs()
    print(f"DRS validation: {'PASS' if report.ok else 'FAIL'}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
