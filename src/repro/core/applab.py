"""The Copernicus App Lab facade: one object wiring the whole stack.

``AppLab`` assembles the architecture of Figure 1: a Copernicus data
source layer (the VITO archive + OPeNDAP MEP), the access layer (SDL
with RAMANI auth, Ontop-spatial virtual endpoints, GeoTriples +
Strabon materialization), value-adding services (interlinking, Sextant,
schema.org publication, metadata CMS) and the operations layer
(Terradue platform + Kubernetes-run analytics).

Most applications only need a handful of calls::

    lab = AppLab()
    lab.publish_product(LAI_SPEC, dekad_dates(date(2018, 6, 1), 3))
    engine, op = lab.virtual_endpoint("LAI")       # workflow right
    store = lab.materialize("LAI")                  # workflow left
    lab.annotate_products()
    yes, hits = lab.search.answer("any vegetation dataset?")
"""

from __future__ import annotations

from datetime import date
from typing import Callable, Dict, List, Optional, Tuple

from ..catalog import MetadataCms, validate_server
from ..cloud import (
    Appliance,
    Cluster,
    DeploymentSpec,
    DockerImage,
    Environment,
    PodSpec,
    TerraduePlatform,
)
from ..geometry import Polygon
from ..ontop import OntopSpatial, make_opendap_endpoint
from ..opendap import LatencyModel, ServerRegistry
from ..rdf import Graph
from ..schemaorg import (
    DatasetSearchEngine,
    annotation_from_dap,
)
from ..sdl import MapsApi, StreamingDataLibrary, TokenAuthority
from ..strabon import StrabonStore
from ..vito import (
    ALL_SPECS,
    GlobalLandArchive,
    Grid,
    MepDeployment,
    PARIS_GRID,
    ProductSpec,
    dekad_dates,
    generate_product,
)
from .ontologies import all_ontologies


class AppLab:
    """The integrated Copernicus App Lab environment."""

    def __init__(self, host: str = "vito.applab.eu",
                 latency: Optional[LatencyModel] = None,
                 greenness: Optional[Callable] = None,
                 grid: Grid = PARIS_GRID,
                 seed: int = 7):
        self.grid = grid
        self.seed = seed
        self.greenness = greenness
        # data layer
        self.archive = GlobalLandArchive()
        self.mep = MepDeployment(self.archive, host=host, latency=latency)
        self.registry = ServerRegistry()
        self.registry.register(self.mep.server)
        # access layer
        self.auth = TokenAuthority()
        self.sdl = StreamingDataLibrary(self.registry, auth=self.auth)
        self.cms = MetadataCms()
        # discoverability
        self.search = DatasetSearchEngine()
        # operations
        self.platform = TerraduePlatform()
        self.platform.add_environment(Environment("terradue"))
        self.platform.add_environment(Environment(host))
        self.cluster = Cluster()
        self._product_urls: Dict[str, str] = {}

    # -- data publication -------------------------------------------------------
    def publish_product(self, spec: ProductSpec, days: List[date],
                        cloud_fraction: float = 0.02) -> str:
        """Generate + archive a product series and expose it over DAP."""
        for day in days:
            self.archive.publish(
                spec.name, day, 0,
                generate_product(
                    spec, day, grid=self.grid,
                    greenness=self.greenness, seed=self.seed,
                    cloud_fraction=cloud_fraction,
                ),
            )
        path = self.mep.mount_product(spec.name)
        url = self.mep.server.url(path)
        self._product_urls[spec.name] = url
        self.sdl.register_dataset(spec.name, url)
        return url

    def product_url(self, product: str) -> str:
        return self._product_urls[product]

    def products(self) -> List[str]:
        return sorted(self._product_urls)

    # -- the two workflows of Figure 1 -----------------------------------------
    def virtual_endpoint(self, product: str,
                         window_minutes: float = 10,
                         clock=None,
                         tracer=None) -> Tuple[OntopSpatial, object]:
        """Workflow right: on-the-fly GeoSPARQL over OPeNDAP.

        ``tracer`` wires a :class:`~repro.observability.Tracer` through
        the whole stack (Ontop → MadIS → DAP client).
        """
        import time as _time

        engine, operator, __ = make_opendap_endpoint(
            self.registry, self.product_url(product), variable=product,
            window_minutes=window_minutes,
            clock=clock or _time.monotonic,
            tracer=tracer,
        )
        return engine, operator

    def materialize(self, product: str,
                    include_ontologies: bool = True) -> StrabonStore:
        """Workflow left: download + transform into RDF + store."""
        from ..geotriples import LogicalSource, MappingProcessor, TermMap, \
            TriplesMap
        from ..rdf import LAI as LAI_NS
        from ..rdf import TIME, XSD

        tmap = TriplesMap(
            name=product,
            logical_source=LogicalSource(
                "opendap", self.product_url(product),
                options={"registry": self.registry, "variable": product},
            ),
            subject_map=TermMap(template=str(LAI_NS) + "obs/{id}"),
            classes=[LAI_NS.Observation],
            geometry_column="loc",
        )
        tmap.add_pom(
            LAI_NS.lai,
            TermMap(column=product, term_type="literal",
                    datatype=XSD.float),
        )
        tmap.add_pom(
            TIME.hasTime,
            TermMap(column="ts", term_type="literal",
                    datatype=XSD.dateTime),
        )
        store = StrabonStore(product)
        MappingProcessor([tmap]).run(store)
        if include_ontologies:
            store.update(all_ontologies())
        return store

    # -- discoverability ------------------------------------------------------------
    def annotate_products(self,
                          provider: str = "VITO") -> List[str]:
        """Annotate every published product and index it for search."""
        annotated = []
        for product, url in sorted(self._product_urls.items()):
            dataset = self.mep.aggregated(product)
            spatial = Polygon.box(
                self.grid.min_lon, self.grid.min_lat,
                self.grid.max_lon, self.grid.max_lat,
            )
            annotation = annotation_from_dap(
                url, dataset.attributes, spatial=spatial,
                eo={"platform": "PROBA-V", "productType": product,
                    "thematicArea": "land"},
            )
            if not annotation.keywords:
                annotation.keywords = [product, "vegetation", "Copernicus"]
            if not annotation.provider:
                annotation.provider = provider
            self.search.index(annotation)
            annotated.append(url)
        return annotated

    # -- metadata governance ---------------------------------------------------------
    def harvest_metadata(self) -> List[str]:
        """CMS harvest over the MEP (recurrent by design)."""
        return self.cms.harvest(self.mep.server)

    def validate_drs(self):
        return validate_server(self.mep.server)

    # -- applications -------------------------------------------------------------------
    def maps_api(self, user_email: str) -> Tuple[MapsApi, str]:
        """Register an app developer and hand them a Maps-API client."""
        token = self.auth.register(user_email)
        return MapsApi(self.sdl, token=token), token

    # -- operations ------------------------------------------------------------------------
    def release_and_deploy(self, version: str = "1.0.0",
                           environment: str = "terradue"):
        """Release the stack's appliances and deploy them (Section 5)."""
        appliances = [
            Appliance(name, DockerImage(f"applab/{name}", version))
            for name in ("ontop-spatial", "strabon", "geotriples",
                         "sextant", "sdl", "opendap")
        ]
        self.platform.new_release(version, appliances)
        deployments = self.platform.deploy_stack(version, environment)
        self.cluster.apply(
            DeploymentSpec(
                "ramani-analytics", 2,
                PodSpec(image=f"applab/analytics:{version}"),
            )
        )
        return deployments
