"""The INSPIRE-compliant dataset ontologies of Section 4.

- :func:`lai_ontology` — Figure 2: LAI observations reusing the Data
  Cube (qb), GeoSPARQL (geo/sf) and Time (time) vocabularies;
- :func:`gadm_ontology` — Figure 3: administrative units;
- :func:`corine_ontology` — the full 3-level CORINE nomenclature
  (5 level-1 / 15 level-2 / 44 level-3 classes) with
  ``clc:CorineArea``, ``clc:hasCorineValue`` and ``clc:CorineValue``
  exactly as the paper describes;
- :func:`urban_atlas_ontology` — 17 urban + 10 rural classes;
- :func:`osm_ontology` — feature classes per OSM point-of-interest type.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..rdf import (
    CLC,
    GADM,
    GEO,
    Graph,
    INSPIRE,
    IRI,
    LAI,
    Literal,
    OSM,
    OWL,
    QB,
    RDF,
    RDFS,
    SF,
    TIME,
    UA,
    XSD,
)


def _klass(graph: Graph, iri: IRI, label: str,
           parent: Optional[IRI] = None) -> IRI:
    graph.add(iri, RDF.type, OWL.Class)
    graph.add(iri, RDFS.label, Literal(label, lang="en"))
    if parent is not None:
        graph.add(iri, RDFS.subClassOf, parent)
    return iri


def _property(graph: Graph, iri: IRI, label: str, domain: IRI,
              range_: IRI, datatype: bool = False) -> IRI:
    kind = OWL.DatatypeProperty if datatype else OWL.ObjectProperty
    graph.add(iri, RDF.type, kind)
    graph.add(iri, RDFS.label, Literal(label, lang="en"))
    graph.add(iri, RDFS.domain, domain)
    graph.add(iri, RDFS.range, range_)
    return iri


def _geosparql_core(g: Graph) -> None:
    """The shared GeoSPARQL schema block every dataset ontology reuses.

    ``geo:hasGeometry`` / ``geo:asWKT`` are declared once with their
    *GeoSPARQL* domains and ranges — per-dataset domains would be global
    axioms and make RDFS inference type every feature with every
    dataset class.
    """
    _klass(g, GEO.Feature, "feature")
    _klass(g, GEO.Geometry, "geometry")
    _property(g, GEO.hasGeometry, "has geometry", GEO.Feature,
              GEO.Geometry)
    _property(g, GEO.asWKT, "as WKT", GEO.Geometry, GEO.wktLiteral,
              datatype=True)
    for sf_class in (SF.Point, SF.LineString, SF.Polygon):
        _klass(g, sf_class, sf_class.local_name, parent=GEO.Geometry)


def lai_ontology() -> Graph:
    """The LAI ontology of Figure 2."""
    g = Graph("lai-ontology")
    _geosparql_core(g)
    _klass(g, LAI.Observation, "LAI observation", parent=QB.Observation)
    g.add(LAI.Observation, RDFS.subClassOf, GEO.Feature)
    _property(g, LAI.lai, "leaf area index value", LAI.Observation,
              XSD.float, datatype=True)
    _property(g, TIME.hasTime, "observation time", LAI.Observation,
              XSD.dateTime, datatype=True)
    # the Figure-2 arrow "Observation → sf:Point": a schema hint, not a
    # global domain axiom
    g.add(LAI.Observation, GEO.defaultGeometry, SF.Point)
    g.add(LAI.Observation, RDFS.seeAlso,
          IRI("https://land.copernicus.eu/global/products/lai"))
    return g


def gadm_ontology() -> Graph:
    """The GADM ontology of Figure 3."""
    g = Graph("gadm-ontology")
    _geosparql_core(g)
    _klass(g, GADM.AdministrativeUnit, "administrative unit",
           parent=GEO.Feature)
    _property(g, GADM.hasName, "administrative unit name",
              GADM.AdministrativeUnit, XSD.string, datatype=True)
    _property(g, GADM.hasLevel, "administrative level",
              GADM.AdministrativeUnit, XSD.integer, datatype=True)
    _property(g, GADM.isWithin, "parent unit",
              GADM.AdministrativeUnit, GADM.AdministrativeUnit)
    g.add(GADM.AdministrativeUnit, GEO.defaultGeometry, SF.Polygon)
    return g


#: The complete CORINE Land Cover nomenclature: code → (label, parent).
CORINE_NOMENCLATURE: Dict[str, Tuple[str, Optional[str]]] = {
    # level 1
    "1": ("Artificial surfaces", None),
    "2": ("Agricultural areas", None),
    "3": ("Forest and semi-natural areas", None),
    "4": ("Wetlands", None),
    "5": ("Water bodies", None),
    # level 2
    "11": ("Urban fabric", "1"),
    "12": ("Industrial, commercial and transport units", "1"),
    "13": ("Mine, dump and construction sites", "1"),
    "14": ("Artificial, non-agricultural vegetated areas", "1"),
    "21": ("Arable land", "2"),
    "22": ("Permanent crops", "2"),
    "23": ("Pastures", "2"),
    "24": ("Heterogeneous agricultural areas", "2"),
    "31": ("Forests", "3"),
    "32": ("Scrub and/or herbaceous vegetation associations", "3"),
    "33": ("Open spaces with little or no vegetation", "3"),
    "41": ("Inland wetlands", "4"),
    "42": ("Maritime wetlands", "4"),
    "51": ("Inland waters", "5"),
    "52": ("Marine waters", "5"),
    # level 3 (the 44 CLC classes)
    "111": ("Continuous urban fabric", "11"),
    "112": ("Discontinuous urban fabric", "11"),
    "121": ("Industrial or commercial units", "12"),
    "122": ("Road and rail networks and associated land", "12"),
    "123": ("Port areas", "12"),
    "124": ("Airports", "12"),
    "131": ("Mineral extraction sites", "13"),
    "132": ("Dump sites", "13"),
    "133": ("Construction sites", "13"),
    "141": ("Green urban areas", "14"),
    "142": ("Sport and leisure facilities", "14"),
    "211": ("Non-irrigated arable land", "21"),
    "212": ("Permanently irrigated land", "21"),
    "213": ("Rice fields", "21"),
    "221": ("Vineyards", "22"),
    "222": ("Fruit trees and berry plantations", "22"),
    "223": ("Olive groves", "22"),
    "231": ("Pastures", "23"),
    "241": ("Annual crops associated with permanent crops", "24"),
    "242": ("Complex cultivation patterns", "24"),
    "243": ("Land principally occupied by agriculture", "24"),
    "244": ("Agro-forestry areas", "24"),
    "311": ("Broad-leaved forest", "31"),
    "312": ("Coniferous forest", "31"),
    "313": ("Mixed forest", "31"),
    "321": ("Natural grasslands", "32"),
    "322": ("Moors and heathland", "32"),
    "323": ("Sclerophyllous vegetation", "32"),
    "324": ("Transitional woodland-shrub", "32"),
    "331": ("Beaches, dunes, sands", "33"),
    "332": ("Bare rocks", "33"),
    "333": ("Sparsely vegetated areas", "33"),
    "334": ("Burnt areas", "33"),
    "335": ("Glaciers and perpetual snow", "33"),
    "411": ("Inland marshes", "41"),
    "412": ("Peat bogs", "41"),
    "421": ("Salt marshes", "42"),
    "422": ("Salines", "42"),
    "423": ("Intertidal flats", "42"),
    "511": ("Water courses", "51"),
    "512": ("Water bodies", "51"),
    "521": ("Coastal lagoons", "52"),
    "522": ("Estuaries", "52"),
    "523": ("Sea and ocean", "52"),
}


def corine_class_iri(code: str) -> IRI:
    label, __ = CORINE_NOMENCLATURE[code]
    camel = "".join(
        part.capitalize()
        for part in label.replace(",", " ").replace("/", " ").replace(
            "-", " ").split()
    )
    return CLC.term(camel)


def corine_ontology() -> Graph:
    """The CORINE ontology: CorineArea / hasCorineValue / class tree."""
    g = Graph("corine-ontology")
    _geosparql_core(g)
    _klass(g, CLC.CorineArea, "CORINE land cover unit",
           parent=INSPIRE.LandCoverUnit)
    g.add(CLC.CorineArea, RDFS.subClassOf, GEO.Feature)
    _klass(g, CLC.CorineValue, "CORINE land cover value")
    _property(g, CLC.hasCorineValue, "has CORINE land cover value",
              CLC.CorineArea, CLC.CorineValue)
    # hasCode is used on both CorineValue classes and CorineArea
    # instances, so it carries a range but no domain axiom.
    g.add(CLC.hasCode, RDF.type, OWL.DatatypeProperty)
    g.add(CLC.hasCode, RDFS.label, Literal("CLC class code", lang="en"))
    g.add(CLC.hasCode, RDFS.range, XSD.string)
    g.add(CLC.CorineArea, GEO.defaultGeometry, SF.Polygon)
    for code, (label, parent) in CORINE_NOMENCLATURE.items():
        iri = corine_class_iri(code)
        parent_iri = corine_class_iri(parent) if parent else CLC.CorineValue
        _klass(g, iri, label, parent=parent_iri)
        g.add(iri, CLC.hasCode, Literal(code))
    return g


#: Urban Atlas 2012 nomenclature: 17 urban + 10 rural classes.
URBAN_ATLAS_NOMENCLATURE: Dict[str, Tuple[str, str]] = {
    # urban (class, kind)
    "11100": ("Continuous urban fabric (S.L. > 80%)", "urban"),
    "11210": ("Discontinuous dense urban fabric (S.L. 50%-80%)", "urban"),
    "11220": ("Discontinuous medium density urban fabric (S.L. 30%-50%)",
              "urban"),
    "11230": ("Discontinuous low density urban fabric (S.L. 10%-30%)",
              "urban"),
    "11240": ("Discontinuous very low density urban fabric (S.L. < 10%)",
              "urban"),
    "11300": ("Isolated structures", "urban"),
    "12100": ("Industrial, commercial, public, military and private units",
              "urban"),
    "12210": ("Fast transit roads and associated land", "urban"),
    "12220": ("Other roads and associated land", "urban"),
    "12230": ("Railways and associated land", "urban"),
    "12300": ("Port areas", "urban"),
    "12400": ("Airports", "urban"),
    "13100": ("Mineral extraction and dump sites", "urban"),
    "13300": ("Construction sites", "urban"),
    "13400": ("Land without current use", "urban"),
    "14100": ("Green urban areas", "urban"),
    "14200": ("Sports and leisure facilities", "urban"),
    # rural
    "21000": ("Arable land (annual crops)", "rural"),
    "22000": ("Permanent crops (vineyards, fruit trees, olive groves)",
              "rural"),
    "23000": ("Pastures", "rural"),
    "24000": ("Complex and mixed cultivation patterns", "rural"),
    "25000": ("Orchards", "rural"),
    "31000": ("Forests", "rural"),
    "32000": ("Herbaceous vegetation associations", "rural"),
    "33000": ("Open spaces with little or no vegetation", "rural"),
    "40000": ("Wetlands", "rural"),
    "50000": ("Water", "rural"),
}


def urban_atlas_class_iri(code: str) -> IRI:
    return UA.term(f"Class{code}")


def urban_atlas_ontology() -> Graph:
    """The Urban Atlas ontology (17 urban + 10 rural classes)."""
    g = Graph("urban-atlas-ontology")
    _geosparql_core(g)
    _klass(g, UA.UrbanAtlasArea, "Urban Atlas land use unit",
           parent=INSPIRE.LandUseUnit)
    g.add(UA.UrbanAtlasArea, RDFS.subClassOf, GEO.Feature)
    _klass(g, UA.UrbanClass, "urban land use class")
    _klass(g, UA.RuralClass, "rural land use class")
    _property(g, UA.hasLandUse, "has land use class", UA.UrbanAtlasArea,
              UA.UrbanClass)
    g.add(UA.UrbanAtlasArea, GEO.defaultGeometry, SF.Polygon)
    for code, (label, kind) in URBAN_ATLAS_NOMENCLATURE.items():
        iri = urban_atlas_class_iri(code)
        parent = UA.UrbanClass if kind == "urban" else UA.RuralClass
        _klass(g, iri, label, parent=parent)
        g.add(iri, UA.hasCode, Literal(code))
    return g


OSM_POI_TYPES = (
    "park", "museum", "landmark", "stadium", "sports_centre", "station",
    "industrial", "river", "forest",
)


def osm_ontology() -> Graph:
    """A minimal OSM ontology following the Geofabrik layer model."""
    g = Graph("osm-ontology")
    _geosparql_core(g)
    _klass(g, OSM.Feature, "OSM feature", parent=GEO.Feature)
    _klass(g, OSM.POI, "point of interest", parent=OSM.Feature)
    _property(g, OSM.hasName, "feature name", OSM.Feature, XSD.string,
              datatype=True)
    _property(g, OSM.poiType, "POI type", OSM.POI, OSM.POIType)
    _klass(g, OSM.POIType, "POI type")
    for poi_type in OSM_POI_TYPES:
        g.add(OSM.term(poi_type), RDF.type, OSM.POIType)
        g.add(OSM.term(poi_type), RDFS.label, Literal(poi_type, lang="en"))
    g.add(OSM.Feature, GEO.defaultGeometry, GEO.Geometry)
    return g


def all_ontologies() -> Graph:
    """The union ontology loaded into stores alongside the data."""
    g = Graph("applab-ontologies")
    for build in (lai_ontology, gadm_ontology, corine_ontology,
                  urban_atlas_ontology, osm_ontology):
        g.update(build())
    return g
