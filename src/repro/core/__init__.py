"""The paper's primary contribution: the Copernicus App Lab stack."""

from .applab import AppLab
from .casestudy import (
    GreennessCaseStudy,
    LISTING1,
    LISTING3,
    PREFIXES,
)
from .ontologies import (
    CORINE_NOMENCLATURE,
    OSM_POI_TYPES,
    URBAN_ATLAS_NOMENCLATURE,
    all_ontologies,
    corine_class_iri,
    corine_ontology,
    gadm_ontology,
    lai_ontology,
    osm_ontology,
    urban_atlas_class_iri,
    urban_atlas_ontology,
)

__all__ = [
    "AppLab",
    "CORINE_NOMENCLATURE",
    "GreennessCaseStudy",
    "LISTING1",
    "LISTING3",
    "OSM_POI_TYPES",
    "PREFIXES",
    "URBAN_ATLAS_NOMENCLATURE",
    "all_ontologies",
    "corine_class_iri",
    "corine_ontology",
    "gadm_ontology",
    "lai_ontology",
    "osm_ontology",
    "urban_atlas_class_iri",
    "urban_atlas_ontology",
]
