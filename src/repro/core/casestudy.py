"""The "greenness of Paris" case study (Section 4, Listings 1-3, Fig 4).

Builds the full scenario over synthetic Paris data and exposes both
workflows of Figure 1:

- **materialized (left)**: datasets are transformed into RDF with
  GeoTriples (the LAI grid through the NetCDF/OPeNDAP logical-source
  extension) and loaded into a Strabon store, where Listing 1 runs;
- **virtual (right)**: the LAI product stays at the (simulated) VITO
  OPeNDAP server; Ontop-spatial's Listing-2 mapping exposes it as a
  virtual graph where Listing 3 runs.

``build_map`` produces the Figure 4 thematic map: time-evolving LAI
circles over administrative outlines, CORINE, Urban Atlas and OSM
parks.
"""

from __future__ import annotations

from datetime import date
from typing import Dict, List, Optional, Tuple

from ..data import (
    arrondissements,
    corine_land_cover,
    gadm_hierarchy,
    osm_parks,
    osm_pois,
    paris_greenness,
    urban_atlas,
)
from ..geometry import FeatureCollection
from ..geotriples import (
    LogicalSource,
    MappingProcessor,
    TermMap,
    TriplesMap,
)
from ..ontop import OntopSpatial, make_opendap_endpoint
from ..opendap import LatencyModel, ServerRegistry
from ..rdf import (
    CLC,
    GADM,
    Graph,
    LAI,
    OSM,
    TIME,
    UA,
    XSD,
)
from ..strabon import StrabonStore
from ..vito import (
    GlobalLandArchive,
    LAI_SPEC,
    MepDeployment,
    PARIS_GRID,
    dekad_dates,
    generate_product,
)
from .ontologies import (
    all_ontologies,
    corine_class_iri,
    urban_atlas_class_iri,
)

PREFIXES = """
PREFIX lai: <http://www.app-lab.eu/lai/>
PREFIX gadm: <http://www.app-lab.eu/gadm/>
PREFIX clc: <http://www.app-lab.eu/corine/>
PREFIX ua: <http://www.app-lab.eu/urbanatlas/>
PREFIX osm: <http://www.app-lab.eu/osm/>
PREFIX geo: <http://www.opengis.net/ont/geosparql#>
PREFIX geof: <http://www.opengis.net/def/function/geosparql/>
PREFIX time: <http://www.w3.org/2006/time#>
PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>
PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>
"""

LISTING1 = PREFIXES + """
SELECT DISTINCT ?geoA ?geoB ?lai WHERE {
  ?areaA osm:poiType osm:park .
  ?areaA geo:hasGeometry ?geomA .
  ?geomA geo:asWKT ?geoA .
  ?areaA osm:hasName "Bois de Boulogne"^^xsd:string .
  ?areaB lai:lai ?lai .
  ?areaB geo:hasGeometry ?geomB .
  ?geomB geo:asWKT ?geoB .
  FILTER(geof:sfIntersects(?geoA, ?geoB))
}
"""

LISTING3 = PREFIXES + """
SELECT DISTINCT ?s ?wkt ?lai WHERE {
  ?s lai:lai ?lai .
  ?s geo:hasGeometry ?g .
  ?g geo:asWKT ?wkt
}
"""


class GreennessCaseStudy:
    """End-to-end scenario wiring of Section 4."""

    def __init__(self, start: date = date(2018, 5, 1), n_dekads: int = 4,
                 seed: int = 7, host: str = "vito.applab.test",
                 latency: Optional[LatencyModel] = None,
                 cloud_fraction: float = 0.02):
        self.dates = dekad_dates(start, n_dekads)
        self.greenness = paris_greenness()
        self.archive = GlobalLandArchive()
        for day in self.dates:
            self.archive.publish(
                "LAI", day, 0,
                generate_product(
                    LAI_SPEC, day, grid=PARIS_GRID,
                    greenness=self.greenness, seed=seed,
                    cloud_fraction=cloud_fraction,
                ),
            )
        self.mep = MepDeployment(self.archive, host=host, latency=latency)
        self.mep.mount_product("LAI")
        self.registry = ServerRegistry()
        self.registry.register(self.mep.server)
        self.lai_url = f"dap://{host}/Copernicus/LAI"
        # vector datasets
        self.parks = osm_parks()
        self.pois = osm_pois()
        self.corine = corine_land_cover()
        self.ua = urban_atlas()
        self.gadm_areas = arrondissements()
        self.gadm_levels = gadm_hierarchy()

    # -- GeoTriples mappings (materialized workflow) -----------------------
    def vector_triples_maps(self) -> List[TriplesMap]:
        maps: List[TriplesMap] = []

        parks_map = TriplesMap(
            name="osm-parks",
            logical_source=LogicalSource("geojson", self.parks),
            subject_map=TermMap(template=str(OSM) + "feature/{gid}"),
            classes=[OSM.POI],
            geometry_column="wkt",
        )
        parks_map.add_pom(
            OSM.hasName,
            TermMap(column="name", term_type="literal",
                    datatype=XSD.string),
        )
        parks_map.add_pom(
            OSM.poiType, TermMap(template=str(OSM) + "{poiType}")
        )
        maps.append(parks_map)

        pois_map = TriplesMap(
            name="osm-pois",
            logical_source=LogicalSource("geojson", self.pois),
            subject_map=TermMap(template=str(OSM) + "feature/{gid}"),
            classes=[OSM.POI],
            geometry_column="wkt",
        )
        pois_map.add_pom(
            OSM.hasName,
            TermMap(column="name", term_type="literal",
                    datatype=XSD.string),
        )
        pois_map.add_pom(
            OSM.poiType, TermMap(template=str(OSM) + "{poiType}")
        )
        maps.append(pois_map)

        corine_map = TriplesMap(
            name="corine",
            logical_source=LogicalSource(
                "geojson", _with_class_iris(self.corine, "corine")
            ),
            subject_map=TermMap(template=str(CLC) + "area/{gid}"),
            classes=[CLC.CorineArea],
            geometry_column="wkt",
        )
        corine_map.add_pom(
            CLC.hasCorineValue, TermMap(template="{class_iri}")
        )
        corine_map.add_pom(
            CLC.hasCode,
            TermMap(column="code", term_type="literal"),
        )
        maps.append(corine_map)

        ua_map = TriplesMap(
            name="urban-atlas",
            logical_source=LogicalSource(
                "geojson", _with_class_iris(self.ua, "ua")
            ),
            subject_map=TermMap(template=str(UA) + "area/{gid}"),
            classes=[UA.UrbanAtlasArea],
            geometry_column="wkt",
        )
        ua_map.add_pom(UA.hasLandUse, TermMap(template="{class_iri}"))
        maps.append(ua_map)

        gadm_map = TriplesMap(
            name="gadm",
            logical_source=LogicalSource(
                "geojson",
                FeatureCollection(
                    list(self.gadm_areas) + list(self.gadm_levels)
                ),
            ),
            subject_map=TermMap(template=str(GADM) + "unit/{gid}"),
            classes=[GADM.AdministrativeUnit],
            geometry_column="wkt",
        )
        gadm_map.add_pom(
            GADM.hasName,
            TermMap(column="name", term_type="literal",
                    datatype=XSD.string),
        )
        gadm_map.add_pom(
            GADM.hasLevel,
            TermMap(column="level", term_type="literal",
                    datatype=XSD.integer),
        )
        maps.append(gadm_map)
        return maps

    def lai_triples_map(self) -> TriplesMap:
        """LAI grid → RDF via the NetCDF/OPeNDAP logical source."""
        lai_map = TriplesMap(
            name="lai",
            logical_source=LogicalSource(
                "opendap", self.lai_url,
                options={"registry": self.registry},
            ),
            subject_map=TermMap(template=str(LAI) + "obs/{id}"),
            classes=[LAI.Observation],
            geometry_column="loc",
        )
        lai_map.add_pom(
            LAI.lai,
            TermMap(column="LAI", term_type="literal", datatype=XSD.float),
        )
        lai_map.add_pom(
            TIME.hasTime,
            TermMap(column="ts", term_type="literal",
                    datatype=XSD.dateTime),
        )
        return lai_map

    # -- workflows ---------------------------------------------------------------
    def materialized_store(self,
                           include_ontologies: bool = True) -> StrabonStore:
        """Workflow 'left': GeoTriples → Strabon."""
        store = StrabonStore("greenness-of-paris")
        processor = MappingProcessor(
            self.vector_triples_maps() + [self.lai_triples_map()]
        )
        processor.run(store)
        if include_ontologies:
            store.update(all_ontologies())
        return store

    def virtual_endpoint(self, window_minutes: float = 10,
                         clock=None,
                         tracer=None) -> Tuple[OntopSpatial, object]:
        """Workflow 'right': Ontop-spatial over OPeNDAP (Listing 2).

        ``tracer`` wires a :class:`~repro.observability.Tracer` through
        every layer of the stack (Ontop → MadIS → DAP client), so one
        query yields one trace tree down to the individual fetches.
        """
        import time as _time

        engine, operator, __ = make_opendap_endpoint(
            self.registry, self.lai_url, variable="LAI",
            window_minutes=window_minutes,
            clock=clock or _time.monotonic,
            tracer=tracer,
        )
        return engine, operator

    # -- the paper's queries ----------------------------------------------------
    def run_listing1(self, store: Optional[StrabonStore] = None):
        store = store if store is not None else self.materialized_store()
        return store.query(LISTING1)

    def run_listing3(self, engine: Optional[OntopSpatial] = None):
        if engine is None:
            engine, __ = self.virtual_endpoint()
        return engine.query(LISTING3)

    # -- Figure 4 -------------------------------------------------------------------
    def build_map(self, store: Optional[StrabonStore] = None):
        """The greenness-of-Paris thematic map (5 layers + timeline)."""
        from ..sextant import Style, ThematicMap

        store = store if store is not None else self.materialized_store()
        tm = ThematicMap(
            "The greenness of Paris",
            "LAI observations over administrative areas, CORINE land "
            "cover, Urban Atlas and OpenStreetMap parks",
        )
        tm.add_geojson_layer(
            "CORINE land cover", self.corine,
            style=Style(fill="#d8c9a3", stroke="#a89a74", opacity=0.4),
        )
        tm.add_geojson_layer(
            "Urban Atlas", self.ua,
            style=Style(fill="#c9b8d8", stroke="#9a74a8", opacity=0.4),
        )
        tm.add_geojson_layer(
            "OSM parks", self.parks,
            style=Style(fill="#2a7f3f", stroke="#1b4e27", opacity=0.55),
        )
        tm.add_geojson_layer(
            "Administrative areas", self.gadm_areas,
            style=Style(fill="none", stroke="#cc00cc", opacity=0.9),
        )
        tm.add_sparql_layer(
            "LAI observations", store,
            PREFIXES + """
            SELECT ?wkt ?lai ?t WHERE {
              ?obs lai:lai ?lai ; time:hasTime ?t ;
                   geo:hasGeometry ?g .
              ?g geo:asWKT ?wkt .
            }
            """,
            geom_var="wkt", value_var="lai", time_var="t",
            style=Style(radius=5.0, stroke="#222222"),
        )
        return tm

    # -- headline numbers -----------------------------------------------------------
    def park_vs_industrial_lai(self, store: Optional[StrabonStore] = None
                               ) -> Tuple[float, float]:
        """Mean LAI over green-urban vs industrial CORINE areas.

        The qualitative claim behind Figure 4: "Paris areas belonging to
        the CORINE land cover class clc:greenUrbanAreas ... show higher
        LAI values over time than industrial areas."
        """
        store = store if store is not None else self.materialized_store()

        def mean_for(code: str) -> float:
            result = store.query(
                PREFIXES + f"""
                SELECT (AVG(?lai) AS ?mean) WHERE {{
                  ?area clc:hasCode "{code}" ;
                        geo:hasGeometry ?ga .
                  ?ga geo:asWKT ?wa .
                  ?obs lai:lai ?lai ; geo:hasGeometry ?gb .
                  ?gb geo:asWKT ?wb .
                  FILTER(geof:sfIntersects(?wa, ?wb))
                }}
                """
            )
            value = result.rows[0].get("mean") if result.rows else None
            return float(value.value) if value is not None else float("nan")

        return mean_for("141"), mean_for("121")


def _with_class_iris(fc: FeatureCollection, kind: str) -> FeatureCollection:
    """Copy features, attaching the ontology class IRI as a property."""
    out = FeatureCollection()
    for feature in fc:
        properties = dict(feature.properties)
        code = str(properties["code"])
        if kind == "corine":
            properties["class_iri"] = str(corine_class_iri(code))
        else:
            properties["class_iri"] = str(urban_atlas_class_iri(code))
        out.append(
            type(feature)(feature.geometry, properties, feature.id)
        )
    return out
