"""MadIS SQL layer: sqlite + UDFs + MadIS-syntax virtual tables."""

from .engine import MadisConnection, MadisError
from .opendap_vt import OpendapVTOperator, attach_opendap
from .udfs import cf_datetime, register_default_udfs, st_point

__all__ = [
    "MadisConnection",
    "MadisError",
    "OpendapVTOperator",
    "attach_opendap",
    "cf_datetime",
    "register_default_udfs",
    "st_point",
]
