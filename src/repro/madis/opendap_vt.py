"""The ``opendap`` MadIS virtual-table operator (Section 3.2).

Usage inside a MadIS query, exactly as in the paper's Listing 2::

    SELECT id, LAI, ts, loc
    FROM (ordered opendap url:dap://vito.test/Copernicus/LAI, 10)
    WHERE LAI > 0

The operator

- contacts the OPeNDAP server, fetches the (optionally constrained)
  gridded product and flattens it into an observation table with schema
  ``(id, <VAR>, ts, loc)`` — ``id`` "constructed from the location and
  the time of observation", ``ts`` an ISO timestamp, ``loc`` a WKT
  point;
- caches results for a *time window w* (the trailing numeric argument,
  in minutes, exactly as Listing 2's ``10``): an identical call within
  the window is served from cache without touching the server.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..opendap import ServerRegistry, decode_time, open_url
from ..opendap.model import apply_fill_and_scale
from ..resilience import ResilienceStats, RetryPolicy
from .engine import MadisError

Row = Tuple

COLUMNS_TEMPLATE = ("id", None, "ts", "loc")  # None replaced by the variable


class OpendapVTOperator:
    """Stateful operator: holds the server registry and the call cache."""

    #: MadIS passes the caller's QueryBudget when this is set: the
    #: remote fetch is charged (and its retries deadline-capped) and
    #: the flattening loop becomes cooperatively cancellable.
    supports_budget = True

    def __init__(self, registry: ServerRegistry,
                 clock: Callable[[], float] = time.monotonic,
                 retry_policy: Optional[RetryPolicy] = None,
                 stats: Optional[ResilienceStats] = None,
                 tracer=None):
        self.registry = registry
        self.clock = clock
        self.retry_policy = retry_policy
        self.stats = stats if stats is not None else ResilienceStats()
        self.tracer = tracer
        self._cache: Dict[Tuple, Tuple[float, Sequence[str], List[Row]]] = {}
        self.cache_hits = 0
        self.cache_misses = 0
        self.server_calls = 0

    def __call__(self, *args, budget=None, **kwargs):
        """MadIS entry point: (columns, rows)."""
        url = kwargs.get("url")
        positional = list(args)
        if url is None:
            if not positional:
                raise MadisError("opendap operator requires url:<dap-url>")
            url = positional.pop(0)
        window_minutes = 0.0
        if positional:
            try:
                window_minutes = float(positional.pop(0))
            except ValueError:
                raise MadisError(
                    "opendap window argument must be numeric (minutes)"
                ) from None
        variable = kwargs.get("variable")
        constraint = kwargs.get("constraint", "")
        if self.tracer is None:
            return self._call(url, variable, constraint, window_minutes,
                              budget)
        with self.tracer.span("madis.opendap", url=url) as span:
            columns, rows = self._call(url, variable, constraint,
                                       window_minutes, budget, span=span)
            span.record("rows_flattened", len(rows))
            return columns, rows

    def _call(self, url, variable, constraint, window_minutes, budget,
              span=None):
        key = (url, variable, constraint)
        if window_minutes > 0:
            cached = self._cache.get(key)
            if cached is not None:
                stamp, columns, rows = cached
                if self.clock() - stamp <= window_minutes * 60.0:
                    self.cache_hits += 1
                    if span is not None:
                        span.record("vt_cache_hits")
                    return columns, rows
                del self._cache[key]
        self.cache_misses += 1
        if span is not None:
            span.record("vt_cache_misses")
        columns, rows = self._fetch(url, variable, constraint, budget=budget)
        if window_minutes > 0:
            self._cache[key] = (self.clock(), columns, rows)
        return columns, rows

    # -- data access -------------------------------------------------------
    def _fetch(self, url: str, variable: Optional[str],
               constraint: str, budget=None
               ) -> Tuple[Sequence[str], List[Row]]:
        self.server_calls += 1
        remote = open_url(url, self.registry,
                          retry_policy=self.retry_policy,
                          stats=self.stats.labeled(url=url),
                          tracer=self.tracer)
        dataset = remote.fetch(constraint, budget=budget)
        if variable is None:
            variable = _main_variable(dataset)
        if variable not in dataset:
            raise MadisError(
                f"no variable {variable!r} at {url}; "
                f"have {list(dataset.variables)}"
            )
        var = dataset[variable]
        if var.dims != ("time", "lat", "lon"):
            raise MadisError(
                f"opendap operator expects (time, lat, lon) grids, "
                f"got {var.dims}"
            )
        times = decode_time(dataset["time"])
        lats = dataset["lat"].data.astype(float)
        lons = dataset["lon"].data.astype(float)
        values = apply_fill_and_scale(var)

        rows: List[Row] = []
        for ti, moment in enumerate(times):
            ts = moment.strftime("%Y-%m-%dT%H:%M:%SZ")
            stamp_key = moment.strftime("%Y%m%d%H%M")
            plane = values[ti]
            for yi, lat in enumerate(lats):
                if budget is not None:
                    budget.check_deadline()
                for xi, lon in enumerate(lons):
                    value = plane[yi, xi]
                    if np.isnan(value):
                        continue
                    rows.append(
                        (
                            f"{lon:.4f}_{lat:.4f}_{stamp_key}",
                            float(value),
                            ts,
                            f"POINT ({lon:g} {lat:g})",
                        )
                    )
        return ("id", variable, "ts", "loc"), rows

    # -- cache administration --------------------------------------------------
    def clear_cache(self) -> None:
        self._cache.clear()
        self.cache_hits = 0
        self.cache_misses = 0


def _main_variable(dataset) -> str:
    candidates = [
        name for name, var in dataset.variables.items()
        if len(var.dims) == 3
    ]
    if not candidates:
        raise MadisError(
            f"dataset {dataset.name!r} has no 3-D (time, lat, lon) variable"
        )
    return candidates[0]


def attach_opendap(conn, registry: ServerRegistry,
                   clock: Callable[[], float] = time.monotonic,
                   retry_policy: Optional[RetryPolicy] = None,
                   stats: Optional[ResilienceStats] = None,
                   tracer=None) -> OpendapVTOperator:
    """Register the operator on a MadIS connection; returns it for stats."""
    operator = OpendapVTOperator(registry, clock=clock,
                                 retry_policy=retry_policy, stats=stats,
                                 tracer=tracer)
    conn.register_vt_operator("opendap", operator)
    return operator
