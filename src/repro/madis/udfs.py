"""Default MadIS user-defined functions.

Spatial UDFs operate on WKT text (matching how geometry columns travel
through the SQL layer) and are the target of Ontop-spatial's filter
pushdown: a GeoSPARQL ``geof:sfIntersects`` becomes ``ST_INTERSECTS``
in the generated SQL.
"""

from __future__ import annotations

import math
from datetime import timedelta
from typing import TYPE_CHECKING

from ..geometry import ops as geo_ops
from ..geometry import wkt_dumps, wkt_loads
from ..opendap.model import parse_time_units

if TYPE_CHECKING:  # pragma: no cover
    from .engine import MadisConnection


def _geom(wkt_text):
    if wkt_text is None:
        return None
    return wkt_loads(wkt_text)


def _binary_predicate(fn):
    def impl(a, b):
        ga, gb = _geom(a), _geom(b)
        if ga is None or gb is None:
            return None
        return int(fn(ga, gb))

    return impl


def st_point(lon, lat) -> str:
    return f"POINT ({float(lon):g} {float(lat):g})"


def st_distance(a, b):
    ga, gb = _geom(a), _geom(b)
    if ga is None or gb is None:
        return None
    return geo_ops.distance(ga, gb)


def st_area(a):
    g = _geom(a)
    return None if g is None else geo_ops.area(g)


def st_buffer(a, radius):
    g = _geom(a)
    return None if g is None else wkt_dumps(geo_ops.buffer(g, float(radius)))


def st_envelope(a):
    g = _geom(a)
    return None if g is None else wkt_dumps(geo_ops.envelope(g))


def st_centroid(a):
    g = _geom(a)
    return None if g is None else wkt_dumps(geo_ops.centroid(g))


def cf_datetime(value, units) -> str:
    """Convert a CF numeric time to an ISO 8601 UTC string.

    This is the conversion the paper describes for the ``ts`` column:
    "in the original dataset times are given as numeric values and their
    meaning is explained in the metadata ... the Opendap virtual table
    operator converts these values to a standard format".
    """
    step, epoch = parse_time_units(units)
    moment = epoch + timedelta(seconds=float(value) * step)
    return moment.strftime("%Y-%m-%dT%H:%M:%SZ")


class Median:
    """Aggregate: exact median."""

    def __init__(self):
        self.values = []

    def step(self, value):
        if value is not None:
            self.values.append(float(value))

    def finalize(self):
        if not self.values:
            return None
        values = sorted(self.values)
        n = len(values)
        mid = n // 2
        if n % 2:
            return values[mid]
        return (values[mid - 1] + values[mid]) / 2.0


class StdDev:
    """Aggregate: population standard deviation."""

    def __init__(self):
        self.n = 0
        self.mean = 0.0
        self.m2 = 0.0

    def step(self, value):
        if value is None:
            return
        self.n += 1
        delta = float(value) - self.mean
        self.mean += delta / self.n
        self.m2 += delta * (float(value) - self.mean)

    def finalize(self):
        if self.n == 0:
            return None
        return math.sqrt(self.m2 / self.n)


def register_default_udfs(conn: "MadisConnection") -> None:
    conn.register_function("ST_POINT", 2, st_point)
    conn.register_function(
        "ST_INTERSECTS", 2, _binary_predicate(geo_ops.intersects)
    )
    conn.register_function(
        "ST_CONTAINS", 2, _binary_predicate(geo_ops.contains)
    )
    conn.register_function("ST_WITHIN", 2, _binary_predicate(geo_ops.within))
    conn.register_function(
        "ST_TOUCHES", 2, _binary_predicate(geo_ops.touches)
    )
    conn.register_function(
        "ST_DISJOINT", 2, _binary_predicate(geo_ops.disjoint)
    )
    conn.register_function(
        "ST_OVERLAPS", 2, _binary_predicate(geo_ops.overlaps)
    )
    conn.register_function(
        "ST_CROSSES", 2, _binary_predicate(geo_ops.crosses)
    )
    conn.register_function("ST_EQUALS", 2, _binary_predicate(geo_ops.equals))
    conn.register_function("ST_DISTANCE", 2, st_distance)
    conn.register_function("ST_AREA", 1, st_area)
    conn.register_function("ST_BUFFER", 2, st_buffer)
    conn.register_function("ST_ENVELOPE", 1, st_envelope)
    conn.register_function("ST_CENTROID", 1, st_centroid)
    conn.register_function("CF_DATETIME", 2, cf_datetime)
    conn.register_aggregate("MEDIAN", 1, Median)
    conn.register_aggregate("STDDEV", 1, StdDev)
