"""MadIS: an extensible relational layer on SQLite.

The paper uses MadIS — "an extensible relational database system built
on top of the APSW SQLite wrapper [that] provides a Python interface so
that users can easily implement user-defined functions as rows,
aggregate functions, or virtual tables" — as the back end of
Ontop-spatial's OPeNDAP adapter.

This module reproduces that layer over the stdlib ``sqlite3``:

- row functions and aggregates register straight into SQLite;
- *virtual table operators* use MadIS's inverted syntax::

      SELECT id, LAI FROM (opendap url:dap://vito/LAI, 10) WHERE LAI > 0

  The preprocessor finds ``FROM (opname ...)`` clauses, invokes the
  registered Python operator to obtain (columns, rows), materializes a
  TEMP table on the fly and rewrites the query to read from it — which
  is exactly the paper's description ("create a table view on-the-fly,
  populate it with this data").
"""

from __future__ import annotations

import hashlib
import re
import sqlite3
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

VTResult = Tuple[Sequence[str], Iterable[Sequence]]
VTOperator = Callable[..., VTResult]


class MadisError(RuntimeError):
    """Raised for bad virtual-table invocations or SQL rewriting errors."""


# MadIS row modifiers that may precede the operator name.
_MODIFIERS = {"ordered", "direct"}

_FROM_OPEN_RE = re.compile(r"\b(from|join)\s*\(", re.IGNORECASE)


class MadisConnection:
    """A SQLite connection with UDFs and virtual-table operators."""

    def __init__(self, database: str = ":memory:", tracer=None):
        self._conn = sqlite3.connect(database)
        self._conn.row_factory = sqlite3.Row
        self._vt_operators: Dict[str, VTOperator] = {}
        self._vt_tables: Dict[str, str] = {}  # invocation hash -> temp table
        self.tracer = tracer
        from .udfs import register_default_udfs

        register_default_udfs(self)

    # -- registration -------------------------------------------------------
    def register_function(self, name: str, nargs: int,
                          fn: Callable) -> None:
        """Register a scalar row function."""
        self._conn.create_function(name, nargs, fn)

    def register_aggregate(self, name: str, nargs: int, cls: type) -> None:
        """Register an aggregate (class with step()/finalize())."""
        self._conn.create_aggregate(name, nargs, cls)

    def register_vt_operator(self, name: str, operator: VTOperator) -> None:
        """Register a virtual-table operator by (lower-case) name."""
        self._vt_operators[name.lower()] = operator

    @property
    def vt_operators(self) -> List[str]:
        return sorted(self._vt_operators)

    # -- querying ---------------------------------------------------------------
    def execute(self, sql: str, params: Sequence = (),
                budget=None) -> List[sqlite3.Row]:
        """Execute SQL (with MadIS preprocessing); fetch all rows.

        ``budget`` (a :class:`~repro.governance.QueryBudget`) makes the
        virtual-table scans row-budgeted: every row an operator
        materializes is charged, so a runaway operator terminates with
        a typed budget error instead of filling a TEMP table forever.
        Budget-aware operators also receive the budget and can cap
        their own remote fetches by the remaining deadline.
        """
        if self.tracer is None:
            return self._execute(sql, params, budget)
        with self.tracer.span("madis.execute", sql=" ".join(sql.split())):
            return self._execute(sql, params, budget)

    def _execute(self, sql: str, params: Sequence,
                 budget) -> List[sqlite3.Row]:
        rewritten = self._rewrite(sql, budget=budget)
        cursor = self._conn.execute(rewritten, params)
        if cursor.description is None:
            self._conn.commit()
            return []
        return cursor.fetchall()

    def executescript(self, script: str) -> None:
        self._conn.executescript(script)
        self._conn.commit()

    def columns(self, sql: str, params: Sequence = ()) -> List[str]:
        cursor = self._conn.execute(self._rewrite(sql), params)
        return [d[0] for d in cursor.description or []]

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "MadisConnection":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- EXPLAIN -------------------------------------------------------------
    def explain(self, sql: str, params: Sequence = ()):
        """Plan a MadIS query without running it.

        Returns a :class:`~repro.sparql.plan.PlanNode` tree: the
        rewritten SQL shape, one ``VirtualTable`` node per
        ``FROM (opname ...)`` clause (with the TEMP table it rewrites
        to), and SQLite's own ``EXPLAIN QUERY PLAN`` steps for the
        rewritten statement. Operators are *not* invoked; when a
        clause's TEMP table has not been materialized by a prior
        :meth:`execute`, the SQLite steps are unavailable (the
        placeholder node says so) because the statement cannot be
        prepared against a missing table.
        """
        from ..sparql.plan import PlanNode

        rewritten, vt_infos = self._rewrite_dry(sql)
        root = PlanNode("MadisQuery", " ".join(sql.split()))
        for __, argtext, table, exists in vt_infos:
            node = PlanNode("VirtualTable", f"{argtext} -> {table}")
            if exists:
                node.est_rows = self._conn.execute(
                    f'SELECT count(*) FROM "{table}"'
                ).fetchone()[0]
            root.children.append(node)
        missing = [t for __, __, t, ok in vt_infos if not ok]
        if missing:
            root.children.append(PlanNode(
                "SqlitePlan",
                "unavailable: virtual tables not yet materialized "
                f"({', '.join(missing)})",
            ))
            return root
        try:
            steps = self._conn.execute(
                "EXPLAIN QUERY PLAN " + rewritten, params
            ).fetchall()
        except sqlite3.Error as exc:
            root.children.append(PlanNode("SqlitePlan",
                                          f"unavailable: {exc}"))
        else:
            for step in steps:
                root.children.append(PlanNode("SqliteStep", step["detail"]))
        return root

    def _rewrite_dry(self, sql: str):
        """Like :meth:`_rewrite` but without invoking any operator.

        Returns ``(rewritten_sql, infos)`` where each info is
        ``(operator, normalized_args, table, already_materialized)``.
        """
        out: List[str] = []
        infos: List[Tuple[str, str, str, bool]] = []
        pos = 0
        while True:
            m = self._next_from_paren(sql, pos)
            if not m:
                out.append(sql[pos:])
                return "".join(out), infos
            open_paren = m.end() - 1
            close_paren = _matching_paren(sql, open_paren)
            inner = sql[open_paren + 1: close_paren]
            operator = self._leading_operator(inner)
            if operator is None:
                out.append(sql[pos: m.end()])
                pos = m.end()
                continue
            args, kwargs = _parse_vt_args(inner, operator)
            table = self._invocation_table(operator, args, kwargs)
            exists = self._conn.execute(
                "SELECT 1 FROM temp.sqlite_master"
                " WHERE type = 'table' AND name = ?", (table,)
            ).fetchone() is not None
            infos.append((operator, " ".join(inner.split()), table, exists))
            out.append(sql[pos: m.start()])
            out.append(f'{m.group(1).upper()} "{table}"')
            pos = close_paren + 1

    # -- MadIS syntax preprocessing -----------------------------------------
    def _rewrite(self, sql: str, budget=None) -> str:
        """Replace ``FROM (opname args)`` clauses by temp-table reads."""
        out = []
        pos = 0
        while True:
            m = self._next_from_paren(sql, pos)
            if not m:
                out.append(sql[pos:])
                return "".join(out)
            open_paren = m.end() - 1
            close_paren = _matching_paren(sql, open_paren)
            inner = sql[open_paren + 1: close_paren]
            operator = self._leading_operator(inner)
            if operator is None:
                # ordinary subquery — leave untouched, continue after '('
                out.append(sql[pos: m.end()])
                pos = m.end()
                continue
            table = self._materialize(operator, inner, budget=budget)
            out.append(sql[pos: m.start()])
            out.append(f"{m.group(1).upper()} {table}")
            pos = close_paren + 1

    @staticmethod
    def _next_from_paren(sql: str, start: int):
        """The next ``FROM (`` occurrence outside string literals."""
        pos = start
        while True:
            m = _FROM_OPEN_RE.search(sql, pos)
            if not m:
                return None
            if not _inside_string(sql, m.start()):
                return m
            pos = m.end()

    def _leading_operator(self, inner: str) -> Optional[str]:
        tokens = inner.strip().split(None, 2)
        for token in tokens[:2]:
            word = token.strip().lower()
            if word in _MODIFIERS:
                continue
            return word if word in self._vt_operators else None
        return None

    @staticmethod
    def _invocation_table(operator_name: str, args, kwargs) -> str:
        """Deterministic TEMP table name for one operator invocation."""
        key = hashlib.sha1(
            repr((operator_name, args, sorted(kwargs.items()))).encode()
        ).hexdigest()[:12]
        return f"vt_{operator_name}_{key}"

    def _materialize(self, operator_name: str, inner: str,
                     budget=None) -> str:
        """Run the operator and load its rows into a TEMP table."""
        args, kwargs = _parse_vt_args(inner, operator_name)
        table = self._invocation_table(operator_name, args, kwargs)
        if self.tracer is None:
            return self._materialize_into(operator_name, table, args,
                                          kwargs, budget)
        with self.tracer.span("madis.materialize", operator=operator_name,
                              table=table):
            return self._materialize_into(operator_name, table, args,
                                          kwargs, budget)

    def _materialize_into(self, operator_name: str, table: str, args,
                          kwargs, budget) -> str:
        operator = self._vt_operators[operator_name]
        if budget is not None and getattr(operator, "supports_budget",
                                          False):
            columns, rows = operator(*args, budget=budget, **kwargs)
        else:
            columns, rows = operator(*args, **kwargs)
        if not columns:
            raise MadisError(f"operator {operator_name!r} returned no schema")
        quoted = ", ".join(f'"{c}"' for c in columns)
        self._conn.execute(f'DROP TABLE IF EXISTS "{table}"')
        self._conn.execute(f'CREATE TEMP TABLE "{table}" ({quoted})')
        placeholders = ", ".join("?" for __ in columns)

        def charged(iterable):
            for r in iterable:
                if budget is not None:
                    budget.charge_rows()
                yield tuple(r)

        self._conn.executemany(
            f'INSERT INTO "{table}" VALUES ({placeholders})',
            charged(rows),
        )
        return f'"{table}"'


def _inside_string(text: str, pos: int) -> bool:
    """True when *pos* falls inside a SQL string literal."""
    in_string = None
    i = 0
    while i < pos:
        ch = text[i]
        if in_string:
            if ch == in_string:
                # doubled quote escapes itself in SQL
                if i + 1 < len(text) and text[i + 1] == in_string:
                    i += 1
                else:
                    in_string = None
        elif ch in "'\"":
            in_string = ch
        i += 1
    return in_string is not None


def _matching_paren(text: str, open_pos: int) -> int:
    depth = 0
    in_string = None
    for i in range(open_pos, len(text)):
        ch = text[i]
        if in_string:
            if ch == in_string:
                in_string = None
            continue
        if ch in "'\"":
            in_string = ch
        elif ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
            if depth == 0:
                return i
    raise MadisError("unbalanced parentheses in MadIS query")


def _parse_vt_args(inner: str, operator_name: str):
    """Parse operator arguments from the clause body.

    Grammar: ``[modifier ...] opname arg ("," arg)*`` where each arg is
    either ``key:value`` (value may contain ':' as in URLs) or a plain
    positional literal. Quotes around values are stripped.
    """
    text = inner.strip()
    # strip modifiers and the operator name
    while True:
        head, __, rest = text.partition(" ")
        word = head.strip().lower()
        if word in _MODIFIERS:
            text = rest.strip()
            continue
        if word == operator_name:
            text = rest.strip()
        break
    args: List[str] = []
    kwargs: Dict[str, str] = {}
    if not text:
        return tuple(args), kwargs
    for raw in _split_args(text):
        raw = raw.strip()
        if not raw:
            continue
        m = re.match(r"^([A-Za-z_][\w]*):(.+)$", raw, re.DOTALL)
        if m and not raw.lower().startswith(("http:", "https:", "dap:")):
            kwargs[m.group(1)] = _unquote(m.group(2).strip())
        else:
            args.append(_unquote(raw))
    return tuple(args), kwargs


def _split_args(text: str) -> List[str]:
    parts, depth, start = [], 0, 0
    in_string = None
    for i, ch in enumerate(text):
        if in_string:
            if ch == in_string:
                in_string = None
            continue
        if ch in "'\"":
            in_string = ch
        elif ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
        elif ch == "," and depth == 0:
            parts.append(text[start:i])
            start = i + 1
    parts.append(text[start:])
    return parts


def _unquote(text: str) -> str:
    if len(text) >= 2 and text[0] == text[-1] and text[0] in "'\"":
        return text[1:-1]
    return text
