"""JedAI-style entity resolution with multi-core meta-blocking.

Reproduces the pipeline of [Papadakis et al., SEMANTICS 2017]
("Multi-core Meta-blocking for Big Linked Data"):

1. **token blocking** — every attribute token becomes a block;
2. **block purging** — drop blocks larger than a size cap;
3. **block filtering** — keep each entity only in its smallest blocks;
4. **meta-blocking (WEP)** — weight candidate pairs (CBS/ECBS/Jaccard)
   and prune those below the mean weight, with the co-occurrence
   counting fanned out over the deterministic worker pool (worker
   processes remain opt-in for CPU-bound runs);
5. **entity matching** — profile similarity over attribute tokens;
6. **clustering** — connected components over matched pairs.

Statistics are kept per stage so the comparison-reduction behaviour the
paper relies on is observable.
"""

from __future__ import annotations

import multiprocessing
import re
import time
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, \
    Set, Tuple

from ..parallel import WorkerPool, chunk_list


@dataclass
class EntityProfile:
    """An entity: an id plus attribute name/value pairs."""

    entity_id: str
    attributes: Dict[str, str] = field(default_factory=dict)

    def tokens(self) -> Set[str]:
        out: Set[str] = set()
        for value in self.attributes.values():
            out.update(_tokenize(str(value)))
        return out


def _tokenize(text: str) -> List[str]:
    return [t for t in re.split(r"[^0-9A-Za-z]+", text.lower()) if len(t) > 1]


@dataclass
class BlockingStats:
    initial_comparisons: int = 0
    after_purging: int = 0
    after_filtering: int = 0
    after_metablocking: int = 0

    @property
    def reduction_ratio(self) -> float:
        if self.initial_comparisons == 0:
            return 0.0
        return 1.0 - self.after_metablocking / self.initial_comparisons


Pair = Tuple[str, str]


def _pair(a: str, b: str) -> Pair:
    return (a, b) if a < b else (b, a)


def _block_comparisons(blocks: Dict[str, List[str]]) -> int:
    return sum(len(v) * (len(v) - 1) // 2 for v in blocks.values())


class JedaiPipeline:
    """Dirty-ER resolution over one collection of profiles."""

    def __init__(self, purge_factor: float = 0.05,
                 filter_ratio: float = 0.5,
                 weighting: str = "cbs",
                 match_threshold: float = 0.5,
                 workers: int = 1,
                 partitions: Optional[int] = None,
                 pool: Optional[WorkerPool] = None,
                 use_processes: bool = False,
                 chunk_read_s: float = 0.0,
                 sleep: Callable[[float], None] = time.sleep,
                 tracer=None, budget=None):
        if weighting not in ("cbs", "ecbs", "jaccard"):
            raise ValueError(f"unknown weighting scheme {weighting!r}")
        if not 0 < filter_ratio <= 1:
            raise ValueError("filter_ratio must be in (0, 1]")
        self.purge_factor = purge_factor
        self.filter_ratio = filter_ratio
        self.weighting = weighting
        self.match_threshold = match_threshold
        self.workers = max(1, workers)
        # Block chunks are a function of the partition count alone, so
        # meta-blocking output is byte-identical across worker counts.
        self.partitions = self.workers if partitions is None \
            else max(1, partitions)
        self.pool = pool
        self.use_processes = use_processes
        # Simulated per-chunk block-collection read (the out-of-core
        # I/O the multi-core meta-blocking paper overlaps).
        self.chunk_read_s = chunk_read_s
        self.sleep = sleep
        self.tracer = tracer
        self.budget = budget
        self.stats = BlockingStats()

    # -- stages --------------------------------------------------------------
    def token_blocking(self, profiles: List[EntityProfile]
                       ) -> Dict[str, List[str]]:
        blocks: Dict[str, List[str]] = defaultdict(list)
        for profile in profiles:
            for token in sorted(profile.tokens()):
                blocks[token].append(profile.entity_id)
        blocks = {k: v for k, v in blocks.items() if len(v) > 1}
        self.stats.initial_comparisons = _block_comparisons(blocks)
        return blocks

    def block_purging(self, blocks: Dict[str, List[str]],
                      n_entities: int) -> Dict[str, List[str]]:
        cap = max(2, int(self.purge_factor * n_entities))
        purged = {k: v for k, v in blocks.items() if len(v) <= cap}
        self.stats.after_purging = _block_comparisons(purged)
        return purged

    def block_filtering(self, blocks: Dict[str, List[str]]
                        ) -> Dict[str, List[str]]:
        per_entity: Dict[str, List[Tuple[int, str]]] = defaultdict(list)
        for token, members in blocks.items():
            for entity in members:
                per_entity[entity].append((len(members), token))
        keep: Dict[str, Set[str]] = {}
        for entity, entries in per_entity.items():
            entries.sort()
            kept = max(1, int(len(entries) * self.filter_ratio))
            keep[entity] = {token for __, token in entries[:kept]}
        filtered: Dict[str, List[str]] = {}
        for token, members in blocks.items():
            retained = [e for e in members if token in keep[e]]
            if len(retained) > 1:
                filtered[token] = retained
        self.stats.after_filtering = _block_comparisons(filtered)
        return filtered

    def meta_blocking(self, blocks: Dict[str, List[str]]
                      ) -> List[Tuple[Pair, float]]:
        """Weight-edge pruning: keep pairs above the mean edge weight."""
        block_items = list(blocks.values())
        entity_block_count: Dict[str, int] = defaultdict(int)
        for members in block_items:
            for entity in members:
                entity_block_count[entity] += 1

        chunks = chunk_list(block_items, self.partitions)
        if self.use_processes and self.workers > 1 and len(chunks) > 1:
            partials = self._count_with_processes(chunks)
        else:
            partials = self._count_with_pool(chunks)
        # Merging partial counts in chunk order reproduces the serial
        # scan's first-occurrence pair order exactly (chunks are
        # contiguous runs of the same block list), so the weighted
        # edge list downstream is byte-identical for any worker count.
        cooccurrence: Dict[Pair, int] = defaultdict(int)
        for partial in partials:
            for pair, count in partial.items():
                cooccurrence[pair] += count

        total_blocks = len(block_items)
        weighted: List[Tuple[Pair, float]] = []
        for pair, count in cooccurrence.items():
            if self.weighting == "cbs":
                weight = float(count)
            elif self.weighting == "ecbs":
                import math

                a, b = pair
                weight = count * math.log(
                    total_blocks / entity_block_count[a]
                ) * math.log(total_blocks / entity_block_count[b])
            else:  # jaccard
                a, b = pair
                union = (entity_block_count[a] + entity_block_count[b]
                         - count)
                weight = count / union if union else 0.0
            weighted.append((pair, weight))
        if not weighted:
            self.stats.after_metablocking = 0
            return []
        mean = sum(w for __, w in weighted) / len(weighted)
        pruned = [(p, w) for p, w in weighted if w >= mean]
        self.stats.after_metablocking = len(pruned)
        return pruned

    def _count_with_processes(self, chunks: List[List[List[str]]]
                              ) -> List[Dict[Pair, int]]:
        """The original CPU-bound path, kept opt-in."""
        with multiprocessing.Pool(self.workers) as mp:
            return mp.map(_count_cooccurrences, chunks)

    def _count_with_pool(self, chunks: List[List[List[str]]]
                         ) -> List[Dict[Pair, int]]:
        def one(chunk, tracer=None):
            if self.chunk_read_s > 0:
                self.sleep(self.chunk_read_s)
            counts = _count_cooccurrences(chunk)
            if self.budget is not None:
                self.budget.charge_triples(
                    sum(len(m) * (len(m) - 1) // 2 for m in chunk))
            if tracer is not None:
                tracer.count("blocks", len(chunk))
                tracer.count("pairs", len(counts))
            return counts

        pool, owned = ((self.pool, False) if self.pool is not None
                       else (WorkerPool(workers=self.workers,
                                        name="metablocking"), True))
        try:
            return pool.map(one, chunks, budget=self.budget,
                            tracer=self.tracer,
                            label="interlink.metablocking",
                            task_label="interlink.chunk",
                            pass_tracer=True)
        finally:
            if owned:
                pool.close()

    def entity_matching(self, pairs: Iterable[Pair],
                        profiles: Dict[str, EntityProfile]) -> List[Pair]:
        matches = []
        for a, b in pairs:
            sim = _profile_similarity(profiles[a], profiles[b])
            if sim >= self.match_threshold:
                matches.append((a, b))
        return matches

    @staticmethod
    def clustering(matches: Iterable[Pair]) -> List[FrozenSet[str]]:
        parent: Dict[str, str] = {}

        def find(x: str) -> str:
            parent.setdefault(x, x)
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for a, b in matches:
            ra, rb = find(a), find(b)
            if ra != rb:
                parent[ra] = rb
        clusters: Dict[str, Set[str]] = defaultdict(set)
        for node in parent:
            clusters[find(node)].add(node)
        return [frozenset(c) for c in clusters.values() if len(c) > 1]

    # -- end to end --------------------------------------------------------
    def resolve(self, profiles: List[EntityProfile]
                ) -> List[FrozenSet[str]]:
        by_id = {p.entity_id: p for p in profiles}
        if len(by_id) != len(profiles):
            raise ValueError("duplicate entity ids in input")
        blocks = self.token_blocking(profiles)
        blocks = self.block_purging(blocks, len(profiles))
        blocks = self.block_filtering(blocks)
        weighted = self.meta_blocking(blocks)
        matches = self.entity_matching((p for p, __ in weighted), by_id)
        return self.clustering(matches)


def _count_cooccurrences(blocks: List[List[str]]) -> Dict[Pair, int]:
    counts: Dict[Pair, int] = defaultdict(int)
    for members in blocks:
        for i in range(len(members)):
            for j in range(i + 1, len(members)):
                counts[_pair(members[i], members[j])] += 1
    return dict(counts)


def _profile_similarity(a: EntityProfile, b: EntityProfile) -> float:
    ta, tb = a.tokens(), b.tokens()
    if not ta or not tb:
        return 0.0
    return len(ta & tb) / len(ta | tb)
