"""JedAI-style entity resolution with multi-core meta-blocking.

Reproduces the pipeline of [Papadakis et al., SEMANTICS 2017]
("Multi-core Meta-blocking for Big Linked Data"):

1. **token blocking** — every attribute token becomes a block;
2. **block purging** — drop blocks larger than a size cap;
3. **block filtering** — keep each entity only in its smallest blocks;
4. **meta-blocking (WEP)** — weight candidate pairs (CBS/ECBS/Jaccard)
   and prune those below the mean weight, optionally across worker
   processes;
5. **entity matching** — profile similarity over attribute tokens;
6. **clustering** — connected components over matched pairs.

Statistics are kept per stage so the comparison-reduction behaviour the
paper relies on is observable.
"""

from __future__ import annotations

import multiprocessing
import re
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple


@dataclass
class EntityProfile:
    """An entity: an id plus attribute name/value pairs."""

    entity_id: str
    attributes: Dict[str, str] = field(default_factory=dict)

    def tokens(self) -> Set[str]:
        out: Set[str] = set()
        for value in self.attributes.values():
            out.update(_tokenize(str(value)))
        return out


def _tokenize(text: str) -> List[str]:
    return [t for t in re.split(r"[^0-9A-Za-z]+", text.lower()) if len(t) > 1]


@dataclass
class BlockingStats:
    initial_comparisons: int = 0
    after_purging: int = 0
    after_filtering: int = 0
    after_metablocking: int = 0

    @property
    def reduction_ratio(self) -> float:
        if self.initial_comparisons == 0:
            return 0.0
        return 1.0 - self.after_metablocking / self.initial_comparisons


Pair = Tuple[str, str]


def _pair(a: str, b: str) -> Pair:
    return (a, b) if a < b else (b, a)


def _block_comparisons(blocks: Dict[str, List[str]]) -> int:
    return sum(len(v) * (len(v) - 1) // 2 for v in blocks.values())


class JedaiPipeline:
    """Dirty-ER resolution over one collection of profiles."""

    def __init__(self, purge_factor: float = 0.05,
                 filter_ratio: float = 0.5,
                 weighting: str = "cbs",
                 match_threshold: float = 0.5,
                 workers: int = 1):
        if weighting not in ("cbs", "ecbs", "jaccard"):
            raise ValueError(f"unknown weighting scheme {weighting!r}")
        if not 0 < filter_ratio <= 1:
            raise ValueError("filter_ratio must be in (0, 1]")
        self.purge_factor = purge_factor
        self.filter_ratio = filter_ratio
        self.weighting = weighting
        self.match_threshold = match_threshold
        self.workers = max(1, workers)
        self.stats = BlockingStats()

    # -- stages --------------------------------------------------------------
    def token_blocking(self, profiles: List[EntityProfile]
                       ) -> Dict[str, List[str]]:
        blocks: Dict[str, List[str]] = defaultdict(list)
        for profile in profiles:
            for token in sorted(profile.tokens()):
                blocks[token].append(profile.entity_id)
        blocks = {k: v for k, v in blocks.items() if len(v) > 1}
        self.stats.initial_comparisons = _block_comparisons(blocks)
        return blocks

    def block_purging(self, blocks: Dict[str, List[str]],
                      n_entities: int) -> Dict[str, List[str]]:
        cap = max(2, int(self.purge_factor * n_entities))
        purged = {k: v for k, v in blocks.items() if len(v) <= cap}
        self.stats.after_purging = _block_comparisons(purged)
        return purged

    def block_filtering(self, blocks: Dict[str, List[str]]
                        ) -> Dict[str, List[str]]:
        per_entity: Dict[str, List[Tuple[int, str]]] = defaultdict(list)
        for token, members in blocks.items():
            for entity in members:
                per_entity[entity].append((len(members), token))
        keep: Dict[str, Set[str]] = {}
        for entity, entries in per_entity.items():
            entries.sort()
            kept = max(1, int(len(entries) * self.filter_ratio))
            keep[entity] = {token for __, token in entries[:kept]}
        filtered: Dict[str, List[str]] = {}
        for token, members in blocks.items():
            retained = [e for e in members if token in keep[e]]
            if len(retained) > 1:
                filtered[token] = retained
        self.stats.after_filtering = _block_comparisons(filtered)
        return filtered

    def meta_blocking(self, blocks: Dict[str, List[str]]
                      ) -> List[Tuple[Pair, float]]:
        """Weight-edge pruning: keep pairs above the mean edge weight."""
        block_items = list(blocks.values())
        entity_block_count: Dict[str, int] = defaultdict(int)
        for members in block_items:
            for entity in members:
                entity_block_count[entity] += 1

        if self.workers > 1 and len(block_items) > 1:
            chunks = _chunk(block_items, self.workers)
            with multiprocessing.Pool(self.workers) as pool:
                partials = pool.map(_count_cooccurrences, chunks)
            cooccurrence: Dict[Pair, int] = defaultdict(int)
            for partial in partials:
                for pair, count in partial.items():
                    cooccurrence[pair] += count
        else:
            cooccurrence = _count_cooccurrences(block_items)

        total_blocks = len(block_items)
        weighted: List[Tuple[Pair, float]] = []
        for pair, count in cooccurrence.items():
            if self.weighting == "cbs":
                weight = float(count)
            elif self.weighting == "ecbs":
                import math

                a, b = pair
                weight = count * math.log(
                    total_blocks / entity_block_count[a]
                ) * math.log(total_blocks / entity_block_count[b])
            else:  # jaccard
                a, b = pair
                union = (entity_block_count[a] + entity_block_count[b]
                         - count)
                weight = count / union if union else 0.0
            weighted.append((pair, weight))
        if not weighted:
            self.stats.after_metablocking = 0
            return []
        mean = sum(w for __, w in weighted) / len(weighted)
        pruned = [(p, w) for p, w in weighted if w >= mean]
        self.stats.after_metablocking = len(pruned)
        return pruned

    def entity_matching(self, pairs: Iterable[Pair],
                        profiles: Dict[str, EntityProfile]) -> List[Pair]:
        matches = []
        for a, b in pairs:
            sim = _profile_similarity(profiles[a], profiles[b])
            if sim >= self.match_threshold:
                matches.append((a, b))
        return matches

    @staticmethod
    def clustering(matches: Iterable[Pair]) -> List[FrozenSet[str]]:
        parent: Dict[str, str] = {}

        def find(x: str) -> str:
            parent.setdefault(x, x)
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for a, b in matches:
            ra, rb = find(a), find(b)
            if ra != rb:
                parent[ra] = rb
        clusters: Dict[str, Set[str]] = defaultdict(set)
        for node in parent:
            clusters[find(node)].add(node)
        return [frozenset(c) for c in clusters.values() if len(c) > 1]

    # -- end to end --------------------------------------------------------
    def resolve(self, profiles: List[EntityProfile]
                ) -> List[FrozenSet[str]]:
        by_id = {p.entity_id: p for p in profiles}
        if len(by_id) != len(profiles):
            raise ValueError("duplicate entity ids in input")
        blocks = self.token_blocking(profiles)
        blocks = self.block_purging(blocks, len(profiles))
        blocks = self.block_filtering(blocks)
        weighted = self.meta_blocking(blocks)
        matches = self.entity_matching((p for p, __ in weighted), by_id)
        return self.clustering(matches)


def _count_cooccurrences(blocks: List[List[str]]) -> Dict[Pair, int]:
    counts: Dict[Pair, int] = defaultdict(int)
    for members in blocks:
        for i in range(len(members)):
            for j in range(i + 1, len(members)):
                counts[_pair(members[i], members[j])] += 1
    return dict(counts)


def _chunk(items: List, n: int) -> List[List]:
    size = max(1, (len(items) + n - 1) // n)
    return [items[i: i + size] for i in range(0, len(items), size)]


def _profile_similarity(a: EntityProfile, b: EntityProfile) -> float:
    ta, tb = a.tokens(), b.tokens()
    if not ta or not tb:
        return 0.0
    return len(ta & tb) / len(ta | tb)
