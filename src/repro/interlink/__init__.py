"""Interlinking: Silk-style link discovery + JedAI entity resolution."""

from .jedai import (
    BlockingStats,
    EntityProfile,
    JedaiPipeline,
)
from .silk import (
    Comparison,
    DatasetSelector,
    LinkSpec,
    LinkageRule,
    SilkEngine,
    exact_match,
    jaccard_tokens,
    levenshtein_similarity,
    near,
    numeric_similarity,
    spatial_relation,
    temporal_relation,
)

__all__ = [
    "BlockingStats",
    "Comparison",
    "DatasetSelector",
    "EntityProfile",
    "JedaiPipeline",
    "LinkSpec",
    "LinkageRule",
    "SilkEngine",
    "exact_match",
    "jaccard_tokens",
    "levenshtein_similarity",
    "near",
    "numeric_similarity",
    "spatial_relation",
    "temporal_relation",
]
