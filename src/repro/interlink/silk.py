"""Silk-style declarative link discovery with spatial/temporal relations.

The paper uses "Silk, a well-known framework for interlinking RDF
datasets which we have extended to deal with geospatial and temporal
relations [Smeros & Koubarakis, LDOW 2016]". This module reproduces
that: a link specification selects entities from two RDF graphs,
compares them with string/numeric/spatial/temporal measures aggregated
by a linkage rule, and emits link triples (e.g. ``owl:sameAs`` or
``geo:sfIntersects``) for pairs above threshold.

Spatial comparisons are blocked with an STR-tree so candidate pairs are
bbox-matched instead of the full cross product.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..geometry import Geometry, STRtree
from ..geometry import ops as geo_ops
from ..rdf import Graph
from ..rdf.terms import IRI, Literal, Term, Triple, parse_datetime, to_utc


# ---------------------------------------------------------------------------
# Distance / similarity measures (all return similarity in [0, 1])
# ---------------------------------------------------------------------------

def levenshtein_similarity(a: str, b: str) -> float:
    """1 - normalized Levenshtein distance."""
    if a == b:
        return 1.0
    if not a or not b:
        return 0.0
    prev = list(range(len(b) + 1))
    for i, ca in enumerate(a, start=1):
        cur = [i]
        for j, cb in enumerate(b, start=1):
            cur.append(
                min(prev[j] + 1, cur[j - 1] + 1,
                    prev[j - 1] + (ca != cb))
            )
        prev = cur
    return 1.0 - prev[-1] / max(len(a), len(b))


def jaccard_tokens(a: str, b: str) -> float:
    ta, tb = set(a.lower().split()), set(b.lower().split())
    if not ta and not tb:
        return 1.0
    return len(ta & tb) / len(ta | tb)


def exact_match(a: str, b: str) -> float:
    return 1.0 if a == b else 0.0


def numeric_similarity(max_diff: float) -> Callable[[float, float], float]:
    def sim(a: float, b: float) -> float:
        diff = abs(float(a) - float(b))
        return max(0.0, 1.0 - diff / max_diff) if max_diff > 0 else \
            float(diff == 0)

    return sim


# Spatial relations (boolean, similarity 1/0), plus distance-based "near".

def spatial_relation(name: str) -> Callable[[Geometry, Geometry], float]:
    fn = {
        "intersects": geo_ops.intersects,
        "contains": geo_ops.contains,
        "within": geo_ops.within,
        "touches": geo_ops.touches,
        "overlaps": geo_ops.overlaps,
        "equals": geo_ops.equals,
        "disjoint": geo_ops.disjoint,
    }[name]

    def sim(a: Geometry, b: Geometry) -> float:
        return 1.0 if fn(a, b) else 0.0

    return sim


def near(max_distance: float) -> Callable[[Geometry, Geometry], float]:
    def sim(a: Geometry, b: Geometry) -> float:
        d = geo_ops.distance(a, b)
        return max(0.0, 1.0 - d / max_distance) if max_distance > 0 else \
            float(d == 0)

    return sim


# Temporal relations over instants (ISO strings or datetimes).

def _as_dt(value):
    if isinstance(value, str):
        return to_utc(parse_datetime(value))
    return to_utc(value)


def temporal_relation(name: str) -> Callable:
    def sim(a, b) -> float:
        ta, tb = _as_dt(a), _as_dt(b)
        if name == "before":
            return 1.0 if ta < tb else 0.0
        if name == "after":
            return 1.0 if ta > tb else 0.0
        if name == "equals":
            return 1.0 if ta == tb else 0.0
        raise ValueError(f"unknown temporal relation {name!r}")

    return sim


# ---------------------------------------------------------------------------
# Specification model
# ---------------------------------------------------------------------------

@dataclass
class DatasetSelector:
    """Selects entities of one class from a graph, with value paths.

    ``properties`` maps a logical key to a predicate path (a sequence of
    predicates followed from the entity).
    """

    graph: Graph
    class_iri: Optional[IRI] = None
    properties: Dict[str, Sequence[IRI]] = field(default_factory=dict)

    def entities(self) -> Dict[IRI, Dict[str, object]]:
        from ..rdf.namespace import RDF

        if self.class_iri is not None:
            subjects = list(self.graph.subjects(RDF.type, self.class_iri))
        else:
            subjects = list({t.s for t in self.graph})
        out: Dict[IRI, Dict[str, object]] = {}
        for subject in subjects:
            values: Dict[str, object] = {}
            for key, path in self.properties.items():
                value = self._follow(subject, list(path))
                if value is not None:
                    values[key] = value
            out[subject] = values
        return out

    def _follow(self, node: Term, path: List[IRI]):
        current = node
        for predicate in path:
            current = self.graph.value(current, predicate)
            if current is None:
                return None
        if isinstance(current, Literal):
            return current.value if not current.is_geometry else current
        return current


@dataclass
class Comparison:
    """Compare one property of source and target with a measure."""

    key: str
    measure: Callable[..., float]
    weight: float = 1.0
    is_spatial: bool = False

    def apply(self, a: Dict[str, object], b: Dict[str, object]) -> Optional[float]:
        va, vb = a.get(self.key), b.get(self.key)
        if va is None or vb is None:
            return None
        if self.is_spatial:
            va, vb = _to_geometry(va), _to_geometry(vb)
        return self.measure(va, vb)


def _to_geometry(value) -> Geometry:
    from ..sparql.functions import geometry_from_term

    if isinstance(value, Geometry):
        return value
    if isinstance(value, Literal):
        return geometry_from_term(value)
    from ..geometry import wkt_loads

    return wkt_loads(str(value))


@dataclass
class LinkageRule:
    """Weighted aggregation of comparisons against a threshold."""

    comparisons: List[Comparison]
    aggregation: str = "average"  # average | min | max
    threshold: float = 0.8

    def score(self, a: Dict[str, object], b: Dict[str, object]
              ) -> Optional[float]:
        scores: List[Tuple[float, float]] = []
        for comparison in self.comparisons:
            value = comparison.apply(a, b)
            if value is None:
                return None  # missing value → no link decision
            scores.append((value, comparison.weight))
        if not scores:
            return None
        if self.aggregation == "min":
            return min(v for v, __ in scores)
        if self.aggregation == "max":
            return max(v for v, __ in scores)
        total_weight = sum(w for __, w in scores)
        return sum(v * w for v, w in scores) / total_weight


@dataclass
class LinkSpec:
    source: DatasetSelector
    target: DatasetSelector
    rule: LinkageRule
    link_predicate: IRI = IRI("http://www.w3.org/2002/07/owl#sameAs")


class SilkEngine:
    """Generates links for a specification, with spatial blocking."""

    def __init__(self, blocking: bool = True):
        self.blocking = blocking
        self.compared_pairs = 0

    def generate_links(self, spec: LinkSpec) -> List[Triple]:
        source = spec.source.entities()
        target = spec.target.entities()
        self.compared_pairs = 0
        pairs = self._candidate_pairs(spec, source, target)
        links: List[Triple] = []
        for s_uri, t_uri in pairs:
            self.compared_pairs += 1
            score = spec.rule.score(source[s_uri], target[t_uri])
            if score is not None and score >= spec.rule.threshold:
                links.append(Triple(s_uri, spec.link_predicate, t_uri))
        return links

    def _candidate_pairs(self, spec: LinkSpec, source, target):
        spatial_keys = [
            c.key for c in spec.rule.comparisons if c.is_spatial
        ]
        if not (self.blocking and spatial_keys):
            return [
                (s, t) for s in source for t in target if s != t
            ]
        key = spatial_keys[0]
        indexed = [
            (t_uri, _to_geometry(values[key]))
            for t_uri, values in target.items()
            if values.get(key) is not None
        ]
        if not indexed:
            return []
        tree = STRtree(indexed, bbox_of=lambda item: item[1].bounds)
        pairs = []
        for s_uri, values in source.items():
            geom_value = values.get(key)
            if geom_value is None:
                continue
            geom = _to_geometry(geom_value)
            # Expand the query window a touch so "near" comparisons see
            # neighbours whose bboxes do not strictly intersect.
            minx, miny, maxx, maxy = geom.bounds
            pad = 0.05 * max(maxx - minx, maxy - miny, 0.01)
            for t_uri, __ in tree.query(
                (minx - pad, miny - pad, maxx + pad, maxy + pad)
            ):
                if s_uri != t_uri:
                    pairs.append((s_uri, t_uri))
        return pairs
